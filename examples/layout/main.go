// Layout microscope: runs the same churn on the same engine with the
// two metadata layouts of the paper's Figure 2 — aggregated (intrusive
// next-pointers inside free blocks) and segregated (16-bit index stacks
// in a separate metadata region) — and shows where each one's memory
// traffic lands. This is the §3.1.2 trade-off: aggregated warms the
// block line the app is about to use; segregated keeps user pages free
// of metadata so the allocator can move to another core.
package main

import (
	"fmt"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/sim"
)

func run(layout core.Layout) (app sim.Counters, frag float64) {
	m := sim.New(sim.ScaledConfig())
	var out sim.Counters
	var f float64
	m.Spawn("app", 0, func(t *sim.Thread) {
		cfg := core.Config{Offload: false, Layout: layout}
		a := core.New(t, cfg)

		// Keep a churning live set large enough to stress the caches.
		const slots = 20000
		live := make([]uint64, slots)
		rng := uint64(42)
		next := func(n uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			t.Exec(2)
			return rng >> 33 % n
		}
		for round := 0; round < 120000; round++ {
			i := next(slots)
			if live[i] != 0 {
				a.Free(t, live[i])
			}
			size := 16 + next(16)*16
			p := a.Malloc(t, size)
			// The app writes the new block immediately (the access
			// pattern that favours the aggregated layout).
			t.Store64(p, uint64(round))
			live[i] = p
		}
		start := t.Counters()
		for round := 0; round < 30000; round++ {
			i := next(slots)
			if live[i] != 0 {
				a.Free(t, live[i])
			}
			p := a.Malloc(t, 16+next(16)*16)
			t.Store64(p, uint64(round))
			live[i] = p
		}
		out = t.Counters().Sub(start)
		f = a.Stats().Fragmentation()
	})
	m.Run()
	return out, f
}

func main() {
	fmt.Println("Metadata layout comparison (paper Figure 2), inline engine, 30k measured pairs")
	fmt.Println()
	for _, layout := range []core.Layout{core.Aggregated, core.Segregated} {
		c, frag := run(layout)
		fmt.Printf("%-11s cycles=%-10d instr=%-9d L1miss=%-7d L2miss=%-7d LLCload=%-6d LLCstore=%-6d dTLBload=%-5d frag=%.3f\n",
			layout, c.Cycles, c.Instructions, c.L1Misses, c.L2Misses,
			c.LLCLoadMisses, c.LLCStoreMisses, c.DTLBLoadMisses, frag)
	}
	fmt.Println()
	fmt.Println("Aggregated touches the user block on every alloc/free (warming it for the app);")
	fmt.Println("segregated concentrates metadata traffic on its own region — the property that")
	fmt.Println("lets NextGen-Malloc move the allocator to a dedicated core.")
}
