// Managed GC: a GCBench-style managed-heap program on the simulated
// machine, collected first on the mutator's own core and then on the
// dedicated core (paper §3.3.2) — watch the mutator's miss counters.
package main

import (
	"fmt"

	"nextgenmalloc/internal/gcheap"
	"nextgenmalloc/internal/sim"
)

func run(offload bool) {
	m := sim.New(sim.ScaledConfig())
	var h *gcheap.Heap
	var off *gcheap.Offloader
	if offload {
		m.SpawnDaemon("gc-core", 15, func(th *sim.Thread) {
			for off == nil {
				if th.Stopping() {
					return
				}
				th.Pause(100)
			}
			off.Serve(th)
		})
	}
	m.Spawn("mutator", 0, func(th *sim.Thread) {
		h = gcheap.New(th, 2)
		h.TriggerEvery = 4000
		if offload {
			off = gcheap.NewOffloader(th, h)
		}

		var build func(depth int) uint64
		build = func(depth int) uint64 {
			n := h.Alloc(th, 2, 16)
			if depth > 0 {
				h.WriteRef(th, n, 0, build(depth-1))
				h.WriteRef(th, n, 1, build(depth-1))
			}
			return n
		}
		longLived := build(10)
		th.Store64(h.RootAddr(0), longLived)

		start := th.Counters()
		for i := 0; i < 60; i++ {
			tmp := build(8) // short-lived tree: 511 nodes
			th.Store64(h.RootAddr(1), tmp)
			th.Store64(h.RootAddr(1), 0)
			if h.NeedsCollect() {
				if offload {
					off.Request(th)
				} else {
					h.CollectInline(th)
				}
			}
		}
		d := th.Counters().Sub(start)
		st := h.Stats()
		mode := "inline   "
		if offload {
			mode = "offloaded"
		}
		fmt.Printf("%s  GCs=%-3d swept=%-6d mutator: cycles=%-9d LLCload=%-6d dTLBload=%-5d pause=%d\n",
			mode, st.Collections, st.ObjectsSwept, d.Cycles, d.LLCLoadMisses, d.DTLBLoadMisses, st.PauseCycles)
	})
	m.Run()
}

func main() {
	fmt.Println("GCBench on the managed heap: where collection runs decides whose caches pay")
	run(false)
	run(true)
}
