// Multitenant: the xmalloc cross-thread-free cycle (thread i allocates,
// thread i+1 frees) across every allocator family — the workload behind
// the paper's Table 2 — showing how each allocator's cross-core metadata
// strategy turns into coherence traffic and LLC misses.
package main

import (
	"fmt"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/workload"
)

func main() {
	fmt.Println("xmalloc (cross-thread free), 4 threads, 10k blocks/thread")
	fmt.Printf("%-18s %12s %12s %10s %10s %12s %12s\n",
		"allocator", "wall-cycles", "instr", "LLC-ld", "LLC-st", "invalidations", "transfers")
	for _, kind := range []string{"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc", "nextgen"} {
		w := &workload.Xmalloc{NThreads: 4, OpsPerThread: 10000, TouchBytes: 128, Seed: 7}
		res := harness.Run(harness.Options{Allocator: kind, Workload: w})
		fmt.Printf("%-18s %12d %12d %10d %10d %12d %12d\n",
			kind, res.WallCycles, res.Total.Instructions,
			res.Total.LLCLoadMisses, res.Total.LLCStoreMisses,
			res.Total.Invalidations, res.Total.DirtyTransfers)
	}
	fmt.Println()
	fmt.Println("PTMalloc2 serializes on arena locks; TCMalloc/Jemalloc bounce freed objects")
	fmt.Println("through central lists; Mimalloc CASes them onto the owner page's thread_free;")
	fmt.Println("NextGen routes every free to the dedicated core's rings, so application")
	fmt.Println("cores exchange no allocator metadata at all.")
}
