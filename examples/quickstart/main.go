// Quickstart: build a simulated machine, create NextGen-Malloc with its
// dedicated allocator core, allocate and free from an application
// thread, and read the PMU counters — the minimal end-to-end tour of the
// public surface (sim.Machine, core.Allocator, alloc.Allocator).
package main

import (
	"fmt"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/sim"
)

func main() {
	// A 16-core machine with default (paper-like) parameters.
	m := sim.New(sim.DefaultConfig())

	// The allocator core: a daemon pinned to core 15, polling request
	// rings. It gets the allocator handle once the app thread builds it.
	srv := core.NewServer()
	m.SpawnDaemon("allocator-core", 15, srv.Run)

	// The application, pinned to core 0.
	m.Spawn("app", 0, func(t *sim.Thread) {
		a := core.New(t, core.DefaultConfig())
		srv.Attach(a)

		// Allocate a small object, use it, free it (free is
		// asynchronous: it costs the app core only a ring push).
		p := a.Malloc(t, 48)
		t.Store64(p, 0xdead_beef)
		t.Store64(p+8, 42)
		fmt.Printf("allocated 48 bytes at %#x, first word %#x\n", p, t.Load64(p))
		a.Free(t, p)

		// A burst of DOM-node-like allocations.
		var nodes []uint64
		for i := 0; i < 1000; i++ {
			n := a.Malloc(t, uint64(24+8*(i%6)))
			t.Store64(n, uint64(i))
			nodes = append(nodes, n)
		}
		var sum uint64
		for _, n := range nodes {
			sum += t.Load64(n)
		}
		for _, n := range nodes {
			a.Free(t, n)
		}
		a.Flush(t) // drain the asynchronous frees before reading stats

		fmt.Printf("checksum %d, mallocs %d, frees %d\n",
			sum, a.Stats().MallocCalls, a.Stats().FreeCalls)
		c := t.Counters()
		fmt.Printf("app core: %d cycles, %d instructions, %d LLC load misses, %d dTLB load misses\n",
			c.Cycles, c.Instructions, c.LLCLoadMisses, c.DTLBLoadMisses)
	})

	wall := m.Run()
	fmt.Printf("machine ran for %d simulated cycles\n", wall)
	server := m.CoreCounters(15)
	fmt.Printf("allocator core: %d cycles, %d instructions (all metadata work happened here)\n",
		server.Cycles, server.Instructions)
}
