// Offload anatomy: measures the cost of each NextGen-Malloc operation
// mode from the application core's perspective — synchronous ring malloc
// (round trip), stash-hit malloc (predictive preallocation, no round
// trip), asynchronous free (ring push), and synchronous free — the
// trade-offs the paper's §3.1.1 and §4.1 model weighs.
package main

import (
	"fmt"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/sim"
)

// measure reports average app-core cycles per call of f over n calls.
func measure(t *sim.Thread, n int, f func()) float64 {
	start := t.Clock()
	for i := 0; i < n; i++ {
		f()
	}
	return float64(t.Clock()-start) / float64(n)
}

func run(label string, cfg core.Config) {
	m := sim.New(sim.DefaultConfig())
	srv := core.NewServer()
	if cfg.Offload {
		m.SpawnDaemon("allocator-core", 15, srv.Run)
	}
	m.Spawn("app", 0, func(t *sim.Thread) {
		a := core.New(t, cfg)
		if cfg.Offload {
			srv.Attach(a)
		}
		const n = 2000
		addrs := make([]uint64, 0, n)

		mallocCost := measure(t, n, func() {
			addrs = append(addrs, a.Malloc(t, 64))
		})
		i := 0
		freeCost := measure(t, n, func() {
			a.Free(t, addrs[i])
			i++
		})
		a.Flush(t)
		fmt.Printf("%-28s malloc %7.1f cycles/call   free %7.1f cycles/call\n",
			label, mallocCost, freeCost)
	})
	m.Run()
}

func main() {
	fmt.Println("NextGen-Malloc operation costs as seen by the application core")
	fmt.Println("(64-byte objects, warm caches; compare with the paper's ~268-cycle")
	fmt.Println("4x67-cycle synchronization estimate in §4.1)")
	fmt.Println()

	inline := core.DefaultConfig()
	inline.Offload = false
	run("inline (no offload)", inline)

	plain := core.DefaultConfig()
	run("offload, sync malloc", plain)

	pre := core.DefaultConfig()
	pre.Prealloc = 12
	run("offload + preallocation", pre)

	syncFree := core.DefaultConfig()
	syncFree.AsyncFree = false
	run("offload, sync free", syncFree)
}
