// Command ngm-bench regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	ngm-bench [-scale quick|full] [experiment ...]
//
// With no experiment arguments it runs everything. Experiments:
// figure1, table1, table2, table3, model, ablate-layout, ablate-core,
// ablate-prealloc, sensitivity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nextgenmalloc/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "full", "experiment scale: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonPath := flag.String("json", "", "also write raw results (PMU counters per run) as JSON to this file")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "ngm-bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	runners := map[string]func() experiments.Outcome{
		"figure1":         func() experiments.Outcome { return experiments.Figure1(scale) },
		"table1":          func() experiments.Outcome { return experiments.Table1(scale) },
		"table2":          func() experiments.Outcome { return experiments.Table2(scale) },
		"table3":          func() experiments.Outcome { return experiments.Table3(scale) },
		"model":           func() experiments.Outcome { return experiments.Model() },
		"ablate-layout":   func() experiments.Outcome { return experiments.AblateLayout(scale) },
		"ablate-core":     func() experiments.Outcome { return experiments.AblateCore(scale) },
		"ablate-prealloc": func() experiments.Outcome { return experiments.AblatePrealloc(scale) },
		"sensitivity":     func() experiments.Outcome { return experiments.Sensitivity(scale) },
		"ablate-gc":       func() experiments.Outcome { return experiments.AblateGC(scale) },
		"ablate-faas":     func() experiments.Outcome { return experiments.AblateFaaS(scale) },
		"ablate-gpu":      func() experiments.Outcome { return experiments.AblateGPU(scale) },
		"ablate-scaling":  func() experiments.Outcome { return experiments.AblateScaling(scale) },
		"ablate-room":     func() experiments.Outcome { return experiments.AblateRoom(scale) },
	}
	order := []string{
		"figure1", "table1", "table2", "table3", "model",
		"ablate-layout", "ablate-core", "ablate-prealloc", "sensitivity",
		"ablate-gc", "ablate-faas", "ablate-gpu", "ablate-scaling", "ablate-room",
	}

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = order
	}
	var outcomes []experiments.Outcome
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "ngm-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out := run()
		outcomes = append(outcomes, out)
		fmt.Printf("=== %s (scale=%s) ===\n%s\n[%s elapsed]\n\n", out.ID, scale.Name, out.Text, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ngm-bench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outcomes); err != nil {
			fmt.Fprintf(os.Stderr, "ngm-bench: encode: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("raw results written to %s\n", *jsonPath)
	}
}
