// Command ngm-bench regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	ngm-bench [-scale quick|full] [-parallel N] [experiment ...]
//
// With no experiment arguments it runs everything. Experiments:
// figure1, table1, table2, table3, model, ablate-layout, ablate-core,
// ablate-prealloc, sensitivity (and more; see -list).
//
// Independent experiments — and the independent simulated machines
// inside each one — are fanned out across up to -parallel host cores.
// Every machine is bit-deterministic in isolation, so the results and
// the output order are identical at any parallelism level; only the
// wall time changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/experiments"
	"nextgenmalloc/internal/metrics"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/timeline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// defaultTimelineInterval is the sampling interval -chrome-trace implies
// when -timeline is not given explicitly.
const defaultTimelineInterval = 50000

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ngm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleName := fs.String("scale", "full", "experiment scale: quick or full")
	list := fs.Bool("list", false, "list experiment ids and exit")
	jsonPath := fs.String("json", "", "also write raw results (PMU counters per run) as JSON to this file")
	metricsPath := fs.String("metrics", "", "write machine-readable results ("+metrics.Schema+") to this file")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max simulated machines running concurrently (1 = serial)")
	batch := fs.Int("batch", -1, "override NextGen free-coalescing width for standard experiments, 1-4 (-1 = per-kind default)")
	prealloc := fs.String("prealloc", "", "override NextGen prealloc policy for standard experiments: off, static, or adaptive (empty = per-kind default)")
	layoutSpec := fs.String("layout", "", "override NextGen metadata layout for standard experiments: segregated, aggregated, or compact (empty = per-kind default)")
	cpuProfile := fs.String("cpuprofile", "", "write a host CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a host heap profile to this file at exit")
	faultSpec := fs.String("fault", "", "inject offload faults on every standard-experiment run: ;-separated plans, each a comma list of shard/seed/stall-len/stall-start/stall-period/drop/corrupt/slow key=value pairs (empty = none)")
	resSpec := fs.String("resilience", "", "offload degradation policy for standard-experiment runs: off, on/default, or a comma list of timeout/retries/backoff/fallback/probe/max-request key=value pairs (empty = kind default)")
	failoverSpec := fs.String("failover", "", "fleet malloc failover for standard-experiment runs: off, on/default, or the consecutive-timeout threshold before a client re-homes (empty = off; the failover-sweep owns its own policy)")
	timelineIv := fs.Uint64("timeline", 0, "sample a cycle-interval timeline every N cycles on every run (0 = off; implied by -chrome-trace)")
	tracePath := fs.String("chrome-trace", "", "write all runs as one Chrome trace-event JSON file (chrome://tracing / Perfetto)")
	warp := fs.Bool("warp", true, "skip provably-idle wait windows in the scheduler (bit-identical counters; -warp=false forces fully-stepped execution)")
	quantum := fs.Int64("quantum", 64, "scheduler lease slack in cycles (must be > 0)")
	servers := fs.Int("servers", 1, "offload server shard count for standard-experiment runs (the fleet-sweep owns its per-cell topology)")
	schedSpec := fs.String("sched", "", "offload ring service order for standard-experiment runs: fixed-scan, round-robin, doorbell-priority, or batch-drain (empty = fixed-scan)")
	partSpec := fs.String("partition", "", "fleet shard partition for standard-experiment runs: client or class (empty = client)")
	sloSpec := fs.String("slo", "", "per-tenant SLO tracking on every standard-experiment run: off, on/default, or a comma list of window/interactive/bulk/spans/target-ppm key=value pairs (empty = off; the slo-sweep owns its own tracker)")
	tenants := fs.Int("tenants", 0, "override the slo-sweep's tenant-count axis (0 = default axis)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *quantum <= 0 {
		fmt.Fprintf(stderr, "ngm-bench: -quantum must be > 0 (got %d)\n", *quantum)
		return 2
	}
	mcfg := sim.ScaledConfig()
	mcfg.Warp = *warp
	mcfg.Quantum = uint64(*quantum)
	experiments.SetMachine(&mcfg)

	tune, err := experiments.ParseTransport(*batch, *prealloc)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	experiments.SetTransport(tune)

	layoutTune, err := experiments.ParseLayout(*layoutSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	experiments.SetLayout(layoutTune)

	faultPlans, err := experiments.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	resilience, err := experiments.ParseResilience(*resSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	failoverAfter, err := experiments.ParseFailover(*failoverSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	experiments.SetFaults(faultPlans, experiments.WithFailover(resilience, failoverAfter))

	sched, err := core.ParseSched(*schedSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	part, err := core.ParsePartition(*partSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	if *servers < 0 {
		fmt.Fprintf(stderr, "ngm-bench: negative server count %d\n", *servers)
		return 2
	}
	experiments.SetFleet(*servers, sched, part)

	sloOpt, err := experiments.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
		return 2
	}
	experiments.SetSLO(sloOpt)
	if *tenants < 0 {
		fmt.Fprintf(stderr, "ngm-bench: negative tenant count %d\n", *tenants)
		return 2
	}
	experiments.SetTenants(*tenants)

	interval := *timelineIv
	if interval == 0 && *tracePath != "" {
		interval = defaultTimelineInterval
	}
	experiments.SetTimeline(interval)

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(stderr, "ngm-bench: unknown scale %q\n", *scaleName)
		return 2
	}

	runners := map[string]func() experiments.Outcome{
		"figure1":          func() experiments.Outcome { return experiments.Figure1(scale) },
		"table1":           func() experiments.Outcome { return experiments.Table1(scale) },
		"table2":           func() experiments.Outcome { return experiments.Table2(scale) },
		"table3":           func() experiments.Outcome { return experiments.Table3(scale) },
		"model":            func() experiments.Outcome { return experiments.Model() },
		"ablate-layout":    func() experiments.Outcome { return experiments.AblateLayout(scale) },
		"ablate-core":      func() experiments.Outcome { return experiments.AblateCore(scale) },
		"ablate-prealloc":  func() experiments.Outcome { return experiments.AblatePrealloc(scale) },
		"ablate-transport": func() experiments.Outcome { return experiments.AblateTransport(scale) },
		"sensitivity":      func() experiments.Outcome { return experiments.Sensitivity(scale) },
		"ablate-gc":        func() experiments.Outcome { return experiments.AblateGC(scale) },
		"ablate-faas":      func() experiments.Outcome { return experiments.AblateFaaS(scale) },
		"ablate-gpu":       func() experiments.Outcome { return experiments.AblateGPU(scale) },
		"ablate-scaling":   func() experiments.Outcome { return experiments.AblateScaling(scale) },
		"ablate-room":      func() experiments.Outcome { return experiments.AblateRoom(scale) },
		"fault-sweep":      func() experiments.Outcome { return experiments.FaultSweep(scale) },
		"fleet-sweep":      func() experiments.Outcome { return experiments.FleetSweep(scale) },
		"slo-sweep":        func() experiments.Outcome { return experiments.SLOSweep(scale) },
		"failover-sweep":   func() experiments.Outcome { return experiments.FailoverSweep(scale) },
	}
	order := []string{
		"figure1", "table1", "table2", "table3", "model",
		"ablate-layout", "ablate-core", "ablate-prealloc", "ablate-transport",
		"sensitivity",
		"ablate-gc", "ablate-faas", "ablate-gpu", "ablate-scaling", "ablate-room",
		"fault-sweep", "fleet-sweep", "slo-sweep", "failover-sweep",
	}

	if *list {
		for _, id := range order {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = order
	}
	// Validate every id before running anything: a typo late in the list
	// must not throw away minutes of completed experiments.
	for _, id := range ids {
		if _, ok := runners[id]; !ok {
			fmt.Fprintf(stderr, "ngm-bench: unknown experiment %q (try -list)\n", id)
			return 2
		}
	}

	if *parallel < 1 {
		fmt.Fprintf(stderr, "ngm-bench: -parallel must be >= 1\n")
		return 2
	}
	experiments.SetParallelism(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "ngm-bench: close %s: %v\n", *cpuProfile, err)
			}
		}()
	}

	outcomes := runExperiments(ids, runners, scale, *parallel, stdout, stderr)

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, outcomes); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "raw results written to %s\n", *jsonPath)
	}

	if *tracePath != "" {
		if err := writeChromeTrace(*tracePath, outcomes); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace written to %s\n", *tracePath)
	}

	if *metricsPath != "" {
		var exps []metrics.Experiment
		for _, out := range outcomes {
			if len(out.Results) == 0 {
				continue // synthetic experiments (model) carry no PMU runs
			}
			exps = append(exps, metrics.FromResults(out.ID, out.Results))
		}
		if err := metrics.NewFile(exps...).WriteFile(*metricsPath); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "ngm-bench: close %s: %v\n", *memProfile, err)
			return 1
		}
	}
	return 0
}

// runExperiments executes the selected experiments and prints each
// outcome in selection order. At -parallel 1 the loop streams: each
// experiment prints as soon as it finishes. Above 1 all experiments
// launch at once (their machine fan-out is bounded by the shared
// semaphore in internal/experiments), completions are announced on
// stderr, and stdout still renders strictly in order.
func runExperiments(ids []string, runners map[string]func() experiments.Outcome, scale experiments.Scale, parallel int, stdout, stderr io.Writer) []experiments.Outcome {
	outcomes := make([]experiments.Outcome, len(ids))
	elapsed := make([]time.Duration, len(ids))
	if parallel == 1 {
		for i, id := range ids {
			start := time.Now()
			outcomes[i] = runners[id]()
			elapsed[i] = time.Since(start)
			printOutcome(stdout, outcomes[i], scale, elapsed[i])
		}
		return outcomes
	}
	done := make([]chan struct{}, len(ids))
	for i := range ids {
		done[i] = make(chan struct{})
	}
	for i, id := range ids {
		go func(i int, id string) {
			defer close(done[i])
			start := time.Now()
			outcomes[i] = runners[id]()
			elapsed[i] = time.Since(start)
			fmt.Fprintf(stderr, "ngm-bench: %s done (%s)\n", id, elapsed[i].Round(time.Millisecond))
		}(i, id)
	}
	for i := range ids {
		<-done[i]
		printOutcome(stdout, outcomes[i], scale, elapsed[i])
	}
	return outcomes
}

func printOutcome(w io.Writer, out experiments.Outcome, scale experiments.Scale, d time.Duration) {
	fmt.Fprintf(w, "=== %s (scale=%s) ===\n%s\n[%s elapsed]\n\n", out.ID, scale.Name, out.Text, d.Round(time.Millisecond))
}

// writeChromeTrace bundles every sampled run of every outcome into one
// multi-process trace file (one pid per run).
func writeChromeTrace(path string, outcomes []experiments.Outcome) error {
	var runs []timeline.TraceRun
	for _, out := range outcomes {
		for _, r := range out.Results {
			if r.Timeline == nil {
				continue
			}
			tr := timeline.TraceRun{
				Name:       fmt.Sprintf("%s/%s/%s", out.ID, r.Allocator, r.Workload),
				Series:     r.Timeline,
				Latency:    r.Latency,
				ServerCore: r.ServerCore,
			}
			if r.SLO != nil {
				tr.Tenants = r.SLO.TraceSpans()
			}
			tr.Failover = r.Failover.TraceEvents()
			runs = append(runs, tr)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = timeline.WriteChromeTrace(f, runs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func writeJSON(path string, outcomes []experiments.Outcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(outcomes); err != nil {
		f.Close()
		return fmt.Errorf("encode: %w", err)
	}
	return f.Close()
}
