package main

import (
	"bytes"
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/experiments"
)

func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	rc := run(args, &out, &errb)
	return rc, out.String(), errb.String()
}

// resetGlobals undoes the package-level experiment configuration a run
// installs, so tests stay independent.
func resetGlobals() {
	experiments.SetMachine(nil)
	experiments.SetTransport(nil)
	experiments.SetLayout(nil)
	experiments.SetFault(nil, nil)
	experiments.SetTimeline(0)
	experiments.SetFleet(0, core.FixedScan, core.ByClient)
	experiments.SetSLO(nil)
	experiments.SetTenants(0)
	experiments.SetParallelism(1)
}

func TestRejectsBadFlags(t *testing.T) {
	defer resetGlobals()
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"bad scale":          {[]string{"-scale", "huge"}, "unknown scale"},
		"zero quantum":       {[]string{"-quantum", "0"}, "-quantum must be > 0"},
		"bad batch":          {[]string{"-batch", "9"}, "out of range"},
		"bad layout":         {[]string{"-layout", "bitmap"}, "unknown layout"},
		"bad fault":          {[]string{"-fault", "warp=1"}, "unknown key"},
		"bad resilience":     {[]string{"-resilience", "timeout"}, "not key=value"},
		"bad sched":          {[]string{"-sched", "fifo"}, "unknown scheduling policy"},
		"bad partition":      {[]string{"-partition", "thread"}, "unknown partition"},
		"negative servers":   {[]string{"-servers", "-2"}, "negative server count"},
		"unknown experiment": {[]string{"-scale", "quick", "nope"}, "unknown experiment"},
	} {
		rc, _, stderr := runCLI(tc.args...)
		if rc != 2 {
			t.Errorf("%s: exit code %d, want 2", name, rc)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q lacks %q", name, stderr, tc.want)
		}
	}
}

func TestListIncludesFleetSweep(t *testing.T) {
	defer resetGlobals()
	rc, stdout, stderr := runCLI("-list")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, id := range []string{"table3", "fault-sweep", "fleet-sweep"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output lacks %q:\n%s", id, stdout)
		}
	}
}

// TestModelRunsWithFleetFlags: the topology flags install cleanly and
// a (simulation-free) experiment still runs under them.
func TestModelRunsWithFleetFlags(t *testing.T) {
	defer resetGlobals()
	rc, stdout, stderr := runCLI("-scale", "quick", "-servers", "2", "-sched", "round-robin", "model")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "Analytical model") {
		t.Errorf("model output missing:\n%s", stdout)
	}
}

// TestTable3ShardedTopology: -servers/-sched reshape the standard
// experiments' offload runs end to end through the CLI.
func TestTable3ShardedTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six simulations")
	}
	defer resetGlobals()
	rc, stdout, stderr := runCLI("-scale", "quick", "-parallel", "2",
		"-servers", "2", "-sched", "round-robin", "table3")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "Table 3") {
		t.Errorf("table3 output missing:\n%s", stdout)
	}
}

func TestRejectsBadSLOFlags(t *testing.T) {
	defer resetGlobals()
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"bad slo key":      {[]string{"-slo", "latency=5"}, "unknown key"},
		"bad slo value":    {[]string{"-slo", "window=abc"}, "bad value"},
		"negative tenants": {[]string{"-tenants", "-4"}, "negative tenant count"},
	} {
		rc, _, stderr := runCLI(tc.args...)
		if rc != 2 {
			t.Errorf("%s: exit code %d, want 2", name, rc)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q lacks %q", name, stderr, tc.want)
		}
	}
}

func TestListIncludesSLOSweep(t *testing.T) {
	defer resetGlobals()
	rc, stdout, stderr := runCLI("-list")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "slo-sweep") {
		t.Errorf("-list output lacks slo-sweep:\n%s", stdout)
	}
}

// TestSLOSweepThroughCLI: the sweep renders through ngm-bench with the
// -tenants override collapsing the grid.
func TestSLOSweepThroughCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five simulations")
	}
	defer resetGlobals()
	defer experiments.SetSLO(nil)
	defer experiments.SetTenants(0)
	rc, stdout, stderr := runCLI("-scale", "quick", "-parallel", "2", "-tenants", "6", "slo-sweep")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{"SLO sweep", "ngm stall t6", "Per-tenant SLO ledger"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("sweep output lacks %q:\n%s", want, stdout)
		}
	}
}
