package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validDoc = `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[` +
	`{"allocator":"x","workload":"w","classes":{"user":{},"metadata":{},"ring":{},"global":{}}}]}]}`

const invalidDoc = `{"schema":"ngm-metrics/v0","experiments":[]}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExitCodes(t *testing.T) {
	valid := writeTemp(t, "valid.json", validDoc)
	invalid := writeTemp(t, "invalid.json", invalidDoc)
	missing := filepath.Join(t.TempDir(), "missing.json")

	for name, tc := range map[string]struct {
		args       []string
		stdin      string
		wantRC     int
		wantOut    string // substring of stdout, "" = ignore
		wantErr    string // substring of stderr, "" = ignore
		wantNotOut string // must NOT appear on stdout
	}{
		"no args":       {args: nil, wantRC: 2, wantErr: "usage:"},
		"bad flag":      {args: []string{"-nope"}, wantRC: 2},
		"missing file":  {args: []string{missing}, wantRC: 1, wantErr: "no such file"},
		"invalid doc":   {args: []string{invalid}, wantRC: 1, wantErr: "invalid.json"},
		"valid doc":     {args: []string{valid}, wantRC: 0, wantOut: ": ok"},
		"quiet valid":   {args: []string{"-q", valid}, wantRC: 0, wantNotOut: "ok"},
		"stdin valid":   {args: []string{"-"}, stdin: validDoc, wantRC: 0, wantOut: "<stdin>: ok"},
		"stdin invalid": {args: []string{"-"}, stdin: invalidDoc, wantRC: 1, wantErr: "<stdin>"},
		"mixed validity keeps going": {
			args: []string{invalid, valid}, wantRC: 1,
			wantOut: ": ok", wantErr: "invalid.json",
		},
		"quiet still prints errors": {
			args: []string{"-q", invalid}, wantRC: 1, wantErr: "invalid.json",
		},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			rc := run(tc.args, strings.NewReader(tc.stdin), &out, &errb)
			if rc != tc.wantRC {
				t.Errorf("exit %d, want %d (stderr %q)", rc, tc.wantRC, errb.String())
			}
			if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
				t.Errorf("stdout %q lacks %q", out.String(), tc.wantOut)
			}
			if tc.wantErr != "" && !strings.Contains(errb.String(), tc.wantErr) {
				t.Errorf("stderr %q lacks %q", errb.String(), tc.wantErr)
			}
			if tc.wantNotOut != "" && strings.Contains(out.String(), tc.wantNotOut) {
				t.Errorf("stdout %q should not contain %q", out.String(), tc.wantNotOut)
			}
		})
	}
}
