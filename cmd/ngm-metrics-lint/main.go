// Command ngm-metrics-lint validates that a file emitted by a -metrics
// flag is a well-formed ngm-metrics/v1 document (CI uses it to keep the
// schema a stable contract).
//
// Usage:
//
//	ngm-metrics-lint [-q] <file.json | -> ...
//
// The path "-" reads from stdin. -q suppresses the per-file "ok" lines
// (errors still print). Exit codes: 0 all valid, 1 read or validation
// failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nextgenmalloc/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ngm-metrics-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quiet := fs.Bool("q", false, "suppress per-file ok lines (errors still print)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: ngm-metrics-lint [-q] <file.json | -> ...")
		return 2
	}
	rc := 0
	for _, p := range paths {
		var data []byte
		var err error
		label := p
		if p == "-" {
			label = "<stdin>"
			data, err = io.ReadAll(stdin)
		} else {
			data, err = os.ReadFile(p)
		}
		if err != nil {
			fmt.Fprintf(stderr, "ngm-metrics-lint: %v\n", err)
			rc = 1
			continue
		}
		if err := metrics.Validate(data); err != nil {
			fmt.Fprintf(stderr, "ngm-metrics-lint: %s: %v\n", label, err)
			rc = 1
			continue
		}
		if !*quiet {
			fmt.Fprintf(stdout, "%s: ok\n", label)
		}
	}
	return rc
}
