// Command ngm-metrics-lint validates that a file emitted by a -metrics
// flag is a well-formed ngm-metrics/v1 document (CI uses it to keep the
// schema a stable contract).
//
// Usage:
//
//	ngm-metrics-lint out.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"nextgenmalloc/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ngm-metrics-lint <file.json> ...")
		return 2
	}
	rc := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ngm-metrics-lint: %v\n", err)
			rc = 1
			continue
		}
		if err := metrics.Validate(data); err != nil {
			fmt.Fprintf(os.Stderr, "ngm-metrics-lint: %s: %v\n", p, err)
			rc = 1
			continue
		}
		fmt.Printf("%s: ok\n", p)
	}
	return rc
}
