// Command ngm-trace records a workload's allocation trace to a file and
// replays traces against any allocator, so identical request streams can
// be compared across allocators (or archived as regression inputs).
//
// Usage:
//
//	ngm-trace record -workload xalanc -ops 50000 -o xalanc.ngt
//	ngm-trace replay -i xalanc.ngt -alloc ptmalloc2
package main

import (
	"flag"
	"fmt"
	"os"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/trace"
	"nextgenmalloc/internal/workload"
)

// replayWorkload drives a recorded trace as a single-threaded workload.
type replayWorkload struct {
	tr *trace.Trace
}

func (r *replayWorkload) Name() string                           { return "trace-replay" }
func (r *replayWorkload) Threads() int                           { return 1 }
func (r *replayWorkload) Setup(t *sim.Thread, a alloc.Allocator) {}
func (r *replayWorkload) Run(t *sim.Thread, part int, a alloc.Allocator) {
	trace.Replay(t, a, r.tr)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ngm-trace record -workload <name> -ops <n> -o <file>")
	fmt.Fprintln(os.Stderr, "       ngm-trace replay -i <file> -alloc <kind>")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wname := fs.String("workload", "xalanc", "workload to record (xalanc, churn)")
	ops := fs.Int("ops", 50000, "operation count")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "trace.ngt", "output file")
	_ = fs.Parse(args)

	var w workload.Workload
	switch *wname {
	case "xalanc":
		x := workload.DefaultXalanc(*ops)
		x.Seed = *seed
		w = x
	case "churn":
		w = &workload.Churn{NThreads: 1, Slots: 20000, Rounds: *ops, MinSize: 16, MaxSize: 256, Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "ngm-trace: workload %q is not recordable (single-threaded only)\n", *wname)
		os.Exit(2)
	}

	var rec *trace.Recorder
	harness.Run(harness.Options{
		Allocator: "bump",
		Workload:  w,
		Wrap: func(a alloc.Allocator) alloc.Allocator {
			rec = trace.NewRecorder(a)
			return rec
		},
	})
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngm-trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rec.Trace().Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "ngm-trace: encode: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d ops (%d mallocs) from %s to %s\n",
		len(rec.Trace().Ops), rec.Trace().Mallocs(), w.Name(), *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.ngt", "input trace file")
	kind := fs.String("alloc", "mimalloc", "allocator to replay against")
	_ = fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngm-trace: %v\n", err)
		os.Exit(1)
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ngm-trace: decode: %v\n", err)
		os.Exit(1)
	}
	res := harness.Run(harness.Options{Allocator: *kind, Workload: &replayWorkload{tr: tr}})
	fmt.Print(report.CounterTable(fmt.Sprintf("replay of %s on %s", *in, *kind), []harness.Result{res}))
	fmt.Printf("\nops replayed: %d, fragmentation %.3f\n", len(tr.Ops), res.AllocStats.Fragmentation())
}
