// Command ngm-trace records a workload's allocation trace to a file and
// replays traces against any allocator, so identical request streams can
// be compared across allocators (or archived as regression inputs).
//
// Usage:
//
//	ngm-trace record -workload xalanc -ops 50000 -o xalanc.ngt
//	ngm-trace replay -i xalanc.ngt -alloc ptmalloc2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/trace"
	"nextgenmalloc/internal/workload"
)

// replayWorkload drives a recorded trace as a single-threaded workload.
type replayWorkload struct {
	tr *trace.Trace
}

func (r *replayWorkload) Name() string                           { return "trace-replay" }
func (r *replayWorkload) Threads() int                           { return 1 }
func (r *replayWorkload) Setup(t *sim.Thread, a alloc.Allocator) {}
func (r *replayWorkload) Run(t *sim.Thread, part int, a alloc.Allocator) {
	trace.Replay(t, a, r.tr)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "replay":
		return replay(args[1:], stdout, stderr)
	}
	return usage(stderr)
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: ngm-trace record -workload <name> -ops <n> -o <file>")
	fmt.Fprintln(stderr, "       ngm-trace replay -i <file> -alloc <kind>")
	return 2
}

func record(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wname := fs.String("workload", "xalanc", "workload to record (xalanc, churn)")
	ops := fs.Int("ops", 50000, "operation count")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "trace.ngt", "output file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ops < 1 {
		fmt.Fprintf(stderr, "ngm-trace: -ops must be >= 1 (got %d)\n", *ops)
		return 2
	}

	var w workload.Workload
	switch *wname {
	case "xalanc":
		x := workload.DefaultXalanc(*ops)
		x.Seed = *seed
		w = x
	case "churn":
		w = &workload.Churn{NThreads: 1, Slots: 20000, Rounds: *ops, MinSize: 16, MaxSize: 256, Seed: *seed}
	default:
		fmt.Fprintf(stderr, "ngm-trace: workload %q is not recordable (single-threaded only)\n", *wname)
		return 2
	}

	var rec *trace.Recorder
	harness.Run(harness.Options{
		Allocator: "bump",
		Workload:  w,
		Wrap: func(a alloc.Allocator) alloc.Allocator {
			rec = trace.NewRecorder(a)
			return rec
		},
	})
	if rec == nil {
		// Wrap always runs for a workload that completed Setup; a nil
		// recorder means the harness never built the allocator.
		fmt.Fprintf(stderr, "ngm-trace: internal error: recorder was never attached\n")
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-trace: %v\n", err)
		return 1
	}
	if err := rec.Trace().Encode(f); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "ngm-trace: encode: %v\n", err)
		return 1
	}
	// Close errors are the last chance to see a failed flush (ENOSPC);
	// swallowing them would archive a truncated trace.
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "ngm-trace: close %s: %v\n", *out, err)
		return 1
	}
	fmt.Fprintf(stdout, "recorded %d ops (%d mallocs) from %s to %s\n",
		len(rec.Trace().Ops), rec.Trace().Mallocs(), w.Name(), *out)
	return 0
}

func replay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "trace.ngt", "input trace file")
	kind := fs.String("alloc", "mimalloc", "allocator to replay against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !harness.KnownKind(*kind) {
		fmt.Fprintf(stderr, "ngm-trace: unknown allocator %q (choose from: %s)\n", *kind, strings.Join(harness.Kinds, ", "))
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-trace: %v\n", err)
		return 1
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "ngm-trace: decode: %v\n", err)
		return 1
	}
	res := harness.Run(harness.Options{Allocator: *kind, Workload: &replayWorkload{tr: tr}})
	fmt.Fprint(stdout, report.CounterTable(fmt.Sprintf("replay of %s on %s", *in, *kind), []harness.Result{res}))
	fmt.Fprintf(stdout, "\nops replayed: %d, fragmentation %.3f\n", len(tr.Ops), res.AllocStats.Fragmentation())
	return 0
}
