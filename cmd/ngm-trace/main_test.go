package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	rc := run(args, &out, &errb)
	return rc, out.String(), errb.String()
}

func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xalanc.ngt")
	rc, stdout, stderr := runCLI("record", "-workload", "xalanc", "-ops", "2000", "-o", path)
	if rc != 0 {
		t.Fatalf("record exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "recorded") {
		t.Errorf("record output unexpected: %s", stdout)
	}

	rc, stdout, stderr = runCLI("replay", "-i", path, "-alloc", "ptmalloc2")
	if rc != 0 {
		t.Fatalf("replay exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "replay of") || !strings.Contains(stdout, "ops replayed") {
		t.Errorf("replay output unexpected: %s", stdout)
	}
	// A replay that did no work would report zero instructions.
	if strings.Contains(stdout, "instructions") && strings.Contains(stdout, " 0\n") {
		t.Logf("replay output:\n%s", stdout)
	}
}

func TestRecordValidation(t *testing.T) {
	rc, _, stderr := runCLI("record", "-workload", "larson")
	if rc != 2 || !strings.Contains(stderr, "not recordable") {
		t.Errorf("multi-thread record: exit %d, stderr %q", rc, stderr)
	}
	rc, _, stderr = runCLI("record", "-ops", "0")
	if rc != 2 || !strings.Contains(stderr, "-ops must be >= 1") {
		t.Errorf("zero ops record: exit %d, stderr %q", rc, stderr)
	}
	// Unwritable output path must fail cleanly, not crash.
	rc, _, stderr = runCLI("record", "-ops", "500", "-o", "/nonexistent-dir/trace.ngt")
	if rc != 1 || stderr == "" {
		t.Errorf("unwritable output: exit %d, stderr %q", rc, stderr)
	}
}

func TestReplayValidation(t *testing.T) {
	rc, _, stderr := runCLI("replay", "-i", "does-not-exist.ngt", "-alloc", "hoard")
	if rc != 2 || !strings.Contains(stderr, "unknown allocator") {
		t.Errorf("unknown alloc: exit %d, stderr %q", rc, stderr)
	}
	rc, _, stderr = runCLI("replay", "-i", "does-not-exist.ngt")
	if rc != 1 || stderr == "" {
		t.Errorf("missing input: exit %d, stderr %q", rc, stderr)
	}
}

func TestUsage(t *testing.T) {
	for _, args := range [][]string{nil, {"frobnicate"}} {
		rc, _, stderr := runCLI(args...)
		if rc != 2 || !strings.Contains(stderr, "usage:") {
			t.Errorf("args %v: exit %d, stderr %q", args, rc, stderr)
		}
	}
}
