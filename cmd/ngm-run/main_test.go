package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nextgenmalloc/internal/metrics"
)

func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	rc := run(args, &out, &errb)
	return rc, out.String(), errb.String()
}

func TestRejectsBadFlags(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"unknown alloc":      {[]string{"-alloc", "hoard"}, "unknown allocator"},
		"zero threads":       {[]string{"-threads", "0"}, "-threads must be >= 1"},
		"negative threads":   {[]string{"-threads", "-3"}, "-threads must be >= 1"},
		"zero ops":           {[]string{"-ops", "0"}, "-ops must be >= 1"},
		"negative ops":       {[]string{"-ops", "-5"}, "-ops must be >= 1"},
		"sh6bench sub-batch": {[]string{"-workload", "sh6bench", "-ops", "99"}, "one batch"},
		"unknown workload":   {[]string{"-workload", "nope"}, "unknown workload"},
		"batch too wide":     {[]string{"-batch", "7"}, "out of range"},
		"batch zero":         {[]string{"-batch", "0"}, "out of range"},
		"bad prealloc":       {[]string{"-prealloc", "bogus"}, "unknown prealloc policy"},
		"bad layout":         {[]string{"-layout", "bitmap"}, "unknown layout"},
		"bad fault key":      {[]string{"-fault", "warp=1"}, "unknown key"},
		"bad fault value":    {[]string{"-fault", "drop=abc"}, "bad value"},
		"bad resilience":     {[]string{"-resilience", "timeout"}, "not key=value"},
		"zero quantum":       {[]string{"-quantum", "0"}, "-quantum must be > 0"},
		"negative quantum":   {[]string{"-quantum", "-8"}, "-quantum must be > 0"},
		"fault off offload":  {[]string{"-alloc", "mimalloc", "-fault", "slow=2"}, "no offload server"},
		"bad sched":          {[]string{"-sched", "fifo"}, "unknown scheduling policy"},
		"bad partition":      {[]string{"-partition", "thread"}, "unknown partition"},
		"negative servers":   {[]string{"-servers", "-2"}, "negative server count"},
		"servers off offload": {
			[]string{"-alloc", "mimalloc", "-servers", "2"}, "no offload server"},
		"sched off offload": {
			[]string{"-alloc", "jemalloc", "-sched", "round-robin"}, "no offload server"},
		"partition off offload": {
			[]string{"-alloc", "tcmalloc", "-partition", "class"}, "no offload server"},
		"too many servers": {
			[]string{"-alloc", "nextgen", "-workload", "xmalloc", "-threads", "8", "-ops", "50", "-servers", "12"}, "collide"},
	} {
		rc, _, stderr := runCLI(tc.args...)
		if rc != 2 {
			t.Errorf("%s: exit code %d, want 2", name, rc)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q lacks %q", name, stderr, tc.want)
		}
	}
}

func TestRunPrintsAttributionAndWritesMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	rc, stdout, stderr := runCLI("-alloc", "ptmalloc2", "-workload", "xalanc", "-ops", "1500", "-metrics", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{"miss attribution", "LLC-miss % metadata", "wall cycles"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("emitted metrics file invalid: %v", err)
	}
}

func TestFaultRunPrintsDegradationAndWritesMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "3000",
		"-fault", "stall-len=60000,stall-start=30000,stall-period=240000,seed=7",
		"-resilience", "timeout=4000,retries=1,fallback=1",
		"-metrics", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{"offload degradation telemetry", "fallback entries", "injected stalls"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("emitted metrics file invalid: %v", err)
	}
	if !strings.Contains(string(data), "\"resilience\"") {
		t.Error("metrics file lacks the resilience block")
	}
}

func TestCleanRunPrintsNoDegradation(t *testing.T) {
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if strings.Contains(stdout, "offload degradation telemetry") {
		t.Errorf("unarmed run printed degradation telemetry:\n%s", stdout)
	}
}

func TestSh6benchTruncationWarns(t *testing.T) {
	rc, _, stderr := runCLI("-alloc", "bump", "-workload", "sh6bench", "-ops", "250")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stderr, "truncated to 200") {
		t.Errorf("stderr lacks the truncation warning: %q", stderr)
	}
	// A whole number of batches warns about nothing.
	rc, _, stderr = runCLI("-alloc", "bump", "-workload", "sh6bench", "-ops", "300")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if strings.Contains(stderr, "truncated") {
		t.Errorf("whole-batch run still warned: %q", stderr)
	}
}

func TestFleetRunPrintsPerServerBlock(t *testing.T) {
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xmalloc",
		"-threads", "4", "-ops", "800", "-servers", "2", "-sched", "round-robin")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{"server 0 (core", "server 1 (core", "max service gap"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
}

// TestDefaultTopologyFlagsBitIdentical: spelling out the default
// topology must not change a single output byte — the explicit flags
// are the no-op they claim to be.
func TestDefaultTopologyFlagsBitIdentical(t *testing.T) {
	args := []string{"-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500"}
	rcA, plain, errA := runCLI(args...)
	rcB, explicit, errB := runCLI(append([]string{"-servers", "1", "-sched", "fixed-scan", "-partition", "client"}, args...)...)
	if rcA != 0 || rcB != 0 {
		t.Fatalf("exits %d/%d, stderr: %s%s", rcA, rcB, errA, errB)
	}
	if plain != explicit {
		t.Errorf("explicit default topology changed the output:\n--- default ---\n%s\n--- explicit ---\n%s", plain, explicit)
	}
}

func TestSh6benchMinimumBatchRuns(t *testing.T) {
	// Exactly one batch is the smallest legal op count and must do work.
	rc, stdout, stderr := runCLI("-alloc", "bump", "-workload", "sh6bench", "-ops", "100")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if strings.Contains(stdout, "mallocs/frees:  0 / 0") {
		t.Errorf("one-batch sh6bench did no allocations:\n%s", stdout)
	}
}

// stripWarpLines drops the "time warp:" host-telemetry line, the only
// stdout line allowed to differ between -warp settings.
func stripWarpLines(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "time warp:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestWarpFlagBitIdenticalOutput(t *testing.T) {
	args := []string{"-alloc", "nextgen", "-workload", "xmalloc", "-threads", "2", "-ops", "400"}
	rcOn, on, errOn := runCLI(args...)
	rcOff, off, errOff := runCLI(append([]string{"-warp=false"}, args...)...)
	if rcOn != 0 || rcOff != 0 {
		t.Fatalf("exits %d/%d, stderr: %s%s", rcOn, rcOff, errOn, errOff)
	}
	if !strings.Contains(on, "time warp:") {
		t.Errorf("default (warp-on) offload run reported no warp activity:\n%s", on)
	}
	if strings.Contains(off, "time warp:") {
		t.Errorf("-warp=false run still reported warp activity:\n%s", off)
	}
	if stripWarpLines(on) != stripWarpLines(off) {
		t.Errorf("-warp changed the simulation output:\n--- on ---\n%s\n--- off ---\n%s", on, off)
	}
}

// TestLayoutFlagSelectsCompact: -layout compact rides any NextGen kind
// and the metrics doc records the layout and its dense record stride.
func TestLayoutFlagSelectsCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	rc, _, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500",
		"-layout", "compact", "-metrics", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("metrics file invalid: %v", err)
	}
	for _, want := range []string{`"layout": "compact"`, `"meta_record_bytes": 192`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics doc lacks %s", want)
		}
	}
}

// TestDefaultLayoutFlagBitIdentical: spelling out -layout segregated on
// a default run must not change a single output byte.
func TestDefaultLayoutFlagBitIdentical(t *testing.T) {
	args := []string{"-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500"}
	rcA, plain, errA := runCLI(args...)
	rcB, explicit, errB := runCLI(append([]string{"-layout", "segregated"}, args...)...)
	if rcA != 0 || rcB != 0 {
		t.Fatalf("exits %d/%d, stderr: %s%s", rcA, rcB, errA, errB)
	}
	if plain != explicit {
		t.Errorf("explicit -layout segregated changed the output:\n--- default ---\n%s\n--- explicit ---\n%s", plain, explicit)
	}
}

func TestServiceRunPrintsSLOTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	trace := filepath.Join(t.TempDir(), "t.json")
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "service",
		"-threads", "2", "-ops", "60", "-tenants", "5", "-slo", "on",
		"-metrics", path, "-chrome-trace", trace)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{"per-tenant SLO ledger", "violations", "worst window:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("emitted metrics file invalid: %v", err)
	}
	if !strings.Contains(string(data), "\"slo\"") {
		t.Error("metrics file lacks the slo block")
	}
	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tdata), "\"slo\"") || !strings.Contains(string(tdata), "tenant 0") {
		t.Error("chrome trace lacks tenant-labeled slo spans")
	}
}

func TestSLOFlagRejectsBadSpecs(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"bad slo key":   {[]string{"-slo", "latency=5"}, "unknown key"},
		"bad slo value": {[]string{"-slo", "window=abc"}, "bad value"},
		"zero window":   {[]string{"-slo", "window=0"}, "window must be positive"},
		"zero tenants":  {[]string{"-tenants", "0"}, "-tenants must be >= 1"},
	} {
		rc, _, stderr := runCLI(tc.args...)
		if rc != 2 {
			t.Errorf("%s: exit code %d, want 2", name, rc)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q lacks %q", name, stderr, tc.want)
		}
	}
}

// TestSLOOffFlagsBitIdentical: disarmed SLO flags on a non-service
// workload must not change a single output byte.
func TestSLOOffFlagsBitIdentical(t *testing.T) {
	args := []string{"-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500"}
	rcA, plain, errA := runCLI(args...)
	rcB, explicit, errB := runCLI(append([]string{"-slo", "off", "-tenants", "8"}, args...)...)
	if rcA != 0 || rcB != 0 {
		t.Fatalf("exits %d/%d, stderr: %s%s", rcA, rcB, errA, errB)
	}
	if plain != explicit {
		t.Errorf("disarmed slo flags changed the output:\n--- default ---\n%s\n--- explicit ---\n%s", plain, explicit)
	}
}

// TestSLOArmedNonServiceWarns: arming the tracker on a workload that
// never observes must warn but still exit 0 with an empty ledger.
func TestSLOArmedNonServiceWarns(t *testing.T) {
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500", "-slo", "on")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stderr, "reports no tenant requests") {
		t.Errorf("stderr lacks the no-tenant warning: %q", stderr)
	}
	if !strings.Contains(stdout, "no slo data recorded") {
		t.Errorf("stdout lacks the empty-ledger notice:\n%s", stdout)
	}
}
