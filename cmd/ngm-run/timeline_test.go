package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRejectsBadTimelineFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"non-numeric": {"-timeline", "fast"},
		"negative":    {"-timeline", "-100"},
		"float":       {"-timeline", "1.5"},
	} {
		rc, _, stderr := runCLI(args...)
		if rc != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr %q)", name, rc, stderr)
		}
	}
}

func TestTimelinePrintsTables(t *testing.T) {
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "2000", "-timeline", "5000")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	for _, want := range []string{
		// Note: the printed interval can exceed the requested 5000 when
		// decimation doubles it to bound memory.
		"timeline (worker cores", "samples, interval ",
		"offload request latency", "malloc end-to-end",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
}

func TestNoTimelineWithoutFlag(t *testing.T) {
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500")
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if strings.Contains(stdout, "timeline (worker cores") {
		t.Errorf("timeline printed without -timeline:\n%s", stdout)
	}
}

// TestChromeTraceImpliesSampling: -chrome-trace alone must arm the
// sampler at the default interval and write a parseable trace.
func TestChromeTraceImpliesSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	rc, stdout, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "2000", "-chrome-trace", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stdout, "timeline (worker cores") {
		t.Errorf("-chrome-trace did not imply sampling:\n%s", stdout)
	}
	if !strings.Contains(stdout, "chrome trace written to "+path) {
		t.Errorf("no trace confirmation:\n%s", stdout)
	}
	if strings.Contains(stderr, "warning") {
		t.Errorf("offload run should not warn: %s", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	hasX := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			hasX = true
			break
		}
	}
	if !hasX {
		t.Error("offload trace carries no span events")
	}
}

// TestChromeTraceNonOffloadWarns: tracing an inline allocator still
// writes the counter timeline but warns on stderr that no spans exist.
func TestChromeTraceNonOffloadWarns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	rc, stdout, stderr := runCLI("-alloc", "ptmalloc2", "-workload", "xalanc", "-ops", "1500", "-chrome-trace", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "no offload spans") {
		t.Errorf("missing non-offload warning, stderr: %q", stderr)
	}
	if !strings.Contains(stdout, "chrome trace written to "+path) {
		t.Errorf("trace not written despite warning:\n%s", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			t.Fatal("inline-allocator trace contains span events")
		}
	}
}

func TestChromeTraceUnwritablePath(t *testing.T) {
	rc, _, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "1500",
		"-chrome-trace", filepath.Join(t.TempDir(), "missing-dir", "trace.json"))
	if rc != 1 {
		t.Errorf("exit %d, want 1 for unwritable trace path (stderr %q)", rc, stderr)
	}
}

// TestSampledMetricsValidate: -timeline plus -metrics must produce a
// document that carries the timeline and still lints clean.
func TestSampledMetricsValidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	rc, _, stderr := runCLI("-alloc", "nextgen", "-workload", "xalanc", "-ops", "2000",
		"-timeline", "5000", "-metrics", path)
	if rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"timeline"`, `"offload_latency"`} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics output lacks %s", want)
		}
	}
}
