// Command ngm-run executes one (allocator, workload) pair on the
// simulated machine and prints the PMU counters, the per-class miss
// attribution, allocator statistics, and kernel accounting.
//
// Usage:
//
//	ngm-run -alloc mimalloc -workload xalanc -ops 100000
//	ngm-run -alloc nextgen -workload xmalloc -threads 4 -metrics out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/experiments"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/metrics"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/timeline"
	"nextgenmalloc/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sh6benchBatch is the fixed batch size ngm-run configures; -ops below
// one batch would silently truncate to zero passes.
const sh6benchBatch = 100

// defaultTimelineInterval is the sampling interval -chrome-trace implies
// when -timeline is not given explicitly.
const defaultTimelineInterval = 50000

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ngm-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("alloc", "nextgen", "allocator: "+strings.Join(harness.Kinds, ", "))
	wname := fs.String("workload", "xalanc", "workload: xalanc, xmalloc, cache-scratch, cache-thrash, larson, churn, sh6bench, faas, service")
	ops := fs.Int("ops", 100000, "operation count (total or per thread, workload-dependent)")
	threads := fs.Int("threads", 1, "worker thread count (multi-thread workloads)")
	seed := fs.Uint64("seed", 1, "workload seed")
	batch := fs.Int("batch", -1, "override NextGen free-coalescing width, 1-4 (-1 = per-kind default)")
	servers := fs.Int("servers", 1, "offload server shard count (NextGen offload kinds; clients are partitioned across shards)")
	schedSpec := fs.String("sched", "", "offload ring service order: fixed-scan, round-robin, doorbell-priority, or batch-drain (empty = fixed-scan)")
	partSpec := fs.String("partition", "", "fleet shard partition: client or class (empty = client)")
	prealloc := fs.String("prealloc", "", "override NextGen prealloc policy: off, static, or adaptive (empty = per-kind default)")
	layoutSpec := fs.String("layout", "", "override NextGen metadata layout: segregated, aggregated, or compact (empty = per-kind default)")
	faultSpec := fs.String("fault", "", "inject offload faults: ;-separated plans, each a comma list of shard/seed/stall-len/stall-start/stall-period/drop/corrupt/slow key=value pairs (empty = none)")
	resSpec := fs.String("resilience", "", "offload degradation policy: off, on/default, or a comma list of timeout/retries/backoff/fallback/probe/max-request key=value pairs (empty = kind default)")
	failoverSpec := fs.String("failover", "", "fleet malloc failover: off, on/default, or the consecutive-timeout threshold before a client re-homes (empty = off; needs -servers >= 2)")
	sloSpec := fs.String("slo", "", "per-tenant SLO tracking: off, on/default, or a comma list of window/interactive/bulk/spans/target-ppm key=value pairs (empty = off; only the service workload reports tenants)")
	tenants := fs.Int("tenants", 8, "tenant count for the service workload (ignored by other workloads)")
	metricsPath := fs.String("metrics", "", "write machine-readable results ("+metrics.Schema+") to this file")
	timelineIv := fs.Uint64("timeline", 0, "sample a cycle-interval timeline every N cycles (0 = off; implied by -chrome-trace)")
	tracePath := fs.String("chrome-trace", "", "write a Chrome trace-event JSON file (chrome://tracing / Perfetto) to this path")
	warp := fs.Bool("warp", true, "skip provably-idle wait windows in the scheduler (bit-identical counters; -warp=false forces fully-stepped execution)")
	quantum := fs.Int64("quantum", 64, "scheduler lease slack in cycles (must be > 0)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Validate everything up front: a bad flag must fail fast with a
	// usage error, not panic mid-run or silently do no work.
	if !harness.KnownKind(*kind) {
		fmt.Fprintf(stderr, "ngm-run: unknown allocator %q (choose from: %s)\n", *kind, strings.Join(harness.Kinds, ", "))
		return 2
	}
	transportTune, err := experiments.ParseTransport(*batch, *prealloc)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	layoutTune, err := experiments.ParseLayout(*layoutSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	tune := experiments.Tunes(transportTune, layoutTune)
	faultPlans, err := experiments.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	resilience, err := experiments.ParseResilience(*resSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	failoverAfter, err := experiments.ParseFailover(*failoverSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	resilience = experiments.WithFailover(resilience, failoverAfter)
	sloOpt, err := experiments.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	if *tenants < 1 {
		fmt.Fprintf(stderr, "ngm-run: -tenants must be >= 1 (got %d)\n", *tenants)
		return 2
	}
	if len(faultPlans) > 0 && !harness.OffloadKind(*kind) {
		fmt.Fprintf(stderr, "ngm-run: -fault targets the offload path; %q runs no offload server\n", *kind)
		return 2
	}
	if failoverAfter > 0 && *servers < 2 {
		fmt.Fprintf(stderr, "ngm-run: -failover re-homes across fleet shards; it needs -servers >= 2 (got %d)\n", *servers)
		return 2
	}
	sched, err := core.ParseSched(*schedSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	part, err := core.ParsePartition(*partSpec)
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	if (*servers != 1 || sched != core.FixedScan || part != core.ByClient) && !harness.OffloadKind(*kind) {
		fmt.Fprintf(stderr, "ngm-run: -servers/-sched/-partition target the offload path; %q runs no offload server\n", *kind)
		return 2
	}
	if *threads < 1 {
		fmt.Fprintf(stderr, "ngm-run: -threads must be >= 1 (got %d)\n", *threads)
		return 2
	}
	if *ops < 1 {
		fmt.Fprintf(stderr, "ngm-run: -ops must be >= 1 (got %d)\n", *ops)
		return 2
	}
	if *quantum <= 0 {
		fmt.Fprintf(stderr, "ngm-run: -quantum must be > 0 (got %d)\n", *quantum)
		return 2
	}
	if *wname == "sh6bench" && *ops < sh6benchBatch {
		fmt.Fprintf(stderr, "ngm-run: sh6bench needs -ops >= %d (one batch); got %d\n", sh6benchBatch, *ops)
		return 2
	}
	if *wname == "sh6bench" && *ops%sh6benchBatch != 0 {
		// sh6bench runs whole batches; flag the remainder instead of
		// silently dropping it.
		fmt.Fprintf(stderr, "ngm-run: warning: sh6bench runs whole %d-op batches; -ops %d truncated to %d\n",
			sh6benchBatch, *ops, (*ops/sh6benchBatch)*sh6benchBatch)
	}
	// -chrome-trace without -timeline samples at the default interval;
	// the trace needs a series to emit.
	interval := *timelineIv
	if interval == 0 && *tracePath != "" {
		interval = defaultTimelineInterval
	}

	var w workload.Workload
	switch *wname {
	case "xalanc":
		x := workload.DefaultXalanc(*ops)
		x.Seed = *seed
		w = x
	case "xmalloc":
		w = &workload.Xmalloc{NThreads: *threads, OpsPerThread: *ops, TouchBytes: 128, Seed: *seed}
	case "cache-scratch":
		w = &workload.CacheScratch{NThreads: *threads, ObjSize: 8, Rounds: *ops, Inner: 50}
	case "cache-thrash":
		w = &workload.CacheThrash{NThreads: *threads, ObjSize: 8, Rounds: *ops, Inner: 50}
	case "larson":
		w = &workload.Larson{NThreads: *threads, SlotsPerThread: 4096, RoundsPerThread: *ops, MinSize: 16, MaxSize: 512, Seed: *seed}
	case "churn":
		w = &workload.Churn{NThreads: *threads, Slots: 20000, Rounds: *ops, MinSize: 16, MaxSize: 256, TouchBytes: 64, Seed: *seed}
	case "sh6bench":
		w = &workload.Sh6bench{NThreads: *threads, Passes: *ops / sh6benchBatch, BatchSize: sh6benchBatch, MinSize: 16, MaxSize: 512, RetainPasses: 5, Seed: *seed}
	case "faas":
		w = &workload.FaaS{Invocations: *ops, Profile: workload.DefaultFaaSProfile(), ComputePerAlloc: 40, Seed: *seed}
	case "service":
		w = &workload.Service{NWorkers: *threads, RequestsPerWorker: *ops, Tenants: *tenants, ChurnEvery: 4, MeanGapCycles: 60000, BurstLen: 4, Seed: *seed}
	default:
		fmt.Fprintf(stderr, "ngm-run: unknown workload %q\n", *wname)
		return 2
	}

	mcfg := sim.ScaledConfig()
	mcfg.Warp = *warp
	mcfg.Quantum = uint64(*quantum)

	res, err := harness.RunE(harness.Options{
		Allocator:      *kind,
		Workload:       w,
		Tune:           tune,
		SampleInterval: interval,
		FaultPlans:     faultPlans,
		Resilience:     resilience,
		Machine:        &mcfg,
		Servers:        *servers,
		Sched:          sched,
		Partition:      part,
		SLO:            sloOpt,
	})
	if err != nil {
		fmt.Fprintf(stderr, "ngm-run: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, report.CounterTable(fmt.Sprintf("%s on %s", *wname, *kind), []harness.Result{res}))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, report.AttributionTable("miss attribution (worker cores)", []harness.Result{res}))
	fmt.Fprintf(stdout, "\nwall cycles:    %s\n", report.Sci(float64(res.WallCycles)))
	fmt.Fprintf(stdout, "mallocs/frees:  %d / %d\n", res.AllocStats.MallocCalls, res.AllocStats.FreeCalls)
	fmt.Fprintf(stdout, "heap bytes:     %d (fragmentation %.3f)\n", res.AllocStats.HeapBytes, res.AllocStats.Fragmentation())
	fmt.Fprintf(stdout, "kernel:         %d mmap, %d brk, %d pages, %s cycles\n",
		res.Kernel.Mmap, res.Kernel.Brk, res.Kernel.Pages, report.Sci(float64(res.Kernel.Cycles)))
	if res.Warp.Windows > 0 {
		fmt.Fprintf(stdout, "time warp:      %d windows, %d rounds skipped, %s cycles (largest skip %d)\n",
			res.Warp.Windows, res.Warp.Rounds, report.Sci(float64(res.Warp.CyclesWarped)), res.Warp.LargestSkip)
	}
	if res.Served > 0 {
		fmt.Fprintf(stdout, "offload server: %s cycles, %d ops served\n", report.Sci(float64(res.Server.Cycles)), res.Served)
	}
	if len(res.Servers) > 1 {
		for i, sv := range res.Servers {
			busy := float64(0)
			if tot := sv.BusyCycles + sv.IdleCycles; tot > 0 {
				busy = float64(sv.BusyCycles) / float64(tot)
			}
			var gap uint64
			for _, cl := range sv.Clients {
				if cl.MaxGapCycles > gap {
					gap = cl.MaxGapCycles
				}
			}
			fmt.Fprintf(stdout, "  server %d (core %d): %d ops served, %.1f%% busy, %d clients, max service gap %s cycles\n",
				i, sv.Core, sv.Served, 100*busy, len(sv.Clients), report.Sci(float64(gap)))
		}
	}
	if tel := res.Offload; tel != nil {
		busy := float64(0)
		if tot := tel.ServerBusyCycles + tel.ServerIdleCycles; tot > 0 {
			busy = float64(tel.ServerBusyCycles) / float64(tot)
		}
		fmt.Fprintf(stdout, "rings:          %d pushes (%d full retries, %s stall cycles); server %.1f%% busy\n",
			tel.MallocRing.Pushes+tel.FreeRing.Pushes,
			tel.MallocRing.FullRetries+tel.FreeRing.FullRetries,
			report.Sci(float64(tel.MallocRing.StallCycles+tel.FreeRing.StallCycles)),
			100*busy)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.TransportTable("offload transport telemetry", []harness.Result{res}))
	}
	if res.Resilience != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.ResilienceTable("offload degradation telemetry", []harness.Result{res}))
		if err := res.CheckLiveness(); err != nil {
			fmt.Fprintf(stderr, "ngm-run: liveness: %v\n", err)
			return 1
		}
	}
	if res.Failover != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.FailoverTable("fleet failover telemetry", res.Failover))
	}
	if res.Timeline != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.TimelineTable("timeline (worker cores, per sample interval)", res.Timeline, res.ServerCore))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.LatencyTable("offload request latency (cycles)", res.Latency))
	}
	if res.SLO != nil {
		if !res.SLO.HasData() {
			fmt.Fprintf(stderr, "ngm-run: warning: -slo armed but %q reports no tenant requests (only the service workload does)\n", *wname)
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.SLOTable("per-tenant SLO ledger (end-to-end cycles)", res.SLO))
	}

	if *tracePath != "" {
		if !res.Latency.HasSpans() {
			fmt.Fprintf(stderr, "ngm-run: warning: %s records no offload spans (not an offload allocator); the trace carries counter series only\n", *kind)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "ngm-run: %v\n", err)
			return 1
		}
		tr := timeline.TraceRun{
			Name:       fmt.Sprintf("%s/%s", *kind, *wname),
			Series:     res.Timeline,
			Latency:    res.Latency,
			ServerCore: res.ServerCore,
		}
		if res.SLO != nil {
			tr.Tenants = res.SLO.TraceSpans()
		}
		tr.Failover = res.Failover.TraceEvents()
		err = timeline.WriteChromeTrace(f, []timeline.TraceRun{tr})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "ngm-run: write %s: %v\n", *tracePath, err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace written to %s\n", *tracePath)
	}

	if *metricsPath != "" {
		f := metrics.NewFile(metrics.FromResults("ngm-run", []harness.Result{res}))
		if err := f.WriteFile(*metricsPath); err != nil {
			fmt.Fprintf(stderr, "ngm-run: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsPath)
	}
	return 0
}
