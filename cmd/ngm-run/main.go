// Command ngm-run executes one (allocator, workload) pair on the
// simulated machine and prints the PMU counters, allocator statistics,
// and kernel accounting.
//
// Usage:
//
//	ngm-run -alloc mimalloc -workload xalanc -ops 100000
//	ngm-run -alloc nextgen -workload xmalloc -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

func main() {
	kind := flag.String("alloc", "nextgen", "allocator: "+strings.Join(harness.Kinds, ", "))
	wname := flag.String("workload", "xalanc", "workload: xalanc, xmalloc, cache-scratch, cache-thrash, larson, churn, sh6bench, faas")
	ops := flag.Int("ops", 100000, "operation count (total or per thread, workload-dependent)")
	threads := flag.Int("threads", 1, "worker thread count (multi-thread workloads)")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	var w workload.Workload
	switch *wname {
	case "xalanc":
		x := workload.DefaultXalanc(*ops)
		x.Seed = *seed
		w = x
	case "xmalloc":
		w = &workload.Xmalloc{NThreads: *threads, OpsPerThread: *ops, TouchBytes: 128, Seed: *seed}
	case "cache-scratch":
		w = &workload.CacheScratch{NThreads: *threads, ObjSize: 8, Rounds: *ops, Inner: 50}
	case "cache-thrash":
		w = &workload.CacheThrash{NThreads: *threads, ObjSize: 8, Rounds: *ops, Inner: 50}
	case "larson":
		w = &workload.Larson{NThreads: *threads, SlotsPerThread: 4096, RoundsPerThread: *ops, MinSize: 16, MaxSize: 512, Seed: *seed}
	case "churn":
		w = &workload.Churn{NThreads: *threads, Slots: 20000, Rounds: *ops, MinSize: 16, MaxSize: 256, TouchBytes: 64, Seed: *seed}
	case "sh6bench":
		w = &workload.Sh6bench{NThreads: *threads, Passes: *ops / 100, BatchSize: 100, MinSize: 16, MaxSize: 512, RetainPasses: 5, Seed: *seed}
	case "faas":
		w = &workload.FaaS{Invocations: *ops, Profile: workload.DefaultFaaSProfile(), ComputePerAlloc: 40, Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "ngm-run: unknown workload %q\n", *wname)
		os.Exit(2)
	}

	res := harness.Run(harness.Options{Allocator: *kind, Workload: w})
	fmt.Print(report.CounterTable(fmt.Sprintf("%s on %s", *wname, *kind), []harness.Result{res}))
	fmt.Printf("\nwall cycles:    %s\n", report.Sci(float64(res.WallCycles)))
	fmt.Printf("mallocs/frees:  %d / %d\n", res.AllocStats.MallocCalls, res.AllocStats.FreeCalls)
	fmt.Printf("heap bytes:     %d (fragmentation %.3f)\n", res.AllocStats.HeapBytes, res.AllocStats.Fragmentation())
	fmt.Printf("kernel:         %d mmap, %d brk, %d pages, %s cycles\n",
		res.Kernel.Mmap, res.Kernel.Brk, res.Kernel.Pages, report.Sci(float64(res.Kernel.Cycles)))
	if res.Served > 0 {
		fmt.Printf("offload server: %s cycles, %d ops served\n", report.Sci(float64(res.Server.Cycles)), res.Served)
	}
}
