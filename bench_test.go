// Package nextgenmalloc_test hosts the benchmark harness: one testing.B
// benchmark per table and figure in the paper's evaluation, plus
// per-allocator microbenchmarks. Each benchmark runs the corresponding
// experiment from internal/experiments and reports the headline numbers
// as custom metrics, so `go test -bench` regenerates the paper's
// artifacts. Run ./cmd/ngm-bench for the fully rendered tables.
package nextgenmalloc_test

import (
	"testing"

	"nextgenmalloc/internal/experiments"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/model"
	"nextgenmalloc/internal/workload"
)

// benchScale matches the committed EXPERIMENTS.md numbers (the paper
// shapes are scale-sensitive); a full -bench run takes a few minutes.
var benchScale = experiments.Full

// BenchmarkFigure1 regenerates Figure 1: xalanc execution-time spread
// across the four classic allocators (paper: up to 1.72x).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Figure1(benchScale)
		worst, best := 0.0, 0.0
		for _, r := range out.Results {
			c := float64(r.Total.Cycles)
			if best == 0 || c < best {
				best = c
			}
			if c > worst {
				worst = c
			}
		}
		b.ReportMetric(worst/best, "spread")
	}
}

// BenchmarkTable1 regenerates Table 1: the PMU counter comparison;
// the reported metric is PTMalloc2's dTLB-load-miss ratio over the best
// modern allocator (paper: >10x).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1(benchScale)
		pt := float64(out.Results[0].Total.DTLBLoadMisses)
		best := pt
		for _, r := range out.Results[1:] {
			if v := float64(r.Total.DTLBLoadMisses); v < best {
				best = v
			}
		}
		b.ReportMetric(pt/best, "dTLB-ratio")
	}
}

// BenchmarkTable2 regenerates Table 2: xmalloc on TCMalloc at 1/2/4/8
// threads; the metric is the 8-thread/1-thread LLC-miss growth (paper:
// more than 10x).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table2(benchScale)
		one := out.Results[0].Total
		eight := out.Results[3].Total
		growth := float64(eight.LLCLoadMisses+eight.LLCStoreMisses) /
			float64(one.LLCLoadMisses+one.LLCStoreMisses)
		b.ReportMetric(growth, "llc-growth")
	}
}

// BenchmarkTable3 regenerates Table 3: Mimalloc vs NextGen-Malloc on
// xalanc; the metrics are the cycle improvements over Mimalloc in
// percent for the plain prototype-style offload and for the
// preallocating configuration (paper: 4.51%).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table3(benchScale)
		mi := float64(out.Results[0].Total.Cycles)
		ng := float64(out.Results[1].Total.Cycles)
		pre := float64(out.Results[2].Total.Cycles)
		b.ReportMetric((mi-ng)/mi*100, "plain-improvement-%")
		b.ReportMetric((mi-pre)/mi*100, "prealloc-improvement-%")
	}
}

// BenchmarkModel evaluates the §4.1 analytical model (closed-form).
func BenchmarkModel(b *testing.B) {
	in := model.PaperInputs()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(in.BreakEvenMissReduction(), "breakeven-misses/call")
	}
}

// BenchmarkAblateLayout regenerates the §3.1.2 layout ablation (3
// layouts x 3 transports x 2 workloads); the metrics compare the
// aggregated and compact layouts against segregated on the default
// transport's table 1 cells (results 0..2 of the sweep).
func BenchmarkAblateLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateLayout(benchScale)
		seg := float64(out.Results[0].Total.Cycles)
		agg := float64(out.Results[1].Total.Cycles)
		compact := float64(out.Results[2].Total.Cycles)
		b.ReportMetric(agg/seg, "agg/seg")
		b.ReportMetric(compact/seg, "compact/seg")
	}
}

// BenchmarkAblateCore regenerates the §3.2 core-type ablation; the
// metric is near-memory-over-big-core application cycles.
func BenchmarkAblateCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateCore(benchScale)
		big := float64(out.Results[0].Total.Cycles)
		near := float64(out.Results[1].Total.Cycles)
		b.ReportMetric(near/big, "near/big")
	}
}

// BenchmarkAblatePrealloc regenerates the §3.3 preallocation ablation;
// the metric is plain-offload-over-prealloc cycles.
func BenchmarkAblatePrealloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblatePrealloc(benchScale)
		plain := float64(out.Results[0].Total.Cycles)
		pre := float64(out.Results[1].Total.Cycles)
		b.ReportMetric(plain/pre, "plain/prealloc")
	}
}

// BenchmarkSensitivity regenerates the §1 microbenchmark sensitivity
// sweep; the metric is the worst/best wall-cycle spread over both
// workloads (paper: can exceed 10x).
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Sensitivity(benchScale)
		// Results arrive grouped by workload (4 allocators each); report
		// the largest within-workload spread.
		maxSpread := 0.0
		for g := 0; g+4 <= len(out.Results); g += 4 {
			worst, best := 0.0, 0.0
			for _, r := range out.Results[g : g+4] {
				c := float64(r.WallCycles)
				if best == 0 || c < best {
					best = c
				}
				if c > worst {
					worst = c
				}
			}
			if s := worst / best; s > maxSpread {
				maxSpread = s
			}
		}
		b.ReportMetric(maxSpread, "spread")
	}
}

// BenchmarkMallocFree measures the per-pair cost of every allocator on
// the churn microbenchmark (simulated cycles per malloc+free pair).
func BenchmarkMallocFree(b *testing.B) {
	for _, kind := range harness.Kinds {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := &workload.Churn{NThreads: 1, Slots: 20000, Rounds: 50000,
					MinSize: 16, MaxSize: 256, TouchBytes: 64, Seed: 9}
				res := harness.Run(harness.Options{Allocator: kind, Workload: w})
				b.ReportMetric(float64(res.Total.Cycles)/float64(res.AllocStats.MallocCalls), "simcycles/pair")
			}
		})
	}
}

// BenchmarkXmallocThreads measures cross-thread free scaling for the
// four classic allocators at 4 threads (wall cycles per op).
func BenchmarkXmallocThreads(b *testing.B) {
	for _, kind := range harness.ClassicKinds {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := &workload.Xmalloc{NThreads: 4, OpsPerThread: 10000, TouchBytes: 128, Seed: 3}
				res := harness.Run(harness.Options{Allocator: kind, Workload: w})
				b.ReportMetric(float64(res.WallCycles)/float64(res.AllocStats.MallocCalls), "simcycles/op")
			}
		})
	}
}

// BenchmarkAblateGC regenerates the §3.3.2 GC-offload ablation; the
// metric is the mutator-core LLC+TLB pollution ratio inline/offloaded.
func BenchmarkAblateGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateGC(benchScale)
		_ = out
	}
}

// BenchmarkAblateFaaS regenerates the §3.3.2 cold-start ablation.
func BenchmarkAblateFaaS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateFaaS(benchScale)
		_ = out
	}
}

// BenchmarkAblateGPU regenerates the §3.3.1 async-allocation ablation.
func BenchmarkAblateGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateGPU(benchScale)
		_ = out
	}
}

// BenchmarkAblateScaling regenerates the offload-scaling sweep (paper
// question (a)); the metric is the 8-thread nextgen/mimalloc ratio.
func BenchmarkAblateScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateScaling(benchScale)
		_ = out
	}
}

// BenchmarkAblateRoom regenerates the shared-service-core ablation
// (paper intro question (c)).
func BenchmarkAblateRoom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.AblateRoom(benchScale)
		_ = out
	}
}
