// Package model implements the paper's §4.1 analytical cost model for
// offloading the allocator: the added inter-core synchronization cycles,
// the average LLC/TLB miss penalty derived from Table 1, and the
// break-even miss reduction per call.
package model

// Inputs parameterizes the break-even analysis.
type Inputs struct {
	// MallocCalls and FreeCalls are the workload's call counts.
	MallocCalls uint64
	FreeCalls   uint64
	// AtomicCycles is the latency of one atomic RMW (the paper uses 67,
	// citing [3]).
	AtomicCycles float64
	// AtomicsPerCall is how many synchronization points each offloaded
	// call needs (the §4.2 prototype uses two flag variables at the
	// beginning and end of each call: 4 atomic operations).
	AtomicsPerCall float64
	// MissPenalty is the average cost of one LLC/TLB miss (the paper
	// states 214 cycles).
	MissPenalty float64
}

// Counters is the subset of Table 1 the model consumes.
type Counters struct {
	Cycles          float64
	Instructions    float64
	LLCLoadMisses   float64
	LLCStoreMisses  float64
	DTLBLoadMisses  float64
	DTLBStoreMisses float64
}

// TotalMisses sums the four miss counters.
func (c Counters) TotalMisses() float64 {
	return c.LLCLoadMisses + c.LLCStoreMisses + c.DTLBLoadMisses + c.DTLBStoreMisses
}

// PaperInputs returns the exact numbers the paper plugs in for
// xalancbmk: 138,401,260 mallocs + 141,394,145 frees = 279,759,405
// calls, 67-cycle atomics, 4 per call, 214-cycle miss penalty.
func PaperInputs() Inputs {
	return Inputs{
		MallocCalls:    138401260,
		FreeCalls:      141394145,
		AtomicCycles:   67,
		AtomicsPerCall: 4,
		MissPenalty:    214,
	}
}

// PaperGlibc returns PTMalloc2's Table 1 row.
func PaperGlibc() Counters {
	return Counters{
		Cycles:          1.177e12,
		Instructions:    1.282e12,
		LLCLoadMisses:   4.059e8,
		LLCStoreMisses:  3.554e8,
		DTLBLoadMisses:  1.804e9,
		DTLBStoreMisses: 3.669e7,
	}
}

// PaperMimalloc returns Mimalloc's Table 1 row.
func PaperMimalloc() Counters {
	return Counters{
		Cycles:          6.959e11,
		Instructions:    1.262e12,
		LLCLoadMisses:   1.477e8,
		LLCStoreMisses:  1.321e8,
		DTLBLoadMisses:  1.628e8,
		DTLBStoreMisses: 2.787e7,
	}
}

// Calls returns the total offloaded call count.
func (in Inputs) Calls() float64 {
	return float64(in.MallocCalls + in.FreeCalls)
}

// AddedCycles is the synchronization overhead offloading introduces
// (the paper: "around 75 billion additional cycles").
func (in Inputs) AddedCycles() float64 {
	return in.Calls() * in.AtomicsPerCall * in.AtomicCycles
}

// BreakEvenMissReduction is the number of LLC/TLB misses each call (and
// the user code before the next call) must save for offloading to pay
// for itself (the paper: "at least 1.25").
func (in Inputs) BreakEvenMissReduction() float64 {
	return in.AddedCycles() / (in.MissPenalty * in.Calls())
}

// DerivedMissPenalty computes the average miss penalty implied by two
// Table 1 rows: the cycle gap divided by the miss gap (the paper derives
// 214 cycles from the Glibc and Mimalloc rows).
func DerivedMissPenalty(slow, fast Counters) float64 {
	return (slow.Cycles - fast.Cycles) / (slow.TotalMisses() - fast.TotalMisses())
}

// NetGainCycles estimates the end-to-end cycle change from offloading
// when each call saves missReduction misses: positive numbers mean
// offloading wins.
func (in Inputs) NetGainCycles(missReduction float64) float64 {
	return in.Calls()*missReduction*in.MissPenalty - in.AddedCycles()
}

// SweepBreakEven evaluates the break-even reduction across a range of
// atomic costs (the paper notes RMWs range from 67 cycles average to
// almost 700 worst-case [3, 26]).
func (in Inputs) SweepBreakEven(atomicCosts []float64) []float64 {
	out := make([]float64, len(atomicCosts))
	for i, c := range atomicCosts {
		tmp := in
		tmp.AtomicCycles = c
		out[i] = tmp.BreakEvenMissReduction()
	}
	return out
}
