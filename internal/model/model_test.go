package model

import (
	"math"
	"testing"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// TestModelPaperNumbers: the model must reproduce §4.1's arithmetic with
// the paper's own inputs.
func TestModelPaperNumbers(t *testing.T) {
	in := PaperInputs()

	// "malloc() and free() functions are called 279,759,405 times in
	// total" — the paper's printed sum transposes two digits; the true
	// sum of its own addends (138,401,260 + 141,394,145) is 279,795,405.
	if got := in.Calls(); got != 279795405 {
		t.Errorf("total calls = %.0f, want 279795405", got)
	}

	// "there will be around 75 billion additional cycles".
	if got := in.AddedCycles(); !within(got, 75e9, 0.005) {
		t.Errorf("added cycles = %.4g, want ~75e9", got)
	}

	// "NextGen-Malloc has to achieve a reduction of at least 1.25
	// Cache/TLB misses in each malloc()/free()".
	if got := in.BreakEvenMissReduction(); !within(got, 1.25, 0.005) {
		t.Errorf("break-even = %.4f, want ~1.25", got)
	}

	// "the average LLC and TLB miss penalty is 214 cycles" — the value
	// derived from the paper's own Table 1 rows is ~226; the model
	// reports the derivation, the inputs carry the paper's 214.
	derived := DerivedMissPenalty(PaperGlibc(), PaperMimalloc())
	if !within(derived, 225.7, 0.01) {
		t.Errorf("derived penalty = %.1f, want ~225.7", derived)
	}
}

func TestNetGainSign(t *testing.T) {
	in := PaperInputs()
	be := in.BreakEvenMissReduction()
	if in.NetGainCycles(be*0.9) >= 0 {
		t.Error("below break-even should lose")
	}
	if in.NetGainCycles(be*1.1) <= 0 {
		t.Error("above break-even should win")
	}
	if g := in.NetGainCycles(be); math.Abs(g) > 1e6 {
		t.Errorf("at break-even gain should be ~0, got %g", g)
	}
}

func TestSweepMonotonic(t *testing.T) {
	in := PaperInputs()
	out := in.SweepBreakEven([]float64{20, 67, 200, 700})
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Errorf("break-even not increasing with atomic cost: %v", out)
		}
	}
	// 700-cycle worst-case RMWs: offload needs >13 misses saved per call.
	if out[3] < 13 {
		t.Errorf("700-cycle break-even = %.2f, want > 13", out[3])
	}
}

func TestTotalMisses(t *testing.T) {
	c := Counters{LLCLoadMisses: 1, LLCStoreMisses: 2, DTLBLoadMisses: 3, DTLBStoreMisses: 4}
	if c.TotalMisses() != 10 {
		t.Errorf("TotalMisses = %v", c.TotalMisses())
	}
}
