// Package alloctest is a conformance suite run against every allocator
// in the repository: alignment, live-block non-overlap, data integrity
// under churn, bounded heap growth, large-object handling, and
// cross-thread free correctness. Allocator test packages call Run with
// their constructor.
package alloctest

import (
	"fmt"
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/sim"
)

// Factory builds the allocator under test on the setup thread. The
// returned cleanup (may be nil) runs on the same thread after the test
// body.
type Factory func(t *sim.Thread, m *sim.Machine) alloc.Allocator

// Options tunes the suite for slow allocators.
type Options struct {
	// Factory builds the allocator under test.
	Factory Factory
	// Daemon, when non-nil, is spawned as a service core before Run
	// (NextGen's server; it must honour Thread.Stopping).
	Daemon func(m *sim.Machine)
	// MaxThreads caps the cross-thread tests (0 = 4).
	MaxThreads int
	// SkipBounded skips the steady-state heap-growth check (for
	// allocators like bump that never reuse memory by design).
	SkipBounded bool
}

// run executes body as simulated thread(s); body[i] runs on core i.
func run(opts Options, body ...func(t *sim.Thread, a alloc.Allocator)) {
	m := sim.New(sim.ScaledConfig())
	if opts.Daemon != nil {
		opts.Daemon(m)
	}
	ready, _ := m.Kernel().Mmap(1)
	var a alloc.Allocator
	for i := range body {
		part := i
		fn := body[i]
		m.Spawn(fmt.Sprintf("conform-%d", part), part, func(t *sim.Thread) {
			if part == 0 {
				a = opts.Factory(t, m)
				t.AtomicStore64(ready, 1)
			} else {
				for t.Load64(ready) == 0 {
					t.Pause(100)
				}
			}
			t.FetchAdd64(ready+64, 1)
			for t.Load64(ready+64) != uint64(len(body)) {
				t.Pause(50)
			}
			fn(t, a)
			if f, ok := a.(alloc.Flusher); ok {
				f.Flush(t)
			}
		})
	}
	m.Run()
}

// block tracks one live allocation in the host-side shadow.
type block struct {
	addr, size uint64
	pattern    uint64
}

// fill writes a recognizable pattern through the whole block.
func fill(t *sim.Thread, b block) {
	for off := uint64(0); off+8 <= b.size; off += 8 {
		t.Store64(b.addr+off, b.pattern^off)
	}
	for off := b.size &^ 7; off < b.size; off++ {
		t.Store8(b.addr+off, b.pattern^off)
	}
}

// check validates the pattern; any mismatch means the allocator handed
// out overlapping memory or corrupted a live block with metadata.
func check(tb testing.TB, t *sim.Thread, b block) {
	tb.Helper()
	for off := uint64(0); off+8 <= b.size; off += 8 {
		if got := t.Load64(b.addr + off); got != b.pattern^off {
			tb.Errorf("corruption in block %#x size %d at +%d: got %#x want %#x",
				b.addr, b.size, off, got, b.pattern^off)
		}
	}
	for off := b.size &^ 7; off < b.size; off++ {
		if got := t.Load8(b.addr + off); got != (b.pattern^off)&0xff {
			tb.Errorf("corruption in tail of block %#x size %d at +%d", b.addr, b.size, off)
		}
	}
}

// overlaps reports whether [a, a+an) and [b, b+bn) intersect.
func overlaps(a, an, b, bn uint64) bool {
	return a < b+bn && b < a+an
}

// Run executes the whole conformance suite.
func Run(t *testing.T, opts Options) {
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 4
	}
	t.Run("Alignment", func(t *testing.T) { testAlignment(t, opts) })
	t.Run("SmallSizesExhaustive", func(t *testing.T) { testSmallSizes(t, opts) })
	t.Run("ChurnIntegrity", func(t *testing.T) { testChurn(t, opts) })
	t.Run("LargeObjects", func(t *testing.T) { testLarge(t, opts) })
	if !opts.SkipBounded {
		t.Run("HeapBounded", func(t *testing.T) { testBounded(t, opts) })
	}
	t.Run("CrossThreadFree", func(t *testing.T) { testCrossThread(t, opts) })
	t.Run("ZeroAndOddSizes", func(t *testing.T) { testOddSizes(t, opts) })
}

func testAlignment(tb *testing.T, opts Options) {
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		for _, size := range []uint64{1, 7, 8, 15, 16, 24, 33, 64, 100, 255, 256, 1000, 4096} {
			p := a.Malloc(t, size)
			if p == 0 {
				tb.Errorf("Malloc(%d) returned 0", size)
			}
			if p%8 != 0 {
				tb.Errorf("Malloc(%d) = %#x not 8-byte aligned", size, p)
			}
			if size >= 16 && p%16 != 0 {
				tb.Errorf("Malloc(%d) = %#x not 16-byte aligned", size, p)
			}
			a.Free(t, p)
		}
	})
}

func testSmallSizes(tb *testing.T, opts Options) {
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		var live []block
		for size := uint64(1); size <= 512; size++ {
			b := block{addr: a.Malloc(t, size), size: size, pattern: size * 0x9e3779b9}
			fill(t, b)
			live = append(live, b)
		}
		// Every block must still hold its pattern and none may overlap.
		for i, b := range live {
			check(tb, t, b)
			for _, o := range live[i+1:] {
				if overlaps(b.addr, b.size, o.addr, o.size) {
					tb.Errorf("blocks overlap: %#x+%d and %#x+%d", b.addr, b.size, o.addr, o.size)
				}
			}
		}
		for _, b := range live {
			a.Free(t, b.addr)
		}
	})
}

func testChurn(tb *testing.T, opts Options) {
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		const slots = 300
		live := make([]block, slots)
		rng := uint64(12345)
		next := func(n uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 33 % n
		}
		for round := 0; round < 4000; round++ {
			i := next(slots)
			if live[i].addr != 0 {
				check(tb, t, live[i])
				a.Free(t, live[i].addr)
			}
			size := 1 + next(700)
			b := block{addr: a.Malloc(t, size), size: size, pattern: uint64(round)*0x517cc1b7 + 1}
			if b.addr == 0 {
				tb.Errorf("round %d: Malloc(%d) returned 0", round, size)
			}
			fill(t, b)
			live[i] = b
			// Periodically validate a random other live block.
			if j := next(slots); live[j].addr != 0 {
				check(tb, t, live[j])
			}
		}
		for _, b := range live {
			if b.addr != 0 {
				check(tb, t, b)
				a.Free(t, b.addr)
			}
		}
	})
}

func testLarge(tb *testing.T, opts Options) {
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		sizes := []uint64{33 << 10, 64 << 10, 200 << 10, 1 << 20}
		var live []block
		for i, size := range sizes {
			b := block{addr: a.Malloc(t, size), size: size, pattern: uint64(i+1) * 0xabcdef}
			// Touch first and last pages (full fill would be slow).
			t.Store64(b.addr, b.pattern)
			t.Store64(b.addr+b.size-8, b.pattern)
			live = append(live, b)
		}
		for i, b := range live {
			if got := t.Load64(b.addr); got != b.pattern {
				tb.Errorf("large block %d head corrupted", i)
			}
			if got := t.Load64(b.addr + b.size - 8); got != b.pattern {
				tb.Errorf("large block %d tail corrupted", i)
			}
			for _, o := range live[i+1:] {
				if overlaps(b.addr, b.size, o.addr, o.size) {
					tb.Errorf("large blocks overlap")
				}
			}
			a.Free(t, b.addr)
		}
		// The space must be reusable.
		p := a.Malloc(t, 64<<10)
		t.Store64(p, 1)
		a.Free(t, p)
	})
}

func testBounded(tb *testing.T, opts Options) {
	var heapAfterWarmup, heapAtEnd uint64
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		const slots = 200
		live := make([]uint64, slots)
		rng := uint64(7)
		next := func(n uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 33 % n
		}
		churn := func(rounds int) {
			for i := 0; i < rounds; i++ {
				s := next(slots)
				if live[s] != 0 {
					a.Free(t, live[s])
				}
				live[s] = a.Malloc(t, 16+next(48)*8)
			}
		}
		churn(3000)
		if f, ok := a.(alloc.Flusher); ok {
			f.Flush(t)
		}
		heapAfterWarmup = a.Stats().HeapBytes
		churn(12000)
		if f, ok := a.(alloc.Flusher); ok {
			f.Flush(t)
		}
		heapAtEnd = a.Stats().HeapBytes
	})
	// Steady-state churn must not grow the heap unboundedly: allow 3x
	// over the warmed-up footprint.
	if heapAtEnd > 3*heapAfterWarmup {
		tb.Errorf("heap grew from %d to %d bytes under steady churn (leak or unbounded fragmentation)",
			heapAfterWarmup, heapAtEnd)
	}
}

func testCrossThread(tb *testing.T, opts Options) {
	n := opts.MaxThreads
	if n > 4 {
		n = 4
	}
	if n < 2 {
		return
	}
	// Thread 0 allocates and publishes; threads 1..n-1 validate and free.
	m := sim.New(sim.ScaledConfig())
	if opts.Daemon != nil {
		opts.Daemon(m)
	}
	ready, _ := m.Kernel().Mmap(1)
	shared, _ := m.Kernel().Mmap(4) // published block table: addr,size pairs
	const perThread = 200
	var a alloc.Allocator
	for i := 0; i < n; i++ {
		part := i
		m.Spawn(fmt.Sprintf("xfree-%d", part), part, func(t *sim.Thread) {
			if part == 0 {
				a = opts.Factory(t, m)
				// Allocate blocks for every consumer and fill them.
				for c := 1; c < n; c++ {
					for k := 0; k < perThread; k++ {
						size := uint64(16 + (k%30)*8)
						p := a.Malloc(t, size)
						b := block{addr: p, size: size, pattern: uint64(c*1000 + k)}
						fill(t, b)
						slot := shared + uint64(((c-1)*perThread+k)*16)
						t.Store64(slot, p)
						t.Store64(slot+8, size)
					}
				}
				t.AtomicStore64(ready, 1)
				if f, ok := a.(alloc.Flusher); ok {
					f.Flush(t)
				}
				return
			}
			for t.Load64(ready) == 0 {
				t.Pause(200)
			}
			for k := 0; k < perThread; k++ {
				slot := shared + uint64(((part-1)*perThread+k)*16)
				b := block{
					addr:    t.Load64(slot),
					size:    t.Load64(slot + 8),
					pattern: uint64(part*1000 + k),
				}
				check(tb, t, b)
				a.Free(t, b.addr)
			}
			if f, ok := a.(alloc.Flusher); ok {
				f.Flush(t)
			}
		})
	}
	m.Run()
	st := a.Stats()
	want := uint64((n - 1) * perThread)
	if st.FreeCalls < want {
		tb.Errorf("expected >= %d frees, allocator saw %d", want, st.FreeCalls)
	}
}

func testOddSizes(tb *testing.T, opts Options) {
	run(opts, func(t *sim.Thread, a alloc.Allocator) {
		// Zero-size malloc must return a valid, freeable pointer.
		p := a.Malloc(t, 0)
		if p == 0 {
			tb.Error("Malloc(0) returned nil-equivalent")
		}
		a.Free(t, p)
		// Sizes straddling every class boundary up to 4 KiB.
		for size := uint64(1); size <= 4096; size = size*2 + 3 {
			for _, s := range []uint64{size - 1, size, size + 1} {
				if s == 0 {
					continue
				}
				q := a.Malloc(t, s)
				t.Store8(q, 0x5a)
				t.Store8(q+s-1, 0xa5) // overwrites the head byte when s == 1
				headWant := uint64(0x5a)
				if s == 1 {
					headWant = 0xa5
				}
				if t.Load8(q) != headWant || t.Load8(q+s-1) != 0xa5 {
					tb.Errorf("size %d: boundary bytes lost", s)
				}
				a.Free(t, q)
			}
		}
	})
}

// RunBadFree verifies the segfault-equivalence contract: freeing an
// address the allocator never returned must crash the simulated process
// (a panic), not corrupt state silently. Allocators whose bad-free
// behaviour is a defined no-op (bump) skip this.
func RunBadFree(t *testing.T, opts Options) {
	m := sim.New(sim.ScaledConfig())
	if opts.Daemon != nil {
		opts.Daemon(m)
	}
	panicked := false
	m.Spawn("badfree", 0, func(th *sim.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a := opts.Factory(th, m)
		p := a.Malloc(th, 64)
		_ = p
		// An address in the mapped heap region but never handed out as a
		// block start: the middle of nowhere.
		a.Free(th, 0x7000dead0000)
		if f, ok := a.(alloc.Flusher); ok {
			f.Flush(th)
		}
	})
	m.Run()
	if !panicked {
		t.Error("freeing a never-allocated address did not fault")
	}
}
