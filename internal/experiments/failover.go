package experiments

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/slo"
)

// failoverCell is one column of the FailoverSweep grid.
type failoverCell struct {
	label  string
	shards int
	// kill is the one-shot stall length injected on shard 0; 0 is the
	// topology's clean baseline cell.
	kill uint64
	// failover re-homes mallocs to healthy shards; false leaves the
	// killed shard's clients on the PR 5 emergency-only degradation.
	failover bool
}

// failoverKillStart is the wall cycle shard 0's one-shot stall opens —
// late enough that every client has registered and carved its first
// slabs.
const failoverKillStart = 200000

// failoverKills is the kill-length axis: a transient blip the retry
// ladder absorbs, an outage long enough to force a re-home decision,
// and a "permanent" kill sized past the measured region (scaled with
// the workload so the full-scale run cannot outlive it).
func failoverKills(s Scale) []uint64 {
	permanent := uint64(1) << 26
	if s.ServiceRequests > 1000 {
		permanent = 1 << 29
	}
	return []uint64{60000, 600000, permanent}
}

// killName labels a kill length ("inf" for the permanent cell).
func killName(s Scale, kill uint64) string {
	ks := failoverKills(s)
	if kill == ks[len(ks)-1] {
		return "inf"
	}
	return fmt.Sprintf("%dk", kill/1000)
}

// failoverResilience is the sweep's degradation policy: patient enough
// that a clean first-touch malloc (the server carving a class's initial
// slab, plus burst queueing behind other clients) never exhausts the
// ~324k-cycle retry ladder, so clean cells and healthy shards stay on
// the fast path; a 600k outage still outlives the ladder and forces a
// routing decision. FailoverAfter 1 re-homes on the first abandoned
// request, so the killed shard's clients never touch the emergency
// tier.
func failoverResilience(failover bool) *core.Resilience {
	r := &core.Resilience{
		Enabled:         true,
		TimeoutCycles:   100000,
		MaxRetries:      2,
		BackoffCycles:   8000,
		FallbackAfter:   1,
		ProbeCycles:     100000,
		MaxRequestBytes: 1 << 24,
	}
	if failover {
		r.FailoverAfter = 1
	}
	return r
}

// failoverCells builds the sweep grid: shard count × kill length ×
// routing policy, with one clean baseline per topology ("none" — a
// resilience-off cell under a permanent kill would hang the seed
// blocking protocol, so the clean run is the policy-free reference).
func failoverCells(s Scale) []failoverCell {
	var cells []failoverCell
	for _, sh := range []int{2, 4} {
		cells = append(cells, failoverCell{label: fmt.Sprintf("clean %dsh", sh), shards: sh})
		for _, kill := range failoverKills(s) {
			for _, fo := range []bool{true, false} {
				pol := "em"
				if fo {
					pol = "fo"
				}
				cells = append(cells, failoverCell{
					label:    fmt.Sprintf("%s %dsh kill%s", pol, sh, killName(s, kill)),
					shards:   sh,
					kill:     kill,
					failover: fo,
				})
			}
		}
	}
	return cells
}

// quickFailoverCells is the condensed CI grid: the 4-shard topology
// under a permanent single-shard kill, failover vs emergency-only vs
// clean.
func quickFailoverCells() []failoverCell {
	kills := failoverKills(Quick)
	perm := kills[len(kills)-1]
	return []failoverCell{
		{label: "clean 4sh", shards: 4},
		{label: "fo 4sh killinf", shards: 4, kill: perm, failover: true},
		{label: "em 4sh killinf", shards: 4, kill: perm},
	}
}

// runFailoverCells executes the grid on the multi-tenant service
// workload with per-tenant SLO tracking armed.
func runFailoverCells(s Scale, cells []failoverCell) []harness.Result {
	opts := slo.DefaultOptions()
	if sloOptions != nil {
		opts = *sloOptions
	}
	return runAll(len(cells), func(i int) harness.Result {
		c := cells[i]
		o := opts
		var plans []fault.Plan
		if c.kill > 0 {
			plans = []fault.Plan{{Seed: 1, StallStart: failoverKillStart, StallCycles: c.kill, Shard: 1}}
		}
		r := harness.Run(harness.Options{
			Allocator:  "nextgen",
			Workload:   sloService(s, 8),
			Servers:    c.shards,
			FaultPlans: plans,
			Resilience: failoverResilience(c.kill > 0 && c.failover),
			SLO:        &o,
			Machine:    schedCfg,
		})
		r.Allocator = c.label
		return r
	})
}

// worstTenantP99 returns the largest per-tenant end-to-end p99 of a run
// (0 when untracked) — the sweep's headline fairness metric.
func worstTenantP99(r harness.Result) uint64 {
	if r.SLO == nil {
		return 0
	}
	var worst uint64
	for _, id := range r.SLO.TenantIDs() {
		if p := r.SLO.Tenant(id).Total.Total.Quantile(0.99); p > worst {
			worst = p
		}
	}
	return worst
}

// mergedP99 returns the all-tenant end-to-end p99 of a run.
func mergedP99(r harness.Result) uint64 {
	if r.SLO == nil {
		return 0
	}
	var merged slo.TenantStats
	for _, id := range r.SLO.TenantIDs() {
		merged.Add(*r.SLO.Tenant(id))
	}
	return merged.Total.Total.Quantile(0.99)
}

// emergencyMallocs reads a run's emergency-tier malloc count.
func emergencyMallocs(r harness.Result) uint64 {
	if r.Resilience == nil {
		return 0
	}
	return r.Resilience.Client.EmergencyMallocs
}

// failoverRecovery renders the cycle of the last rejoin transition ("-"
// when no client rejoined — permanent kills and clean cells).
func failoverRecovery(r harness.Result) string {
	fo := r.Failover
	if fo == nil || fo.Totals.Rejoins == 0 {
		return "-"
	}
	home := map[int]int{}
	for _, c := range fo.Clients {
		home[c.Thread] = c.HomeShard
	}
	var last uint64
	for _, ev := range fo.Events {
		if ev.To == home[ev.Thread] && ev.Cycle > last {
			last = ev.Cycle
		}
	}
	if last == 0 {
		return "-"
	}
	return report.Sci(float64(last))
}

// failoverOutcome renders the grid: the per-cell table, the
// policy-vs-clean comparison per (topology, kill), and a per-client
// routing drill-down for one re-homed cell.
func failoverOutcome(id string, s Scale, cells []failoverCell, all []harness.Result) Outcome {
	var b strings.Builder
	fmt.Fprintf(&b, "Failover sweep: one shard killed on the multi-tenant service workload\n")
	fmt.Fprintf(&b, "(kill: one-shot stall of shard 0 from cycle %d; fo = malloc failover to\n", failoverKillStart)
	fmt.Fprintf(&b, " healthy shards, em = PR 5 emergency-only degradation, clean = no kill)\n\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %11s %8s %7s %9s %10s %10s\n",
		"cell", "p99", "worst ten", "violations", "emerg", "downs", "rejoins", "forwarded", "recovered")
	for _, r := range all {
		var downs, rejoins, fwd uint64
		if r.Failover != nil {
			downs = r.Failover.Totals.Downs
			rejoins = r.Failover.Totals.Rejoins
			fwd = r.Failover.Totals.ForwardedMallocs
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %11d %8d %7d %9d %10d %10s\n",
			r.Allocator, mergedP99(r), worstTenantP99(r), worstTenantViolations(r),
			emergencyMallocs(r), downs, rejoins, fwd, failoverRecovery(r))
	}
	b.WriteString("(p99/worst ten: end-to-end cycles, all tenants / the single worst tenant;\n recovered: cycle of the last rejoin transition)\n\n")

	// Policy comparison: each armed cell's worst-tenant p99 against its
	// topology's clean baseline.
	clean := map[int]uint64{}
	for i, c := range cells {
		if c.kill == 0 {
			clean[c.shards] = worstTenantP99(all[i])
		}
	}
	rel := func(i int) string {
		base := clean[cells[i].shards]
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(worstTenantP99(all[i]))/float64(base))
	}
	for i, c := range cells {
		if c.kill == 0 || !c.failover {
			continue
		}
		// Find the matching emergency-only cell.
		for j, d := range cells {
			if d.shards == c.shards && d.kill == c.kill && !d.failover && d.kill > 0 {
				fmt.Fprintf(&b, "%dsh kill%s: worst-tenant p99 failover %s clean, emergency-only %s clean\n",
					c.shards, killName(s, c.kill), rel(i), rel(j))
				break
			}
		}
	}

	// Drill-down: the per-client routing ledger of the last failover
	// cell that actually re-homed traffic.
	for i := len(cells) - 1; i >= 0; i-- {
		if cells[i].failover && all[i].Failover != nil && all[i].Failover.Totals.Downs > 0 {
			b.WriteByte('\n')
			b.WriteString(report.FailoverTable(
				fmt.Sprintf("Per-client routing ledger: %s", all[i].Allocator), all[i].Failover))
			break
		}
	}
	return Outcome{ID: id, Results: all, Text: b.String()}
}

// FailoverSweep measures shard-level fault tolerance on the service
// workload: one of {2,4} shards is killed for {60k, 600k, permanent}
// cycles, and the killed shard's clients either re-home their mallocs
// to healthy shards (probe-based rejoin when the shard returns) or ride
// the PR 5 emergency-only degradation. Headline per cell: worst-tenant
// end-to-end p99 and SLO violations, emergency-tier mallocs, the
// down/rejoin/forward ledger, and the recovery cycle. Failover should
// hold the worst tenant near the clean baseline; emergency-only pays
// the blocking rejoin probe on its tenants' tail every ProbeCycles.
func FailoverSweep(s Scale) Outcome {
	cells := failoverCells(s)
	return failoverOutcome("failover-sweep", s, cells, runFailoverCells(s, cells))
}

// QuickFailoverSweep is the condensed CI smoke: the 4-shard topology
// under a permanent single-shard kill, failover vs emergency-only vs
// clean, at the quick scale.
func QuickFailoverSweep() Outcome {
	cells := quickFailoverCells()
	return failoverOutcome("failover-sweep-quick", Quick, cells, runFailoverCells(Quick, cells))
}
