package experiments

import (
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

// layoutTune is the global config override installed by the CLIs'
// -layout flag; nil keeps each kind's default layout.
var layoutTune func(*core.Config)

// SetLayout installs a metadata-layout override for every NextGen run
// launched through the standard experiment sets (runSet). The
// layout-ablation sweep ignores it — its cells pin their own layouts.
func SetLayout(tune func(*core.Config)) { layoutTune = tune }

// ParseLayout converts a -layout flag value into a config tune. ""
// returns a nil tune (keep per-kind defaults); an unknown spelling is
// an error the CLIs turn into exit 2.
func ParseLayout(spec string) (func(*core.Config), error) {
	if spec == "" {
		return nil, nil
	}
	l, err := core.ParseLayout(spec)
	if err != nil {
		return nil, err
	}
	return func(c *core.Config) { c.Layout = l }, nil
}

// Tunes composes config tunes left to right, skipping nils; nil when
// none apply.
func Tunes(tunes ...func(*core.Config)) func(*core.Config) {
	live := tunes[:0:0]
	for _, t := range tunes {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(c *core.Config) {
		for _, t := range live {
			t(c)
		}
	}
}

// globalTune is the standing override the standard experiment sets
// apply to every NextGen run: the transport flags first, then -layout.
func globalTune() func(*core.Config) {
	return Tunes(transportTune, layoutTune)
}

// AblateLayout quantifies the paper §3's metadata-layout trade-off with
// the repo's own attribution telemetry: all three layouts (segregated
// index stacks, aggregated intrusive lists, compact bitmask groups)
// crossed with the offload transport (default, batched, adaptive) on
// the Table 1 and Table 3 xalanc shapes. Each cell reports the layout's
// static metadata footprint next to the measured metadata-class LLC and
// dTLB misses (worker + server cores) and cycles per malloc/free, with
// deltas against the segregated baseline of the same transport.
func AblateLayout(s Scale) Outcome {
	layouts := []core.Layout{core.Segregated, core.Aggregated, core.Compact}
	transports := []struct{ name, kind string }{
		{"default", "nextgen"},
		{"batch", "nextgen-batch"},
		{"adaptive", "nextgen-adaptive"},
	}
	workloads := []struct {
		name string
		make func() workload.Workload
	}{
		{"table1 xalanc", func() workload.Workload { return workload.DefaultXalanc(s.XalancOps) }},
		{"table3 xalanc", func() workload.Workload { return table3Xalanc(s) }},
	}
	nl := len(layouts)
	cells := nl * len(transports)
	all := runAll(cells*len(workloads), func(i int) harness.Result {
		l := layouts[i%nl]
		tr := transports[(i%cells)/nl]
		r := run(harness.Options{
			Allocator: tr.kind,
			Workload:  workloads[i/cells].make(),
			Tune:      func(c *core.Config) { c.Layout = l },
		})
		r.Allocator = l.String() + "/" + tr.name
		return r
	})
	var b strings.Builder
	for wi, wl := range workloads {
		set := all[wi*cells : (wi+1)*cells]
		cols := make([]report.LayoutCell, cells)
		for c := range set {
			base := (c / nl) * nl // the segregated cell of this transport block
			if c == base {
				base = -1
			}
			cols[c] = report.LayoutCell{Result: set[c], Layout: layouts[c%nl], Baseline: base}
		}
		b.WriteString(report.LayoutTable(
			"Ablation: metadata layout x offload transport, "+wl.name+" (meta misses: worker+server cores)", cols))
		b.WriteByte('\n')
	}
	return Outcome{ID: "ablate-layout", Results: all, Text: b.String()}
}
