package experiments

import (
	"fmt"

	"nextgenmalloc/internal/gpu"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
)

// runGPUPipeline executes a batched offload pipeline: per batch the CPU
// prepares a staging buffer, then the device side allocates a buffer,
// copies the staging data in, runs a kernel, copies the result back,
// and frees the buffer. In sync mode the CPU waits after every device
// operation (the cudaMalloc/cudaMemcpy default); in async mode all five
// operations ride the stream and the CPU only throttles on staging-
// buffer reuse (double buffering) — allocation latency disappears into
// the copy, the paper's §3.3.1 proposal.
func runGPUPipeline(async bool, batches int, bufBytes uint64) (cpuCycles uint64, st gpu.Stats) {
	m := sim.New(scaledConfig())
	var e *gpu.Engine
	m.SpawnDaemon("gpu-engine", m.Cores()-1, func(th *sim.Thread) {
		for e == nil {
			if th.Stopping() {
				return
			}
			th.Pause(100)
		}
		e.Serve(th)
	})
	m.Spawn("app", 0, func(th *sim.Thread) {
		e = gpu.New(th)
		stagingPages := int((bufBytes + 4095) >> 12)
		staging := [2]uint64{th.Mmap(stagingPages), th.Mmap(stagingPages)}
		result := th.Mmap(stagingPages)
		var lastUse [2]gpu.Ticket
		haveUse := [2]bool{}

		start := th.Clock()
		for b := 0; b < batches; b++ {
			s := b % 2
			// Before rewriting a staging buffer, its previous H2D copy
			// must have completed (double buffering).
			if haveUse[s] {
				e.Wait(th, lastUse[s])
			}
			// CPU-side preparation (the work async mode overlaps).
			th.BlockWrite(staging[s], int(bufBytes), uint64(b))
			th.Exec(int(bufBytes / 4))

			ta := e.AllocAsync(th, bufBytes)
			if async {
				// Ticket-indirect ops: allocation rides the stream; the
				// CPU never learns the buffer address at all.
				tc := e.CopyInAsync(th, ta, staging[s], bufBytes)
				lastUse[s], haveUse[s] = tc, true
				e.KernelTAsync(th, ta, bufBytes, 2)
				e.CopyOutAsync(th, result, ta, bufBytes)
				e.FreeTAsync(th, ta)
				continue
			}
			// Synchronous style: wait for the allocation, then for every
			// stage (cudaMalloc/cudaMemcpy defaults).
			e.Wait(th, ta)
			buf := e.Result(th, ta)
			tc := e.CopyAsync(th, buf, staging[s], bufBytes)
			lastUse[s], haveUse[s] = tc, true
			e.KernelAsync(th, buf, bufBytes, 2)
			e.CopyAsync(th, result, buf, bufBytes)
			tf := e.FreeAsync(th, buf)
			e.Wait(th, tf)
			th.BlockRead(result, int(bufBytes)) // consume result
		}
		e.Sync(th)
		cpuCycles = th.Clock() - start
		st = e.Stats()
	})
	m.Run()
	return cpuCycles, st
}

// AblateGPU reproduces the §3.3.1 extension: asynchronous device
// allocation folded into the copy stream versus synchronous
// allocate/copy/launch.
func AblateGPU(s Scale) Outcome {
	batches := s.XalancOps / 1000
	if batches < 40 {
		batches = 40
	}
	const bufBytes = 16 << 10
	type pipeResult struct {
		cycles uint64
		stats  gpu.Stats
	}
	both := runAll(2, func(i int) pipeResult {
		c, st := runGPUPipeline(i == 1, batches, bufBytes)
		return pipeResult{c, st}
	})
	syncCyc, syncStats := both[0].cycles, both[0].stats
	asyncCyc, asyncStats := both[1].cycles, both[1].stats

	header := []string{"mode", "CPU cycles", "cycles/batch", "bytes copied"}
	rows := [][]string{
		{"synchronous", report.Sci(float64(syncCyc)),
			fmt.Sprintf("%d", syncCyc/uint64(batches)), report.Sci(float64(syncStats.BytesCopied))},
		{"stream-async", report.Sci(float64(asyncCyc)),
			fmt.Sprintf("%d", asyncCyc/uint64(batches)), report.Sci(float64(asyncStats.BytesCopied))},
	}
	text := report.Table("Ablation: GPU allocation in the async stream (§3.3.1)", header, rows)
	text += fmt.Sprintf("\nspeedup from async allocation+copy: %.2fx over %d batches of %d KiB\n",
		float64(syncCyc)/float64(asyncCyc), batches, bufBytes>>10)
	return Outcome{ID: "ablate-gpu", Text: text}
}
