package experiments

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
)

func TestParseTransport(t *testing.T) {
	if tune, err := ParseTransport(-1, ""); err != nil || tune != nil {
		t.Errorf("defaults should yield a nil tune (err %v, tune nil: %v)", err, tune == nil)
	}
	if _, err := ParseTransport(5, ""); err == nil {
		t.Error("batch 5 should be rejected (a line holds 4 slots)")
	}
	if _, err := ParseTransport(0, ""); err == nil {
		t.Error("batch 0 should be rejected")
	}
	if _, err := ParseTransport(-1, "sometimes"); err == nil {
		t.Error("unknown prealloc policy should be rejected")
	}
	tune, err := ParseTransport(2, "adaptive")
	if err != nil {
		t.Fatalf("ParseTransport(2, adaptive): %v", err)
	}
	cfg := core.DefaultConfig()
	tune(&cfg)
	if cfg.Batch != 2 || !cfg.AdaptivePrealloc || !cfg.IdleBackoff {
		t.Errorf("tune produced %+v, want Batch=2 AdaptivePrealloc IdleBackoff", cfg)
	}
	tune, err = ParseTransport(1, "off")
	if err != nil {
		t.Fatalf("ParseTransport(1, off): %v", err)
	}
	cfg = core.DefaultConfig()
	cfg.Prealloc = 12
	tune(&cfg)
	if cfg.Batch != 1 || cfg.Prealloc != 0 || cfg.IdleBackoff {
		t.Errorf("tune produced %+v, want the unbatched no-prealloc transport", cfg)
	}
}

// TestQuickAblateTransport runs the sweep at reduced quick scale and
// checks the directions the batched transport exists to produce: fewer
// tail publications than requests, no more producer stall cycles per op,
// less server time burned on empty polls, and an xalanc margin over
// Mimalloc no worse than the default transport's.
func TestQuickAblateTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs twelve simulations")
	}
	s := Quick
	s.XalancOps = 20000
	s.XmallocOps = 5000
	out := AblateTransport(s)
	for _, want := range []string{"nextgen-batch2", "free reqs/publication", "cycle margin over Mimalloc"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.Text)
		}
	}
	byLabel := map[string]harness.Result{}
	for _, r := range out.Results[:len(out.Results)/2] { // xalanc half
		byLabel[r.Allocator] = r
	}
	base, batched, adaptive := byLabel["nextgen"], byLabel["nextgen-batch"], byLabel["nextgen-adaptive"]
	mi := byLabel["mimalloc"]
	if base.Offload == nil || batched.Offload == nil || adaptive.Offload == nil {
		t.Fatal("offload telemetry missing from sweep results")
	}

	// Free coalescing: the batched transport publishes the free-ring tail
	// far less often than once per request.
	if f := batched.Offload.FreeRing; f.PushBatches*2 >= f.Pushes {
		t.Errorf("batch=4 published %d times for %d free pushes; expected coalescing", f.PushBatches, f.Pushes)
	}
	if f := base.Offload.FreeRing; f.PushBatches != f.Pushes {
		t.Errorf("default transport should publish per push (%d batches, %d pushes)", f.PushBatches, f.Pushes)
	}

	// Producer stalls: batching must not add stall cycles per op.
	stalls := func(r harness.Result) float64 {
		ops := r.AllocStats.MallocCalls + r.AllocStats.FreeCalls
		return float64(r.Offload.MallocRing.StallCycles+r.Offload.FreeRing.StallCycles) / float64(ops)
	}
	if stalls(batched) > stalls(base) {
		t.Errorf("batch=4 stall cyc/op %.4f exceeds default %.4f", stalls(batched), stalls(base))
	}

	// Doorbell backoff: far less server time scanning empty rings.
	if batched.Offload.ServerEmptyPollCycles >= base.Offload.ServerEmptyPollCycles {
		t.Errorf("backoff spent %d empty-poll cycles vs default %d",
			batched.Offload.ServerEmptyPollCycles, base.Offload.ServerEmptyPollCycles)
	}

	// The adaptive transport's margin over Mimalloc must be no worse
	// than the default offload transport's.
	margin := func(r harness.Result) float64 {
		return (float64(mi.Total.Cycles) - float64(r.Total.Cycles)) / float64(mi.Total.Cycles)
	}
	if margin(adaptive) < margin(base) {
		t.Errorf("adaptive margin %.4f worse than default %.4f", margin(adaptive), margin(base))
	}
}
