package experiments

import (
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/sim"
)

// TestSetTimelineArmsRuns: the package-level tuning must thread a sample
// interval into every experiment run, and resetting it must disarm.
func TestSetTimelineArmsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := Quick
	s.XalancOps = 5000
	SetTimeline(5000)
	defer SetTimeline(0)
	res := run(harness.Options{Allocator: "nextgen", Workload: table3Xalanc(s)})
	if res.Timeline == nil || len(res.Timeline.Samples) == 0 {
		t.Fatal("SetTimeline did not arm the sampler")
	}
	SetTimeline(0)
	res = run(harness.Options{Allocator: "nextgen", Workload: table3Xalanc(s)})
	if res.Timeline != nil {
		t.Fatal("SetTimeline(0) did not disarm the sampler")
	}
}

// TestWarmupVersusSteadyState pins the qualitative shape the timeline
// exists to expose: on the Table 3 xalanc workload under nextgen, the
// steady-state (second half) LLC store MPKI on the worker cores must
// not exceed the warm-up (first half) MPKI — first-touch stores miss
// while the heap populates, so store misses concentrate at the front of
// the run. (Load MPKI is the wrong pin: it grows with the working set.)
func TestWarmupVersusSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	s := Quick
	SetTimeline(10000)
	defer SetTimeline(0)
	res := run(harness.Options{Allocator: "nextgen", Workload: table3Xalanc(s)})
	series := res.Timeline
	if len(series.Samples) < 4 {
		t.Fatalf("only %d samples; need at least 4 to split halves", len(series.Samples))
	}
	keep := func(c int) bool { return c != res.ServerCore }
	mid := len(series.Samples) / 2
	warm := series.Delta(0, mid, keep)
	steady := series.Delta(mid, len(series.Samples)-1, keep)
	if warm.Instructions == 0 || steady.Instructions == 0 {
		t.Fatalf("degenerate halves: warm %d instr, steady %d instr", warm.Instructions, steady.Instructions)
	}
	warmMPKI := sim.MPKI(warm.LLCStoreMisses, warm.Instructions)
	steadyMPKI := sim.MPKI(steady.LLCStoreMisses, steady.Instructions)
	t.Logf("warm-up LLC store MPKI %.3f (%d samples), steady-state %.3f (%d samples)",
		warmMPKI, mid, steadyMPKI, len(series.Samples)-1-mid)
	if steadyMPKI > warmMPKI {
		t.Errorf("steady-state MPKI %.3f exceeds warm-up MPKI %.3f", steadyMPKI, warmMPKI)
	}
}
