package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/timeline"
	"nextgenmalloc/internal/workload"
)

// fleetServers / fleetSched / fleetPartition are the global topology
// overrides installed by the CLIs' -servers/-sched/-partition flags;
// they apply to every offload run launched through the standard
// experiment sets. The FleetSweep owns its per-cell topology and calls
// harness.Run directly.
var (
	fleetServers   int
	fleetSched     core.SchedPolicy
	fleetPartition core.Partition
)

// SetFleet installs the offload topology (server shard count, ring
// scheduling policy, shard partition) applied to every offload run
// launched through the standard experiment sets. servers 0/1 and the
// zero-valued policy/partition are the seed single-server fixed-scan
// topology.
func SetFleet(servers int, sched core.SchedPolicy, part core.Partition) {
	fleetServers = servers
	fleetSched = sched
	fleetPartition = part
}

// fleetCell is one topology of the saturation sweep.
type fleetCell struct {
	workers int
	servers int
	sched   core.SchedPolicy
	part    core.Partition
}

// schedLabel names the cell's policy, with the non-default partition
// tagged (e.g. "round-robin/class").
func (c fleetCell) schedLabel() string {
	if c.part == core.ByClass {
		return c.sched.String() + "/class"
	}
	return c.sched.String()
}

// fleetCells builds the sweep grid: the workers × servers scaling plane
// under round-robin (the fair policy), the scheduling-policy comparison
// at the most contended topology, and one size-class-partition variant.
func fleetCells() []fleetCell {
	var cells []fleetCell
	for _, w := range []int{8, 16, 32, 64} {
		for _, s := range []int{1, 2, 4} {
			cells = append(cells, fleetCell{workers: w, servers: s, sched: core.RoundRobin})
		}
	}
	for _, p := range []core.SchedPolicy{core.FixedScan, core.DoorbellPriority, core.BatchDrain} {
		cells = append(cells, fleetCell{workers: 64, servers: 2, sched: p})
	}
	cells = append(cells, fleetCell{workers: 64, servers: 2, sched: core.RoundRobin, part: core.ByClass})
	return cells
}

// fleetWorkload is the per-worker transformer: table3 allocation
// density (malloc/free a small sliver of runtime), a deliberately
// small per-worker live set, and a fixed total transform budget split
// across the workers — so sweeping the worker axis varies parallelism,
// not the amount of work, and the 64-worker saturated cells stay
// simulable.
func fleetWorkload(s Scale, workers int) workload.Workload {
	ops := s.XalancOps / workers
	if ops < 300 {
		ops = 300
	}
	if ops > 5000 {
		ops = 5000
	}
	proto := workload.Xalanc{
		Ops:           ops,
		NodeSlots:     512,
		Burst:         16,
		ComputePerOp:  360,
		ChaseEvery:    3,
		ChaseClusters: 16,
		TouchBytes:    96,
		Seed:          1,
	}
	return workload.NewParallelXalanc(workers, proto)
}

// worstClientP99 computes the worst per-client p99 end-to-end malloc
// latency from the raw span buffer (exact order statistics, not the
// histogram approximation — the sweep sizes the buffer to retain every
// span).
func worstClientP99(rec *timeline.LatencyRecorder) uint64 {
	if rec == nil {
		return 0
	}
	byClient := map[int][]uint64{}
	for _, sp := range rec.Spans {
		if sp.Op == timeline.OpMalloc {
			byClient[sp.Client] = append(byClient[sp.Client], sp.EndToEnd())
		}
	}
	var worst uint64
	for _, lats := range byClient {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		idx := (len(lats)*99 + 99) / 100
		if idx > len(lats) {
			idx = len(lats)
		}
		if p99 := lats[idx-1]; p99 > worst {
			worst = p99
		}
	}
	return worst
}

// fleetRow condenses one run into the table's metrics.
func fleetRow(c fleetCell, r harness.Result) report.FleetRow {
	row := report.FleetRow{
		Workers:      c.workers,
		Servers:      c.servers,
		Sched:        c.schedLabel(),
		WallCycles:   r.WallCycles,
		WorstP99:     worstClientP99(r.Latency),
		OpsPerKCycle: float64(r.AllocStats.MallocCalls+r.AllocStats.FreeCalls) * 1000 / float64(r.WallCycles),
	}
	for _, s := range r.Servers {
		if loop := s.BusyCycles + s.IdleCycles; loop > 0 {
			if share := float64(s.BusyCycles) / float64(loop); share > row.BusyShare {
				row.BusyShare = share
			}
		}
		for _, cl := range s.Clients {
			if cl.MaxGapCycles > row.MaxGap {
				row.MaxGap = cl.MaxGapCycles
			}
		}
	}
	return row
}

// FleetSweep answers the ROADMAP's fleet-scaling question: how many
// client cores can one allocator server carry, and does sharding the
// server recover the lost throughput past that point? It sweeps
// workers × server shards on the table3-density xalanc (round-robin
// service order), compares the four scheduling policies at the most
// contended topology, and reports per cell: allocator throughput, the
// busiest shard's busy share (the saturation gauge), the worst
// per-client p99 malloc latency, and the widest per-client service gap
// (the starvation metric).
func FleetSweep(s Scale) Outcome {
	cells := fleetCells()
	interval := timelineInterval
	if interval == 0 {
		interval = 1 << 20
	}
	all := runAll(len(cells), func(i int) harness.Result {
		c := cells[i]
		cfg := scaledConfig()
		cfg.Cores = c.workers + c.servers
		if schedCfg == nil {
			// Long leases let the time warp skip deep into the saturated
			// workers' response-line waits (~7x host time on the biggest
			// cells); an explicit CLI -quantum still wins.
			cfg.Quantum = 4096
		}
		r := harness.Run(harness.Options{
			Allocator:      "nextgen",
			Workload:       fleetWorkload(s, c.workers),
			Machine:        &cfg,
			Servers:        c.servers,
			Sched:          c.sched,
			Partition:      c.part,
			SampleInterval: interval,
			SpanCapacity:   1 << 20,
		})
		r.Allocator = fmt.Sprintf("ngm w%d s%d %s", c.workers, c.servers, c.schedLabel())
		return r
	})

	rows := make([]report.FleetRow, len(all))
	for i := range all {
		rows[i] = fleetRow(cells[i], all[i])
	}

	var b strings.Builder
	b.WriteString(report.FleetTable("Fleet sweep: workers × server shards on xalanc (round-robin) + policy comparison at 64w", rows))

	// Saturation read-out: walk the single-server round-robin series and
	// find where doubling the workers stops buying throughput.
	single := map[int]report.FleetRow{}
	best64 := report.FleetRow{}
	var base64 report.FleetRow
	for i, c := range cells {
		if c.sched != core.RoundRobin || c.part != core.ByClient {
			continue
		}
		if c.servers == 1 {
			single[c.workers] = rows[i]
		}
		if c.workers == 64 {
			if c.servers == 1 {
				base64 = rows[i]
			} else if rows[i].OpsPerKCycle > best64.OpsPerKCycle {
				best64 = rows[i]
			}
		}
	}
	knee := 0
	for _, w := range []int{8, 16, 32} {
		lo, hi := single[w], single[2*w]
		if lo.OpsPerKCycle > 0 && hi.OpsPerKCycle/lo.OpsPerKCycle < 1.25 {
			knee = w
			break
		}
	}
	if knee > 0 {
		lo, hi := single[knee], single[2*knee]
		fmt.Fprintf(&b, "\nsingle server saturates near %d workers: doubling to %d buys %+.1f%% throughput (busy share %.2f -> %.2f)\n",
			knee, 2*knee, (hi.OpsPerKCycle/lo.OpsPerKCycle-1)*100, lo.BusyShare, hi.BusyShare)
	} else {
		fmt.Fprintf(&b, "\nsingle server not saturated in this sweep (throughput still scaling at 64 workers)\n")
	}
	if base64.OpsPerKCycle > 0 && best64.OpsPerKCycle > 0 {
		fmt.Fprintf(&b, "at 64 workers, sharding to %d servers: throughput %.2f -> %.2f ops/kcycle (%+.1f%%), worst-client p99 malloc %s -> %s cycles\n",
			best64.Servers, base64.OpsPerKCycle, best64.OpsPerKCycle,
			(best64.OpsPerKCycle/base64.OpsPerKCycle-1)*100,
			report.Sci(float64(base64.WorstP99)), report.Sci(float64(best64.WorstP99)))
	}
	return Outcome{ID: "fleet-sweep", Results: all, Text: b.String()}
}
