package experiments

import (
	"fmt"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/gcheap"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
)

// runSharedRoom executes a mixed program — a managed heap churning
// GCBench trees *and* a raw NextGen malloc/free stream — with the
// service functions placed either on two dedicated cores (allocator
// core + GC core) or multiplexed on one shared core, the paper's
// closing intro question: "Can the room be used for other functions
// instead of exclusively for memory allocation?"
func runSharedRoom(shared bool, rounds int) (appCycles uint64, serviceCores int, pause uint64) {
	m := sim.New(scaledConfig())
	allocCore := m.Cores() - 1
	gcCore := m.Cores() - 2

	srv := core.NewServer()
	var off *gcheap.Offloader
	if shared {
		serviceCores = 1
		m.SpawnDaemon("shared-room", allocCore, func(th *sim.Thread) {
			for {
				if th.Stopping() {
					srv.Drain(th)
					return
				}
				busy := srv.Poll(th)
				if off != nil && off.Poll(th) {
					busy = true
				}
				if !busy {
					srv.Idle(th)
					th.Pause(8)
				}
			}
		})
	} else {
		serviceCores = 2
		m.SpawnDaemon("alloc-room", allocCore, srv.Run)
		m.SpawnDaemon("gc-room", gcCore, func(th *sim.Thread) {
			for off == nil {
				if th.Stopping() {
					return
				}
				th.Pause(100)
			}
			off.Serve(th)
		})
	}

	var h *gcheap.Heap
	m.Spawn("app", 0, func(th *sim.Thread) {
		cfg := core.DefaultConfig()
		cfg.Prealloc = 12
		a := core.New(th, cfg)
		srv.Attach(a)
		h = gcheap.New(th, 2)
		h.TriggerEvery = 5000
		off = gcheap.NewOffloader(th, h)

		var build func(depth int) uint64
		build = func(depth int) uint64 {
			n := h.Alloc(th, 2, 16)
			if depth > 0 {
				h.WriteRef(th, n, 0, build(depth-1))
				h.WriteRef(th, n, 1, build(depth-1))
			}
			return n
		}
		longLived := build(9)
		th.Store64(h.RootAddr(0), longLived)

		start := th.Clock()
		scratch := make([]uint64, 0, 32)
		for i := 0; i < rounds; i++ {
			// Raw allocations through the offloaded malloc...
			scratch = scratch[:0]
			for k := 0; k < 24; k++ {
				p := a.Malloc(th, uint64(32+(k%6)*16))
				th.Store64(p, uint64(i))
				scratch = append(scratch, p)
			}
			// ...interleaved with managed-tree churn...
			tmp := build(6)
			th.Store64(h.RootAddr(1), tmp)
			th.Store64(h.RootAddr(1), 0)
			for _, p := range scratch {
				a.Free(th, p)
			}
			th.Exec(800)
			// ...with collections triggered by the heap's budget.
			if h.NeedsCollect() {
				off.Request(th)
			}
		}
		a.Flush(th)
		appCycles = th.Clock() - start
	})
	m.Run()
	pause = h.Stats().PauseCycles
	return appCycles, serviceCores, pause
}

// AblateRoom measures the cost of multiplexing the allocator server and
// the GC collector on one dedicated core versus giving each its own.
func AblateRoom(s Scale) Outcome {
	rounds := s.XalancOps / 500
	if rounds < 100 {
		rounds = 100
	}
	type roomResult struct {
		cycles uint64
		cores  int
		pause  uint64
	}
	both := runAll(2, func(i int) roomResult {
		c, n, p := runSharedRoom(i == 1, rounds)
		return roomResult{c, n, p}
	})
	twoCyc, twoCores, twoPause := both[0].cycles, both[0].cores, both[0].pause
	oneCyc, oneCores, onePause := both[1].cycles, both[1].cores, both[1].pause

	header := []string{"placement", "service cores", "app cycles", "GC pause cycles"}
	rows := [][]string{
		{"dedicated rooms", fmt.Sprintf("%d", twoCores), report.Sci(float64(twoCyc)), report.Sci(float64(twoPause))},
		{"shared room", fmt.Sprintf("%d", oneCores), report.Sci(float64(oneCyc)), report.Sci(float64(onePause))},
	}
	text := report.Table("Ablation: one shared service core vs dedicated cores (intro question (c))", header, rows)
	text += fmt.Sprintf("\nsharing one core costs %+.2f%% application cycles and frees a core\n",
		(float64(oneCyc)-float64(twoCyc))/float64(twoCyc)*100)
	return Outcome{ID: "ablate-room", Text: text}
}
