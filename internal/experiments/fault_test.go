package experiments

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/workload"
)

func TestParseResilience(t *testing.T) {
	if r, err := ParseResilience(""); err != nil || r != nil {
		t.Errorf("ParseResilience(\"\") = %v, %v; want nil, nil", r, err)
	}
	if r, err := ParseResilience("off"); err != nil || r == nil || r.Enabled {
		t.Errorf("ParseResilience(off) = %+v, %v; want disabled policy", r, err)
	}
	if r, err := ParseResilience("default"); err != nil || r == nil || *r != core.DefaultResilience() {
		t.Errorf("ParseResilience(default) = %+v, %v", r, err)
	}
	r, err := ParseResilience("timeout=5000, retries=1, fallback=1")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled || r.TimeoutCycles != 5000 || r.MaxRetries != 1 || r.FallbackAfter != 1 {
		t.Errorf("tuned policy wrong: %+v", r)
	}
	if r.ProbeCycles != core.DefaultResilience().ProbeCycles {
		t.Errorf("unset knob lost its default: %+v", r)
	}
	for _, bad := range []string{"timeout", "timeout=abc", "warp=1"} {
		if _, err := ParseResilience(bad); err == nil {
			t.Errorf("ParseResilience(%q) accepted", bad)
		}
	}
}

// TestQuickFaultSweep runs the sweep at small scale and checks the
// acceptance bar: it completes, loses no requests, actually degrades
// somewhere, and renders its tables.
func TestQuickFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ten simulations")
	}
	s := Quick
	s.XalancOps = 20000
	out := FaultSweep(s)
	if len(out.Results) != 10 {
		t.Fatalf("expected 10 results, got %d", len(out.Results))
	}
	var fallbackEntries, stalls uint64
	for _, r := range out.Results {
		if err := r.CheckLiveness(); err != nil {
			t.Errorf("%s: %v", r.Allocator, err)
		}
		if r.Resilience != nil {
			fallbackEntries += r.Resilience.Client.FallbackEntries
			stalls += r.Resilience.Injected.Stalls
		}
	}
	if fallbackEntries == 0 {
		t.Error("no cell ever entered the fallback")
	}
	if stalls == 0 {
		t.Error("no cell ever observed an injected stall")
	}
	for _, want := range []string{
		"Degradation telemetry", "fallback entries", "ngm s120k t4k r64",
		"ngm clean", "mimalloc", "p99 malloc", "vs clean",
	} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.Text)
		}
	}
}

// TestSetFaultArmsRuns: the CLI globals flow into the standard
// experiment runner the same way -timeline does.
func TestSetFaultArmsRuns(t *testing.T) {
	// Periodic windows: a one-shot window this short could elapse while
	// the server is inside a single long serve (first-touch slab carve),
	// in which case nothing is injected.
	plan, err := ParseFault("stall-len=60000,stall-start=30000,stall-period=240000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParseResilience("timeout=4000,retries=1,fallback=1")
	if err != nil {
		t.Fatal(err)
	}
	SetFault(plan, res)
	defer SetFault(nil, nil)
	r := run(harness.Options{Allocator: "nextgen", Workload: workload.DefaultXalanc(2000)})
	if r.Resilience == nil {
		t.Fatal("global fault plan did not reach the run")
	}
	if r.Resilience.Injected.Stalls == 0 {
		t.Error("armed stall plan injected nothing")
	}
	if err := r.CheckLiveness(); err != nil {
		t.Error(err)
	}
	// A sweep-owned plan must win over the globals.
	own := &fault.Plan{SlowFactor: 2}
	r2 := run(harness.Options{Allocator: "nextgen", Workload: workload.DefaultXalanc(2000), FaultPlan: own})
	if r2.Resilience == nil || r2.Resilience.Injected.SlowdownCycles == 0 {
		t.Error("per-run plan was not honoured")
	}
	if r2.Resilience.Injected.Stalls != 0 {
		t.Error("global plan leaked into a run that owns its plan")
	}
}
