package experiments

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial is the counters-unchanged guarantee for the
// fan-out machinery: the same experiment run serially and with four
// machines in flight must produce identical Results down to the last
// PMU counter, not just identical rendered text.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight simulations")
	}
	s := Quick
	s.XalancOps = 5000
	s.XmallocOps = 2000
	s.ChurnRounds = 4000
	s.ScratchRounds = 500

	prev := Parallelism()
	defer SetParallelism(prev)

	SetParallelism(1)
	serial := Figure1(s)
	SetParallelism(4)
	parallel := Figure1(s)

	if serial.Text != parallel.Text {
		t.Errorf("rendered text differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Text, parallel.Text)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result count differs: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		if !reflect.DeepEqual(serial.Results[i], parallel.Results[i]) {
			t.Errorf("result %d (%s/%s) differs between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
				i, serial.Results[i].Allocator, serial.Results[i].Workload,
				serial.Results[i], parallel.Results[i])
		}
	}
}

// TestRunAllOrderAndCoverage: results come back in job order regardless
// of completion order.
func TestRunAllOrderAndCoverage(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(4)
	got := runAll(17, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}
