package experiments

import (
	"runtime"
	"sync"
)

// The fan-out machinery below runs independent simulated machines on
// separate host cores. Every harness.Run builds its own machine,
// allocator, and workload from scratch, and a machine is bit-
// deterministic in isolation, so running N of them concurrently
// produces exactly the results of running them back to back — only the
// wall time changes. One global semaphore bounds the number of live
// machines across all experiments, including when cmd/ngm-bench fans
// out whole experiments on top of the per-run fan-out here.
var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
	machineSem  chan struct{}
)

// SetParallelism bounds how many simulated machines may run at once
// (clamped to at least 1). The default is GOMAXPROCS. It must not be
// called while experiments are running.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	parallelism = n
	machineSem = nil // re-sized lazily by acquireMachine
	parMu.Unlock()
}

// Parallelism reports the current fan-out bound.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

func acquireMachine() chan struct{} {
	parMu.Lock()
	if machineSem == nil {
		machineSem = make(chan struct{}, parallelism)
	}
	sem := machineSem
	parMu.Unlock()
	sem <- struct{}{}
	return sem
}

// runAll evaluates n independent jobs, each typically one harness.Run,
// with at most Parallelism() in flight, and returns their results in
// job order. With a bound of 1 it degrades to a plain serial loop on
// the calling goroutine.
func runAll[T any](n int, job func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if Parallelism() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			out[i] = job(i)
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sem := acquireMachine()
			defer func() { <-sem }()
			out[i] = job(i)
		}(i)
	}
	wg.Wait()
	return out
}
