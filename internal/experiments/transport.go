package experiments

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

// transportTune is the global config override installed by the CLIs'
// -batch/-prealloc flags; nil leaves every kind's defaults alone.
var transportTune func(*core.Config)

// SetTransport installs a transport tune applied to every NextGen run
// launched through the standard experiment sets (runSet). The
// AblateTransport sweep ignores it — the sweep owns its variants.
func SetTransport(tune func(*core.Config)) { transportTune = tune }

// ParseTransport converts the CLI's -batch/-prealloc values into a
// config tune. batch -1 and prealloc "" mean "kind default" and yield a
// nil tune when both are defaults. batch must be in [1,4] (4 slots fill
// one cache line; wider staging buys nothing); prealloc is one of
// "off", "static" (the nextgen-prealloc depth of 12), or "adaptive".
func ParseTransport(batch int, prealloc string) (func(*core.Config), error) {
	if batch == -1 && prealloc == "" {
		return nil, nil
	}
	if batch != -1 && (batch < 1 || batch > 4) {
		return nil, fmt.Errorf("batch width %d out of range [1,4]", batch)
	}
	switch prealloc {
	case "", "off", "static", "adaptive":
	default:
		return nil, fmt.Errorf("unknown prealloc policy %q (want off, static, or adaptive)", prealloc)
	}
	return func(c *core.Config) {
		if batch != -1 {
			c.Batch = batch
			c.IdleBackoff = batch > 1
		}
		switch prealloc {
		case "off":
			c.Prealloc = 0
			c.AdaptivePrealloc = false
		case "static":
			c.Prealloc = 12
			c.AdaptivePrealloc = false
		case "adaptive":
			c.AdaptivePrealloc = true
			c.IdleBackoff = true
		}
	}, nil
}

// transportVariant is one column of the AblateTransport sweep.
type transportVariant struct {
	label string
	kind  string
	tune  func(*core.Config)
}

// transportVariants sweeps batch width (1, 2, 4) crossed with the
// prealloc policy (none, static, adaptive), with Mimalloc as the
// paper's Table 3 reference column.
func transportVariants() []transportVariant {
	return []transportVariant{
		{"mimalloc", "mimalloc", nil},
		{"nextgen", "nextgen", nil}, // batch=1, no prealloc: the §4.2 prototype transport
		{"nextgen-batch2", "nextgen", func(c *core.Config) { c.Batch = 2; c.IdleBackoff = true }},
		{"nextgen-batch", "nextgen-batch", nil},       // batch=4 + idle backoff
		{"nextgen-prealloc", "nextgen-prealloc", nil}, // static depth 12, unbatched
		{"nextgen-adaptive", "nextgen-adaptive", nil}, // batch=4 + noteHot-driven stash
	}
}

// AblateTransport measures what the batched transport and the adaptive
// preallocation policy buy (the §3.3 opportunities): malloc round trips
// avoided, free-ring publications amortized, producer stall cycles, and
// the server's empty-poll overhead, on the Table 3 xalanc shape and on
// allocation-dense 2-thread xmalloc.
func AblateTransport(s Scale) Outcome {
	variants := transportVariants()
	workloads := []func() workload.Workload{
		func() workload.Workload { return table3Xalanc(s) },
		func() workload.Workload {
			return &workload.Xmalloc{NThreads: 2, OpsPerThread: s.XmallocOps, TouchBytes: 128, Seed: 3}
		},
	}
	nv := len(variants)
	all := runAll(nv*len(workloads), func(i int) harness.Result {
		v := variants[i%nv]
		r := run(harness.Options{Allocator: v.kind, Workload: workloads[i/nv](), Tune: v.tune})
		r.Allocator = v.label // distinguish tuned variants of the same kind
		return r
	})
	xal, xm := all[:nv], all[nv:]

	var b strings.Builder
	b.WriteString(report.CounterTable("Ablation: offload transport on xalanc (application cores)", xal))
	b.WriteByte('\n')
	b.WriteString(report.TransportTable("Transport telemetry, xalanc", xal))
	b.WriteByte('\n')
	b.WriteString(report.AttributionTable("Miss attribution, xalanc (share of worker-core misses)", xal))
	b.WriteByte('\n')
	b.WriteString(report.CounterTable("Ablation: offload transport on xmalloc, 2 threads", xm))
	b.WriteByte('\n')
	b.WriteString(report.TransportTable("Transport telemetry, xmalloc", xm))
	b.WriteByte('\n')
	mi := xal[0]
	fmt.Fprintf(&b, "xalanc cycle margin over Mimalloc (positive = fewer cycles than Mimalloc):\n")
	for _, r := range xal[1:] {
		fmt.Fprintf(&b, "  %-17s %+.2f%%\n", r.Allocator,
			(float64(mi.Total.Cycles)-float64(r.Total.Cycles))/float64(mi.Total.Cycles)*100)
	}
	return Outcome{ID: "ablate-transport", Results: all, Text: b.String()}
}
