package experiments

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/metrics"
)

func TestParseFailover(t *testing.T) {
	for spec, want := range map[string]int{"": 0, "off": 0, "on": 1, "default": 1, "3": 3} {
		got, err := ParseFailover(spec)
		if err != nil || got != want {
			t.Errorf("ParseFailover(%q) = %d, %v; want %d", spec, got, err, want)
		}
	}
	for _, bad := range []string{"-1", "abc", "1.5"} {
		if _, err := ParseFailover(bad); err == nil {
			t.Errorf("ParseFailover(%q) accepted", bad)
		}
	}
}

// TestQuickFailoverSweep runs the condensed grid and checks the PR's
// acceptance bar: under a permanent single-shard kill, failover keeps
// every malloc off the emergency tier and holds the worst tenant's p99
// below the emergency-only policy's, the routing ledger records the
// re-homes, the rendered text carries its tables, and the emitted
// metrics document is lint-clean.
func TestQuickFailoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three service simulations")
	}
	out := QuickFailoverSweep()
	if len(out.Results) != 3 {
		t.Fatalf("expected 3 results, got %d", len(out.Results))
	}
	var clean, fo, em harness.Result
	for _, r := range out.Results {
		switch r.Allocator {
		case "clean 4sh":
			clean = r
		case "fo 4sh killinf":
			fo = r
		case "em 4sh killinf":
			em = r
		default:
			t.Fatalf("unexpected cell %q", r.Allocator)
		}
	}
	if fo.Failover == nil || fo.Failover.Totals.Downs == 0 || fo.Failover.Totals.ForwardedMallocs == 0 {
		t.Fatal("failover cell never re-homed a client")
	}
	if n := emergencyMallocs(fo); n != 0 {
		t.Errorf("failover cell left %d mallocs on the emergency tier", n)
	}
	if emergencyMallocs(em) == 0 {
		t.Error("emergency-only cell never touched the emergency tier under a permanent kill")
	}
	if em.Failover != nil {
		t.Errorf("emergency-only cell recorded failover telemetry: %+v", em.Failover.Totals)
	}
	if worstTenantP99(fo) >= worstTenantP99(em) {
		t.Errorf("failover did not beat emergency-only on worst-tenant p99: fo %d, em %d",
			worstTenantP99(fo), worstTenantP99(em))
	}
	if worstTenantP99(clean) == 0 {
		t.Error("clean cell tracked no tenant latency")
	}
	for _, want := range []string{
		"Failover sweep", "worst ten", "recovered",
		"worst-tenant p99 failover", "Per-client routing ledger",
	} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.Text)
		}
	}
	data, err := metrics.NewFile(metrics.FromResults(out.ID, out.Results)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("sweep metrics fail validation: %v", err)
	}
}
