package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/timeline"
)

// faultPlans / faultResilience are the global overrides installed by
// the CLIs' -fault/-resilience flags; they apply to every harness run
// launched through the standard experiment sets. The FaultSweep and
// FailoverSweep own their per-cell plans and ignore them.
var (
	faultPlans      []fault.Plan
	faultResilience *core.Resilience
)

// SetFault installs a single fault plan and resilience policy applied to
// every run launched through the standard experiment sets (nil disarms).
func SetFault(p *fault.Plan, r *core.Resilience) {
	if p == nil {
		SetFaults(nil, r)
		return
	}
	SetFaults([]fault.Plan{*p}, r)
}

// SetFaults installs a multi-plan fault spec (each plan targeting the
// shard its shard= selector names) and a resilience policy, applied to
// every run launched through the standard experiment sets. Empty plans
// and a nil policy disarm.
func SetFaults(ps []fault.Plan, r *core.Resilience) {
	faultPlans = ps
	faultResilience = r
}

// ParseFault converts the CLI's -fault spec into a plan ("" or "none"
// yields nil). It wraps fault.ParsePlan so command packages don't need
// the fault import.
func ParseFault(spec string) (*fault.Plan, error) { return fault.ParsePlan(spec) }

// ParseFaults converts the CLI's -fault spec into a plan list: a
// ";"-separated sequence of ParseFault specs, each optionally targeting
// one fleet shard with shard=N. "" or "none" yields nil.
func ParseFaults(spec string) ([]fault.Plan, error) { return fault.ParsePlans(spec) }

// ParseFailover converts the CLI's -failover spec into a FailoverAfter
// threshold (consecutive home-shard timeouts before a client re-homes
// its mallocs). ""/"off" is 0 (disarmed, the seed behaviour);
// "on"/"default" fails over after the first timeout; a positive integer
// sets the threshold directly.
func ParseFailover(spec string) (int, error) {
	switch strings.TrimSpace(spec) {
	case "", "off":
		return 0, nil
	case "on", "default":
		return 1, nil
	}
	n, err := strconv.ParseUint(strings.TrimSpace(spec), 10, 32)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("failover: want off, on/default, or a positive threshold, got %q", spec)
	}
	return int(n), nil
}

// WithFailover arms fleet failover on a resilience policy: after 0 it
// returns r unchanged; otherwise it returns a copy of r (or of the
// default policy when r is nil) with FailoverAfter set.
func WithFailover(r *core.Resilience, after int) *core.Resilience {
	if after == 0 {
		return r
	}
	out := core.DefaultResilience()
	if r != nil {
		out = *r
	}
	out.FailoverAfter = after
	return &out
}

// ParseResilience converts the CLI's -resilience spec into a policy.
// "" keeps the kind default (nil); "off" pins the seed protocol even
// under a fault plan; "on"/"default" is core.DefaultResilience; and a
// comma list of timeout/retries/backoff/fallback/probe/max-request
// key=value pairs tunes individual knobs (unset knobs take defaults).
func ParseResilience(spec string) (*core.Resilience, error) {
	switch strings.TrimSpace(spec) {
	case "":
		return nil, nil
	case "off":
		return &core.Resilience{}, nil
	case "on", "default":
		r := core.DefaultResilience()
		return &r, nil
	}
	r := core.DefaultResilience()
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("resilience: %q is not key=value", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("resilience: bad value in %q: %v", part, err)
		}
		switch strings.TrimSpace(k) {
		case "timeout":
			r.TimeoutCycles = n
		case "retries":
			r.MaxRetries = int(n)
		case "backoff":
			r.BackoffCycles = n
		case "fallback":
			r.FallbackAfter = int(n)
		case "probe":
			r.ProbeCycles = n
		case "max-request":
			r.MaxRequestBytes = n
		default:
			return nil, fmt.Errorf("resilience: unknown key %q (want timeout, retries, backoff, fallback, probe, or max-request)", k)
		}
	}
	return &r, nil
}

// faultCell is one column of the FaultSweep grid.
type faultCell struct {
	label string
	kind  string
	plan  *fault.Plan
	res   *core.Resilience
	slots int // free-ring depth (0 = kind default)
}

// faultCells builds the sweep grid: stall length × client timeout ×
// free-ring depth, each cell also carrying background doorbell drops
// and word corruption, with Mimalloc and a fault-free NextGen run as
// reference columns.
func faultCells() []faultCell {
	cells := []faultCell{
		{label: "mimalloc", kind: "mimalloc"},
		{label: "ngm clean", kind: "nextgen"},
	}
	for _, stall := range []uint64{20000, 120000} {
		for _, timeout := range []uint64{4000, 16000} {
			for _, slots := range []int{64, 256} {
				plan := &fault.Plan{
					Seed:          1,
					StallStart:    50000,
					StallCycles:   stall,
					StallPeriod:   4 * stall,
					DropEveryN:    64,
					CorruptEveryN: 256,
				}
				res := &core.Resilience{
					Enabled:       true,
					TimeoutCycles: timeout,
					MaxRetries:    2,
					BackoffCycles: timeout / 4,
					FallbackAfter: 1,
					ProbeCycles:   4 * timeout,
				}
				cells = append(cells, faultCell{
					label: fmt.Sprintf("ngm s%dk t%dk r%d", stall/1000, timeout/1000, slots),
					kind:  "nextgen",
					plan:  plan,
					res:   res,
					slots: slots,
				})
			}
		}
	}
	return cells
}

// FaultSweep measures graceful degradation under injected offload
// faults: periodic server-core stalls crossed with the client's patience
// (timeout) and the free-ring depth, with background doorbell loss and
// ring-word corruption. Reported per cell: the usual counters, the
// degradation ledger, offload malloc p99, the share of mallocs served
// by the local fallback, and the cycle cost against Mimalloc (the
// "allocator without a room") and against fault-free NextGen.
func FaultSweep(s Scale) Outcome {
	cells := faultCells()
	// The sweep arms its own latency sampling (the global -timeline
	// interval still wins when set) and calls harness.Run directly so
	// per-cell plans are not overridden by the CLI globals.
	interval := timelineInterval
	if interval == 0 {
		interval = 4096
	}
	all := runAll(len(cells), func(i int) harness.Result {
		c := cells[i]
		var tune func(*core.Config)
		if c.slots > 0 {
			slots := c.slots
			tune = func(cfg *core.Config) { cfg.RingSlots = slots }
		}
		r := harness.Run(harness.Options{
			Allocator:      c.kind,
			Workload:       table3Xalanc(s),
			Tune:           tune,
			FaultPlan:      c.plan,
			Resilience:     c.res,
			SampleInterval: interval,
			Machine:        schedCfg,
		})
		r.Allocator = c.label
		return r
	})

	var b strings.Builder
	b.WriteString(report.CounterTable("Fault sweep: periodic server stalls on xalanc (application cores)", all))
	b.WriteByte('\n')
	b.WriteString(report.ResilienceTable("Degradation telemetry (stall length × timeout × ring depth)", all))
	b.WriteByte('\n')
	mi, clean := all[0], all[1]
	fmt.Fprintf(&b, "%-16s %12s %12s %14s %12s\n",
		"cell", "p99 malloc", "fallback %", "vs mimalloc", "vs clean")
	for _, r := range all {
		p99 := "-"
		if r.Latency.HasSpans() {
			p99 = fmt.Sprintf("%d", r.Latency.ByOp[timeline.OpMalloc].Total.Quantile(0.99))
		}
		fb := "-"
		if r.Resilience != nil && r.AllocStats.MallocCalls > 0 {
			fb = fmt.Sprintf("%.2f%%",
				float64(r.Resilience.Client.EmergencyMallocs)/float64(r.AllocStats.MallocCalls)*100)
		}
		rel := func(base harness.Result) string {
			return fmt.Sprintf("%+.2f%%",
				(float64(r.Total.Cycles)-float64(base.Total.Cycles))/float64(base.Total.Cycles)*100)
		}
		fmt.Fprintf(&b, "%-16s %12s %12s %14s %12s\n", r.Allocator, p99, fb, rel(mi), rel(clean))
	}
	b.WriteString("(vs columns: total application-core cycles, positive = slower than the reference)\n")
	return Outcome{ID: "fault-sweep", Results: all, Text: b.String()}
}
