package experiments

import (
	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
)

// timelineInterval is the global sampling interval installed by the
// CLIs' -timeline flags; 0 leaves time-resolved sampling off (the
// default — sampled and unsampled runs have bit-identical counters, but
// sampling costs host memory per run).
var timelineInterval uint64

// SetTimeline arms the timeline sampler (cycle-interval counter
// snapshots + offload latency spans) on every harness run launched
// through the standard experiment sets. interval 0 disarms.
func SetTimeline(interval uint64) { timelineInterval = interval }

// run wraps harness.Run, applying the global timeline interval and the
// global fault plan / resilience policy so every experiment path gains
// time-resolved telemetry and fault injection when the CLI arms them.
// Paths that own these knobs (the FaultSweep's per-cell plans) call
// harness.Run directly instead.
func run(opt harness.Options) harness.Result {
	opt.SampleInterval = timelineInterval
	if opt.Machine == nil {
		opt.Machine = schedCfg
	}
	if opt.FaultPlan == nil && len(opt.FaultPlans) == 0 {
		opt.FaultPlans = faultPlans
	}
	if opt.Resilience == nil {
		opt.Resilience = faultResilience
	}
	if opt.SLO == nil {
		opt.SLO = sloOptions
	}
	// The CLI's -servers/-sched/-partition topology applies to offload
	// kinds only (inline allocators have no server to shard or schedule).
	if harness.OffloadKind(opt.Allocator) {
		if opt.Servers == 0 && fleetServers > 1 {
			opt.Servers = fleetServers
			opt.Partition = fleetPartition
		}
		if opt.Sched == core.FixedScan {
			opt.Sched = fleetSched
		}
	}
	return harness.Run(opt)
}
