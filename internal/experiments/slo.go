package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/workload"
)

// sloOptions / sloTenants are the global overrides installed by the
// CLIs' -slo/-tenants flags. sloOptions arms per-tenant SLO tracking on
// every run launched through the standard experiment sets (workloads
// that aren't slo.Observable just leave the tracker empty); sloTenants
// overrides the SLOSweep's tenant-count axis.
var (
	sloOptions *slo.Options
	sloTenants int
)

// SetSLO installs the SLO tracker options applied to every run launched
// through the standard experiment sets (nil disarms).
func SetSLO(o *slo.Options) { sloOptions = o }

// SetTenants overrides the SLOSweep's tenant-count axis (0 restores the
// default axis).
func SetTenants(n int) { sloTenants = n }

// ParseSLO converts the CLI's -slo spec into tracker options. "" or
// "off" yields nil (disarmed); "on"/"default" is slo.DefaultOptions;
// and a comma list of key=value pairs tunes individual knobs over the
// defaults: window (initial tumbling-window cycles), interactive/bulk
// (per-class end-to-end cycle budgets; 0 = unbudgeted), spans (retained
// raw spans), target-ppm (violation budget per window, parts per
// million).
func ParseSLO(spec string) (*slo.Options, error) {
	switch strings.TrimSpace(spec) {
	case "", "off":
		return nil, nil
	case "on", "default":
		o := slo.DefaultOptions()
		return &o, nil
	}
	o := slo.DefaultOptions()
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("slo: %q is not key=value", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("slo: bad value in %q: %v", part, err)
		}
		switch strings.TrimSpace(k) {
		case "window":
			if n == 0 {
				return nil, fmt.Errorf("slo: window must be positive")
			}
			o.WindowCycles = n
		case "interactive":
			o.Budgets[slo.Interactive] = n
		case "bulk":
			o.Budgets[slo.Bulk] = n
		case "spans":
			o.SpanCap = int(n)
		case "target-ppm":
			if n == 0 {
				return nil, fmt.Errorf("slo: target-ppm must be positive")
			}
			o.TargetRate = float64(n) / 1e6
		default:
			return nil, fmt.Errorf("slo: unknown key %q (want window, interactive, bulk, spans, or target-ppm)", k)
		}
	}
	return &o, nil
}

// sloCell is one column of the SLOSweep grid.
type sloCell struct {
	label   string
	kind    string
	tenants int
	servers int
	plan    *fault.Plan
}

// sloStallPlan is the sweep's armed fault plan: periodic 120k-cycle
// server stalls (the fault sweep's harshest stall length), no loss or
// corruption — the question is purely what a stalled allocator core
// does to tenant tail latency.
func sloStallPlan() *fault.Plan {
	return &fault.Plan{Seed: 1, StallStart: 50000, StallCycles: 120000, StallPeriod: 480000}
}

// sloCells builds the sweep grid: tenant count × allocator × fault
// plan, plus sharded-fleet cells at the widest tenant count (1 vs 4
// shards under the same stall plan — the fairness story).
func sloCells() []sloCell {
	tenantAxis := []int{4, 12}
	if sloTenants > 0 {
		tenantAxis = []int{sloTenants}
	}
	var cells []sloCell
	for _, n := range tenantAxis {
		cells = append(cells,
			sloCell{label: fmt.Sprintf("mimalloc t%d", n), kind: "mimalloc", tenants: n},
			sloCell{label: fmt.Sprintf("ngm clean t%d", n), kind: "nextgen", tenants: n},
			sloCell{label: fmt.Sprintf("ngm stall t%d", n), kind: "nextgen", tenants: n, plan: sloStallPlan()},
		)
	}
	wide := tenantAxis[len(tenantAxis)-1]
	cells = append(cells,
		sloCell{label: fmt.Sprintf("ngm clean t%d 4sh", wide), kind: "nextgen", tenants: wide, servers: 4},
		sloCell{label: fmt.Sprintf("ngm stall t%d 4sh", wide), kind: "nextgen", tenants: wide, servers: 4, plan: sloStallPlan()},
	)
	return cells
}

// sloService builds the sweep's service workload for one cell.
func sloService(s Scale, tenants int) *workload.Service {
	return &workload.Service{
		NWorkers:          4,
		RequestsPerWorker: s.ServiceRequests,
		Tenants:           tenants,
		ChurnEvery:        4,
		MeanGapCycles:     60000,
		BurstLen:          4,
		Seed:              11,
	}
}

// worstTenantViolations returns the largest per-tenant violation count
// of a run (0 when untracked).
func worstTenantViolations(r harness.Result) uint64 {
	if r.SLO == nil {
		return 0
	}
	var worst uint64
	for _, id := range r.SLO.TenantIDs() {
		if v := r.SLO.Tenant(id).Violations; v > worst {
			worst = v
		}
	}
	return worst
}

// SLOSweep measures per-tenant SLO attainment on the multi-tenant
// service workload: tenant count × allocator × fault plan, plus a
// sharded-fleet pair showing what splitting the allocator across server
// cores does to the worst tenant under a stall. Headline metric per
// cell: overall end-to-end p99 and the SLO-violation count; the worst
// window localizes when the budget burned.
func SLOSweep(s Scale) Outcome {
	cells := sloCells()
	opts := slo.DefaultOptions()
	if sloOptions != nil {
		opts = *sloOptions
	}
	all := runAll(len(cells), func(i int) harness.Result {
		c := cells[i]
		o := opts
		r := harness.Run(harness.Options{
			Allocator: c.kind,
			Workload:  sloService(s, c.tenants),
			Servers:   c.servers,
			FaultPlan: c.plan,
			SLO:       &o,
			Machine:   schedCfg,
		})
		r.Allocator = c.label
		return r
	})

	var b strings.Builder
	fmt.Fprintf(&b, "SLO sweep: multi-tenant service workload (tenants x allocator x fault plan)\n")
	fmt.Fprintf(&b, "budgets: interactive %d cycles, bulk %d cycles end-to-end; window %d cycles\n\n",
		opts.Budgets[slo.Interactive], opts.Budgets[slo.Bulk], opts.WindowCycles)
	fmt.Fprintf(&b, "%-20s %10s %9s %11s %10s %10s %10s\n",
		"cell", "completed", "p99", "violations", "worst win", "burn rate", "worst ten")
	for _, r := range all {
		tr := r.SLO
		var total, p99, viol, worstWin uint64
		var burn float64
		if tr != nil {
			total = tr.Completed()
			viol = tr.Violations()
			var merged slo.TenantStats
			for _, id := range tr.TenantIDs() {
				merged.Add(*tr.Tenant(id))
			}
			p99 = merged.Total.Total.Quantile(0.99)
			if w, ok := tr.WorstWindow(); ok {
				worstWin = w.Violations
				burn = tr.BurnRate(w)
			}
		}
		fmt.Fprintf(&b, "%-20s %10d %9d %11d %10d %9.1fx %10d\n",
			r.Allocator, total, p99, viol, worstWin, burn, worstTenantViolations(r))
	}
	b.WriteString("(p99: end-to-end cycles across all tenants; worst win: violations in the worst tumbling window;\n worst ten: the single worst tenant's violation count)\n\n")

	// Representative per-tenant drill-down: the widest stalled
	// single-server cell (the row production debugging starts from).
	var drill harness.Result
	for _, r := range all {
		if strings.HasPrefix(r.Allocator, "ngm stall") && !strings.HasSuffix(r.Allocator, "4sh") {
			drill = r
		}
	}
	if drill.SLO != nil {
		b.WriteString(report.SLOTable(fmt.Sprintf("Per-tenant SLO ledger: %s", drill.Allocator), drill.SLO))
		b.WriteByte('\n')
	}

	// Fleet fairness: sharding should cut what the stall does to the
	// worst tenant (per-shard rollups via the per-client service ledger).
	var one, four harness.Result
	for _, r := range all {
		switch {
		case strings.HasSuffix(r.Allocator, "4sh") && strings.HasPrefix(r.Allocator, "ngm stall"):
			four = r
		case strings.HasPrefix(r.Allocator, "ngm stall"):
			one = r
		}
	}
	if one.SLO != nil && four.SLO != nil {
		fmt.Fprintf(&b, "sharding vs the worst tenant (stall plan): 1 shard %d violations, 4 shards %d\n",
			worstTenantViolations(one), worstTenantViolations(four))
		for i, m := range four.TenantShardRollup() {
			var reqs uint64
			for _, n := range m {
				reqs += n
			}
			fmt.Fprintf(&b, "  shard %d's clients completed %d requests across %d tenants\n", i, reqs, len(m))
		}
	}
	return Outcome{ID: "slo-sweep", Results: all, Text: b.String()}
}
