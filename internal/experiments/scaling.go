package experiments

import (
	"fmt"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

// AblateScaling answers the paper's open question (a) quantitatively:
// one dedicated core serves all application cores' allocation traffic,
// so at some client count the server saturates and offload loses to a
// per-thread allocator. The sweep runs the churn driver (allocation-
// dominated, the offload worst case) on 1..8 application threads
// against Mimalloc (per-thread heaps, embarrassingly parallel) and
// NextGen with preallocation (one server core).
func AblateScaling(s Scale) Outcome {
	rounds := s.ChurnRounds / 4
	if rounds < 10000 {
		rounds = 10000
	}
	header := []string{"threads", "mimalloc wall", "nextgen-prealloc wall", "nextgen/mimalloc", "server ops/kcycle"}
	var rows [][]string
	var crossover int
	threads := []int{1, 2, 4, 8}
	kinds := []string{"mimalloc", "nextgen-prealloc"}
	// Flattened (thread count x allocator) grid; each cell is one
	// independent machine.
	grid := runAll(len(threads)*len(kinds), func(i int) harness.Result {
		n := threads[i/len(kinds)]
		return run(harness.Options{
			Allocator: kinds[i%len(kinds)],
			Workload: &workload.Churn{
				NThreads: n, Slots: 4000, Rounds: rounds / n,
				MinSize: 16, MaxSize: 256, TouchBytes: 32, Seed: 17,
			},
		})
	})
	for ti, n := range threads {
		mi := grid[ti*len(kinds)]
		ng := grid[ti*len(kinds)+1]
		ratio := float64(ng.WallCycles) / float64(mi.WallCycles)
		if crossover == 0 && ratio > 1 {
			crossover = n
		}
		// Service rate: ring operations the single server core retires
		// per thousand wall cycles (its ceiling bounds throughput).
		rate := float64(ng.Served) / float64(ng.WallCycles) * 1000
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			report.Sci(float64(mi.WallCycles)),
			report.Sci(float64(ng.WallCycles)),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.1f", rate),
		})
	}
	text := report.Table("Ablation: offload scaling — one allocator core, N application cores", header, rows)
	text += "\nChurn is the offload worst case (allocation-dominated, no app work to\n" +
		"protect); the single server core's service rate bounds aggregate\n" +
		"allocation throughput, the trade-off the paper's question (a) asks about.\n"
	return Outcome{ID: "ablate-scaling", Text: text}
}
