package experiments

import "nextgenmalloc/internal/sim"

// schedCfg is the machine configuration installed by the CLIs'
// -warp/-quantum flags; nil leaves every run on sim.ScaledConfig
// defaults (time warp on, quantum 64). Warp is bit-identical either
// way, so flipping it never changes any experiment's numbers — only
// the host time they take.
var schedCfg *sim.Config

// SetMachine overrides the simulated-machine configuration for every
// run launched through the standard experiment sets (nil restores the
// default). It must not be called while experiments are running.
func SetMachine(cfg *sim.Config) { schedCfg = cfg }

// scaledConfig is what experiments that build their own machines (GC,
// GPU, room ablations) use in place of sim.ScaledConfig, so the CLI
// scheduler override reaches them too.
func scaledConfig() sim.Config {
	if schedCfg != nil {
		return *schedCfg
	}
	return sim.ScaledConfig()
}
