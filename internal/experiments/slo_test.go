package experiments

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/metrics"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/workload"
)

func TestParseSLO(t *testing.T) {
	if o, err := ParseSLO(""); err != nil || o != nil {
		t.Errorf("ParseSLO(\"\") = %v, %v; want nil, nil", o, err)
	}
	if o, err := ParseSLO("off"); err != nil || o != nil {
		t.Errorf("ParseSLO(off) = %v, %v; want nil, nil", o, err)
	}
	for _, spec := range []string{"on", "default"} {
		if o, err := ParseSLO(spec); err != nil || o == nil || *o != slo.DefaultOptions() {
			t.Errorf("ParseSLO(%q) = %+v, %v; want defaults", spec, o, err)
		}
	}
	o, err := ParseSLO("window=2048, interactive=9000, bulk=0, spans=64, target-ppm=100000")
	if err != nil {
		t.Fatal(err)
	}
	if o.WindowCycles != 2048 || o.Budgets[slo.Interactive] != 9000 ||
		o.Budgets[slo.Bulk] != 0 || o.SpanCap != 64 || o.TargetRate != 0.1 {
		t.Errorf("tuned options wrong: %+v", o)
	}
	if o.WindowCap != slo.DefaultOptions().WindowCap {
		t.Errorf("unset knob lost its default: %+v", o)
	}
	for _, bad := range []string{"window", "window=abc", "window=0", "target-ppm=0", "latency=5"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

// TestQuickSLOSweep runs the sweep at reduced scale and checks the
// acceptance bar: the armed stall plan strictly increases worst-window
// violations over the clean run, the per-shard rollup partitions the
// completed requests, the rendered text carries its tables, and the
// emitted metrics document is lint-clean.
func TestQuickSLOSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight simulations")
	}
	s := Quick
	s.ServiceRequests = 300
	out := SLOSweep(s)
	if len(out.Results) != 8 {
		t.Fatalf("expected 8 results, got %d", len(out.Results))
	}
	var clean, stall harness.Result
	for _, r := range out.Results {
		if r.SLO == nil || !r.SLO.HasData() {
			t.Fatalf("%s: no SLO data", r.Allocator)
		}
		switch r.Allocator {
		case "ngm clean t12":
			clean = r
		case "ngm stall t12":
			stall = r
		}
	}
	worstWin := func(r harness.Result) uint64 {
		w, _ := r.SLO.WorstWindow()
		return w.Violations
	}
	if worstWin(stall) <= worstWin(clean) {
		t.Errorf("stall plan did not increase worst-window violations: clean %d, stall %d",
			worstWin(clean), worstWin(stall))
	}
	if stall.SLO.Violations() <= clean.SLO.Violations() {
		t.Errorf("stall plan did not increase total violations: clean %d, stall %d",
			clean.SLO.Violations(), stall.SLO.Violations())
	}
	// Sharded cells must partition the completed requests across shards.
	for _, r := range out.Results {
		if len(r.Servers) <= 1 {
			continue
		}
		var sum uint64
		for _, m := range r.TenantShardRollup() {
			for _, n := range m {
				sum += n
			}
		}
		if sum != r.SLO.Completed() {
			t.Errorf("%s: rollup sum %d != completed %d", r.Allocator, sum, r.SLO.Completed())
		}
	}
	for _, want := range []string{
		"SLO sweep", "budgets:", "worst win", "burn rate",
		"Per-tenant SLO ledger", "sharding vs the worst tenant",
		"shard 0's clients completed",
	} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.Text)
		}
	}
	// The sweep's metrics document must pass its own lint.
	data, err := metrics.NewFile(metrics.FromResults(out.ID, out.Results)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(data); err != nil {
		t.Errorf("sweep metrics fail validation: %v", err)
	}
}

// TestSetSLOArmsRuns: the CLI's -slo global flows into the standard
// experiment runner the same way -timeline does, and a run that owns
// its tracker options wins over the global.
func TestSetSLOArmsRuns(t *testing.T) {
	o := slo.DefaultOptions()
	SetSLO(&o)
	defer SetSLO(nil)
	svc := &workload.Service{NWorkers: 2, RequestsPerWorker: 40, Tenants: 4,
		MeanGapCycles: 2000, BurstLen: 4, Seed: 5}
	r := run(harness.Options{Allocator: "mimalloc", Workload: svc})
	if r.SLO == nil || !r.SLO.HasData() {
		t.Fatal("global SLO options did not reach the run")
	}
	// A workload that never observes leaves the tracker empty (the
	// metrics layer then omits the block).
	r2 := run(harness.Options{Allocator: "mimalloc", Workload: workload.DefaultXalanc(1500)})
	if r2.SLO == nil {
		t.Fatal("tracker not attached to non-service run")
	}
	if r2.SLO.HasData() {
		t.Error("xalanc run somehow recorded tenant requests")
	}
	// Per-run options win over the global.
	own := slo.DefaultOptions()
	own.WindowCycles = 1 << 12
	r3 := run(harness.Options{Allocator: "mimalloc", Workload: svc, SLO: &own})
	if got := r3.SLO.Options().WindowCycles; got != 1<<12 {
		t.Errorf("per-run window %d, want %d", got, 1<<12)
	}
}

// TestSetTenantsOverridesAxis: -tenants collapses the sweep grid to one
// tenant count.
func TestSetTenantsOverridesAxis(t *testing.T) {
	SetTenants(6)
	defer SetTenants(0)
	cells := sloCells()
	if len(cells) != 5 {
		t.Fatalf("override grid has %d cells, want 5", len(cells))
	}
	for _, c := range cells {
		if c.tenants != 6 {
			t.Errorf("cell %s has %d tenants, want 6", c.label, c.tenants)
		}
	}
}
