// Package experiments defines one runnable experiment per table and
// figure in the paper's evaluation (see DESIGN.md §5 for the index),
// shared by cmd/ngm-bench and the repository's benchmark suite.
//
// Every experiment runs on sim.ScaledConfig (capacities scaled with the
// scaled-down workloads; see EXPERIMENTS.md for the methodology) and is
// bit-deterministic for a given Scale.
package experiments

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/model"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

// Scale sets the op counts; Quick keeps CI fast, Full is the
// paper-shape configuration the committed EXPERIMENTS.md numbers use.
type Scale struct {
	Name            string
	XalancOps       int
	XmallocOps      int // per thread
	ChurnRounds     int
	ScratchRounds   int
	ServiceRequests int // per worker
}

// Quick is the smoke-test scale.
var Quick = Scale{Name: "quick", XalancOps: 40000, XmallocOps: 10000, ChurnRounds: 30000, ScratchRounds: 2000, ServiceRequests: 600}

// Full is the reference scale used for the committed results.
var Full = Scale{Name: "full", XalancOps: 200000, XmallocOps: 40000, ChurnRounds: 100000, ScratchRounds: 8000, ServiceRequests: 4000}

// Outcome bundles an experiment's raw results and rendered text.
type Outcome struct {
	ID      string
	Results []harness.Result
	Text    string
}

func runSet(w func() workload.Workload, kinds []string) []harness.Result {
	return runAll(len(kinds), func(i int) harness.Result {
		// Tune is the CLI's global -batch/-prealloc override (nil unless
		// set); it only affects NextGen kinds.
		return run(harness.Options{Allocator: kinds[i], Workload: w(), Tune: globalTune()})
	})
}

// Figure1 reproduces the execution-time sensitivity bars: xalanc across
// the four classic allocators (paper: up to 1.72x between PTMalloc2 and
// Mimalloc).
func Figure1(s Scale) Outcome {
	results := runSet(func() workload.Workload { return workload.DefaultXalanc(s.XalancOps) }, harness.ClassicKinds)
	labels := make([]string, len(results))
	values := make([]float64, len(results))
	for i, r := range results {
		labels[i] = r.Allocator
		values[i] = float64(r.Total.Cycles)
	}
	return Outcome{
		ID:      "figure1",
		Results: results,
		Text: report.Bars("Figure 1: xalanc execution time by allocator (normalized to fastest)",
			labels, values),
	}
}

// Table1 reproduces the PMU-counter table for xalanc across the four
// classic allocators.
func Table1(s Scale) Outcome {
	results := runSet(func() workload.Workload { return workload.DefaultXalanc(s.XalancOps) }, harness.ClassicKinds)
	return Outcome{
		ID:      "table1",
		Results: results,
		Text: report.CounterTable("Table 1: processor performance monitor data for xalanc", results) +
			"\n" + report.AttributionTable("Miss attribution for xalanc (share of worker-core misses by address class)", results),
	}
}

// Table2 reproduces the xmalloc thread-scaling study on TCMalloc
// (paper: LLC misses grow >10x from 1 to 8 threads).
func Table2(s Scale) Outcome {
	threads := []int{1, 2, 4, 8}
	results := runAll(len(threads), func(i int) harness.Result {
		w := &workload.Xmalloc{NThreads: threads[i], OpsPerThread: s.XmallocOps, TouchBytes: 128, Seed: 3}
		return run(harness.Options{Allocator: "tcmalloc", Workload: w})
	})
	header := []string{"# of threads"}
	for _, n := range threads {
		header = append(header, fmt.Sprintf("%d", n))
	}
	rows := report.CounterRows(results)
	return Outcome{
		ID:      "table2",
		Results: results,
		Text:    report.Table("Table 2: PMU data for xmalloc on TCMalloc by thread count", header, rows),
	}
}

// Table3 reproduces the side-by-side Mimalloc vs NextGen-Malloc
// comparison on xalanc (paper: 4.51% improvement from reduced dTLB-load,
// LLC-load and LLC-store misses). The application cores' counters are
// compared, as perf attributes them to the process's compute cores.
func Table3(s Scale) Outcome {
	w := func() workload.Workload { return table3Xalanc(s) }
	results := runSet(w, []string{"mimalloc", "nextgen", "nextgen-prealloc"})
	text := report.CounterTable("Table 3: Mimalloc vs NextGen-Malloc on xalanc (application cores)", results)
	mi, ng, pre := results[0], results[1], results[2]
	imp := func(r harness.Result) float64 {
		return (float64(mi.Total.Cycles) - float64(r.Total.Cycles)) / float64(mi.Total.Cycles) * 100
	}
	text += fmt.Sprintf("\ncycle improvement over Mimalloc (paper: 4.51%%):\n")
	text += fmt.Sprintf("  nextgen (sync malloc, async free, as the §4.2 prototype): %+.2f%%\n", imp(ng))
	text += fmt.Sprintf("  nextgen-prealloc (§3.3.2 predictive preallocation):       %+.2f%%\n", imp(pre))
	text += fmt.Sprintf("NextGen server core: %s cycles, %s ops served\n",
		report.Sci(float64(ng.Server.Cycles)), report.Sci(float64(ng.Served)))
	return Outcome{ID: "table3", Results: results, Text: text}
}

// table3Xalanc is the Table 3 workload: the same xalanc generator at the
// paper's allocation density (malloc/free are a ~2% sliver of runtime,
// the rest is transform compute and node traffic).
func table3Xalanc(s Scale) workload.Workload {
	w := workload.DefaultXalanc(s.XalancOps)
	w.ComputePerOp = 360
	w.ChaseClusters = 16
	w.ChaseEvery = 3
	return w
}

// Model evaluates the paper's §4.1 analytical model with its exact
// inputs.
func Model() Outcome {
	in := model.PaperInputs()
	derived := model.DerivedMissPenalty(model.PaperGlibc(), model.PaperMimalloc())
	var b strings.Builder
	fmt.Fprintf(&b, "Analytical model (paper §4.1), exact paper inputs:\n")
	fmt.Fprintf(&b, "  malloc calls:                %d\n", in.MallocCalls)
	fmt.Fprintf(&b, "  free calls:                  %d\n", in.FreeCalls)
	fmt.Fprintf(&b, "  total calls:                 %.0f\n", in.Calls())
	fmt.Fprintf(&b, "  atomic RMW latency:          %.0f cycles [3]\n", in.AtomicCycles)
	fmt.Fprintf(&b, "  added cycles (offload sync): %s   (paper: ~75e9)\n", report.Sci(in.AddedCycles()))
	fmt.Fprintf(&b, "  derived miss penalty:        %.1f cycles (paper states 214)\n", derived)
	fmt.Fprintf(&b, "  break-even miss reduction:   %.4f per call (paper: 1.25)\n", in.BreakEvenMissReduction())
	fmt.Fprintf(&b, "\n  break-even vs atomic cost sweep [3,26]:\n")
	costs := []float64{20, 40, 67, 100, 200, 400, 700}
	for i, v := range in.SweepBreakEven(costs) {
		fmt.Fprintf(&b, "    %3.0f-cycle RMW -> %.3f misses/call\n", costs[i], v)
	}
	return Outcome{ID: "model", Text: b.String()}
}

// AblateCore compares offloading to a symmetric big core vs a
// near-memory core (paper §3.2).
func AblateCore(s Scale) Outcome {
	w := func() workload.Workload { return table3Xalanc(s) }
	results := runSet(w, []string{"nextgen", "nextgen-nearmem"})
	text := report.CounterTable("Ablation: offload target core type (application cores)", results)
	for _, r := range results {
		text += fmt.Sprintf("%s server core: cycles=%s L1miss=%s LLCmiss=%s\n",
			r.Allocator, report.Sci(float64(r.Server.Cycles)),
			report.Sci(float64(r.Server.L1Misses)),
			report.Sci(float64(r.Server.LLCLoadMisses+r.Server.LLCStoreMisses)))
	}
	return Outcome{ID: "ablate-core", Results: results, Text: text}
}

// AblatePrealloc measures predictive preallocation (paper §3.3.2 / MMT
// discussion) and synchronous vs asynchronous free.
func AblatePrealloc(s Scale) Outcome {
	w := func() workload.Workload { return table3Xalanc(s) }
	results := runSet(w, []string{"nextgen", "nextgen-prealloc", "nextgen-sync"})
	return Outcome{
		ID:      "ablate-prealloc",
		Results: results,
		Text:    report.CounterTable("Ablation: preallocation and async free (application cores)", results),
	}
}

// Sensitivity reproduces the §1 claim that allocation-intensive
// microbenchmarks (xmalloc, cache-scratch) swing >10x with the
// allocator.
func Sensitivity(s Scale) Outcome {
	wnames := []string{"xmalloc", "cache-scratch"}
	nk := len(harness.ClassicKinds)
	all := runAll(len(wnames)*nk, func(i int) harness.Result {
		var w workload.Workload
		if wnames[i/nk] == "xmalloc" {
			w = &workload.Xmalloc{NThreads: 4, OpsPerThread: s.XmallocOps, TouchBytes: 128, Seed: 3}
		} else {
			w = &workload.CacheScratch{NThreads: 4, ObjSize: 8, Rounds: s.ScratchRounds, Inner: 50}
		}
		return run(harness.Options{Allocator: harness.ClassicKinds[i%nk], Workload: w})
	})
	var b strings.Builder
	for wi, wname := range wnames {
		labels := make([]string, 0, nk)
		values := make([]float64, 0, nk)
		for ki, kind := range harness.ClassicKinds {
			labels = append(labels, kind)
			values = append(values, float64(all[wi*nk+ki].WallCycles))
		}
		b.WriteString(report.Bars(fmt.Sprintf("Sensitivity: %s wall cycles by allocator", wname), labels, values))
		b.WriteByte('\n')
	}
	return Outcome{ID: "sensitivity", Results: all, Text: b.String()}
}

// All runs every experiment at the given scale.
func All(s Scale) []Outcome {
	return []Outcome{
		Figure1(s), Table1(s), Table2(s), Table3(s), Model(),
		AblateLayout(s), AblateCore(s), AblatePrealloc(s), AblateTransport(s),
		Sensitivity(s),
		AblateGC(s), AblateFaaS(s), AblateGPU(s), AblateScaling(s),
		AblateRoom(s), FaultSweep(s), FleetSweep(s), SLOSweep(s),
		FailoverSweep(s),
	}
}
