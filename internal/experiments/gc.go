package experiments

import (
	"fmt"

	"nextgenmalloc/internal/gcheap"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
)

// gcResult summarizes one managed-heap run.
type gcResult struct {
	mode    string
	app     sim.Counters
	gcCore  sim.Counters
	gcStats gcheap.Stats
}

// runGCBench executes a GCBench-style program: a long-lived tree is
// built once and traversed continuously while short-lived trees are
// built and dropped, forcing regular collections. offload selects where
// those collections run.
func runGCBench(offload bool, shortTrees, treeDepth int) gcResult {
	m := sim.New(scaledConfig())
	gcCore := m.Cores() - 1
	var h *gcheap.Heap
	var off *gcheap.Offloader
	if offload {
		m.SpawnDaemon("gc-core", gcCore, func(th *sim.Thread) {
			for off == nil {
				if th.Stopping() {
					return
				}
				th.Pause(100)
			}
			off.Serve(th)
		})
	}
	res := gcResult{mode: "inline"}
	if offload {
		res.mode = "offloaded"
	}
	var gcStart sim.Counters

	m.Spawn("mutator", 0, func(th *sim.Thread) {
		h = gcheap.New(th, 4)
		h.TriggerEvery = 6000
		if offload {
			off = gcheap.NewOffloader(th, h)
		}
		gcStart = th.Machine().CoreCounters(gcCore)

		// buildTree builds a binary tree of the given depth and returns
		// its root (bottom-up, as GCBench does).
		var buildTree func(depth int) uint64
		buildTree = func(depth int) uint64 {
			n := h.Alloc(th, 2, 16)
			th.Store64(n+16, uint64(depth)) // payload
			if depth > 0 {
				h.WriteRef(th, n, 0, buildTree(depth-1))
				h.WriteRef(th, n, 1, buildTree(depth-1))
			}
			return n
		}
		// traverse sums the payloads (the mutator's cache-resident work).
		var traverse func(n uint64) uint64
		traverse = func(n uint64) uint64 {
			if n == 0 {
				return 0
			}
			th.Exec(4)
			return th.Load64(n+16) + traverse(h.ReadRef(th, n, 0)) + traverse(h.ReadRef(th, n, 1))
		}

		start := th.Counters()
		// The long-lived heap is several times the private caches, so a
		// full inline mark sweeps the mutator's L1/L2 clean every
		// collection; the mutator's own hot set is the current short
		// tree plus a slice of the long-lived one.
		longLived := buildTree(13) // ~16k nodes
		th.Store64(h.RootAddr(0), longLived)
		hotSlice := longLived
		for i := 0; i < shortTrees; i++ {
			tmp := buildTree(treeDepth)
			th.Store64(h.RootAddr(1), tmp)
			traverse(tmp)
			th.Store64(h.RootAddr(1), 0) // drop it
			// Walk down the long-lived tree a little (a hot path, not a
			// full scan).
			hotSlice = h.ReadRef(th, hotSlice, i%2)
			if hotSlice == 0 {
				hotSlice = longLived
			}
			th.Exec(2000)
			if h.NeedsCollect() {
				if offload {
					off.Request(th)
				} else {
					h.CollectInline(th)
				}
			}
		}
		res.app = th.Counters().Sub(start)
		res.gcStats = h.Stats()
	})
	m.Run()
	res.gcCore = m.CoreCounters(gcCore).Sub(gcStart)
	return res
}

// AblateGC reproduces the §3.3.2 extension: offloading stop-the-world
// garbage collection to the dedicated core, versus collecting on the
// mutator's core.
func AblateGC(s Scale) Outcome {
	shortTrees := s.XalancOps / 1250 * 8
	if shortTrees < 32 {
		shortTrees = 32
	}
	both := runAll(2, func(i int) gcResult {
		return runGCBench(i == 1, shortTrees, 9)
	})
	inline, offl := both[0], both[1]

	header := []string{"mode", "app cycles", "app L1-miss", "app L2-miss", "app LLC-miss", "pause cycles", "collections"}
	row := func(r gcResult) []string {
		return []string{
			r.mode,
			report.Sci(float64(r.app.Cycles)),
			report.Sci(float64(r.app.L1Misses)),
			report.Sci(float64(r.app.L2Misses)),
			report.Sci(float64(r.app.LLCLoadMisses + r.app.LLCStoreMisses)),
			report.Sci(float64(r.gcStats.PauseCycles)),
			fmt.Sprintf("%d", r.gcStats.Collections),
		}
	}
	text := report.Table("Ablation: GC on the mutator core vs the dedicated core (§3.3.2)",
		header, [][]string{row(inline), row(offl)})
	delta := (float64(inline.app.Cycles) - float64(offl.app.Cycles)) / float64(inline.app.Cycles) * 100
	text += fmt.Sprintf("\nmutator-core cycle change from offloading GC: %+.2f%%\n", delta)
	text += fmt.Sprintf("GC core (offloaded): %s cycles, %s LLC misses absorbed\n",
		report.Sci(float64(offl.gcCore.Cycles)),
		report.Sci(float64(offl.gcCore.LLCLoadMisses+offl.gcCore.LLCStoreMisses)))
	return Outcome{ID: "ablate-gc", Text: text}
}
