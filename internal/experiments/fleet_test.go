package experiments

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/workload"
)

// TestQuickFleetSweep runs the saturation sweep at small scale and
// checks the acceptance bar: every cell completes and loses no
// requests, the single-server series exposes a saturation knee, and at
// 64 workers a sharded (S >= 2) topology beats the single server on
// both throughput and worst-client p99 malloc latency.
func TestQuickFleetSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sixteen simulations")
	}
	s := Quick
	out := FleetSweep(s)
	cells := fleetCells()
	if len(out.Results) != len(cells) {
		t.Fatalf("expected %d results, got %d", len(cells), len(out.Results))
	}
	rows := make([]report.FleetRow, len(cells))
	for i, r := range out.Results {
		if err := r.CheckLiveness(); err != nil {
			t.Errorf("%s: %v", r.Allocator, err)
		}
		if len(r.Servers) != cells[i].servers {
			t.Errorf("%s: %d server telemetry blocks, want %d",
				r.Allocator, len(r.Servers), cells[i].servers)
		}
		var perClient uint64
		for _, sv := range r.Servers {
			for _, cl := range sv.Clients {
				perClient += cl.Served
			}
		}
		if perClient != r.Served {
			t.Errorf("%s: per-client service counts sum to %d, server served %d",
				r.Allocator, perClient, r.Served)
		}
		rows[i] = fleetRow(cells[i], out.Results[i])
	}

	// The headline acceptance comparison, recomputed from the raw rows
	// rather than parsed from the rendered text.
	var base64 report.FleetRow
	best64 := report.FleetRow{}
	for i, c := range cells {
		if c.workers != 64 || c.sched != core.RoundRobin || c.part != core.ByClient {
			continue
		}
		if c.servers == 1 {
			base64 = rows[i]
		} else if rows[i].OpsPerKCycle > best64.OpsPerKCycle {
			best64 = rows[i]
		}
	}
	if base64.OpsPerKCycle == 0 || best64.OpsPerKCycle == 0 {
		t.Fatal("sweep grid lost its 64-worker comparison cells")
	}
	if best64.OpsPerKCycle <= base64.OpsPerKCycle {
		t.Errorf("sharding did not recover throughput at 64 workers: %d servers %.2f ops/kcycle vs single %.2f",
			best64.Servers, best64.OpsPerKCycle, base64.OpsPerKCycle)
	}
	if best64.WorstP99 >= base64.WorstP99 {
		t.Errorf("sharding did not recover tail latency at 64 workers: %d servers p99 %d vs single %d",
			best64.Servers, best64.WorstP99, base64.WorstP99)
	}

	for _, want := range []string{
		"Fleet sweep", "Busy share", "Max gap",
		"saturates near", "at 64 workers, sharding",
	} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("sweep text missing %q:\n%s", want, out.Text)
		}
	}
}

// TestSetFleetArmsRuns: the CLI topology globals flow into the
// standard experiment runner the same way -timeline and -fault do, and
// a run that owns its topology wins over them.
func TestSetFleetArmsRuns(t *testing.T) {
	SetFleet(2, core.RoundRobin, core.ByClient)
	defer SetFleet(0, core.FixedScan, core.ByClient)

	r := run(harness.Options{Allocator: "nextgen", Workload: workload.DefaultXalanc(2000)})
	if len(r.Servers) != 2 {
		t.Fatalf("global topology did not reach the run: %d server blocks, want 2", len(r.Servers))
	}
	if err := r.CheckLiveness(); err != nil {
		t.Error(err)
	}

	// Inline allocators have no server to shard; the globals must not
	// touch them.
	r2 := run(harness.Options{Allocator: "mimalloc", Workload: workload.DefaultXalanc(2000)})
	if len(r2.Servers) != 0 {
		t.Errorf("topology leaked into an inline allocator run: %d server blocks", len(r2.Servers))
	}

	// A run that sets its own server count keeps it.
	r3 := run(harness.Options{Allocator: "nextgen", Workload: workload.DefaultXalanc(2000), Servers: 1})
	if len(r3.Servers) != 1 {
		t.Errorf("per-run server count was not honoured: %d server blocks, want 1", len(r3.Servers))
	}
}
