package experiments

import (
	"strings"
	"testing"
)

// TestModelText: the closed-form experiment embeds the paper's numbers.
func TestModelText(t *testing.T) {
	out := Model()
	for _, want := range []string{"7.499E+10", "1.2523", "225.7"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("model output missing %q:\n%s", want, out.Text)
		}
	}
}

// TestQuickFigure1 runs the smallest figure end to end and sanity-checks
// the rendering.
func TestQuickFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four simulations")
	}
	s := Quick
	s.XalancOps = 20000
	out := Figure1(s)
	if len(out.Results) != 4 {
		t.Fatalf("expected 4 results, got %d", len(out.Results))
	}
	if !strings.Contains(out.Text, "ptmalloc2") || !strings.Contains(out.Text, "x (") {
		t.Errorf("figure text malformed:\n%s", out.Text)
	}
}

// TestQuickAblateLayout checks the rebuilt layout x transport ablation:
// 18 cells (3 layouts x 3 transports x 2 workloads), every layout
// present in every transport block, and the compact cells carrying the
// dense record stride.
func TestQuickAblateLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eighteen simulations")
	}
	s := Quick
	s.XalancOps = 8000
	out := AblateLayout(s)
	if len(out.Results) != 18 {
		t.Fatalf("got %d results, want 18", len(out.Results))
	}
	for _, label := range []string{
		"segregated/default", "aggregated/default", "compact/default",
		"segregated/batch", "compact/batch",
		"segregated/adaptive", "compact/adaptive",
	} {
		if !strings.Contains(out.Text, label) {
			t.Errorf("ablation text missing cell %q", label)
		}
	}
	for _, r := range out.Results {
		wantLayout := strings.SplitN(r.Allocator, "/", 2)[0]
		if r.Layout != wantLayout {
			t.Errorf("cell %s ran layout %q", r.Allocator, r.Layout)
		}
		wantRec := 1088
		if wantLayout == "compact" {
			wantRec = 192
		}
		if r.MetaRecordBytes != wantRec {
			t.Errorf("cell %s: MetaRecordBytes = %d, want %d", r.Allocator, r.MetaRecordBytes, wantRec)
		}
	}
}

// TestQuickExtensions runs the §3.3 extension experiments at small
// scale and checks their headline directions.
func TestQuickExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	t.Run("GC", func(t *testing.T) {
		out := AblateGC(Quick)
		if !strings.Contains(out.Text, "offloaded") {
			t.Errorf("missing offloaded row:\n%s", out.Text)
		}
	})
	t.Run("FaaS", func(t *testing.T) {
		out := AblateFaaS(Quick)
		if !strings.Contains(out.Text, "nextgen preheated") {
			t.Errorf("missing preheated row:\n%s", out.Text)
		}
	})
	t.Run("GPU", func(t *testing.T) {
		out := AblateGPU(Quick)
		if !strings.Contains(out.Text, "speedup") {
			t.Errorf("missing speedup line:\n%s", out.Text)
		}
	})
}

// TestQuickScaling checks the scaling sweep runs and keeps its shape:
// the offload penalty does not shrink as threads grow.
func TestQuickScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight simulations")
	}
	out := AblateScaling(Quick)
	if !strings.Contains(out.Text, "8") {
		t.Errorf("missing 8-thread row:\n%s", out.Text)
	}
}

// TestQuickRoom checks the shared-room experiment runs both placements.
func TestQuickRoom(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	out := AblateRoom(Quick)
	if !strings.Contains(out.Text, "shared room") || !strings.Contains(out.Text, "dedicated rooms") {
		t.Errorf("missing rows:\n%s", out.Text)
	}
}
