package experiments

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/report"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/workload"
)

// AblateFaaS reproduces the §3.3.2 serverless extension: a function
// worker's cold start pays for slab carving and (for the offloaded
// allocator) stash warmup; preheating the allocator with the function's
// known allocation profile moves that cost off the first request.
func AblateFaaS(s Scale) Outcome {
	invocations := s.XalancOps / 1000
	if invocations < 50 {
		invocations = 50
	}
	profile := workload.DefaultFaaSProfile()

	type cfg struct {
		label   string
		kind    string
		preheat bool
	}
	cfgs := []cfg{
		{"mimalloc", "mimalloc", false},
		{"nextgen cold", "nextgen-prealloc", false},
		{"nextgen preheated", "nextgen-prealloc", true},
	}
	header := []string{"configuration", "cold-start cycles", "steady-state cycles", "cold/steady"}
	rows := runAll(len(cfgs), func(i int) []string {
		c := cfgs[i]
		w := &workload.FaaS{
			Invocations:     invocations,
			Profile:         profile,
			ComputePerAlloc: 40,
			Seed:            1,
		}
		opt := harness.Options{Allocator: c.kind, Workload: w}
		if c.preheat {
			opt.Prepare = func(t *sim.Thread, a alloc.Allocator) {
				if ng, ok := a.(*core.Allocator); ok {
					ng.Preheat(t, profile)
				}
			}
		}
		run(opt)
		cold, steady := w.ColdStart(), w.SteadyState()
		return []string{
			c.label,
			report.Sci(float64(cold)),
			report.Sci(float64(steady)),
			fmt.Sprintf("%.2fx", float64(cold)/float64(steady)),
		}
	})
	text := report.Table("Ablation: FaaS cold start with allocator preheating (§3.3.2)", header, rows)
	return Outcome{ID: "ablate-faas", Text: text}
}
