package alloc

// SizeClasses is the segregated-fit class map shared by the TCMalloc,
// Jemalloc, Mimalloc and NextGen models. The progression mirrors
// TCMalloc's: 8-byte granularity at the bottom, then geometric with ~25%
// steps, capped at MaxSmall; larger requests go straight to the page
// heap.
type SizeClasses struct {
	sizes []uint64
	// lut maps (size+7)/8 to a class for sizes <= lutMax, giving the
	// O(1) lookup real allocators use.
	lut    []uint8
	lutMax uint64
}

// MaxSmall is the largest size served from size classes (32 KiB,
// TCMalloc's small-object threshold).
const MaxSmall = 32 << 10

// NewSizeClasses builds the default class table. All classes above 16
// bytes are multiples of 16 so objects carved at size*index offsets stay
// 16-byte aligned (malloc's max_align_t contract), matching TCMalloc's
// and jemalloc's real spacing.
func NewSizeClasses() *SizeClasses {
	sizes := []uint64{8, 16}
	for s := uint64(32); s <= 128; s += 16 {
		sizes = append(sizes, s)
	}
	for s := uint64(160); s <= 512; s += 32 {
		sizes = append(sizes, s)
	}
	s := uint64(640)
	for s <= MaxSmall {
		sizes = append(sizes, s)
		s = s * 5 / 4
		s = (s + 63) &^ 63
	}
	if sizes[len(sizes)-1] != MaxSmall {
		sizes = append(sizes, MaxSmall)
	}
	sc := &SizeClasses{sizes: sizes, lutMax: MaxSmall}
	sc.lut = make([]uint8, MaxSmall/8+1)
	class := 0
	for i := range sc.lut {
		need := uint64(i) * 8
		for sizes[class] < need {
			class++
		}
		sc.lut[i] = uint8(class)
	}
	return sc
}

// NumClasses returns the number of classes.
func (sc *SizeClasses) NumClasses() int { return len(sc.sizes) }

// ClassFor maps a request size to its class; ok is false for large
// requests that bypass the classes.
func (sc *SizeClasses) ClassFor(size uint64) (int, bool) {
	if size > sc.lutMax {
		return 0, false
	}
	if size == 0 {
		size = 1
	}
	return int(sc.lut[(size+7)/8]), true
}

// Size returns the block size of a class.
func (sc *SizeClasses) Size(class int) uint64 { return sc.sizes[class] }

// BatchSize returns how many objects of a class move between a thread
// cache and a central list per transfer (TCMalloc's num_objects_to_move:
// more for small classes, fewer for large).
func (sc *SizeClasses) BatchSize(class int) int {
	n := int(64 * 1024 / sc.sizes[class])
	if n < 2 {
		n = 2
	}
	if n > 32 {
		n = 32
	}
	return n
}

// ObjectsPerSpan returns how many objects of a class a one-span slab
// holds given the span's page count.
func (sc *SizeClasses) ObjectsPerSpan(class, pages int) int {
	return int(uint64(pages) << 12 / sc.sizes[class])
}

// SpanPages returns the page count allocators use for a class's slabs:
// enough pages that a span holds at least 32 objects or 8 pages,
// whichever is smaller.
func (sc *SizeClasses) SpanPages(class int) int {
	size := sc.sizes[class]
	pages := int((size*32 + 4095) >> 12)
	if pages < 1 {
		pages = 1
	}
	if pages > 8 {
		pages = 8
	}
	return pages
}
