package alloc

import (
	"testing"
	"testing/quick"
)

func TestClassForCoversAllSizes(t *testing.T) {
	sc := NewSizeClasses()
	for size := uint64(1); size <= MaxSmall; size++ {
		class, ok := sc.ClassFor(size)
		if !ok {
			t.Fatalf("no class for size %d", size)
		}
		if sc.Size(class) < size {
			t.Fatalf("class %d size %d < request %d", class, sc.Size(class), size)
		}
		if class > 0 && sc.Size(class-1) >= size {
			t.Fatalf("size %d not in tightest class (%d fits in class %d)", size, size, class-1)
		}
	}
}

func TestLargeSizesBypass(t *testing.T) {
	sc := NewSizeClasses()
	if _, ok := sc.ClassFor(MaxSmall + 1); ok {
		t.Error("size above MaxSmall got a class")
	}
}

func TestClassesMonotoneAligned(t *testing.T) {
	sc := NewSizeClasses()
	prev := uint64(0)
	for c := 0; c < sc.NumClasses(); c++ {
		s := sc.Size(c)
		if s <= prev {
			t.Fatalf("class sizes not strictly increasing at %d", c)
		}
		if s > 16 && s%16 != 0 {
			t.Errorf("class size %d not a 16-byte multiple", s)
		}
		prev = s
	}
	if prev != MaxSmall {
		t.Errorf("largest class %d != MaxSmall %d", prev, MaxSmall)
	}
}

func TestQuickClassRoundTrip(t *testing.T) {
	sc := NewSizeClasses()
	f := func(raw uint16) bool {
		size := uint64(raw)%MaxSmall + 1
		class, ok := sc.ClassFor(size)
		return ok && sc.Size(class) >= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatchSize(t *testing.T) {
	sc := NewSizeClasses()
	for c := 0; c < sc.NumClasses(); c++ {
		b := sc.BatchSize(c)
		if b < 2 || b > 32 {
			t.Errorf("class %d batch %d out of [2,32]", c, b)
		}
	}
	small := sc.BatchSize(0)
	large := sc.BatchSize(sc.NumClasses() - 1)
	if small <= large {
		t.Errorf("small-class batch %d should exceed large-class batch %d", small, large)
	}
}

func TestSpanGeometry(t *testing.T) {
	sc := NewSizeClasses()
	for c := 0; c < sc.NumClasses(); c++ {
		pages := sc.SpanPages(c)
		if pages < 1 || pages > 8 {
			t.Errorf("class %d span pages %d", c, pages)
		}
		n := sc.ObjectsPerSpan(c, pages)
		if n < 1 {
			t.Errorf("class %d holds %d objects per span", c, n)
		}
		if uint64(n)*sc.Size(c) > uint64(pages)<<12 {
			t.Errorf("class %d objects overflow the span", c)
		}
	}
}

func TestFragmentation(t *testing.T) {
	s := Stats{HeapBytes: 200, LiveBytes: 100}
	if got := s.Fragmentation(); got != 2 {
		t.Errorf("fragmentation = %v", got)
	}
	if got := (Stats{HeapBytes: 100}).Fragmentation(); got != 1 {
		t.Errorf("empty-heap fragmentation = %v", got)
	}
}
