// Package alloc defines the user-level memory allocator (UMA) interface
// every allocator model in this repository implements, plus the shared
// size-class machinery.
//
// Allocators receive a *sim.Thread for every call and must perform all
// metadata work through it, so the simulator observes their true access
// streams. Returned addresses are simulated virtual addresses whose
// payload bytes the caller may Load/Store freely until Free.
package alloc

import "nextgenmalloc/internal/sim"

// Allocator is the malloc/free surface.
//
// Malloc returns the address of a block of at least size bytes, aligned
// to at least 8 bytes (16 for sizes >= 16). It returns 0 only if the
// simulated heap cannot grow, which the models treat as fatal.
//
// Free releases a block previously returned by Malloc on any thread;
// like C free, passing any other address is undefined behaviour.
type Allocator interface {
	Name() string
	Malloc(t *sim.Thread, size uint64) uint64
	Free(t *sim.Thread, addr uint64)
	Stats() Stats
}

// Flusher is implemented by allocators that buffer work (e.g. NextGen's
// asynchronous frees); harnesses call Flush before reading final
// statistics.
type Flusher interface {
	Flush(t *sim.Thread)
}

// Stats is the allocator-side view of heap health, used for the
// fragmentation discussion of paper §2.1.
type Stats struct {
	// HeapBytes is the total bytes currently obtained from the kernel.
	HeapBytes uint64
	// LiveBytes is the payload bytes of currently live allocations
	// (as requested by callers).
	LiveBytes uint64
	// MallocCalls and FreeCalls count API invocations.
	MallocCalls uint64
	FreeCalls   uint64
}

// Fragmentation returns heap overhead as a ratio: HeapBytes/LiveBytes.
// It returns 1 when nothing is live.
func (s Stats) Fragmentation() float64 {
	if s.LiveBytes == 0 {
		return 1
	}
	return float64(s.HeapBytes) / float64(s.LiveBytes)
}
