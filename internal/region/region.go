// Package region defines the address classes the simulator attributes
// memory traffic to. The paper's Table 1 argument is about *which lines*
// miss — allocator metadata vs the application's own data — so every
// simulated cache/TLB event is tagged with the class of the address it
// touched. The package sits below both internal/cache and internal/tlb
// (which count per-class events) and internal/sim (which owns the
// address-to-class mapping).
package region

// Class labels what an address holds.
type Class uint8

const (
	// User is application payload: bytes inside a live allocation that
	// the allocator handed out. The default for unmarked addresses
	// outside the metadata range.
	User Class = iota
	// Meta is allocator bookkeeping: heap-structure pages (arenas, bins,
	// pagemaps, span/run/slab records), inline chunk headers, and free
	// blocks (whose bytes belong to the allocator — intrusive list links
	// live there). Everything in the dedicated mem.MetaBase range is
	// Meta by construction.
	Meta
	// Ring is offload-transport state: the per-client SPSC rings,
	// response lines, and preallocation stashes NextGen uses between an
	// application core and the allocator core.
	Ring
	// Global is workload-owned shared state (slot tables, pools,
	// barriers) — traffic the application would generate under any
	// allocator.
	Global

	numClasses
)

// NumClasses is the number of distinct classes (array dimension for
// per-class counters).
const NumClasses = int(numClasses)

// String returns the class name used in reports and the metrics JSON.
func (c Class) String() string {
	switch c {
	case User:
		return "user"
	case Meta:
		return "metadata"
	case Ring:
		return "ring"
	case Global:
		return "global"
	}
	return "invalid"
}

// Classes lists every class in declaration order (stable iteration for
// reports and serialization).
func Classes() []Class {
	return []Class{User, Meta, Ring, Global}
}
