// Package tlb models a two-level data TLB with LRU replacement.
//
// The paper's Table 1 shows dTLB-load misses varying by more than 10x
// between allocators and attributes "100s of cycles" to each miss; the
// model therefore distinguishes L1 dTLB misses that hit the second-level
// TLB (cheap) from true misses that walk the page table (expensive), and
// only the latter are reported as dTLB misses, matching what perf's
// dTLB-load-misses event counts.
package tlb

import "nextgenmalloc/internal/region"

// Stats holds per-TLB hit/miss counters, split by access type the way
// hardware PMUs split them.
type Stats struct {
	LoadHits    uint64
	LoadMisses  uint64 // page walks triggered by loads
	StoreHits   uint64
	StoreMisses uint64 // page walks triggered by stores
	STLBHits    uint64 // L1 misses that the second level absorbed
}

// ClassStats attribute a TLB's page walks to one address class
// (region.Class). Hits are not broken down: only walks carry the
// pollution cost the paper's Table 1 reports.
type ClassStats struct {
	LoadMisses  uint64
	StoreMisses uint64
}

// level is one set-associative translation array with LRU replacement.
// Entries live in dense parallel slices (vpns stores vpn+1; 0 marks an
// invalid way) so a way scan touches 8 bytes per way — the same
// host-side layout internal/cache uses for its tag arrays.
type level struct {
	sets    int
	ways    int
	setMask uint64   // sets-1 when sets is a power of two, else 0
	vpns    []uint64 // vpn+1 per way, 0 when invalid
	used    []uint64 // LRU timestamp per way
	tick    uint64
}

func newLevel(totalEntries, ways int) *level {
	if totalEntries%ways != 0 {
		panic("tlb: entries must be a multiple of ways")
	}
	sets := totalEntries / ways
	l := &level{
		sets: sets,
		ways: ways,
		vpns: make([]uint64, totalEntries),
		used: make([]uint64, totalEntries),
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	return l
}

// setIndex maps a vpn to its set. The low bit of vpn is the page-size
// tag, so the index uses the bits above it. Power-of-two geometries
// (every shipped config) take the mask path instead of a hardware
// divide; both compute the same index.
func (l *level) setIndex(vpn uint64) int {
	if l.setMask != 0 || l.sets == 1 {
		return int(vpn >> 1 & l.setMask)
	}
	return int(vpn>>1) % l.sets
}

// lookup probes the level; on hit it refreshes LRU state and returns the
// way index, or -1 on miss.
func (l *level) lookup(vpn uint64) int {
	l.tick++
	base := l.setIndex(vpn) * l.ways
	want := vpn + 1
	for i, v := range l.vpns[base : base+l.ways] {
		if v == want {
			l.used[base+i] = l.tick
			return base + i
		}
	}
	return -1
}

// insert fills vpn into the level, evicting the LRU way.
func (l *level) insert(vpn uint64) {
	l.tick++
	base := l.setIndex(vpn) * l.ways
	vpns := l.vpns[base : base+l.ways]
	used := l.used[base : base+l.ways]
	victim := 0
	for i, v := range vpns {
		if v == 0 {
			victim = i
			break
		}
		if used[i] < used[victim] {
			victim = i
		}
	}
	vpns[victim] = vpn + 1
	used[victim] = l.tick
}

// flush invalidates every entry (used by Invalidate).
func (l *level) flush() {
	for i := range l.vpns {
		l.vpns[i] = 0
	}
}

// Config sets the geometry and costs of the two levels.
type Config struct {
	L1Entries int
	L1Ways    int
	L2Entries int
	L2Ways    int
	// STLBHitCycles is the penalty for an L1 miss that the STLB absorbs.
	STLBHitCycles uint64
	// WalkCycles is the page-table walk penalty for a full miss (the
	// paper cites "100s of cycles").
	WalkCycles uint64
}

// DefaultConfig mirrors a Skylake/Neoverse-class dTLB.
func DefaultConfig() Config {
	return Config{
		L1Entries:     64,
		L1Ways:        4,
		L2Entries:     1536,
		L2Ways:        12,
		STLBHitCycles: 9,
		WalkCycles:    120,
	}
}

// TLB is a private per-core data TLB.
type TLB struct {
	cfg   Config
	l1    *level
	stlb  *level
	stats Stats
	class [region.NumClasses]ClassStats
	// mru is the L1 way index that hit most recently (-1 when unknown).
	// Same-page access runs (the common case: word-by-word walks of an
	// object) take an O(1) path with side effects identical to a full
	// set probe.
	mru int
}

// New builds a TLB from cfg.
func New(cfg Config) *TLB {
	return &TLB{
		cfg:  cfg,
		l1:   newLevel(cfg.L1Entries, cfg.L1Ways),
		stlb: newLevel(cfg.L2Entries, cfg.L2Ways),
		mru:  -1,
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ClassStats returns a copy of the per-class walk counters, indexed by
// region.Class.
func (t *TLB) ClassStats() [region.NumClasses]ClassStats { return t.class }

// Access translates the page containing vaddr and returns the extra
// cycles charged for translation (0 on an L1 hit). isStore selects which
// PMU counter a walk lands in. pageShift is the mapping's granularity
// (12 for 4 KiB pages, 21 for 2 MiB pages); entries of different
// granularities never alias because the size is folded into the tag.
func (t *TLB) Access(vaddr uint64, isStore bool, pageShift uint) uint64 {
	return t.AccessClass(vaddr, isStore, pageShift, region.User)
}

// AccessClass is Access with any page walk attributed to address class
// cls. Translation behaviour and cycles are identical to Access.
func (t *TLB) AccessClass(vaddr uint64, isStore bool, pageShift uint, cls region.Class) uint64 {
	vpn := vaddr>>pageShift<<1 | uint64(pageShift>>4&1)
	// MRU fast path: a repeat hit on the last-hit L1 entry performs the
	// exact side effects of a full probe that hits (tick advance + LRU
	// refresh + hit counter), just without the way scan.
	if i := t.mru; i >= 0 && t.l1.vpns[i] == vpn+1 {
		t.l1.tick++
		t.l1.used[i] = t.l1.tick
		if isStore {
			t.stats.StoreHits++
		} else {
			t.stats.LoadHits++
		}
		return 0
	}
	if i := t.l1.lookup(vpn); i >= 0 {
		t.mru = i
		if isStore {
			t.stats.StoreHits++
		} else {
			t.stats.LoadHits++
		}
		return 0
	}
	if t.stlb.lookup(vpn) >= 0 {
		t.stats.STLBHits++
		t.l1.insert(vpn)
		if isStore {
			t.stats.StoreHits++
		} else {
			t.stats.LoadHits++
		}
		return t.cfg.STLBHitCycles
	}
	if isStore {
		t.stats.StoreMisses++
		t.class[cls].StoreMisses++
	} else {
		t.stats.LoadMisses++
		t.class[cls].LoadMisses++
	}
	t.stlb.insert(vpn)
	t.l1.insert(vpn)
	return t.cfg.WalkCycles
}

// HitMRU attempts the MRU fast path alone: if vaddr's page is the L1's
// most recently hit entry it applies the exact side effects of an L1 hit
// (tick advance, LRU refresh, hit counter) and returns true; otherwise
// it changes nothing and the caller must call Access. Small enough to
// inline at call sites that probe the same page repeatedly.
func (t *TLB) HitMRU(vaddr uint64, isStore bool, pageShift uint) bool {
	vpn := vaddr>>pageShift<<1 | uint64(pageShift>>4&1)
	i := t.mru
	if i < 0 || t.l1.vpns[i] != vpn+1 {
		return false
	}
	t.l1.tick++
	t.l1.used[i] = t.l1.tick
	if isStore {
		t.stats.StoreHits++
	} else {
		t.stats.LoadHits++
	}
	return true
}

// PageResidentMRU reports whether vaddr's page is the L1's most recently
// hit entry. Pure check: no counter, tick, or LRU side effects.
func (t *TLB) PageResidentMRU(vaddr uint64, pageShift uint) bool {
	vpn := vaddr>>pageShift<<1 | uint64(pageShift>>4&1)
	i := t.mru
	return i >= 0 && t.l1.vpns[i] == vpn+1
}

// AccessBatchMRU charges k back-to-back accesses to the MRU page. The
// caller must have verified PageResidentMRU for every one of them (no
// other translation may intervene). The model state afterwards — tick,
// LRU stamp, hit counters — is exactly what k Access calls would leave.
func (t *TLB) AccessBatchMRU(isStore bool, k uint64) {
	t.l1.tick += k
	t.l1.used[t.mru] = t.l1.tick
	if isStore {
		t.stats.StoreHits += k
	} else {
		t.stats.LoadHits += k
	}
}

// ProbeL1Way returns the dense way index of the L1 entry translating
// vaddr's page, or -1. Pure lookup: no tick, LRU, MRU, or counter side
// effects (the time-warp replay path depends on this).
func (t *TLB) ProbeL1Way(vaddr uint64, pageShift uint) int {
	vpn := vaddr>>pageShift<<1 | uint64(pageShift>>4&1)
	l1 := t.l1
	base := l1.setIndex(vpn) * l1.ways
	want := vpn + 1
	for i, v := range l1.vpns[base : base+l1.ways] {
		if v == want {
			return base + i
		}
	}
	return -1
}

// ReplayL1LoadHits applies the exact model-state delta of k repetitions
// of a load-only round whose translations all hit the L1 at the dense
// way indexes ways (in issue order; duplicates allowed).
//
// The caller must have established — by running the round concretely
// under a scheduler lease — that every translation is an L1 load hit.
// Each concrete hit (MRU fast path or full probe) performs exactly one
// tick advance, one way stamp, and one LoadHits count, so k rounds
// leave: LoadHits advanced by k*len(ways), the tick advanced by
// k*len(ways), and each way stamped where its last occurrence in the
// final round would have stamped it. The MRU hint is already at its
// fixed point after the concrete round and is left untouched.
func (t *TLB) ReplayL1LoadHits(ways []int, k uint64) {
	a := uint64(len(ways))
	if a == 0 || k == 0 {
		return
	}
	t.stats.LoadHits += k * a
	t.l1.tick += k * a
	for i, w := range ways {
		t.l1.used[w] = t.l1.tick - (a - 1 - uint64(i))
	}
}

// Invalidate flushes both levels (e.g. after munmap).
func (t *TLB) Invalidate() {
	t.l1.flush()
	t.stlb.flush()
	t.mru = -1
}
