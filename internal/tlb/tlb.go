// Package tlb models a two-level data TLB with LRU replacement.
//
// The paper's Table 1 shows dTLB-load misses varying by more than 10x
// between allocators and attributes "100s of cycles" to each miss; the
// model therefore distinguishes L1 dTLB misses that hit the second-level
// TLB (cheap) from true misses that walk the page table (expensive), and
// only the latter are reported as dTLB misses, matching what perf's
// dTLB-load-misses event counts.
package tlb

// Stats holds per-TLB hit/miss counters, split by access type the way
// hardware PMUs split them.
type Stats struct {
	LoadHits    uint64
	LoadMisses  uint64 // page walks triggered by loads
	StoreHits   uint64
	StoreMisses uint64 // page walks triggered by stores
	STLBHits    uint64 // L1 misses that the second level absorbed
}

type entry struct {
	vpn   uint64
	valid bool
	used  uint64 // LRU timestamp
}

type level struct {
	sets    int
	ways    int
	entries []entry
	tick    uint64
}

func newLevel(totalEntries, ways int) *level {
	if totalEntries%ways != 0 {
		panic("tlb: entries must be a multiple of ways")
	}
	return &level{
		sets:    totalEntries / ways,
		ways:    ways,
		entries: make([]entry, totalEntries),
	}
}

// lookup probes the level; on hit it refreshes LRU state. The low bit
// of vpn is the page-size tag, so the set index uses the bits above it.
func (l *level) lookup(vpn uint64) bool {
	l.tick++
	set := int(vpn>>1) % l.sets
	base := set * l.ways
	for i := 0; i < l.ways; i++ {
		e := &l.entries[base+i]
		if e.valid && e.vpn == vpn {
			e.used = l.tick
			return true
		}
	}
	return false
}

// insert fills vpn into the level, evicting the LRU way.
func (l *level) insert(vpn uint64) {
	l.tick++
	set := int(vpn>>1) % l.sets
	base := set * l.ways
	victim := base
	for i := 0; i < l.ways; i++ {
		e := &l.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.used < l.entries[victim].used {
			victim = base + i
		}
	}
	l.entries[victim] = entry{vpn: vpn, valid: true, used: l.tick}
}

// flush invalidates every entry (used by Invalidate).
func (l *level) flush() {
	for i := range l.entries {
		l.entries[i].valid = false
	}
}

// Config sets the geometry and costs of the two levels.
type Config struct {
	L1Entries int
	L1Ways    int
	L2Entries int
	L2Ways    int
	// STLBHitCycles is the penalty for an L1 miss that the STLB absorbs.
	STLBHitCycles uint64
	// WalkCycles is the page-table walk penalty for a full miss (the
	// paper cites "100s of cycles").
	WalkCycles uint64
}

// DefaultConfig mirrors a Skylake/Neoverse-class dTLB.
func DefaultConfig() Config {
	return Config{
		L1Entries:     64,
		L1Ways:        4,
		L2Entries:     1536,
		L2Ways:        12,
		STLBHitCycles: 9,
		WalkCycles:    120,
	}
}

// TLB is a private per-core data TLB.
type TLB struct {
	cfg   Config
	l1    *level
	stlb  *level
	stats Stats
}

// New builds a TLB from cfg.
func New(cfg Config) *TLB {
	return &TLB{
		cfg:  cfg,
		l1:   newLevel(cfg.L1Entries, cfg.L1Ways),
		stlb: newLevel(cfg.L2Entries, cfg.L2Ways),
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// Access translates the page containing vaddr and returns the extra
// cycles charged for translation (0 on an L1 hit). isStore selects which
// PMU counter a walk lands in. pageShift is the mapping's granularity
// (12 for 4 KiB pages, 21 for 2 MiB pages); entries of different
// granularities never alias because the size is folded into the tag.
func (t *TLB) Access(vaddr uint64, isStore bool, pageShift uint) uint64 {
	vpn := vaddr>>pageShift<<1 | uint64(pageShift>>4&1)
	if t.l1.lookup(vpn) {
		if isStore {
			t.stats.StoreHits++
		} else {
			t.stats.LoadHits++
		}
		return 0
	}
	if t.stlb.lookup(vpn) {
		t.stats.STLBHits++
		t.l1.insert(vpn)
		if isStore {
			t.stats.StoreHits++
		} else {
			t.stats.LoadHits++
		}
		return t.cfg.STLBHitCycles
	}
	if isStore {
		t.stats.StoreMisses++
	} else {
		t.stats.LoadMisses++
	}
	t.stlb.insert(vpn)
	t.l1.insert(vpn)
	return t.cfg.WalkCycles
}

// Invalidate flushes both levels (e.g. after munmap).
func (t *TLB) Invalidate() {
	t.l1.flush()
	t.stlb.flush()
}
