package tlb

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{L1Entries: 8, L1Ways: 2, L2Entries: 16, L2Ways: 4, STLBHitCycles: 9, WalkCycles: 120}
}

func TestMissThenHit(t *testing.T) {
	tl := New(small())
	if cyc := tl.Access(0x1000, false, 12); cyc != 120 {
		t.Errorf("cold access cost %d, want walk 120", cyc)
	}
	if cyc := tl.Access(0x1008, false, 12); cyc != 0 {
		t.Errorf("same-page access cost %d, want 0", cyc)
	}
	st := tl.Stats()
	if st.LoadMisses != 1 || st.LoadHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestStoreCounters(t *testing.T) {
	tl := New(small())
	tl.Access(0x2000, true, 12)
	st := tl.Stats()
	if st.StoreMisses != 1 || st.LoadMisses != 0 {
		t.Errorf("store walk landed in the wrong counter: %+v", st)
	}
}

func TestSTLBAbsorbsL1Evictions(t *testing.T) {
	tl := New(small())
	// Touch more pages than L1 holds but fewer than the STLB holds.
	for p := uint64(0); p < 12; p++ {
		tl.Access(p<<12, false, 12)
	}
	// Revisit the first page: L1 evicted it, the STLB should hit.
	cyc := tl.Access(0, false, 12)
	if cyc != 9 {
		t.Errorf("revisit cost %d, want STLB hit 9", cyc)
	}
	if tl.Stats().STLBHits != 1 {
		t.Errorf("STLB hits = %d", tl.Stats().STLBHits)
	}
}

func TestFullMissAfterBothLevelsEvict(t *testing.T) {
	tl := New(small())
	for p := uint64(0); p < 64; p++ {
		tl.Access(p<<12, false, 12)
	}
	tl.Access(0, false, 12)
	if tl.Stats().LoadMisses < 2 {
		t.Error("expected a second full walk after eviction")
	}
}

func TestHugePagesDontAlias(t *testing.T) {
	tl := New(small())
	// A 2 MiB page at 0 and a 4 KiB page whose vpn would collide.
	tl.Access(0x100000, false, 21) // huge: vpn 0
	cyc := tl.Access(0x0, false, 12)
	if cyc != 120 {
		t.Errorf("4k page aliased with huge entry: cost %d", cyc)
	}
}

func TestHugeReach(t *testing.T) {
	tl := New(small())
	tl.Access(0, false, 21)
	// Anywhere within the same 2 MiB: hit.
	if cyc := tl.Access(0x1fff00, false, 21); cyc != 0 {
		t.Errorf("within-huge-page access cost %d", cyc)
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(small())
	tl.Access(0x3000, false, 12)
	tl.Invalidate()
	if cyc := tl.Access(0x3000, false, 12); cyc != 120 {
		t.Errorf("post-invalidate access cost %d, want 120", cyc)
	}
}

// TestQuickHitAfterMiss: any address misses at most once when accessed
// twice in a row.
func TestQuickHitAfterMiss(t *testing.T) {
	f := func(addrs []uint32) bool {
		tl := New(DefaultConfig())
		for _, a := range addrs {
			tl.Access(uint64(a), false, 12)
			if tl.Access(uint64(a), false, 12) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
