package core

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/sim"
)

// factory builds a NextGen variant for the conformance suite.
func factory(cfg Config, srvSlot **Server) alloctest.Factory {
	return func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
		a := New(th, cfg)
		if cfg.Offload && srvSlot != nil && *srvSlot != nil {
			(*srvSlot).Attach(a)
		}
		return a
	}
}

func TestConformanceOffload(t *testing.T) {
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(DefaultConfig(), &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformancePrealloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prealloc = 12
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = 4
	cfg.IdleBackoff = true
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceAdaptivePrealloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = 4
	cfg.AdaptivePrealloc = true
	cfg.IdleBackoff = true
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceInline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = false
	alloctest.Run(t, alloctest.Options{Factory: factory(cfg, nil)})
}

func TestConformanceInlineAggregated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = false
	cfg.Layout = Aggregated
	alloctest.Run(t, alloctest.Options{Factory: factory(cfg, nil)})
}

func TestConformanceSyncFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AsyncFree = false
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

// TestMetadataRegionIsolated: with the segregated layout, no allocator
// metadata lives in user-visible pages — every metadata mmap lands in
// the dedicated MetaBase range.
func TestMetadataRegionIsolated(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Offload = false
		a := New(th, cfg)
		if a.pagemapRoot < mem.MetaBase || a.pagemapRoot >= mem.MmapBase {
			t.Errorf("pagemap root %#x outside the metadata region", a.pagemapRoot)
		}
		if a.metaBase < mem.MetaBase || a.metaBase >= mem.MmapBase {
			t.Errorf("slab records %#x outside the metadata region", a.metaBase)
		}
		p := a.Malloc(th, 64)
		if p < mem.MmapBase {
			t.Errorf("user block %#x not in the user mmap region", p)
		}
		// Segregated: the allocator must not have written the block.
		q := a.Malloc(th, 64)
		a.Free(th, q)
		if w := th.Load64(q); w != 0 {
			t.Errorf("segregated layout wrote %#x into a freed block", w)
		}
		a.Free(th, p)
	})
	m.Run()
}

// TestAggregatedWritesBlocks: the aggregated layout, by contrast,
// threads its free list through the blocks.
func TestAggregatedWritesBlocks(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Offload = false
		cfg.Layout = Aggregated
		a := New(th, cfg)
		p := a.Malloc(th, 64)
		q := a.Malloc(th, 64)
		th.Store64(p, 0xfeed)
		a.Free(th, p)
		a.Free(th, q)
		// q's first word now holds the intrusive link to p.
		if w := th.Load64(q); w != p {
			t.Errorf("aggregated free list link = %#x, want %#x", w, p)
		}
	})
	m.Run()
}

// TestAsyncFreeCompletesByFlush: frees queue without blocking and are
// all applied once Flush returns.
func TestAsyncFreeCompletesByFlush(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th, DefaultConfig())
		srv.Attach(a)
		addrs := make([]uint64, 500)
		for i := range addrs {
			addrs[i] = a.Malloc(th, 48)
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		a.Flush(th)
		// After the flush barrier every free was applied: allocating the
		// same count of the same class must reuse the same blocks.
		reused := map[uint64]bool{}
		for _, p := range addrs {
			reused[p] = true
		}
		hits := 0
		for range addrs {
			if reused[a.Malloc(th, 48)] {
				hits++
			}
		}
		if hits < 400 {
			t.Errorf("only %d/500 blocks reused after Flush; frees not drained", hits)
		}
	})
	m.Run()
}

// TestServerServesAllOps: every ring operation is accounted.
func TestServerServesAllOps(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	var a *Allocator
	m.Spawn("t", 0, func(th *sim.Thread) {
		a = New(th, DefaultConfig())
		srv.Attach(a)
		for i := 0; i < 100; i++ {
			p := a.Malloc(th, 64)
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	// 100 mallocs + 100 frees + 1 sync.
	if got := a.Served(); got != 201 {
		t.Errorf("server served %d ops, want 201", got)
	}
}

// TestNoAtomicsInEngine: the offloaded engine path performs no atomic
// RMW operations (paper §3.1.3 "Strategy 2").
func TestNoAtomicsInEngine(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	serverCore := m.Cores() - 1
	srv := NewServer()
	m.SpawnDaemon("server", serverCore, srv.Run)
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th, DefaultConfig())
		srv.Attach(a)
		for i := 0; i < 200; i++ {
			p := a.Malloc(th, uint64(16+(i%20)*16))
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	if got := m.CoreCounters(serverCore).AtomicOps; got != 0 {
		t.Errorf("server core executed %d atomic RMWs; the engine should need none", got)
	}
}

// TestBatchCoalescesFrees: with Batch=4, the free ring publishes its
// tail once per slot line instead of once per free, and every free is
// still applied by the flush barrier.
func TestBatchCoalescesFrees(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	var a *Allocator
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Batch = 4
		a = New(th, cfg)
		srv.Attach(a)
		addrs := make([]uint64, 200)
		for i := range addrs {
			addrs[i] = a.Malloc(th, 48)
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	if got := a.Served(); got != 401 {
		t.Errorf("server served %d ops, want 401 (every staged free must drain)", got)
	}
	_, free := a.RingTelemetry()
	// 200 frees + 1 sync; a full-width batch per 4 frees plus the final
	// sync publication = ~51 tail stores instead of 201.
	if free.Pushes != 201 {
		t.Errorf("free-ring pushes = %d, want 201", free.Pushes)
	}
	if free.PushBatches*2 >= free.Pushes {
		t.Errorf("free ring published %d batches for %d pushes; coalescing ineffective",
			free.PushBatches, free.Pushes)
	}
	if free.PopBatches*2 >= free.Pops {
		t.Errorf("server drained %d pops in %d head publications; vectored pop ineffective",
			free.Pops, free.PopBatches)
	}
}

// TestAdaptiveStashServesHotClass: the adaptive policy stocks a hot
// class's stash from noteHot feedback alone (no static depth), so
// repeated same-class mallocs mostly bypass the ring.
func TestAdaptiveStashServesHotClass(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	var a *Allocator
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.AdaptivePrealloc = true
		a = New(th, cfg)
		srv.Attach(a)
		var addrs []uint64
		for i := 0; i < 300; i++ {
			addrs = append(addrs, a.Malloc(th, 64))
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	ringMallocs := a.Served() - 300 - 1
	if ringMallocs > 100 {
		t.Errorf("%d of 300 mallocs went through the ring; adaptive stash ineffective", ringMallocs)
	}
}

// TestAdaptiveStashDepthFollowsHeat: depth tracks the class's recency
// rank and is zero for classes that fell out of the list.
func TestAdaptiveStashDepthFollowsHeat(t *testing.T) {
	a := &Allocator{cfg: Config{AdaptivePrealloc: true}}
	c := &client{}
	if d := a.stashDepth(c, 3); d != 0 {
		t.Errorf("cold class depth = %d, want 0", d)
	}
	for class := 0; class < 10; class++ {
		c.noteHot(class)
	}
	// Classes 9,8,... are ranks 0,1,...; classes 0 and 1 fell out.
	want := []uint64{13, 13, 6, 6, 3, 3, 1, 1}
	for rank, w := range want {
		if d := a.stashDepth(c, 9-rank); d != w {
			t.Errorf("rank-%d class depth = %d, want %d", rank, d, w)
		}
	}
	if d := a.stashDepth(c, 0); d != 0 {
		t.Errorf("evicted class depth = %d, want 0", d)
	}
	if d := a.stashDepth(c, 9); d > stashWindow-1 {
		t.Errorf("depth %d exceeds the stash window slack bound %d", d, stashWindow-1)
	}
}

// TestIdleBackoffCutsEmptyPolls: over the same idle stretch, doorbell
// backoff performs far fewer empty ring scans than the fixed pause.
func TestIdleBackoffCutsEmptyPolls(t *testing.T) {
	run := func(backoff bool) (emptyPolls, emptyPollCycles uint64) {
		m := sim.New(sim.ScaledConfig())
		srv := NewServer()
		m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		m.Spawn("t", 0, func(th *sim.Thread) {
			cfg := DefaultConfig()
			cfg.IdleBackoff = backoff
			a := New(th, cfg)
			srv.Attach(a)
			p := a.Malloc(th, 64)
			th.Pause(200000) // long quiescent stretch: the doorbell case
			a.Free(th, p)
			a.Flush(th)
		})
		m.Run()
		return srv.PollStats()
	}
	fixedPolls, fixedCycles := run(false)
	backoffPolls, backoffCycles := run(true)
	if backoffPolls*4 >= fixedPolls {
		t.Errorf("backoff made %d empty polls vs %d fixed; expected a >4x cut",
			backoffPolls, fixedPolls)
	}
	if backoffCycles >= fixedCycles {
		t.Errorf("backoff burned %d empty-poll cycles vs %d fixed", backoffCycles, fixedCycles)
	}
}

// TestVariantNames pins the Name strings the harness and reports key on.
func TestVariantNames(t *testing.T) {
	cases := []struct {
		mut  func(*Config)
		want string
	}{
		{func(c *Config) {}, "nextgen"},
		{func(c *Config) { c.Prealloc = 12 }, "nextgen-prealloc"},
		{func(c *Config) { c.Batch = 4 }, "nextgen-batch"},
		{func(c *Config) { c.Batch = 4; c.AdaptivePrealloc = true }, "nextgen-adaptive"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if got := (&Allocator{cfg: cfg}).Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestStashHitAvoidsRoundTrip: with preallocation, repeated same-class
// mallocs mostly bypass the ring.
func TestStashHitAvoidsRoundTrip(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	var a *Allocator
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Prealloc = 12
		a = New(th, cfg)
		srv.Attach(a)
		var addrs []uint64
		for i := 0; i < 300; i++ {
			addrs = append(addrs, a.Malloc(th, 64))
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	// 300 mallocs: after warmup the stash absorbs most; the ring sees
	// frees (300) + sync (1) + only the stash-miss mallocs.
	ringMallocs := a.Served() - 300 - 1
	if ringMallocs > 100 {
		t.Errorf("%d of 300 mallocs went through the ring; stash ineffective", ringMallocs)
	}
}
