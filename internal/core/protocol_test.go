package core

import (
	"fmt"
	"testing"

	"nextgenmalloc/internal/sim"
)

// TestMultiClientOffload: several application threads share one server;
// each gets correct, non-overlapping blocks.
func TestMultiClientOffload(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	ready, _ := m.Kernel().Mmap(1)
	var a *Allocator
	const clients, per = 3, 300
	results := make([][]uint64, clients)
	for i := 0; i < clients; i++ {
		part := i
		m.Spawn(fmt.Sprintf("c%d", part), part, func(th *sim.Thread) {
			if part == 0 {
				a = New(th, DefaultConfig())
				srv.Attach(a)
				th.AtomicStore64(ready, 1)
			} else {
				for th.Load64(ready) == 0 {
					th.Pause(100)
				}
			}
			addrs := make([]uint64, per)
			for k := range addrs {
				addrs[k] = a.Malloc(th, 64)
				th.Store64(addrs[k], uint64(part*10000+k))
			}
			// Verify before freeing: any cross-client overlap would show.
			for k, p := range addrs {
				if got := th.Load64(p); got != uint64(part*10000+k) {
					t.Errorf("client %d block %d corrupted: %#x", part, k, got)
				}
				a.Free(th, p)
			}
			a.Flush(th)
			results[part] = addrs
		})
	}
	m.Run()
	seen := map[uint64]int{}
	for c, addrs := range results {
		for _, p := range addrs {
			if prev, dup := seen[p]; dup {
				t.Fatalf("clients %d and %d both held %#x live", prev, c, p)
			}
			seen[p] = c
		}
	}
	if a.Served() == 0 {
		t.Error("server served nothing")
	}
}

// TestTinyRingBackpressure: a 4-slot free ring forces constant
// backpressure; nothing may be lost.
func TestTinyRingBackpressure(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("app", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.RingSlots = 4
		a := New(th, cfg)
		srv.Attach(a)
		var addrs []uint64
		for i := 0; i < 500; i++ {
			addrs = append(addrs, a.Malloc(th, 32))
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		a.Flush(th)
		st := a.Stats()
		if st.FreeCalls != 500 {
			t.Errorf("frees = %d", st.FreeCalls)
		}
		// All blocks must be back: reallocate and count reuse.
		reused := map[uint64]bool{}
		for _, p := range addrs {
			reused[p] = true
		}
		hits := 0
		for i := 0; i < 500; i++ {
			if reused[a.Malloc(th, 32)] {
				hits++
			}
		}
		if hits < 400 {
			t.Errorf("only %d/500 reused; frees lost under backpressure?", hits)
		}
	})
	m.Run()
}

// TestLargeObjectsThroughRing: requests above the size classes travel
// the same ring protocol and map whole pages.
func TestLargeObjectsThroughRing(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("app", 0, func(th *sim.Thread) {
		a := New(th, DefaultConfig())
		srv.Attach(a)
		p := a.Malloc(th, 300<<10)
		th.Store64(p, 1)
		th.Store64(p+(300<<10)-8, 2)
		if th.Load64(p) != 1 || th.Load64(p+(300<<10)-8) != 2 {
			t.Error("large block corrupt")
		}
		a.Free(th, p)
		a.Flush(th)
	})
	m.Run()
}

func TestLayoutString(t *testing.T) {
	if Segregated.String() != "segregated" || Aggregated.String() != "aggregated" {
		t.Error("layout strings wrong")
	}
}

// TestNames: every variant reports a distinct, stable name.
func TestNames(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		mk := func(cfg Config) string { return New(th, cfg).Name() }
		inline := DefaultConfig()
		inline.Offload = false
		agg := inline
		agg.Layout = Aggregated
		pre := DefaultConfig()
		pre.Prealloc = 4
		names := []string{
			mk(inline), mk(agg), mk(pre),
		}
		want := []string{"nextgen-inline", "nextgen-inline-agg", "nextgen-prealloc"}
		for i := range names {
			if names[i] != want[i] {
				t.Errorf("name %d = %q, want %q", i, names[i], want[i])
			}
		}
	})
	m.Run()
}

// TestInlineMultiThread: the inline engine's lock keeps concurrent
// mutators safe.
func TestInlineMultiThread(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	ready, _ := m.Kernel().Mmap(1)
	var a *Allocator
	const n = 3
	for i := 0; i < n; i++ {
		part := i
		m.Spawn(fmt.Sprintf("t%d", part), part, func(th *sim.Thread) {
			if part == 0 {
				cfg := DefaultConfig()
				cfg.Offload = false
				a = New(th, cfg)
				th.AtomicStore64(ready, 1)
			} else {
				for th.Load64(ready) == 0 {
					th.Pause(100)
				}
			}
			for k := 0; k < 400; k++ {
				p := a.Malloc(th, uint64(16+(k%8)*16))
				th.Store64(p, uint64(part))
				if th.Load64(p) != uint64(part) {
					t.Errorf("thread %d lost its write", part)
				}
				a.Free(th, p)
			}
		})
	}
	m.Run()
	if got := a.Stats().MallocCalls; got != n*400 {
		t.Errorf("mallocs = %d", got)
	}
}
