package core

import (
	"fmt"

	"nextgenmalloc/internal/sim"
)

// SchedPolicy selects the order in which the server core services its
// clients' rings on each Poll pass. The zero value (FixedScan) is the
// seed behaviour and stays bit-identical to it; the other policies fix
// the fixed-scan fairness bugs (head-of-line blocking of one client's
// synchronous malloc behind another client's free slice, and the
// registration-order scan bias that favours early clients).
type SchedPolicy int

const (
	// FixedScan services clients in registration order: all malloc
	// rings first, then up to 16 background frees per client,
	// re-checking only the current client's malloc ring between frees.
	// This is the seed behaviour and the default.
	FixedScan SchedPolicy = iota
	// RoundRobin rotates the scan's starting client each pass so no
	// client is permanently first, and re-checks every malloc ring
	// between free lines so a synchronous request never waits behind
	// another client's free backlog.
	RoundRobin
	// DoorbellPriority pops background frees one at a time and
	// re-checks every malloc ring after each, minimising synchronous
	// malloc latency at the cost of per-free head publications (no
	// vectored drain).
	DoorbellPriority
	// BatchDrain empties each client's entire free backlog before
	// moving on (no 16-op slice cap), maximising drain throughput at
	// the cost of cross-client fairness.
	BatchDrain
)

// String reports the policy's CLI spelling.
func (p SchedPolicy) String() string {
	switch p {
	case FixedScan:
		return "fixed-scan"
	case RoundRobin:
		return "round-robin"
	case DoorbellPriority:
		return "doorbell-priority"
	case BatchDrain:
		return "batch-drain"
	}
	return fmt.Sprintf("sched(%d)", int(p))
}

// ParseSched maps a CLI spelling to its policy. The empty string is
// the default (fixed-scan, the seed behaviour).
func ParseSched(s string) (SchedPolicy, error) {
	switch s {
	case "", "fixed-scan":
		return FixedScan, nil
	case "round-robin":
		return RoundRobin, nil
	case "doorbell-priority":
		return DoorbellPriority, nil
	case "batch-drain":
		return BatchDrain, nil
	}
	return 0, fmt.Errorf("unknown scheduling policy %q (want fixed-scan, round-robin, doorbell-priority or batch-drain)", s)
}

// ClientService is one client's slice of the server's service-fairness
// ledger: how many of its requests the server completed and the widest
// gap in cycles between consecutive completions (the starvation metric
// the fleet sweep reports).
type ClientService struct {
	ThreadID     int
	Served       uint64
	MaxGapCycles uint64
}

// ClientServices reports the per-client service ledger in client
// registration order. Host-side observation only; safe to call after a
// run completes.
func (a *Allocator) ClientServices() []ClientService {
	out := make([]ClientService, 0, len(a.clients))
	for _, c := range a.clients {
		out = append(out, ClientService{
			ThreadID:     c.threadID,
			Served:       c.servedOps,
			MaxGapCycles: c.maxServeGap,
		})
	}
	return out
}

// pollMallocs drains every client's malloc ring and reports whether
// any request was found. The fair policies call this between
// background frees so a synchronous malloc never waits behind another
// client's free backlog (fixed-scan only re-checks the current
// client's ring — the head-of-line bug the fair policies fix).
func (s *Server) pollMallocs(t *sim.Thread) bool {
	a := s.a
	busy := false
	for _, c := range a.clients {
		for {
			w0, w1, ok := s.pop(t, c.mreq)
			if !ok {
				break
			}
			busy = true
			s.serveSpan(t, c, c.mreq, w0, w1)
		}
	}
	return busy
}

// pollRoundRobin is the RoundRobin policy: one pass with the scan
// start rotating across clients, malloc rings drained first from the
// rotating start, then a bounded slice of each client's free backlog
// with every malloc ring re-checked between free lines.
func (s *Server) pollRoundRobin(t *sim.Thread) bool {
	a := s.a
	n := len(a.clients)
	if n == 0 {
		return false
	}
	start := s.rr % n
	s.rr++
	busy := false
	// Priority pass: malloc rings from the rotating start.
	for i := 0; i < n; i++ {
		c := a.clients[(start+i)%n]
		for {
			w0, w1, ok := s.pop(t, c.mreq)
			if !ok {
				break
			}
			busy = true
			s.serveSpan(t, c, c.mreq, w0, w1)
		}
	}
	// Background pass: a bounded free slice per client, fairness-first —
	// all malloc rings are re-checked between lines.
	step := 1
	if a.cfg.Batch > 1 {
		step = a.cfg.Batch
	}
	for i := 0; i < n; i++ {
		c := a.clients[(start+i)%n]
		for done := 0; done < 16; done += step {
			if s.pollMallocs(t) {
				busy = true
			}
			if a.cfg.Batch > 1 {
				if s.popFreeLine(t, c) == 0 {
					break
				}
			} else {
				w0, w1, ok := s.pop(t, c.freq)
				if !ok {
					break
				}
				s.serveSpan(t, c, c.freq, w0, w1)
			}
			busy = true
		}
	}
	return busy
}

// pollDoorbell is the DoorbellPriority policy: background frees pop
// one at a time (the vectored drain is bypassed) and every malloc ring
// is re-checked after each free, so a synchronous malloc waits for at
// most one free service anywhere in the pass.
func (s *Server) pollDoorbell(t *sim.Thread) bool {
	a := s.a
	busy := s.pollMallocs(t)
	for _, c := range a.clients {
		for n := 0; n < 16; n++ {
			w0, w1, ok := s.pop(t, c.freq)
			if !ok {
				break
			}
			busy = true
			s.serveSpan(t, c, c.freq, w0, w1)
			if s.pollMallocs(t) {
				busy = true
			}
		}
	}
	return busy
}

// pollBatchDrain is the BatchDrain policy: each client's free backlog
// is drained to empty (no slice cap) with only the current client's
// malloc ring interleaved, maximising drain throughput per pass.
func (s *Server) pollBatchDrain(t *sim.Thread) bool {
	a := s.a
	busy := s.pollMallocs(t)
	for _, c := range a.clients {
		for {
			if w0, w1, ok := s.pop(t, c.mreq); ok {
				busy = true
				s.serveSpan(t, c, c.mreq, w0, w1)
			}
			if a.cfg.Batch > 1 {
				if s.popFreeLine(t, c) == 0 {
					break
				}
			} else {
				w0, w1, ok := s.pop(t, c.freq)
				if !ok {
					break
				}
				s.serveSpan(t, c, c.freq, w0, w1)
			}
			busy = true
		}
	}
	return busy
}
