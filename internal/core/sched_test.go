package core

import (
	"testing"

	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

// alloctestRun runs the conformance suite against a NextGen config
// with one offload server.
func alloctestRun(t *testing.T, cfg Config, srvSlot **Server) {
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, srvSlot),
		Daemon: func(m *sim.Machine) {
			*srvSlot = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, (*srvSlot).Run)
		},
	})
}

func TestParseSched(t *testing.T) {
	cases := []struct {
		in   string
		want SchedPolicy
	}{
		{"", FixedScan},
		{"fixed-scan", FixedScan},
		{"round-robin", RoundRobin},
		{"doorbell-priority", DoorbellPriority},
		{"batch-drain", BatchDrain},
	}
	for _, c := range cases {
		got, err := ParseSched(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSched(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"fifo", "roundrobin", "doorbell"} {
		if _, err := ParseSched(bad); err == nil {
			t.Errorf("ParseSched(%q) accepted", bad)
		}
	}
	// Every policy's String spelling must parse back to itself.
	for _, p := range []SchedPolicy{FixedScan, RoundRobin, DoorbellPriority, BatchDrain} {
		got, err := ParseSched(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSched(%q) = %v, %v; want round trip", p.String(), got, err)
		}
	}
}

func TestParsePartition(t *testing.T) {
	cases := []struct {
		in   string
		want Partition
	}{
		{"", ByClient},
		{"client", ByClient},
		{"class", ByClass},
	}
	for _, c := range cases {
		got, err := ParsePartition(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePartition(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePartition("thread"); err == nil {
		t.Error("ParsePartition(thread) accepted")
	}
	for _, p := range []Partition{ByClient, ByClass} {
		got, err := ParsePartition(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePartition(%q) = %v, %v; want round trip", p.String(), got, err)
		}
	}
}

// TestSchedConformance: every non-default service order still passes
// the allocator conformance suite (the fairness fixes must not change
// what gets served, only when).
func TestSchedConformance(t *testing.T) {
	for _, p := range []SchedPolicy{RoundRobin, DoorbellPriority, BatchDrain} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Sched = p
			var srv *Server
			alloctestRun(t, cfg, &srv)
		})
	}
}

// TestSchedBatchedConformance: the same sweep with free coalescing on,
// exercising the per-line malloc re-check paths.
func TestSchedBatchedConformance(t *testing.T) {
	for _, p := range []SchedPolicy{RoundRobin, DoorbellPriority, BatchDrain} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Sched = p
			cfg.Batch = 4
			var srv *Server
			alloctestRun(t, cfg, &srv)
		})
	}
}
