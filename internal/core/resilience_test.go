package core

import (
	"testing"

	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/sim"
)

// --- seal unit tests --------------------------------------------------------

func TestSealRoundTrip(t *testing.T) {
	for seq := uint64(0); seq < 40; seq++ {
		w0 := opMalloc | uint64(64+seq*8)<<8
		w1 := seq
		sealed := sealWord(w0, w1, seq)
		if !checkSeal(sealed, w1) {
			t.Fatalf("seq %d: freshly sealed word fails its own check", seq)
		}
		if got := unseal(sealed); got != w0 {
			t.Fatalf("seq %d: unseal = %#x, want %#x", seq, got, w0)
		}
		if sealed>>tagShift&0xf != seq&0xf {
			t.Fatalf("seq %d: tag nibble = %d", seq, sealed>>tagShift&0xf)
		}
	}
}

// TestSealDetectsSingleBitFlips is the corruption model's contract:
// the injector flips exactly one bit of the 128-bit pair, and the
// parity nibble must catch every such flip.
func TestSealDetectsSingleBitFlips(t *testing.T) {
	pairs := [][2]uint64{
		{sealWord(opMalloc|64<<8, 7, 7), 7},
		{sealWord(opFree, 0x7000_0000_1000, 9), 0x7000_0000_1000},
		{sealWord(opSync, 12, 12), 12},
		{sealWord(opPreheat|3<<8, 0, 13), 0},
	}
	for pi, p := range pairs {
		for bit := 0; bit < 128; bit++ {
			w0, w1 := p[0], p[1]
			if bit < 64 {
				w0 ^= 1 << bit
			} else {
				w1 ^= 1 << (bit - 64)
			}
			if checkSeal(w0, w1) {
				t.Fatalf("pair %d: flip of bit %d went undetected", pi, bit)
			}
		}
	}
}

// --- conformance under the resilient protocol -------------------------------

func resilientFactory(cfg Config, srvSlot **Server) alloctest.Factory {
	cfg.Resilience = DefaultResilience()
	return factory(cfg, srvSlot)
}

func TestConformanceResilience(t *testing.T) {
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: resilientFactory(DefaultConfig(), &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceResilienceSyncFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AsyncFree = false
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: resilientFactory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceResilienceBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = 4
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: resilientFactory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

// TestResilientCleanRun: with the policy armed but no faults injected,
// a healthy server means the degradation machinery never trips.
func TestResilientCleanRun(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	var a *Allocator
	m.Spawn("worker", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Resilience = DefaultResilience()
		a = New(th, cfg)
		srv.Attach(a)
		var live []uint64
		for i := 0; i < 200; i++ {
			p := a.Malloc(th, 64)
			if p == 0 {
				t.Error("malloc returned 0")
			}
			th.Store64(p, uint64(i))
			live = append(live, p)
			if len(live) > 8 {
				a.Free(th, live[0])
				live = live[1:]
			}
		}
		for _, p := range live {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	rs := a.ResilienceTelemetry()
	// Stray timeouts are tolerated (a first-touch slab carve is slow);
	// what a clean run must never do is abandon a request or degrade.
	if rs.FallbackEntries != 0 || rs.EmergencyMallocs != 0 || rs.AbandonedRequests != 0 {
		t.Errorf("clean run tripped the fallback: %+v", rs)
	}
	if rs.MallocNacks != 0 || rs.FreeNacks != 0 {
		t.Errorf("clean run was NACKed: %+v", rs)
	}
	if a.Served() == 0 {
		t.Error("server served nothing")
	}
}

// --- degraded mode ----------------------------------------------------------

// TestNoServerFallback: with no server at all, every malloc times out
// and the client must still make progress through the emergency
// allocator — the tentpole's core promise.
func TestNoServerFallback(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var a *Allocator
	var rs ResilienceStats
	m.Spawn("worker", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Resilience = Resilience{
			Enabled:       true,
			TimeoutCycles: 500,
			MaxRetries:    1,
			BackoffCycles: 64,
			FallbackAfter: 1,
			ProbeCycles:   1 << 40, // never probe mid-run
		}
		a = New(th, cfg)
		// No server attached: the rings are write-only.
		const n = 50
		var blocks [n]uint64
		for i := 0; i < n; i++ {
			p := a.Malloc(th, 96)
			if p == 0 {
				t.Errorf("malloc %d returned 0 while degraded", i)
			}
			th.Store64(p, uint64(0xfeed_0000)+uint64(i))
			blocks[i] = p
		}
		seen := map[uint64]bool{}
		for i, p := range blocks {
			if got := th.Load64(p); got != uint64(0xfeed_0000)+uint64(i) {
				t.Errorf("block %d corrupted: %#x", i, got)
			}
			if seen[p] {
				t.Errorf("block %d address %#x double-allocated", i, p)
			}
			seen[p] = true
			a.Free(th, p)
		}
		// A large (off-class) emergency allocation travels the mmap path.
		big := a.Malloc(th, 128<<10)
		if big == 0 {
			t.Error("large degraded malloc returned 0")
		}
		th.Store64(big+100<<10, 1)
		a.Free(th, big)
		a.Flush(th)
		rs = a.ResilienceTelemetry()
	})
	m.Run()
	if rs.FallbackEntries != 1 {
		t.Errorf("FallbackEntries = %d, want 1", rs.FallbackEntries)
	}
	if rs.FallbackExits != 0 {
		t.Errorf("FallbackExits = %d, want 0 (server never answered)", rs.FallbackExits)
	}
	if rs.EmergencyMallocs != 51 {
		t.Errorf("EmergencyMallocs = %d, want 51", rs.EmergencyMallocs)
	}
	if rs.EmergencyFrees != 51 {
		t.Errorf("EmergencyFrees = %d, want 51", rs.EmergencyFrees)
	}
	if rs.Timeouts == 0 || rs.AbandonedRequests == 0 {
		t.Errorf("no timeouts/abandonments recorded: %+v", rs)
	}
	if rs.DegradedCycles == 0 {
		t.Errorf("DegradedCycles = 0 with a dead server")
	}
	if lb := a.Stats().LiveBytes; lb != 0 {
		t.Errorf("LiveBytes = %d after freeing everything, want 0", lb)
	}
}

// TestStallFallbackAndRecovery drives the full arc: healthy service,
// a long injected server stall (fallback), recovery (rejoin), and a
// clean drain — with the request-accounting invariant at the end.
func TestStallFallbackAndRecovery(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	inj := fault.NewInjector(fault.Plan{Seed: 11, StallCycles: 200000, StallStart: 50000})
	inj.Attach(m)
	var a *Allocator
	m.Spawn("worker", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Faults = inj
		cfg.Resilience = Resilience{
			Enabled:       true,
			TimeoutCycles: 2000,
			MaxRetries:    1,
			BackoffCycles: 256,
			FallbackAfter: 1,
			ProbeCycles:   20000,
		}
		a = New(th, cfg)
		srv.Attach(a)
		var live []uint64
		for th.Clock() < 400000 {
			p := a.Malloc(th, 64)
			if p == 0 {
				t.Error("malloc returned 0 across the stall")
			}
			th.Store64(p, p^0xabcd)
			live = append(live, p)
			if len(live) > 16 {
				q := live[0]
				live = live[1:]
				if got := th.Load64(q); got != q^0xabcd {
					t.Errorf("block %#x corrupted: %#x", q, got)
				}
				a.Free(th, q)
			}
			th.Pause(500)
		}
		for _, p := range live {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	rs := a.ResilienceTelemetry()
	if rs.FallbackEntries == 0 || rs.EmergencyMallocs == 0 {
		t.Errorf("stall did not trigger the fallback: %+v", rs)
	}
	if rs.FallbackExits == 0 {
		t.Errorf("client never rejoined after the stall ended: %+v", rs)
	}
	if rs.DegradedCycles == 0 {
		t.Errorf("DegradedCycles = 0 across a 200k-cycle stall")
	}
	if st := inj.Stats(); st.Stalls == 0 || st.StallCycles == 0 {
		t.Errorf("injector recorded no stall: %+v", st)
	}
	// Liveness: the shutdown drain leaves nothing in the rings, and
	// every popped request was either served or NACKed.
	mr, fr := a.RingTelemetry()
	if mr.Pushes != mr.Pops || fr.Pushes != fr.Pops {
		t.Errorf("requests lost in the rings: malloc %d/%d free %d/%d",
			mr.Pops, mr.Pushes, fr.Pops, fr.Pushes)
	}
	if got, want := a.Served()+rs.MallocNacks+rs.FreeNacks, mr.Pops+fr.Pops; got != want {
		t.Errorf("served+nacked = %d, pops = %d", got, want)
	}
	if rs.ReclaimedBlocks > rs.AbandonedRequests {
		t.Errorf("reclaimed %d > abandoned %d", rs.ReclaimedBlocks, rs.AbandonedRequests)
	}
}

// --- server-side validation -------------------------------------------------

// TestServerValidationNacks feeds the server hand-crafted ring words —
// corrupt, malformed, and hostile — on a single thread (Poll driven
// directly) and checks each is NACKed, not served, not panicked on.
func TestServerValidationNacks(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("worker", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Resilience = DefaultResilience()
		a := New(th, cfg)
		srv := NewServer()
		srv.Attach(a)
		c := a.clientOf(th)
		drain := func() {
			for srv.Poll(th) {
			}
		}
		nacks := func() (nm, nf uint64) {
			return th.AtomicLoad64(c.page + respNackM), th.AtomicLoad64(c.page + respNackF)
		}

		// A well-formed malloc is served.
		c.mreq.TryPush(th, sealWord(opMalloc|64<<8, 5, 5), 5)
		drain()
		if got := th.AtomicLoad64(c.page + respSeq); got != 5 {
			t.Errorf("valid malloc not answered: respSeq = %d", got)
		}
		addr := th.Load64(c.page + respAddr)
		if addr == 0 {
			t.Error("valid malloc returned 0")
		}

		// One flipped payload bit: the seal catches it.
		c.mreq.TryPush(th, sealWord(opMalloc|64<<8, 6, 6)^(1<<13), 6)
		// A sealed op code the protocol doesn't know.
		c.mreq.TryPush(th, sealWord(0x7f, 7, 7), 7)
		// A sealed malloc for an absurd (corrupt-size) request.
		huge := cfg.Resilience.MaxRequestBytes + 1
		c.mreq.TryPush(th, sealWord(opMalloc|huge<<8, 8, 8), 8)
		drain()
		if nm, _ := nacks(); nm != 3 {
			t.Errorf("malloc-ring nacks = %d, want 3", nm)
		}

		// Free-ring garbage: unmapped address, interior pointer,
		// double free, out-of-range preheat class.
		c.freq.TryPush(th, sealWord(opFree, 0x1234, 9), 0x1234)
		c.freq.TryPush(th, sealWord(opFree, addr+8, 10), addr+8)
		drain()
		c.freq.TryPush(th, sealWord(opFree, addr, 11), addr) // legitimate
		drain()
		c.freq.TryPush(th, sealWord(opFree, addr, 12), addr) // double free
		c.freq.TryPush(th, sealWord(opPreheat|200<<8, 0, 13), 0)
		drain()
		if _, nf := nacks(); nf != 4 {
			t.Errorf("free-ring nacks = %d, want 4", nf)
		}

		// Accounting: every push was popped; every pop was served or NACKed.
		mr, fr := c.mreq.Stats(), c.freq.Stats()
		if mr.Pushes != mr.Pops || fr.Pushes != fr.Pops {
			t.Errorf("requests lost: malloc %d/%d free %d/%d",
				mr.Pops, mr.Pushes, fr.Pops, fr.Pushes)
		}
		rs := a.ResilienceTelemetry()
		if got, want := a.Served()+rs.MallocNacks+rs.FreeNacks, mr.Pops+fr.Pops; got != want {
			t.Errorf("served+nacked = %d, pops = %d", got, want)
		}
		if a.Served() != 2 {
			t.Errorf("Served = %d, want 2 (one malloc, one free)", a.Served())
		}
	})
	m.Run()
}

// TestCorruptionNacksEndToEnd wires the injector's bit-flipper between
// the rings and the server and checks the run survives: corrupt words
// become NACKs and retries, never panics or lost blocks.
func TestCorruptionNacksEndToEnd(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	inj := fault.NewInjector(fault.Plan{Seed: 3, CorruptEveryN: 8})
	inj.Attach(m)
	var a *Allocator
	m.Spawn("worker", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Faults = inj
		cfg.Resilience = DefaultResilience()
		a = New(th, cfg)
		srv.Attach(a)
		// Warm the class first: the initial slab carve dominates the
		// first round trip and would mask the corruption behaviour.
		warm := a.Malloc(th, 128)
		a.Free(th, warm)
		var live []uint64
		for i := 0; i < 300; i++ {
			p := a.Malloc(th, 128)
			if p == 0 {
				t.Error("malloc returned 0 under corruption")
			}
			live = append(live, p)
			if len(live) > 8 {
				a.Free(th, live[0])
				live = live[1:]
			}
		}
		for _, p := range live {
			a.Free(th, p)
		}
		a.Flush(th)
	})
	m.Run()
	rs := a.ResilienceTelemetry()
	if rs.MallocNacks+rs.FreeNacks == 0 {
		t.Errorf("1-in-8 corruption produced no NACKs: %+v", rs)
	}
	if st := inj.Stats(); st.CorruptWords == 0 {
		t.Errorf("injector corrupted nothing: %+v", st)
	}
	mr, fr := a.RingTelemetry()
	if got, want := a.Served()+rs.MallocNacks+rs.FreeNacks, mr.Pops+fr.Pops; got != want {
		t.Errorf("served+nacked = %d, pops = %d", got, want)
	}
}

// --- fuzzing ----------------------------------------------------------------

// FuzzServeWord: the server must survive arbitrary word pairs on both
// rings — no panic, and exactly one outcome (served or NACKed) per
// popped request.
func FuzzServeWord(f *testing.F) {
	f.Add(sealWord(opMalloc|64<<8, 1, 1), uint64(1), sealWord(opFree, 0x1234, 2), uint64(0x1234))
	f.Add(sealWord(opSync, 3, 3), uint64(3), sealWord(opPreheat|2<<8, 0, 4), uint64(0))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0xdead_beef_dead_beef), uint64(0xffff_ffff_ffff_ffff),
		sealWord(opMalloc|64<<8, 5, 5)^1<<40, uint64(5))
	f.Add(sealWord(0x7f, 6, 6), uint64(6), sealWord(opFree, mem.MmapBase+64, 7), uint64(mem.MmapBase+64))
	f.Fuzz(func(t *testing.T, w0a, w1a, w0b, w1b uint64) {
		m := sim.New(sim.ScaledConfig())
		m.Spawn("worker", 0, func(th *sim.Thread) {
			cfg := DefaultConfig()
			cfg.Resilience = DefaultResilience()
			a := New(th, cfg)
			srv := NewServer()
			srv.Attach(a)
			c := a.clientOf(th)
			if !c.mreq.TryPush(th, w0a, w1a) || !c.freq.TryPush(th, w0b, w1b) {
				t.Fatal("push into empty ring failed")
			}
			for srv.Poll(th) {
			}
			mr, fr := c.mreq.Stats(), c.freq.Stats()
			if mr.Pops != 1 || fr.Pops != 1 {
				t.Fatalf("pops = %d/%d, want 1/1", mr.Pops, fr.Pops)
			}
			rs := a.ResilienceTelemetry()
			if got := a.Served() + rs.MallocNacks + rs.FreeNacks; got != 2 {
				t.Fatalf("served+nacked = %d for 2 requests (double or lost completion)", got)
			}
		})
		m.Run()
	})
}
