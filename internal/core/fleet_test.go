package core

import (
	"fmt"
	"reflect"
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/sim"
)

// fleetDaemon spawns n servers on the machine's top cores and returns
// the slot the factory attaches shards through.
func fleetDaemon(n int, srvs *[]*Server) func(m *sim.Machine) {
	return func(m *sim.Machine) {
		*srvs = nil
		for i := 0; i < n; i++ {
			srv := NewServer()
			m.SpawnDaemon(fmt.Sprintf("server-%d", i), m.Cores()-n+i, srv.Run)
			*srvs = append(*srvs, srv)
		}
	}
}

func fleetFactory(cfg Config, servers int, part Partition, srvs *[]*Server) alloctest.Factory {
	return func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
		f := NewFleet(th, cfg, servers, part)
		for i, sh := range f.Shards() {
			(*srvs)[i].Attach(sh)
		}
		return f
	}
}

// TestConformanceFleet: the sharded fleet passes the same conformance
// suite as the single allocator — alignment, integrity under churn,
// cross-thread frees (which must route back to the owning shard), odd
// sizes.
func TestConformanceFleet(t *testing.T) {
	var srvs []*Server
	alloctest.Run(t, alloctest.Options{
		Factory: fleetFactory(DefaultConfig(), 2, ByClient, &srvs),
		Daemon:  fleetDaemon(2, &srvs),
	})
}

func TestConformanceFleetByClass(t *testing.T) {
	var srvs []*Server
	alloctest.Run(t, alloctest.Options{
		Factory: fleetFactory(DefaultConfig(), 2, ByClass, &srvs),
		Daemon:  fleetDaemon(2, &srvs),
	})
}

// TestFleetPartitionsClients: with the client partition, clients land
// on shards round-robin by arrival order, and every shard serves its
// own clients' traffic.
func TestFleetPartitionsClients(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	ready, _ := m.Kernel().Mmap(1)
	var f *Fleet
	const clients, per = 4, 200
	for i := 0; i < clients; i++ {
		part := i
		m.Spawn(fmt.Sprintf("c%d", part), part, func(th *sim.Thread) {
			if part == 0 {
				f = NewFleet(th, DefaultConfig(), 2, ByClient)
				for j, sh := range f.Shards() {
					srvs[j].Attach(sh)
				}
				th.AtomicStore64(ready, 1)
			} else {
				for th.Load64(ready) == 0 {
					th.Pause(100)
				}
			}
			addrs := make([]uint64, per)
			for k := range addrs {
				addrs[k] = f.Malloc(th, 64)
				th.Store64(addrs[k], uint64(part*10000+k))
			}
			for k, p := range addrs {
				if got := th.Load64(p); got != uint64(part*10000+k) {
					t.Errorf("client %d block %d corrupted: %#x", part, k, got)
				}
				f.Free(th, p)
			}
			f.Flush(th)
		})
	}
	m.Run()
	var sum uint64
	for i, sh := range f.Shards() {
		if sh.Served() == 0 {
			t.Errorf("shard %d served nothing (client partition left it idle)", i)
		}
		if got := len(sh.ClientServices()); got != clients/2 {
			t.Errorf("shard %d registered %d clients, want %d", i, got, clients/2)
		}
		sum += sh.Served()
	}
	if sum != f.Served() {
		t.Errorf("shards served %d, fleet says %d", sum, f.Served())
	}
}

// TestFleetByClassRoutesSizes: with the class partition a single client
// spreads its traffic across shards by size class, and frees route
// back to the shard that owns the block.
func TestFleetByClassRoutesSizes(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	var f *Fleet
	m.Spawn("c0", 0, func(th *sim.Thread) {
		f = NewFleet(th, DefaultConfig(), 2, ByClass)
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		var addrs []uint64
		for k := 0; k < 150; k++ {
			for _, size := range []uint64{16, 32, 64, 128, 256} {
				p := f.Malloc(th, size)
				if p == 0 {
					t.Errorf("Malloc(%d) returned 0", size)
				}
				th.Store64(p, size)
				addrs = append(addrs, p)
			}
		}
		for _, p := range addrs {
			f.Free(th, p)
		}
		f.Flush(th)
	})
	m.Run()
	for i, sh := range f.Shards() {
		if sh.Served() == 0 {
			t.Errorf("shard %d served nothing (class partition routed nothing to it)", i)
		}
	}
}

// TestFleetName: the composite name carries the shard count.
func TestFleetName(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(3, &srvs)(m)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		f := NewFleet(th, DefaultConfig(), 3, ByClient)
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		want := f.Shards()[0].Name() + "-x3"
		if f.Name() != want {
			t.Errorf("fleet name %q, want %q", f.Name(), want)
		}
		f.Free(th, f.Malloc(th, 64))
		f.Flush(th)
	})
	m.Run()
}

func TestNewFleetRejectsZeroServers(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("c0", 0, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("NewFleet accepted zero servers")
			}
		}()
		NewFleet(th, DefaultConfig(), 0, ByClient)
	})
	m.Run()
}

// TestNegativeBatchNormalized: a negative coalescing width means the
// unbatched transport, not a silent pass through the Batch > 1 checks.
func TestNegativeBatchNormalized(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Batch = -3
		a := New(th, cfg)
		srv.Attach(a)
		if a.cfg.Batch != 0 {
			t.Errorf("Batch -3 normalized to %d, want 0", a.cfg.Batch)
		}
		a.Free(th, a.Malloc(th, 64))
		a.Flush(th)
	})
	m.Run()
}

// TestBatchClampedToLine: widths past one cache line of slots clamp.
func TestBatchClampedToLine(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Batch = 99
		a := New(th, cfg)
		srv.Attach(a)
		if a.cfg.Batch != maxBatch {
			t.Errorf("Batch 99 clamped to %d, want %d", a.cfg.Batch, maxBatch)
		}
		a.Free(th, a.Malloc(th, 64))
		a.Flush(th)
	})
	m.Run()
}

// The Add-coverage walkers mirror internal/harness's: fill every uint64
// leaf with a distinct value, Add, and verify leaf-by-leaf that the sum
// landed. A counter added to FailoverStats without a matching line in
// Add fails here by construction.

func failoverWalkFill(v reflect.Value, next *uint64, mul uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next * mul)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			failoverWalkFill(v.Field(i), next, mul)
		}
	default:
		panic("failoverWalkFill: unhandled kind " + v.Kind().String())
	}
}

func failoverWalkCheck(t *testing.T, path string, a, b, sum reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Uint64:
		if sum.Uint() != a.Uint()+b.Uint() {
			t.Errorf("%s: Add dropped the field (%d + %d gave %d)", path, a.Uint(), b.Uint(), sum.Uint())
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			failoverWalkCheck(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i), sum.Field(i))
		}
	default:
		t.Fatalf("%s: unhandled kind %s", path, a.Kind())
	}
}

func TestFailoverStatsAddCoversEveryField(t *testing.T) {
	var a, b FailoverStats
	n := uint64(0)
	failoverWalkFill(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	failoverWalkFill(reflect.ValueOf(&b).Elem(), &n, 1000)
	sum := a
	sum.Add(b)
	failoverWalkCheck(t, "FailoverStats",
		reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum))
}

// failoverConfig is the degradation policy for the core-level failover
// tests. The timeout must outlive a first-touch malloc (the server
// carves the class's initial slab, ~90k busy cycles at the scaled
// geometry) so only a genuine stall — not a cold shard — trips the
// ladder; the full ladder is ~200k cycles, which the test's stall
// comfortably outlives.
func failoverConfig() Config {
	cfg := DefaultConfig()
	cfg.Resilience = Resilience{
		Enabled:         true,
		TimeoutCycles:   100000,
		MaxRetries:      1,
		BackoffCycles:   500,
		FallbackAfter:   1,
		ProbeCycles:     30000,
		FailoverAfter:   1,
		MaxRequestBytes: 1 << 24,
	}
	return cfg
}

// TestFleetFailoverReHomesAndRejoins: a one-shot stall on the client's
// home shard must re-home its mallocs to the healthy shard (no
// emergency-tier fallback), and the probe must bring it back home after
// the stall ends. Blocks served by either shard free back to their
// owner, and every block stays intact across the transitions.
func TestFleetFailoverReHomesAndRejoins(t *testing.T) {
	// The stall opens after the first-touch slab carves have settled and
	// outlives the whole retry ladder, so the home shard is marked down
	// exactly once and every malloc during the outage lands on the
	// healthy shard.
	const stallStart, stallLen = 250000, 400000
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	inj := fault.NewShardInjector(fault.Plan{Seed: 1, StallStart: stallStart, StallCycles: stallLen, Shard: 1}, 0)
	inj.Attach(m)
	var f *Fleet
	m.Spawn("c0", 0, func(th *sim.Thread) {
		f = NewFleet(th, failoverConfig(), 2, ByClient)
		f.SetShardFaults([]*fault.Injector{inj})
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		if !f.FailoverArmed() {
			t.Error("FailoverArmed() = false with FailoverAfter 1 on 2 shards")
		}
		type block struct{ addr, want uint64 }
		var live []block
		// Malloc through the stall window and well past the first probe
		// after recovery; each block carries a distinct pattern.
		for i := 0; th.Clock() < stallStart+stallLen+10*30000; i++ {
			addr := f.Malloc(th, 64)
			if addr == 0 {
				t.Fatalf("Malloc %d returned 0", i)
			}
			want := uint64(0xf0f0<<16) + uint64(i)
			th.Store64(addr, want)
			live = append(live, block{addr, want})
			th.Pause(2000)
		}
		for i, b := range live {
			if got := th.Load64(b.addr); got != b.want {
				t.Errorf("block %d corrupted across failover: got %#x want %#x", i, got, b.want)
			}
			f.Free(th, b.addr)
		}
		f.Flush(th)
	})
	m.Run()

	clients, events, totals, armed := f.FailoverTelemetry()
	if !armed {
		t.Fatal("telemetry says failover never armed")
	}
	if len(clients) != 1 {
		t.Fatalf("%d client ledgers, want 1", len(clients))
	}
	c := clients[0]
	if c.HomeShard != 0 {
		t.Fatalf("client homed on shard %d, want 0", c.HomeShard)
	}
	if c.Downs == 0 || c.ForwardedMallocs == 0 {
		t.Errorf("stall on the home shard did not re-home: downs %d, forwarded %d", c.Downs, c.ForwardedMallocs)
	}
	if c.Rejoins == 0 || c.ActiveShard != 0 {
		t.Errorf("client did not rejoin its recovered home: rejoins %d, active shard %d", c.Rejoins, c.ActiveShard)
	}
	if totals.Downs != c.Downs || totals.Rejoins != c.Rejoins || totals.ForwardedMallocs != c.ForwardedMallocs {
		t.Errorf("totals %+v disagree with the single ledger %+v", totals, c)
	}
	if got := uint64(len(events)) + totals.DroppedEvents; got != totals.Downs+totals.Rejoins {
		t.Errorf("%d events logged (+%d dropped) for %d transitions", len(events), totals.DroppedEvents, totals.Downs+totals.Rejoins)
	}
	var lastCycle uint64
	for i, ev := range events {
		if ev.From == ev.To {
			t.Errorf("event %d is a self-transition: %+v", i, ev)
		}
		if ev.Cycle < lastCycle {
			t.Errorf("event %d out of order: cycle %d after %d", i, ev.Cycle, lastCycle)
		}
		lastCycle = ev.Cycle
	}
	if rs := f.ResilienceTelemetry(); rs.EmergencyMallocs != 0 {
		t.Errorf("%d mallocs fell to the emergency tier with a healthy shard available", rs.EmergencyMallocs)
	}
	for i, sh := range f.Shards() {
		if sh.Served() == 0 {
			t.Errorf("shard %d served nothing across the failover", i)
		}
	}
}

// TestFleetFailoverDisarmedRecordsNothing: without FailoverAfter the
// fleet must behave exactly like the seed router — no ledgers, no
// events, telemetry reporting unarmed — even under the same stall.
func TestFleetFailoverDisarmedRecordsNothing(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	var f *Fleet
	m.Spawn("c0", 0, func(th *sim.Thread) {
		cfg := failoverConfig()
		cfg.Resilience.FailoverAfter = 0
		f = NewFleet(th, cfg, 2, ByClient)
		f.SetShardFaults([]*fault.Injector{
			fault.NewShardInjector(fault.Plan{Seed: 1, StallStart: 20000, StallCycles: 30000, Shard: 1}, 0),
		})
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		if f.FailoverArmed() {
			t.Error("FailoverArmed() = true with FailoverAfter 0")
		}
		var addrs []uint64
		for i := 0; i < 60; i++ {
			addrs = append(addrs, f.Malloc(th, 64))
			th.Pause(1000)
		}
		for _, p := range addrs {
			f.Free(th, p)
		}
		f.Flush(th)
	})
	m.Run()
	clients, events, totals, armed := f.FailoverTelemetry()
	if armed || clients != nil || events != nil || totals != (FailoverStats{}) {
		t.Errorf("disarmed fleet recorded failover telemetry: armed %v, %d clients, %d events, %+v",
			armed, len(clients), len(events), totals)
	}
}

// FuzzFleetServeWord extends FuzzServeWord to the sharded topology:
// every shard of a 2-server fleet must survive arbitrary word pairs on
// its rings — no panic, exactly one outcome (served or NACKed) per
// popped request, and a malformed word on one shard never perturbs the
// other shard's ledger.
func FuzzFleetServeWord(f *testing.F) {
	f.Add(sealWord(opMalloc|64<<8, 1, 1), uint64(1), sealWord(opFree, 0x1234, 2), uint64(0x1234))
	f.Add(uint64(0), uint64(0), uint64(0xdead_beef_dead_beef), uint64(0xffff_ffff_ffff_ffff))
	f.Add(sealWord(opSync, 3, 3), uint64(3), sealWord(0x7f, 6, 6), uint64(6))
	f.Add(sealWord(opMalloc|64<<8, 5, 5)^1<<40, uint64(5), sealWord(opPreheat|2<<8, 0, 4), uint64(0))
	f.Fuzz(func(t *testing.T, w0a, w1a, w0b, w1b uint64) {
		m := sim.New(sim.ScaledConfig())
		m.Spawn("worker", 0, func(th *sim.Thread) {
			cfg := DefaultConfig()
			cfg.Resilience = DefaultResilience()
			fl := NewFleet(th, cfg, 2, ByClient)
			var srvs []*Server
			for _, sh := range fl.Shards() {
				srv := NewServer()
				srv.Attach(sh)
				srvs = append(srvs, srv)
			}
			// One fuzzed pair per shard: shard 0 takes the pair on its
			// malloc ring, shard 1 on its free ring.
			c0 := fl.Shards()[0].clientOf(th)
			c1 := fl.Shards()[1].clientOf(th)
			if !c0.mreq.TryPush(th, w0a, w1a) || !c1.freq.TryPush(th, w0b, w1b) {
				t.Fatal("push into empty ring failed")
			}
			for again := true; again; {
				again = false
				for _, srv := range srvs {
					if srv.Poll(th) {
						again = true
					}
				}
			}
			for i, sh := range fl.Shards() {
				c := sh.clientOf(th)
				mr, fr := c.mreq.Stats(), c.freq.Stats()
				if mr.Pops+fr.Pops != 1 {
					t.Fatalf("shard %d pops = %d/%d, want one total", i, mr.Pops, fr.Pops)
				}
				rs := sh.ResilienceTelemetry()
				if got := sh.Served() + rs.MallocNacks + rs.FreeNacks; got != 1 {
					t.Fatalf("shard %d served+nacked = %d for 1 request (double or lost completion)", i, got)
				}
			}
		})
		m.Run()
	})
}
