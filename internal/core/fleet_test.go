package core

import (
	"fmt"
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

// fleetDaemon spawns n servers on the machine's top cores and returns
// the slot the factory attaches shards through.
func fleetDaemon(n int, srvs *[]*Server) func(m *sim.Machine) {
	return func(m *sim.Machine) {
		*srvs = nil
		for i := 0; i < n; i++ {
			srv := NewServer()
			m.SpawnDaemon(fmt.Sprintf("server-%d", i), m.Cores()-n+i, srv.Run)
			*srvs = append(*srvs, srv)
		}
	}
}

func fleetFactory(cfg Config, servers int, part Partition, srvs *[]*Server) alloctest.Factory {
	return func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
		f := NewFleet(th, cfg, servers, part)
		for i, sh := range f.Shards() {
			(*srvs)[i].Attach(sh)
		}
		return f
	}
}

// TestConformanceFleet: the sharded fleet passes the same conformance
// suite as the single allocator — alignment, integrity under churn,
// cross-thread frees (which must route back to the owning shard), odd
// sizes.
func TestConformanceFleet(t *testing.T) {
	var srvs []*Server
	alloctest.Run(t, alloctest.Options{
		Factory: fleetFactory(DefaultConfig(), 2, ByClient, &srvs),
		Daemon:  fleetDaemon(2, &srvs),
	})
}

func TestConformanceFleetByClass(t *testing.T) {
	var srvs []*Server
	alloctest.Run(t, alloctest.Options{
		Factory: fleetFactory(DefaultConfig(), 2, ByClass, &srvs),
		Daemon:  fleetDaemon(2, &srvs),
	})
}

// TestFleetPartitionsClients: with the client partition, clients land
// on shards round-robin by arrival order, and every shard serves its
// own clients' traffic.
func TestFleetPartitionsClients(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	ready, _ := m.Kernel().Mmap(1)
	var f *Fleet
	const clients, per = 4, 200
	for i := 0; i < clients; i++ {
		part := i
		m.Spawn(fmt.Sprintf("c%d", part), part, func(th *sim.Thread) {
			if part == 0 {
				f = NewFleet(th, DefaultConfig(), 2, ByClient)
				for j, sh := range f.Shards() {
					srvs[j].Attach(sh)
				}
				th.AtomicStore64(ready, 1)
			} else {
				for th.Load64(ready) == 0 {
					th.Pause(100)
				}
			}
			addrs := make([]uint64, per)
			for k := range addrs {
				addrs[k] = f.Malloc(th, 64)
				th.Store64(addrs[k], uint64(part*10000+k))
			}
			for k, p := range addrs {
				if got := th.Load64(p); got != uint64(part*10000+k) {
					t.Errorf("client %d block %d corrupted: %#x", part, k, got)
				}
				f.Free(th, p)
			}
			f.Flush(th)
		})
	}
	m.Run()
	var sum uint64
	for i, sh := range f.Shards() {
		if sh.Served() == 0 {
			t.Errorf("shard %d served nothing (client partition left it idle)", i)
		}
		if got := len(sh.ClientServices()); got != clients/2 {
			t.Errorf("shard %d registered %d clients, want %d", i, got, clients/2)
		}
		sum += sh.Served()
	}
	if sum != f.Served() {
		t.Errorf("shards served %d, fleet says %d", sum, f.Served())
	}
}

// TestFleetByClassRoutesSizes: with the class partition a single client
// spreads its traffic across shards by size class, and frees route
// back to the shard that owns the block.
func TestFleetByClassRoutesSizes(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(2, &srvs)(m)
	var f *Fleet
	m.Spawn("c0", 0, func(th *sim.Thread) {
		f = NewFleet(th, DefaultConfig(), 2, ByClass)
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		var addrs []uint64
		for k := 0; k < 150; k++ {
			for _, size := range []uint64{16, 32, 64, 128, 256} {
				p := f.Malloc(th, size)
				if p == 0 {
					t.Errorf("Malloc(%d) returned 0", size)
				}
				th.Store64(p, size)
				addrs = append(addrs, p)
			}
		}
		for _, p := range addrs {
			f.Free(th, p)
		}
		f.Flush(th)
	})
	m.Run()
	for i, sh := range f.Shards() {
		if sh.Served() == 0 {
			t.Errorf("shard %d served nothing (class partition routed nothing to it)", i)
		}
	}
}

// TestFleetName: the composite name carries the shard count.
func TestFleetName(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srvs []*Server
	fleetDaemon(3, &srvs)(m)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		f := NewFleet(th, DefaultConfig(), 3, ByClient)
		for j, sh := range f.Shards() {
			srvs[j].Attach(sh)
		}
		want := f.Shards()[0].Name() + "-x3"
		if f.Name() != want {
			t.Errorf("fleet name %q, want %q", f.Name(), want)
		}
		f.Free(th, f.Malloc(th, 64))
		f.Flush(th)
	})
	m.Run()
}

func TestNewFleetRejectsZeroServers(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("c0", 0, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("NewFleet accepted zero servers")
			}
		}()
		NewFleet(th, DefaultConfig(), 0, ByClient)
	})
	m.Run()
}

// TestNegativeBatchNormalized: a negative coalescing width means the
// unbatched transport, not a silent pass through the Batch > 1 checks.
func TestNegativeBatchNormalized(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Batch = -3
		a := New(th, cfg)
		srv.Attach(a)
		if a.cfg.Batch != 0 {
			t.Errorf("Batch -3 normalized to %d, want 0", a.cfg.Batch)
		}
		a.Free(th, a.Malloc(th, 64))
		a.Flush(th)
	})
	m.Run()
}

// TestBatchClampedToLine: widths past one cache line of slots clamp.
func TestBatchClampedToLine(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	srv := NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("c0", 0, func(th *sim.Thread) {
		cfg := DefaultConfig()
		cfg.Batch = 99
		a := New(th, cfg)
		srv.Attach(a)
		if a.cfg.Batch != maxBatch {
			t.Errorf("Batch 99 clamped to %d, want %d", a.cfg.Batch, maxBatch)
		}
		a.Free(th, a.Malloc(th, 64))
		a.Flush(th)
	})
	m.Run()
}
