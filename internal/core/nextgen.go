// Package core implements NextGen-Malloc, the paper's contribution: a
// user-level memory allocator whose metadata is fully decoupled from
// user data (segregated layout, §3.1.2) so that allocation can be
// offloaded to a dedicated core (§3.1), eliminating allocator-induced
// cache/TLB pollution on application cores and removing all atomic
// operations from the metadata path (§3.1.3, "Strategy 2").
//
// Two execution modes share one slab engine:
//
//   - Inline: malloc/free run on the calling core under a lock, exactly
//     like a conventional UMA (the ablation baseline).
//   - Offload: a server daemon pinned to its own core polls per-client
//     SPSC rings in shared memory. Malloc is a synchronous request
//     (the client spins on a response line, as in the paper's §4.2
//     prototype with its two flag variables); free is asynchronous and
//     costs the client only a ring push (§3.1.2: "the entire free phase
//     is not on the critical path").
//
// The metadata engine keeps per-slab free-block *index stacks* of 16-bit
// indices (the paper's suggested segregated encoding) in a dedicated
// metadata address range (mem.MetaBase), so in offload mode application
// cores never touch a metadata line. The aggregated-layout variant
// (intrusive next-pointers in free blocks, Figure 2 top) and the
// compact variant (mallocng-style bitmask groups, 1 bit of state per
// block) are provided for the layout ablation.
package core

import (
	"fmt"
	"math/bits"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/simsync"
	"nextgenmalloc/internal/timeline"
)

// Layout selects the metadata encoding (paper Figure 2).
type Layout int

const (
	// Segregated keeps 16-bit index stacks in the metadata region; user
	// pages hold no allocator state at all.
	Segregated Layout = iota
	// Aggregated threads an intrusive next-pointer through the free
	// blocks themselves (the Mimalloc-style layout).
	Aggregated
	// Compact carves each slab into groups of up to 32 identical units
	// (the mallocng layout): allocation state is one out-of-band bitmask
	// word per group in the slab record — find-first-set to allocate, a
	// single bit clear to free — plus a 64-byte in-band header line per
	// group holding one offset byte per unit for free validation.
	// Metadata drops from 2 B/block of index stack to 1 bit/block of
	// bitmask plus the fixed headers.
	Compact
)

func (l Layout) String() string {
	switch l {
	case Segregated:
		return "segregated"
	case Aggregated:
		return "aggregated"
	case Compact:
		return "compact"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Valid reports whether l is one of the defined layouts. harness.RunE
// rejects anything else before a simulated thread runs, so a bad layout
// is a topology error, never a silent segregated fallback.
func (l Layout) Valid() bool {
	switch l {
	case Segregated, Aggregated, Compact:
		return true
	}
	return false
}

// ParseLayout maps a CLI spelling to a Layout; "" is the default
// (Segregated).
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "segregated":
		return Segregated, nil
	case "aggregated":
		return Aggregated, nil
	case "compact":
		return Compact, nil
	}
	return 0, fmt.Errorf("unknown layout %q (want segregated, aggregated, or compact)", s)
}

// RecordBytes is the metadata-region stride one slab record reserves
// under this layout. Compact records carry 16 mask words instead of a
// 1 KiB index stack, so many more of them share a metadata page.
func (l Layout) RecordBytes() int {
	if l == Compact {
		return slCompactRecBytes
	}
	return slRecBytes
}

// SlabStateBytes is the out-of-band allocation-state footprint of one
// slab of the given capacity, excluding the fixed record fields every
// layout shares: the 16-bit index stack (segregated), the intrusive
// head word (aggregated), or one bitmask word per 32-unit group
// (compact).
func (l Layout) SlabStateBytes(capacity int) int {
	switch l {
	case Aggregated:
		return 8
	case Compact:
		return 8 * ((capacity + compactGroupUnits - 1) / compactGroupUnits)
	}
	return 2 * capacity
}

// Config selects the NextGen-Malloc variant.
type Config struct {
	// Offload runs the allocator on a dedicated server core.
	Offload bool
	// Layout selects the metadata encoding (default Segregated).
	Layout Layout
	// Prealloc, when > 0, has the server hand each malloc response up to
	// this many extra blocks of the same class for the client to consume
	// locally (predictive preallocation, §3.3.2 / the MMT discussion).
	Prealloc int
	// AsyncFree releases the client as soon as a free request is queued
	// (default true in offload mode; the paper argues free is off the
	// critical path).
	AsyncFree bool
	// RingSlots is the per-client request ring capacity (power of two).
	RingSlots int
	// Batch, when > 1, coalesces up to Batch asynchronous frees per ring
	// publication (§3.3 batched requests): slots are staged as they are
	// written and the tail is published when a slot line fills or at the
	// next malloc/flush boundary. Capped at the slots-per-cache-line
	// limit (sim.LineSize / ring.SlotSize = 4). 0 or 1 keeps the
	// one-publication-per-free transport.
	Batch int
	// AdaptivePrealloc replaces the static Prealloc depth with a
	// feedback-driven one: each class's stash is sized from its rank in
	// the client's recent-allocation list (noteHot), so hot classes get a
	// deep stash and cold classes none.
	AdaptivePrealloc bool
	// IdleBackoff enables doorbell-style exponential backoff of the
	// server's empty-poll pause, so an idle dedicated core stops burning
	// cycles re-scanning empty rings (any served request resets the
	// backoff).
	IdleBackoff bool
	// Sched selects the server's ring-service order (see SchedPolicy).
	// The zero value (FixedScan) is the seed behaviour.
	Sched SchedPolicy
	// Latency, when non-nil, receives one span per offload request:
	// enqueue (ring stage, producer clock), dequeue, and completion
	// (server clock). Host-side observation only — arming it enables
	// ring stamping but issues zero simulated memory traffic, so
	// counters are bit-identical with and without it.
	Latency *timeline.LatencyRecorder
	// Resilience configures graceful degradation of the offload path
	// (timeouts, retries, local fallback) and the server's request
	// validation; see resilience.go. Zero value = disabled = seed
	// protocol.
	Resilience Resilience
	// Faults, when non-nil, is the armed fault injector the server and
	// transport consult (see internal/fault). Stall windows and slow-down
	// apply whenever armed; doorbell drops and word corruption are only
	// injected when Resilience.Enabled, because the seed blocking
	// protocol cannot survive them.
	Faults *fault.Injector
}

// DefaultConfig is the paper's proposal: offloaded, segregated, async
// free, no preallocation (matching the §4.2 prototype).
func DefaultConfig() Config {
	return Config{Offload: true, Layout: Segregated, AsyncFree: true, RingSlots: 64}
}

// Slab metadata record offsets. Records live in the metadata region;
// the index stack (2 bytes per block) follows the fixed fields.
const (
	slNext     = 0
	slPrev     = 8
	slBase     = 16
	slPages    = 24
	slClass    = 32 // 255 = large, 254 = free span
	slTop      = 40 // index-stack depth == free blocks (segregated)
	slCapacity = 48
	slFreeHead = 56 // intrusive head (aggregated layout only)
	slStack    = 64
	slRecBytes = 64 + 2*512 // fixed fields + up to 512 uint16 indices

	classLarge    = 255
	classFreeSpan = 254
)

// Compact layout (mallocng-style). A slab is carved into groups of up
// to compactGroupUnits identical units. The allocation state is fully
// out-of-band: one bitmask word per group in the slab record, bit set =
// unit free. Each group additionally opens with one in-band 64-byte
// header line — an offset byte per unit (compactIdxTag|index, so a
// stale zeroed line never validates) plus the group's ordinal — used
// only to validate frees. The header bytes live inside user pages but
// are allocator state, so freshSlab marks them region.Meta and the
// attribution telemetry bills their misses to metadata.
const (
	slCursor          = 56                           // lowest possibly-nonzero mask word (reuses slFreeHead's slot)
	slMasks           = 64                           // 16 bitmask words, one per group
	compactGroupUnits = 32                           // units per bitmask word
	compactMaxGroups  = 512 / compactGroupUnits      // capacity cap / group size
	slCompactRecBytes = slMasks + compactMaxGroups*8 // 192 B record vs the 1088 B index-stack record

	compactHdrBytes = 64   // in-band group header: 32 offset bytes + ordinal word
	compactHdrIdx   = 32   // group ordinal word inside the header line
	compactIdxTag   = 0xa0 // high bits of every offset byte
)

// compactStride is the byte span of one full group: the in-band header
// line followed by 32 units.
func compactStride(size uint64) uint64 {
	return compactHdrBytes + compactGroupUnits*size
}

// compactCapacity is how many units fit in spanBytes under the compact
// geometry: full groups plus a trailing partial group behind its own
// header.
func compactCapacity(size, spanBytes uint64) int {
	stride := compactStride(size)
	n := int(spanBytes/stride) * compactGroupUnits
	if rem := spanBytes % stride; rem > compactHdrBytes {
		n += int((rem - compactHdrBytes) / size)
	}
	return n
}

// slabGeometry is the span size and unit capacity freshSlab carves for
// class under layout l. Compact needs room for its in-band headers: the
// largest classes fill their span exactly, so the compact span grows
// until at least one unit fits behind a header. The other layouts keep
// the seed geometry bit for bit.
func slabGeometry(l Layout, sc *alloc.SizeClasses, class int) (pages, capacity int) {
	pages = sc.SpanPages(class)
	if l == Compact {
		size := sc.Size(class)
		if p := int((compactHdrBytes + size + mem.PageSize - 1) >> mem.PageShift); p > pages {
			pages = p
		}
		capacity = compactCapacity(size, uint64(pages)<<mem.PageShift)
	} else {
		capacity = sc.ObjectsPerSpan(class, pages)
	}
	if capacity > 512 {
		capacity = 512
	}
	return pages, capacity
}

// MetaFootprint reports the slab capacity and out-of-band
// allocation-state bytes layout l uses for one size class — the inputs
// to report.LayoutTable and the conformance suite's footprint
// assertion.
func MetaFootprint(l Layout, sc *alloc.SizeClasses, class int) (capacity, stateBytes int) {
	_, capacity = slabGeometry(l, sc, class)
	return capacity, l.SlabStateBytes(capacity)
}

// Ring operation codes (slot word 0, low byte).
const (
	opMalloc  = 1
	opFree    = 2
	opSync    = 3
	opPreheat = 4 // stock the stash for a class without allocating
)

// Per-client shared page layout. Malloc requests travel on their own
// small ring so they are never queued behind the asynchronous free
// backlog (head-of-line blocking would put the backlog on the malloc
// critical path). The preallocation stash is a small direct-mapped
// table of per-class cache lines the server restocks while the client
// is still spinning on the response line, so a stash hit costs no round
// trip at all (predictive preallocation, §3.3.2).
const (
	respSeq  = 0 // server publishes the request sequence number here
	respAddr = 8 // malloc result

	stashOff    = 64  // one SPSC slot per size class (no collisions)
	stashSlots  = 64  // covers every class the engine serves
	stashStride = 256 // writeIdx line, readIdx line, 14 address words
	stashWrite  = 0   // server-owned: blocks published so far
	stashRead   = 64  // client-owned: blocks consumed so far
	stashAddrs  = 128 // ring of stashWindow block addresses
	stashWindow = 14

	mallocRingOff   = stashOff + stashSlots*stashStride
	mallocRingSlots = 16
	freeRingOff     = mallocRingOff + 384 // BytesFor(16) rounded to a line
)

// stashSlot returns the per-class stash slot base on a client page.
// Each slot is a tiny SPSC ring: the server publishes preallocated block
// addresses and bumps writeIdx; the client pops and bumps readIdx. The
// two indices live on separate lines, so a stash hit touches no
// server-hot line except the address word itself.
func stashSlot(page uint64, class int) uint64 {
	return page + stashOff + uint64(class)*stashStride
}

// client is the per-application-thread communication state.
type client struct {
	threadID int
	page     uint64             // shared response/stash page
	mreq     *ring.SPSC         // synchronous malloc/sync requests
	freq     *ring.SPSC         // asynchronous frees (+ flush barriers)
	seq      uint64             // host mirror of the next sequence number
	res      *clientResilience  // degradation state (nil when disabled)
	readIdx  [stashSlots]uint64 // client-register mirrors of stash read indices
	// hot tracks the classes this client allocated recently; the server
	// tops up their stashes from its idle cycles.
	hot [8]int // class + 1, most recent first

	// Service-fairness ledger (host-side observation only — reading the
	// server clock issues no simulated traffic, so recording it never
	// perturbs counters): how many requests this client had served, the
	// completion clock of the most recent one, and the widest gap between
	// consecutive completions (the starvation metric the fleet sweep
	// reports).
	servedOps   uint64
	lastServed  uint64
	maxServeGap uint64
}

// noteHot records a served class in the client's recency list.
func (c *client) noteHot(class int) {
	v := class + 1
	for i, h := range c.hot {
		if h == v {
			copy(c.hot[1:i+1], c.hot[:i])
			c.hot[0] = v
			return
		}
	}
	copy(c.hot[1:], c.hot[:len(c.hot)-1])
	c.hot[0] = v
}

// Allocator is NextGen-Malloc.
type Allocator struct {
	cfg   Config
	sc    *alloc.SizeClasses
	stats alloc.Stats

	// Metadata engine state (all in the mem.MetaBase region).
	pagemapRoot uint64
	metaBase    uint64
	metaOff     uint64
	metaLimit   uint64
	freeRecs    []uint64
	classState  uint64           // per-class {cur, avail sentinel} slots
	spanSent    uint64           // free page-span list sentinel
	lock        simsync.SpinLock // inline mode only

	clients   []*client
	byThread  map[int]*client
	served    uint64 // ops processed by the server
	registerL simsync.SpinLock
}

// New builds the allocator; t performs the initial mmaps. In offload
// mode a Server daemon must have been spawned and attached (see Server).
// maxBatch is the deepest useful free-coalescing window: one cache line
// of ring slots (staging past a line boundary would touch a second slot
// line before the tail store amortizes the first).
const maxBatch = int(sim.LineSize / ring.SlotSize)

func New(t *sim.Thread, cfg Config) *Allocator {
	if cfg.RingSlots == 0 {
		cfg.RingSlots = 64
	}
	if cfg.Batch > maxBatch {
		cfg.Batch = maxBatch
	}
	if cfg.Batch < 0 {
		// A negative width is a caller bug; normalize to the unbatched
		// transport instead of letting it slip through the Batch > 1
		// checks as a third, accidental mode.
		cfg.Batch = 0
	}
	if cfg.Resilience.Enabled {
		cfg.Resilience.applyDefaults()
	}
	a := &Allocator{
		cfg:      cfg,
		sc:       alloc.NewSizeClasses(),
		byThread: make(map[int]*client),
	}
	if a.sc.NumClasses() > stashSlots {
		panic("core: stash table smaller than the class count")
	}
	// All metadata lives in the dedicated metadata address range.
	a.pagemapRoot = t.MmapMeta(16)
	state := t.MmapMeta(1)
	a.lock = simsync.NewSpinLock(state)
	a.registerL = simsync.NewSpinLock(state + 8)
	a.spanSent = state + 64
	t.Store64(a.spanSent, a.spanSent)
	t.Store64(a.spanSent+8, a.spanSent)
	classBytes := uint64(a.sc.NumClasses()) * 32
	a.classState = t.MmapMeta(int((classBytes + mem.PageSize - 1) >> mem.PageShift))
	for c := 0; c < a.sc.NumClasses(); c++ {
		s := a.classSlot(c)
		t.Store64(s, 0)     // cur
		t.Store64(s+8, s+8) // avail sentinel next
		t.Store64(s+16, s+8)
	}
	a.growMeta(t)
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string {
	switch {
	case a.cfg.Offload && a.cfg.AdaptivePrealloc:
		return "nextgen-adaptive"
	case a.cfg.Offload && a.cfg.Prealloc > 0:
		return "nextgen-prealloc"
	case a.cfg.Offload && a.cfg.Batch > 1:
		return "nextgen-batch"
	case a.cfg.Offload && a.cfg.Layout == Compact:
		return "nextgen-compact"
	case a.cfg.Offload:
		return "nextgen"
	case a.cfg.Layout == Aggregated:
		return "nextgen-inline-agg"
	case a.cfg.Layout == Compact:
		return "nextgen-inline-compact"
	default:
		return "nextgen-inline"
	}
}

// preallocOn reports whether any preallocation policy (static depth or
// adaptive) is stocking the per-class stashes.
func (a *Allocator) preallocOn() bool {
	return a.cfg.Prealloc > 0 || a.cfg.AdaptivePrealloc
}

// stashDepth is the target stash depth for class on client c. The
// static policy fills every requested class to Config.Prealloc; the
// adaptive policy sizes the stash from the class's rank in the client's
// recency list — 13, 13, 6, 6, 3, 3, 1, 1 blocks for ranks 0..7, zero
// for classes that fell out — so the server's restocking work follows
// the client's measured allocation heat (§3.3.2 feedback loop).
func (a *Allocator) stashDepth(c *client, class int) uint64 {
	if !a.cfg.AdaptivePrealloc {
		d := uint64(a.cfg.Prealloc)
		// The client publishes its read index every other pop, so the
		// server's view can lag by one; keep one window slot of slack.
		if d > stashWindow-1 {
			d = stashWindow - 1
		}
		return d
	}
	v := class + 1
	for rank, h := range c.hot {
		if h == v {
			return uint64(stashWindow-1) >> (uint(rank) / 2)
		}
	}
	return 0
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }

func (a *Allocator) classSlot(class int) uint64 { return a.classState + uint64(class)*32 }

func (a *Allocator) growMeta(t *sim.Thread) {
	a.metaBase = t.MmapMeta(32)
	a.metaOff = 0
	a.metaLimit = 32 << mem.PageShift
}

func (a *Allocator) newRec(t *sim.Thread) uint64 {
	if n := len(a.freeRecs); n > 0 {
		r := a.freeRecs[n-1]
		a.freeRecs = a.freeRecs[:n-1]
		return r
	}
	rb := uint64(a.cfg.Layout.RecordBytes())
	if a.metaOff+rb > a.metaLimit {
		a.growMeta(t)
	}
	r := a.metaBase + a.metaOff
	a.metaOff += rb
	return r
}

// --- pagemap (metadata region) ---------------------------------------------

func (a *Allocator) pagemapSet(t *sim.Thread, vaddr, rec uint64) {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leafSlot := a.pagemapRoot + (rel>>9)*8
	leaf := t.Load64(leafSlot)
	if leaf == 0 {
		leaf = t.MmapMeta(1)
		t.Store64(leafSlot, leaf)
	}
	t.Store64(leaf+(rel&511)*8, rec)
}

func (a *Allocator) pagemapGet(t *sim.Thread, vaddr uint64) uint64 {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leaf := t.Load64(a.pagemapRoot + (rel>>9)*8)
	if leaf == 0 {
		return 0
	}
	return t.Load64(leaf + (rel&511)*8)
}

func (a *Allocator) registerRec(t *sim.Thread, rec uint64) {
	base := t.Load64(rec + slBase)
	pages := t.Load64(rec + slPages)
	for i := uint64(0); i < pages; i++ {
		a.pagemapSet(t, base+i<<mem.PageShift, rec)
	}
}

// --- list helpers (next/prev at 0/8) ----------------------------------------

func listInsert(t *sim.Thread, sentinel, rec uint64) {
	next := t.Load64(sentinel)
	t.Store64(rec+slNext, next)
	t.Store64(rec+slPrev, sentinel)
	t.Store64(sentinel, rec)
	t.Store64(next+slPrev, rec)
}

func listRemove(t *sim.Thread, rec uint64) {
	next := t.Load64(rec + slNext)
	prev := t.Load64(rec + slPrev)
	t.Store64(prev+slNext, next)
	t.Store64(next+slPrev, prev)
}

// --- page-span allocator (plain loads/stores; the engine is single-
// threaded in offload mode, locked in inline mode) ---------------------------

const spanGrowPages = 512 // 2 MiB hugepage-backed span pool

func (a *Allocator) spanAlloc(t *sim.Thread, npages int) uint64 {
	for {
		for rec := t.Load64(a.spanSent); rec != a.spanSent; rec = t.Load64(rec + slNext) {
			t.Exec(2)
			have := int(t.Load64(rec + slPages))
			if have < npages {
				continue
			}
			listRemove(t, rec)
			if have > npages {
				rem := a.newRec(t)
				base := t.Load64(rec + slBase)
				t.Store64(rem+slBase, base+uint64(npages)<<mem.PageShift)
				t.Store64(rem+slPages, uint64(have-npages))
				t.Store64(rem+slClass, classFreeSpan)
				listInsert(t, a.spanSent, rem)
				t.Store64(rec+slPages, uint64(npages))
			}
			a.registerRec(t, rec)
			return rec
		}
		g := spanGrowPages
		if npages > g {
			g = (npages + spanGrowPages - 1) &^ (spanGrowPages - 1)
		}
		base := t.MmapHuge(g)
		a.stats.HeapBytes += uint64(g) << mem.PageShift
		rec := a.newRec(t)
		t.Store64(rec+slBase, base)
		t.Store64(rec+slPages, uint64(g))
		t.Store64(rec+slClass, classFreeSpan)
		listInsert(t, a.spanSent, rec)
	}
}

func (a *Allocator) spanFree(t *sim.Thread, rec uint64) {
	t.Store64(rec+slClass, classFreeSpan)
	listInsert(t, a.spanSent, rec)
}

// --- slab engine -------------------------------------------------------------

// freshSlab carves a slab for class. With the segregated layout the free
// state is an index stack in the metadata record and user pages stay
// untouched; with the aggregated layout an intrusive list is threaded
// through the blocks; with the compact layout the free state is one
// bitmask word per 32-unit group in the record plus an in-band header
// line per group.
func (a *Allocator) freshSlab(t *sim.Thread, class int) uint64 {
	pages, n := slabGeometry(a.cfg.Layout, a.sc, class)
	rec := a.spanAlloc(t, pages)
	t.Store64(rec+slClass, uint64(class))
	t.Store64(rec+slCapacity, uint64(n))
	switch a.cfg.Layout {
	case Segregated:
		// Stack of free indices, 4 per word.
		for i := 0; i < n; i += 4 {
			var w uint64
			for j := 0; j < 4 && i+j < n; j++ {
				w |= uint64(i+j) << (16 * j)
			}
			t.Store64(rec+slStack+uint64(i)*2, w)
		}
		t.Store64(rec+slTop, uint64(n))
	case Compact:
		base := t.Load64(rec + slBase)
		size := a.sc.Size(class)
		stride := compactStride(size)
		for g := 0; g*compactGroupUnits < n; g++ {
			units := n - g*compactGroupUnits
			if units > compactGroupUnits {
				units = compactGroupUnits
			}
			// Out-of-band allocation state: low `units` bits set = free.
			t.Store64(rec+slMasks+uint64(g)*8, uint64(1)<<units-1)
			// In-band group header: offset bytes packed eight per word,
			// then the group ordinal. The bytes live in a user page but
			// belong to the allocator, so the line is attributed Meta.
			hdr := base + uint64(g)*stride
			for i := 0; i < units; i += 8 {
				var w uint64
				for j := 0; j < 8 && i+j < units; j++ {
					w |= uint64(compactIdxTag|(i+j)) << (8 * j)
				}
				t.Store64(hdr+uint64(i), w)
			}
			t.Store64(hdr+compactHdrIdx, uint64(g))
			t.MarkRegion(hdr, compactHdrBytes, region.Meta)
		}
		t.Store64(rec+slCursor, 0) // records are recycled; reset the scan hint
		t.Store64(rec+slTop, uint64(n))
	default: // Aggregated
		base := t.Load64(rec + slBase)
		size := a.sc.Size(class)
		var head uint64
		for i := n - 1; i >= 0; i-- {
			blk := base + uint64(i)*size
			t.Store64(blk, head)
			t.MarkRegion(blk, 16, region.Meta) // intrusive link granule
			head = blk
		}
		t.Store64(rec+slFreeHead, head)
		t.Store64(rec+slTop, uint64(n))
	}
	return rec
}

// slabPop removes one free block, returning 0 when the slab is empty.
func (a *Allocator) slabPop(t *sim.Thread, rec uint64, class int) uint64 {
	top := t.Load64(rec + slTop)
	if top == 0 {
		return 0
	}
	t.Store64(rec+slTop, top-1)
	switch a.cfg.Layout {
	case Segregated:
		t.Exec(2)
		idx := t.Load16(rec + slStack + (top-1)*2)
		return t.Load64(rec+slBase) + idx*a.sc.Size(class)
	case Compact:
		// Find-first-set over the mask words, scanning from the cursor
		// (the lowest possibly-nonzero group); top > 0 guarantees a hit.
		g := t.Load64(rec + slCursor)
		start := g
		w := t.Load64(rec + slMasks + g*8)
		for w == 0 {
			t.Exec(1)
			g++
			w = t.Load64(rec + slMasks + g*8)
		}
		t.Exec(2) // tzcnt + single-bit clear
		i := uint64(bits.TrailingZeros64(w))
		t.Store64(rec+slMasks+g*8, w&(w-1))
		if g != start {
			t.Store64(rec+slCursor, g)
		}
		size := a.sc.Size(class)
		return t.Load64(rec+slBase) + g*compactStride(size) + compactHdrBytes + i*size
	}
	head := t.Load64(rec + slFreeHead)
	t.Store64(rec+slFreeHead, t.Load64(head)) // intrusive: touches the block
	t.MarkRegion(head, int(a.sc.Size(class)), region.User)
	return head
}

// slabPush returns a block; reports the slab's new free count.
func (a *Allocator) slabPush(t *sim.Thread, rec uint64, class int, addr uint64) uint64 {
	top := t.Load64(rec + slTop)
	switch a.cfg.Layout {
	case Segregated:
		t.Exec(3) // index arithmetic
		idx := (addr - t.Load64(rec+slBase)) / a.sc.Size(class)
		t.Store16(rec+slStack+top*2, idx)
	case Compact:
		size := a.sc.Size(class)
		stride := compactStride(size)
		t.Exec(4) // group/unit decompose
		base := t.Load64(rec + slBase)
		rel := addr - base
		g, off := rel/stride, rel%stride
		if off < compactHdrBytes || (off-compactHdrBytes)%size != 0 {
			panic(fmt.Sprintf("core: compact free of unaligned address %#x (class %d)", addr, class))
		}
		i := (off - compactHdrBytes) / size
		if a.cfg.Resilience.Enabled {
			// Hardened mode reads the in-band offset byte: it must carry
			// tag|index or the address never came from this group.
			if b := t.Load8(base + g*stride + i); b != compactIdxTag|i {
				panic(fmt.Sprintf("core: compact free %#x: offset byte %#x, want %#x", addr, b, compactIdxTag|i))
			}
		}
		mslot := rec + slMasks + g*8
		w := t.Load64(mslot)
		if w&(uint64(1)<<i) != 0 {
			panic(fmt.Sprintf("core: compact double free of %#x", addr))
		}
		t.Store64(mslot, w|uint64(1)<<i)
		if g < t.Load64(rec+slCursor) {
			t.Store64(rec+slCursor, g)
		}
	default: // Aggregated
		t.Store64(addr, t.Load64(rec+slFreeHead))
		t.MarkRegion(addr, 16, region.Meta) // link word overwrites user data
		t.Store64(rec+slFreeHead, addr)
	}
	t.Store64(rec+slTop, top+1)
	return top + 1
}

// allocClass is the engine's malloc for a size class. No atomics: in
// offload mode only the server core runs it; in inline mode the caller
// holds the lock.
func (a *Allocator) allocClass(t *sim.Thread, class int) uint64 {
	slot := a.classSlot(class)
	rec := t.Load64(slot)
	if rec != 0 {
		if blk := a.slabPop(t, rec, class); blk != 0 {
			return blk
		}
		t.Store64(slot, 0) // current slab exhausted
	}
	// Next nonempty slab from the avail list, else a fresh slab.
	avail := slot + 8
	rec = t.Load64(avail)
	if rec != avail {
		listRemove(t, rec)
	} else {
		rec = a.freshSlab(t, class)
	}
	t.Store64(slot, rec)
	return a.slabPop(t, rec, class)
}

// freeClass is the engine's free once the slab record is known.
func (a *Allocator) freeClass(t *sim.Thread, rec uint64, class int, addr uint64) {
	nfree := a.slabPush(t, rec, class, addr)
	slot := a.classSlot(class)
	cur := t.Load64(slot)
	if rec == cur {
		return
	}
	capacity := t.Load64(rec + slCapacity)
	switch nfree {
	case 1:
		// Was full and unlisted: give it back to the avail list.
		listInsert(t, slot+8, rec)
	case capacity:
		// Fully free and not current: retire the pages.
		listRemove(t, rec)
		a.spanFree(t, rec)
	}
}

// engineMalloc / engineFree are the inline entry points around the
// engine (lock in inline mode, bare in server context).
func (a *Allocator) engineMalloc(t *sim.Thread, size uint64) uint64 {
	class, ok := a.sc.ClassFor(size)
	if !ok {
		pages := int((size + mem.PageSize - 1) >> mem.PageShift)
		rec := a.spanAlloc(t, pages)
		t.Store64(rec+slClass, classLarge)
		return t.Load64(rec + slBase)
	}
	return a.allocClass(t, class)
}

func (a *Allocator) engineFree(t *sim.Thread, addr uint64) {
	rec := a.pagemapGet(t, addr)
	classWord := t.Load64(rec + slClass)
	if classWord == classLarge {
		a.spanFree(t, rec)
		return
	}
	a.freeClass(t, rec, int(classWord), addr)
}

// --- public API ----------------------------------------------------------------

// noteMalloc records one malloc in the host-side ledger: the call count
// and the class-rounded (or page-rounded) live-byte increment. Malloc
// charges it up front; the fleet's fallible path charges it only on the
// shard that actually served the request.
func (a *Allocator) noteMalloc(size uint64) {
	a.stats.MallocCalls++
	if class, ok := a.sc.ClassFor(size); ok {
		a.stats.LiveBytes += a.sc.Size(class)
	} else {
		a.stats.LiveBytes += (size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	}
}

// stashPop consumes a locally stashed block for size's class when the
// server stocked one — the no-round-trip fast path (predictive
// preallocation, §3.3.2), shared by Malloc and the fleet failover path.
func (a *Allocator) stashPop(t *sim.Thread, c *client, size uint64) (uint64, bool) {
	if !a.preallocOn() {
		return 0, false
	}
	class, ok := a.sc.ClassFor(size)
	if !ok {
		return 0, false
	}
	slot := stashSlot(c.page, class)
	r := c.readIdx[class]
	if t.AtomicLoad64(slot+stashWrite) == r {
		return 0, false
	}
	addr := t.Load64(slot + stashAddrs + (r%stashWindow)*8)
	c.readIdx[class] = r + 1
	// Publish the read index lazily (every other pop): the server only
	// needs a bounded-staleness view, and the store upgrades a line the
	// server polls.
	if (r+1)%2 == 0 {
		t.Store64(slot+stashRead, r+1)
	}
	return addr, true
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.noteMalloc(size)
	t.Exec(4)
	if !a.cfg.Offload {
		a.lock.Lock(t)
		p := a.engineMalloc(t, size)
		a.lock.Unlock(t)
		return p
	}
	c := a.clientOf(t)
	// Malloc boundary: publish any coalesced frees first, so the free
	// backlog's staleness is bounded by one malloc (no-op when nothing
	// is staged).
	if a.cfg.Batch > 1 {
		c.freq.Publish(t)
	}
	if addr, ok := a.stashPop(t, c, size); ok {
		return addr
	}
	if a.cfg.Resilience.Enabled {
		return a.resilientMalloc(t, c, size)
	}
	// Synchronous request: push and spin on the response line (the two
	// flag variables of the paper's prototype collapse onto seq).
	c.seq++
	c.mreq.Push(t, opMalloc|size<<8, c.seq)
	a.awaitSeq(t, c)
	return t.Load64(c.page + respAddr)
}

// awaitSeq spins on the response line until the server publishes c.seq.
// The wait is declared to the scheduler's time warp: a steady round is
// one response-word load plus the inter-poll pause, so long waits are
// skipped in bulk with bit-identical counters.
func (a *Allocator) awaitSeq(t *sim.Thread, c *client) {
	addrs := [1]uint64{c.page + respSeq}
	t.WarpLoop(sim.WaitSpec{
		Round: func() bool {
			if t.AtomicLoad64(c.page+respSeq) == c.seq {
				return true
			}
			t.Pause(4)
			return false
		},
		Addrs: func() []uint64 { return addrs[:] },
	})
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(2)
	// Live-byte accounting is host-side bookkeeping (the engine knows the
	// class only after its metadata lookup).
	if !a.cfg.Offload {
		a.lock.Lock(t)
		a.engineFreeCounted(t, addr)
		a.lock.Unlock(t)
		return
	}
	c := a.clientOf(t)
	if a.cfg.Resilience.Enabled {
		a.resilientFree(t, c, addr)
		return
	}
	c.seq++
	if a.cfg.Batch > 1 && a.cfg.AsyncFree {
		// Free coalescing: stage the request now (slot stores on a line
		// the producer already owns) and defer the tail publication until
		// the slot line fills; Malloc/Flush publish any partial batch.
		c.freq.Stage(t, opFree, addr)
		if c.freq.Staged() >= a.cfg.Batch {
			c.freq.Publish(t)
		}
		return
	}
	c.freq.Push(t, opFree, addr)
	if !a.cfg.AsyncFree {
		// Synchronous-free mode: chase the free with a sync barrier so
		// the client observes completion (the ring is FIFO per client).
		c.seq++
		c.freq.Push(t, opSync, c.seq)
		a.awaitSeq(t, c)
	}
}

func (a *Allocator) engineFreeCounted(t *sim.Thread, addr uint64) {
	rec := a.pagemapGet(t, addr)
	classWord := t.Load64(rec + slClass)
	if classWord == classLarge {
		a.stats.LiveBytes -= t.Load64(rec+slPages) << mem.PageShift
		a.spanFree(t, rec)
		return
	}
	class := int(classWord)
	a.stats.LiveBytes -= a.sc.Size(class)
	a.freeClass(t, rec, class, addr)
}

// Preheat warms the allocator for the given request sizes before the
// workload starts issuing them — the paper's §3.3.2 FaaS cold-start
// remedy ("NextGen-Malloc can be extended to monitor inter-process
// memory heap similarities in FaaS systems"): a new function instance's
// allocation profile is known from previous instances, so the dedicated
// core stocks the matching classes ahead of the first request. In
// offload mode the requests are queued asynchronously and drained with
// a flush barrier; inline mode pre-carves the slabs directly.
func (a *Allocator) Preheat(t *sim.Thread, sizes []uint64) {
	seen := map[int]bool{}
	for _, size := range sizes {
		class, ok := a.sc.ClassFor(size)
		if !ok || seen[class] {
			continue
		}
		seen[class] = true
		if !a.cfg.Offload {
			a.lock.Lock(t)
			blk := a.allocClass(t, class)
			a.freeClass(t, a.pagemapGet(t, blk), class, blk)
			a.lock.Unlock(t)
			continue
		}
		c := a.clientOf(t)
		if a.cfg.Resilience.Enabled {
			a.resilientPreheat(t, c, class)
			continue
		}
		c.seq++
		c.freq.Push(t, opPreheat|uint64(class)<<8, 0)
	}
	if a.cfg.Offload {
		a.Flush(t)
	}
}

// Flush implements alloc.Flusher: it drains this thread's queued
// asynchronous frees (a sync barrier through the ring). Staged
// coalesced frees are published together with the barrier slot — Push
// publishes the whole staged backlog in one tail store, so the barrier
// keeps its FIFO position behind them.
func (a *Allocator) Flush(t *sim.Thread) {
	if !a.cfg.Offload {
		return
	}
	c := a.clientOf(t)
	if a.cfg.Resilience.Enabled {
		a.resilientFlush(t, c)
		return
	}
	c.seq++
	c.freq.Push(t, opSync, c.seq)
	a.awaitSeq(t, c)
}

// clientOf lazily registers the calling thread with the server.
func (a *Allocator) clientOf(t *sim.Thread) *client {
	if c, ok := a.byThread[t.ID()]; ok {
		return c
	}
	pages := (freeRingOff + ring.BytesFor(a.cfg.RingSlots) + mem.PageSize - 1) >> mem.PageShift
	page := t.Mmap(pages)
	// The whole client page is transport state — response line, stash
	// slots, both rings — so misses on it are attributed to the ring
	// class, not to user data or metadata.
	t.MarkRegion(page, int(pages)<<mem.PageShift, region.Ring)
	c := &client{
		threadID: t.ID(),
		page:     page,
		mreq:     ring.New(page+mallocRingOff, mallocRingSlots),
		freq:     ring.New(page+freeRingOff, a.cfg.RingSlots),
	}
	if a.cfg.Latency != nil {
		c.mreq.EnableStamps()
		c.freq.EnableStamps()
	}
	if a.cfg.Resilience.Enabled || a.cfg.Faults != nil {
		c.res = newClientResilience()
	}
	if inj := a.cfg.Faults; inj != nil && a.cfg.Resilience.Enabled && inj.Plan().DropEveryN > 0 {
		// Doorbell loss is only injected when the client can recover
		// (Republish after a timeout); the seed protocol would hang.
		c.mreq.SetDropHook(inj.DropDoorbell)
		c.freq.SetDropHook(inj.DropDoorbell)
	}
	a.byThread[t.ID()] = c
	// Publication to the server's poll set: the host slice append is the
	// registration; determinism holds because only one simulated thread
	// runs at a time.
	a.registerL.Lock(t)
	a.clients = append(a.clients, c)
	a.registerL.Unlock(t)
	return c
}

// Served reports how many ring operations the server has processed.
func (a *Allocator) Served() uint64 { return a.served }

// RingTelemetry merges the per-client malloc-ring and free-ring stats
// (offload transport telemetry; zero-valued in inline mode).
func (a *Allocator) RingTelemetry() (malloc, free ring.Stats) {
	for _, c := range a.clients {
		malloc.Add(c.mreq.Stats())
		free.Add(c.freq.Stats())
	}
	return malloc, free
}

// RingDepths sums the host-visible occupancy (published + staged slots)
// of every client's rings — the timeline sampler's gauge. Zero
// simulated cost.
func (a *Allocator) RingDepths() (mallocDepth, freeDepth uint64) {
	for _, c := range a.clients {
		mallocDepth += uint64(c.mreq.HostDepth())
		freeDepth += uint64(c.freq.HostDepth())
	}
	return mallocDepth, freeDepth
}

// --- server -----------------------------------------------------------------

// Server is the dedicated-core daemon body. Spawn it before sim.Run and
// attach the allocator once constructed:
//
//	srv := core.NewServer()
//	m.SpawnDaemon("ngm-server", serverCore, srv.Run)
//	...
//	a := core.New(t, cfg)
//	srv.Attach(a)
type Server struct {
	a *Allocator

	// Busy/idle accounting for the dedicated core (host-side: reading
	// the thread clock perturbs nothing). A loop iteration that found
	// ring work counts as busy; empty polls, idle top-ups, and waiting
	// for Attach count as idle.
	busyCycles uint64
	idleCycles uint64
	// Empty-poll accounting: passes that found no ring work, and the
	// cycles those passes burned scanning the rings (a subset of
	// idleCycles — the overhead Config.IdleBackoff exists to shrink).
	emptyPolls      uint64
	emptyPollCycles uint64
	// idlePause is the current doorbell-backoff pause (IdleBackoff only);
	// any served request resets it.
	idlePause int
	// lastEmptyPoll is the scan cost of the most recent empty poll pass,
	// used to scale emptyPollCycles exactly when the scheduler's time
	// warp skips steady idle rounds (identical rounds scan identically).
	lastEmptyPoll uint64
	// addrScratch backs idleLoadAddrs so steady idle windows allocate
	// nothing per bulk skip.
	addrScratch []uint64
	// rr is the rotating client start index of the round-robin policy
	// (host-side scheduling state, like a real server's cursor register).
	rr int
}

// Doorbell-backoff bounds: the pause starts at the fixed poll pause and
// doubles per consecutive empty poll, capped low enough that a client's
// first post-idle malloc still sees sub-microsecond service latency.
const (
	idlePauseMin = 8
	idlePauseMax = 256
)

// NewServer returns an empty server awaiting Attach.
func NewServer() *Server { return &Server{} }

// Attach hands the allocator to the server loop.
func (s *Server) Attach(a *Allocator) { s.a = a }

// Telemetry reports the server core's busy and idle cycles so far.
func (s *Server) Telemetry() (busy, idle uint64) { return s.busyCycles, s.idleCycles }

// PollStats reports how many poll passes found no work and the cycles
// those empty passes burned scanning the rings.
func (s *Server) PollStats() (emptyPolls, emptyPollCycles uint64) {
	return s.emptyPolls, s.emptyPollCycles
}

// Run is the daemon body: poll every client ring round-robin, service
// requests with the (atomics-free) slab engine, publish responses.
//
// The loop is declared to the scheduler's time warp (sim.WaitSpec): a
// quiescent ring set makes every iteration an identical sequence of
// empty tail probes, stash gauge reads, and a capped backoff pause, and
// those rounds are skipped in bulk instead of being stepped on the
// host. The declaration covers exactly the steady idle round — the tail
// words the empty polls reload and the stash index words the idle
// top-up gauges — and the horizon pins warped rounds strictly below the
// next fault-stall window, so an armed plan observes the identical
// stall entry clock. Per-round idle accounting is scaled through
// Skipped, making busy/idle/empty-poll telemetry bit-identical too.
func (s *Server) Run(t *sim.Thread) {
	t.WarpLoop(sim.WaitSpec{
		Round: func() bool { return s.iterate(t) },
		Addrs: s.idleLoadAddrs,
		Horizon: func() uint64 {
			if inj := s.injector(); inj != nil {
				return inj.NextStall(t.Clock())
			}
			return 0
		},
		Skipped: func(rounds, cycles uint64) {
			s.emptyPolls += rounds
			s.emptyPollCycles += rounds * s.lastEmptyPoll
			s.idleCycles += cycles
		},
	})
}

// iterate is one iteration of the daemon loop; it reports whether the
// server is done (shutdown drain complete).
func (s *Server) iterate(t *sim.Thread) bool {
	start := t.Clock()
	if inj := s.injector(); inj != nil {
		if d := inj.StallPause(t.Clock()); d > 0 {
			// The room was taken away: lease cycles without serving.
			// Pauses are chunked so Stopping stays polled; drain (and
			// with it shutdown) waits for the window to close, exactly
			// like the applications do.
			t.Pause(int(d))
			s.idleCycles += t.Clock() - start
			return false
		}
	}
	if t.Stopping() {
		if s.a == nil || s.drain(t) {
			s.busyCycles += t.Clock() - start
			return true
		}
	}
	if s.a == nil {
		t.Pause(200)
		s.idleCycles += t.Clock() - start
		return false
	}
	if s.Poll(t) {
		s.busyCycles += t.Clock() - start
		s.idlePause = 0
	} else {
		s.emptyPolls++
		s.lastEmptyPoll = t.Clock() - start
		s.emptyPollCycles += s.lastEmptyPoll
		s.Idle(t)
		pause := idlePauseMin
		if s.a != nil && s.a.cfg.IdleBackoff {
			// Doorbell backoff: each consecutive empty poll doubles
			// the pause, so a quiescent ring set costs O(log) scans
			// instead of one per idlePauseMin cycles.
			if s.idlePause == 0 {
				s.idlePause = idlePauseMin
			} else if s.idlePause < idlePauseMax {
				s.idlePause *= 2
			}
			pause = s.idlePause
		}
		t.Pause(pause)
		s.idleCycles += t.Clock() - start
	}
	return false
}

// idleLoadAddrs declares the load sequence of one steady idle round to
// the time-warp detector: the malloc-ring tail probed by the priority
// pass, the malloc- and free-ring tails probed by the first background
// iteration, per client, then the stash write/read index words the idle
// top-up reads for every hot class whose stash is already full. Host
// side only — building the list issues no simulated operations.
func (s *Server) idleLoadAddrs() []uint64 {
	a := s.a
	if a == nil {
		return nil
	}
	addrs := s.addrScratch[:0]
	for _, c := range a.clients {
		addrs = append(addrs, c.mreq.TailAddr())
	}
	for _, c := range a.clients {
		addrs = append(addrs, c.mreq.TailAddr(), c.freq.TailAddr())
	}
	if a.preallocOn() {
		for _, c := range a.clients {
			for _, h := range c.hot {
				if h > 0 && a.stashDepth(c, h-1) > 0 {
					slot := stashSlot(c.page, h-1)
					addrs = append(addrs, slot+stashWrite, slot+stashRead)
				}
			}
		}
	}
	s.addrScratch = addrs
	return addrs
}

// Poll performs one service pass over every client (malloc rings with
// priority, then a slice of the free backlog, in the order Config.Sched
// selects) and reports whether any work was found. Exposed so the
// dedicated core can be shared with other service functions (the
// paper's "can the room be used for other functions" question).
func (s *Server) Poll(t *sim.Thread) bool {
	a := s.a
	if a == nil {
		return false
	}
	switch a.cfg.Sched {
	case RoundRobin:
		return s.pollRoundRobin(t)
	case DoorbellPriority:
		return s.pollDoorbell(t)
	case BatchDrain:
		return s.pollBatchDrain(t)
	}
	return s.pollFixedScan(t)
}

// pollFixedScan is the seed service order: clients in registration
// order, malloc rings first, then up to 16 background frees per client.
// Between frees only the *current* client's malloc ring is re-checked,
// so another client's synchronous malloc can wait behind this client's
// whole free slice — the head-of-line unfairness the round-robin and
// doorbell-priority policies fix. Kept bit-identical to the seed (the
// golden suite pins it); fairness fixes live in the other policies.
func (s *Server) pollFixedScan(t *sim.Thread) bool {
	a := s.a
	busy := false
	// Priority pass: synchronous malloc requests first.
	for _, c := range a.clients {
		for {
			w0, w1, ok := s.pop(t, c.mreq)
			if !ok {
				break
			}
			busy = true
			s.serveSpan(t, c, c.mreq, w0, w1)
		}
	}
	// Background pass: drain free backlog, re-checking the malloc
	// ring between frees so a request never waits behind the batch.
	for _, c := range a.clients {
		if a.cfg.Batch > 1 {
			for n := 0; n < 16; n += a.cfg.Batch {
				if w0, w1, ok := s.pop(t, c.mreq); ok {
					busy = true
					s.serveSpan(t, c, c.mreq, w0, w1)
				}
				if s.popFreeLine(t, c) == 0 {
					break
				}
				busy = true
			}
			continue
		}
		for n := 0; n < 16; n++ {
			if w0, w1, ok := s.pop(t, c.mreq); ok {
				busy = true
				s.serveSpan(t, c, c.mreq, w0, w1)
			}
			w0, w1, ok := s.pop(t, c.freq)
			if !ok {
				break
			}
			busy = true
			s.serveSpan(t, c, c.freq, w0, w1)
		}
	}
	return busy
}

// popFreeLine pops one slot line (up to Batch requests) of c's free
// backlog through the vectored PopN path — one head publication per
// line instead of per free, the consumer-side half of batching — and
// services it, folding batch latency spans. Reports the slots popped.
func (s *Server) popFreeLine(t *sim.Thread, c *client) int {
	a := s.a
	var buf [maxBatch][2]uint64
	var stamps [maxBatch]uint64
	k := c.freq.PopN(t, buf[:a.cfg.Batch])
	if k == 0 {
		return 0
	}
	if inj := a.cfg.Faults; inj != nil && a.cfg.Resilience.Enabled {
		for i := 0; i < k; i++ {
			buf[i][0], buf[i][1] = inj.Corrupt(buf[i][0], buf[i][1])
		}
	}
	lat := a.cfg.Latency
	var deq uint64
	if lat != nil {
		c.freq.PoppedStamps(k, stamps[:])
		deq = t.Clock()
	}
	for i := 0; i < k; i++ {
		complete, served := s.serve(t, c, false, buf[i][0], buf[i][1])
		if lat == nil || !served {
			continue
		}
		if op, ok := spanOp(buf[i][0]); ok {
			// Frees drained through the vectored path are classified as
			// batch spans.
			if op == timeline.OpFree {
				op = timeline.OpBatch
			}
			lat.Record(op, c.threadID, stamps[i], deq, complete)
		}
	}
	return k
}

// Idle spends spare core cycles topping up the stashes of recently
// requested classes (predictive preallocation, §3.3.2).
func (s *Server) Idle(t *sim.Thread) {
	a := s.a
	if a == nil || !a.preallocOn() {
		return
	}
	for _, c := range a.clients {
		for _, h := range c.hot {
			if h > 0 {
				s.topUp(t, c, h-1)
			}
		}
	}
}

// Drain services everything still queued (shutdown path for shared-room
// daemons).
func (s *Server) Drain(t *sim.Thread) {
	if s.a != nil {
		s.drain(t)
	}
}

// topUp fills a client's per-class stash ring up to the configured
// depth. SPSC: only the server writes addresses and writeIdx, only the
// client writes readIdx, so this is safe to run while the client pops.
func (s *Server) topUp(t *sim.Thread, c *client, class int) {
	a := s.a
	depth := a.stashDepth(c, class)
	if depth == 0 {
		// Adaptive policy with a cold class: skip even the index loads.
		return
	}
	slot := stashSlot(c.page, class)
	w := t.Load64(slot + stashWrite)
	r := t.Load64(slot + stashRead)
	have := w - r
	if have >= depth {
		return
	}
	for n := have; n < depth; n++ {
		t.Store64(slot+stashAddrs+(w%stashWindow)*8, a.allocClass(t, class))
		w++
	}
	t.AtomicStore64(slot+stashWrite, w)
}

// drain services any remaining queued operations; reports completion.
func (s *Server) drain(t *sim.Thread) bool {
	faulty := s.a.cfg.Faults != nil
	for _, c := range s.a.clients {
		if faulty {
			// A dropped doorbell must not strand published slots at
			// shutdown: re-ring both doorbells (the producers have exited,
			// so the tail lines are quiescent) before the final pops. This
			// is what keeps the liveness invariant pushes == pops.
			c.mreq.Republish(t)
			c.freq.Republish(t)
		}
		for {
			w0, w1, ok := s.pop(t, c.mreq)
			if !ok {
				break
			}
			s.serveSpan(t, c, c.mreq, w0, w1)
		}
		for {
			w0, w1, ok := s.pop(t, c.freq)
			if !ok {
				break
			}
			s.serveSpan(t, c, c.freq, w0, w1)
		}
	}
	return true
}

// injector returns the armed fault injector, if any.
func (s *Server) injector() *fault.Injector {
	if s.a == nil {
		return nil
	}
	return s.a.cfg.Faults
}

// pop is TryPop plus the corruption injection point: every word pair
// the server receives may have a bit flipped by an armed plan (only
// with resilience on — the seed protocol cannot survive it).
func (s *Server) pop(t *sim.Thread, r *ring.SPSC) (uint64, uint64, bool) {
	w0, w1, ok := r.TryPop(t)
	if ok {
		if inj := s.a.cfg.Faults; inj != nil && s.a.cfg.Resilience.Enabled {
			w0, w1 = inj.Corrupt(w0, w1)
		}
	}
	return w0, w1, ok
}

// serve processes one request and returns the server clock at the point
// the request's effect became visible to the client (for malloc, the
// response publication — stash restocking afterwards is off the
// critical path and not part of the span's service time). served is
// false when the request was rejected (NACKed) instead: failed seal,
// invalid payload, or an op code the protocol doesn't know.
func (s *Server) serve(t *sim.Thread, c *client, fromMalloc bool, w0, w1 uint64) (complete uint64, served bool) {
	a := s.a
	svcStart := t.Clock()
	if a.cfg.Resilience.Enabled {
		t.Exec(sealCost)
		if !checkSeal(w0, w1) {
			return s.nack(t, c, fromMalloc), false
		}
		w0 = unseal(w0)
	}
	switch w0 & 0xff {
	case opMalloc:
		size := w0 >> 8
		if a.cfg.Resilience.Enabled && size > a.cfg.Resilience.MaxRequestBytes {
			return s.nack(t, c, fromMalloc), false
		}
		addr := a.engineMalloc(t, size)
		t.Store64(c.page+respAddr, addr)
		t.AtomicStore64(c.page+respSeq, w1)
		complete = t.Clock()
		// The client is already unblocked; restock its stash off the
		// critical path and remember the class for idle top-ups. The
		// heat update precedes the top-up so the adaptive policy sizes
		// the stash for the class's new rank.
		if a.preallocOn() {
			if class, ok := a.sc.ClassFor(size); ok {
				c.noteHot(class)
				s.topUp(t, c, class)
			}
		}
	case opFree:
		if a.cfg.Resilience.Enabled {
			// Validated path: an unmappable or misaligned address is a
			// corrupt request, not a crash.
			if !a.serveFreeValidated(t, w1) {
				return s.nack(t, c, fromMalloc), false
			}
		} else {
			a.engineFreeCounted(t, w1)
		}
		complete = t.Clock()
		// Asynchronous: no response. (The client's seq counter advanced,
		// so a later sync op publishes the newest seq.)
	case opSync:
		t.AtomicStore64(c.page+respSeq, w1)
		complete = t.Clock()
	case opPreheat:
		// Stock the class's stash and pre-carve its slab so the first
		// real allocation after a cold start is a local pop. Heat first:
		// the adaptive depth for a never-seen class is zero.
		class := int(w0 >> 8)
		if a.cfg.Resilience.Enabled && class >= a.sc.NumClasses() {
			return s.nack(t, c, fromMalloc), false
		}
		c.noteHot(class)
		if a.preallocOn() {
			s.topUp(t, c, class)
		} else {
			blk := a.allocClass(t, class)
			a.freeClass(t, a.pagemapGet(t, blk), class, blk)
		}
		complete = t.Clock()
	default:
		if a.cfg.Resilience.Enabled || a.cfg.Faults != nil {
			return s.nack(t, c, fromMalloc), false
		}
		panic(fmt.Sprintf("core: unknown ring op %#x", w0))
	}
	a.served++
	// Host-side service-fairness ledger (observation only — no simulated
	// traffic): count the request and track the widest gap between this
	// client's consecutive completions, the starvation metric the fleet
	// sweep reports.
	if c.lastServed != 0 && complete-c.lastServed > c.maxServeGap {
		c.maxServeGap = complete - c.lastServed
	}
	c.servedOps++
	c.lastServed = complete
	if inj := a.cfg.Faults; inj != nil {
		if extra := inj.SlowPause(t.Clock() - svcStart); extra > 0 {
			// A slow room: the response is already out, so the injected
			// service-time multiple lands as delay on every later request.
			t.Pause(int(extra))
		}
	}
	return complete, true
}

// spanOp maps a ring op code to its latency-span kind; control ops
// (sync barriers, preheat) are not allocation requests and get no span.
func spanOp(w0 uint64) (timeline.Op, bool) {
	switch w0 & 0xff {
	case opMalloc:
		return timeline.OpMalloc, true
	case opFree:
		return timeline.OpFree, true
	}
	return 0, false
}

// serveSpan services one singly-popped request and, when latency
// recording is armed, folds its span: the ring's host-side stamp is the
// enqueue time, and the pop just happened so the current server clock
// is the dequeue time.
func (s *Server) serveSpan(t *sim.Thread, c *client, r *ring.SPSC, w0, w1 uint64) {
	fromMalloc := r == c.mreq
	lat := s.a.cfg.Latency
	if lat == nil {
		s.serve(t, c, fromMalloc, w0, w1)
		return
	}
	enq := r.PoppedStamp()
	deq := t.Clock()
	complete, served := s.serve(t, c, fromMalloc, w0, w1)
	if !served {
		return
	}
	if op, ok := spanOp(w0); ok {
		lat.Record(op, c.threadID, enq, deq, complete)
	}
}
