package core

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func compactCfg() Config {
	cfg := DefaultConfig()
	cfg.Layout = Compact
	return cfg
}

func TestConformanceCompactInline(t *testing.T) {
	cfg := compactCfg()
	cfg.Offload = false
	alloctest.Run(t, alloctest.Options{Factory: factory(cfg, nil)})
}

func TestConformanceCompactOffload(t *testing.T) {
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(compactCfg(), &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceCompactSyncFree(t *testing.T) {
	cfg := compactCfg()
	cfg.AsyncFree = false
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceCompactBatch(t *testing.T) {
	cfg := compactCfg()
	cfg.Batch = 4
	cfg.IdleBackoff = true
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

func TestConformanceCompactAdaptive(t *testing.T) {
	cfg := compactCfg()
	cfg.Batch = 4
	cfg.AdaptivePrealloc = true
	cfg.IdleBackoff = true
	var srv *Server
	alloctest.Run(t, alloctest.Options{
		Factory: factory(cfg, &srv),
		Daemon: func(m *sim.Machine) {
			srv = NewServer()
			m.SpawnDaemon("server", m.Cores()-1, srv.Run)
		},
	})
}

// TestConformanceCompactFleetSched: the compact layout under a 2-shard
// fleet, once per scheduling policy — the serve paths must speak the
// bitmask records regardless of how the daemon orders its rings.
func TestConformanceCompactFleetSched(t *testing.T) {
	for _, pol := range []SchedPolicy{FixedScan, RoundRobin, DoorbellPriority, BatchDrain} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := compactCfg()
			cfg.Sched = pol
			var srvs []*Server
			alloctest.Run(t, alloctest.Options{
				Factory: fleetFactory(cfg, 2, ByClient, &srvs),
				Daemon:  fleetDaemon(2, &srvs),
			})
		})
	}
}

func TestCompactBadFree(t *testing.T) {
	cfg := compactCfg()
	cfg.Offload = false
	alloctest.RunBadFree(t, alloctest.Options{Factory: factory(cfg, nil)})
}

// TestCompactMetaFootprint pins the layout's reason to exist: for every
// size class whose groups hold at least 8 units, the compact
// out-of-band allocation state (one mask word per 32-unit group) costs
// at most half the segregated index stack's bytes per slab.
func TestCompactMetaFootprint(t *testing.T) {
	sc := alloc.NewSizeClasses()
	checked := 0
	for class := 0; class < sc.NumClasses(); class++ {
		cCap, cBytes := MetaFootprint(Compact, sc, class)
		_, segBytes := MetaFootprint(Segregated, sc, class)
		if cCap < 1 {
			t.Errorf("class %d (size %d): compact slab holds %d units", class, sc.Size(class), cCap)
			continue
		}
		unitsPerGroup := cCap
		if unitsPerGroup > compactGroupUnits {
			unitsPerGroup = compactGroupUnits
		}
		if unitsPerGroup < 8 {
			continue
		}
		checked++
		if 2*cBytes > segBytes {
			t.Errorf("class %d (size %d): compact %d state B/slab > half of segregated %d",
				class, sc.Size(class), cBytes, segBytes)
		}
	}
	if checked == 0 {
		t.Fatal("no size class had >= 8 units per group")
	}
}

// TestCompactLeavesFreedBytesAlone: unlike the aggregated layout, the
// compact free path stores no intrusive link — a freed block's payload
// survives untouched (all state is the out-of-band mask bit).
func TestCompactLeavesFreedBytesAlone(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := compactCfg()
		cfg.Offload = false
		a := New(th, cfg)
		p := a.Malloc(th, 64)
		th.Store64(p, 0xfeedfacecafebeef)
		a.Free(th, p)
		if got := th.Load64(p); got != 0xfeedfacecafebeef {
			t.Errorf("freed block payload clobbered: %#x", got)
		}
	})
	m.Run()
}

// TestCompactDoubleFreePanics: the mask bit makes double free a
// detected fault even without the resilience layer.
func TestCompactDoubleFreePanics(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	panicked := false
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := compactCfg()
		cfg.Offload = false
		a := New(th, cfg)
		p := a.Malloc(th, 64)
		a.Free(th, p)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.Free(th, p)
	})
	m.Run()
	if !panicked {
		t.Error("double free went undetected")
	}
}

// TestCompactHeaderFreePanics: an address inside a group's in-band
// header line is never a valid block start.
func TestCompactHeaderFreePanics(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	panicked := false
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := compactCfg()
		cfg.Offload = false
		a := New(th, cfg)
		p := a.Malloc(th, 64)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.Free(th, p-compactHdrBytes) // the group header line
	})
	m.Run()
	if !panicked {
		t.Error("freeing a group header address went undetected")
	}
}

func TestLayoutStringParseRoundTrip(t *testing.T) {
	for _, l := range []Layout{Segregated, Aggregated, Compact} {
		if !l.Valid() {
			t.Errorf("%s not Valid()", l)
		}
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if l, err := ParseLayout(""); err != nil || l != Segregated {
		t.Errorf("ParseLayout(\"\") = %v, %v", l, err)
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Error("ParseLayout(\"bogus\") did not fail")
	}
	if bad := Layout(7); bad.Valid() || bad.String() != "layout(7)" {
		t.Errorf("Layout(7): Valid=%v String=%q", bad.Valid(), bad.String())
	}
}

// BenchmarkSlabMallocFree tracks the host-side cost of each layout's
// inline malloc/free paths (one simulated thread, churn over a few
// classes; ns/op is host time per malloc+free pair).
func BenchmarkSlabMallocFree(b *testing.B) {
	for _, l := range []Layout{Segregated, Aggregated, Compact} {
		b.Run(l.String(), func(b *testing.B) {
			m := sim.New(sim.ScaledConfig())
			m.Spawn("bench", 0, func(th *sim.Thread) {
				cfg := DefaultConfig()
				cfg.Offload = false
				cfg.Layout = l
				a := New(th, cfg)
				sizes := []uint64{16, 48, 64, 160, 512}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := a.Malloc(th, sizes[i%len(sizes)])
					a.Free(th, p)
				}
			})
			m.Run()
		})
	}
}

// TestCompactGeometryCoversEveryClass: every size class carves at least
// one full unit behind its header, addresses are in-bounds, and the
// find-first-set path hands out exactly capacity distinct unit
// addresses before the slab reports empty.
func TestCompactGeometryCoversEveryClass(t *testing.T) {
	sc := alloc.NewSizeClasses()
	for class := 0; class < sc.NumClasses(); class++ {
		pages, capacity := slabGeometry(Compact, sc, class)
		size := sc.Size(class)
		if capacity < 1 {
			t.Fatalf("class %d: capacity %d", class, capacity)
		}
		stride := compactStride(size)
		span := uint64(pages) << 12
		last := uint64((capacity-1)/compactGroupUnits)*stride +
			compactHdrBytes + uint64((capacity-1)%compactGroupUnits)*size + size
		if last > span {
			t.Errorf("class %d (size %d): last unit ends at %d > span %d (pages %d, cap %d)",
				class, size, last, span, pages, capacity)
		}
	}
}

func TestCompactVariantNames(t *testing.T) {
	cases := []struct {
		mut  func(*Config)
		want string
	}{
		{func(c *Config) { c.Layout = Compact }, "nextgen-compact"},
		{func(c *Config) { c.Offload = false; c.Layout = Compact }, "nextgen-inline-compact"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if got := (&Allocator{cfg: cfg}).Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestCompactResilientFreeValidation: with the resilience layer armed,
// the server NACKs (rather than serves) compact frees that are
// misaligned, point into a header line, or double-free a unit — and
// the NACK path touches no allocator state.
func TestCompactResilientFreeValidation(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var srv *Server
	srv = NewServer()
	m.SpawnDaemon("server", m.Cores()-1, srv.Run)
	m.Spawn("t", 0, func(th *sim.Thread) {
		cfg := compactCfg()
		cfg.Resilience = DefaultResilience()
		a := New(th, cfg)
		srv.Attach(a)
		p := a.Malloc(th, 64)
		q := a.Malloc(th, 64)
		a.Free(th, q)
		a.Flush(th)
		for i, bad := range []uint64{
			p + 8,               // misaligned inside a live unit
			p - compactHdrBytes, // the group header line
			q,                   // unit already free
		} {
			a.Free(th, bad)
			a.Flush(th)
			if nacks := a.ResilienceTelemetry().FreeNacks; nacks != uint64(i+1) {
				t.Errorf("bad free %d (%#x): FreeNacks = %d, want %d", i, bad, nacks, i+1)
			}
		}
		// The slab must still be coherent: the live unit frees cleanly.
		a.Free(th, p)
		a.Flush(th)
		if nacks := a.ResilienceTelemetry().FreeNacks; nacks != 3 {
			t.Errorf("valid free NACKed: FreeNacks = %d", nacks)
		}
	})
	m.Run()
}
