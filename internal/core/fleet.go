package core

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
)

// Partition selects how a Fleet routes requests to its server shards.
type Partition int

const (
	// ByClient assigns each application thread to one shard
	// (round-robin in first-touch order), so a thread's whole traffic —
	// rings, stash, response line — stays with one server. This is the
	// default: it preserves the per-thread SPSC transport unchanged.
	ByClient Partition = iota
	// ByClass routes each request by its size class (class mod shards,
	// large allocations to shard 0), so every server owns a disjoint
	// slice of the class space and threads talk to several servers.
	ByClass
)

// String reports the partition's CLI spelling.
func (p Partition) String() string {
	if p == ByClass {
		return "class"
	}
	return "client"
}

// ParsePartition maps a CLI spelling to its partition scheme. The
// empty string is the default (by client).
func ParsePartition(s string) (Partition, error) {
	switch s {
	case "", "client":
		return ByClient, nil
	case "class":
		return ByClass, nil
	}
	return 0, fmt.Errorf("unknown partition %q (want client or class)", s)
}

// Fleet shards the offloaded allocator across S independent servers,
// each owning its clients' ring pairs and a private metadata engine —
// the "how many rooms does the house need" scaling question. Routing
// is host-side except for a small fixed dispatch charge; each shard is
// an unmodified Allocator, so the per-shard protocol (and its golden
// behaviour) is untouched.
type Fleet struct {
	part   Partition
	shards []*Allocator
	sc     *alloc.SizeClasses
	// group is the thread→shard assignment (ByClient), filled
	// round-robin in first-touch order; owner maps every live
	// allocation to the shard that served it so frees route home even
	// when another thread (or another class bucket) releases them.
	group map[int]int
	owner map[uint64]int
}

// routeCost is the simulated cycles charged per request for the shard
// dispatch (a table lookup on the client side).
const routeCost = 2

// NewFleet builds servers independent shard allocators from one config;
// t performs the initial mmaps. Attach shard i to its own Server daemon
// (Fleet.Shards) before running. servers must be >= 1.
func NewFleet(t *sim.Thread, cfg Config, servers int, part Partition) *Fleet {
	if servers < 1 {
		panic(fmt.Sprintf("core: fleet needs at least one server, got %d", servers))
	}
	f := &Fleet{
		part:  part,
		sc:    alloc.NewSizeClasses(),
		group: make(map[int]int),
		owner: make(map[uint64]int),
	}
	for i := 0; i < servers; i++ {
		f.shards = append(f.shards, New(t, cfg))
	}
	return f
}

// Shards exposes the per-server allocators (shard i belongs to server
// daemon i) for attachment and telemetry.
func (f *Fleet) Shards() []*Allocator { return f.shards }

// ClientShards reports the thread→home-shard assignment (a copy).
// Under ByClient it is where each thread's allocations were served;
// under ByClass threads still get a home shard for large allocations.
// Host-side observation only.
func (f *Fleet) ClientShards() map[int]int {
	out := make(map[int]int, len(f.group))
	for th, sh := range f.group {
		out[th] = sh
	}
	return out
}

// Name implements alloc.Allocator.
func (f *Fleet) Name() string {
	return fmt.Sprintf("%s-x%d", f.shards[0].Name(), len(f.shards))
}

// threadShard returns t's home shard, assigning one round-robin on
// first touch (deterministic: one simulated thread runs at a time).
func (f *Fleet) threadShard(t *sim.Thread) int {
	if sh, ok := f.group[t.ID()]; ok {
		return sh
	}
	sh := len(f.group) % len(f.shards)
	f.group[t.ID()] = sh
	return sh
}

// mallocShard routes an allocation request.
func (f *Fleet) mallocShard(t *sim.Thread, size uint64) int {
	if f.part == ByClass {
		if class, ok := f.sc.ClassFor(size); ok {
			return class % len(f.shards)
		}
		return 0 // large allocations all carve from shard 0's span heap
	}
	return f.threadShard(t)
}

// Malloc implements alloc.Allocator: route to the owning shard and
// remember the owner so the matching free routes home.
func (f *Fleet) Malloc(t *sim.Thread, size uint64) uint64 {
	t.Exec(routeCost)
	sh := f.mallocShard(t, size)
	addr := f.shards[sh].Malloc(t, size)
	if addr != 0 {
		f.owner[addr] = sh
	}
	return addr
}

// Free implements alloc.Allocator.
func (f *Fleet) Free(t *sim.Thread, addr uint64) {
	t.Exec(routeCost)
	sh, ok := f.owner[addr]
	if ok {
		delete(f.owner, addr)
	} else {
		sh = f.threadShard(t)
	}
	f.shards[sh].Free(t, addr)
}

// Stats implements alloc.Allocator by summing the shards.
func (f *Fleet) Stats() alloc.Stats {
	var s alloc.Stats
	for _, a := range f.shards {
		st := a.Stats()
		s.HeapBytes += st.HeapBytes
		s.LiveBytes += st.LiveBytes
		s.MallocCalls += st.MallocCalls
		s.FreeCalls += st.FreeCalls
	}
	return s
}

// Flush implements alloc.Flusher: drain this thread's queued frees on
// every shard it actually talked to (flushing an untouched shard would
// spuriously register the thread there).
func (f *Fleet) Flush(t *sim.Thread) {
	for _, a := range f.shards {
		if _, ok := a.byThread[t.ID()]; ok {
			a.Flush(t)
		}
	}
}

// Preheat warms the shard (or shards, under ByClass) that will serve
// the given sizes.
func (f *Fleet) Preheat(t *sim.Thread, sizes []uint64) {
	if f.part != ByClass {
		f.shards[f.threadShard(t)].Preheat(t, sizes)
		return
	}
	perShard := make([][]uint64, len(f.shards))
	for _, size := range sizes {
		sh := 0
		if class, ok := f.sc.ClassFor(size); ok {
			sh = class % len(f.shards)
		}
		perShard[sh] = append(perShard[sh], size)
	}
	for sh, sz := range perShard {
		if len(sz) > 0 {
			f.shards[sh].Preheat(t, sz)
		}
	}
}

// Served sums the shards' served-operation counts.
func (f *Fleet) Served() uint64 {
	var n uint64
	for _, a := range f.shards {
		n += a.Served()
	}
	return n
}

// RingTelemetry merges ring stats across every shard's clients.
func (f *Fleet) RingTelemetry() (malloc, free ring.Stats) {
	for _, a := range f.shards {
		m, fr := a.RingTelemetry()
		malloc.Add(m)
		free.Add(fr)
	}
	return malloc, free
}

// RingDepths sums host-visible ring occupancy across shards (the
// timeline sampler's gauge). Zero simulated cost.
func (f *Fleet) RingDepths() (mallocDepth, freeDepth uint64) {
	for _, a := range f.shards {
		m, fr := a.RingDepths()
		mallocDepth += m
		freeDepth += fr
	}
	return mallocDepth, freeDepth
}

// ResilienceTelemetry sums client-side degradation counters across
// shards.
func (f *Fleet) ResilienceTelemetry() ResilienceStats {
	var s ResilienceStats
	for _, a := range f.shards {
		s.Add(a.ResilienceTelemetry())
	}
	return s
}
