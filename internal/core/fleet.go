package core

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
)

// Partition selects how a Fleet routes requests to its server shards.
type Partition int

const (
	// ByClient assigns each application thread to one shard
	// (round-robin in first-touch order), so a thread's whole traffic —
	// rings, stash, response line — stays with one server. This is the
	// default: it preserves the per-thread SPSC transport unchanged.
	ByClient Partition = iota
	// ByClass routes each request by its size class (class mod shards,
	// large allocations to shard 0), so every server owns a disjoint
	// slice of the class space and threads talk to several servers.
	ByClass
)

// String reports the partition's CLI spelling.
func (p Partition) String() string {
	if p == ByClass {
		return "class"
	}
	return "client"
}

// ParsePartition maps a CLI spelling to its partition scheme. The
// empty string is the default (by client).
func ParsePartition(s string) (Partition, error) {
	switch s {
	case "", "client":
		return ByClient, nil
	case "class":
		return ByClass, nil
	}
	return 0, fmt.Errorf("unknown partition %q (want client or class)", s)
}

// Fleet shards the offloaded allocator across S independent servers,
// each owning its clients' ring pairs and a private metadata engine —
// the "how many rooms does the house need" scaling question. Routing
// is host-side except for a small fixed dispatch charge; each shard is
// an unmodified Allocator, so the per-shard protocol (and its golden
// behaviour) is untouched.
type Fleet struct {
	part   Partition
	shards []*Allocator
	sc     *alloc.SizeClasses
	// group is the thread→shard assignment (ByClient), filled
	// round-robin in first-touch order; owner maps every live
	// allocation to the shard that served it so frees route home even
	// when another thread (or another class bucket) releases them.
	group map[int]int
	owner map[uint64]int

	// Failover state (armed by Resilience.FailoverAfter > 0 on a
	// multi-shard fleet): per-thread routing ledgers in first-touch
	// order, plus a bounded host-side event log for the trace.
	fclients map[int]*fleetClient
	forder   []int
	events   []FailoverEvent
	dropped  uint64 // events past the log cap
}

// fleetClient is one application thread's failover routing state. home
// is where the partition scheme would send its mallocs; active is where
// they actually land right now. Ownership of already-served blocks
// never moves — frees always route by the owner map.
type fleetClient struct {
	home, active int
	failedOver   bool
	downs        uint64
	rejoins      uint64
	forwarded    uint64
}

// ClientFailover is one thread's failover ledger, exported for
// telemetry: its home and currently active shard, how many times it
// re-homed away (Downs) and back (Rejoins), and how many mallocs were
// served by a non-home shard.
type ClientFailover struct {
	Thread           int
	HomeShard        int
	ActiveShard      int
	Downs            uint64
	Rejoins          uint64
	ForwardedMallocs uint64
}

// FailoverEvent is one re-home transition (host-side trace record): at
// Cycle, Thread moved its malloc traffic From one shard To another.
type FailoverEvent struct {
	Cycle  uint64
	Thread int
	From   int
	To     int
}

// failoverEventCap bounds the event log; transitions past it still
// count in the per-client ledgers, only the trace records are dropped
// (and counted).
const failoverEventCap = 8192

// FailoverStats aggregates the per-client failover ledgers.
type FailoverStats struct {
	Downs            uint64
	Rejoins          uint64
	ForwardedMallocs uint64
	DroppedEvents    uint64
}

// Add accumulates o into s, covering every field (kept exhaustive by
// the reflection test in fleet_test.go).
func (s *FailoverStats) Add(o FailoverStats) {
	s.Downs += o.Downs
	s.Rejoins += o.Rejoins
	s.ForwardedMallocs += o.ForwardedMallocs
	s.DroppedEvents += o.DroppedEvents
}

// routeCost is the simulated cycles charged per request for the shard
// dispatch (a table lookup on the client side).
const routeCost = 2

// NewFleet builds servers independent shard allocators from one config;
// t performs the initial mmaps. Attach shard i to its own Server daemon
// (Fleet.Shards) before running. servers must be >= 1.
func NewFleet(t *sim.Thread, cfg Config, servers int, part Partition) *Fleet {
	if servers < 1 {
		panic(fmt.Sprintf("core: fleet needs at least one server, got %d", servers))
	}
	f := &Fleet{
		part:     part,
		sc:       alloc.NewSizeClasses(),
		group:    make(map[int]int),
		owner:    make(map[uint64]int),
		fclients: make(map[int]*fleetClient),
	}
	for i := 0; i < servers; i++ {
		f.shards = append(f.shards, New(t, cfg))
	}
	return f
}

// SetShardFaults arms each shard with its own fault injector (index i →
// shard i; nil entries and missing tail entries leave the shard clean).
// Must be called before any client registers — the drop hooks are wired
// at registration.
func (f *Fleet) SetShardFaults(injs []*fault.Injector) {
	for i, inj := range injs {
		if i < len(f.shards) {
			f.shards[i].cfg.Faults = inj
		}
	}
}

// Shards exposes the per-server allocators (shard i belongs to server
// daemon i) for attachment and telemetry.
func (f *Fleet) Shards() []*Allocator { return f.shards }

// ClientShards reports the thread→home-shard assignment (a copy).
// Under ByClient it is where each thread's allocations were served;
// under ByClass threads still get a home shard for large allocations.
// Host-side observation only.
func (f *Fleet) ClientShards() map[int]int {
	out := make(map[int]int, len(f.group))
	for th, sh := range f.group {
		out[th] = sh
	}
	return out
}

// Name implements alloc.Allocator.
func (f *Fleet) Name() string {
	return fmt.Sprintf("%s-x%d", f.shards[0].Name(), len(f.shards))
}

// threadShard returns t's home shard, assigning one round-robin on
// first touch (deterministic: one simulated thread runs at a time).
func (f *Fleet) threadShard(t *sim.Thread) int {
	if sh, ok := f.group[t.ID()]; ok {
		return sh
	}
	sh := len(f.group) % len(f.shards)
	f.group[t.ID()] = sh
	return sh
}

// mallocShard routes an allocation request.
func (f *Fleet) mallocShard(t *sim.Thread, size uint64) int {
	if f.part == ByClass {
		if class, ok := f.sc.ClassFor(size); ok {
			return class % len(f.shards)
		}
		return 0 // large allocations all carve from shard 0's span heap
	}
	return f.threadShard(t)
}

// Malloc implements alloc.Allocator: route to the owning shard and
// remember the owner so the matching free routes home.
func (f *Fleet) Malloc(t *sim.Thread, size uint64) uint64 {
	t.Exec(routeCost)
	if f.FailoverArmed() {
		addr, sh := f.failoverMalloc(t, size)
		if addr != 0 {
			f.owner[addr] = sh
		}
		return addr
	}
	sh := f.mallocShard(t, size)
	addr := f.shards[sh].Malloc(t, size)
	if addr != 0 {
		f.owner[addr] = sh
	}
	return addr
}

// FailoverArmed reports whether the fleet re-routes mallocs around
// marked-down shards: resilience on, a failover threshold set, and more
// than one shard to fail over to.
func (f *Fleet) FailoverArmed() bool {
	r := &f.shards[0].cfg.Resilience
	return r.Enabled && r.FailoverAfter > 0 && len(f.shards) > 1
}

// fclient returns t's failover ledger, creating it homed at home.
func (f *Fleet) fclient(t *sim.Thread, home int) *fleetClient {
	if fc, ok := f.fclients[t.ID()]; ok {
		return fc
	}
	fc := &fleetClient{home: home, active: home}
	f.fclients[t.ID()] = fc
	f.forder = append(f.forder, t.ID())
	return fc
}

// shardDown reports whether t has marked shard sh down: its client
// there is degraded, or has accumulated FailoverAfter consecutive
// failures. A shard the thread never talked to is presumed healthy.
func (f *Fleet) shardDown(t *sim.Thread, sh int) bool {
	a := f.shards[sh]
	c, ok := a.byThread[t.ID()]
	if !ok || c.res == nil {
		return false
	}
	return c.res.degraded || c.res.consecFails >= a.cfg.Resilience.FailoverAfter
}

// failoverMalloc routes one malloc with shard failover: try the home
// shard first, then rotate through the rest. Every attempted shard runs
// the full resilient protocol (mallocFallible), so a marked-down shard
// fails fast while still being probed at ProbeCycles cadence — the
// probe-based re-homing path: the moment the home shard answers a
// probe, the very next malloc lands home again and the transition is
// recorded as a rejoin. The emergency allocator is the last tier, used
// only when every shard is down (or the home shard is failing but still
// below the failover threshold, the PR 5 single-server behaviour).
// Returns the address and the shard that owns it.
func (f *Fleet) failoverMalloc(t *sim.Thread, size uint64) (uint64, int) {
	home := f.mallocShard(t, size)
	fc := f.fclient(t, home)
	n := len(f.shards)
	for i := 0; i < n; i++ {
		sh := (home + i) % n
		addr, ok := f.shards[sh].mallocFallible(t, size)
		if !ok {
			if i == 0 && !f.shardDown(t, home) {
				// Below the failover threshold: don't spread a transient
				// hiccup across the fleet — fall straight to emergency.
				break
			}
			continue
		}
		f.noteFailover(t, fc, home, sh)
		return addr, sh
	}
	a := f.shards[home]
	c := a.clientOf(t)
	a.noteMalloc(size)
	return a.emergencyMalloc(t, c, size), home
}

// noteFailover updates t's routing ledger after a served malloc and
// records down/rejoin transitions.
func (f *Fleet) noteFailover(t *sim.Thread, fc *fleetClient, home, sh int) {
	fc.home = home
	if sh != home {
		fc.forwarded++
		if !fc.failedOver || fc.active != sh {
			fc.downs++
			f.noteEvent(t, fc.active, sh)
		}
		fc.failedOver = true
	} else if fc.failedOver {
		fc.rejoins++
		f.noteEvent(t, fc.active, sh)
		fc.failedOver = false
	}
	fc.active = sh
}

// noteEvent appends one transition to the bounded event log (host-side
// observation only — reading the thread clock issues no simulated
// traffic).
func (f *Fleet) noteEvent(t *sim.Thread, from, to int) {
	if len(f.events) >= failoverEventCap {
		f.dropped++
		return
	}
	f.events = append(f.events, FailoverEvent{
		Cycle: t.Clock(), Thread: t.ID(), From: from, To: to,
	})
}

// FailoverTelemetry reports the per-client failover ledgers (in
// first-touch order), the transition event log, and the fleet-wide
// totals. armed is false (and everything empty) when failover never
// engaged a routing decision — the disarmed fleet records nothing.
func (f *Fleet) FailoverTelemetry() (clients []ClientFailover, events []FailoverEvent, totals FailoverStats, armed bool) {
	if !f.FailoverArmed() {
		return nil, nil, FailoverStats{}, false
	}
	for _, th := range f.forder {
		fc := f.fclients[th]
		clients = append(clients, ClientFailover{
			Thread:           th,
			HomeShard:        fc.home,
			ActiveShard:      fc.active,
			Downs:            fc.downs,
			Rejoins:          fc.rejoins,
			ForwardedMallocs: fc.forwarded,
		})
		totals.Downs += fc.downs
		totals.Rejoins += fc.rejoins
		totals.ForwardedMallocs += fc.forwarded
	}
	totals.DroppedEvents = f.dropped
	return clients, append([]FailoverEvent(nil), f.events...), totals, true
}

// Free implements alloc.Allocator.
func (f *Fleet) Free(t *sim.Thread, addr uint64) {
	t.Exec(routeCost)
	sh, ok := f.owner[addr]
	if ok {
		delete(f.owner, addr)
	} else {
		sh = f.threadShard(t)
	}
	f.shards[sh].Free(t, addr)
}

// Stats implements alloc.Allocator by summing the shards.
func (f *Fleet) Stats() alloc.Stats {
	var s alloc.Stats
	for _, a := range f.shards {
		st := a.Stats()
		s.HeapBytes += st.HeapBytes
		s.LiveBytes += st.LiveBytes
		s.MallocCalls += st.MallocCalls
		s.FreeCalls += st.FreeCalls
	}
	return s
}

// Flush implements alloc.Flusher: drain this thread's queued frees on
// every shard it actually talked to (flushing an untouched shard would
// spuriously register the thread there).
func (f *Fleet) Flush(t *sim.Thread) {
	for _, a := range f.shards {
		if _, ok := a.byThread[t.ID()]; ok {
			a.Flush(t)
		}
	}
}

// Preheat warms the shard (or shards, under ByClass) that will serve
// the given sizes.
func (f *Fleet) Preheat(t *sim.Thread, sizes []uint64) {
	if f.part != ByClass {
		f.shards[f.threadShard(t)].Preheat(t, sizes)
		return
	}
	perShard := make([][]uint64, len(f.shards))
	for _, size := range sizes {
		sh := 0
		if class, ok := f.sc.ClassFor(size); ok {
			sh = class % len(f.shards)
		}
		perShard[sh] = append(perShard[sh], size)
	}
	for sh, sz := range perShard {
		if len(sz) > 0 {
			f.shards[sh].Preheat(t, sz)
		}
	}
}

// Served sums the shards' served-operation counts.
func (f *Fleet) Served() uint64 {
	var n uint64
	for _, a := range f.shards {
		n += a.Served()
	}
	return n
}

// RingTelemetry merges ring stats across every shard's clients.
func (f *Fleet) RingTelemetry() (malloc, free ring.Stats) {
	for _, a := range f.shards {
		m, fr := a.RingTelemetry()
		malloc.Add(m)
		free.Add(fr)
	}
	return malloc, free
}

// RingDepths sums host-visible ring occupancy across shards (the
// timeline sampler's gauge). Zero simulated cost.
func (f *Fleet) RingDepths() (mallocDepth, freeDepth uint64) {
	for _, a := range f.shards {
		m, fr := a.RingDepths()
		mallocDepth += m
		freeDepth += fr
	}
	return mallocDepth, freeDepth
}

// ResilienceTelemetry sums client-side degradation counters across
// shards.
func (f *Fleet) ResilienceTelemetry() ResilienceStats {
	var s ResilienceStats
	for _, a := range f.shards {
		s.Add(a.ResilienceTelemetry())
	}
	return s
}
