// Graceful degradation for the offload path. The paper gives the
// allocator its own room in the house; this file answers what the
// application does when the room is locked — the dedicated core is
// stalled, slow, or the ring misbehaves (see internal/fault). The
// client gets a per-request timeout with bounded exponential-backoff
// retries, and after enough consecutive failures falls back to a local
// emergency allocator until a periodic probe finds the server answering
// again. The server validates every ring word (sequence tag + parity in
// the otherwise-unused top byte) and NACKs corrupt requests instead of
// panicking, so corruption becomes a counted, recoverable event.
//
// Everything here is gated on Config.Resilience.Enabled (plus, for the
// injection sites, Config.Faults): with both off, no simulated
// instruction differs from the seed protocol, which keeps the golden
// counter suite bit-identical.
package core

import (
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// Resilience configures the offload client's graceful degradation and
// the server's request validation. The zero value is disabled: the
// client uses the seed blocking protocol and the server serves words
// unchecked.
type Resilience struct {
	// Enabled turns the whole policy on.
	Enabled bool
	// TimeoutCycles bounds one wait for a response before the request is
	// re-rung (Republish) and retried.
	TimeoutCycles uint64
	// MaxRetries bounds the re-rings per request; past it the request is
	// abandoned and served locally.
	MaxRetries int
	// BackoffCycles is the first inter-retry pause; it doubles per retry.
	BackoffCycles uint64
	// FallbackAfter is how many consecutive abandoned requests flip the
	// client into degraded mode (local emergency allocation).
	FallbackAfter int
	// ProbeCycles is the minimum spacing of degraded-mode rejoin probes
	// (a sync barrier sent to test whether the server answers again).
	ProbeCycles uint64
	// MaxRequestBytes is the largest malloc the server will honour; a
	// corrupt size word past it is NACKed instead of grabbing the span
	// allocator.
	MaxRequestBytes uint64
	// FailoverAfter arms fleet failover: after this many consecutive
	// timeouts on the home shard, a client re-homes its mallocs to the
	// next healthy shard instead of the emergency allocator, which
	// becomes the last tier (every shard down). Zero keeps failover off
	// — degraded clients fall straight back to emergency allocation, the
	// PR 5 behaviour — and applyDefaults deliberately leaves it zero.
	// Frees always route to the owning shard regardless of failover.
	FailoverAfter int
}

// DefaultResilience is the policy the fault experiments start from:
// patient enough that a clean run never trips it (a first-touch malloc
// legitimately takes ~90k cycles while the server carves the class's
// initial slab), impatient enough that a stalled server costs
// microseconds of simulated time, not the run.
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:         true,
		TimeoutCycles:   100000,
		MaxRetries:      3,
		BackoffCycles:   512,
		FallbackAfter:   2,
		ProbeCycles:     100000,
		MaxRequestBytes: 1 << 24,
	}
}

// applyDefaults fills zero fields of an enabled policy so a sparse
// config (say, only TimeoutCycles set) behaves sanely.
func (r *Resilience) applyDefaults() {
	d := DefaultResilience()
	if r.TimeoutCycles == 0 {
		r.TimeoutCycles = d.TimeoutCycles
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.BackoffCycles == 0 {
		r.BackoffCycles = d.BackoffCycles
	}
	if r.FallbackAfter == 0 {
		r.FallbackAfter = d.FallbackAfter
	}
	if r.ProbeCycles == 0 {
		r.ProbeCycles = d.ProbeCycles
	}
	if r.MaxRequestBytes == 0 {
		r.MaxRequestBytes = d.MaxRequestBytes
	}
}

// ResilienceStats counts the degradation machinery's events. Client-side
// counters accumulate per client; the NACK counters are bumped by the
// server into the offending client's stats.
type ResilienceStats struct {
	// Timeouts counts response waits that expired; Retries counts the
	// re-rings that followed (Retries <= Timeouts).
	Timeouts uint64
	Retries  uint64
	// MallocNacks / FreeNacks count requests the server rejected as
	// invalid (failed seal, bad size, unknown op, unmappable address),
	// split by the ring they arrived on.
	MallocNacks uint64
	FreeNacks   uint64
	// FallbackEntries / FallbackExits count degraded-mode transitions;
	// DegradedCycles is the time spent inside.
	FallbackEntries uint64
	FallbackExits   uint64
	DegradedCycles  uint64
	// EmergencyMallocs / EmergencyFrees count operations served by the
	// local emergency allocator.
	EmergencyMallocs uint64
	EmergencyFrees   uint64
	// DeferredFrees counts frees queued host-side because the ring was
	// full or the client degraded; they drain on recovery.
	DeferredFrees uint64
	// AbandonedRequests counts mallocs the client stopped waiting for;
	// ReclaimedBlocks counts those whose late response was still caught
	// and recycled (abandoned - reclaimed bounds the leak).
	AbandonedRequests uint64
	ReclaimedBlocks   uint64
}

// Add accumulates o into s.
func (s *ResilienceStats) Add(o ResilienceStats) {
	s.Timeouts += o.Timeouts
	s.Retries += o.Retries
	s.MallocNacks += o.MallocNacks
	s.FreeNacks += o.FreeNacks
	s.FallbackEntries += o.FallbackEntries
	s.FallbackExits += o.FallbackExits
	s.DegradedCycles += o.DegradedCycles
	s.EmergencyMallocs += o.EmergencyMallocs
	s.EmergencyFrees += o.EmergencyFrees
	s.DeferredFrees += o.DeferredFrees
	s.AbandonedRequests += o.AbandonedRequests
	s.ReclaimedBlocks += o.ReclaimedBlocks
}

// ResilienceTelemetry merges every client's degradation counters.
func (a *Allocator) ResilienceTelemetry() ResilienceStats {
	var s ResilienceStats
	for _, c := range a.clients {
		if c.res != nil {
			s.Add(c.res.stats)
		}
	}
	return s
}

// ResilienceEnabled reports whether the degradation policy is armed.
func (a *Allocator) ResilienceEnabled() bool { return a.cfg.Resilience.Enabled }

// NACK words on the client page (same line as respSeq/respAddr; offsets
// 16 and 24 were unused). Each is a counter the server bumps when it
// rejects a request from the corresponding ring; the client keeps a host
// mirror and treats any change as "something of mine was dropped".
const (
	respNackM = 16 // malloc-ring rejections
	respNackF = 24 // free-ring rejections
)

// --- word sealing -----------------------------------------------------------

// The top byte of slot word 0 is unused by the seed protocol (op in the
// low byte, payload in bits 8..55). With resilience on, the client
// seals it: bits 60-63 carry a 4-bit sequence tag and bits 56-59 a
// 4-bit XOR parity over both words, so any single-bit corruption of the
// pair is detected by checkSeal and the request NACKed instead of
// misinterpreted.
const (
	sealCost    = 2                   // host arithmetic charged per seal/check
	payloadBits = uint64(1)<<56 - 1   // op + payload, below the seal byte
	parityShift = 56
	tagShift    = 60
)

// parity4 folds x to a 4-bit XOR parity nibble.
func parity4(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	return x & 0xf
}

// sealWord stamps w0's top byte with the tag and the parity over the
// (tagged) pair.
func sealWord(w0, w1, seq uint64) uint64 {
	w0 = w0&payloadBits | (seq&0xf)<<tagShift
	return w0 | parity4(w0^w1)<<parityShift
}

// checkSeal verifies a popped pair.
func checkSeal(w0, w1 uint64) bool {
	return parity4((w0&^(uint64(0xf)<<parityShift))^w1) == w0>>parityShift&0xf
}

// unseal strips the seal byte, recovering the seed encoding.
func unseal(w0 uint64) uint64 { return w0 & payloadBits }

// --- per-client degradation state -------------------------------------------

// abandonedReq remembers a malloc the client stopped waiting for: the
// sequence number (to catch the late response) and the requested size
// (to rebalance live-byte accounting when the block is reclaimed and
// re-freed through the engine).
type abandonedReq struct {
	seq  uint64
	size uint64
}

// clientResilience is the host-side degradation state of one client.
type clientResilience struct {
	consecFails   int
	degraded      bool
	degradedSince uint64
	lastProbe     uint64
	// nackSeenM/nackSeenF mirror the page's NACK counters; nackM/nackF
	// are the server-side values it publishes.
	nackSeenM uint64
	nackSeenF uint64
	nackM     uint64
	nackF     uint64
	abandoned []abandonedReq
	// probeSeq is the outstanding asynchronous rejoin probe's sequence
	// number (0 = none); only the fleet failover path uses it.
	probeSeq uint64
	// deferred holds engine-owned block addresses whose free could not be
	// queued (ring full or degraded); drained opportunistically.
	deferred []uint64
	em       emergency
	stats    ResilienceStats
}

func newClientResilience() *clientResilience {
	return &clientResilience{em: emergency{
		free:   map[int][]uint64{},
		blocks: map[uint64]int64{},
	}}
}

// emergency is the local fallback allocator: a bump pointer over
// privately mmapped spans with per-class free stacks. It is deliberately
// primitive — it exists so the application makes progress while the
// server is away, not to win benchmarks — and its blocks never mix with
// the engine's (the engine's pagemap doesn't know them, and Free routes
// them here by the blocks map).
type emergency struct {
	cur, limit uint64
	free       map[int][]uint64
	// blocks maps a live emergency address to its class, or to -pages for
	// large blocks.
	blocks map[uint64]int64
}

const emergencySpanPages = 16 // 64 KiB spans; every size class fits (max 32 KiB)

// emergencyMalloc serves a malloc locally while degraded.
func (a *Allocator) emergencyMalloc(t *sim.Thread, c *client, size uint64) uint64 {
	rs := c.res
	rs.stats.EmergencyMallocs++
	t.Exec(6) // class lookup + free-stack pop / bump arithmetic
	class, ok := a.sc.ClassFor(size)
	if !ok {
		pages := int((size + mem.PageSize - 1) >> mem.PageShift)
		addr := t.Mmap(pages)
		t.MarkRegion(addr, pages<<mem.PageShift, region.User)
		a.stats.HeapBytes += uint64(pages) << mem.PageShift
		rs.em.blocks[addr] = -int64(pages)
		return addr
	}
	if fl := rs.em.free[class]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		rs.em.free[class] = fl[:len(fl)-1]
		rs.em.blocks[addr] = int64(class)
		return addr
	}
	bsize := a.sc.Size(class)
	if rs.em.cur+bsize > rs.em.limit {
		span := t.Mmap(emergencySpanPages)
		t.MarkRegion(span, emergencySpanPages<<mem.PageShift, region.User)
		a.stats.HeapBytes += emergencySpanPages << mem.PageShift
		rs.em.cur, rs.em.limit = span, span+emergencySpanPages<<mem.PageShift
	}
	addr := rs.em.cur
	rs.em.cur += bsize
	rs.em.blocks[addr] = int64(class)
	return addr
}

// emergencyFree releases an emergency block; false means the address is
// engine-owned and must travel the ring. The live-byte decrement happens
// here because the server-side path (engineFreeCounted) never sees these
// blocks.
func (a *Allocator) emergencyFree(t *sim.Thread, c *client, addr uint64) bool {
	rs := c.res
	enc, ok := rs.em.blocks[addr]
	if !ok {
		return false
	}
	t.Exec(4)
	delete(rs.em.blocks, addr)
	rs.stats.EmergencyFrees++
	if enc < 0 {
		// Large emergency blocks are not recycled: they are rare and
		// bounded by the degraded window, and the pages stay mapped.
		a.stats.LiveBytes -= uint64(-enc) << mem.PageShift
		return true
	}
	class := int(enc)
	a.stats.LiveBytes -= a.sc.Size(class)
	rs.em.free[class] = append(rs.em.free[class], addr)
	return true
}

// --- resilient client protocol ----------------------------------------------

// resilientMalloc is Malloc's offload tail under the resilience policy:
// sealed request, bounded wait, local fallback.
func (a *Allocator) resilientMalloc(t *sim.Thread, c *client, size uint64) uint64 {
	rs := c.res
	a.drainDeferred(t, c)
	if rs.degraded {
		if !a.tryRejoin(t, c, false) {
			return a.emergencyMalloc(t, c, size)
		}
	}
	c.seq++
	seq := c.seq
	t.Exec(sealCost)
	if !c.mreq.TryPush(t, sealWord(opMalloc|size<<8, seq, seq), seq) {
		// The malloc ring is jammed with requests the server never took:
		// don't wait for a push slot that needs the dead server to free.
		rs.stats.Timeouts++
		return a.mallocFailed(t, c, seq, size)
	}
	if addr, ok := a.awaitMalloc(t, c, seq, size); ok {
		rs.consecFails = 0
		return addr
	}
	return a.mallocFailed(t, c, seq, size)
}

// mallocAbandoned records an offloaded malloc the client gave up on —
// the late response stays catchable via maybeReclaim — and flips into
// degraded mode after enough consecutive failures. The caller picks the
// fallback tier: the local emergency allocator (mallocFailed) or, under
// fleet failover, another shard.
func (a *Allocator) mallocAbandoned(t *sim.Thread, c *client, seq, size uint64) {
	rs := c.res
	rs.abandoned = append(rs.abandoned, abandonedReq{seq: seq, size: size})
	rs.stats.AbandonedRequests++
	rs.consecFails++
	if !rs.degraded && rs.consecFails >= a.cfg.Resilience.FallbackAfter {
		a.enterDegraded(t, c)
	}
}

// mallocFailed abandons an offloaded malloc and serves it locally,
// flipping into degraded mode after enough consecutive failures.
func (a *Allocator) mallocFailed(t *sim.Thread, c *client, seq, size uint64) uint64 {
	a.mallocAbandoned(t, c, seq, size)
	return a.emergencyMalloc(t, c, size)
}

// mallocFallible is the fleet failover entry point: one full resilient
// malloc attempt against this shard that reports failure instead of
// falling back to the emergency allocator, so the fleet can re-route
// the request to a healthy shard. It mirrors Malloc's offload path —
// same dispatch charge, batch boundary, stash fast path, sealed push,
// bounded wait — except the host-side malloc ledger is charged only on
// success: the shard that serves the request owns its accounting. A
// degraded shard fails fast (one host check, plus a ProbeCycles-spaced
// rejoin probe), so a dead home shard costs its clients almost nothing
// per malloc once marked down.
func (a *Allocator) mallocFallible(t *sim.Thread, size uint64) (uint64, bool) {
	c := a.clientOf(t)
	rs := c.res
	if rs.degraded {
		if !a.pollRejoin(t, c) {
			return 0, false
		}
	}
	t.Exec(4)
	if a.cfg.Batch > 1 {
		c.freq.Publish(t)
	}
	if addr, ok := a.stashPop(t, c, size); ok {
		a.noteMalloc(size)
		return addr, true
	}
	a.drainDeferred(t, c)
	c.seq++
	seq := c.seq
	t.Exec(sealCost)
	if !c.mreq.TryPush(t, sealWord(opMalloc|size<<8, seq, seq), seq) {
		rs.stats.Timeouts++
		a.mallocAbandoned(t, c, seq, size)
		return 0, false
	}
	if addr, ok := a.awaitMalloc(t, c, seq, size); ok {
		rs.consecFails = 0
		a.noteMalloc(size)
		return addr, true
	}
	a.mallocAbandoned(t, c, seq, size)
	return 0, false
}

// awaitMalloc waits for seq's response: rounds of TimeoutCycles spinning
// separated by a doorbell re-ring and an exponentially growing pause.
// Each spinning round is declared to the time warp — a steady round
// loads the response word and the malloc NACK word (one shared line)
// and pauses — with the attempt deadline as the warp's Until bound, so
// timeout expiry lands on the identical clock with warp on and off.
func (a *Allocator) awaitMalloc(t *sim.Thread, c *client, seq, size uint64) (uint64, bool) {
	r := &a.cfg.Resilience
	rs := c.res
	backoff := r.BackoffCycles
	repush := false
	addrs := [2]uint64{c.page + respSeq, c.page + respNackM}
	for attempt := 0; ; attempt++ {
		var addr uint64
		got := false
		t.WarpLoop(sim.WaitSpec{
			Round: func() bool {
				if repush {
					t.Exec(sealCost)
					if c.mreq.TryPush(t, sealWord(opMalloc|size<<8, seq, seq), seq) {
						repush = false
					}
				}
				v := t.AtomicLoad64(c.page + respSeq)
				if v == seq {
					addr, got = t.Load64(c.page+respAddr), true
					return true
				}
				a.maybeReclaim(t, c, v)
				if nk := t.AtomicLoad64(c.page + respNackM); nk != rs.nackSeenM {
					rs.nackSeenM = nk
					// Only re-push when our request is provably the NACK's
					// subject: with abandoned requests still queued on this
					// ring, the rejection could be one of theirs, and a
					// speculative duplicate would leak its second response.
					if len(rs.abandoned) == 0 {
						rs.stats.Retries++
						repush = true
					}
				}
				t.Pause(4)
				return false
			},
			Addrs: func() []uint64 { return addrs[:] },
			Until: t.Clock() + r.TimeoutCycles,
		})
		if got {
			return addr, true
		}
		rs.stats.Timeouts++
		if attempt >= r.MaxRetries {
			return 0, false
		}
		rs.stats.Retries++
		// Assume the doorbell was lost: re-ring and back off.
		c.mreq.Republish(t)
		t.Pause(int(backoff))
		backoff *= 2
	}
}

// maybeReclaim catches the late response of an abandoned malloc: the
// block is queued for a deferred free and the live-byte ledger is
// rebalanced (the abandoned request's increment was consumed by its
// emergency replacement, so the engine's eventual free-side decrement
// needs an offsetting credit).
func (a *Allocator) maybeReclaim(t *sim.Thread, c *client, v uint64) {
	rs := c.res
	for i, ab := range rs.abandoned {
		if ab.seq != v {
			continue
		}
		addr := t.Load64(c.page + respAddr)
		rs.abandoned = append(rs.abandoned[:i], rs.abandoned[i+1:]...)
		rs.deferred = append(rs.deferred, addr)
		rs.stats.ReclaimedBlocks++
		rs.stats.DeferredFrees++
		if class, ok := a.sc.ClassFor(ab.size); ok {
			a.stats.LiveBytes += a.sc.Size(class)
		} else {
			a.stats.LiveBytes += (ab.size + mem.PageSize - 1) &^ (mem.PageSize - 1)
		}
		return
	}
}

// resilientFree is Free's offload tail under the resilience policy.
func (a *Allocator) resilientFree(t *sim.Thread, c *client, addr uint64) {
	rs := c.res
	if a.emergencyFree(t, c, addr) {
		return
	}
	if rs.degraded {
		// The server is away; park the free host-side.
		rs.deferred = append(rs.deferred, addr)
		rs.stats.DeferredFrees++
		return
	}
	a.drainDeferred(t, c)
	c.seq++
	seq := c.seq
	t.Exec(sealCost)
	w0 := sealWord(opFree, addr, seq)
	if a.cfg.Batch > 1 && a.cfg.AsyncFree {
		if !c.freq.TryStage(t, w0, addr) {
			rs.deferred = append(rs.deferred, addr)
			rs.stats.DeferredFrees++
			return
		}
		if c.freq.Staged() >= a.cfg.Batch {
			c.freq.Publish(t)
		}
		return
	}
	if !c.freq.TryPush(t, w0, addr) {
		rs.deferred = append(rs.deferred, addr)
		rs.stats.DeferredFrees++
		return
	}
	if !a.cfg.AsyncFree {
		// Synchronous-free mode: bounded barrier instead of the seed's
		// infinite spin.
		c.seq++
		bseq := c.seq
		t.Exec(sealCost)
		if c.freq.TryPush(t, sealWord(opSync, bseq, bseq), bseq) {
			a.awaitSync(t, c, bseq)
		}
	}
}

// drainDeferred re-queues parked frees while the ring accepts them.
func (a *Allocator) drainDeferred(t *sim.Thread, c *client) {
	rs := c.res
	for len(rs.deferred) > 0 {
		addr := rs.deferred[0]
		seq := c.seq + 1
		t.Exec(sealCost)
		if !c.freq.TryPush(t, sealWord(opFree, addr, seq), addr) {
			return
		}
		c.seq = seq
		rs.deferred = rs.deferred[1:]
	}
}

// awaitSync waits for a sync barrier's response (same shape as
// awaitMalloc, on the free ring).
func (a *Allocator) awaitSync(t *sim.Thread, c *client, seq uint64) bool {
	r := &a.cfg.Resilience
	rs := c.res
	backoff := r.BackoffCycles
	repush := false
	addrs := [2]uint64{c.page + respSeq, c.page + respNackF}
	for attempt := 0; ; attempt++ {
		got := false
		t.WarpLoop(sim.WaitSpec{
			Round: func() bool {
				if repush {
					t.Exec(sealCost)
					if c.freq.TryPush(t, sealWord(opSync, seq, seq), seq) {
						repush = false
					}
				}
				v := t.AtomicLoad64(c.page + respSeq)
				if v == seq {
					got = true
					return true
				}
				a.maybeReclaim(t, c, v)
				if nk := t.AtomicLoad64(c.page + respNackF); nk != rs.nackSeenF {
					rs.nackSeenF = nk
					// A free-ring NACK may be for a free rather than this
					// barrier, but a duplicate barrier is idempotent — re-push
					// unconditionally.
					rs.stats.Retries++
					repush = true
				}
				t.Pause(4)
				return false
			},
			Addrs: func() []uint64 { return addrs[:] },
			Until: t.Clock() + r.TimeoutCycles,
		})
		if got {
			return true
		}
		rs.stats.Timeouts++
		if attempt >= r.MaxRetries {
			return false
		}
		rs.stats.Retries++
		c.freq.Republish(t)
		t.Pause(int(backoff))
		backoff *= 2
	}
}

// resilientFlush is Flush under the resilience policy: a bounded barrier
// that doubles as a degraded-mode rejoin point and settles the
// degraded-cycles ledger (the harness flushes at thread exit, so an
// open degraded window is folded in here).
func (a *Allocator) resilientFlush(t *sim.Thread, c *client) {
	rs := c.res
	if rs.degraded {
		a.tryRejoin(t, c, true)
	}
	if !rs.degraded {
		a.drainDeferred(t, c)
		c.freq.Publish(t) // staged coalesced frees travel ahead of the barrier
		c.seq++
		seq := c.seq
		t.Exec(sealCost)
		ok := c.freq.TryPush(t, sealWord(opSync, seq, seq), seq)
		if ok {
			ok = a.awaitSync(t, c, seq)
		} else {
			rs.stats.Timeouts++
		}
		if ok {
			rs.consecFails = 0
			a.drainDeferred(t, c)
		} else {
			rs.consecFails++
			if rs.consecFails >= a.cfg.Resilience.FallbackAfter {
				a.enterDegraded(t, c)
			}
		}
	}
	a.settleDegraded(t, c)
}

// resilientPreheat queues a preheat request without blocking; a full
// ring drops it (preheat is advisory).
func (a *Allocator) resilientPreheat(t *sim.Thread, c *client, class int) {
	seq := c.seq + 1
	t.Exec(sealCost)
	if c.freq.TryPush(t, sealWord(opPreheat|uint64(class)<<8, 0, seq), 0) {
		c.seq = seq
	}
}

// enterDegraded flips the client to local emergency allocation and
// re-rings both doorbells so everything already queued surfaces the
// moment the server recovers.
func (a *Allocator) enterDegraded(t *sim.Thread, c *client) {
	rs := c.res
	rs.degraded = true
	rs.degradedSince = t.Clock()
	rs.lastProbe = t.Clock() // the server just proved unresponsive; wait a full interval
	rs.probeSeq = 0          // a stale async probe's answer must not fake a rejoin
	rs.stats.FallbackEntries++
	c.mreq.Republish(t)
	c.freq.Republish(t)
}

// exitDegraded returns the client to the offload protocol.
func (a *Allocator) exitDegraded(t *sim.Thread, c *client) {
	rs := c.res
	rs.degraded = false
	rs.consecFails = 0
	rs.probeSeq = 0
	rs.stats.FallbackExits++
	rs.stats.DegradedCycles += t.Clock() - rs.degradedSince
	a.drainDeferred(t, c)
}

// settleDegraded folds an open degraded window into DegradedCycles (the
// telemetry boundary; the window itself stays open).
func (a *Allocator) settleDegraded(t *sim.Thread, c *client) {
	rs := c.res
	if rs.degraded {
		rs.stats.DegradedCycles += t.Clock() - rs.degradedSince
		rs.degradedSince = t.Clock()
	}
}

// pollRejoin is the fleet failover path's non-blocking rejoin check: a
// degraded home shard is probed with a fire-and-forget sync barrier
// every ProbeCycles, and each call merely glances at the response word
// for the answer. Unlike tryRejoin it never spins out a timeout — a
// failed-over client has a healthy shard serving it, so probing its dead
// home must cost a load, not TimeoutCycles of its tenant's latency. (The
// emergency path keeps the blocking probe: it has no other way back.)
// True means the shard answered and the client has rejoined.
func (a *Allocator) pollRejoin(t *sim.Thread, c *client) bool {
	r := &a.cfg.Resilience
	rs := c.res
	if rs.probeSeq != 0 {
		v := t.AtomicLoad64(c.page + respSeq)
		if v == rs.probeSeq {
			rs.probeSeq = 0
			a.exitDegraded(t, c)
			return true
		}
		a.maybeReclaim(t, c, v)
	}
	if t.Clock()-rs.lastProbe < r.ProbeCycles {
		return false
	}
	rs.lastProbe = t.Clock()
	c.seq++
	seq := c.seq
	t.Exec(sealCost)
	if c.freq.TryPush(t, sealWord(opSync, seq, seq), seq) {
		c.freq.Republish(t) // this probe's doorbell must not be the dropped one
		rs.probeSeq = seq
	}
	return false
}

// tryRejoin probes a degraded client's server with a sync barrier; on an
// answer within one timeout it exits degraded mode. Probes are spaced
// ProbeCycles apart unless forced (flush boundaries force one).
func (a *Allocator) tryRejoin(t *sim.Thread, c *client, force bool) bool {
	r := &a.cfg.Resilience
	rs := c.res
	if !force && t.Clock()-rs.lastProbe < r.ProbeCycles {
		return false
	}
	rs.lastProbe = t.Clock()
	c.seq++
	seq := c.seq
	t.Exec(sealCost)
	if !c.freq.TryPush(t, sealWord(opSync, seq, seq), seq) {
		return false // the ring is still jammed: plainly not recovered
	}
	c.freq.Republish(t) // this probe's doorbell must not be the dropped one
	got := false
	addrs := [1]uint64{c.page + respSeq}
	t.WarpLoop(sim.WaitSpec{
		Round: func() bool {
			v := t.AtomicLoad64(c.page + respSeq)
			if v == seq {
				got = true
				return true
			}
			a.maybeReclaim(t, c, v)
			t.Pause(4)
			return false
		},
		Addrs: func() []uint64 { return addrs[:] },
		Until: t.Clock() + r.TimeoutCycles,
	})
	if got {
		a.exitDegraded(t, c)
		return true
	}
	rs.stats.Timeouts++
	return false
}

// --- server-side validation ---------------------------------------------------

// nack publishes a rejection: a counter bump on the client page's NACK
// word for the offending ring. The client treats a malloc-ring NACK as
// "my in-flight request was dropped — re-push it"; free-ring NACKs cover
// asynchronous requests (a corrupt free is dropped and counted) and sync
// barriers (re-pushed, idempotent).
func (s *Server) nack(t *sim.Thread, c *client, fromMalloc bool) uint64 {
	if c.res == nil {
		c.res = newClientResilience()
	}
	if fromMalloc {
		c.res.nackM++
		c.res.stats.MallocNacks++
		t.AtomicStore64(c.page+respNackM, c.res.nackM)
	} else {
		c.res.nackF++
		c.res.stats.FreeNacks++
		t.AtomicStore64(c.page+respNackF, c.res.nackF)
	}
	return t.Clock()
}

// pagemapRootSlots is the root directory's capacity (16 pages of
// 8-byte slots, see New); used to range-check untrusted addresses before
// the pagemap walk.
const pagemapRootSlots = 16 << mem.PageShift / 8

// serveFreeValidated performs an opFree with full address validation:
// heap range, pagemap lookup, class sanity, base/alignment/capacity
// checks. False (with no state touched) means the address cannot be a
// live engine block — the corrupt-request NACK path. The happy path
// mirrors engineFreeCounted's bookkeeping exactly.
func (a *Allocator) serveFreeValidated(t *sim.Thread, addr uint64) bool {
	t.Exec(4) // range/alignment compare chain
	if addr < mem.MmapBase {
		return false
	}
	rel := (addr - mem.MmapBase) >> mem.PageShift
	if rel>>9 >= pagemapRootSlots {
		return false
	}
	rec := a.pagemapGet(t, addr)
	if rec == 0 {
		return false
	}
	classWord := t.Load64(rec + slClass)
	switch {
	case classWord == classLarge:
		if addr != t.Load64(rec+slBase) {
			return false // interior pointer into a large block
		}
		a.stats.LiveBytes -= t.Load64(rec+slPages) << mem.PageShift
		a.spanFree(t, rec)
		return true
	case classWord < uint64(a.sc.NumClasses()):
		class := int(classWord)
		base := t.Load64(rec + slBase)
		if addr < base {
			return false
		}
		size := a.sc.Size(class)
		if a.cfg.Layout == Compact {
			// Compact validation: decompose into group/unit, check the
			// in-band offset byte and group ordinal, and reject a free
			// whose mask bit is already set (per-unit double-free
			// detection, stronger than the slab-level slTop check).
			stride := compactStride(size)
			rel := addr - base
			g, off := rel/stride, rel%stride
			if off < compactHdrBytes || (off-compactHdrBytes)%size != 0 {
				return false
			}
			i := (off - compactHdrBytes) / size
			if g*compactGroupUnits+i >= t.Load64(rec+slCapacity) {
				return false
			}
			hdr := base + g*stride
			if t.Load8(hdr+i) != compactIdxTag|i || t.Load64(hdr+compactHdrIdx) != g {
				return false
			}
			if t.Load64(rec+slMasks+g*8)&(uint64(1)<<i) != 0 {
				return false // unit already free: double free
			}
			a.stats.LiveBytes -= size
			a.freeClass(t, rec, class, addr)
			return true
		}
		off := addr - base
		if off%size != 0 || off/size >= t.Load64(rec+slCapacity) {
			return false
		}
		if t.Load64(rec+slTop) >= t.Load64(rec+slCapacity) {
			return false // slab already fully free: double free
		}
		a.stats.LiveBytes -= size
		a.freeClass(t, rec, class, addr)
		return true
	default:
		return false // free span or garbage class word
	}
}
