package gcheap

import "nextgenmalloc/internal/sim"

// Offloader runs collections on a dedicated core (the paper's §3.3.2
// proposal). Collection is still stop-the-world — the mutator blocks on
// a flag line — but all mark/sweep metadata traffic (bitmaps, worklist,
// free stacks, pagemap) hits the GC core's caches, so the mutator
// resumes with its own cache and TLB state intact apart from the object
// reference slots the marker had to read.
//
// Shared-line protocol (one line each, like the §4.2 prototype's flag
// variables):
//
//	page+0:  request sequence (mutator writes)
//	page+64: completion sequence (collector writes)
type Offloader struct {
	h    *Heap
	page uint64
	seq  uint64
	done uint64 // collector-side: last request acknowledged
}

// NewOffloader wires a heap to a GC core; t performs the flag-page mmap.
func NewOffloader(t *sim.Thread, h *Heap) *Offloader {
	return &Offloader{h: h, page: t.Mmap(1)}
}

// Request triggers a collection and blocks until it completes. The spin
// time is recorded as mutator pause.
func (o *Offloader) Request(t *sim.Thread) {
	start := t.Clock()
	o.seq++
	t.AtomicStore64(o.page, o.seq)
	for t.AtomicLoad64(o.page+64) != o.seq {
		t.Pause(16)
	}
	o.h.stats.PauseCycles += t.Clock() - start
}

// Serve is the GC core's daemon body: poll for requests, collect,
// acknowledge. It returns when the machine stops.
func (o *Offloader) Serve(t *sim.Thread) {
	for !t.Stopping() {
		if !o.Poll(t) {
			t.Pause(64)
		}
	}
}

// Poll services one pending collection request if any; it reports
// whether it did work. Exposed so a shared dedicated core can
// interleave GC with other service functions.
func (o *Offloader) Poll(t *sim.Thread) bool {
	req := t.AtomicLoad64(o.page)
	if req == o.done {
		return false
	}
	o.h.Collect(t)
	o.done = req
	t.AtomicStore64(o.page+64, o.done)
	return true
}

// CollectInline runs a collection on the mutator's own core, recording
// the pause (the baseline the offloaded mode is compared against).
func (h *Heap) CollectInline(t *sim.Thread) {
	start := t.Clock()
	h.Collect(t)
	h.stats.PauseCycles += t.Clock() - start
}
