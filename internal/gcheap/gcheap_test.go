package gcheap

import (
	"testing"

	"nextgenmalloc/internal/sim"
)

func withHeap(t *testing.T, roots int, fn func(th *sim.Thread, h *Heap)) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("mutator", 0, func(th *sim.Thread) {
		fn(th, New(th, roots))
	})
	m.Run()
}

func TestAllocAndReadWrite(t *testing.T) {
	withHeap(t, 4, func(th *sim.Thread, h *Heap) {
		a := h.Alloc(th, 2, 32)
		b := h.Alloc(th, 0, 16)
		h.WriteRef(th, a, 0, b)
		if h.ReadRef(th, a, 0) != b {
			t.Error("reference slot lost")
		}
		if h.ReadRef(th, a, 1) != 0 {
			t.Error("fresh slot not nil")
		}
		// Payload writes behind the ref slots.
		th.Store64(a+16, 0x77)
		if th.Load64(a+16) != 0x77 {
			t.Error("payload lost")
		}
	})
}

// TestCollectReclaimsGarbage: unreachable objects return to the free
// stacks; reachable ones survive.
func TestCollectReclaimsGarbage(t *testing.T) {
	withHeap(t, 2, func(th *sim.Thread, h *Heap) {
		// A linked list of 50 objects from root 0, plus 100 orphans.
		prev := uint64(0)
		for i := 0; i < 50; i++ {
			o := h.Alloc(th, 1, 16)
			h.WriteRef(th, o, 0, prev)
			prev = o
		}
		th.Store64(h.RootAddr(0), prev)
		for i := 0; i < 100; i++ {
			h.Alloc(th, 1, 16)
		}
		if live := h.LiveObjects(th); live != 150 {
			t.Fatalf("pre-GC live = %d, want 150", live)
		}
		swept := h.Collect(th)
		if swept != 100 {
			t.Errorf("swept %d, want 100", swept)
		}
		if live := h.LiveObjects(th); live != 50 {
			t.Errorf("post-GC live = %d, want 50", live)
		}
		// The list must still be intact.
		n := 0
		for o := th.Load64(h.RootAddr(0)); o != 0; o = h.ReadRef(th, o, 0) {
			n++
		}
		if n != 50 {
			t.Errorf("list length after GC = %d", n)
		}
	})
}

// TestCollectCycles: cyclic garbage is reclaimed (tracing, not
// refcounting).
func TestCollectCycles(t *testing.T) {
	withHeap(t, 1, func(th *sim.Thread, h *Heap) {
		a := h.Alloc(th, 1, 0)
		b := h.Alloc(th, 1, 0)
		h.WriteRef(th, a, 0, b)
		h.WriteRef(th, b, 0, a)
		// No root points at the cycle.
		if swept := h.Collect(th); swept != 2 {
			t.Errorf("cycle not reclaimed: swept %d", swept)
		}
	})
}

// TestReuseAfterSweep: swept slots satisfy new allocations without heap
// growth.
func TestReuseAfterSweep(t *testing.T) {
	withHeap(t, 1, func(th *sim.Thread, h *Heap) {
		seen := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			seen[h.Alloc(th, 0, 48)] = true
		}
		h.Collect(th) // everything is garbage
		reused := 0
		for i := 0; i < 200; i++ {
			if seen[h.Alloc(th, 0, 48)] {
				reused++
			}
		}
		if reused != 200 {
			t.Errorf("only %d/200 slots reused after sweep", reused)
		}
	})
}

// TestDeepGraphMarking: a deep chain exercises the worklist.
func TestDeepGraphMarking(t *testing.T) {
	withHeap(t, 1, func(th *sim.Thread, h *Heap) {
		prev := uint64(0)
		for i := 0; i < 5000; i++ {
			o := h.Alloc(th, 1, 0)
			h.WriteRef(th, o, 0, prev)
			prev = o
		}
		th.Store64(h.RootAddr(0), prev)
		if swept := h.Collect(th); swept != 0 {
			t.Errorf("live chain partially swept: %d", swept)
		}
		if h.Stats().ObjectsMarked != 5000 {
			t.Errorf("marked %d, want 5000", h.Stats().ObjectsMarked)
		}
	})
}

// TestSharedSlots: objects with many refs (wide nodes) trace fully.
func TestWideNodes(t *testing.T) {
	withHeap(t, 1, func(th *sim.Thread, h *Heap) {
		root := h.Alloc(th, 16, 0)
		kids := make([]uint64, 16)
		for i := range kids {
			kids[i] = h.Alloc(th, 0, 24)
			h.WriteRef(th, root, i, kids[i])
		}
		th.Store64(h.RootAddr(0), root)
		h.Alloc(th, 0, 24) // one orphan
		if swept := h.Collect(th); swept != 1 {
			t.Errorf("swept %d, want 1", swept)
		}
	})
}

// TestOffloadedCollectEquivalent: the offloaded collector reclaims the
// same garbage as the inline one and keeps the heap usable.
func TestOffloadedCollectEquivalent(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	var h *Heap
	var off *Offloader
	gcCore := m.Cores() - 1
	m.SpawnDaemon("gc", gcCore, func(th *sim.Thread) {
		for off == nil {
			if th.Stopping() {
				return
			}
			th.Pause(100)
		}
		off.Serve(th)
	})
	m.Spawn("mutator", 0, func(th *sim.Thread) {
		h = New(th, 1)
		off = NewOffloader(th, h)
		prev := uint64(0)
		for i := 0; i < 40; i++ {
			o := h.Alloc(th, 1, 16)
			h.WriteRef(th, o, 0, prev)
			prev = o
		}
		th.Store64(h.RootAddr(0), prev)
		for i := 0; i < 60; i++ {
			h.Alloc(th, 0, 16)
		}
		off.Request(th)
		if live := h.LiveObjects(th); live != 40 {
			t.Errorf("post-offloaded-GC live = %d, want 40", live)
		}
		if h.Stats().PauseCycles == 0 {
			t.Error("offloaded pause not recorded")
		}
		// The heap keeps working after an offloaded collection.
		p := h.Alloc(th, 0, 16)
		th.Store64(p+8, 5)
	})
	m.Run()
	if h.Stats().Collections != 1 {
		t.Errorf("collections = %d", h.Stats().Collections)
	}
}

// TestMultiSlabReuseAfterSweep: a shape spanning several slabs must
// rotate back onto swept slabs instead of growing the heap.
func TestMultiSlabReuseAfterSweep(t *testing.T) {
	withHeap(t, 1, func(th *sim.Thread, h *Heap) {
		// 600 objects of one shape: at least three 256-object slabs.
		for i := 0; i < 600; i++ {
			h.Alloc(th, 0, 48)
		}
		slabsBefore := len(h.slabs)
		h.Collect(th) // all garbage
		for round := 0; round < 4; round++ {
			for i := 0; i < 600; i++ {
				h.Alloc(th, 0, 48)
			}
			h.Collect(th)
		}
		if got := len(h.slabs); got != slabsBefore {
			t.Errorf("heap grew from %d to %d slabs across sweeps", slabsBefore, got)
		}
	})
}
