// Package gcheap is a managed heap with a tracing, non-moving
// mark-sweep collector whose collection work can run either on the
// mutator's core or on the dedicated allocator core — the paper's
// §3.3.2 extension ("Research opportunities for using NextGen-Malloc to
// process garbage collection"), in the lineage of the Maas et al. GC
// accelerator it cites [19].
//
// The design reuses NextGen-Malloc's segregated-metadata idea: object
// allocation state (free-index stacks) and GC state (mark bitmaps,
// worklists) live in the dedicated metadata region, so a collection
// performed on another core leaves the mutator's metadata working set
// untouched; only the unavoidable reads of object reference slots touch
// user pages.
//
// Object model: an object is numRefs reference slots (8 bytes each)
// followed by raw payload; the mutator declares numRefs at allocation
// and the runtime records it in slab metadata (not in the object — user
// pages stay metadata-free). References are written through WriteRef so
// the heap stays well-formed; there are no write barriers because
// collection is stop-the-world.
package gcheap

import (
	"fmt"

	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/sim"
)

// Slab metadata record offsets (metadata region). Each slab holds
// objects of one shape (slot count); the free stack and mark bitmap sit
// behind the fixed fields.
const (
	slNext     = 0
	slPrev     = 8
	slBase     = 16
	slPages    = 24
	slObjBytes = 32
	slNumRefs  = 40
	slTop      = 48 // free-stack depth
	slCapacity = 56
	slStack    = 64                 // 256 * 2-byte indices
	slMarks    = slStack + 2*256    // 4 words of mark bits
	slAlloc    = slMarks + 8*4      // 4 words of allocated bits
	slRecBytes = slAlloc + 8*4 + 32 // rounded to a line multiple below
)

// recStride is slRecBytes rounded up to a cache-line multiple.
const recStride = (slRecBytes + 63) &^ 63

const maxObjsPerSlab = 256

// Stats summarizes collector activity.
type Stats struct {
	Collections   uint64
	ObjectsMarked uint64
	ObjectsSwept  uint64
	PauseCycles   uint64 // mutator cycles spent stopped, total
	AllocCalls    uint64
}

// Heap is a single-mutator managed heap.
type Heap struct {
	// shapes: one slab chain per (objBytes, numRefs) shape, keyed
	// host-side; slabs and stacks live in simulated metadata memory.
	shapes map[shape]*shapeState

	pagemapRoot uint64
	metaBase    uint64
	metaOff     uint64
	metaLimit   uint64

	roots    uint64 // sim array of root slots
	numRoots int

	slabs []uint64 // every slab record (host index for sweep walks)

	// worklist is the mark stack (metadata region).
	worklist uint64
	wlCap    int

	stats Stats

	// threshold: collect when live+fresh allocations exceed this many
	// objects since the last collection.
	allocsSinceGC int
	TriggerEvery  int
}

type shape struct {
	objBytes uint64
	numRefs  int
}

type shapeState struct {
	cur uint64   // current slab record
	all []uint64 // every slab of this shape (rotation after sweeps)
}

// New builds a heap; t performs the initial mmaps. numRoots is the size
// of the root set array.
func New(t *sim.Thread, numRoots int) *Heap {
	h := &Heap{
		shapes:       make(map[shape]*shapeState),
		numRoots:     numRoots,
		wlCap:        1 << 16,
		TriggerEvery: 8192,
	}
	h.pagemapRoot = t.MmapMeta(16)
	h.roots = t.Mmap((numRoots*8 + 4095) >> 12)
	h.worklist = t.MmapMeta((h.wlCap*8 + 4095) >> 12)
	h.growMeta(t)
	return h
}

// Stats returns collector statistics.
func (h *Heap) Stats() Stats { return h.stats }

func (h *Heap) growMeta(t *sim.Thread) {
	h.metaBase = t.MmapMeta(64)
	h.metaOff = 0
	h.metaLimit = 64 << mem.PageShift
}

func (h *Heap) newRec(t *sim.Thread) uint64 {
	if h.metaOff+recStride > h.metaLimit {
		h.growMeta(t)
	}
	r := h.metaBase + h.metaOff
	h.metaOff += recStride
	return r
}

// --- pagemap (object address -> slab record) ---------------------------

func (h *Heap) pagemapSet(t *sim.Thread, vaddr, rec uint64) {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leafSlot := h.pagemapRoot + (rel>>9)*8
	leaf := t.Load64(leafSlot)
	if leaf == 0 {
		leaf = t.MmapMeta(1)
		t.Store64(leafSlot, leaf)
	}
	t.Store64(leaf+(rel&511)*8, rec)
}

func (h *Heap) pagemapGet(t *sim.Thread, vaddr uint64) uint64 {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leaf := t.Load64(h.pagemapRoot + (rel>>9)*8)
	if leaf == 0 {
		return 0
	}
	return t.Load64(leaf + (rel&511)*8)
}

// --- allocation ----------------------------------------------------------

// RootAddr returns the simulated address of root slot i (the mutator
// reads and writes roots directly; they are ordinary program data).
func (h *Heap) RootAddr(i int) uint64 {
	if i < 0 || i >= h.numRoots {
		panic(fmt.Sprintf("gcheap: root %d out of range", i))
	}
	return h.roots + uint64(i)*8
}

// objectSize returns the gross object size for a shape.
func objectSize(numRefs int, payload uint64) uint64 {
	sz := uint64(numRefs)*8 + payload
	if sz < 16 {
		sz = 16
	}
	return (sz + 15) &^ 15
}

// newSlab carves a slab for a shape.
func (h *Heap) newSlab(t *sim.Thread, sh shape) uint64 {
	objBytes := sh.objBytes
	pages := int((objBytes*maxObjsPerSlab + mem.PageSize - 1) >> mem.PageShift)
	if pages > 16 {
		pages = 16
	}
	n := int(uint64(pages) << mem.PageShift / objBytes)
	if n > maxObjsPerSlab {
		n = maxObjsPerSlab
	}
	base := t.MmapHuge(pages)
	rec := h.newRec(t)
	t.Store64(rec+slBase, base)
	t.Store64(rec+slPages, uint64(pages))
	t.Store64(rec+slObjBytes, objBytes)
	t.Store64(rec+slNumRefs, uint64(sh.numRefs))
	t.Store64(rec+slCapacity, uint64(n))
	for i := 0; i < n; i += 4 {
		var w uint64
		for j := 0; j < 4 && i+j < n; j++ {
			w |= uint64(i+j) << (16 * j)
		}
		t.Store64(rec+slStack+uint64(i)*2, w)
	}
	t.Store64(rec+slTop, uint64(n))
	for wd := uint64(0); wd < 4; wd++ {
		t.Store64(rec+slMarks+wd*8, 0)
		t.Store64(rec+slAlloc+wd*8, 0)
	}
	for i := uint64(0); i < uint64(pages); i++ {
		h.pagemapSet(t, base+i<<mem.PageShift, rec)
	}
	h.slabs = append(h.slabs, rec)
	h.shapes[sh].all = append(h.shapes[sh].all, rec)
	return rec
}

// Alloc allocates an object with numRefs reference slots and payload
// bytes of raw data. Reference slots start nil. Collection policy is
// the caller's: poll NeedsCollect and run CollectInline or
// Offloader.Request at safepoints.
func (h *Heap) Alloc(t *sim.Thread, numRefs int, payload uint64) uint64 {
	h.stats.AllocCalls++
	h.allocsSinceGC++
	t.Exec(4)
	sh := shape{objBytes: objectSize(numRefs, payload), numRefs: numRefs}
	st := h.shapes[sh]
	if st == nil {
		st = &shapeState{}
		h.shapes[sh] = st
	}
	for {
		if st.cur != 0 {
			top := t.Load64(st.cur + slTop)
			if top > 0 {
				t.Store64(st.cur+slTop, top-1)
				idx := t.Load16(st.cur + slStack + (top-1)*2)
				// Allocated bit: the sweep walks this, not the object.
				w := idx / 64
				bits := t.Load64(st.cur + slAlloc + w*8)
				t.Store64(st.cur+slAlloc+w*8, bits|uint64(1)<<(idx%64))
				base := t.Load64(st.cur + slBase)
				obj := base + idx*sh.objBytes
				// Clear the reference slots (the runtime's contract).
				for r := 0; r < numRefs; r++ {
					t.Store64(obj+uint64(r)*8, 0)
				}
				return obj
			}
		}
		// Rotate to another slab of this shape that a sweep refilled.
		st.cur = 0
		for _, r := range st.all {
			t.Exec(1)
			if t.Load64(r+slTop) > 0 {
				st.cur = r
				break
			}
		}
		if st.cur == 0 {
			st.cur = h.newSlab(t, sh)
		}
	}
}

// WriteRef stores a reference into an object's slot.
func (h *Heap) WriteRef(t *sim.Thread, obj uint64, slot int, target uint64) {
	t.Store64(obj+uint64(slot)*8, target)
}

// ReadRef loads a reference slot.
func (h *Heap) ReadRef(t *sim.Thread, obj uint64, slot int) uint64 {
	return t.Load64(obj + uint64(slot)*8)
}

// NeedsCollect reports whether the allocation budget is exhausted.
func (h *Heap) NeedsCollect() bool { return h.allocsSinceGC >= h.TriggerEvery }

// --- collection ------------------------------------------------------------

// markObject sets the object's mark bit; reports whether it was new.
func (h *Heap) markObject(t *sim.Thread, obj uint64) (rec uint64, idx uint64, fresh bool) {
	rec = h.pagemapGet(t, obj)
	if rec == 0 {
		panic(fmt.Sprintf("gcheap: reference %#x outside the heap", obj))
	}
	base := t.Load64(rec + slBase)
	t.Exec(3)
	idx = (obj - base) / t.Load64(rec+slObjBytes)
	w := idx / 64
	bits := t.Load64(rec + slMarks + w*8)
	bit := uint64(1) << (idx % 64)
	if bits&bit != 0 {
		return rec, idx, false
	}
	t.Store64(rec+slMarks+w*8, bits|bit)
	return rec, idx, true
}

// Collect runs a full stop-the-world mark-sweep on thread t — the
// mutator itself in inline mode, or the dedicated core's thread when
// offloaded (see Offloader). Returns objects swept.
func (h *Heap) Collect(t *sim.Thread) uint64 {
	h.stats.Collections++
	h.allocsSinceGC = 0
	// Mark phase: roots, then transitive closure via the worklist.
	wl := 0
	push := func(obj uint64) {
		if _, _, fresh := h.markObject(t, obj); fresh {
			if wl >= h.wlCap {
				panic("gcheap: mark worklist overflow")
			}
			t.Store64(h.worklist+uint64(wl)*8, obj)
			wl++
			h.stats.ObjectsMarked++
		}
	}
	for i := 0; i < h.numRoots; i++ {
		if obj := t.Load64(h.RootAddr(i)); obj != 0 {
			push(obj)
		}
	}
	for wl > 0 {
		wl--
		obj := t.Load64(h.worklist + uint64(wl)*8)
		rec := h.pagemapGet(t, obj)
		numRefs := int(t.Load64(rec + slNumRefs))
		for r := 0; r < numRefs; r++ {
			if ref := t.Load64(obj + uint64(r)*8); ref != 0 {
				push(ref)
			}
		}
	}
	// Sweep phase: every allocated-but-unmarked object returns to its
	// slab's free stack; mark and allocated bitmaps reset.
	var swept uint64
	for _, rec := range h.slabs {
		capacity := t.Load64(rec + slCapacity)
		top := t.Load64(rec + slTop)
		for w := uint64(0); w*64 < capacity; w++ {
			allocBits := t.Load64(rec + slAlloc + w*8)
			markBits := t.Load64(rec + slMarks + w*8)
			dead := allocBits &^ markBits
			for dead != 0 {
				t.Exec(2)
				bit := dead & -dead
				idx := w * 64
				for m := bit; m > 1; m >>= 1 {
					idx++
				}
				t.Store16(rec+slStack+top*2, idx)
				top++
				swept++
				dead &^= bit
			}
			t.Store64(rec+slAlloc+w*8, markBits) // survivors stay allocated
			t.Store64(rec+slMarks+w*8, 0)
		}
		t.Store64(rec+slTop, top)
	}
	h.stats.ObjectsSwept += swept
	return swept
}

// LiveObjects reports the allocated-object count (test hook; walks the
// allocated bitmaps).
func (h *Heap) LiveObjects(t *sim.Thread) uint64 {
	var live uint64
	for _, rec := range h.slabs {
		capacity := t.Load64(rec + slCapacity)
		for w := uint64(0); w*64 < capacity; w++ {
			bits := t.Load64(rec + slAlloc + w*8)
			for ; bits != 0; bits &= bits - 1 {
				live++
			}
		}
	}
	return live
}
