// Package ring implements single-producer single-consumer descriptor
// rings in simulated shared memory — the transport NextGen-Malloc uses
// between an application core and the dedicated allocator core.
//
// The layout is deliberately cache-conscious: the producer index, the
// consumer index, and the slot array live on separate cache lines, so
// the coherence traffic the simulator observes is exactly the line
// ping-pong a real cross-core ring would generate (the overhead the
// paper's §3.1.1 weighs against the pollution savings). Each side keeps
// a shadow copy of the opposite index (the standard SPSC optimization),
// so the common push touches only the slot line and the tail line, and
// an empty poll costs a single load that stays cached until the
// producer actually publishes.
package ring

import (
	"fmt"
	"math/bits"

	"nextgenmalloc/internal/sim"
)

// Stats are host-side ring telemetry (observation-only: collecting them
// issues no simulated memory traffic). Occupancy is a histogram of the
// ring depth observed by the producer after each successful push, in
// log2 buckets: bucket 0 is unused, bucket b counts depths in
// [2^(b-1), 2^b). The deepest shipped ring (1024 slots) lands in
// bucket 11.
type Stats struct {
	Pushes      uint64
	Pops        uint64
	FullRetries uint64 // push attempts that found the ring full
	StallCycles uint64 // producer cycles spent spinning in Push
	Occupancy   [12]uint64
}

// Add accumulates o into s (for merging per-ring stats).
func (s *Stats) Add(o Stats) {
	s.Pushes += o.Pushes
	s.Pops += o.Pops
	s.FullRetries += o.FullRetries
	s.StallCycles += o.StallCycles
	for i := range s.Occupancy {
		s.Occupancy[i] += o.Occupancy[i]
	}
}

// SlotSize is the byte size of one ring slot: two 8-byte words
// (operation descriptor and payload), mirroring the request_size /
// response_addr pair of the paper's §4.2 prototype.
const SlotSize = 16

// headerSize is head line + tail line.
const headerSize = 2 * sim.LineSize

// SPSC is a single-producer single-consumer ring of 16-byte slots.
//
// Word layout:
//
//	base + 0:          head (consumer index), own line
//	base + 64:         tail (producer index), own line
//	base + 128 + 16*i: slot i {word0, word1}
//
// The shadow fields model the index copies a real implementation keeps
// in registers or producer/consumer-private lines.
type SPSC struct {
	base uint64
	mask uint64
	size uint64

	prodTail   uint64 // producer's private tail mirror
	shadowHead uint64 // producer's last-read consumer index
	consHead   uint64 // consumer's private head mirror
	shadowTail uint64 // consumer's last-read producer index

	stats Stats
}

// Stats returns a copy of the ring's telemetry counters.
func (r *SPSC) Stats() Stats { return r.stats }

// BytesFor returns the mapped bytes needed for a ring with the given
// slot count.
func BytesFor(slots int) int {
	return headerSize + slots*SlotSize
}

// New places a ring over zeroed simulated memory at base. slots must be
// a power of two.
func New(base uint64, slots int) *SPSC {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic(fmt.Sprintf("ring: slot count %d is not a power of two", slots))
	}
	if base%sim.LineSize != 0 {
		panic("ring: base must be cache-line aligned")
	}
	return &SPSC{base: base, mask: uint64(slots - 1), size: uint64(slots)}
}

func (r *SPSC) headAddr() uint64         { return r.base }
func (r *SPSC) tailAddr() uint64         { return r.base + sim.LineSize }
func (r *SPSC) slotAddr(i uint64) uint64 { return r.base + headerSize + (i&r.mask)*SlotSize }

// TryPush publishes (w0, w1) if the ring has space; it returns false
// when full. Producer-side only.
func (r *SPSC) TryPush(t *sim.Thread, w0, w1 uint64) bool {
	if r.prodTail-r.shadowHead >= r.size {
		// Looks full: refresh the consumer index.
		r.shadowHead = t.AtomicLoad64(r.headAddr())
		if r.prodTail-r.shadowHead >= r.size {
			r.stats.FullRetries++
			return false
		}
	}
	slot := r.slotAddr(r.prodTail)
	t.Store64(slot, w0)
	t.Store64(slot+8, w1)
	// Publish with a release store of the new tail.
	r.prodTail++
	t.AtomicStore64(r.tailAddr(), r.prodTail)
	r.stats.Pushes++
	if b := bits.Len64(r.prodTail - r.shadowHead); b < len(r.stats.Occupancy) {
		r.stats.Occupancy[b]++
	} else {
		r.stats.Occupancy[len(r.stats.Occupancy)-1]++
	}
	return true
}

// Push spins until the push succeeds, accounting the cycles spent
// waiting for ring space as producer stall time.
func (r *SPSC) Push(t *sim.Thread, w0, w1 uint64) {
	if r.TryPush(t, w0, w1) {
		return
	}
	start := t.Clock()
	for {
		t.Pause(32)
		if r.TryPush(t, w0, w1) {
			r.stats.StallCycles += t.Clock() - start
			return
		}
	}
}

// TryPop consumes one slot; ok is false when the ring is empty.
// Consumer-side only.
func (r *SPSC) TryPop(t *sim.Thread) (w0, w1 uint64, ok bool) {
	if r.consHead == r.shadowTail {
		r.shadowTail = t.AtomicLoad64(r.tailAddr())
		if r.consHead == r.shadowTail {
			return 0, 0, false
		}
	}
	slot := r.slotAddr(r.consHead)
	w0 = t.Load64(slot)
	w1 = t.Load64(slot + 8)
	r.consHead++
	t.AtomicStore64(r.headAddr(), r.consHead)
	r.stats.Pops++
	return w0, w1, true
}

// Len returns the occupancy as seen by the consumer.
func (r *SPSC) Len(t *sim.Thread) int {
	return int(t.AtomicLoad64(r.tailAddr()) - r.consHead)
}
