// Package ring implements single-producer single-consumer descriptor
// rings in simulated shared memory — the transport NextGen-Malloc uses
// between an application core and the dedicated allocator core.
//
// The layout is deliberately cache-conscious: the producer index, the
// consumer index, and the slot array live on separate cache lines, so
// the coherence traffic the simulator observes is exactly the line
// ping-pong a real cross-core ring would generate (the overhead the
// paper's §3.1.1 weighs against the pollution savings). Each side keeps
// a shadow copy of the opposite index (the standard SPSC optimization),
// so the common push touches only the slot line and the tail line, and
// an empty poll costs a single load that stays cached until the
// producer actually publishes.
//
// Because sim.LineSize/SlotSize slots share one cache line, a producer
// can amortize the tail-line transfer across several requests: Stage
// writes slots without publishing, Publish makes the whole batch
// visible with one tail store, and PushN/PopN are the vectored
// wrappers (the batched-request opportunity of the paper's §3.3).
// TryPush/TryPop remain the unbatched one-request path and are
// cycle-identical to the pre-batching transport.
package ring

import (
	"fmt"
	"math/bits"

	"nextgenmalloc/internal/sim"
)

// Stats are host-side ring telemetry (observation-only: collecting them
// issues no simulated memory traffic). Occupancy is a histogram of the
// ring depth observed by the producer after each successful push, in
// log2 buckets: bucket 0 is unused, bucket b counts depths in
// [2^(b-1), 2^b). The deepest shipped ring (1024 slots) lands in
// bucket 11.
type Stats struct {
	Pushes      uint64
	Pops        uint64
	PushBatches uint64 // tail publications (Pushes/PushBatches = avg batch width)
	PopBatches  uint64 // head publications (Pops/PopBatches = avg drain width)
	FullRetries uint64 // push attempts that found the ring full
	StallCycles uint64 // producer cycles spent spinning in Push/Stage
	Occupancy   [12]uint64
}

// Add accumulates o into s (for merging per-ring stats).
func (s *Stats) Add(o Stats) {
	s.Pushes += o.Pushes
	s.Pops += o.Pops
	s.PushBatches += o.PushBatches
	s.PopBatches += o.PopBatches
	s.FullRetries += o.FullRetries
	s.StallCycles += o.StallCycles
	for i := range s.Occupancy {
		s.Occupancy[i] += o.Occupancy[i]
	}
}

// SlotSize is the byte size of one ring slot: two 8-byte words
// (operation descriptor and payload), mirroring the request_size /
// response_addr pair of the paper's §4.2 prototype.
const SlotSize = 16

// headerSize is head line + tail line.
const headerSize = 2 * sim.LineSize

// SPSC is a single-producer single-consumer ring of 16-byte slots.
//
// Word layout:
//
//	base + 0:          head (consumer index), own line
//	base + 64:         tail (producer index), own line
//	base + 128 + 16*i: slot i {word0, word1}
//
// The shadow fields model the index copies a real implementation keeps
// in registers or producer/consumer-private lines.
type SPSC struct {
	base uint64
	mask uint64
	size uint64

	prodTail   uint64 // producer's private tail mirror
	staged     uint64 // slots written past prodTail but not yet published
	shadowHead uint64 // producer's last-read consumer index
	consHead   uint64 // consumer's private head mirror
	shadowTail uint64 // consumer's last-read producer index

	// pubTail is the tail value actually delivered to the consumer's
	// line. It trails prodTail only while a fault-injected doorbell drop
	// is outstanding; Republish (or the next surviving Publish) catches
	// it up.
	pubTail uint64
	// dropHook, when set, is consulted on each tail publication;
	// returning true suppresses the tail store (a lost doorbell).
	dropHook func() bool

	stats Stats

	// stamps, when enabled, records the producer clock at stage time for
	// each slot, indexed like the slot array. Host-side only: reading or
	// writing a stamp issues no simulated traffic, so enabling them
	// cannot perturb counters (the latency spans built from them are
	// pure observation).
	stamps []uint64
}

// Stats returns a copy of the ring's telemetry counters.
func (r *SPSC) Stats() Stats { return r.stats }

// EnableStamps turns on host-side enqueue-cycle stamping: every slot
// staged afterwards remembers the producer clock at stage time, which
// the consumer reads back through PoppedStamp/PoppedStamps to build
// offload latency spans. Zero simulated cost.
func (r *SPSC) EnableStamps() {
	if r.stamps == nil {
		r.stamps = make([]uint64, r.size)
	}
}

// PoppedStamp returns the enqueue stamp of the slot most recently
// consumed by TryPop (0 when stamping is disabled).
func (r *SPSC) PoppedStamp() uint64 {
	if r.stamps == nil {
		return 0
	}
	return r.stamps[(r.consHead-1)&r.mask]
}

// PoppedStamps fills out with the enqueue stamps of the last k slots
// consumed (oldest first), matching a PopN that returned k. A no-op
// when stamping is disabled.
func (r *SPSC) PoppedStamps(k int, out []uint64) {
	if r.stamps == nil {
		return
	}
	for i := 0; i < k; i++ {
		out[i] = r.stamps[(r.consHead-uint64(k-i))&r.mask]
	}
}

// HostDepth returns the ring occupancy visible to the host (published
// plus staged slots), without issuing simulated traffic — the gauge the
// timeline sampler reads. Compare Len, which models a real consumer
// probe and costs a simulated atomic load.
func (r *SPSC) HostDepth() int {
	return int(r.prodTail + r.staged - r.consHead)
}

// BytesFor returns the mapped bytes needed for a ring with the given
// slot count.
func BytesFor(slots int) int {
	return headerSize + slots*SlotSize
}

// New places a ring over zeroed simulated memory at base. slots must be
// a power of two.
func New(base uint64, slots int) *SPSC {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic(fmt.Sprintf("ring: slot count %d is not a power of two", slots))
	}
	if base%sim.LineSize != 0 {
		panic("ring: base must be cache-line aligned")
	}
	return &SPSC{base: base, mask: uint64(slots - 1), size: uint64(slots)}
}

func (r *SPSC) headAddr() uint64         { return r.base }
func (r *SPSC) tailAddr() uint64         { return r.base + sim.LineSize }
func (r *SPSC) slotAddr(i uint64) uint64 { return r.base + headerSize + (i&r.mask)*SlotSize }

// TailAddr exposes the producer tail word's address — the word an empty
// TryPop/PopN reloads — so the consumer can declare its idle-poll load
// sequence to the scheduler's time-warp detector (sim.WaitSpec.Addrs).
func (r *SPSC) TailAddr() uint64 { return r.tailAddr() }

// TryStage writes (w0, w1) into the next free slot without publishing
// it; it returns false when the ring (counting earlier staged slots) is
// full. Staged slots stay invisible to the consumer until Publish, so a
// producer can coalesce several requests — consecutive slots share a
// cache line (sim.LineSize/SlotSize per line) — and pay for a single
// tail-line transfer. Producer-side only.
func (r *SPSC) TryStage(t *sim.Thread, w0, w1 uint64) bool {
	if r.prodTail+r.staged-r.shadowHead >= r.size {
		// Looks full: refresh the consumer index.
		r.shadowHead = t.AtomicLoad64(r.headAddr())
		if r.prodTail+r.staged-r.shadowHead >= r.size {
			r.stats.FullRetries++
			return false
		}
	}
	slot := r.slotAddr(r.prodTail + r.staged)
	t.Store64(slot, w0)
	t.Store64(slot+8, w1)
	if r.stamps != nil {
		r.stamps[(r.prodTail+r.staged)&r.mask] = t.Clock()
	}
	r.staged++
	return true
}

// Staged reports how many slots are written but not yet published.
func (r *SPSC) Staged() int { return int(r.staged) }

// SetDropHook installs a fault-injection hook consulted on every tail
// publication; returning true loses that doorbell (the slot words are
// written, but the consumer keeps seeing the old tail until a later
// publication or Republish delivers it). Nil disarms. Test/injection
// use only — with no hook the transport is byte-identical to the seed.
func (r *SPSC) SetDropHook(fn func() bool) { r.dropHook = fn }

// Republish re-rings the doorbell: an unconditional release store of
// the producer's true tail, recovering any publication a drop hook
// suppressed. The retry path's store is deliberately not droppable —
// it models a synchronous re-ring, not a fire-and-forget doorbell.
// Producer-side state; the shutdown drain may also call it to surface
// hidden slots before the final pops.
func (r *SPSC) Republish(t *sim.Thread) {
	r.pubTail = r.prodTail
	t.AtomicStore64(r.tailAddr(), r.prodTail)
}

// Dropped reports whether a suppressed doorbell is outstanding (the
// consumer's tail line is stale). Host-side observation only.
func (r *SPSC) Dropped() bool { return r.pubTail != r.prodTail }

// Publish makes every staged slot visible with one release store of the
// new tail. A no-op (no simulated traffic) when nothing is staged.
func (r *SPSC) Publish(t *sim.Thread) {
	if r.staged == 0 {
		return
	}
	k := r.staged
	r.staged = 0
	r.prodTail += k
	if r.dropHook != nil && r.dropHook() {
		// Doorbell lost: the producer still pays the store (it executed
		// the instruction), but the line delivers the stale tail.
		t.AtomicStore64(r.tailAddr(), r.pubTail)
	} else {
		r.pubTail = r.prodTail
		t.AtomicStore64(r.tailAddr(), r.prodTail)
	}
	r.stats.Pushes += k
	r.stats.PushBatches++
	// The histogram counts per request (its sum stays equal to Pushes):
	// all k requests of this batch observed the same post-publish depth.
	if b := bits.Len64(r.prodTail - r.shadowHead); b < len(r.stats.Occupancy) {
		r.stats.Occupancy[b] += k
	} else {
		r.stats.Occupancy[len(r.stats.Occupancy)-1] += k
	}
}

// Stage spins until the slot is staged, publishing any staged backlog
// first so the consumer can drain while the producer waits. Cycles spent
// waiting for ring space are accounted as producer stall time.
func (r *SPSC) Stage(t *sim.Thread, w0, w1 uint64) {
	if r.TryStage(t, w0, w1) {
		return
	}
	r.Publish(t)
	start := t.Clock()
	for {
		t.Pause(32)
		if r.TryStage(t, w0, w1) {
			r.stats.StallCycles += t.Clock() - start
			return
		}
	}
}

// TryPush publishes (w0, w1) if the ring has space; it returns false
// when full. Any previously staged slots are published along with it.
// Producer-side only.
func (r *SPSC) TryPush(t *sim.Thread, w0, w1 uint64) bool {
	if !r.TryStage(t, w0, w1) {
		return false
	}
	r.Publish(t)
	return true
}

// Push spins until the push succeeds, accounting the cycles spent
// waiting for ring space as producer stall time.
func (r *SPSC) Push(t *sim.Thread, w0, w1 uint64) {
	if r.TryPush(t, w0, w1) {
		return
	}
	start := t.Clock()
	for {
		t.Pause(32)
		if r.TryPush(t, w0, w1) {
			r.stats.StallCycles += t.Clock() - start
			return
		}
	}
}

// PushN stages every request and publishes them with a single tail
// store (spinning for space as needed, like Push).
func (r *SPSC) PushN(t *sim.Thread, reqs [][2]uint64) {
	for _, q := range reqs {
		r.Stage(t, q[0], q[1])
	}
	r.Publish(t)
}

// TryPop consumes one slot; ok is false when the ring is empty.
// Consumer-side only.
func (r *SPSC) TryPop(t *sim.Thread) (w0, w1 uint64, ok bool) {
	if r.consHead == r.shadowTail {
		r.shadowTail = t.AtomicLoad64(r.tailAddr())
		if r.consHead == r.shadowTail {
			return 0, 0, false
		}
	}
	slot := r.slotAddr(r.consHead)
	w0 = t.Load64(slot)
	w1 = t.Load64(slot + 8)
	r.consHead++
	t.AtomicStore64(r.headAddr(), r.consHead)
	r.stats.Pops++
	r.stats.PopBatches++
	return w0, w1, true
}

// PopN consumes up to len(buf) slots, publishing the consumer index
// once for the whole batch — the consumer-side mirror of Stage/Publish.
// It returns the number of requests popped (0 when the ring is empty).
func (r *SPSC) PopN(t *sim.Thread, buf [][2]uint64) int {
	if len(buf) == 0 {
		return 0
	}
	if r.consHead == r.shadowTail {
		r.shadowTail = t.AtomicLoad64(r.tailAddr())
		if r.consHead == r.shadowTail {
			return 0
		}
	}
	k := uint64(len(buf))
	if avail := r.shadowTail - r.consHead; avail < k {
		k = avail
	}
	for i := uint64(0); i < k; i++ {
		slot := r.slotAddr(r.consHead + i)
		buf[i][0] = t.Load64(slot)
		buf[i][1] = t.Load64(slot + 8)
	}
	r.consHead += k
	t.AtomicStore64(r.headAddr(), r.consHead)
	r.stats.Pops += k
	r.stats.PopBatches++
	return int(k)
}

// Len returns the occupancy as seen by the consumer.
func (r *SPSC) Len(t *sim.Thread) int {
	return int(t.AtomicLoad64(r.tailAddr()) - r.consHead)
}
