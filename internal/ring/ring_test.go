package ring

import (
	"testing"
	"testing/quick"

	"nextgenmalloc/internal/sim"
)

func withThread(t *testing.T, fn func(th *sim.Thread)) {
	m := sim.New(sim.DefaultConfig())
	m.Spawn("t", 0, fn)
	m.Run()
}

func TestFIFO(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		for i := uint64(0); i < 5; i++ {
			if !r.TryPush(th, i, i*10) {
				t.Fatalf("push %d failed", i)
			}
		}
		for i := uint64(0); i < 5; i++ {
			w0, w1, ok := r.TryPop(th)
			if !ok || w0 != i || w1 != i*10 {
				t.Fatalf("pop %d = (%d,%d,%v)", i, w0, w1, ok)
			}
		}
		if _, _, ok := r.TryPop(th); ok {
			t.Error("pop on empty ring succeeded")
		}
	})
}

func TestFullness(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for i := uint64(0); i < 4; i++ {
			if !r.TryPush(th, i, 0) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(th, 99, 0) {
			t.Error("push on full ring succeeded")
		}
		r.TryPop(th)
		if !r.TryPush(th, 4, 0) {
			t.Error("push after pop failed")
		}
	})
}

func TestWraparound(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for round := uint64(0); round < 40; round++ {
			if !r.TryPush(th, round, round^0xff) {
				t.Fatalf("push %d failed", round)
			}
			w0, w1, ok := r.TryPop(th)
			if !ok || w0 != round || w1 != round^0xff {
				t.Fatalf("round %d: got (%d,%d,%v)", round, w0, w1, ok)
			}
		}
	})
}

// TestQuickModelEquivalence: the ring behaves exactly like a bounded
// FIFO queue for any sequence of pushes and pops.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []bool, vals []uint16) bool {
		ok := true
		withThread(t, func(th *sim.Thread) {
			r := New(th.Mmap(1), 8)
			var model []uint64
			vi := 0
			for _, isPush := range ops {
				if isPush {
					v := uint64(0)
					if vi < len(vals) {
						v = uint64(vals[vi])
						vi++
					}
					pushed := r.TryPush(th, v, v+1)
					if pushed != (len(model) < 8) {
						ok = false
						return
					}
					if pushed {
						model = append(model, v)
					}
				} else {
					w0, _, popped := r.TryPop(th)
					if popped != (len(model) > 0) {
						ok = false
						return
					}
					if popped {
						if w0 != model[0] {
							ok = false
							return
						}
						model = model[1:]
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCrossCore: producer on one core, consumer on another, all values
// arrive in order.
func TestCrossCore(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	page, _ := m.Kernel().Mmap(1)
	prod := New(page, 16)
	cons := New(page, 16) // separate shadow state, same memory
	const n = 2000
	m.Spawn("producer", 0, func(th *sim.Thread) {
		for i := uint64(1); i <= n; i++ {
			prod.Push(th, i, i*3)
		}
	})
	bad := false
	m.Spawn("consumer", 1, func(th *sim.Thread) {
		for want := uint64(1); want <= n; {
			w0, w1, ok := cons.TryPop(th)
			if !ok {
				th.Pause(32)
				continue
			}
			if w0 != want || w1 != want*3 {
				bad = true
				return
			}
			want++
		}
	})
	m.Run()
	if bad {
		t.Error("cross-core ring delivered out-of-order or corrupt data")
	}
}

func TestBadSlotCountPanics(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-power-of-two slots")
			}
		}()
		New(th.Mmap(1), 6)
	})
}

func TestStatsTelemetry(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for i := uint64(0); i < 4; i++ {
			if !r.TryPush(th, i, 0) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(th, 99, 0) {
			t.Fatal("push on full ring succeeded")
		}
		r.TryPop(th)
		r.TryPush(th, 4, 0)
		s := r.Stats()
		if s.Pushes != 5 || s.Pops != 1 || s.FullRetries != 1 {
			t.Errorf("stats = %+v, want 5 pushes, 1 pop, 1 full retry", s)
		}
		var occ uint64
		for _, b := range s.Occupancy {
			occ += b
		}
		if occ != s.Pushes {
			t.Errorf("occupancy histogram sums to %d, want %d", occ, s.Pushes)
		}
	})
}

func TestPushStallCycles(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	var stats Stats
	base := make(chan uint64, 1)
	m.Spawn("producer", 0, func(th *sim.Thread) {
		r := New(th.Mmap(1), 2)
		base <- r.base
		r.TryPush(th, 1, 0)
		r.TryPush(th, 2, 0)
		// Ring full: this Push must spin until the consumer drains.
		r.Push(th, 3, 0)
		stats = r.Stats()
	})
	m.Spawn("consumer", 1, func(th *sim.Thread) {
		b := <-base
		r := New(b, 2)
		th.Pause(5000)
		for popped := 0; popped < 3; {
			if _, _, ok := r.TryPop(th); ok {
				popped++
			} else {
				th.Pause(50)
			}
		}
	})
	m.Run()
	if stats.StallCycles == 0 {
		t.Error("full-ring Push recorded no stall cycles")
	}
	if stats.FullRetries == 0 {
		t.Error("full-ring Push recorded no full retries")
	}
}
