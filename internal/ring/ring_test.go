package ring

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"nextgenmalloc/internal/sim"
)

func withThread(t *testing.T, fn func(th *sim.Thread)) {
	m := sim.New(sim.DefaultConfig())
	m.Spawn("t", 0, fn)
	m.Run()
}

func TestFIFO(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		for i := uint64(0); i < 5; i++ {
			if !r.TryPush(th, i, i*10) {
				t.Fatalf("push %d failed", i)
			}
		}
		for i := uint64(0); i < 5; i++ {
			w0, w1, ok := r.TryPop(th)
			if !ok || w0 != i || w1 != i*10 {
				t.Fatalf("pop %d = (%d,%d,%v)", i, w0, w1, ok)
			}
		}
		if _, _, ok := r.TryPop(th); ok {
			t.Error("pop on empty ring succeeded")
		}
	})
}

func TestFullness(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for i := uint64(0); i < 4; i++ {
			if !r.TryPush(th, i, 0) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(th, 99, 0) {
			t.Error("push on full ring succeeded")
		}
		r.TryPop(th)
		if !r.TryPush(th, 4, 0) {
			t.Error("push after pop failed")
		}
	})
}

func TestWraparound(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for round := uint64(0); round < 40; round++ {
			if !r.TryPush(th, round, round^0xff) {
				t.Fatalf("push %d failed", round)
			}
			w0, w1, ok := r.TryPop(th)
			if !ok || w0 != round || w1 != round^0xff {
				t.Fatalf("round %d: got (%d,%d,%v)", round, w0, w1, ok)
			}
		}
	})
}

// TestQuickModelEquivalence: the ring behaves exactly like a bounded
// FIFO queue for any sequence of pushes and pops.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []bool, vals []uint16) bool {
		ok := true
		withThread(t, func(th *sim.Thread) {
			r := New(th.Mmap(1), 8)
			var model []uint64
			vi := 0
			for _, isPush := range ops {
				if isPush {
					v := uint64(0)
					if vi < len(vals) {
						v = uint64(vals[vi])
						vi++
					}
					pushed := r.TryPush(th, v, v+1)
					if pushed != (len(model) < 8) {
						ok = false
						return
					}
					if pushed {
						model = append(model, v)
					}
				} else {
					w0, _, popped := r.TryPop(th)
					if popped != (len(model) > 0) {
						ok = false
						return
					}
					if popped {
						if w0 != model[0] {
							ok = false
							return
						}
						model = model[1:]
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCrossCore: producer on one core, consumer on another, all values
// arrive in order.
func TestCrossCore(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	page, _ := m.Kernel().Mmap(1)
	prod := New(page, 16)
	cons := New(page, 16) // separate shadow state, same memory
	const n = 2000
	m.Spawn("producer", 0, func(th *sim.Thread) {
		for i := uint64(1); i <= n; i++ {
			prod.Push(th, i, i*3)
		}
	})
	bad := false
	m.Spawn("consumer", 1, func(th *sim.Thread) {
		for want := uint64(1); want <= n; {
			w0, w1, ok := cons.TryPop(th)
			if !ok {
				th.Pause(32)
				continue
			}
			if w0 != want || w1 != want*3 {
				bad = true
				return
			}
			want++
		}
	})
	m.Run()
	if bad {
		t.Error("cross-core ring delivered out-of-order or corrupt data")
	}
}

func TestBadSlotCountPanics(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-power-of-two slots")
			}
		}()
		New(th.Mmap(1), 6)
	})
}

func TestStatsTelemetry(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for i := uint64(0); i < 4; i++ {
			if !r.TryPush(th, i, 0) {
				t.Fatalf("push %d failed", i)
			}
		}
		if r.TryPush(th, 99, 0) {
			t.Fatal("push on full ring succeeded")
		}
		r.TryPop(th)
		r.TryPush(th, 4, 0)
		s := r.Stats()
		if s.Pushes != 5 || s.Pops != 1 || s.FullRetries != 1 {
			t.Errorf("stats = %+v, want 5 pushes, 1 pop, 1 full retry", s)
		}
		var occ uint64
		for _, b := range s.Occupancy {
			occ += b
		}
		if occ != s.Pushes {
			t.Errorf("occupancy histogram sums to %d, want %d", occ, s.Pushes)
		}
	})
}

func TestStagePublish(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		for i := uint64(0); i < 3; i++ {
			if !r.TryStage(th, i, i*10) {
				t.Fatalf("stage %d failed", i)
			}
		}
		if r.Staged() != 3 {
			t.Fatalf("Staged() = %d, want 3", r.Staged())
		}
		// Staged slots are invisible until Publish.
		if _, _, ok := r.TryPop(th); ok {
			t.Fatal("pop saw a staged, unpublished slot")
		}
		r.Publish(th)
		if r.Staged() != 0 {
			t.Fatalf("Staged() after Publish = %d, want 0", r.Staged())
		}
		for i := uint64(0); i < 3; i++ {
			w0, w1, ok := r.TryPop(th)
			if !ok || w0 != i || w1 != i*10 {
				t.Fatalf("pop %d = (%d,%d,%v)", i, w0, w1, ok)
			}
		}
		s := r.Stats()
		if s.Pushes != 3 || s.PushBatches != 1 {
			t.Errorf("stats = %+v, want 3 pushes in 1 batch", s)
		}
		var occ uint64
		for _, b := range s.Occupancy {
			occ += b
		}
		if occ != s.Pushes {
			t.Errorf("occupancy histogram sums to %d, want %d", occ, s.Pushes)
		}
	})
}

func TestTryStageFull(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 4)
		for i := uint64(0); i < 4; i++ {
			if !r.TryStage(th, i, 0) {
				t.Fatalf("stage %d failed", i)
			}
		}
		// Staged slots count against capacity even before Publish.
		if r.TryStage(th, 99, 0) {
			t.Error("stage on a staged-full ring succeeded")
		}
		if r.Stats().FullRetries != 1 {
			t.Errorf("FullRetries = %d, want 1", r.Stats().FullRetries)
		}
		r.Publish(th)
		r.TryPop(th)
		if !r.TryStage(th, 4, 0) {
			t.Error("stage after pop failed")
		}
	})
}

func TestPushPublishesStagedBacklog(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		r.TryStage(th, 1, 0)
		r.TryStage(th, 2, 0)
		// A plain push rides on the same tail store as the backlog and
		// keeps its FIFO position behind it.
		if !r.TryPush(th, 3, 0) {
			t.Fatal("push failed")
		}
		for want := uint64(1); want <= 3; want++ {
			w0, _, ok := r.TryPop(th)
			if !ok || w0 != want {
				t.Fatalf("pop = (%d,%v), want %d", w0, ok, want)
			}
		}
		if s := r.Stats(); s.Pushes != 3 || s.PushBatches != 1 {
			t.Errorf("stats = %+v, want 3 pushes in 1 batch", s)
		}
	})
}

func TestPushNPopN(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		reqs := make([][2]uint64, 6)
		for i := range reqs {
			reqs[i] = [2]uint64{uint64(i), uint64(i) * 7}
		}
		r.PushN(th, reqs)
		var buf [4][2]uint64
		if k := r.PopN(th, buf[:]); k != 4 {
			t.Fatalf("PopN = %d, want 4", k)
		}
		for i := 0; i < 4; i++ {
			if buf[i] != reqs[i] {
				t.Fatalf("PopN[%d] = %v, want %v", i, buf[i], reqs[i])
			}
		}
		if k := r.PopN(th, buf[:]); k != 2 {
			t.Fatalf("second PopN = %d, want 2", k)
		}
		if buf[0] != reqs[4] || buf[1] != reqs[5] {
			t.Fatalf("second PopN = %v, want tail of %v", buf[:2], reqs)
		}
		if k := r.PopN(th, buf[:]); k != 0 {
			t.Fatalf("PopN on empty ring = %d, want 0", k)
		}
		s := r.Stats()
		if s.Pushes != 6 || s.PushBatches != 1 {
			t.Errorf("push stats = %+v, want 6 pushes in 1 batch", s)
		}
		if s.Pops != 6 || s.PopBatches != 2 {
			t.Errorf("pop stats = %+v, want 6 pops in 2 batches", s)
		}
	})
}

// TestVectoredCheaperThanSingles pins the point of batching: moving the
// same requests with PushN/PopN costs fewer simulated cycles than
// one-at-a-time TryPush/TryPop, because the index publications are
// amortized across each batch.
func TestVectoredCheaperThanSingles(t *testing.T) {
	cost := func(batched bool) (cycles uint64) {
		m := sim.New(sim.DefaultConfig())
		m.Spawn("t", 0, func(th *sim.Thread) {
			r := New(th.Mmap(1), 16)
			reqs := make([][2]uint64, 12)
			start := th.Clock()
			if batched {
				for n := 0; n < 8; n++ {
					r.PushN(th, reqs)
					var buf [4][2]uint64
					for drained := 0; drained < len(reqs); {
						drained += r.PopN(th, buf[:])
					}
				}
			} else {
				for n := 0; n < 8; n++ {
					for _, q := range reqs {
						r.TryPush(th, q[0], q[1])
					}
					for drained := 0; drained < len(reqs); drained++ {
						r.TryPop(th)
					}
				}
			}
			cycles = th.Clock() - start
		})
		m.Run()
		return cycles
	}
	single, vectored := cost(false), cost(true)
	if vectored >= single {
		t.Errorf("vectored transfer cost %d cycles, singles %d — batching saved nothing", vectored, single)
	}
}

// walkFill assigns a fresh nonzero value to every uint64 leaf of a
// telemetry struct; walkCheck verifies leaf-by-leaf that sum == a + b.
// Together they make aggregation tests fail automatically when a new
// Stats field is added but not wired into Add.
func walkFill(v reflect.Value, next *uint64, mul uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next * mul)
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			walkFill(v.Index(i), next, mul)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			walkFill(v.Field(i), next, mul)
		}
	default:
		panic("walkFill: unhandled kind " + v.Kind().String())
	}
}

func walkCheck(t *testing.T, path string, a, b, sum reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Uint64:
		if sum.Uint() != a.Uint()+b.Uint() {
			t.Errorf("%s: Add dropped the field (%d + %d gave %d)", path, a.Uint(), b.Uint(), sum.Uint())
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			walkCheck(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), sum.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			walkCheck(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i), sum.Field(i))
		}
	default:
		t.Fatalf("%s: unhandled kind %s", path, a.Kind())
	}
}

// TestStatsAddCoversEveryField fails when a field is added to Stats but
// not aggregated by Stats.Add.
func TestStatsAddCoversEveryField(t *testing.T) {
	var a, b Stats
	n := uint64(0)
	walkFill(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	walkFill(reflect.ValueOf(&b).Elem(), &n, 1000)
	sum := a
	sum.Add(b)
	walkCheck(t, "Stats", reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum))
}

func TestPushStallCycles(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	var stats Stats
	base := make(chan uint64, 1)
	m.Spawn("producer", 0, func(th *sim.Thread) {
		r := New(th.Mmap(1), 2)
		base <- r.base
		r.TryPush(th, 1, 0)
		r.TryPush(th, 2, 0)
		// Ring full: this Push must spin until the consumer drains.
		r.Push(th, 3, 0)
		stats = r.Stats()
	})
	m.Spawn("consumer", 1, func(th *sim.Thread) {
		b := <-base
		r := New(b, 2)
		th.Pause(5000)
		for popped := 0; popped < 3; {
			if _, _, ok := r.TryPop(th); ok {
				popped++
			} else {
				th.Pause(50)
			}
		}
	})
	m.Run()
	if stats.StallCycles == 0 {
		t.Error("full-ring Push recorded no stall cycles")
	}
	if stats.FullRetries == 0 {
		t.Error("full-ring Push recorded no full retries")
	}
}

// TestDropHookSuppressesDoorbell: a dropped publication leaves the
// consumer blind to the new slots until Republish re-rings the bell.
func TestDropHookSuppressesDoorbell(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		r := New(th.Mmap(1), 8)
		drop := true
		r.SetDropHook(func() bool { return drop })
		if !r.TryPush(th, 1, 10) {
			t.Fatal("push failed")
		}
		if !r.Dropped() {
			t.Error("Dropped() false after a suppressed publication")
		}
		if _, _, ok := r.TryPop(th); ok {
			t.Fatal("consumer saw a slot whose doorbell was dropped")
		}
		r.Republish(th)
		if r.Dropped() {
			t.Error("Dropped() still true after Republish")
		}
		w0, w1, ok := r.TryPop(th)
		if !ok || w0 != 1 || w1 != 10 {
			t.Fatalf("pop after Republish = (%d,%d,%v), want (1,10,true)", w0, w1, ok)
		}
		// A surviving publication also catches up the lost ones.
		if !r.TryPush(th, 2, 20) {
			t.Fatal("push 2 failed")
		}
		drop = false
		if !r.TryPush(th, 3, 30) {
			t.Fatal("push 3 failed")
		}
		for want := uint64(2); want <= 3; want++ {
			w0, _, ok := r.TryPop(th)
			if !ok || w0 != want {
				t.Fatalf("pop = (%d,%v), want (%d,true)", w0, ok, want)
			}
		}
	})
}

// TestDropHookCountsUnchanged: drops perturb delivery, not accounting —
// Pushes still counts every published slot, so the harness liveness
// invariant (pushes == pops after a drain with Republish) can rely on it.
func TestDropHookStatsStable(t *testing.T) {
	withThread(t, func(th *sim.Thread) {
		clean := New(th.Mmap(1), 8)
		faulty := New(th.Mmap(1), 8)
		i := 0
		faulty.SetDropHook(func() bool { i++; return i%2 == 0 })
		for k := uint64(0); k < 6; k++ {
			clean.TryPush(th, k, k)
			faulty.TryPush(th, k, k)
		}
		faulty.Republish(th)
		for {
			if _, _, ok := clean.TryPop(th); !ok {
				break
			}
		}
		for {
			if _, _, ok := faulty.TryPop(th); !ok {
				break
			}
		}
		cs, fs := clean.Stats(), faulty.Stats()
		if cs.Pushes != fs.Pushes || cs.Pops != fs.Pops {
			t.Errorf("drop hook changed push/pop accounting: clean %+v faulty %+v", cs, fs)
		}
		if fs.Pushes != fs.Pops {
			t.Errorf("faulty ring lost slots: %d pushed, %d popped", fs.Pushes, fs.Pops)
		}
	})
}
