// Package cache models a multicore cache hierarchy: private L1D and L2
// per core, a shared inclusive LLC, and a directory-based MESI-style
// coherence protocol.
//
// The paper's central observation is that allocator metadata traffic
// pollutes these structures (Table 1) and that cross-core metadata
// sharing causes invalidation storms (Table 2). Both effects fall out of
// this model: every simulated load/store walks the hierarchy, shared
// lines ping-pong through the directory, and the per-core counters
// correspond one-for-one to the PMU events the paper reports
// (LLC-load-misses, LLC-store-misses).
package cache

import (
	"fmt"

	"nextgenmalloc/internal/region"
)

// LineShift is log2 of the cache line size (64 bytes, as assumed by the
// paper's Figure 2 discussion).
const (
	LineShift = 6
	LineSize  = 1 << LineShift
)

// MESI states for lines in private caches.
const (
	Invalid byte = iota
	Shared
	Exclusive
	Modified
)

type line struct {
	tag   uint64 // full line address (addr >> LineShift)
	state byte   // MESI state (private caches); LLC uses valid/dirty below
	valid bool
	dirty bool  // LLC only: line differs from memory
	idx   int32 // this line's fixed index in its array (set once at build)
	// Directory fields (LLC only).
	sharers uint64 // bitmask of cores whose private caches may hold the line
	owner   int8   // core holding the line Modified, or -1
}

// cacheArray is one set-associative tag array with LRU replacement.
//
// Host-side layout notes (the model is unchanged): the valid tags and
// the LRU stamps live in dense parallel []uint64 slices (tags store
// tag+1; 0 marks an invalid way) so the way scans in find and victim
// touch 8 bytes per way instead of a full line struct, and each set
// remembers its most-recently-hit way so the dominant repeat-hit
// pattern resolves without scanning at all. Every mutation of a way's
// identity goes through fill/invalidate to keep tags[] and lines[] in
// lockstep.
type cacheArray struct {
	sets    int
	ways    int
	setMask uint64   // sets-1 when sets is a power of two, else 0
	tags    []uint64 // tag+1 per way, 0 when invalid
	used    []uint64 // LRU stamp per way
	lines   []line
	mru     []uint16 // per-set index of the last way that hit
	tick    uint64
}

func newArray(sizeBytes, ways int) *cacheArray {
	nlines := sizeBytes / LineSize
	if nlines%ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", nlines, ways))
	}
	sets := nlines / ways
	c := &cacheArray{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, nlines),
		used:  make([]uint64, nlines),
		lines: make([]line, nlines),
		mru:   make([]uint16, sets),
	}
	for i := range c.lines {
		c.lines[i].idx = int32(i)
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
	}
	return c
}

// set maps a tag to its set index; power-of-two geometries (all shipped
// configs) use a mask instead of a divide.
func (c *cacheArray) set(tag uint64) int {
	if c.setMask != 0 || c.sets == 1 {
		return int(tag & c.setMask)
	}
	return int(tag % uint64(c.sets))
}

func (c *cacheArray) setBase(tag uint64) int { return c.set(tag) * c.ways }

// findMRU probes only the set's MRU way — the overwhelmingly common hit
// location — and returns nil on anything else. Pure lookup (no LRU
// side effects, identical to a find that hits the MRU way); small
// enough to inline into the per-access hot path.
func (c *cacheArray) findMRU(tag uint64) *line {
	if c.setMask == 0 && c.sets > 1 {
		return nil // non-power-of-two geometry: take the full probe
	}
	base := int(tag&c.setMask) * c.ways
	if m := base + int(c.mru[tag&c.setMask]); c.tags[m] == tag+1 {
		return &c.lines[m]
	}
	return nil
}

// find returns the line holding tag, or nil. It does not touch LRU.
func (c *cacheArray) find(tag uint64) *line {
	set := c.set(tag)
	base := set * c.ways
	want := tag + 1
	tags := c.tags[base : base+c.ways]
	if m := int(c.mru[set]); tags[m] == want {
		return &c.lines[base+m]
	}
	for i, tg := range tags {
		if tg == want {
			c.mru[set] = uint16(i)
			return &c.lines[base+i]
		}
	}
	return nil
}

// touch refreshes LRU state for a line.
func (c *cacheArray) touch(l *line) {
	c.tick++
	c.used[l.idx] = c.tick
}

// victim returns the index of the line to fill for tag: an invalid way
// if any, otherwise the LRU way. The caller must handle eviction of the
// line if it is valid, then install the new identity via fill.
func (c *cacheArray) victim(tag uint64) int {
	base := c.setBase(tag)
	tags := c.tags[base : base+c.ways]
	used := c.used[base : base+c.ways]
	vi := 0
	for i, tg := range tags {
		if tg == 0 {
			return base + i
		}
		if used[i] < used[vi] {
			vi = i
		}
	}
	return base + vi
}

// fill installs a fresh line identity at index i (obtained from victim)
// and returns the line for further field setup.
func (c *cacheArray) fill(i int, tag uint64, state byte) *line {
	c.tags[i] = tag + 1
	c.used[i] = 0
	l := &c.lines[i]
	*l = line{tag: tag, state: state, valid: true, idx: int32(i)}
	return l
}

// drop invalidates the line at index i.
func (c *cacheArray) drop(i int) {
	c.tags[i] = 0
	c.lines[i].valid = false
}

// invalidate drops tag if present, returning whether it was Modified.
func (c *cacheArray) invalidate(tag uint64) (present, wasModified bool) {
	base := c.set(tag) * c.ways
	want := tag + 1
	for i, tg := range c.tags[base : base+c.ways] {
		if tg == want {
			c.drop(base + i)
			return true, c.lines[base+i].state == Modified
		}
	}
	return false, false
}

// Config holds geometry and latency parameters for the hierarchy.
type Config struct {
	L1Size, L1Ways   int
	L2Size, L2Ways   int // L2Size 0 disables the private L2 (near-memory core profile)
	LLCSize, LLCWays int

	L1HitCycles  uint64
	L2HitCycles  uint64
	LLCHitCycles uint64
	MemCycles    uint64
	// DirtyTransferCycles is the extra cost of sourcing a line from
	// another core's modified copy (cache-to-cache transfer).
	DirtyTransferCycles uint64
	// InvalidateCycles is charged per remote sharer invalidated on a
	// write (the cross-core communication the paper worries about).
	InvalidateCycles uint64
}

// DefaultConfig mirrors a contemporary server part (per-core 32 KiB L1D,
// 256 KiB L2; 8 MiB shared LLC).
func DefaultConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		LLCSize: 8 << 20, LLCWays: 16,
		L1HitCycles:  4,
		L2HitCycles:  12,
		LLCHitCycles: 40,
		MemCycles:    200,
		// Cortex-A72-class cluster-local cache-to-cache transfer (the
		// paper's §4.2 machine; its weak memory model keeps cross-core
		// handoff cheap).
		DirtyTransferCycles: 40,
		InvalidateCycles:    20,
	}
}

// CoreStats are the per-core PMU-visible cache counters.
type CoreStats struct {
	Loads          uint64
	Stores         uint64
	L1Misses       uint64
	L2Misses       uint64
	LLCLoadMisses  uint64 // demand loads missing the shared LLC
	LLCStoreMisses uint64 // demand stores (RFOs) missing the shared LLC
	Invalidations  uint64 // remote copies this core's writes killed
	DirtyTransfers uint64 // lines sourced from a remote modified copy
}

// ClassStats attribute a core's demand traffic and misses to one
// address class (region.Class). They are observation-only: the summed
// per-class values equal the CoreStats fields, and recording them has
// no effect on cycles or replacement state.
type ClassStats struct {
	Loads          uint64
	Stores         uint64
	L1Misses       uint64
	LLCLoadMisses  uint64
	LLCStoreMisses uint64
}

type coreCaches struct {
	l1 *cacheArray
	l2 *cacheArray // nil when disabled
	// mru points at the L1 line this core touched last. It may go stale
	// (evicted, reused for another tag, invalidated by a remote core);
	// every consumer revalidates tag and state before trusting it.
	mru *line
}

// System is the full hierarchy shared by all cores of a machine.
type System struct {
	cfg       Config
	cores     []*coreCaches
	llc       *cacheArray
	stats     []CoreStats
	class     []ClassStats // region.NumClasses entries per core
	memCycles []uint64     // per-core DRAM latency (near-memory cores are lower)
}

// NewSystem builds a hierarchy for ncores cores.
func NewSystem(cfg Config, ncores int) *System {
	if ncores <= 0 || ncores > 64 {
		panic("cache: core count must be 1..64")
	}
	s := &System{
		cfg:   cfg,
		llc:   newArray(cfg.LLCSize, cfg.LLCWays),
		stats: make([]CoreStats, ncores),
		class: make([]ClassStats, ncores*region.NumClasses),
	}
	for i := 0; i < ncores; i++ {
		cc := &coreCaches{l1: newArray(cfg.L1Size, cfg.L1Ways)}
		if cfg.L2Size > 0 {
			cc.l2 = newArray(cfg.L2Size, cfg.L2Ways)
		}
		s.cores = append(s.cores, cc)
		s.memCycles = append(s.memCycles, cfg.MemCycles)
	}
	return s
}

// NewSystemHetero builds a hierarchy where each core may have its own
// private-cache geometry and DRAM latency (used for the near-memory
// offload core ablation, paper §3.2). perCore[i] overrides the private
// levels and MemCycles of core i; the shared LLC always comes from base.
func NewSystemHetero(base Config, perCore []Config) *System {
	s := &System{
		cfg:   base,
		llc:   newArray(base.LLCSize, base.LLCWays),
		stats: make([]CoreStats, len(perCore)),
		class: make([]ClassStats, len(perCore)*region.NumClasses),
	}
	for _, cfg := range perCore {
		cc := &coreCaches{l1: newArray(cfg.L1Size, cfg.L1Ways)}
		if cfg.L2Size > 0 {
			cc.l2 = newArray(cfg.L2Size, cfg.L2Ways)
		}
		s.cores = append(s.cores, cc)
		mc := cfg.MemCycles
		if mc == 0 {
			mc = base.MemCycles
		}
		s.memCycles = append(s.memCycles, mc)
	}
	return s
}

// Stats returns a copy of core c's counters.
func (s *System) Stats(c int) CoreStats { return s.stats[c] }

// ClassStats returns a copy of core c's per-class attribution counters,
// indexed by region.Class.
func (s *System) ClassStats(c int) [region.NumClasses]ClassStats {
	var out [region.NumClasses]ClassStats
	copy(out[:], s.class[c*region.NumClasses:])
	return out
}

func (s *System) classStat(c int, cls region.Class) *ClassStats {
	return &s.class[c*region.NumClasses+int(cls)]
}

// backInvalidate removes a line from every sharer's private caches
// (inclusive-LLC back-invalidation); it reports whether any private copy
// was Modified.
func (s *System) backInvalidate(le *line) bool {
	anyDirty := false
	for c := 0; le.sharers != 0 && c < len(s.cores); c++ {
		bit := uint64(1) << uint(c)
		if le.sharers&bit == 0 {
			continue
		}
		cc := s.cores[c]
		_, m1 := cc.l1.invalidate(le.tag)
		var m2 bool
		if cc.l2 != nil {
			_, m2 = cc.l2.invalidate(le.tag)
		}
		anyDirty = anyDirty || m1 || m2
		le.sharers &^= bit
	}
	return anyDirty
}

// fillPrivate installs tag into core c's L1 (and L2 when present) with
// the given MESI state, handling inclusive evictions. It returns extra
// cycles charged for evictions that had to write back.
//
// Callers always know whether L2 already holds the line (they probed it
// on the way down) and that L1 does not (an L1 hit never reaches here),
// so the line is passed in rather than re-found: l2line is core c's L2
// copy of tag, or nil when L2 missed or is disabled.
func (s *System) fillPrivate(c int, tag uint64, state byte, l2line *line) uint64 {
	cc := s.cores[c]
	var extra uint64
	if cc.l2 != nil {
		if l2line == nil {
			vi := cc.l2.victim(tag)
			if v := &cc.l2.lines[vi]; v.valid {
				extra += s.evictPrivate(c, v)
			}
			cc.l2.touch(cc.l2.fill(vi, tag, state))
		} else {
			l2line.state = state
			cc.l2.touch(l2line)
		}
	}
	vi := cc.l1.victim(tag)
	if v := &cc.l1.lines[vi]; v.valid {
		extra += s.evictL1(c, v)
	}
	v := cc.l1.fill(vi, tag, state)
	cc.l1.touch(v)
	cc.mru = v
	return extra
}

// SameLineFast attempts the model update for an access the caller
// believes lands on the line core c touched last. It succeeds only when
// the line is still L1-resident under the same tag and in a state that
// requires no coherence action (any state for a read; Modified or
// Exclusive for a write). On success it applies the exact side effects
// the full Access path would — demand counter, LRU touch, E->M upgrade —
// and returns (L1HitCycles, true); otherwise it changes nothing and the
// caller must take Access.
func (s *System) SameLineFast(c int, tag uint64, isWrite bool) (uint64, bool) {
	return s.SameLineFastClass(c, tag, isWrite, region.User)
}

// SameLineFastClass is SameLineFast with the access attributed to cls.
func (s *System) SameLineFastClass(c int, tag uint64, isWrite bool, cls region.Class) (uint64, bool) {
	cc := s.cores[c]
	l := cc.mru
	if l == nil || !l.valid || l.tag != tag {
		return 0, false
	}
	if isWrite {
		switch l.state {
		case Modified:
		case Exclusive:
			l.state = Modified
		default: // Shared needs a directory upgrade: full path.
			return 0, false
		}
		s.stats[c].Stores++
		s.classStat(c, cls).Stores++
	} else {
		s.stats[c].Loads++
		s.classStat(c, cls).Loads++
	}
	cc.l1.touch(l)
	return s.cfg.L1HitCycles, true
}

// SameLineBatch retires k back-to-back accesses to one line in a single
// step: the line must be core c's MRU line, L1-resident, and (for
// writes) owned. On success the demand counters advance by k, the LRU
// tick advances by k with the line stamped at the final tick, and an
// Exclusive line upgrades to Modified once — the exact state k
// successive L1-hit accesses would leave. Returns the per-access hit
// cycles.
func (s *System) SameLineBatch(c int, tag uint64, isWrite bool, k uint64) (uint64, bool) {
	return s.SameLineBatchClass(c, tag, isWrite, k, region.User)
}

// SameLineBatchClass is SameLineBatch with the accesses attributed to cls.
func (s *System) SameLineBatchClass(c int, tag uint64, isWrite bool, k uint64, cls region.Class) (uint64, bool) {
	cc := s.cores[c]
	l := cc.mru
	if l == nil || !l.valid || l.tag != tag {
		return 0, false
	}
	if isWrite {
		switch l.state {
		case Modified:
		case Exclusive:
			l.state = Modified
		default: // Shared needs a directory upgrade: full path.
			return 0, false
		}
		s.stats[c].Stores += k
		s.classStat(c, cls).Stores += k
	} else {
		s.stats[c].Loads += k
		s.classStat(c, cls).Loads += k
	}
	cc.l1.tick += k
	cc.l1.used[l.idx] = cc.l1.tick
	return s.cfg.L1HitCycles, true
}

// L1HitCycles exposes the configured L1 hit latency (for callers that
// pre-compute how many hits fit inside a scheduling lease).
func (s *System) L1HitCycles() uint64 { return s.cfg.L1HitCycles }

// evictL1 handles an L1 eviction: a Modified line merges into L2 (or the
// LLC when there is no L2). The sharer bit survives while the line is
// still in L2.
func (s *System) evictL1(c int, v *line) uint64 {
	cc := s.cores[c]
	if v.state != Modified {
		if cc.l2 == nil || cc.l2.find(v.tag) == nil {
			s.releaseLine(c, v.tag, false)
		}
		return 0
	}
	if cc.l2 != nil {
		if l2line := cc.l2.find(v.tag); l2line != nil {
			l2line.state = Modified
			return 0
		}
	}
	// No L2 copy: dirty data returns to the LLC.
	s.releaseLine(c, v.tag, true)
	return 0
}

// evictPrivate handles an L2 eviction: inclusive back-invalidation of L1
// and write-back of dirty data into the LLC.
func (s *System) evictPrivate(c int, v *line) uint64 {
	cc := s.cores[c]
	dirty := v.state == Modified
	if present, m := cc.l1.invalidate(v.tag); present && m {
		dirty = true
	}
	s.releaseLine(c, v.tag, dirty)
	return 0
}

// releaseLine records in the directory that core c no longer holds tag
// in any private level: the sharer bit and any ownership claim clear,
// and dirty data (if any) is absorbed into the LLC copy. One LLC probe
// covers what the write-back and the sharer drop each need.
func (s *System) releaseLine(c int, tag uint64, dirty bool) {
	if le := s.llc.find(tag); le != nil {
		if dirty {
			le.dirty = true
		}
		le.sharers &^= uint64(1) << uint(c)
		if le.owner == int8(c) {
			le.owner = -1
		}
	}
}

// upgrade obtains write ownership of a line core c already holds Shared:
// every other sharer is invalidated through the directory.
func (s *System) upgrade(c int, tag uint64) uint64 {
	le := s.llc.find(tag)
	if le == nil {
		// The line escaped the LLC (non-inclusive corner after an LLC
		// eviction raced with the private copy); treat as silent upgrade.
		return 0
	}
	var cycles uint64
	myBit := uint64(1) << uint(c)
	for oc := 0; le.sharers&^myBit != 0 && oc < len(s.cores); oc++ {
		bit := uint64(1) << uint(oc)
		if oc == c || le.sharers&bit == 0 {
			continue
		}
		occ := s.cores[oc]
		p1, m1 := occ.l1.invalidate(tag)
		var p2, m2 bool
		if occ.l2 != nil {
			p2, m2 = occ.l2.invalidate(tag)
		}
		if p1 || p2 {
			cycles += s.cfg.InvalidateCycles
			s.stats[c].Invalidations++
		}
		if m1 || m2 {
			le.dirty = true
		}
		le.sharers &^= bit
	}
	le.owner = int8(c)
	le.sharers |= myBit
	return cycles
}

// Access performs one demand access by core c to physical address paddr
// and returns the cycles it cost. isWrite selects an RFO; isAtomic marks
// the access as a locked RMW (same coherence behaviour, the extra
// latency is charged by the caller).
func (s *System) Access(c int, paddr uint64, isWrite bool) uint64 {
	return s.AccessClass(c, paddr, isWrite, region.User)
}

// AccessClass is Access with the demand attributed to address class cls.
// The hierarchy walk, replacement decisions, and returned cycles are
// identical to Access; only the per-class attribution counters differ.
func (s *System) AccessClass(c int, paddr uint64, isWrite bool, cls region.Class) uint64 {
	tag := paddr >> LineShift
	st := &s.stats[c]
	ct := s.classStat(c, cls)
	if isWrite {
		st.Stores++
		ct.Stores++
	} else {
		st.Loads++
		ct.Loads++
	}
	cc := s.cores[c]

	// L1 fast path.
	l := cc.l1.findMRU(tag)
	if l == nil {
		l = cc.l1.find(tag)
	}
	if l != nil {
		cc.mru = l
		cc.l1.touch(l)
		if !isWrite {
			return s.cfg.L1HitCycles
		}
		switch l.state {
		case Modified:
			return s.cfg.L1HitCycles
		case Exclusive:
			l.state = Modified
			return s.cfg.L1HitCycles
		default: // Shared: upgrade through the directory
			cyc := s.upgrade(c, tag)
			l.state = Modified
			if l2 := cc.l2; l2 != nil {
				if l2line := l2.find(tag); l2line != nil {
					l2line.state = Modified
				}
			}
			return s.cfg.L1HitCycles + cyc
		}
	}
	st.L1Misses++
	ct.L1Misses++

	// L2.
	if cc.l2 != nil {
		if l := cc.l2.find(tag); l != nil {
			cc.l2.touch(l)
			state := l.state
			var cyc uint64
			if isWrite {
				if state == Shared {
					cyc = s.upgrade(c, tag)
				}
				state = Modified
				l.state = Modified
			}
			cyc += s.fillPrivate(c, tag, state, l)
			return s.cfg.L2HitCycles + cyc
		}
		st.L2Misses++
	} else {
		st.L2Misses++
	}

	// Shared LLC.
	if le := s.llc.find(tag); le != nil {
		s.llc.touch(le)
		cycles := s.cfg.LLCHitCycles
		myBit := uint64(1) << uint(c)
		if le.owner >= 0 && le.owner != int8(c) {
			// Another core holds the line Modified: cache-to-cache.
			cycles += s.cfg.DirtyTransferCycles
			st.DirtyTransfers++
			oc := int(le.owner)
			occ := s.cores[oc]
			if isWrite {
				p1, _ := occ.l1.invalidate(tag)
				var p2 bool
				if occ.l2 != nil {
					p2, _ = occ.l2.invalidate(tag)
				}
				if p1 || p2 {
					st.Invalidations++
				}
				le.sharers &^= uint64(1) << uint(oc)
			} else {
				// Downgrade the owner to Shared.
				if l := occ.l1.find(tag); l != nil {
					l.state = Shared
				}
				if occ.l2 != nil {
					if l := occ.l2.find(tag); l != nil {
						l.state = Shared
					}
				}
			}
			le.dirty = true
			le.owner = -1
		}
		var state byte
		if isWrite {
			cycles += s.invalidateOthers(c, le)
			le.owner = int8(c)
			state = Modified
		} else if le.sharers&^myBit == 0 {
			state = Exclusive
		} else {
			// Our read makes the line Shared everywhere: demote any
			// remote Exclusive copy (snoop piggybacks on the fill).
			for oc := 0; oc < len(s.cores); oc++ {
				if oc == c || le.sharers&(uint64(1)<<uint(oc)) == 0 {
					continue
				}
				occ := s.cores[oc]
				if l := occ.l1.find(tag); l != nil && l.state == Exclusive {
					l.state = Shared
				}
				if occ.l2 != nil {
					if l := occ.l2.find(tag); l != nil && l.state == Exclusive {
						l.state = Shared
					}
				}
			}
			state = Shared
		}
		le.sharers |= myBit
		cycles += s.fillPrivate(c, tag, state, nil)
		return cycles
	}

	// Miss all the way to memory.
	if isWrite {
		st.LLCStoreMisses++
		ct.LLCStoreMisses++
	} else {
		st.LLCLoadMisses++
		ct.LLCLoadMisses++
	}
	vi := s.llc.victim(tag)
	if v := &s.llc.lines[vi]; v.valid {
		if s.backInvalidate(v) {
			v.dirty = true
		}
		// Dirty victim writes back to memory; the latency overlaps the
		// fill in modern parts, so no extra stall is charged.
	}
	v := s.llc.fill(vi, tag, 0)
	v.owner = -1
	s.llc.touch(v)
	state := Exclusive
	if isWrite {
		state = Modified
		v.owner = int8(c)
	}
	v.sharers = uint64(1) << uint(c)
	cycles := s.memCycles[c] + s.fillPrivate(c, tag, state, nil)
	return cycles
}

// invalidateOthers kills every remote copy of le on behalf of writer c.
func (s *System) invalidateOthers(c int, le *line) uint64 {
	var cycles uint64
	myBit := uint64(1) << uint(c)
	st := &s.stats[c]
	for oc := 0; le.sharers&^myBit != 0 && oc < len(s.cores); oc++ {
		bit := uint64(1) << uint(oc)
		if oc == c || le.sharers&bit == 0 {
			continue
		}
		occ := s.cores[oc]
		p1, m1 := occ.l1.invalidate(le.tag)
		var p2, m2 bool
		if occ.l2 != nil {
			p2, m2 = occ.l2.invalidate(le.tag)
		}
		if p1 || p2 {
			cycles += s.cfg.InvalidateCycles
			st.Invalidations++
		}
		if m1 || m2 {
			le.dirty = true
		}
		le.sharers &^= bit
	}
	return cycles
}

// Contains reports whether core c's private caches currently hold the
// line containing paddr (test hook).
func (s *System) Contains(c int, paddr uint64) bool {
	tag := paddr >> LineShift
	cc := s.cores[c]
	if cc.l1.find(tag) != nil {
		return true
	}
	return cc.l2 != nil && cc.l2.find(tag) != nil
}

// ProbeL1 returns the dense way index of the L1 line holding tag in core
// c's L1, or -1. Pure lookup: unlike find, it updates neither the set's
// MRU hint nor any LRU state, so callers can interrogate residency
// without perturbing the model (the time-warp replay path depends on
// this).
func (s *System) ProbeL1(c int, tag uint64) int {
	l1 := s.cores[c].l1
	base := l1.setBase(tag)
	want := tag + 1
	for i, tg := range l1.tags[base : base+l1.ways] {
		if tg == want {
			return base + i
		}
	}
	return -1
}

// ReplayL1Loads applies the exact model-state delta of k repetitions of
// a load-only round that hit core c's L1 at the dense way indexes idxs
// (in issue order; duplicates allowed), access i attributed to cls[i].
//
// The caller must have established — by running the round concretely —
// that every access is an L1 load hit and that no other core touches the
// hierarchy in between (the scheduler's lease guarantees this). Under
// those conditions each concrete access performs exactly one demand
// count and one LRU touch (tick advance + way stamp), so k rounds leave:
// the demand counters advanced by k per access, the LRU tick advanced by
// k*len(idxs), and each way stamped where its last occurrence in the
// final round would have stamped it. MRU hints are already at their
// fixed point after the concrete round (identical rounds re-establish
// the same hints) and are left untouched.
func (s *System) ReplayL1Loads(c int, idxs []int, cls []region.Class, k uint64) {
	a := uint64(len(idxs))
	if a == 0 || k == 0 {
		return
	}
	s.stats[c].Loads += k * a
	for _, cl := range cls {
		s.classStat(c, cl).Loads += k
	}
	l1 := s.cores[c].l1
	l1.tick += k * a
	for i, idx := range idxs {
		l1.used[idx] = l1.tick - (a - 1 - uint64(i))
	}
}
