package cache

import "testing"

// Host benchmarks for System.Access, the per-memory-op model call.

// BenchmarkAccessL1Hit hits the same line forever — the dominant case in
// real runs (L1 hit rates are >95% for every workload in EXPERIMENTS.md).
func BenchmarkAccessL1Hit(b *testing.B) {
	s := NewSystem(DefaultConfig(), 4)
	s.Access(0, 0x1000, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(0, 0x1000, false)
	}
}

// BenchmarkAccessL1HitWrite is the store twin (line held Modified).
func BenchmarkAccessL1HitWrite(b *testing.B) {
	s := NewSystem(DefaultConfig(), 4)
	s.Access(0, 0x1000, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(0, 0x1000, true)
	}
}

// BenchmarkAccessL1Resident cycles through an L1-resident working set,
// exercising the set scan without misses.
func BenchmarkAccessL1Resident(b *testing.B) {
	s := NewSystem(DefaultConfig(), 4)
	const lines = 64 // 4 KiB footprint, far inside the 32 KiB L1
	for l := 0; l < lines; l++ {
		s.Access(0, uint64(l)<<LineShift, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(0, uint64(i%lines)<<LineShift, false)
	}
}

// BenchmarkAccessStream streams a set larger than the LLC: the full
// miss path with evictions.
func BenchmarkAccessStream(b *testing.B) {
	cfg := DefaultConfig()
	cfg.LLCSize = 1 << 20
	s := NewSystem(cfg, 4)
	span := uint64(4<<20) >> LineShift
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(0, (uint64(i)%span)<<LineShift, i&1 == 0)
	}
}
