package cache

import (
	"testing"
	"testing/quick"
)

func tiny() Config {
	return Config{
		L1Size: 1 << 10, L1Ways: 2,
		L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 4,
		L1HitCycles: 4, L2HitCycles: 12, LLCHitCycles: 40, MemCycles: 200,
		DirtyTransferCycles: 40, InvalidateCycles: 20,
	}
}

func TestHitLevels(t *testing.T) {
	s := NewSystem(tiny(), 2)
	if cyc := s.Access(0, 0x1000, false); cyc != 200 {
		t.Errorf("cold load cost %d, want 200", cyc)
	}
	if cyc := s.Access(0, 0x1000, false); cyc != 4 {
		t.Errorf("warm load cost %d, want L1 hit 4", cyc)
	}
	st := s.Stats(0)
	if st.LLCLoadMisses != 1 || st.L1Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestStoreMissCounter(t *testing.T) {
	s := NewSystem(tiny(), 2)
	s.Access(0, 0x2000, true)
	st := s.Stats(0)
	if st.LLCStoreMisses != 1 || st.LLCLoadMisses != 0 {
		t.Errorf("store miss misattributed: %+v", st)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	s := NewSystem(tiny(), 1)
	// L1: 1 KiB / 64 B = 16 lines, 2-way, 8 sets. Addresses 8 sets apart
	// (stride 512) collide in a set.
	s.Access(0, 0x0000, false)
	s.Access(0, 0x0200, false)
	s.Access(0, 0x0400, false) // evicts 0x0000 from L1 (still in L2)
	if cyc := s.Access(0, 0x0000, false); cyc != 12 {
		t.Errorf("L1-evicted line cost %d, want L2 hit 12", cyc)
	}
}

func TestWriteHitUpgradesSharedLine(t *testing.T) {
	s := NewSystem(tiny(), 2)
	s.Access(0, 0x3000, false) // core 0 reads (Exclusive)
	s.Access(1, 0x3000, false) // core 1 reads too (both Shared)
	cyc := s.Access(0, 0x3000, true)
	if cyc != 4+20 {
		t.Errorf("upgrade cost %d, want L1 hit + invalidate = 24", cyc)
	}
	if s.Stats(0).Invalidations != 1 {
		t.Errorf("invalidations = %d", s.Stats(0).Invalidations)
	}
	// Core 1's copy is gone: its next read goes back to the LLC and
	// sources core 0's modified data.
	cyc = s.Access(1, 0x3000, false)
	if cyc < 40 {
		t.Errorf("invalidated reader hit locally (cost %d)", cyc)
	}
	if s.Stats(1).DirtyTransfers != 1 {
		t.Errorf("dirty transfers = %d", s.Stats(1).DirtyTransfers)
	}
}

func TestExclusiveSilentUpgrade(t *testing.T) {
	s := NewSystem(tiny(), 2)
	s.Access(0, 0x4000, false) // Exclusive
	if cyc := s.Access(0, 0x4000, true); cyc != 4 {
		t.Errorf("E->M upgrade cost %d, want silent 4", cyc)
	}
	if s.Stats(0).Invalidations != 0 {
		t.Error("silent upgrade should not invalidate")
	}
}

func TestDirtyTransferOnRemoteRead(t *testing.T) {
	s := NewSystem(tiny(), 2)
	s.Access(0, 0x5000, true) // core 0 owns Modified
	cyc := s.Access(1, 0x5000, false)
	if cyc != 40+40+0 {
		t.Errorf("remote read of modified line cost %d, want LLC+transfer=80", cyc)
	}
	// Both copies now Shared: core 0 re-reads for free.
	if cyc := s.Access(0, 0x5000, false); cyc != 4 {
		t.Errorf("owner's post-downgrade read cost %d", cyc)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	s := NewSystem(tiny(), 1)
	// LLC: 16 KiB / 64 = 256 lines, 4-way, 64 sets; stride 4096 collides.
	base := uint64(0x100000)
	for i := uint64(0); i < 5; i++ {
		s.Access(0, base+i*4096, false)
	}
	// The first line was evicted from the LLC and back-invalidated from
	// the private caches: re-access goes to memory.
	if cyc := s.Access(0, base, false); cyc != 200 {
		t.Errorf("back-invalidated line cost %d, want 200", cyc)
	}
}

func TestHeteroMemLatency(t *testing.T) {
	base := tiny()
	near := tiny()
	near.MemCycles = 80
	s := NewSystemHetero(base, []Config{base, near})
	if cyc := s.Access(1, 0x9000, false); cyc != 80 {
		t.Errorf("near-memory core miss cost %d, want 80", cyc)
	}
	if cyc := s.Access(0, 0xa000, false); cyc != 200 {
		t.Errorf("big core miss cost %d, want 200", cyc)
	}
}

// TestQuickSecondAccessAlwaysHits: for any single-core access pattern,
// accessing the same line twice in a row always hits L1.
func TestQuickSecondAccessAlwaysHits(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		s := NewSystem(tiny(), 1)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			s.Access(0, uint64(a), w)
			if s.Access(0, uint64(a), w) != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoherenceSingleWriter: after any interleaving, writing on one
// core and then reading the same line on another always returns fresh
// data costs (i.e. the remote read is never a silent stale hit).
func TestQuickCoherenceSingleWriter(t *testing.T) {
	f := func(lines []uint8) bool {
		s := NewSystem(tiny(), 4)
		for _, l := range lines {
			addr := uint64(l) << LineShift
			s.Access(0, addr, true)
			// Any other core's next access must not be a 4-cycle L1 hit
			// unless it already re-fetched after the write.
			if cyc := s.Access(1, addr, false); cyc == 4 {
				// Only legal if core 1 held it Shared *after* the write,
				// impossible here because the write invalidated it.
				return false
			}
			// Write again on core 0 must invalidate core 1's fresh copy.
			s.Access(0, addr, true)
			if cyc := s.Access(1, addr, false); cyc == 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
