package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want *Plan
		err  string
	}{
		{spec: "", want: nil},
		{spec: "none", want: nil},
		{
			spec: "stall-len=50000",
			want: &Plan{StallCycles: 50000},
		},
		{
			spec: "seed=7,stall-start=100000,stall-len=50000,stall-period=400000,drop=64,corrupt=256,slow=3",
			want: &Plan{Seed: 7, StallStart: 100000, StallCycles: 50000,
				StallPeriod: 400000, DropEveryN: 64, CorruptEveryN: 256, SlowFactor: 3},
		},
		{spec: "drop=32", want: &Plan{DropEveryN: 32}},
		{spec: " corrupt = 8 ", want: &Plan{CorruptEveryN: 8}},
		{spec: "stall-len", err: "not key=value"},
		{spec: "stall-len=abc", err: "bad value"},
		{spec: "warp=9", err: "unknown key"},
		{spec: "stall-len=100,stall-period=100", err: "must exceed"},
		{spec: "stall-start=5", err: "without stall-len"},
		{spec: "seed=3", err: "injects nothing"},
		{spec: "slow=1", err: "injects nothing"},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.spec)
		if c.err != "" {
			if err == nil || !strings.Contains(err.Error(), c.err) {
				t.Errorf("ParsePlan(%q) err = %v, want containing %q", c.spec, err, c.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q) unexpected error: %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"stall-len=50000",
		"seed=7,stall-start=100000,stall-len=50000,stall-period=400000,drop=64,corrupt=256,slow=3",
		"drop=32",
	} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Errorf("round trip %q -> %q changed the plan: %+v vs %+v", spec, p.String(), p, again)
		}
	}
	if s := (Plan{}).String(); s != "none" {
		t.Errorf("zero plan String() = %q, want none", s)
	}
}

func TestArmed(t *testing.T) {
	if (Plan{}).Armed() || (Plan{Seed: 9}).Armed() || (Plan{SlowFactor: 1}).Armed() {
		t.Error("unarmed plan reports Armed")
	}
	for _, p := range []Plan{
		{StallCycles: 1}, {DropEveryN: 1}, {CorruptEveryN: 1}, {SlowFactor: 2},
	} {
		if !p.Armed() {
			t.Errorf("%+v not Armed", p)
		}
	}
}

// TestInjectorDeterminism: two injectors with the same plan make the
// same decision sequence; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, DropEveryN: 4, CorruptEveryN: 4}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 1000; i++ {
		if a.DropDoorbell() != b.DropDoorbell() {
			t.Fatalf("drop decision %d diverged under the same seed", i)
		}
		a0, a1 := a.Corrupt(uint64(i), uint64(i)*3)
		b0, b1 := b.Corrupt(uint64(i), uint64(i)*3)
		if a0 != b0 || a1 != b1 {
			t.Fatalf("corrupt decision %d diverged under the same seed", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	plan.Seed = 43
	c := NewInjector(plan)
	same := true
	d := NewInjector(Plan{Seed: 42, DropEveryN: 4, CorruptEveryN: 4})
	for i := 0; i < 1000; i++ {
		if c.DropDoorbell() != d.DropDoorbell() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, CorruptEveryN: 1}) // every consult fires
	for i := 0; i < 500; i++ {
		w0, w1 := uint64(0x1234_5678_9abc_def0), uint64(0x0f0f_0f0f_0f0f_0f0f)
		c0, c1 := in.Corrupt(w0, w1)
		diff := popcount(c0^w0) + popcount(c1^w1)
		if diff != 1 {
			t.Fatalf("corruption %d flipped %d bits, want 1", i, diff)
		}
	}
	if got := in.Stats().CorruptWords; got != 500 {
		t.Errorf("CorruptWords = %d, want 500", got)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestStallWindows exercises the window arithmetic: outside before
// start, chunked inside, closed after, reopened by the period.
func TestStallWindows(t *testing.T) {
	in := NewInjector(Plan{StallCycles: 5000, StallStart: 10000, StallPeriod: 20000})
	if d := in.StallPause(0); d != 0 {
		t.Fatalf("pause before start = %d", d)
	}
	// Inside the first window: chunked pauses until the window closes.
	now, total := uint64(10000), uint64(0)
	for {
		d := in.StallPause(now)
		if d == 0 {
			break
		}
		if d > stallChunk {
			t.Fatalf("chunk %d exceeds stallChunk", d)
		}
		now += d
		total += d
	}
	if total != 5000 {
		t.Errorf("first window injected %d cycles, want 5000", total)
	}
	if now != 15000 {
		t.Errorf("window closed at %d, want 15000", now)
	}
	if d := in.StallPause(20000); d != 0 {
		t.Errorf("pause between windows = %d", d)
	}
	// Second period: the window reopens at start+period.
	if d := in.StallPause(30000); d == 0 {
		t.Error("periodic window did not reopen")
	}
	st := in.Stats()
	if st.Stalls != 2 {
		t.Errorf("Stalls = %d, want 2 (one per window entered)", st.Stalls)
	}
	if st.StallCycles < 5000 {
		t.Errorf("StallCycles = %d, want >= 5000", st.StallCycles)
	}
}

func TestOneShotStallEnds(t *testing.T) {
	in := NewInjector(Plan{StallCycles: 3000, StallStart: 100})
	if d := in.StallPause(100000); d != 0 {
		t.Errorf("one-shot stall still pausing long after the window: %d", d)
	}
}

func TestSlowPause(t *testing.T) {
	in := NewInjector(Plan{SlowFactor: 3})
	if d := in.SlowPause(200); d != 400 {
		t.Errorf("SlowPause(200) with factor 3 = %d, want 400", d)
	}
	if st := in.Stats().SlowdownCycles; st != 400 {
		t.Errorf("SlowdownCycles = %d, want 400", st)
	}
	off := NewInjector(Plan{DropEveryN: 2})
	if d := off.SlowPause(200); d != 0 {
		t.Errorf("SlowPause without a factor = %d, want 0", d)
	}
}

func TestStatsAddCoversEveryField(t *testing.T) {
	// Mirror of the harness reflection test, local so the package stands
	// alone: every uint64 leaf must survive Add.
	a := Stats{1, 2, 3, 4, 5}
	b := Stats{10, 20, 30, 40, 50}
	sum := a
	sum.Add(b)
	if sum != (Stats{11, 22, 33, 44, 55}) {
		t.Errorf("Add dropped a field: %+v", sum)
	}
}
