// Package fault is the deterministic fault injector for the offload
// path. A Plan describes what can go wrong on a run — the dedicated
// allocator core stalls (stolen by the hypervisor, preempted, thermally
// throttled), doorbell publications are lost, ring-slot words suffer
// bit flips, the server core runs slower than provisioned — and an
// Injector turns the plan into concrete, seeded decisions the transport
// and server consult at well-defined points.
//
// Everything derives from the plan's seed through one xorshift64* PRNG
// consulted in simulation order, so a faulty run is exactly as
// bit-reproducible as a clean one: same plan, same machine, same
// counters. With a zero (unarmed) plan no decision point fires and the
// simulated instruction stream is byte-identical to a build without the
// injector, which is what keeps the golden-counter suite pinned.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"nextgenmalloc/internal/sim"
)

// Plan describes the faults to inject into one run. The zero value is
// unarmed: no decision point ever fires.
type Plan struct {
	// Seed drives every randomized decision (doorbell drops, corrupt-bit
	// selection). Zero is treated as 1 so an armed plan is never
	// accidentally degenerate.
	Seed uint64

	// StallCycles > 0 opens server-core stall windows of this length:
	// within a window the server leases cycles but refuses to serve
	// (the "room" was taken away — §3.2's dedicated core is not ours).
	StallCycles uint64
	// StallStart is the wall cycle the first window opens.
	StallStart uint64
	// StallPeriod is the distance between window starts; 0 means a
	// single one-shot window. Must exceed StallCycles when set, so the
	// server gets air between windows.
	StallPeriod uint64

	// DropEveryN > 0 loses one in N doorbell (ring tail) publications:
	// the slots are written but the consumer keeps seeing the stale
	// tail until a later publication or an explicit re-ring delivers it.
	DropEveryN uint64

	// CorruptEveryN > 0 flips one seeded bit in one in N popped
	// ring-slot word pairs, modelling transport corruption the server
	// must survive (and, with resilience armed, NACK).
	CorruptEveryN uint64

	// SlowFactor > 1 makes the server core serve that many times
	// slower: each served request is followed by (factor-1)x its
	// service time of injected pause.
	SlowFactor uint64

	// Shard selects which fleet shard the plan targets, +1 encoded so
	// the zero value keeps its pre-fleet meaning: 0 broadcasts to every
	// shard (and to the lone server of a non-fleet run), N > 0 targets
	// shard N-1 only. ParsePlan's "shard=n" key maps to Shard = n+1.
	Shard int
}

// TargetsShard reports whether the plan applies to fleet shard i.
func (p Plan) TargetsShard(i int) bool {
	return p.Shard == 0 || p.Shard == i+1
}

// Armed reports whether the plan injects anything at all.
func (p Plan) Armed() bool {
	return p.StallCycles > 0 || p.DropEveryN > 0 || p.CorruptEveryN > 0 || p.SlowFactor > 1
}

// String renders the plan in ParsePlan's spec syntax.
func (p Plan) String() string {
	var parts []string
	add := func(k string, v uint64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	if p.Shard > 0 {
		parts = append(parts, fmt.Sprintf("shard=%d", p.Shard-1))
	}
	add("seed", p.Seed)
	add("stall-start", p.StallStart)
	add("stall-len", p.StallCycles)
	add("stall-period", p.StallPeriod)
	add("drop", p.DropEveryN)
	add("corrupt", p.CorruptEveryN)
	if p.SlowFactor > 1 {
		add("slow", p.SlowFactor)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated key=value spec, e.g.
//
//	stall-start=100000,stall-len=50000,stall-period=400000,drop=64
//
// Keys: seed, stall-start, stall-len (window length in cycles),
// stall-period (0/absent = one-shot), drop (1-in-N doorbell loss),
// corrupt (1-in-N word bit flips), slow (server slow-down factor),
// shard (the single fleet shard the plan targets; absent = every
// shard). A duplicate key is an error, not a silent last-win; slow=1
// (serve at ×1 speed) injects nothing and is rejected like drop=0
// would be. An empty spec returns (nil, nil); the spec "none" does too.
func ParsePlan(spec string) (*Plan, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{}
	seen := map[string]bool{}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		k = strings.TrimSpace(k)
		if seen[k] {
			return nil, fmt.Errorf("fault: duplicate key %q in %q", k, spec)
		}
		seen[k] = true
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad value in %q: %v", kv, err)
		}
		switch k {
		case "seed":
			p.Seed = n
		case "stall-start":
			p.StallStart = n
		case "stall-len":
			p.StallCycles = n
		case "stall-period":
			p.StallPeriod = n
		case "drop":
			p.DropEveryN = n
		case "corrupt":
			p.CorruptEveryN = n
		case "slow":
			if n == 1 {
				n = 0 // ×1 = full speed: treat as unarmed, like drop=0
			}
			p.SlowFactor = n
		case "shard":
			if n > 1<<20 {
				return nil, fmt.Errorf("fault: implausible shard index %d", n)
			}
			p.Shard = int(n) + 1
		default:
			return nil, fmt.Errorf("fault: unknown key %q (want seed, stall-start, stall-len, stall-period, drop, corrupt, slow, shard)", k)
		}
	}
	if p.StallPeriod > 0 && p.StallPeriod <= p.StallCycles {
		return nil, fmt.Errorf("fault: stall-period %d must exceed stall-len %d", p.StallPeriod, p.StallCycles)
	}
	if (p.StallStart > 0 || p.StallPeriod > 0) && p.StallCycles == 0 {
		return nil, fmt.Errorf("fault: stall-start/stall-period without stall-len")
	}
	if !p.Armed() {
		return nil, fmt.Errorf("fault: plan %q injects nothing", spec)
	}
	return p, nil
}

// ParsePlans parses a multi-plan spec: ";"-separated ParsePlan specs,
// each optionally carrying its own shard selector, e.g.
//
//	shard=2,stall-start=50000,stall-len=60000;shard=3,drop=64
//
// An empty spec or "none" returns (nil, nil). Two plans may not target
// the same shard (including two broadcast plans): each shard's injector
// evaluates exactly one plan.
func ParsePlans(spec string) ([]Plan, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var plans []Plan
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("fault: empty plan in multi-plan spec %q", spec)
		}
		p, err := ParsePlan(part)
		if err != nil {
			return nil, err
		}
		if seen[p.Shard] {
			if p.Shard == 0 {
				return nil, fmt.Errorf("fault: two broadcast plans in %q (give each a shard=)", spec)
			}
			return nil, fmt.Errorf("fault: two plans target shard %d in %q", p.Shard-1, spec)
		}
		seen[p.Shard] = true
		plans = append(plans, *p)
	}
	if len(plans) > 1 && seen[0] {
		return nil, fmt.Errorf("fault: broadcast plan mixed with shard-targeted plans in %q", spec)
	}
	return plans, nil
}

// Stats counts what the injector actually did (host-side telemetry).
type Stats struct {
	// Stalls counts stall windows the server observed; StallCycles is
	// the pause time injected inside them.
	Stalls      uint64
	StallCycles uint64
	// DoorbellDrops counts suppressed tail publications.
	DoorbellDrops uint64
	// CorruptWords counts word pairs that had a bit flipped.
	CorruptWords uint64
	// SlowdownCycles is the extra service pause injected by SlowFactor.
	SlowdownCycles uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Stalls += o.Stalls
	s.StallCycles += o.StallCycles
	s.DoorbellDrops += o.DoorbellDrops
	s.CorruptWords += o.CorruptWords
	s.SlowdownCycles += o.SlowdownCycles
}

// stallChunk bounds a single injected pause so the stalled server still
// polls Stopping between chunks — a stall window must not turn shutdown
// into a hang.
const stallChunk = 2048

// Injector evaluates one Plan over one run. It is consulted from
// simulated-thread context (one thread runs at a time), so its host
// state needs no synchronization.
type Injector struct {
	plan Plan
	rng  uint64
	// wall is the scheduler's wall clock, observed through the machine
	// probe; stall windows are defined in wall time because the fault
	// they model (core theft) is external to the simulated program.
	wall    uint64
	inStall bool
	stats   Stats
}

// NewInjector builds an injector for plan.
func NewInjector(p Plan) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{plan: p, rng: seed}
}

// NewShardInjector builds fleet shard i's injector: the plan evaluated
// under a shard-decorrelated seed (effective seed ⊕ shard<<32). Shard 0
// keeps the plan's own stream, so a single-server run is bit-identical
// to NewInjector. Stall windows consume no randomness — they are pure
// functions of the wall clock — so a targeted stall covers the same
// cycles on the same shard under any topology or interleaving; drops
// and corruption draw from the shard's own stream, independent of
// every other shard's.
func NewShardInjector(p Plan, shard int) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	seed ^= uint64(shard) << 32
	return &Injector{plan: p, rng: seed}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns what has been injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Attach wires the injector into the machine's scheduler hook so it
// tracks the wall clock (chained with any other probe via AddProbe).
func (in *Injector) Attach(m *sim.Machine) {
	m.AddProbe(in.observe)
}

func (in *Injector) observe(wall uint64) {
	in.wall = wall
}

// rnd is xorshift64*: cheap, full-period, and plenty for picking drop
// victims and corrupt bits.
func (in *Injector) rnd() uint64 {
	x := in.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.rng = x
	return x * 0x2545F4914F6CDD1D
}

// oneIn fires once per n consultations on average (false when n is 0).
func (in *Injector) oneIn(n uint64) bool {
	if n == 0 {
		return false
	}
	return in.rnd()%n == 0
}

// StallPause reports how many cycles the server core must pause right
// now to honour the plan's stall windows, given its own clock. It
// returns 0 outside a window. Pauses are chunked (stallChunk) so the
// caller keeps polling Stopping; call again after pausing to learn
// whether the window persists.
func (in *Injector) StallPause(now uint64) uint64 {
	p := in.plan
	if p.StallCycles == 0 {
		return 0
	}
	// Judge the window against the latest clock we know of: the server's
	// own clock or the machine wall clock, whichever ran ahead.
	if in.wall > now {
		now = in.wall
	}
	if now < p.StallStart {
		in.inStall = false
		return 0
	}
	off := now - p.StallStart
	if p.StallPeriod > 0 {
		off %= p.StallPeriod
	}
	if off >= p.StallCycles {
		in.inStall = false
		return 0
	}
	if !in.inStall {
		in.inStall = true
		in.stats.Stalls++
	}
	chunk := p.StallCycles - off
	if chunk > stallChunk {
		chunk = stallChunk
	}
	in.stats.StallCycles += chunk
	return chunk
}

// NextStall returns the clock at which the next stall window opens for
// a caller whose clock is now, or 0 when no window ever will. It is the
// time-warp event horizon for the server's wait loop: for every clock c
// with now <= c < NextStall(now), StallPause(c) takes the same
// outside-window branch and returns 0, so idle rounds may be skipped up
// to (but never across) the returned boundary. Pure: no injector state
// changes. It mirrors StallPause's clamping of now to the wall clock,
// which is frozen between scheduler probes.
func (in *Injector) NextStall(now uint64) uint64 {
	p := in.plan
	if p.StallCycles == 0 {
		return 0
	}
	eff := now
	if in.wall > eff {
		eff = in.wall
	}
	if eff < p.StallStart {
		return p.StallStart
	}
	off := eff - p.StallStart
	if p.StallPeriod > 0 {
		off %= p.StallPeriod
		if off < p.StallCycles {
			// Inside a window right now: return the caller's own clock
			// (not the wall-clamped time, which may lie ahead of it) so
			// no round at or after now is ever skipped.
			return now
		}
		return eff + (p.StallPeriod - off)
	}
	if off < p.StallCycles {
		return now // inside the one-shot window
	}
	return 0 // one-shot window already passed
}

// DropDoorbell decides whether this tail publication is lost.
func (in *Injector) DropDoorbell() bool {
	if !in.oneIn(in.plan.DropEveryN) {
		return false
	}
	in.stats.DoorbellDrops++
	return true
}

// Corrupt possibly flips one seeded bit across a popped word pair.
func (in *Injector) Corrupt(w0, w1 uint64) (uint64, uint64) {
	if !in.oneIn(in.plan.CorruptEveryN) {
		return w0, w1
	}
	in.stats.CorruptWords++
	bit := in.rnd() % 128
	if bit < 64 {
		return w0 ^ 1<<bit, w1
	}
	return w0, w1 ^ 1<<(bit-64)
}

// SlowPause converts a request's service time into the extra pause the
// slow-down factor demands (0 when the factor is off).
func (in *Injector) SlowPause(serviceCycles uint64) uint64 {
	if in.plan.SlowFactor <= 1 {
		return 0
	}
	extra := serviceCycles * (in.plan.SlowFactor - 1)
	in.stats.SlowdownCycles += extra
	return extra
}
