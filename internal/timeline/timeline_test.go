package timeline

import (
	"fmt"
	"reflect"
	"testing"

	"nextgenmalloc/internal/sim"
)

// --- histogram geometry -----------------------------------------------------

func TestHistIndexBounds(t *testing.T) {
	// Every value must land in range, its bucket's lower bound must not
	// exceed it, and for v >= histSub the bucket width bounds the
	// relative error by 1/histSub (12.5%).
	vals := []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 4096, 1 << 20, 1<<40 + 12345, ^uint64(0)}
	prev := -1
	for _, v := range vals {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		lo := histLower(idx)
		if lo > v {
			t.Fatalf("histLower(histIndex(%d)) = %d > value", v, lo)
		}
		if v >= histSub && v-lo > v/histSub {
			t.Fatalf("value %d bucket lower %d: error %d exceeds 1/%d bound", v, lo, v-lo, histSub)
		}
	}
	// Exact below histSub.
	for v := uint64(0); v < histSub; v++ {
		if got := histLower(histIndex(v)); got != v {
			t.Fatalf("small value %d not exact: lower %d", v, got)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count != 1000 || h.Max != 1000 {
		t.Fatalf("count %d max %d after 1000 observations", h.Count, h.Max)
	}
	for _, tc := range []struct {
		q     float64
		exact uint64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}} {
		// The bucket-midpoint estimate lands within half a bucket width
		// (1/(2*histSub) = 6.25%) of the exact order statistic, on
		// either side.
		got := h.Quantile(tc.q)
		slack := tc.exact/(2*histSub) + 1
		if got < tc.exact-slack || got > tc.exact+slack {
			t.Errorf("p%.0f = %d, want within [%d, %d]", tc.q*100, got, tc.exact-slack, tc.exact+slack)
		}
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("q>=1 should return the exact max, got %d", got)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty histogram should report zeros")
	}
}

func TestHistQuantileMidpointClamp(t *testing.T) {
	// A single observation just past its bucket's lower bound puts the
	// midpoint above the observed maximum; the estimate must clamp to
	// Max so no quantile ever exceeds an actually-observed value.
	var h Hist
	h.Observe(961) // bucket [960, 1024): midpoint 992 > max 961
	for _, q := range []float64{0, 0.5, 0.99} {
		if got := h.Quantile(q); got != 961 {
			t.Fatalf("Quantile(%v) = %d, want clamped max 961", q, got)
		}
	}
	// Small values sit in width-1 buckets and stay exact.
	var s Hist
	s.Observe(5)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("small-value quantile = %d, want exact 5", got)
	}
}

// --- Add coverage (reflection, same pattern as ring.Stats.Add) --------------

func fillLeaves(v reflect.Value, next *uint64, mul uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next * mul)
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillLeaves(v.Index(i), next, mul)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillLeaves(v.Field(i), next, mul)
		}
	default:
		panic("fillLeaves: unhandled kind " + v.Kind().String())
	}
}

// checkMerged verifies every uint64 leaf was merged: summed normally,
// or taken-by-maximum for fields named "Max" (Hist.Max is a high-water
// mark, not a counter). Either way a dropped field fails: the b-side
// fill uses a larger multiplier, so keeping a's value alone can never
// satisfy the max rule.
func checkMerged(t *testing.T, path string, a, b, merged reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Uint64:
		want := a.Uint() + b.Uint()
		if pathEndsWith(path, ".Max") {
			want = max(a.Uint(), b.Uint())
		}
		if merged.Uint() != want {
			t.Errorf("%s: Add gave %d, want %d (a=%d b=%d)", path, merged.Uint(), want, a.Uint(), b.Uint())
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			checkMerged(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), merged.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			checkMerged(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i), merged.Field(i))
		}
	default:
		t.Fatalf("%s: unhandled kind %s", path, a.Kind())
	}
}

func pathEndsWith(path, suffix string) bool {
	return len(path) >= len(suffix) && path[len(path)-len(suffix):] == suffix
}

func TestHistAddCoversEveryField(t *testing.T) {
	var a, b Hist
	n := uint64(0)
	fillLeaves(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	fillLeaves(reflect.ValueOf(&b).Elem(), &n, 1000)
	merged := a
	merged.Add(b)
	checkMerged(t, "Hist", reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(merged))
}

func TestOpLatencyAddCoversEveryField(t *testing.T) {
	var a, b OpLatency
	n := uint64(0)
	fillLeaves(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	fillLeaves(reflect.ValueOf(&b).Elem(), &n, 1000)
	merged := a
	merged.Add(b)
	checkMerged(t, "OpLatency", reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(merged))
}

func TestCoreSampleAddCoversEveryField(t *testing.T) {
	var a, b CoreSample
	n := uint64(0)
	fillLeaves(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	fillLeaves(reflect.ValueOf(&b).Elem(), &n, 1000)
	merged := a
	merged.Add(b)
	checkMerged(t, "CoreSample", reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(merged))
}

// --- spans ------------------------------------------------------------------

func TestSpanPartition(t *testing.T) {
	// queue-wait + service = end-to-end must hold per span, including
	// under cross-core clock skew (dequeue stamped before enqueue).
	spans := []Span{
		{Op: OpMalloc, Enqueue: 100, Dequeue: 150, Complete: 220},
		{Op: OpFree, Enqueue: 100, Dequeue: 100, Complete: 100},
		{Op: OpBatch, Enqueue: 200, Dequeue: 180, Complete: 260}, // skewed: deq < enq
		{Op: OpMalloc, Enqueue: 0, Dequeue: 0, Complete: 5},
	}
	for i, s := range spans {
		if s.QueueWait()+s.Service() != s.EndToEnd() {
			t.Errorf("span %d: %d + %d != %d", i, s.QueueWait(), s.Service(), s.EndToEnd())
		}
	}
	if spans[2].QueueWait() != 0 {
		t.Errorf("skewed span should saturate queue wait at 0, got %d", spans[2].QueueWait())
	}
}

func TestRecorderCapsSpansButNotHistograms(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := uint64(0); i < 10; i++ {
		r.Record(OpMalloc, 0, i*10, i*10+5, i*10+9)
	}
	if len(r.Spans) != 4 {
		t.Errorf("span buffer holds %d, want cap 4", len(r.Spans))
	}
	if r.Dropped != 6 {
		t.Errorf("dropped %d, want 6", r.Dropped)
	}
	if got := r.ByOp[OpMalloc].Total.Count; got != 10 {
		t.Errorf("histogram count %d, want 10 (drops must not lose histogram mass)", got)
	}
	if !r.HasSpans() || r.TotalCount() != 10 {
		t.Errorf("HasSpans/TotalCount inconsistent: %v %d", r.HasSpans(), r.TotalCount())
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpMalloc: "malloc", OpFree: "free", OpBatch: "batch", NumOps: "unknown"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

// --- sampler on a live machine ----------------------------------------------

// smallMachine builds a 2-core machine with two concurrent threads that
// issue enough traffic to cross many sample intervals. Two live threads
// matter: with a single runnable thread the scheduler grants an
// unbounded lease and the probe only fires at retirement.
func smallMachine(stores int) *sim.Machine {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	m := sim.New(cfg)
	for core := 0; core < 2; core++ {
		m.Spawn(fmt.Sprintf("worker%d", core), core, func(t *sim.Thread) {
			page := t.Mmap(8)
			for i := 0; i < stores; i++ {
				t.Store64(page+uint64(i%4096)*8, uint64(i))
			}
		})
	}
	return m
}

func TestSamplerSnapshotsMonotone(t *testing.T) {
	m := smallMachine(20000)
	s := NewSampler(1000, 0)
	s.Attach(m)
	m.Run()
	s.Finish()
	series := s.Series()
	if len(series.Samples) < 5 {
		t.Fatalf("only %d samples; expected a sampled run", len(series.Samples))
	}
	for i := 1; i < len(series.Samples); i++ {
		if series.Samples[i].Cycle <= series.Samples[i-1].Cycle {
			t.Fatalf("sample cycles not strictly increasing at %d", i)
		}
		a := series.CoresAt(i-1, nil).Counters
		b := series.CoresAt(i, nil).Counters
		if b.Instructions < a.Instructions || b.Stores < a.Stores {
			t.Fatalf("cumulative counters regressed at sample %d", i)
		}
	}
	// The final snapshot covers the whole run: its totals must match the
	// machine's end state.
	last := series.CoresAt(len(series.Samples)-1, nil).Counters
	want := m.TotalCounters()
	if last.Instructions != want.Instructions || last.Stores != want.Stores {
		t.Errorf("final sample (%d instr, %d stores) != machine total (%d, %d)",
			last.Instructions, last.Stores, want.Instructions, want.Stores)
	}
}

func TestSamplerDecimationBoundsMemory(t *testing.T) {
	m := smallMachine(40000)
	const capacity = 8
	s := NewSampler(100, capacity) // tiny interval: forces many decimations
	s.Attach(m)
	m.Run()
	s.Finish()
	series := s.Series()
	if len(series.Samples) > capacity {
		t.Fatalf("series grew to %d samples, capacity %d", len(series.Samples), capacity)
	}
	if series.Interval <= 100 {
		t.Fatalf("interval %d did not double despite overflow", series.Interval)
	}
	for i := 1; i < len(series.Samples); i++ {
		if series.Samples[i].Cycle <= series.Samples[i-1].Cycle {
			t.Fatalf("decimated series out of order at %d", i)
		}
	}
}

func TestSamplerProbesGauges(t *testing.T) {
	m := smallMachine(5000)
	s := NewSampler(500, 0)
	s.Attach(m)
	s.ProbeRings(func() RingState { return RingState{MallocDepth: 3, FreeDepth: 7} })
	s.ProbeServer(func() ServerState { return ServerState{BusyCycles: 11} })
	m.Run()
	s.Finish()
	for i, smp := range s.Series().Samples {
		if smp.Rings != (RingState{MallocDepth: 3, FreeDepth: 7}) || smp.Server.BusyCycles != 11 {
			t.Fatalf("sample %d missing gauge values: %+v %+v", i, smp.Rings, smp.Server)
		}
	}
}
