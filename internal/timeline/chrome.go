package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceRun is one run's worth of trace data: the sampled counter series
// and (for offload allocators) the recorded latency spans. ServerCore
// is the dedicated core's index, or -1 when the run had none. Tenants
// carries service-workload request spans, one trace track per tenant.
type TraceRun struct {
	Name       string
	Series     *Series
	Latency    *LatencyRecorder
	ServerCore int
	Tenants    []TenantSpan
	// Failover holds the fleet's re-home transitions (empty unless the
	// run armed shard failover), drawn as instant events on the moving
	// thread's track.
	Failover []FailoverEvent
}

// FailoverEvent is one shard re-home transition: at Cycle, Thread moved
// its malloc traffic From one shard To another. Mirrors the fleet's
// event record without importing core (core imports timeline).
type FailoverEvent struct {
	Cycle  uint64
	Thread int
	From   int
	To     int
}

// TenantSpan is one service request's life on a tenant-labeled track:
// it arrives (open loop), waits for a worker, and is served until
// Complete. Class names the request's op class; Violated marks spans
// that blew their SLO budget (highlighted in trace args).
type TenantSpan struct {
	Tenant   int
	Class    string
	Arrival  uint64
	Start    uint64
	Complete uint64
	Violated bool
}

// tenantTidBase offsets tenant track ids past any plausible core count
// so tenant tracks never collide with per-core tracks.
const tenantTidBase = 1 << 20

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the "JSON Array Format" consumed by
// chrome://tracing and Perfetto). ts/dur are in microseconds by
// convention; we map 1 simulated cycle to 1 µs so cycle arithmetic
// survives the viewer untouched.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the runs as Chrome trace-event JSON: one
// process per run, counter ("C") events per core with per-interval
// deltas of the headline PMU counters, ring/server gauges, and one
// complete ("X") event per retained offload span on the client's
// thread track. The output loads in chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for pid, run := range runs {
		if err := writeRun(emit, pid, run); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeRun(emit func(chromeEvent) error, pid int, run TraceRun) error {
	// Metadata: name the process after the run, the threads after cores.
	meta := func(name string, tid int, label string) error {
		return emit(chromeEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	if err := meta("process_name", 0, run.Name); err != nil {
		return err
	}
	s := run.Series
	if s != nil && len(s.Samples) > 0 {
		for c := range s.Samples[0].Cores {
			label := fmt.Sprintf("core %d", c)
			if c == run.ServerCore {
				label = fmt.Sprintf("core %d (server)", c)
			}
			if err := meta("thread_name", c, label); err != nil {
				return err
			}
		}
	}

	seen := map[int]bool{}
	for _, sp := range run.Tenants {
		if !seen[sp.Tenant] {
			seen[sp.Tenant] = true
			label := fmt.Sprintf("tenant %d", sp.Tenant)
			if err := meta("thread_name", tenantTidBase+sp.Tenant, label); err != nil {
				return err
			}
		}
	}

	if err := writeCounters(emit, pid, run); err != nil {
		return err
	}
	if err := writeSpans(emit, pid, run); err != nil {
		return err
	}
	if err := writeFailover(emit, pid, run); err != nil {
		return err
	}
	return writeTenantSpans(emit, pid, run)
}

// writeFailover emits each shard re-home transition as a ph "i" instant
// event on the moving client's thread track, so failover and recovery
// line up visually with the latency spans around them.
func writeFailover(emit func(chromeEvent) error, pid int, run TraceRun) error {
	for _, ev := range run.Failover {
		if err := emit(chromeEvent{
			Name: "re-home", Ph: "i",
			Ts: ev.Cycle, Pid: pid, Tid: ev.Thread, Cat: "failover",
			Args: map[string]any{
				"from_shard": ev.From,
				"to_shard":   ev.To,
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeCounters emits per-interval counter deltas as ph "C" events.
func writeCounters(emit func(chromeEvent) error, pid int, run TraceRun) error {
	s := run.Series
	if s == nil {
		return nil
	}
	for i := 1; i < len(s.Samples); i++ {
		smp := s.Samples[i]
		prev := s.Samples[i-1]
		for c := range smp.Cores {
			d := smp.Cores[c].Counters.Sub(prev.Cores[c].Counters)
			if d.Instructions == 0 && d.Loads == 0 && d.Stores == 0 {
				continue // core idle this interval; skip the flat track
			}
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("core%d misses", c), Ph: "C",
				Ts: smp.Cycle, Pid: pid, Tid: c, Cat: "pmu",
				Args: map[string]any{
					"llc_load":   d.LLCLoadMisses,
					"llc_store":  d.LLCStoreMisses,
					"dtlb_load":  d.DTLBLoadMisses,
					"dtlb_store": d.DTLBStoreMisses,
				},
			}); err != nil {
				return err
			}
		}
		if smp.Rings != prev.Rings || smp.Rings != (RingState{}) {
			if err := emit(chromeEvent{
				Name: "rings", Ph: "C",
				Ts: smp.Cycle, Pid: pid, Tid: 0, Cat: "transport",
				Args: map[string]any{
					"malloc_depth": smp.Rings.MallocDepth,
					"free_depth":   smp.Rings.FreeDepth,
				},
			}); err != nil {
				return err
			}
		}
		if smp.Server != (ServerState{}) {
			dBusy := smp.Server.BusyCycles - prev.Server.BusyCycles
			dIdle := smp.Server.IdleCycles - prev.Server.IdleCycles
			if err := emit(chromeEvent{
				Name: "server", Ph: "C",
				Ts: smp.Cycle, Pid: pid, Tid: 0, Cat: "transport",
				Args: map[string]any{
					"busy_cycles": dBusy,
					"idle_cycles": dIdle,
				},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSpans emits each retained span as a ph "X" complete event on the
// client's thread track, with the queue-wait/service split in args.
func writeSpans(emit func(chromeEvent) error, pid int, run TraceRun) error {
	if run.Latency == nil {
		return nil
	}
	for _, sp := range run.Latency.Spans {
		dur := sp.EndToEnd()
		if dur == 0 {
			dur = 1 // zero-duration X events collapse invisibly in viewers
		}
		if err := emit(chromeEvent{
			Name: sp.Op.String(), Ph: "X",
			Ts: sp.Enqueue, Dur: dur,
			Pid: pid, Tid: sp.Client, Cat: "offload",
			Args: map[string]any{
				"queue_wait": sp.QueueWait(),
				"service":    sp.Service(),
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeTenantSpans emits each retained service request as a ph "X"
// complete event on its tenant's track, queue-wait/service split and
// SLO verdict in args.
func writeTenantSpans(emit func(chromeEvent) error, pid int, run TraceRun) error {
	for _, sp := range run.Tenants {
		dur := sp.Complete - sp.Arrival
		if dur == 0 {
			dur = 1 // zero-duration X events collapse invisibly in viewers
		}
		if err := emit(chromeEvent{
			Name: sp.Class, Ph: "X",
			Ts: sp.Arrival, Dur: dur,
			Pid: pid, Tid: tenantTidBase + sp.Tenant, Cat: "slo",
			Args: map[string]any{
				"queue_wait": sp.Start - sp.Arrival,
				"service":    sp.Complete - sp.Start,
				"violated":   sp.Violated,
			},
		}); err != nil {
			return err
		}
	}
	return nil
}
