package timeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"nextgenmalloc/internal/sim"
)

// testSeries builds a tiny two-sample, two-core series with ring and
// server gauges.
func testSeries() *Series {
	mk := func(cycle, instr, llc uint64) Sample {
		cores := make([]CoreSample, 2)
		for c := range cores {
			cores[c].Counters = sim.Counters{
				Cycles: cycle, Instructions: instr, Loads: instr,
				LLCLoadMisses: llc,
			}
		}
		return Sample{
			Cycle: cycle, Cores: cores,
			Rings:  RingState{MallocDepth: 1, FreeDepth: 2},
			Server: ServerState{BusyCycles: cycle / 2, IdleCycles: cycle / 2},
		}
	}
	return &Series{Interval: 100, Samples: []Sample{mk(100, 50, 5), mk(200, 120, 9)}}
}

func TestWriteChromeTraceIsValidTraceEventJSON(t *testing.T) {
	rec := NewLatencyRecorder(0)
	rec.Record(OpMalloc, 1, 110, 130, 170)
	rec.Record(OpBatch, 2, 150, 150, 150) // zero-duration span must still emit dur >= 1

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TraceRun{{
		Name: "test/run", Series: testSeries(), Latency: rec, ServerCore: 1,
	}})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d lacks ph: %v", i, ev)
		}
		phases[ph]++
		for _, field := range []string{"pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d lacks %s: %v", i, field, ev)
			}
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d lacks numeric ts: %v", i, ev)
			}
		}
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 1 {
				t.Fatalf("X event %d needs dur >= 1: %v", i, ev)
			}
		}
	}
	// Metadata, counter, and span events must all be present.
	for _, ph := range []string{"M", "C", "X"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events emitted (got %v)", ph, phases)
		}
	}
	if phases["X"] != 2 {
		t.Errorf("want 2 span events, got %d", phases["X"])
	}
}

func TestWriteChromeTraceNoSpans(t *testing.T) {
	// A counter-only trace (non-offload run) must still be valid JSON
	// with counter events and no X events.
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TraceRun{{
		Name: "inline/run", Series: testSeries(), Latency: NewLatencyRecorder(0), ServerCore: -1,
	}})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	hasC, hasX := false, false
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "C":
			hasC = true
		case "X":
			hasX = true
		}
	}
	if !hasC {
		t.Error("counter-only trace has no C events")
	}
	if hasX {
		t.Error("spanless trace emitted X events")
	}
}

func TestWriteChromeTraceEmptyRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestWriteChromeTraceTenantTracks(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []TraceRun{{
		Name: "slo/run", Series: testSeries(), Latency: NewLatencyRecorder(0), ServerCore: -1,
		Tenants: []TenantSpan{
			{Tenant: 0, Class: "interactive", Arrival: 100, Start: 120, Complete: 300, Violated: true},
			{Tenant: 2, Class: "bulk", Arrival: 150, Start: 150, Complete: 150}, // zero-duration: dur >= 1
			{Tenant: 0, Class: "interactive", Arrival: 400, Start: 410, Complete: 500},
		},
	}})
	if err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	tracks := map[float64]bool{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				if name, _ := args["name"].(string); len(name) >= 6 && name[:6] == "tenant" {
					tracks[ev["tid"].(float64)] = true
				}
			}
		}
		if ev["cat"] == "slo" {
			spans++
			tid := ev["tid"].(float64)
			if tid < float64(tenantTidBase) {
				t.Errorf("slo span tid %v below tenant track base", tid)
			}
			if dur := ev["dur"].(float64); dur < 1 {
				t.Errorf("slo span dur %v < 1", dur)
			}
			args := ev["args"].(map[string]any)
			for _, k := range []string{"queue_wait", "service", "violated"} {
				if _, ok := args[k]; !ok {
					t.Errorf("slo span missing arg %s: %v", k, args)
				}
			}
		}
	}
	if spans != 3 {
		t.Errorf("want 3 tenant spans, got %d", spans)
	}
	// One viewer track per distinct tenant (0 and 2), not per span.
	if len(tracks) != 2 {
		t.Errorf("want 2 tenant thread_name tracks, got %d", len(tracks))
	}
}
