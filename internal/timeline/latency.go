package timeline

import "math/bits"

// Op classifies an offload request for latency accounting.
type Op int

const (
	// OpMalloc is a synchronous malloc round trip (client spins on the
	// response line).
	OpMalloc Op = iota
	// OpFree is an asynchronous free popped singly by the server.
	OpFree
	// OpBatch is a free drained through the vectored PopN path.
	OpBatch
	// NumOps sizes per-op arrays.
	NumOps
)

// String names the op for reports and trace events.
func (o Op) String() string {
	switch o {
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpBatch:
		return "batch"
	}
	return "unknown"
}

// Histogram geometry: log2 major buckets with histSub linear sub-buckets
// each, HDR style. Quantile reports bucket midpoints, so relative error
// is bounded by half the sub-bucket width, 1/(2*histSub) (6.25%).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Hist is a fixed-size log2-linear histogram of cycle counts.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// histIndex maps a value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	top := bits.Len64(v) - 1
	return (top-histSubBits+1)*histSub + int((v>>(top-histSubBits))&(histSub-1))
}

// histLower returns the smallest value mapping to bucket idx.
func histLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	b := idx / histSub
	sub := idx % histSub
	return uint64(histSub+sub) << (b - 1)
}

// histMid returns the midpoint of bucket idx (the quantile estimate).
// Buckets below histSub have width 1, so small values stay exact.
func histMid(idx int) uint64 {
	lo := histLower(idx)
	if idx+1 >= histBuckets {
		return lo
	}
	return lo + (histLower(idx+1)-lo)/2
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[histIndex(v)]++
}

// Add merges o into h. Count/Sum/Buckets add; Max merges by maximum
// (the reflection coverage test special-cases it).
func (h *Hist) Add(o Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the midpoint of the bucket holding the q-th quantile
// (0 < q < 1), clamped to the exact observed Max; q >= 1 returns Max.
// The lower bound would systematically under-report tail latencies for
// SLO comparisons; the midpoint bounds the relative error by half the
// sub-bucket width (6.25%), and small values (buckets of width 1) stay
// exact.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			if est := histMid(i); est < h.Max {
				return est
			}
			return h.Max
		}
	}
	return h.Max
}

// OpLatency holds the three distributions for one op kind. The
// invariant Queue + Service = Total holds per observed span (Span
// defines EndToEnd as the sum), so the three Sums partition exactly.
type OpLatency struct {
	Queue   Hist
	Service Hist
	Total   Hist
}

// Add merges o into l field-wise.
func (l *OpLatency) Add(o OpLatency) {
	l.Queue.Add(o.Queue)
	l.Service.Add(o.Service)
	l.Total.Add(o.Total)
}

// Span is one offload request's life cycle in cycles: pushed onto the
// ring at Enqueue (producer clock), popped by the server at Dequeue,
// finished at Complete (both server clock).
type Span struct {
	Op     Op
	Client int
	// Enqueue is the producer-core clock at ring stage time; Dequeue and
	// Complete are server-core clocks. Producer and server clocks can
	// differ by up to the scheduler quantum, so the derived phases
	// saturate rather than underflow.
	Enqueue  uint64
	Dequeue  uint64
	Complete uint64
}

// QueueWait is the time the request sat in the ring (saturated at 0:
// cross-core clocks may be skewed by up to the scheduler quantum).
func (s Span) QueueWait() uint64 {
	if s.Dequeue <= s.Enqueue {
		return 0
	}
	return s.Dequeue - s.Enqueue
}

// Service is the server's processing time (saturated at 0).
func (s Span) Service() uint64 {
	if s.Complete <= s.Dequeue {
		return 0
	}
	return s.Complete - s.Dequeue
}

// EndToEnd is defined as QueueWait + Service, so the partition identity
// queue-wait + service = end-to-end holds exactly per span even under
// cross-core clock skew.
func (s Span) EndToEnd() uint64 {
	return s.QueueWait() + s.Service()
}

// DefaultSpanCap bounds the retained raw spans (the histograms keep
// counting past it; only Chrome-trace detail is dropped).
const DefaultSpanCap = 1 << 17

// LatencyRecorder folds offload spans into per-op histograms and keeps
// a bounded buffer of raw spans for trace export. Host-side only.
type LatencyRecorder struct {
	ByOp [NumOps]OpLatency
	// Spans retains up to cap raw spans in completion order; Dropped
	// counts the overflow (histograms still include them).
	Spans   []Span
	Dropped uint64

	cap int
}

// NewLatencyRecorder builds a recorder retaining at most spanCap raw
// spans (DefaultSpanCap when <= 0).
func NewLatencyRecorder(spanCap int) *LatencyRecorder {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	return &LatencyRecorder{cap: spanCap}
}

// Record folds one completed request into the histograms and, capacity
// permitting, the raw span buffer.
func (r *LatencyRecorder) Record(op Op, client int, enqueue, dequeue, complete uint64) {
	s := Span{Op: op, Client: client, Enqueue: enqueue, Dequeue: dequeue, Complete: complete}
	l := &r.ByOp[op]
	l.Queue.Observe(s.QueueWait())
	l.Service.Observe(s.Service())
	l.Total.Observe(s.EndToEnd())
	if len(r.Spans) < r.cap {
		r.Spans = append(r.Spans, s)
	} else {
		r.Dropped++
	}
}

// HasSpans reports whether any request was recorded.
func (r *LatencyRecorder) HasSpans() bool {
	return r != nil && r.TotalCount() > 0
}

// TotalCount returns the number of recorded requests across ops.
func (r *LatencyRecorder) TotalCount() uint64 {
	var n uint64
	for i := range r.ByOp {
		n += r.ByOp[i].Total.Count
	}
	return n
}
