// Package timeline adds time resolution to the repository's telemetry:
// instead of only end-of-run aggregates, an armed Sampler snapshots
// every core's PMU counters, the per-class miss attribution, the
// offload rings' occupancy, and the server daemon's busy/idle state at
// a fixed cycle interval, and a LatencyRecorder turns per-request
// enqueue/dequeue/completion stamps into offload latency histograms
// (queue-wait and service time separated).
//
// Everything in this package is host-side observation state, in the
// same sense as ring.Stats and the region table: arming a sampler or a
// recorder issues zero simulated instructions, loads, or stores, so a
// sampled run's PMU counters are bit-identical to an unsampled run's
// (the harness pins this with a test). The series is bounded: when the
// sample buffer fills, every other sample is dropped and the interval
// doubles, so memory stays O(capacity) regardless of run length.
package timeline

import "nextgenmalloc/internal/sim"

// DefaultCapacity bounds the series length when the caller does not.
const DefaultCapacity = 512

// CoreSample is one core's cumulative snapshot: the PMU counters and
// the per-address-class attribution as of the sample's cycle.
type CoreSample struct {
	Counters sim.Counters
	Classes  sim.ClassBreakdown
}

// Add accumulates o into cs field-wise (used when summing cores; kept
// exhaustive by the reflection test in timeline_test.go).
func (cs *CoreSample) Add(o CoreSample) {
	cs.Counters.Add(o.Counters)
	cs.Classes.Add(o.Classes)
}

// RingState is the host-visible occupancy of the offload rings at a
// sample point (staged-but-unpublished slots included), summed over
// clients. Zero for non-offload runs.
type RingState struct {
	MallocDepth uint64
	FreeDepth   uint64
}

// ServerState is the dedicated core's cumulative loop accounting at a
// sample point. Zero for non-offload runs.
type ServerState struct {
	BusyCycles      uint64
	IdleCycles      uint64
	EmptyPolls      uint64
	EmptyPollCycles uint64
}

// Sample is one snapshot of the whole machine.
type Sample struct {
	// Cycle is the wall clock (max core clock) at snapshot time.
	Cycle uint64
	// Cores holds one cumulative snapshot per core.
	Cores []CoreSample
	// Rings / Server are the transport gauges (offload runs only).
	Rings  RingState
	Server ServerState
}

// Series is the finished sampled timeline.
type Series struct {
	// Interval is the final sampling interval in cycles (it doubles each
	// time the bounded buffer fills, so it can exceed the armed value).
	Interval uint64
	Samples  []Sample
}

// CoresAt sums sample i's per-core snapshots over the cores keep admits
// (every core when keep is nil).
func (s *Series) CoresAt(i int, keep func(core int) bool) CoreSample {
	var out CoreSample
	for c := range s.Samples[i].Cores {
		if keep == nil || keep(c) {
			out.Add(s.Samples[i].Cores[c])
		}
	}
	return out
}

// Delta returns the summed counter change from sample i to sample j
// over the admitted cores (snapshots are cumulative, so this is the
// traffic of the (i, j] window).
func (s *Series) Delta(i, j int, keep func(core int) bool) sim.Counters {
	return s.CoresAt(j, keep).Counters.Sub(s.CoresAt(i, keep).Counters)
}

// Sampler snapshots a machine at a fixed cycle interval through the
// scheduler's observation probe (sim.Machine.SetProbe).
type Sampler struct {
	interval uint64
	capacity int
	next     uint64

	m           *sim.Machine
	ringProbe   func() RingState
	serverProbe func() ServerState

	samples []Sample
}

// NewSampler builds a sampler that snapshots every interval cycles into
// a buffer of at most capacity samples (DefaultCapacity when <= 0).
func NewSampler(interval uint64, capacity int) *Sampler {
	if interval == 0 {
		panic("timeline: zero sampling interval")
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 2 {
		capacity = 2 // decimation needs room to keep at least two samples
	}
	return &Sampler{interval: interval, capacity: capacity}
}

// Attach arms the sampler on m (before m.Run). The sampler shares the
// scheduler hook with other observers (AddProbe chains them).
func (s *Sampler) Attach(m *sim.Machine) {
	s.m = m
	s.next = s.interval
	m.AddProbe(s.tick)
}

// ProbeRings installs the ring-occupancy gauge evaluated at each sample
// (host-side; may return zeros before the allocator exists).
func (s *Sampler) ProbeRings(fn func() RingState) { s.ringProbe = fn }

// ProbeServer installs the server-state gauge evaluated at each sample.
func (s *Sampler) ProbeServer(fn func() ServerState) { s.serverProbe = fn }

// tick is the scheduler probe: cheap threshold check, snapshot when the
// wall clock crosses the next sample point.
func (s *Sampler) tick(wall uint64) {
	if wall < s.next {
		return
	}
	s.snapshot(wall)
	for s.next <= wall {
		s.next += s.interval
	}
}

// snapshot appends one cumulative sample, decimating first if the
// buffer is full.
func (s *Sampler) snapshot(cycle uint64) {
	if len(s.samples) >= s.capacity {
		s.decimate()
	}
	cores := make([]CoreSample, s.m.Cores())
	for c := range cores {
		cores[c] = CoreSample{
			Counters: s.m.CoreCounters(c),
			Classes:  s.m.CoreClassCounters(c),
		}
	}
	smp := Sample{Cycle: cycle, Cores: cores}
	if s.ringProbe != nil {
		smp.Rings = s.ringProbe()
	}
	if s.serverProbe != nil {
		smp.Server = s.serverProbe()
	}
	s.samples = append(s.samples, smp)
}

// decimate drops every other sample and doubles the interval, keeping
// memory O(capacity) in run length.
func (s *Sampler) decimate() {
	k := 0
	for i := 0; i < len(s.samples); i += 2 {
		s.samples[k] = s.samples[i]
		k++
	}
	// Zero the dropped tail so the backing array releases its Cores
	// slices.
	for i := k; i < len(s.samples); i++ {
		s.samples[i] = Sample{}
	}
	s.samples = s.samples[:k]
	s.interval *= 2
}

// Finish appends a final snapshot at the machine's end-of-run clock if
// the run advanced past the last sample (call after Machine.Run).
func (s *Sampler) Finish() {
	var wall uint64
	for c := 0; c < s.m.Cores(); c++ {
		if cy := s.m.CoreCounters(c).Cycles; cy > wall {
			wall = cy
		}
	}
	if n := len(s.samples); n == 0 || s.samples[n-1].Cycle < wall {
		s.snapshot(wall)
	}
}

// Series returns the sampled timeline collected so far.
func (s *Sampler) Series() *Series {
	return &Series{Interval: s.interval, Samples: s.samples}
}
