package mem

import (
	"testing"
	"testing/quick"
)

func TestPhysicalRoundTrip(t *testing.T) {
	p := NewPhysical()
	for _, tc := range []struct {
		addr uint64
		size int
		val  uint64
	}{
		{0x1000, 8, 0x0123456789abcdef},
		{0x1008, 4, 0xdeadbeef},
		{0x100c, 2, 0xcafe},
		{0x100e, 1, 0x5a},
		{0x1ff8, 8, ^uint64(0)},
	} {
		p.Store(tc.addr, tc.size, tc.val)
		if got := p.Load(tc.addr, tc.size); got != tc.val {
			t.Errorf("Load(%#x,%d) = %#x, want %#x", tc.addr, tc.size, got, tc.val)
		}
	}
}

func TestPhysicalLittleEndian(t *testing.T) {
	p := NewPhysical()
	p.Store(0x2000, 8, 0x1122334455667788)
	if got := p.Load(0x2000, 1); got != 0x88 {
		t.Errorf("first byte = %#x, want 0x88 (little-endian)", got)
	}
	if got := p.Load(0x2004, 4); got != 0x11223344 {
		t.Errorf("high half = %#x", got)
	}
}

func TestPhysicalQuickRoundTrip(t *testing.T) {
	p := NewPhysical()
	f := func(page uint16, off uint16, val uint64) bool {
		addr := uint64(page)<<PageShift | uint64(off&(PageMask-7))&^7
		p.Store(addr, 8, val)
		return p.Load(addr, 8) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageCrossingPanics(t *testing.T) {
	p := NewPhysical()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on page-crossing access")
		}
	}()
	p.Load(PageSize-4, 8)
}

func TestAddressSpaceTranslate(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	if _, ok := as.Translate(0x1234); ok {
		t.Error("unmapped address translated")
	}
	k := NewKernel(as, DefaultSyscallCosts())
	base, _ := k.Mmap(4)
	for i := uint64(0); i < 4*PageSize; i += PageSize {
		if _, ok := as.Translate(base + i); !ok {
			t.Fatalf("mapped page %#x does not translate", base+i)
		}
	}
	if _, ok := as.Translate(base + 4*PageSize); ok {
		t.Error("page past the mapping translated")
	}
	// Distinct pages map to distinct frames.
	p0, _ := as.Translate(base)
	p1, _ := as.Translate(base + PageSize)
	if p0>>PageShift == p1>>PageShift {
		t.Error("two virtual pages share a frame")
	}
}

func TestKernelMunmap(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, DefaultSyscallCosts())
	base, _ := k.Mmap(8)
	before := as.MappedPages()
	k.Munmap(base, 8)
	if as.MappedPages() != before-8 {
		t.Errorf("mapped pages %d, want %d", as.MappedPages(), before-8)
	}
	if _, ok := as.Translate(base); ok {
		t.Error("unmapped page still translates")
	}
}

func TestSbrkContiguous(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, DefaultSyscallCosts())
	b1, _ := k.SbrkGrow(4)
	b2, _ := k.SbrkGrow(4)
	if b2 != b1+4*PageSize {
		t.Errorf("brk growth not contiguous: %#x then %#x", b1, b2)
	}
	if b1 != BrkBase {
		t.Errorf("first brk at %#x, want %#x", b1, BrkBase)
	}
}

func TestMmapHugeAlignment(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, DefaultSyscallCosts())
	k.Mmap(3) // misalign the bump pointer
	base, _ := k.MmapHuge(1)
	if base%HugeSize != 0 {
		t.Errorf("huge mapping at %#x not 2 MiB aligned", base)
	}
	if as.PageShiftAt(base) != HugeShift {
		t.Error("huge mapping not marked huge")
	}
	if as.PageShiftAt(base+HugeSize-8) != HugeShift {
		t.Error("tail of huge region not marked huge")
	}
	small, _ := k.Mmap(1)
	if as.PageShiftAt(small) != PageShift {
		t.Error("4k mapping marked huge")
	}
}

func TestMmapHugeRoundsUp(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, DefaultSyscallCosts())
	base, _ := k.MmapHuge(513) // just over one huge page
	// The whole rounded region must be mapped.
	if _, ok := as.Translate(base + 1023*PageSize); !ok {
		t.Error("rounded-up huge region not fully mapped")
	}
}

func TestKernelStats(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, SyscallCosts{ModeSwitch: 1000, PerPage: 100})
	_, cyc := k.Mmap(4)
	if cyc != 1000+400 {
		t.Errorf("mmap cost %d, want 1400", cyc)
	}
	st := k.Stats()
	if st.Mmap != 1 || st.Pages != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestPeakPages(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	k := NewKernel(as, DefaultSyscallCosts())
	b, _ := k.Mmap(10)
	k.Munmap(b, 10)
	k.Mmap(2)
	if as.PeakPages() < 10 {
		t.Errorf("peak %d, want >= 10", as.PeakPages())
	}
	if as.MappedPages() != 2 {
		t.Errorf("mapped %d, want 2", as.MappedPages())
	}
}

func TestDoubleMapPanics(t *testing.T) {
	as := NewAddressSpace(NewPhysical())
	as.mapRange(0x10000, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double map")
		}
	}()
	as.mapRange(0x10000+PageSize, 1)
}
