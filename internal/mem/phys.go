// Package mem provides the simulated memory substrate: sparse physical
// memory, per-process page tables, and a small kernel that models the
// mmap/brk system calls the paper's user-level allocators sit on.
//
// Everything an allocator or workload stores — metadata and user data
// alike — lives in this simulated memory and is reached through simulated
// virtual addresses, so the cache and TLB models observe the real access
// streams of the real data structures.
package mem

import "fmt"

// PageShift is log2 of the simulated page size (4 KiB, the x86/Arm
// baseline the paper assumes).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Frame is one physical page of backing store.
type Frame [PageSize]byte

// Physical is a sparse physical memory: frames come into existence the
// first time they are touched and are always zero-filled, mirroring
// demand-zero allocation.
type Physical struct {
	frames map[uint64]*Frame // pfn -> frame
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{frames: make(map[uint64]*Frame)}
}

// Frames reports how many physical frames have been touched.
func (p *Physical) Frames() int { return len(p.frames) }

func (p *Physical) frame(pfn uint64) *Frame {
	f := p.frames[pfn]
	if f == nil {
		f = new(Frame)
		p.frames[pfn] = f
	}
	return f
}

// Release drops a frame's backing store (used by munmap).
func (p *Physical) Release(pfn uint64) { delete(p.frames, pfn) }

// checkSpan panics when an access would cross a page boundary; the
// simulator only issues naturally aligned scalar accesses, so a crossing
// access is always a bug in the caller.
func checkSpan(paddr uint64, size int) {
	if paddr&PageMask > PageSize-uint64(size) {
		panic(fmt.Sprintf("mem: access at %#x size %d crosses a page boundary", paddr, size))
	}
}

// Load reads size bytes (1, 2, 4, or 8) at physical address paddr,
// little-endian.
func (p *Physical) Load(paddr uint64, size int) uint64 {
	checkSpan(paddr, size)
	f := p.frame(paddr >> PageShift)
	off := paddr & PageMask
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(f[off+uint64(i)])
	}
	return v
}

// Store writes size bytes (1, 2, 4, or 8) at physical address paddr,
// little-endian.
func (p *Physical) Store(paddr uint64, size int, val uint64) {
	checkSpan(paddr, size)
	f := p.frame(paddr >> PageShift)
	off := paddr & PageMask
	for i := 0; i < size; i++ {
		f[off+uint64(i)] = byte(val)
		val >>= 8
	}
}

// ReadBytes copies n bytes starting at paddr into dst; the span must not
// cross a page boundary.
func (p *Physical) ReadBytes(paddr uint64, dst []byte) {
	checkSpan(paddr, len(dst))
	f := p.frame(paddr >> PageShift)
	copy(dst, f[paddr&PageMask:])
}

// WriteBytes copies src into physical memory at paddr; the span must not
// cross a page boundary.
func (p *Physical) WriteBytes(paddr uint64, src []byte) {
	checkSpan(paddr, len(src))
	f := p.frame(paddr >> PageShift)
	copy(f[paddr&PageMask:], src)
}

// Zero clears n bytes at paddr within one page.
func (p *Physical) Zero(paddr uint64, n int) {
	checkSpan(paddr, n)
	f := p.frame(paddr >> PageShift)
	off := paddr & PageMask
	clear(f[off : off+uint64(n)])
}
