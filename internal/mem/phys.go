// Package mem provides the simulated memory substrate: sparse physical
// memory, per-process page tables, and a small kernel that models the
// mmap/brk system calls the paper's user-level allocators sit on.
//
// Everything an allocator or workload stores — metadata and user data
// alike — lives in this simulated memory and is reached through simulated
// virtual addresses, so the cache and TLB models observe the real access
// streams of the real data structures.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageShift is log2 of the simulated page size (4 KiB, the x86/Arm
// baseline the paper assumes).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Frame is one physical page of backing store.
type Frame [PageSize]byte

// Load reads size bytes (1, 2, 4, or 8) at off within the frame,
// little-endian. The caller guarantees the access stays inside the page.
func (f *Frame) Load(off uint64, size int) uint64 {
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(f[off:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(f[off:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(f[off:]))
	case 1:
		return uint64(f[off])
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(f[off+uint64(i)])
	}
	return v
}

// Store writes size bytes (1, 2, 4, or 8) at off within the frame,
// little-endian. The caller guarantees the access stays inside the page.
func (f *Frame) Store(off uint64, size int, val uint64) {
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(f[off:], val)
	case 4:
		binary.LittleEndian.PutUint32(f[off:], uint32(val))
	case 2:
		binary.LittleEndian.PutUint16(f[off:], uint16(val))
	case 1:
		f[off] = byte(val)
	default:
		for i := 0; i < size; i++ {
			f[off+uint64(i)] = byte(val)
			val >>= 8
		}
	}
}

// dirShift sizes one page-directory chunk: 512 frames = 2 MiB of
// simulated memory per chunk. Frame numbers are handed out densely by
// the address space (see AddressSpace.nextPFN), so the directory is a
// compact two-level array rather than a hash map — the per-access map
// lookup was the single hottest host operation in the seed engine.
const (
	dirShift = 9
	dirSize  = 1 << dirShift
	dirMask  = dirSize - 1
)

// Physical is a sparse physical memory: frames come into existence the
// first time they are touched and are always zero-filled, mirroring
// demand-zero allocation.
type Physical struct {
	dir    [][]*Frame // two-level page directory: dir[pfn>>dirShift][pfn&dirMask]
	frames int        // live frame count

	// MRU translation cache: the last frame touched. mruPFN is pfn+1 so
	// the zero value never matches (pfn 0 is reserved anyway).
	mruPFN   uint64
	mruFrame *Frame
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{}
}

// Frames reports how many physical frames have been touched.
func (p *Physical) Frames() int { return p.frames }

func (p *Physical) frame(pfn uint64) *Frame {
	if pfn+1 == p.mruPFN {
		return p.mruFrame
	}
	c := pfn >> dirShift
	for uint64(len(p.dir)) <= c {
		p.dir = append(p.dir, nil)
	}
	chunk := p.dir[c]
	if chunk == nil {
		chunk = make([]*Frame, dirSize)
		p.dir[c] = chunk
	}
	f := chunk[pfn&dirMask]
	if f == nil {
		f = new(Frame)
		chunk[pfn&dirMask] = f
		p.frames++
	}
	p.mruPFN, p.mruFrame = pfn+1, f
	return f
}

// FrameFor returns the backing frame of the page containing paddr,
// materializing it on first touch (demand-zero). Callers that cache the
// pointer must drop it when the page may have been released.
func (p *Physical) FrameFor(paddr uint64) *Frame {
	return p.frame(paddr >> PageShift)
}

// Release drops a frame's backing store (used by munmap).
func (p *Physical) Release(pfn uint64) {
	c := pfn >> dirShift
	if c < uint64(len(p.dir)) && p.dir[c] != nil && p.dir[c][pfn&dirMask] != nil {
		p.dir[c][pfn&dirMask] = nil
		p.frames--
	}
	if pfn+1 == p.mruPFN {
		p.mruPFN, p.mruFrame = 0, nil
	}
}

// checkSpan panics when an access would cross a page boundary; the
// simulator only issues naturally aligned scalar accesses, so a crossing
// access is always a bug in the caller.
func checkSpan(paddr uint64, size int) {
	if paddr&PageMask > PageSize-uint64(size) {
		panic(fmt.Sprintf("mem: access at %#x size %d crosses a page boundary", paddr, size))
	}
}

// Load reads size bytes (1, 2, 4, or 8) at physical address paddr,
// little-endian.
func (p *Physical) Load(paddr uint64, size int) uint64 {
	checkSpan(paddr, size)
	return p.frame(paddr >> PageShift).Load(paddr&PageMask, size)
}

// Store writes size bytes (1, 2, 4, or 8) at physical address paddr,
// little-endian.
func (p *Physical) Store(paddr uint64, size int, val uint64) {
	checkSpan(paddr, size)
	p.frame(paddr >> PageShift).Store(paddr&PageMask, size, val)
}

// ReadBytes copies n bytes starting at paddr into dst; the span must not
// cross a page boundary.
func (p *Physical) ReadBytes(paddr uint64, dst []byte) {
	checkSpan(paddr, len(dst))
	f := p.frame(paddr >> PageShift)
	copy(dst, f[paddr&PageMask:])
}

// WriteBytes copies src into physical memory at paddr; the span must not
// cross a page boundary.
func (p *Physical) WriteBytes(paddr uint64, src []byte) {
	checkSpan(paddr, len(src))
	f := p.frame(paddr >> PageShift)
	copy(f[paddr&PageMask:], src)
}

// Zero clears n bytes at paddr within one page.
func (p *Physical) Zero(paddr uint64, n int) {
	checkSpan(paddr, n)
	f := p.frame(paddr >> PageShift)
	off := paddr & PageMask
	clear(f[off : off+uint64(n)])
}
