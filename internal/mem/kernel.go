package mem

import "fmt"

// SyscallCosts models the cycle cost of crossing into the kernel. The
// paper (§2.1) motivates user-level allocators precisely by the expense
// of taking an mmap for every malloc, so the model has to charge for it.
type SyscallCosts struct {
	// ModeSwitch is the fixed user->kernel->user round trip cost.
	ModeSwitch uint64
	// PerPage is the marginal cost per page mapped or unmapped (page
	// table manipulation plus demand-zero bookkeeping).
	PerPage uint64
}

// DefaultSyscallCosts mirrors a modern Linux syscall (~1.4k cycles round
// trip with mitigations) plus per-page work.
func DefaultSyscallCosts() SyscallCosts {
	return SyscallCosts{ModeSwitch: 1400, PerPage: 250}
}

// KernelStats counts the system calls the process has issued.
type KernelStats struct {
	Mmap   uint64
	Munmap uint64
	Brk    uint64
	Pages  uint64 // pages handed out over the lifetime
	Cycles uint64 // total cycles spent in the kernel
}

// Kernel is the simulated OS memory-management interface. It owns the
// address space layout policy; callers receive virtual addresses.
type Kernel struct {
	as    *AddressSpace
	costs SyscallCosts
	stats KernelStats
}

// NewKernel wraps an address space with syscall accounting.
func NewKernel(as *AddressSpace, costs SyscallCosts) *Kernel {
	return &Kernel{as: as, costs: costs}
}

// Stats returns a copy of the syscall counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// AddressSpace exposes the underlying address space.
func (k *Kernel) AddressSpace() *AddressSpace { return k.as }

func (k *Kernel) charge(pages int) uint64 {
	c := k.costs.ModeSwitch + k.costs.PerPage*uint64(pages)
	k.stats.Cycles += c
	return c
}

// PagesFor converts a byte length to a page count, rounding up.
func PagesFor(n uint64) int {
	return int((n + PageSize - 1) >> PageShift)
}

// Mmap maps npages fresh anonymous pages and returns their base virtual
// address and the cycle cost of the call.
func (k *Kernel) Mmap(npages int) (uint64, uint64) {
	if npages <= 0 {
		panic("mem: Mmap of zero pages")
	}
	base := k.as.mmapTop
	k.as.mapRange(base, npages)
	k.as.mmapTop += uint64(npages) << PageShift
	k.stats.Mmap++
	k.stats.Pages += uint64(npages)
	return base, k.charge(npages)
}

// MmapHuge maps npages fresh anonymous pages backed by 2 MiB pages
// (madvise(MADV_HUGEPAGE) on an aligned region). The base is 2 MiB
// aligned; the skipped alignment gap is unmapped address space.
func (k *Kernel) MmapHuge(npages int) (uint64, uint64) {
	if npages <= 0 {
		panic("mem: MmapHuge of zero pages")
	}
	// Round the region up to whole 2 MiB pages.
	npages = (npages + (HugeSize>>PageShift - 1)) &^ (HugeSize>>PageShift - 1)
	k.as.mmapTop = (k.as.mmapTop + HugeSize - 1) &^ (HugeSize - 1)
	base := k.as.mmapTop
	k.as.mapRange(base, npages)
	k.as.markHuge(base, npages)
	k.as.mmapTop += uint64(npages) << PageShift
	k.stats.Mmap++
	k.stats.Pages += uint64(npages)
	return base, k.charge(npages)
}

// MmapMeta maps pages in the dedicated metadata region (used by
// NextGen-Malloc's segregated metadata; see DESIGN.md).
func (k *Kernel) MmapMeta(npages int) (uint64, uint64) {
	if npages <= 0 {
		panic("mem: MmapMeta of zero pages")
	}
	base := k.as.metaTop
	k.as.mapRange(base, npages)
	k.as.metaTop += uint64(npages) << PageShift
	k.stats.Mmap++
	k.stats.Pages += uint64(npages)
	return base, k.charge(npages)
}

// Munmap unmaps npages pages at base and returns the cycle cost.
func (k *Kernel) Munmap(base uint64, npages int) uint64 {
	k.as.unmapRange(base, npages)
	k.stats.Munmap++
	return k.charge(npages)
}

// SbrkGrow extends the program break by npages pages, returning the old
// break (the base of the new region) and the cycle cost.
func (k *Kernel) SbrkGrow(npages int) (uint64, uint64) {
	if npages <= 0 {
		panic("mem: SbrkGrow of zero pages")
	}
	old := k.as.brk
	if old&PageMask != 0 {
		panic(fmt.Sprintf("mem: unaligned brk %#x", old))
	}
	k.as.mapRange(old, npages)
	k.as.brk += uint64(npages) << PageShift
	k.stats.Brk++
	k.stats.Pages += uint64(npages)
	return old, k.charge(npages)
}
