package mem

import "fmt"

// Virtual address-space layout of the simulated process. The regions are
// far apart so a stray pointer faults instead of landing in another
// region.
const (
	// BrkBase is where the classic sbrk heap begins (PTMalloc2's main
	// arena grows here).
	BrkBase = 0x0000_1000_0000_0000
	// MmapBase is where anonymous mmap regions are carved, growing up.
	MmapBase = 0x0000_7000_0000_0000
	// MetaBase is a distinct range NextGen-Malloc uses for its segregated
	// metadata region (paper §3.1.2: "the address space of metadata and
	// user data can be separated").
	MetaBase = 0x0000_6000_0000_0000
)

// HugeShift is log2 of the large-page size (2 MiB) used by
// transparent-hugepage-backed mappings.
const (
	HugeShift = 21
	HugeSize  = 1 << HugeShift
)

// AddressSpace is a single simulated process's page table plus the
// bump pointers for its brk and mmap regions.
type AddressSpace struct {
	phys    *Physical
	pt      map[uint64]uint64 // vpn -> pfn
	huge    map[uint64]bool   // vaddr>>HugeShift -> backed by a 2 MiB page
	nextPFN uint64
	brk     uint64
	mmapTop uint64
	metaTop uint64
	mapped  int // pages currently mapped
	peak    int // high-water mark of mapped pages
	// epoch advances whenever a translation is destroyed (munmap). Host-
	// side translation caches (the per-thread micro-TLB in internal/sim)
	// key their validity on it; mapping new pages never invalidates
	// because the simulator hands out fresh virtual addresses only.
	epoch uint64
}

// NewAddressSpace returns an address space over phys with empty regions.
func NewAddressSpace(phys *Physical) *AddressSpace {
	return &AddressSpace{
		phys:    phys,
		pt:      make(map[uint64]uint64),
		huge:    make(map[uint64]bool),
		nextPFN: 1, // pfn 0 reserved so paddr 0 is never valid
		brk:     BrkBase,
		mmapTop: MmapBase,
		metaTop: MetaBase,
	}
}

// PageShiftAt reports the translation granularity covering vaddr: 21 for
// hugepage-backed regions, 12 otherwise. The TLB models charge walks at
// this granularity, which is how hugepage-aware allocators (TCMalloc
// OSDI'21 [14], jemalloc/mimalloc aligned chunks) achieve their order-of-
// magnitude dTLB advantage over the glibc heap in the paper's Table 1.
func (as *AddressSpace) PageShiftAt(vaddr uint64) uint {
	if as.huge[vaddr>>HugeShift] {
		return HugeShift
	}
	return PageShift
}

// markHuge tags every 2 MiB region of [vaddr, vaddr+n*PageSize).
func (as *AddressSpace) markHuge(vaddr uint64, npages int) {
	end := vaddr + uint64(npages)<<PageShift
	for r := vaddr >> HugeShift; r < (end+HugeSize-1)>>HugeShift; r++ {
		as.huge[r] = true
	}
}

// Phys returns the backing physical memory.
func (as *AddressSpace) Phys() *Physical { return as.phys }

// MappedPages reports the number of pages currently mapped.
func (as *AddressSpace) MappedPages() int { return as.mapped }

// PeakPages reports the high-water mark of mapped pages (the footprint
// measure used for fragmentation statistics).
func (as *AddressSpace) PeakPages() int { return as.peak }

// Brk returns the current program break.
func (as *AddressSpace) Brk() uint64 { return as.brk }

// Epoch returns the address-space generation; it changes whenever an
// existing translation may have been destroyed, so cached (vaddr ->
// frame) mappings tagged with an older epoch must be re-walked.
func (as *AddressSpace) Epoch() uint64 { return as.epoch }

// Translate maps a virtual address to a physical address. The second
// result is false when the page is not mapped.
func (as *AddressSpace) Translate(vaddr uint64) (uint64, bool) {
	pfn, ok := as.pt[vaddr>>PageShift]
	if !ok {
		return 0, false
	}
	return pfn<<PageShift | vaddr&PageMask, true
}

// MustTranslate is Translate that panics on a fault; the simulator treats
// an unmapped access as a fatal bug in the allocator or workload under
// test, exactly as a segfault would be.
func (as *AddressSpace) MustTranslate(vaddr uint64) uint64 {
	paddr, ok := as.Translate(vaddr)
	if !ok {
		panic(fmt.Sprintf("mem: page fault at %#x (unmapped)", vaddr))
	}
	return paddr
}

// mapRange installs fresh frames for npages pages starting at vaddr.
func (as *AddressSpace) mapRange(vaddr uint64, npages int) {
	if vaddr&PageMask != 0 {
		panic(fmt.Sprintf("mem: map of unaligned address %#x", vaddr))
	}
	for i := 0; i < npages; i++ {
		vpn := vaddr>>PageShift + uint64(i)
		if _, dup := as.pt[vpn]; dup {
			panic(fmt.Sprintf("mem: double map of page %#x", vpn<<PageShift))
		}
		as.pt[vpn] = as.nextPFN
		as.nextPFN++
	}
	as.mapped += npages
	if as.mapped > as.peak {
		as.peak = as.mapped
	}
}

// unmapRange removes npages pages starting at vaddr and releases their
// frames.
func (as *AddressSpace) unmapRange(vaddr uint64, npages int) {
	if vaddr&PageMask != 0 {
		panic(fmt.Sprintf("mem: unmap of unaligned address %#x", vaddr))
	}
	for i := 0; i < npages; i++ {
		vpn := vaddr>>PageShift + uint64(i)
		pfn, ok := as.pt[vpn]
		if !ok {
			panic(fmt.Sprintf("mem: unmap of unmapped page %#x", vpn<<PageShift))
		}
		as.phys.Release(pfn)
		delete(as.pt, vpn)
	}
	as.mapped -= npages
	as.epoch++
}
