package mem

import "testing"

// Host benchmarks for the physical-memory hot path: every simulated load
// and store lands here, so ns/op on these directly scales full runs.

func benchPhysical(npages int) *Physical {
	p := NewPhysical()
	for pfn := uint64(1); pfn <= uint64(npages); pfn++ {
		p.frame(pfn)
	}
	return p
}

// BenchmarkPhysicalLoad64Same hammers one word — the MRU-frame case.
func BenchmarkPhysicalLoad64Same(b *testing.B) {
	p := benchPhysical(64)
	addr := uint64(1)<<PageShift + 128
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Load(addr, 8)
	}
}

// BenchmarkPhysicalLoad64Stride walks a 64-page working set, one load
// per cache line — the page-directory case.
func BenchmarkPhysicalLoad64Stride(b *testing.B) {
	p := benchPhysical(64)
	span := uint64(64) << PageShift
	b.ReportAllocs()
	var addr uint64
	for i := 0; i < b.N; i++ {
		p.Load(uint64(1)<<PageShift+addr, 8)
		addr = (addr + 64) % span
	}
}

// BenchmarkPhysicalStore64Stride is the store twin.
func BenchmarkPhysicalStore64Stride(b *testing.B) {
	p := benchPhysical(64)
	span := uint64(64) << PageShift
	b.ReportAllocs()
	var addr uint64
	for i := 0; i < b.N; i++ {
		p.Store(uint64(1)<<PageShift+addr, 8, uint64(i))
		addr = (addr + 64) % span
	}
}

// BenchmarkPhysicalLoad8 measures the sub-word path.
func BenchmarkPhysicalLoad8(b *testing.B) {
	p := benchPhysical(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Load(uint64(1)<<PageShift+uint64(i&PageMask&^7), 1)
	}
}
