package report

import "fmt"

// FleetRow is one cell of the fleet saturation sweep: a (workers,
// servers, policy) topology and its headline metrics.
type FleetRow struct {
	Workers int
	Servers int
	Sched   string
	// WallCycles is the longest worker's measured region.
	WallCycles uint64
	// OpsPerKCycle is allocator throughput: (mallocs+frees) per 1000
	// wall cycles across the whole topology.
	OpsPerKCycle float64
	// BusyShare is the busiest server's busy fraction of its loop time —
	// the saturation gauge (≈1.0 means that shard has no headroom).
	BusyShare float64
	// WorstP99 is the worst per-client p99 end-to-end malloc latency in
	// cycles (0 when no malloc spans were recorded).
	WorstP99 uint64
	// MaxGap is the widest gap in cycles between consecutive
	// completions for any single client — the starvation metric.
	MaxGap uint64
}

// FleetTable renders the saturation sweep, one row per topology.
func FleetTable(title string, rows []FleetRow) string {
	header := []string{"Workers", "Servers", "Sched", "Wall cycles", "Ops/kcycle", "Busy share", "Worst p99", "Max gap"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Servers),
			r.Sched,
			Sci(float64(r.WallCycles)),
			fmt.Sprintf("%.2f", r.OpsPerKCycle),
			fmt.Sprintf("%.2f", r.BusyShare),
			Sci(float64(r.WorstP99)),
			Sci(float64(r.MaxGap)),
		})
	}
	return Table(title, header, cells)
}
