package report

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/timeline"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty values gave %q", got)
	}
	if got := Sparkline([]float64{1, 2}, 0); got != "" {
		t.Errorf("zero width gave %q", got)
	}
	flat := Sparkline([]float64{0, 0, 0}, 3)
	if flat != "   " {
		t.Errorf("all-zero series gave %q, want three blanks", flat)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len([]rune(ramp)) != 10 {
		t.Fatalf("width not respected: %q", ramp)
	}
	if ramp[0] != ' ' || ramp[9] != '@' {
		t.Errorf("ramp endpoints wrong: %q", ramp)
	}
	// Any strictly positive value must render visibly even when tiny
	// relative to the max.
	tiny := Sparkline([]float64{0.001, 100}, 2)
	if tiny[0] == ' ' {
		t.Errorf("positive value rendered as blank: %q", tiny)
	}
	// More samples than columns: bucket averages, still full width.
	squeezed := Sparkline(make([]float64, 1000), 8)
	if len([]rune(squeezed)) != 8 {
		t.Errorf("squeeze broke width: %q", squeezed)
	}
}

func timelineSeries(serverBusy bool) *timeline.Series {
	s := &timeline.Series{Interval: 100}
	for i := uint64(1); i <= 6; i++ {
		cores := make([]timeline.CoreSample, 3)
		for c := range cores {
			cores[c].Counters = sim.Counters{
				Cycles:        i * 100,
				Instructions:  i * 1000,
				Loads:         i * 400,
				Stores:        i * 200,
				LLCLoadMisses: i * 9,
				DTLBLoadMisses: i,
			}
		}
		smp := timeline.Sample{Cycle: i * 100, Cores: cores}
		if serverBusy {
			smp.Rings = timeline.RingState{MallocDepth: i, FreeDepth: i * 2}
			smp.Server = timeline.ServerState{BusyCycles: i * 60, IdleCycles: i * 40}
		}
		s.Samples = append(s.Samples, smp)
	}
	return s
}

func TestTimelineTableShape(t *testing.T) {
	out := TimelineTable("tl", timelineSeries(true), 2)
	for _, want := range []string{
		"tl", "6 samples", "interval 100 cycles", "span [100, 600]",
		"instructions", "LLC-load-MPKI", "LLC-store-MPKI",
		"dTLB-load-MPKI", "dTLB-store-MPKI",
		"malloc ring depth", "free ring depth", "server busy %",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline table missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineTableNoServer(t *testing.T) {
	out := TimelineTable("tl", timelineSeries(false), -1)
	for _, absent := range []string{"ring depth", "server busy"} {
		if strings.Contains(out, absent) {
			t.Errorf("serverless table should omit %q:\n%s", absent, out)
		}
	}
	if !strings.Contains(out, "instructions") {
		t.Errorf("counter rows missing:\n%s", out)
	}
}

func TestTimelineTableDegenerate(t *testing.T) {
	if out := TimelineTable("tl", nil, -1); !strings.Contains(out, "no samples") {
		t.Errorf("nil series: %q", out)
	}
	one := &timeline.Series{Interval: 5, Samples: []timeline.Sample{{Cycle: 5}}}
	if out := TimelineTable("tl", one, -1); !strings.Contains(out, "no samples") {
		t.Errorf("single sample needs two points for a delta: %q", out)
	}
}

func TestLatencyTable(t *testing.T) {
	rec := timeline.NewLatencyRecorder(0)
	for i := uint64(0); i < 100; i++ {
		rec.Record(timeline.OpMalloc, 1, i*10, i*10+3, i*10+8)
		rec.Record(timeline.OpBatch, 2, i*10, i*10+6, i*10+7)
	}
	out := LatencyTable("lat", rec)
	for _, want := range []string{
		"lat", "op / phase", "count", "p50", "p99", "max",
		"malloc queue-wait", "malloc service", "malloc end-to-end",
		"batch queue-wait",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("latency table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "free") {
		t.Errorf("zero-count op should be skipped:\n%s", out)
	}
	if strings.Contains(out, "retention cap") {
		t.Errorf("no drops occurred, footnote should be absent:\n%s", out)
	}
}

func TestLatencyTableEmptyAndDropped(t *testing.T) {
	if out := LatencyTable("lat", nil); !strings.Contains(out, "no offload spans") {
		t.Errorf("nil recorder: %q", out)
	}
	if out := LatencyTable("lat", timeline.NewLatencyRecorder(0)); !strings.Contains(out, "no offload spans") {
		t.Errorf("empty recorder: %q", out)
	}
	rec := timeline.NewLatencyRecorder(2)
	for i := uint64(0); i < 5; i++ {
		rec.Record(timeline.OpFree, 0, i, i+1, i+2)
	}
	if out := LatencyTable("lat", rec); !strings.Contains(out, "3 spans beyond the retention cap") {
		t.Errorf("drop footnote missing:\n%s", out)
	}
}
