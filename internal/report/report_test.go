package report

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/slo"
)

func TestSci(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{1.177e12, "1.177E+12"},
		{0, "0"},
		{42, "4.200E+01"},
	} {
		if got := Sci(tc.v); got != tc.want {
			t.Errorf("Sci(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table("T", []string{"a", "bb"}, [][]string{{"x", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if len(lines[2]) != len(lines[3]) && !strings.HasPrefix(lines[1], "a") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCounterTable(t *testing.T) {
	r := harness.Result{
		Allocator: "x",
		Total: sim.Counters{
			Cycles: 1000, Instructions: 2000,
			LLCLoadMisses: 10, DTLBLoadMisses: 4,
		},
	}
	out := CounterTable("title", []harness.Result{r})
	for _, want := range []string{"cycles", "dTLB-load-misses", "1.000E+03", "LLC-load-MPKI", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarsNormalized(t *testing.T) {
	out := Bars("F", []string{"a", "b"}, []float64{200, 100})
	if !strings.Contains(out, "2.000x") || !strings.Contains(out, "1.000x") {
		t.Errorf("bars not normalized:\n%s", out)
	}
}

func TestBarsEmptyValues(t *testing.T) {
	out := Bars("empty", nil, nil)
	if !strings.Contains(out, "empty") || !strings.Contains(out, "no data") {
		t.Errorf("empty Bars output unexpected:\n%s", out)
	}
}

func TestBarsZeroMinimum(t *testing.T) {
	out := Bars("F", []string{"a", "b", "c"}, []float64{0, 100, 200})
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("Bars emitted NaN/Inf with a zero value:\n%s", out)
	}
	// The smallest positive value is the 1.00x baseline.
	if !strings.Contains(out, "1.000x") || !strings.Contains(out, "2.000x") || !strings.Contains(out, "0.000x") {
		t.Errorf("Bars not normalized against smallest positive value:\n%s", out)
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("F", []string{"a"}, []float64{0})
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("all-zero Bars emitted NaN/Inf:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows longer than the header must not panic and must render every cell.
	out := Table("T", []string{"a"}, [][]string{{"x"}, {"y", "extra", "more"}})
	for _, want := range []string{"x", "extra", "more"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in ragged table:\n%s", want, out)
		}
	}
	// Empty row set renders header only.
	out = Table("T", []string{"a", "b"}, nil)
	if !strings.Contains(out, "a") {
		t.Errorf("header missing from empty table:\n%s", out)
	}
}

func TestTransportTable(t *testing.T) {
	offload := harness.Result{
		Allocator: "nextgen-batch",
		Offload: &harness.OffloadTelemetry{
			MallocRing:            ring.Stats{Pushes: 100, Pops: 100, PushBatches: 100, PopBatches: 100},
			FreeRing:              ring.Stats{Pushes: 400, Pops: 400, PushBatches: 100, PopBatches: 100, StallCycles: 50},
			ServerBusyCycles:      5000,
			ServerIdleCycles:      2000,
			ServerEmptyPolls:      7,
			ServerEmptyPollCycles: 300,
		},
	}
	offload.AllocStats.MallocCalls = 600
	offload.AllocStats.FreeCalls = 400
	inline := harness.Result{Allocator: "mimalloc"} // no Offload: renders "-"
	out := TransportTable("transport", []harness.Result{offload, inline})
	for _, want := range []string{
		"free reqs/publication", "4.00", // 400 pushes / 100 batches
		"stash-hit mallocs", "500", // 600 mallocs - 100 round trips
		"server empty polls", "7",
		"producer stall cyc/op", "0.050", // 50 / 1000 ops
		"-", // inline column has no telemetry
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAttributionTable(t *testing.T) {
	r := harness.Result{Allocator: "pt", Workload: "w"}
	r.Classes[region.Meta] = sim.ClassCounters{LLCLoadMisses: 30, DTLBLoadMisses: 1}
	r.Classes[region.User] = sim.ClassCounters{LLCLoadMisses: 70, DTLBLoadMisses: 3}
	out := AttributionTable("attr", []harness.Result{r})
	for _, want := range []string{"LLC-miss % metadata", "30.0%", "70.0%", "dTLB-miss % user", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// No misses at all: cells degrade to "-", never NaN.
	empty := harness.Result{Allocator: "x"}
	out = AttributionTable("attr", []harness.Result{empty})
	if strings.Contains(out, "NaN") {
		t.Errorf("attribution table emitted NaN:\n%s", out)
	}
}

func TestResilienceTable(t *testing.T) {
	faulty := harness.Result{
		Allocator: "ngm s120k t4k",
		Resilience: &harness.ResilienceTelemetry{
			Client: core.ResilienceStats{
				Timeouts: 12, Retries: 9, MallocNacks: 3, FreeNacks: 2,
				FallbackEntries: 4, FallbackExits: 3, DegradedCycles: 250000,
				EmergencyMallocs: 180, EmergencyFrees: 170, DeferredFrees: 15,
				AbandonedRequests: 5, ReclaimedBlocks: 4,
			},
			Injected: fault.Stats{Stalls: 2, StallCycles: 240000, DoorbellDrops: 6, CorruptWords: 11},
		},
	}
	clean := harness.Result{Allocator: "mimalloc"} // no Resilience: renders "-"
	out := ResilienceTable("resilience", []harness.Result{faulty, clean})
	for _, want := range []string{
		"fallback entries", "4",
		"emergency mallocs", "180",
		"malloc NACKs", "3",
		"injected corruptions", "11",
		"reclaimed blocks",
		"-", // clean column has no telemetry
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWarpTable(t *testing.T) {
	warped := harness.Result{Allocator: "nextgen"}
	warped.Warp = sim.WarpStats{Windows: 12, Rounds: 340, CyclesWarped: 5100, LargestSkip: 900}
	inline := harness.Result{Allocator: "mimalloc"} // never warped: renders "-"
	out := WarpTable("time warp", []harness.Result{warped, inline})
	for _, want := range []string{
		"windows skipped", "12",
		"rounds skipped", "340",
		"cycles warped", "5.100E+03",
		"largest skip", "900",
		"-", // inline column has no warp activity
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSLOTableEmpty(t *testing.T) {
	for name, tr := range map[string]*slo.Tracker{
		"nil tracker":   nil,
		"fresh tracker": slo.NewTracker(slo.DefaultOptions()),
	} {
		out := SLOTable("t", tr)
		if !strings.Contains(out, "no slo data recorded") {
			t.Errorf("%s: missing empty notice:\n%s", name, out)
		}
	}
}

func TestSLOTableZeroRequestTenant(t *testing.T) {
	// A tenant that churned out with abandons only must render dash
	// latency cells, not divide by zero; a single-tenant ledger must
	// still carry the worst-window footer.
	tr := slo.NewTracker(slo.DefaultOptions())
	tr.Observe(0, 1, slo.Interactive, 0, 10, 30000) // violates the 25k budget
	tr.Abandon(3, slo.Bulk)
	out := SLOTable("per-tenant", tr)
	lines := strings.Split(out, "\n")
	var zeroRow string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "3 ") {
			zeroRow = l
		}
	}
	if zeroRow == "" {
		t.Fatalf("abandons-only tenant missing from table:\n%s", out)
	}
	if got := strings.Count(zeroRow, "-"); got < 6 {
		t.Errorf("zero-request tenant row has %d dashes, want >= 6: %q", got, zeroRow)
	}
	if !strings.Contains(out, "worst window:") {
		t.Errorf("missing worst-window footer:\n%s", out)
	}
	if !strings.Contains(out, "interactive") {
		t.Errorf("missing class label:\n%s", out)
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "%") {
		t.Errorf("missing vs-budget cell:\n%s", out)
	}
}

func TestSLOTableDroppedSpansFooter(t *testing.T) {
	o := slo.DefaultOptions()
	o.SpanCap = 2
	tr := slo.NewTracker(o)
	for i := 0; i < 5; i++ {
		tr.Observe(0, 1, slo.Interactive, uint64(i), uint64(i), uint64(i+10))
	}
	if out := SLOTable("t", tr); !strings.Contains(out, "3 request spans beyond the retention cap") {
		t.Errorf("missing dropped-spans footer:\n%s", out)
	}
}
