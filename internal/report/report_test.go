package report

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/sim"
)

func TestSci(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{1.177e12, "1.177E+12"},
		{0, "0"},
		{42, "4.200E+01"},
	} {
		if got := Sci(tc.v); got != tc.want {
			t.Errorf("Sci(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table("T", []string{"a", "bb"}, [][]string{{"x", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if len(lines[2]) != len(lines[3]) && !strings.HasPrefix(lines[1], "a") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCounterTable(t *testing.T) {
	r := harness.Result{
		Allocator: "x",
		Total: sim.Counters{
			Cycles: 1000, Instructions: 2000,
			LLCLoadMisses: 10, DTLBLoadMisses: 4,
		},
	}
	out := CounterTable("title", []harness.Result{r})
	for _, want := range []string{"cycles", "dTLB-load-misses", "1.000E+03", "LLC-load-MPKI", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarsNormalized(t *testing.T) {
	out := Bars("F", []string{"a", "b"}, []float64{200, 100})
	if !strings.Contains(out, "2.000x") || !strings.Contains(out, "1.000x") {
		t.Errorf("bars not normalized:\n%s", out)
	}
}
