package report

import (
	"fmt"

	"nextgenmalloc/internal/harness"
)

// FailoverTable renders one run's fleet failover ledger: a row per
// client thread (its home shard, where it ended up, and how much
// traffic travelled away from home), with the fleet totals and the
// event-log accounting underneath. A nil telemetry (failover never
// armed) renders a placeholder.
func FailoverTable(title string, fo *harness.FailoverTelemetry) string {
	if fo == nil {
		return title + "\n(failover not armed)\n"
	}
	header := []string{"thread", "home", "active", "downs", "rejoins", "forwarded"}
	var rows [][]string
	for _, c := range fo.Clients {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Thread),
			fmt.Sprintf("%d", c.HomeShard),
			fmt.Sprintf("%d", c.ActiveShard),
			fmt.Sprintf("%d", c.Downs),
			fmt.Sprintf("%d", c.Rejoins),
			fmt.Sprintf("%d", c.ForwardedMallocs),
		})
	}
	out := Table(title, header, rows)
	t := fo.Totals
	out += fmt.Sprintf("totals: %d downs, %d rejoins, %d forwarded mallocs; %d transitions logged",
		t.Downs, t.Rejoins, t.ForwardedMallocs, len(fo.Events))
	if t.DroppedEvents > 0 {
		out += fmt.Sprintf(" (+%d dropped beyond the cap)", t.DroppedEvents)
	}
	out += "\n"
	return out
}
