// Package report renders experiment results as fixed-width text tables
// in the layouts the paper uses (counter rows × allocator columns,
// scientific-notation cells), plus simple ASCII bar series for the
// figures.
package report

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/timeline"
)

// Sci formats a counter the way the paper's tables do (e.g. 1.177E+12).
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	return strings.ToUpper(fmt.Sprintf("%.3e", v))
}

// Table renders a header row and body rows with aligned columns. Ragged
// rows are fine: columns beyond the header get their own width.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	ncols := len(header)
	for _, r := range rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(&b, "%s\n", title)
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i]+2, c)
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	total := 2 * len(header)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// CounterRows builds the paper's Table 1/3 layout: one row per PMU
// counter, one column per result.
func CounterRows(results []harness.Result) [][]string {
	row := func(name string, get func(sim.Counters) float64) []string {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, Sci(get(r.Total)))
		}
		return cells
	}
	mpki := func(name string, get func(sim.Counters) uint64) []string {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, fmt.Sprintf("%.3f", sim.MPKI(get(r.Total), r.Total.Instructions)))
		}
		return cells
	}
	return [][]string{
		row("cycles", func(c sim.Counters) float64 { return float64(c.Cycles) }),
		row("instructions", func(c sim.Counters) float64 { return float64(c.Instructions) }),
		row("LLC-load-misses", func(c sim.Counters) float64 { return float64(c.LLCLoadMisses) }),
		row("LLC-store-misses", func(c sim.Counters) float64 { return float64(c.LLCStoreMisses) }),
		row("dTLB-load-misses", func(c sim.Counters) float64 { return float64(c.DTLBLoadMisses) }),
		row("dTLB-store-misses", func(c sim.Counters) float64 { return float64(c.DTLBStoreMisses) }),
		mpki("LLC-load-MPKI", func(c sim.Counters) uint64 { return c.LLCLoadMisses }),
		mpki("LLC-store-MPKI", func(c sim.Counters) uint64 { return c.LLCStoreMisses }),
		mpki("dTLB-load-MPKI", func(c sim.Counters) uint64 { return c.DTLBLoadMisses }),
		mpki("dTLB-store-MPKI", func(c sim.Counters) uint64 { return c.DTLBStoreMisses }),
	}
}

// CounterTable renders results in the paper's counter-table layout.
func CounterTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, CounterRows(results))
}

// Bars renders a normalized horizontal bar chart (Figure 1 style):
// values are scaled so the smallest positive value is 1.00. An empty
// series renders as just the title, and a series with no positive value
// (all zeros) renders flat bars — neither produces NaN or +Inf ratios.
func Bars(title string, labels []string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV := 0.0
	for _, v := range values {
		if v > 0 && (minV == 0 || v < minV) {
			minV = v
		}
	}
	wname := 0
	for _, l := range labels {
		if len(l) > wname {
			wname = len(l)
		}
	}
	for i, v := range values {
		rel := 0.0
		if minV > 0 {
			rel = v / minV
		}
		n := int(rel * 30)
		if n > 120 {
			n = 120
		}
		if n < 0 {
			n = 0
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s %s %.3fx (%s cycles)\n",
			wname+1, label, strings.Repeat("#", n), rel, Sci(v))
	}
	return b.String()
}

// TransportRows builds the offload-transport layout: one row per
// ring/server telemetry metric, one column per result. Columns for
// runs without offload telemetry (inline modes, classic allocators)
// render as "-".
func TransportRows(results []harness.Result) [][]string {
	row := func(name string, get func(harness.Result) string) []string {
		cells := []string{name}
		for _, r := range results {
			if r.Offload == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, get(r))
		}
		return cells
	}
	count := func(v uint64) string { return fmt.Sprintf("%d", v) }
	ratio := func(num, den uint64) string {
		if den == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(num)/float64(den))
	}
	perOp := func(v uint64, r harness.Result) string {
		ops := r.AllocStats.MallocCalls + r.AllocStats.FreeCalls
		if ops == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", float64(v)/float64(ops))
	}
	return [][]string{
		row("malloc ring round trips", func(r harness.Result) string { return count(r.Offload.MallocRing.Pushes) }),
		row("stash-hit mallocs", func(r harness.Result) string {
			return count(r.AllocStats.MallocCalls - r.Offload.MallocRing.Pushes)
		}),
		row("free ring requests", func(r harness.Result) string { return count(r.Offload.FreeRing.Pushes) }),
		row("free reqs/publication", func(r harness.Result) string {
			return ratio(r.Offload.FreeRing.Pushes, r.Offload.FreeRing.PushBatches)
		}),
		row("free pops/drain batch", func(r harness.Result) string {
			return ratio(r.Offload.FreeRing.Pops, r.Offload.FreeRing.PopBatches)
		}),
		row("producer stall cyc/op", func(r harness.Result) string {
			return perOp(r.Offload.MallocRing.StallCycles+r.Offload.FreeRing.StallCycles, r)
		}),
		row("ring full retries", func(r harness.Result) string {
			return count(r.Offload.MallocRing.FullRetries + r.Offload.FreeRing.FullRetries)
		}),
		row("server busy cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerBusyCycles)) }),
		row("server idle cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerIdleCycles)) }),
		row("server empty polls", func(r harness.Result) string { return count(r.Offload.ServerEmptyPolls) }),
		row("empty-poll scan cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerEmptyPollCycles)) }),
	}
}

// TransportTable renders the offload transport telemetry in the counter
// table's layout (metrics × allocators).
func TransportTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, TransportRows(results))
}

// ResilienceRows builds the graceful-degradation layout: one row per
// resilience/fault metric, one column per result. Columns for runs
// without resilience telemetry (clean seed runs, classic allocators)
// render as "-".
func ResilienceRows(results []harness.Result) [][]string {
	row := func(name string, get func(harness.Result) string) []string {
		cells := []string{name}
		for _, r := range results {
			if r.Resilience == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, get(r))
		}
		return cells
	}
	count := func(v uint64) string { return fmt.Sprintf("%d", v) }
	return [][]string{
		row("timeouts", func(r harness.Result) string { return count(r.Resilience.Client.Timeouts) }),
		row("retries", func(r harness.Result) string { return count(r.Resilience.Client.Retries) }),
		row("malloc NACKs", func(r harness.Result) string { return count(r.Resilience.Client.MallocNacks) }),
		row("free NACKs", func(r harness.Result) string { return count(r.Resilience.Client.FreeNacks) }),
		row("fallback entries", func(r harness.Result) string { return count(r.Resilience.Client.FallbackEntries) }),
		row("fallback exits", func(r harness.Result) string { return count(r.Resilience.Client.FallbackExits) }),
		row("degraded cycles", func(r harness.Result) string { return Sci(float64(r.Resilience.Client.DegradedCycles)) }),
		row("emergency mallocs", func(r harness.Result) string { return count(r.Resilience.Client.EmergencyMallocs) }),
		row("emergency frees", func(r harness.Result) string { return count(r.Resilience.Client.EmergencyFrees) }),
		row("deferred frees", func(r harness.Result) string { return count(r.Resilience.Client.DeferredFrees) }),
		row("abandoned requests", func(r harness.Result) string { return count(r.Resilience.Client.AbandonedRequests) }),
		row("reclaimed blocks", func(r harness.Result) string { return count(r.Resilience.Client.ReclaimedBlocks) }),
		row("injected stalls", func(r harness.Result) string { return count(r.Resilience.Injected.Stalls) }),
		row("injected stall cycles", func(r harness.Result) string { return Sci(float64(r.Resilience.Injected.StallCycles)) }),
		row("injected drops", func(r harness.Result) string { return count(r.Resilience.Injected.DoorbellDrops) }),
		row("injected corruptions", func(r harness.Result) string { return count(r.Resilience.Injected.CorruptWords) }),
		row("injected slow cycles", func(r harness.Result) string { return Sci(float64(r.Resilience.Injected.SlowdownCycles)) }),
	}
}

// ResilienceTable renders the degradation/fault telemetry in the
// counter table's layout (metrics × allocators).
func ResilienceTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, ResilienceRows(results))
}

// WarpRows renders the time-warp ledger (host-side telemetry: how much
// idle stepping the scheduler skipped; all simulated counters are
// bit-identical with warp off). Runs where warp never engaged show "-".
func WarpRows(results []harness.Result) [][]string {
	row := func(name string, get func(harness.Result) string) []string {
		cells := []string{name}
		for _, r := range results {
			if r.Warp.Windows == 0 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, get(r))
		}
		return cells
	}
	return [][]string{
		row("windows skipped", func(r harness.Result) string { return fmt.Sprintf("%d", r.Warp.Windows) }),
		row("rounds skipped", func(r harness.Result) string { return fmt.Sprintf("%d", r.Warp.Rounds) }),
		row("cycles warped", func(r harness.Result) string { return Sci(float64(r.Warp.CyclesWarped)) }),
		row("largest skip", func(r harness.Result) string { return fmt.Sprintf("%d", r.Warp.LargestSkip) }),
	}
}

// WarpTable renders the time-warp ledger in the counter table's layout
// (metrics × allocators).
func WarpTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, WarpRows(results))
}

// sparkRamp orders the sparkline glyphs from empty to full.
const sparkRamp = " .:-=+*#%@"

// Sparkline renders vals as one line of ASCII glyphs scaled to the
// series maximum. Series longer than width are bucket-averaged down; an
// all-zero or empty series renders flat.
func Sparkline(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		squeezed := make([]float64, width)
		for i := range squeezed {
			lo := i * len(vals) / width
			hi := (i + 1) * len(vals) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			squeezed[i] = sum / float64(hi-lo)
		}
		vals = squeezed
	}
	var maxV float64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]byte, len(vals))
	for i, v := range vals {
		idx := 0
		if maxV > 0 && v > 0 {
			idx = int(v / maxV * float64(len(sparkRamp)-1))
			if idx >= len(sparkRamp) {
				idx = len(sparkRamp) - 1
			}
			if idx == 0 {
				idx = 1 // any positive value is visibly nonzero
			}
		}
		out[i] = sparkRamp[idx]
	}
	return string(out)
}

// TimelineTable renders the sampled series as per-interval rates over
// the worker cores (the server core, when any, is excluded so its
// polling does not dilute the MPKI), one sparkline per metric with the
// min/max range alongside. serverCore is -1 for runs without a server.
func TimelineTable(title string, s *timeline.Series, serverCore int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if s == nil || len(s.Samples) < 2 {
		b.WriteString("(no samples)\n")
		return b.String()
	}
	keep := func(c int) bool { return c != serverCore }
	n := len(s.Samples) - 1 // intervals
	deltas := make([]sim.Counters, n)
	for i := 0; i < n; i++ {
		deltas[i] = s.Delta(i, i+1, keep)
	}
	series := func(get func(i int) float64) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = get(i)
		}
		return vals
	}
	mpki := func(get func(sim.Counters) uint64) []float64 {
		return series(func(i int) float64 {
			return sim.MPKI(get(deltas[i]), deltas[i].Instructions)
		})
	}
	type sparkRow struct {
		name string
		vals []float64
		fmt  string
	}
	rows := []sparkRow{
		{"instructions", series(func(i int) float64 { return float64(deltas[i].Instructions) }), "%.0f"},
		{"LLC-load-MPKI", mpki(func(c sim.Counters) uint64 { return c.LLCLoadMisses }), "%.3f"},
		{"LLC-store-MPKI", mpki(func(c sim.Counters) uint64 { return c.LLCStoreMisses }), "%.3f"},
		{"dTLB-load-MPKI", mpki(func(c sim.Counters) uint64 { return c.DTLBLoadMisses }), "%.3f"},
		{"dTLB-store-MPKI", mpki(func(c sim.Counters) uint64 { return c.DTLBStoreMisses }), "%.3f"},
	}
	if serverCore >= 0 {
		rows = append(rows,
			sparkRow{"malloc ring depth", series(func(i int) float64 {
				return float64(s.Samples[i+1].Rings.MallocDepth)
			}), "%.0f"},
			sparkRow{"free ring depth", series(func(i int) float64 {
				return float64(s.Samples[i+1].Rings.FreeDepth)
			}), "%.0f"},
			sparkRow{"server busy %", series(func(i int) float64 {
				busy := float64(s.Samples[i+1].Server.BusyCycles - s.Samples[i].Server.BusyCycles)
				idle := float64(s.Samples[i+1].Server.IdleCycles - s.Samples[i].Server.IdleCycles)
				if busy+idle == 0 {
					return 0
				}
				return 100 * busy / (busy + idle)
			}), "%.1f"},
		)
	}
	first := s.Samples[0].Cycle
	last := s.Samples[len(s.Samples)-1].Cycle
	fmt.Fprintf(&b, "%d samples, interval %d cycles, span [%d, %d]\n",
		len(s.Samples), s.Interval, first, last)
	wname := 0
	for _, r := range rows {
		if len(r.name) > wname {
			wname = len(r.name)
		}
	}
	const sparkWidth = 48
	for _, r := range rows {
		minV, maxV := r.vals[0], r.vals[0]
		for _, v := range r.vals[1:] {
			minV = min(minV, v)
			maxV = max(maxV, v)
		}
		fmt.Fprintf(&b, "%-*s |%-*s| min "+r.fmt+"  max "+r.fmt+"\n",
			wname+1, r.name, sparkWidth, Sparkline(r.vals, sparkWidth), minV, maxV)
	}
	return b.String()
}

// LatencyTable renders the offload latency histograms: one row per
// (op, phase) with count, mean, and the p50/p90/p99/max percentiles in
// cycles. Ops that never ran are skipped; a nil or empty recorder
// renders a placeholder.
func LatencyTable(title string, rec *timeline.LatencyRecorder) string {
	if rec == nil || !rec.HasSpans() {
		return title + "\n(no offload spans recorded)\n"
	}
	header := []string{"op / phase", "count", "mean", "p50", "p90", "p99", "max"}
	var rows [][]string
	cyc := func(v uint64) string { return fmt.Sprintf("%d", v) }
	for op := timeline.Op(0); op < timeline.NumOps; op++ {
		l := rec.ByOp[op]
		if l.Total.Count == 0 {
			continue
		}
		for _, ph := range []struct {
			name string
			h    timeline.Hist
		}{
			{"queue-wait", l.Queue},
			{"service", l.Service},
			{"end-to-end", l.Total},
		} {
			rows = append(rows, []string{
				fmt.Sprintf("%s %s", op, ph.name),
				fmt.Sprintf("%d", ph.h.Count),
				fmt.Sprintf("%.1f", ph.h.Mean()),
				cyc(ph.h.Quantile(0.50)),
				cyc(ph.h.Quantile(0.90)),
				cyc(ph.h.Quantile(0.99)),
				cyc(ph.h.Max),
			})
		}
	}
	out := Table(title, header, rows)
	if rec.Dropped > 0 {
		out += fmt.Sprintf("(%d spans beyond the retention cap; histograms include them)\n", rec.Dropped)
	}
	return out
}

// SLOTable renders the per-tenant SLO ledger: one row per tenant with
// end-to-end percentiles, violation counts, the tenant's worst window,
// and how far its p99 sits from its class budget. Tenants that
// completed no request (churned out early, or abandons only) render "-"
// latency cells instead of dividing by zero.
func SLOTable(title string, tr *slo.Tracker) string {
	if tr == nil || !tr.HasData() {
		return title + "\n(no slo data recorded)\n"
	}
	header := []string{"tenant", "class", "requests", "abandons", "violations",
		"p50", "p99", "p999", "max", "worst win", "vs budget"}
	var rows [][]string
	for _, id := range tr.TenantIDs() {
		ts := tr.Tenant(id)
		row := []string{fmt.Sprintf("%d", id), tenantClasses(ts),
			fmt.Sprintf("%d", ts.Requests), fmt.Sprintf("%d", ts.Abandons),
			fmt.Sprintf("%d", ts.Violations)}
		if ts.Requests == 0 {
			row = append(row, "-", "-", "-", "-", "-", "-")
		} else {
			h := ts.Total.Total
			row = append(row,
				fmt.Sprintf("%d", h.Quantile(0.50)),
				fmt.Sprintf("%d", h.Quantile(0.99)),
				fmt.Sprintf("%d", h.Quantile(0.999)),
				fmt.Sprintf("%d", h.Max),
				fmt.Sprintf("%d", ts.WorstWindowViolations),
				vsBudget(tr, ts))
		}
		rows = append(rows, row)
	}
	out := Table(title, header, rows)
	if w, ok := tr.WorstWindow(); ok {
		out += fmt.Sprintf("worst window: [%d, %d) — %d violations / %d requests (burn rate %.1fx)\n",
			w.Start, w.Start+tr.Width(), w.Violations, w.Requests, tr.BurnRate(w))
	}
	if tr.DroppedSpans() > 0 {
		out += fmt.Sprintf("(%d request spans beyond the retention cap; ledgers include them)\n", tr.DroppedSpans())
	}
	return out
}

// tenantClasses names the op classes a tenant actually ran.
func tenantClasses(ts *slo.TenantStats) string {
	var names []string
	for c := slo.Class(0); c < slo.NumClasses; c++ {
		if ts.ByClass[c].Total.Count > 0 {
			names = append(names, c.String())
		}
	}
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, "+")
}

// vsBudget formats the worst per-class p99-vs-budget delta as a signed
// percentage ("-" when every class the tenant ran is unbudgeted).
func vsBudget(tr *slo.Tracker, ts *slo.TenantStats) string {
	worst, ok := 0.0, false
	for c := slo.Class(0); c < slo.NumClasses; c++ {
		b := tr.Options().Budgets[c]
		if b == 0 || ts.ByClass[c].Total.Count == 0 {
			continue
		}
		d := (float64(ts.ByClass[c].Total.Quantile(0.99)) - float64(b)) / float64(b)
		if !ok || d > worst {
			worst, ok = d, true
		}
	}
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%+.0f%%", worst*100)
}

// AttributionRows builds the miss-attribution layout: for every address
// class, the share of worker-core LLC misses and dTLB misses that fell
// on that class (one column per result).
func AttributionRows(results []harness.Result) [][]string {
	pct := func(part, whole uint64) string {
		if whole == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
	}
	var rows [][]string
	for _, metric := range []struct {
		name string
		tot  func(sim.ClassCounters) uint64
	}{
		{"LLC-miss", func(c sim.ClassCounters) uint64 { return c.LLCLoadMisses + c.LLCStoreMisses }},
		{"dTLB-miss", func(c sim.ClassCounters) uint64 { return c.DTLBLoadMisses + c.DTLBStoreMisses }},
	} {
		for _, cls := range region.Classes() {
			row := []string{fmt.Sprintf("%s %% %s", metric.name, cls)}
			for _, r := range results {
				var whole uint64
				for _, c := range r.Classes {
					whole += metric.tot(c)
				}
				row = append(row, pct(metric.tot(r.Classes[cls]), whole))
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// AttributionTable renders the per-class miss shares in the counter
// table's layout (classes × allocators).
func AttributionTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, AttributionRows(results))
}

// LayoutCell pairs one layout-ablation run with the metadata layout it
// pinned and the index of its same-transport segregated baseline cell
// (-1 when the cell is its own baseline).
type LayoutCell struct {
	Result   harness.Result
	Layout   core.Layout
	Baseline int
}

// LayoutRows builds the layout-ablation readout: the static metadata
// footprint of each layout (record stride, allocation-state bytes and
// bits per block for the 64 B class), the measured metadata-class LLC
// and dTLB misses summed over worker and server cores, cycles per
// malloc/free call, and deltas against each cell's segregated baseline.
func LayoutRows(cells []LayoutCell) [][]string {
	sc := alloc.NewSizeClasses()
	class, _ := sc.ClassFor(64)
	metaMiss := func(r harness.Result, get func(sim.ClassCounters) uint64) uint64 {
		return get(r.Classes[region.Meta]) + get(r.ServerClasses[region.Meta])
	}
	llc := func(c sim.ClassCounters) uint64 { return c.LLCLoadMisses + c.LLCStoreMisses }
	tlb := func(c sim.ClassCounters) uint64 { return c.DTLBLoadMisses + c.DTLBStoreMisses }
	cpo := func(r harness.Result) float64 {
		ops := r.AllocStats.MallocCalls + r.AllocStats.FreeCalls
		if ops == 0 {
			return 0
		}
		return float64(r.Total.Cycles) / float64(ops)
	}
	delta := func(v, base float64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", 100*(v-base)/base)
	}
	row := func(name string, cell func(LayoutCell) string) []string {
		cells2 := []string{name}
		for _, c := range cells {
			cells2 = append(cells2, cell(c))
		}
		return cells2
	}
	return [][]string{
		row("layout", func(c LayoutCell) string { return c.Layout.String() }),
		row("meta record bytes", func(c LayoutCell) string {
			return fmt.Sprintf("%d", c.Layout.RecordBytes())
		}),
		row("state bytes/slab (64B class)", func(c LayoutCell) string {
			_, bytes := core.MetaFootprint(c.Layout, sc, class)
			return fmt.Sprintf("%d", bytes)
		}),
		row("state bits/block (64B class)", func(c LayoutCell) string {
			capacity, bytes := core.MetaFootprint(c.Layout, sc, class)
			return fmt.Sprintf("%.2f", 8*float64(bytes)/float64(capacity))
		}),
		row("meta LLC misses", func(c LayoutCell) string {
			return Sci(float64(metaMiss(c.Result, llc)))
		}),
		row("meta dTLB misses", func(c LayoutCell) string {
			return Sci(float64(metaMiss(c.Result, tlb)))
		}),
		row("cycles/op", func(c LayoutCell) string { return fmt.Sprintf("%.1f", cpo(c.Result)) }),
		row("d-meta-miss vs seg", func(c LayoutCell) string {
			if c.Baseline < 0 {
				return "-"
			}
			b := cells[c.Baseline].Result
			return delta(float64(metaMiss(c.Result, llc)+metaMiss(c.Result, tlb)),
				float64(metaMiss(b, llc)+metaMiss(b, tlb)))
		}),
		row("d-cycles/op vs seg", func(c LayoutCell) string {
			if c.Baseline < 0 {
				return "-"
			}
			return delta(cpo(c.Result), cpo(cells[c.Baseline].Result))
		}),
	}
}

// LayoutTable renders the layout-ablation cells (layout x transport
// columns) in the counter table's layout.
func LayoutTable(title string, cells []LayoutCell) string {
	header := []string{"Cell"}
	for _, c := range cells {
		header = append(header, c.Result.Allocator)
	}
	return Table(title, header, LayoutRows(cells))
}
