// Package report renders experiment results as fixed-width text tables
// in the layouts the paper uses (counter rows × allocator columns,
// scientific-notation cells), plus simple ASCII bar series for the
// figures.
package report

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// Sci formats a counter the way the paper's tables do (e.g. 1.177E+12).
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	return strings.ToUpper(fmt.Sprintf("%.3e", v))
}

// Table renders a header row and body rows with aligned columns. Ragged
// rows are fine: columns beyond the header get their own width.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	ncols := len(header)
	for _, r := range rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(&b, "%s\n", title)
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i]+2, c)
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	total := 2 * len(header)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// CounterRows builds the paper's Table 1/3 layout: one row per PMU
// counter, one column per result.
func CounterRows(results []harness.Result) [][]string {
	row := func(name string, get func(sim.Counters) float64) []string {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, Sci(get(r.Total)))
		}
		return cells
	}
	mpki := func(name string, get func(sim.Counters) uint64) []string {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, fmt.Sprintf("%.3f", sim.MPKI(get(r.Total), r.Total.Instructions)))
		}
		return cells
	}
	return [][]string{
		row("cycles", func(c sim.Counters) float64 { return float64(c.Cycles) }),
		row("instructions", func(c sim.Counters) float64 { return float64(c.Instructions) }),
		row("LLC-load-misses", func(c sim.Counters) float64 { return float64(c.LLCLoadMisses) }),
		row("LLC-store-misses", func(c sim.Counters) float64 { return float64(c.LLCStoreMisses) }),
		row("dTLB-load-misses", func(c sim.Counters) float64 { return float64(c.DTLBLoadMisses) }),
		row("dTLB-store-misses", func(c sim.Counters) float64 { return float64(c.DTLBStoreMisses) }),
		mpki("LLC-load-MPKI", func(c sim.Counters) uint64 { return c.LLCLoadMisses }),
		mpki("LLC-store-MPKI", func(c sim.Counters) uint64 { return c.LLCStoreMisses }),
		mpki("dTLB-load-MPKI", func(c sim.Counters) uint64 { return c.DTLBLoadMisses }),
		mpki("dTLB-store-MPKI", func(c sim.Counters) uint64 { return c.DTLBStoreMisses }),
	}
}

// CounterTable renders results in the paper's counter-table layout.
func CounterTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, CounterRows(results))
}

// Bars renders a normalized horizontal bar chart (Figure 1 style):
// values are scaled so the smallest positive value is 1.00. An empty
// series renders as just the title, and a series with no positive value
// (all zeros) renders flat bars — neither produces NaN or +Inf ratios.
func Bars(title string, labels []string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV := 0.0
	for _, v := range values {
		if v > 0 && (minV == 0 || v < minV) {
			minV = v
		}
	}
	wname := 0
	for _, l := range labels {
		if len(l) > wname {
			wname = len(l)
		}
	}
	for i, v := range values {
		rel := 0.0
		if minV > 0 {
			rel = v / minV
		}
		n := int(rel * 30)
		if n > 120 {
			n = 120
		}
		if n < 0 {
			n = 0
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s %s %.3fx (%s cycles)\n",
			wname+1, label, strings.Repeat("#", n), rel, Sci(v))
	}
	return b.String()
}

// TransportRows builds the offload-transport layout: one row per
// ring/server telemetry metric, one column per result. Columns for
// runs without offload telemetry (inline modes, classic allocators)
// render as "-".
func TransportRows(results []harness.Result) [][]string {
	row := func(name string, get func(harness.Result) string) []string {
		cells := []string{name}
		for _, r := range results {
			if r.Offload == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, get(r))
		}
		return cells
	}
	count := func(v uint64) string { return fmt.Sprintf("%d", v) }
	ratio := func(num, den uint64) string {
		if den == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(num)/float64(den))
	}
	perOp := func(v uint64, r harness.Result) string {
		ops := r.AllocStats.MallocCalls + r.AllocStats.FreeCalls
		if ops == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", float64(v)/float64(ops))
	}
	return [][]string{
		row("malloc ring round trips", func(r harness.Result) string { return count(r.Offload.MallocRing.Pushes) }),
		row("stash-hit mallocs", func(r harness.Result) string {
			return count(r.AllocStats.MallocCalls - r.Offload.MallocRing.Pushes)
		}),
		row("free ring requests", func(r harness.Result) string { return count(r.Offload.FreeRing.Pushes) }),
		row("free reqs/publication", func(r harness.Result) string {
			return ratio(r.Offload.FreeRing.Pushes, r.Offload.FreeRing.PushBatches)
		}),
		row("free pops/drain batch", func(r harness.Result) string {
			return ratio(r.Offload.FreeRing.Pops, r.Offload.FreeRing.PopBatches)
		}),
		row("producer stall cyc/op", func(r harness.Result) string {
			return perOp(r.Offload.MallocRing.StallCycles+r.Offload.FreeRing.StallCycles, r)
		}),
		row("ring full retries", func(r harness.Result) string {
			return count(r.Offload.MallocRing.FullRetries + r.Offload.FreeRing.FullRetries)
		}),
		row("server busy cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerBusyCycles)) }),
		row("server idle cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerIdleCycles)) }),
		row("server empty polls", func(r harness.Result) string { return count(r.Offload.ServerEmptyPolls) }),
		row("empty-poll scan cycles", func(r harness.Result) string { return Sci(float64(r.Offload.ServerEmptyPollCycles)) }),
	}
}

// TransportTable renders the offload transport telemetry in the counter
// table's layout (metrics × allocators).
func TransportTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, TransportRows(results))
}

// AttributionRows builds the miss-attribution layout: for every address
// class, the share of worker-core LLC misses and dTLB misses that fell
// on that class (one column per result).
func AttributionRows(results []harness.Result) [][]string {
	pct := func(part, whole uint64) string {
		if whole == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
	}
	var rows [][]string
	for _, metric := range []struct {
		name string
		tot  func(sim.ClassCounters) uint64
	}{
		{"LLC-miss", func(c sim.ClassCounters) uint64 { return c.LLCLoadMisses + c.LLCStoreMisses }},
		{"dTLB-miss", func(c sim.ClassCounters) uint64 { return c.DTLBLoadMisses + c.DTLBStoreMisses }},
	} {
		for _, cls := range region.Classes() {
			row := []string{fmt.Sprintf("%s %% %s", metric.name, cls)}
			for _, r := range results {
				var whole uint64
				for _, c := range r.Classes {
					whole += metric.tot(c)
				}
				row = append(row, pct(metric.tot(r.Classes[cls]), whole))
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// AttributionTable renders the per-class miss shares in the counter
// table's layout (classes × allocators).
func AttributionTable(title string, results []harness.Result) string {
	header := []string{"Allocator"}
	for _, r := range results {
		header = append(header, r.Allocator)
	}
	return Table(title, header, AttributionRows(results))
}
