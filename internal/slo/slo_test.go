package slo

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// opts is a small-window configuration that keeps test arithmetic
// readable: width 100, budget 50 for interactive, bulk unbudgeted.
func testOpts() Options {
	return Options{
		Budgets:      Budgets{Interactive: 50},
		WindowCycles: 100,
		WindowCap:    4,
		SpanCap:      8,
		TargetRate:   0.10,
	}
}

func TestViolated(t *testing.T) {
	tr := NewTracker(testOpts())
	if tr.Violated(Interactive, 50) {
		t.Errorf("exactly-on-budget must not violate")
	}
	if !tr.Violated(Interactive, 51) {
		t.Errorf("one over budget must violate")
	}
	if tr.Violated(Bulk, 1<<40) {
		t.Errorf("zero budget means unbudgeted, never violating")
	}
}

func TestObserveLedgers(t *testing.T) {
	tr := NewTracker(testOpts())
	// Tenant 1: one fast, one violating interactive request on thread 7.
	tr.Observe(1, 7, Interactive, 0, 10, 40)   // end-to-end 40, ok
	tr.Observe(1, 7, Interactive, 50, 60, 160) // end-to-end 110, violates
	// Tenant 2: one bulk request on thread 8 (unbudgeted).
	tr.Observe(2, 8, Bulk, 100, 100, 300)
	tr.Abandon(1, Interactive)

	if got := tr.Completed(); got != 3 {
		t.Fatalf("Completed = %d, want 3", got)
	}
	if got := tr.Violations(); got != 1 {
		t.Fatalf("Violations = %d, want 1", got)
	}
	if got := tr.Abandoned(); got != 1 {
		t.Fatalf("Abandoned = %d, want 1", got)
	}
	if ids := tr.TenantIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("TenantIDs = %v, want [1 2]", ids)
	}
	ts := tr.Tenant(1)
	if ts.Requests != 2 || ts.Abandons != 1 || ts.Violations != 1 {
		t.Fatalf("tenant 1 ledger = %+v", ts)
	}
	if ts.ClassViolations[Interactive] != 1 || ts.ClassViolations[Bulk] != 0 {
		t.Fatalf("tenant 1 class violations = %v", ts.ClassViolations)
	}
	if ts.Total.Total.Count != 2 || ts.Total.Total.Max != 110 {
		t.Fatalf("tenant 1 total hist = %+v", ts.Total.Total)
	}
	if ts.ByClass[Interactive].Queue.Max != 10 {
		t.Fatalf("tenant 1 queue max = %d, want 10", ts.ByClass[Interactive].Queue.Max)
	}
	if m := tr.ThreadRequests(7); m[1] != 2 || len(m) != 1 {
		t.Fatalf("thread 7 requests = %v", m)
	}
	if !tr.HasData() {
		t.Fatalf("tracker with observations must report data")
	}
	var nilTr *Tracker
	if nilTr.HasData() {
		t.Fatalf("nil tracker must report no data")
	}
	if NewTracker(Options{}).HasData() {
		t.Fatalf("fresh tracker must report no data")
	}
}

func TestWindowsAndWorstWindow(t *testing.T) {
	tr := NewTracker(testOpts())
	// Completions at cycles 10, 110, 120: windows [0,100) and [100,200).
	tr.Observe(0, 0, Interactive, 0, 0, 10)    // ok
	tr.Observe(0, 0, Interactive, 0, 0, 110)   // violates (110 > 50)
	tr.Observe(0, 0, Interactive, 60, 60, 120) // violates (60 > 50)
	ws := tr.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %v, want 2", ws)
	}
	if ws[0].Start != 0 || ws[0].Requests != 1 || ws[0].Violations != 0 {
		t.Fatalf("window 0 = %+v", ws[0])
	}
	if ws[1].Start != 100 || ws[1].Requests != 2 || ws[1].Violations != 2 {
		t.Fatalf("window 1 = %+v", ws[1])
	}
	worst, ok := tr.WorstWindow()
	if !ok || worst.Start != 100 || worst.Violations != 2 {
		t.Fatalf("worst window = %+v ok=%v", worst, ok)
	}
	// Burn rate: 2 violations / 2 requests over a 0.10 target = 10x.
	if got := tr.BurnRate(worst); got != 10.0 {
		t.Fatalf("burn rate = %v, want 10", got)
	}
	if got := tr.BurnRate(Window{}); got != 0 {
		t.Fatalf("empty-window burn rate = %v, want 0", got)
	}
	// Per-tenant worst window tracked at observation width.
	ts := tr.Tenant(0)
	if ts.WorstWindowViolations != 2 || ts.WorstWindowStart != 100 {
		t.Fatalf("tenant worst window = %d@%d", ts.WorstWindowViolations, ts.WorstWindowStart)
	}

	// Ties break earliest: fresh tracker, one violation in each of two
	// windows.
	tr2 := NewTracker(testOpts())
	tr2.Observe(0, 0, Interactive, 0, 0, 60)
	tr2.Observe(0, 0, Interactive, 100, 100, 160)
	if w, _ := tr2.WorstWindow(); w.Start != 0 {
		t.Fatalf("tied worst window start = %d, want earliest 0", w.Start)
	}
	if _, ok := NewTracker(testOpts()).WorstWindow(); ok {
		t.Fatalf("fresh tracker must report no worst window")
	}
}

func TestWindowDecimation(t *testing.T) {
	tr := NewTracker(testOpts()) // width 100, cap 4
	// Fill windows 0..3 with one request each, window 1 violating.
	tr.Observe(0, 0, Interactive, 0, 0, 10)
	tr.Observe(0, 0, Interactive, 100, 100, 160) // violates
	tr.Observe(0, 0, Interactive, 210, 210, 230)
	tr.Observe(0, 0, Interactive, 310, 310, 330)
	if tr.Width() != 100 || len(tr.Windows()) != 4 {
		t.Fatalf("pre-decimation width %d windows %d", tr.Width(), len(tr.Windows()))
	}
	// Cycle 450 lands in index 4 >= cap: decimate once (width 200).
	tr.Observe(0, 0, Interactive, 440, 440, 450)
	if tr.Width() != 200 {
		t.Fatalf("width = %d, want 200 after decimation", tr.Width())
	}
	ws := tr.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (two merged pairs + the new one)", len(ws))
	}
	// Sums are exact across decimation.
	var reqs, viols uint64
	for i, w := range ws {
		if w.Start != uint64(i)*200 {
			t.Fatalf("window %d start = %d, want %d", i, w.Start, i*200)
		}
		reqs += w.Requests
		viols += w.Violations
	}
	if reqs != 5 || viols != 1 {
		t.Fatalf("decimated sums: %d requests %d violations, want 5/1", reqs, viols)
	}
	if ws[0].Requests != 2 || ws[0].Violations != 1 {
		t.Fatalf("merged window 0 = %+v", ws[0])
	}
	// A far-future completion forces repeated doubling in one call.
	tr.Observe(0, 0, Interactive, 0, 0, 100*100)
	if int(100*100/tr.Width()) >= tr.Options().WindowCap {
		t.Fatalf("width %d still exceeds cap for cycle 10000", tr.Width())
	}
}

func TestSpansAndTraceExport(t *testing.T) {
	tr := NewTracker(testOpts()) // span cap 8
	for i := 0; i < 10; i++ {
		tr.Observe(i%2, 0, Interactive, uint64(i*10), uint64(i*10+5), uint64(i*10+100))
	}
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("retained spans = %d, want cap 8", got)
	}
	if got := tr.DroppedSpans(); got != 2 {
		t.Fatalf("dropped spans = %d, want 2", got)
	}
	sp := tr.Spans()[0]
	if sp.QueueWait() != 5 || sp.Service() != 95 || sp.EndToEnd() != 100 {
		t.Fatalf("span splits = %d/%d/%d", sp.QueueWait(), sp.Service(), sp.EndToEnd())
	}
	out := tr.TraceSpans()
	if len(out) != 8 {
		t.Fatalf("trace spans = %d, want 8", len(out))
	}
	if out[0].Tenant != 0 || out[0].Class != "interactive" || !out[0].Violated {
		t.Fatalf("trace span 0 = %+v", out[0])
	}
	var nilTr *Tracker
	if nilTr.TraceSpans() != nil {
		t.Fatalf("nil tracker must export no trace spans")
	}
}

func TestRollup(t *testing.T) {
	tr := NewTracker(testOpts())
	tr.Observe(1, 10, Interactive, 0, 0, 10)
	tr.Observe(1, 10, Interactive, 0, 0, 10)
	tr.Observe(2, 11, Bulk, 0, 0, 10)
	tr.Observe(1, 12, Interactive, 0, 0, 10)
	got := tr.Rollup([][]int{{10, 11}, {12}, {99}})
	if len(got) != 3 {
		t.Fatalf("rollup shards = %d, want 3", len(got))
	}
	if got[0][1] != 2 || got[0][2] != 1 || len(got[0]) != 2 {
		t.Fatalf("shard 0 rollup = %v", got[0])
	}
	if got[1][1] != 1 || len(got[1]) != 1 {
		t.Fatalf("shard 1 rollup = %v", got[1])
	}
	if len(got[2]) != 0 {
		t.Fatalf("unknown-thread shard rollup = %v, want empty", got[2])
	}
}

// --- TenantStats.Add coverage (reflection, PR 3/5 telemetry pattern) --------

// fillExported numbers every exported uint64 leaf; unexported fields
// (the tracker's in-flight window cursor) stay zero — Add must not
// depend on them.
func fillExported(v reflect.Value, next *uint64, mul uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next * mul)
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillExported(v.Index(i), next, mul)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath != "" {
				continue // unexported
			}
			fillExported(v.Field(i), next, mul)
		}
	default:
		panic("fillExported: unhandled kind " + v.Kind().String())
	}
}

// checkAdded verifies every exported uint64 leaf was merged: the worst-
// window pair by max-selection (b's fill dominates, so both take b's
// value), Hist maxima by maximum, everything else by addition. A field
// Add drops fails either rule because b's fill is strictly larger.
func checkAdded(t *testing.T, path string, a, b, merged reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Uint64:
		want := a.Uint() + b.Uint()
		if strings.HasSuffix(path, ".Max") ||
			strings.HasSuffix(path, ".WorstWindowViolations") ||
			strings.HasSuffix(path, ".WorstWindowStart") {
			want = max(a.Uint(), b.Uint())
		}
		if merged.Uint() != want {
			t.Errorf("%s: Add gave %d, want %d (a=%d b=%d)", path, merged.Uint(), want, a.Uint(), b.Uint())
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			checkAdded(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), merged.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			f := a.Type().Field(i)
			if f.PkgPath != "" {
				continue
			}
			checkAdded(t, path+"."+f.Name, a.Field(i), b.Field(i), merged.Field(i))
		}
	default:
		t.Fatalf("%s: unhandled kind %s", path, a.Kind())
	}
}

func TestTenantStatsAddCoverage(t *testing.T) {
	var a, b TenantStats
	next := uint64(0)
	fillExported(reflect.ValueOf(&a).Elem(), &next, 1)
	next = 0
	fillExported(reflect.ValueOf(&b).Elem(), &next, 1000)
	merged := a
	merged.Add(b)
	checkAdded(t, "TenantStats",
		reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(merged))
}

func TestDefaultsApplied(t *testing.T) {
	tr := NewTracker(Options{})
	o := tr.Options()
	if o.WindowCycles != DefaultWindowCycles || o.WindowCap != DefaultWindowCap ||
		o.SpanCap != DefaultSpanCap || o.TargetRate != DefaultTargetRate {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if tr.Width() != DefaultWindowCycles {
		t.Fatalf("initial width = %d", tr.Width())
	}
}
