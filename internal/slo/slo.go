// Package slo tracks per-tenant service-level objectives for the
// request-serving workloads: per-tenant latency histograms, per-class
// cycle budgets, and violation counts in tumbling windows. The tracker
// is host-side bookkeeping only — observing a run issues zero simulated
// instructions, so an armed run stays bit-identical to an unarmed one
// (pinned by TestSLOZeroTraffic in the harness).
package slo

import (
	"sort"

	"nextgenmalloc/internal/timeline"
)

// Class is a request's op class; budgets are per class.
type Class int

const (
	// Interactive is a small point request (tight budget).
	Interactive Class = iota
	// Bulk is a heavy request (more allocations, looser budget).
	Bulk
	// NumClasses sizes per-class arrays.
	NumClasses
)

// String names the class for reports and trace events.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	}
	return "unknown"
}

// Budgets holds the per-class end-to-end cycle budgets. A zero budget
// means the class is unbudgeted (never violates).
type Budgets [NumClasses]uint64

// Options arms a tracker.
type Options struct {
	// Budgets are the per-class end-to-end cycle budgets.
	Budgets Budgets
	// WindowCycles is the initial tumbling-window width. When the
	// retained window count would exceed WindowCap, adjacent windows
	// merge pairwise and the width doubles (the timeline sampler's
	// decimation scheme), so memory stays O(WindowCap) for any run
	// length.
	WindowCycles uint64
	// WindowCap bounds the retained windows (defaulted when <= 0).
	WindowCap int
	// SpanCap bounds the retained raw request spans kept for Chrome
	// trace export (defaulted when <= 0; counting continues past it).
	SpanCap int
	// TargetRate is the violation budget per window used as the burn
	// rate denominator (defaulted to 0.05, a 95% objective).
	TargetRate float64
}

// Default option values.
const (
	DefaultWindowCycles = 1 << 16
	DefaultWindowCap    = 256
	DefaultSpanCap      = 1 << 15
	DefaultTargetRate   = 0.05
)

// DefaultOptions returns an armed tracker configuration with budgets
// sized for the quick-scale service workload.
func DefaultOptions() Options {
	return Options{
		Budgets:      Budgets{Interactive: 25000, Bulk: 60000},
		WindowCycles: DefaultWindowCycles,
		WindowCap:    DefaultWindowCap,
		SpanCap:      DefaultSpanCap,
		TargetRate:   DefaultTargetRate,
	}
}

// TenantStats is one tenant's merged ledger: request/abandon/violation
// counts and per-class latency histograms. Every uint64 leaf accumulates
// by addition under Add (reflection-covered like the other telemetry
// structs); the tenant id lives in the tracker's map key, not here.
type TenantStats struct {
	// Requests counts completed requests; Abandons counts requests the
	// workload gave up on before service; Violations counts completed
	// requests over their class budget, with ClassViolations the per-op-
	// class split (summing to Violations).
	Requests        uint64
	Abandons        uint64
	Violations      uint64
	ClassViolations [NumClasses]uint64
	// ByClass holds the queue/service/total distributions per op class.
	ByClass [NumClasses]timeline.OpLatency
	// Total merges all classes (the SLO table's headline percentiles).
	Total timeline.OpLatency
	// WorstWindowViolations is the largest violation count this tenant
	// accumulated in a single tumbling window, and WorstWindowStart that
	// window's start cycle. Evaluated at the window width in effect when
	// the window closed; Add merges by maximum (".Worst" prefix in the
	// reflection test).
	WorstWindowViolations uint64
	WorstWindowStart      uint64

	curWindowStart      uint64
	curWindowViolations uint64
}

// Add merges o into s: counts and histograms add, the worst-window
// ledger merges by maximum (a rollup's worst window is the worst of its
// parts).
func (s *TenantStats) Add(o TenantStats) {
	s.Requests += o.Requests
	s.Abandons += o.Abandons
	s.Violations += o.Violations
	for i := range s.ClassViolations {
		s.ClassViolations[i] += o.ClassViolations[i]
	}
	for i := range s.ByClass {
		s.ByClass[i].Add(o.ByClass[i])
	}
	s.Total.Add(o.Total)
	if o.WorstWindowViolations > s.WorstWindowViolations {
		s.WorstWindowViolations = o.WorstWindowViolations
		s.WorstWindowStart = o.WorstWindowStart
	}
}

// Window is one tumbling violation-accounting window.
type Window struct {
	// Start is the window's first cycle; its width is the tracker's
	// Width at read time (all retained windows share one width).
	Start uint64
	// Requests and Violations count completions landing in the window.
	Requests   uint64
	Violations uint64
}

// Span is one completed request retained for trace export. All three
// stamps are the serving worker's clock, so Arrival <= Start <=
// Complete holds exactly.
type Span struct {
	Tenant   int
	Thread   int
	Class    Class
	Arrival  uint64
	Start    uint64
	Complete uint64
}

// QueueWait is the open-loop backlog: arrival to service start.
func (s Span) QueueWait() uint64 { return s.Start - s.Arrival }

// Service is the in-service time.
func (s Span) Service() uint64 { return s.Complete - s.Start }

// EndToEnd is the full request latency the budgets are judged against.
func (s Span) EndToEnd() uint64 { return s.Complete - s.Arrival }

// Tracker accumulates per-tenant SLO telemetry for one run. It is
// host-side only and not safe for concurrent use; the simulator runs
// all threads on one host goroutine, so Observe calls are naturally
// serialized.
type Tracker struct {
	opt      Options
	width    uint64
	windows  []Window
	tenants  map[int]*TenantStats
	byThread map[int]map[int]uint64 // thread id -> tenant -> completed requests
	spans    []Span
	dropped  uint64
	abandons uint64
}

// NewTracker builds a tracker from opt, applying defaults for
// unspecified fields.
func NewTracker(opt Options) *Tracker {
	if opt.WindowCycles == 0 {
		opt.WindowCycles = DefaultWindowCycles
	}
	if opt.WindowCap <= 0 {
		opt.WindowCap = DefaultWindowCap
	}
	if opt.WindowCap < 2 {
		opt.WindowCap = 2
	}
	if opt.SpanCap <= 0 {
		opt.SpanCap = DefaultSpanCap
	}
	if opt.TargetRate <= 0 {
		opt.TargetRate = DefaultTargetRate
	}
	return &Tracker{
		opt:      opt,
		width:    opt.WindowCycles,
		tenants:  map[int]*TenantStats{},
		byThread: map[int]map[int]uint64{},
	}
}

// Options returns the armed configuration (defaults applied).
func (tr *Tracker) Options() Options { return tr.opt }

// Width returns the current tumbling-window width in cycles (doubles on
// decimation).
func (tr *Tracker) Width() uint64 { return tr.width }

// Violated reports whether an end-to-end latency blows the class budget
// (zero budget = unbudgeted).
func (tr *Tracker) Violated(c Class, endToEnd uint64) bool {
	b := tr.opt.Budgets[c]
	return b != 0 && endToEnd > b
}

// Observe folds one completed request into the ledgers. thread is the
// serving worker's simulated thread id (joins the fleet per-client
// service ledger for per-shard rollups); arrival/start/complete are
// that worker's clock stamps with arrival <= start <= complete.
func (tr *Tracker) Observe(tenant, thread int, c Class, arrival, start, complete uint64) {
	sp := Span{Tenant: tenant, Thread: thread, Class: c,
		Arrival: arrival, Start: start, Complete: complete}
	queue, service, total := sp.QueueWait(), sp.Service(), sp.EndToEnd()
	violated := tr.Violated(c, total)

	ts := tr.tenant(tenant)
	ts.Requests++
	observeOp(&ts.ByClass[c], queue, service, total)
	observeOp(&ts.Total, queue, service, total)

	w := tr.window(complete)
	w.Requests++
	if violated {
		ts.Violations++
		ts.ClassViolations[c]++
		w.Violations++
		// Per-tenant worst window, counted at the current width. The
		// window's start identifies it; a width change starts a new
		// count (historical worsts keep the width they were measured
		// at, documented on the field).
		ws := (complete / tr.width) * tr.width
		if ws != ts.curWindowStart || ts.curWindowViolations == 0 {
			ts.curWindowStart = ws
			ts.curWindowViolations = 0
		}
		ts.curWindowViolations++
		if ts.curWindowViolations > ts.WorstWindowViolations {
			ts.WorstWindowViolations = ts.curWindowViolations
			ts.WorstWindowStart = ws
		}
	}

	byTenant := tr.byThread[thread]
	if byTenant == nil {
		byTenant = map[int]uint64{}
		tr.byThread[thread] = byTenant
	}
	byTenant[tenant]++

	if len(tr.spans) < tr.opt.SpanCap {
		tr.spans = append(tr.spans, sp)
	} else {
		tr.dropped++
	}
}

// Abandon records a request the workload gave up on before service
// (open-loop backlog past the workload's abandon threshold).
func (tr *Tracker) Abandon(tenant int, c Class) {
	tr.tenant(tenant).Abandons++
	tr.abandons++
}

func observeOp(l *timeline.OpLatency, queue, service, total uint64) {
	l.Queue.Observe(queue)
	l.Service.Observe(service)
	l.Total.Observe(total)
}

func (tr *Tracker) tenant(id int) *TenantStats {
	ts := tr.tenants[id]
	if ts == nil {
		ts = &TenantStats{}
		tr.tenants[id] = ts
	}
	return ts
}

// window returns the tumbling window holding cycle, growing the dense
// window list and decimating (pairwise merge, width doubling) when the
// list would exceed WindowCap.
func (tr *Tracker) window(cycle uint64) *Window {
	for int(cycle/tr.width) >= tr.opt.WindowCap {
		tr.decimate()
	}
	idx := int(cycle / tr.width)
	for len(tr.windows) <= idx {
		tr.windows = append(tr.windows, Window{Start: uint64(len(tr.windows)) * tr.width})
	}
	return &tr.windows[idx]
}

// decimate merges adjacent window pairs and doubles the width, keeping
// request/violation sums exact (the timeline sampler's scheme).
func (tr *Tracker) decimate() {
	half := (len(tr.windows) + 1) / 2
	for i := 0; i < half; i++ {
		w := tr.windows[2*i]
		if 2*i+1 < len(tr.windows) {
			w.Requests += tr.windows[2*i+1].Requests
			w.Violations += tr.windows[2*i+1].Violations
		}
		w.Start = uint64(i) * tr.width * 2
		tr.windows[i] = w
	}
	tr.windows = tr.windows[:half]
	tr.width *= 2
}

// Windows returns the retained tumbling windows in time order (all at
// the current Width).
func (tr *Tracker) Windows() []Window { return tr.windows }

// TenantIDs returns the observed tenant ids in ascending order.
func (tr *Tracker) TenantIDs() []int {
	ids := make([]int, 0, len(tr.tenants))
	for id := range tr.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Tenant returns one tenant's ledger (nil when never observed).
func (tr *Tracker) Tenant(id int) *TenantStats { return tr.tenants[id] }

// Completed returns the total completed requests across tenants.
func (tr *Tracker) Completed() uint64 {
	var n uint64
	for _, ts := range tr.tenants {
		n += ts.Requests
	}
	return n
}

// Abandoned returns the total abandoned requests across tenants.
func (tr *Tracker) Abandoned() uint64 { return tr.abandons }

// Violations returns the total budget violations across tenants.
func (tr *Tracker) Violations() uint64 {
	var n uint64
	for _, ts := range tr.tenants {
		n += ts.Violations
	}
	return n
}

// HasData reports whether the tracker observed any request or abandon
// (metrics docs omit the slo block otherwise, keeping unarmed runs
// byte-identical).
func (tr *Tracker) HasData() bool {
	return tr != nil && (len(tr.tenants) > 0 || tr.abandons > 0)
}

// WorstWindow returns the retained window with the most violations
// (ties break earliest) and whether any window exists.
func (tr *Tracker) WorstWindow() (Window, bool) {
	if len(tr.windows) == 0 {
		return Window{}, false
	}
	worst := tr.windows[0]
	for _, w := range tr.windows[1:] {
		if w.Violations > worst.Violations {
			worst = w
		}
	}
	return worst, true
}

// BurnRate is a window's violation rate over the target rate (the SRE
// burn-rate convention: 1.0 = exactly consuming the error budget).
// Empty windows burn nothing.
func (tr *Tracker) BurnRate(w Window) float64 {
	if w.Requests == 0 {
		return 0
	}
	return float64(w.Violations) / float64(w.Requests) / tr.opt.TargetRate
}

// Spans returns the retained raw request spans in completion order.
func (tr *Tracker) Spans() []Span { return tr.spans }

// DroppedSpans counts spans past SpanCap (ledgers still include them).
func (tr *Tracker) DroppedSpans() uint64 { return tr.dropped }

// TraceSpans converts the retained spans to tenant-labeled Chrome trace
// spans (one viewer track per tenant).
func (tr *Tracker) TraceSpans() []timeline.TenantSpan {
	if tr == nil || len(tr.spans) == 0 {
		return nil
	}
	out := make([]timeline.TenantSpan, len(tr.spans))
	for i, sp := range tr.spans {
		out[i] = timeline.TenantSpan{
			Tenant:   sp.Tenant,
			Class:    sp.Class.String(),
			Arrival:  sp.Arrival,
			Start:    sp.Start,
			Complete: sp.Complete,
			Violated: tr.Violated(sp.Class, sp.EndToEnd()),
		}
	}
	return out
}

// ThreadRequests returns one thread's per-tenant completed-request
// counts (nil when the thread served nothing).
func (tr *Tracker) ThreadRequests(thread int) map[int]uint64 {
	return tr.byThread[thread]
}

// ThreadIDs returns the serving thread ids in ascending order.
func (tr *Tracker) ThreadIDs() []int {
	ids := make([]int, 0, len(tr.byThread))
	for id := range tr.byThread {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Rollup aggregates per-tenant completed-request counts per shard,
// where shards lists each shard's client thread ids (the PR 7
// per-client service ledger). The result holds one tenant->count map
// per shard; threads absent from every shard are ignored.
func (tr *Tracker) Rollup(shards [][]int) []map[int]uint64 {
	out := make([]map[int]uint64, len(shards))
	for i, threads := range shards {
		m := map[int]uint64{}
		for _, th := range threads {
			for tenant, n := range tr.byThread[th] {
				m[tenant] += n
			}
		}
		out[i] = m
	}
	return out
}

// Observable is implemented by workloads that can feed a tracker; the
// harness attaches the armed tracker before Setup.
type Observable interface {
	AttachSLO(*Tracker)
}
