// Package workload provides the deterministic allocation-intensive
// drivers used by the paper's evaluation: a synthetic stand-in for SPEC
// CPU2017 xalancbmk, plus reimplementations of the mimalloc-bench /
// Hoard microbenchmarks it cites (xmalloc, cache-scratch, cache-thrash,
// larson) and a generic churn driver for the ablations.
//
// Workloads perform *all* of their own data accesses — node tables,
// payload writes, pointer chases, inter-thread queues — through the
// simulator, so application-side cache and TLB behaviour responds to
// allocator placement decisions exactly as the paper argues it does.
package workload

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/sim"
)

// Workload is one benchmark program.
//
// Thread 0 calls Setup once (after the allocator exists) to build shared
// state; every thread then calls Run with its part index. Implementations
// must be deterministic for a fixed Params.
type Workload interface {
	Name() string
	Threads() int
	Setup(t *sim.Thread, a alloc.Allocator)
	Run(t *sim.Thread, part int, a alloc.Allocator)
}

// RNG is SplitMix64, advanced with a charged ALU instruction so random
// draws are not free compute.
type RNG struct{ s uint64 }

// NewRNG seeds an RNG (seed 0 is remapped).
func NewRNG(seed uint64) RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return RNG{s: seed}
}

// Next returns the next 64-bit draw.
func (r *RNG) Next(t *sim.Thread) uint64 {
	t.Exec(2)
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// IntN returns a draw in [0, n).
func (r *RNG) IntN(t *sim.Thread, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: IntN(%d)", n))
	}
	return int(r.Next(t) % uint64(n))
}

// SizeDist is a weighted size distribution.
type SizeDist struct {
	weights []int // cumulative
	lo, hi  []uint64
	total   int
}

// NewSizeDist builds a distribution from (weight, lo, hi) triples; draws
// are uniform within the chosen bucket.
func NewSizeDist(buckets ...[3]uint64) *SizeDist {
	d := &SizeDist{}
	for _, b := range buckets {
		d.total += int(b[0])
		d.weights = append(d.weights, d.total)
		d.lo = append(d.lo, b[1])
		d.hi = append(d.hi, b[2])
	}
	return d
}

// Draw samples one size.
func (d *SizeDist) Draw(t *sim.Thread, r *RNG) uint64 {
	w := r.IntN(t, d.total)
	for i, cum := range d.weights {
		if w < cum {
			span := d.hi[i] - d.lo[i]
			if span == 0 {
				return d.lo[i]
			}
			return d.lo[i] + r.Next(t)%(span+1)
		}
	}
	return d.lo[len(d.lo)-1]
}
