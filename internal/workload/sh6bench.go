package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// Sh6bench reimplements MicroQuill's sh6bench (shipped in
// mimalloc-bench alongside the paper's xmalloc): repeated passes that
// allocate a batch of blocks, free a random half of the batch in place,
// keep the survivors across passes in a retention pool, and
// periodically drain the pool — a mix of LIFO, FIFO, and random free
// order that punishes allocators whose reuse policy assumes one of
// them.
type Sh6bench struct {
	NThreads  int
	Passes    int
	BatchSize int
	MinSize   uint64
	MaxSize   uint64
	// RetainPasses is how many passes survivors live before draining.
	RetainPasses int
	Seed         uint64

	pool uint64 // sim array: per-thread retention slots
}

// Name implements Workload.
func (s *Sh6bench) Name() string { return "sh6bench" }

// Threads implements Workload.
func (s *Sh6bench) Threads() int { return s.NThreads }

// poolSlots is the per-thread retention capacity.
func (s *Sh6bench) poolSlots() int { return s.BatchSize * s.RetainPasses }

// Setup implements Workload.
func (s *Sh6bench) Setup(t *sim.Thread, a alloc.Allocator) {
	poolPages := (s.NThreads*s.poolSlots()*8 + 4095) >> 12
	s.pool = t.MmapHuge(poolPages)
	t.MarkRegion(s.pool, poolPages<<12, region.Global)
}

// Run implements Workload.
func (s *Sh6bench) Run(t *sim.Thread, part int, a alloc.Allocator) {
	rng := NewRNG(s.Seed + uint64(part)*0x5b6b)
	span := s.MaxSize - s.MinSize + 1
	base := s.pool + uint64(part*s.poolSlots())*8
	poolLen := 0
	batch := make([]uint64, s.BatchSize) // host scratch for this pass

	for pass := 0; pass < s.Passes; pass++ {
		// Allocate the pass's batch and touch each block.
		for i := range batch {
			size := s.MinSize + rng.Next(t)%span
			batch[i] = a.Malloc(t, size)
			t.Store64(batch[i], uint64(pass))
		}
		// Free a random half immediately, in random order.
		for freed := 0; freed < s.BatchSize/2; {
			i := rng.IntN(t, s.BatchSize)
			if batch[i] != 0 {
				a.Free(t, batch[i])
				batch[i] = 0
				freed++
			}
		}
		// Survivors join the retention pool (stored in program data).
		for _, p := range batch {
			if p == 0 {
				continue
			}
			if poolLen < s.poolSlots() {
				t.Store64(base+uint64(poolLen)*8, p)
				poolLen++
			} else {
				a.Free(t, p)
			}
		}
		// Periodic drain: the oldest survivors go FIFO.
		if (pass+1)%s.RetainPasses == 0 {
			for i := 0; i < poolLen; i++ {
				a.Free(t, t.Load64(base+uint64(i)*8))
			}
			poolLen = 0
		}
		t.Exec(64)
	}
	for i := 0; i < poolLen; i++ {
		a.Free(t, t.Load64(base+uint64(i)*8))
	}
}
