package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// CacheScratch reimplements Hoard/mimalloc-bench cache-scratch, cited by
// the paper (§1) among the workloads whose performance varies >10x with
// the allocator. A parent thread allocates one small object per worker;
// each worker frees its object, then repeatedly allocates a same-size
// object and writes it many times. An allocator that recycles the
// parent's memory across threads induces *passive false sharing*: two
// workers' hot objects share a cache line and every write ping-pongs it.
type CacheScratch struct {
	NThreads int
	// ObjSize is the object size (8 bytes in the original: many fit one
	// cache line).
	ObjSize uint64
	// Rounds is the number of allocate/scratch/free rounds per worker.
	Rounds int
	// Inner is the number of write passes per round.
	Inner int

	handoff uint64 // sim array of parent-allocated object addresses
}

// Name implements Workload.
func (c *CacheScratch) Name() string { return "cache-scratch" }

// Threads implements Workload.
func (c *CacheScratch) Threads() int { return c.NThreads }

// Setup implements Workload: the parent's allocations neighbour each
// other, so naive reuse spreads one line across threads.
func (c *CacheScratch) Setup(t *sim.Thread, a alloc.Allocator) {
	c.handoff = t.Mmap(1)
	t.MarkRegion(c.handoff, 1<<12, region.Global)
	for i := 0; i < c.NThreads; i++ {
		p := a.Malloc(t, c.ObjSize)
		t.BlockWrite(p, int(c.ObjSize), 7)
		t.Store64(c.handoff+uint64(i)*8, p)
	}
}

// Run implements Workload.
func (c *CacheScratch) Run(t *sim.Thread, part int, a alloc.Allocator) {
	// Free the parent's object from this thread (cross-thread free).
	p := t.Load64(c.handoff + uint64(part)*8)
	a.Free(t, p)
	for r := 0; r < c.Rounds; r++ {
		obj := a.Malloc(t, c.ObjSize)
		for k := 0; k < c.Inner; k++ {
			t.BlockWrite(obj, int(c.ObjSize), uint64(k))
		}
		a.Free(t, obj)
	}
}

// CacheThrash is cache-scratch's sibling with *active* false sharing:
// the workers keep writing the object the parent allocated, so if the
// parent's per-thread objects were packed into one line the line
// ping-pongs for the whole run regardless of later allocator behaviour.
type CacheThrash struct {
	NThreads int
	ObjSize  uint64
	Rounds   int
	Inner    int

	handoff uint64
}

// Name implements Workload.
func (c *CacheThrash) Name() string { return "cache-thrash" }

// Threads implements Workload.
func (c *CacheThrash) Threads() int { return c.NThreads }

// Setup implements Workload.
func (c *CacheThrash) Setup(t *sim.Thread, a alloc.Allocator) {
	c.handoff = t.Mmap(1)
	t.MarkRegion(c.handoff, 1<<12, region.Global)
	for i := 0; i < c.NThreads; i++ {
		p := a.Malloc(t, c.ObjSize)
		t.BlockWrite(p, int(c.ObjSize), 7)
		t.Store64(c.handoff+uint64(i)*8, p)
	}
}

// Run implements Workload.
func (c *CacheThrash) Run(t *sim.Thread, part int, a alloc.Allocator) {
	obj := t.Load64(c.handoff + uint64(part)*8)
	for r := 0; r < c.Rounds; r++ {
		for k := 0; k < c.Inner; k++ {
			t.BlockWrite(obj, int(c.ObjSize), uint64(k))
		}
		t.Exec(4)
	}
	a.Free(t, obj)
}
