package workload

import (
	"testing"
	"testing/quick"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/allocators/bump"
	"nextgenmalloc/internal/sim"
)

// runWorkload executes w against a bump allocator and returns its stats.
func runWorkload(w Workload) alloc.Stats {
	m := sim.New(sim.ScaledConfig())
	ready, _ := m.Kernel().Mmap(1)
	var a alloc.Allocator
	n := w.Threads()
	for i := 0; i < n; i++ {
		part := i
		m.Spawn("w", part, func(t *sim.Thread) {
			if part == 0 {
				a = bump.New(t)
				w.Setup(t, a)
				t.AtomicStore64(ready, 1)
			} else {
				for t.Load64(ready) == 0 {
					t.Pause(100)
				}
			}
			t.FetchAdd64(ready+64, 1)
			for t.Load64(ready+64) != uint64(n) {
				t.Pause(50)
			}
			w.Run(t, part, a)
		})
	}
	m.Run()
	return a.Stats()
}

func TestRNGDeterministic(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := NewRNG(42)
		b := NewRNG(42)
		for i := 0; i < 100; i++ {
			if a.Next(th) != b.Next(th) {
				t.Fatal("same-seed RNGs diverged")
			}
		}
		c := NewRNG(43)
		same := 0
		for i := 0; i < 100; i++ {
			if a.Next(th) == c.Next(th) {
				same++
			}
		}
		if same > 2 {
			t.Errorf("different seeds matched %d/100 draws", same)
		}
	})
	m.Run()
}

func TestSizeDistBounds(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		d := NewSizeDist([3]uint64{1, 16, 64}, [3]uint64{3, 128, 512})
		rng := NewRNG(7)
		low, high := 0, 0
		for i := 0; i < 2000; i++ {
			s := d.Draw(th, &rng)
			switch {
			case s >= 16 && s <= 64:
				low++
			case s >= 128 && s <= 512:
				high++
			default:
				t.Fatalf("draw %d outside both buckets", s)
			}
		}
		// Weight 3:1 toward the large bucket.
		if high < 2*low {
			t.Errorf("bucket weights off: low=%d high=%d", low, high)
		}
	})
	m.Run()
}

func TestQuickSizeDistInBuckets(t *testing.T) {
	f := func(seed uint64) bool {
		ok := true
		m := sim.New(sim.ScaledConfig())
		m.Spawn("t", 0, func(th *sim.Thread) {
			d := NewSizeDist([3]uint64{2, 8, 32}, [3]uint64{1, 100, 100})
			rng := NewRNG(seed)
			for i := 0; i < 200; i++ {
				s := d.Draw(th, &rng)
				if !(s >= 8 && s <= 32 || s == 100) {
					ok = false
					return
				}
			}
		})
		m.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestXalancCallCounts(t *testing.T) {
	w := DefaultXalanc(8000)
	st := runWorkload(w)
	// Build phase allocates NodeSlots nodes; the transform phase does
	// ~Ops replacements, each a free+malloc pair once slots are full.
	wantMallocs := uint64(w.NodeSlots) + uint64(w.Ops/w.Burst*w.Burst)
	if st.MallocCalls != wantMallocs {
		t.Errorf("mallocs = %d, want %d", st.MallocCalls, wantMallocs)
	}
	if st.FreeCalls == 0 || st.FreeCalls > st.MallocCalls {
		t.Errorf("frees = %d out of range", st.FreeCalls)
	}
	// malloc:free stays near 1:1 in steady state (paper: 138M vs 141M).
	if ratio := float64(st.MallocCalls) / float64(st.FreeCalls+uint64(w.NodeSlots)); ratio > 1.05 || ratio < 0.95 {
		t.Errorf("malloc:free+live ratio = %.3f", ratio)
	}
}

func TestXalancDeterministic(t *testing.T) {
	a := runWorkload(DefaultXalanc(4000))
	b := runWorkload(DefaultXalanc(4000))
	if a != b {
		t.Errorf("same-seed xalanc stats differ: %+v vs %+v", a, b)
	}
}

func TestXmallocAllFreed(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		w := &Xmalloc{NThreads: n, OpsPerThread: 2000, TouchBytes: 64, Seed: 3}
		st := runWorkload(w)
		want := uint64(n * 2000)
		if st.MallocCalls != want {
			t.Errorf("threads=%d: mallocs %d, want %d", n, st.MallocCalls, want)
		}
		if st.FreeCalls != want {
			t.Errorf("threads=%d: frees %d, want %d (cycle must drain)", n, st.FreeCalls, want)
		}
	}
}

func TestLarsonDrains(t *testing.T) {
	w := &Larson{NThreads: 2, SlotsPerThread: 256, RoundsPerThread: 3000, MinSize: 16, MaxSize: 256, Seed: 1}
	st := runWorkload(w)
	if st.MallocCalls != 6000 {
		t.Errorf("mallocs %d, want 6000", st.MallocCalls)
	}
	if st.FreeCalls != st.MallocCalls {
		t.Errorf("teardown leaked: %d mallocs vs %d frees", st.MallocCalls, st.FreeCalls)
	}
}

func TestCacheScratchCounts(t *testing.T) {
	w := &CacheScratch{NThreads: 3, ObjSize: 8, Rounds: 100, Inner: 10}
	st := runWorkload(w)
	// Parent allocates 3; each worker does Rounds allocations.
	want := uint64(3 + 3*100)
	if st.MallocCalls != want || st.FreeCalls != want {
		t.Errorf("calls %d/%d, want %d/%d", st.MallocCalls, st.FreeCalls, want, want)
	}
}

func TestCacheThrashCounts(t *testing.T) {
	w := &CacheThrash{NThreads: 2, ObjSize: 8, Rounds: 50, Inner: 10}
	st := runWorkload(w)
	if st.MallocCalls != 2 || st.FreeCalls != 2 {
		t.Errorf("calls %d/%d, want 2/2", st.MallocCalls, st.FreeCalls)
	}
}

func TestChurnDeterministic(t *testing.T) {
	mk := func() Workload {
		return &Churn{NThreads: 2, Slots: 500, Rounds: 2000, MinSize: 16, MaxSize: 128, TouchBytes: 32, Seed: 11}
	}
	if a, b := runWorkload(mk()), runWorkload(mk()); a != b {
		t.Error("churn not deterministic")
	}
}

func TestSh6benchBalanced(t *testing.T) {
	w := &Sh6bench{NThreads: 2, Passes: 40, BatchSize: 50, MinSize: 16, MaxSize: 256, RetainPasses: 4, Seed: 5}
	st := runWorkload(w)
	want := uint64(2 * 40 * 50)
	if st.MallocCalls != want {
		t.Errorf("mallocs %d, want %d", st.MallocCalls, want)
	}
	if st.FreeCalls != st.MallocCalls {
		t.Errorf("leaked: %d mallocs vs %d frees", st.MallocCalls, st.FreeCalls)
	}
}

func TestSh6benchDeterministic(t *testing.T) {
	mk := func() Workload {
		return &Sh6bench{NThreads: 1, Passes: 30, BatchSize: 40, MinSize: 16, MaxSize: 128, RetainPasses: 3, Seed: 9}
	}
	if a, b := runWorkload(mk()), runWorkload(mk()); a != b {
		t.Error("sh6bench not deterministic")
	}
}

func TestFaaSRerunKeepsMeasurementsBounded(t *testing.T) {
	// Re-running one FaaS instance (harness reruns, back-to-back
	// experiments) must restart the measurement list, not grow it
	// without bound — and must reuse the backing array.
	w := &FaaS{Invocations: 25, Profile: DefaultFaaSProfile(), ComputePerAlloc: 10, Seed: 2}
	first := runWorkload(w)
	capAfterFirst := cap(w.InvocationCycles)
	second := runWorkload(w)
	if len(w.InvocationCycles) != 25 {
		t.Fatalf("after two runs recorded %d invocations, want 25", len(w.InvocationCycles))
	}
	if cap(w.InvocationCycles) != capAfterFirst {
		t.Errorf("backing array reallocated on rerun: cap %d -> %d", capAfterFirst, cap(w.InvocationCycles))
	}
	if first != second {
		t.Errorf("rerun not deterministic: %+v vs %+v", first, second)
	}
}

func TestServiceBalancedAndDeterministic(t *testing.T) {
	mk := func() *Service {
		return &Service{NWorkers: 2, RequestsPerWorker: 40, Tenants: 5,
			ChurnEvery: 4, MeanGapCycles: 1500, BurstLen: 4, Seed: 3}
	}
	w := mk()
	st := runWorkload(w)
	// Every arena handed off at the response boundary is freed by the
	// neighbouring worker's drain.
	if st.MallocCalls == 0 || st.MallocCalls != st.FreeCalls {
		t.Errorf("unbalanced: %d mallocs vs %d frees", st.MallocCalls, st.FreeCalls)
	}
	if b := runWorkload(mk()); st != b {
		t.Error("service not deterministic")
	}
}

func TestFaaSColdVsSteady(t *testing.T) {
	w := &FaaS{Invocations: 30, Profile: DefaultFaaSProfile(), ComputePerAlloc: 10, Seed: 1}
	st := runWorkload(w)
	want := uint64(30 * len(w.Profile))
	if st.MallocCalls != want || st.FreeCalls != want {
		t.Errorf("calls %d/%d, want %d", st.MallocCalls, st.FreeCalls, want)
	}
	if len(w.InvocationCycles) != 30 {
		t.Fatalf("recorded %d invocations", len(w.InvocationCycles))
	}
	if w.ColdStart() <= w.SteadyState() {
		t.Errorf("cold start (%d) should exceed steady state (%d)", w.ColdStart(), w.SteadyState())
	}
}
