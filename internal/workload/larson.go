package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// Larson models the Larson server benchmark: each worker owns an array
// of object slots and repeatedly replaces a random slot (free the old
// object, allocate a new one of random size, initialize it), the classic
// sustained-churn pattern of a long-running server.
type Larson struct {
	NThreads         int
	SlotsPerThread   int
	RoundsPerThread  int
	MinSize, MaxSize uint64
	Seed             uint64

	slots uint64 // sim array: NThreads × SlotsPerThread × {addr, size}
}

// Name implements Workload.
func (l *Larson) Name() string { return "larson" }

// Threads implements Workload.
func (l *Larson) Threads() int { return l.NThreads }

// Setup implements Workload.
func (l *Larson) Setup(t *sim.Thread, a alloc.Allocator) {
	pages := (l.NThreads*l.SlotsPerThread*16 + 4095) >> 12
	l.slots = t.MmapHuge(pages)
	t.MarkRegion(l.slots, pages<<12, region.Global)
}

func (l *Larson) slot(part, i int) uint64 {
	return l.slots + uint64(part*l.SlotsPerThread+i)*16
}

// Run implements Workload.
func (l *Larson) Run(t *sim.Thread, part int, a alloc.Allocator) {
	rng := NewRNG(l.Seed + uint64(part)*0x51a4)
	span := l.MaxSize - l.MinSize + 1
	for r := 0; r < l.RoundsPerThread; r++ {
		s := l.slot(part, rng.IntN(t, l.SlotsPerThread))
		if old := t.Load64(s); old != 0 {
			a.Free(t, old)
		}
		size := l.MinSize + rng.Next(t)%span
		p := a.Malloc(t, size)
		t.BlockWrite(p, min(int(size), 64), uint64(r))
		t.Store64(s, p)
		t.Store64(s+8, size)
		t.Exec(12)
	}
	// Teardown: release the surviving objects.
	for i := 0; i < l.SlotsPerThread; i++ {
		s := l.slot(part, i)
		if p := t.Load64(s); p != 0 {
			a.Free(t, p)
			t.Store64(s, 0)
		}
	}
}

// Churn is the generic random-replacement driver used by the ablation
// experiments: per-thread slot churn with a configurable size range and
// optional payload touches, with none of xalanc's compute or traversal.
type Churn struct {
	NThreads   int
	Slots      int // per thread
	Rounds     int // per thread
	MinSize    uint64
	MaxSize    uint64
	TouchBytes int
	Seed       uint64

	table uint64
}

// Name implements Workload.
func (c *Churn) Name() string { return "churn" }

// Threads implements Workload.
func (c *Churn) Threads() int { return c.NThreads }

// Setup implements Workload.
func (c *Churn) Setup(t *sim.Thread, a alloc.Allocator) {
	pages := (c.NThreads*c.Slots*16 + 4095) >> 12
	c.table = t.MmapHuge(pages)
	t.MarkRegion(c.table, pages<<12, region.Global)
}

// Run implements Workload.
func (c *Churn) Run(t *sim.Thread, part int, a alloc.Allocator) {
	rng := NewRNG(c.Seed + uint64(part)*0xc0ffee)
	span := c.MaxSize - c.MinSize + 1
	base := c.table + uint64(part*c.Slots)*16
	for r := 0; r < c.Rounds; r++ {
		s := base + uint64(rng.IntN(t, c.Slots))*16
		if old := t.Load64(s); old != 0 {
			a.Free(t, old)
		}
		size := c.MinSize + rng.Next(t)%span
		p := a.Malloc(t, size)
		if c.TouchBytes > 0 {
			t.BlockWrite(p, min(int(size), c.TouchBytes), uint64(r))
		}
		t.Store64(s, p)
		t.Store64(s+8, size)
	}
}
