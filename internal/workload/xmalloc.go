package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
)

// Xmalloc reimplements Lever & Boreham's xmalloc-test (the paper's
// footnote 2): every thread allocates blocks that a *different* thread
// deallocates. The cross-thread frees drag allocator metadata and block
// lines between cores — the mechanism behind Table 2's >10x LLC-miss
// growth from 1 to 8 threads.
//
// Thread i produces into ring i and consumes (frees) from ring i-1, so
// the threads form a cycle; with one thread it degenerates to
// self-free, matching the original benchmark.
type Xmalloc struct {
	// NThreads is the worker count (Table 2 uses 1, 2, 4, 8).
	NThreads int
	// OpsPerThread is the number of blocks each thread allocates.
	OpsPerThread int
	// TouchBytes is how much of each block the producer writes.
	TouchBytes int
	// Seed fixes the run.
	Seed uint64

	ringsBase uint64
	doneBase  uint64
	rings     []*ring.SPSC
	dist      *SizeDist
}

const xmallocRingSlots = 256

// Name implements Workload.
func (x *Xmalloc) Name() string { return "xmalloc" }

// Threads implements Workload.
func (x *Xmalloc) Threads() int { return x.NThreads }

// Setup implements Workload.
func (x *Xmalloc) Setup(t *sim.Thread, a alloc.Allocator) {
	x.dist = NewSizeDist(
		[3]uint64{70, 32, 128},
		[3]uint64{25, 128, 512},
		[3]uint64{5, 512, 2048},
	)
	per := uint64(ring.BytesFor(xmallocRingSlots)+sim.LineSize-1) &^ (sim.LineSize - 1)
	pages := int((per*uint64(x.NThreads) + 4095) >> 12)
	x.ringsBase = t.Mmap(pages)
	t.MarkRegion(x.ringsBase, pages<<12, region.Ring)
	x.rings = make([]*ring.SPSC, x.NThreads)
	for i := 0; i < x.NThreads; i++ {
		x.rings[i] = ring.New(x.ringsBase+uint64(i)*per, xmallocRingSlots)
	}
	// One done-flag cache line per producer.
	donePages := int((uint64(x.NThreads)*sim.LineSize + 4095) >> 12)
	x.doneBase = t.Mmap(donePages)
	t.MarkRegion(x.doneBase, donePages<<12, region.Global)
}

func (x *Xmalloc) doneFlag(i int) uint64 { return x.doneBase + uint64(i)*sim.LineSize }

// Run implements Workload.
func (x *Xmalloc) Run(t *sim.Thread, part int, a alloc.Allocator) {
	rng := NewRNG(x.Seed + uint64(part)*0x9e37)
	prod := x.rings[part]
	prev := (part + x.NThreads - 1) % x.NThreads
	cons := x.rings[prev]
	produced, freed := 0, 0
	for produced < x.OpsPerThread {
		size := x.dist.Draw(t, &rng)
		p := a.Malloc(t, size)
		t.BlockWrite(p, min(int(size), x.TouchBytes), uint64(part)+1)
		// Hand the block to the neighbour (may spin when it is behind).
		for !prod.TryPush(t, p, size) {
			// Drain our own consumer side while waiting to avoid a
			// cycle-wide stall.
			if addr, _, ok := cons.TryPop(t); ok {
				a.Free(t, addr)
				freed++
			} else {
				t.Pause(64)
			}
		}
		produced++
		// Opportunistically free one incoming block per allocation.
		if addr, _, ok := cons.TryPop(t); ok {
			a.Free(t, addr)
			freed++
		}
		t.Exec(8)
	}
	t.Store64(x.doneFlag(part), 1)
	// Drain until the upstream producer is done and its ring is empty.
	for {
		if addr, _, ok := cons.TryPop(t); ok {
			a.Free(t, addr)
			freed++
			continue
		}
		if t.Load64(x.doneFlag(prev)) != 0 {
			// The producer is finished; one final pop settles any push
			// that landed between our pop and the flag read.
			if addr, _, ok := cons.TryPop(t); ok {
				a.Free(t, addr)
				freed++
				continue
			}
			break
		}
		t.Pause(64)
	}
	_ = freed
}
