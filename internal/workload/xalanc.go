package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// Xalanc is the synthetic stand-in for SPEC CPU2017 523.xalancbmk, the
// paper's headline workload (Figure 1, Tables 1 and 3): an XML
// transformer that churns small DOM-node and string allocations while
// spending the great majority of its time in non-allocator work — yet
// whose end-to-end time swings by up to 72% with the allocator, because
// that other work's cache/TLB behaviour depends on where the allocator
// put the data.
//
// Structure: a node table (the "DOM") of NodeSlots entries. Nodes are
// born and die in *clusters* of siblings (Burst consecutive slots with
// correlated sizes — elements, attributes, text runs), and the
// transformation passes traverse clusters sequentially. An allocator
// that keeps siblings on few pages (size-class slabs) gives the
// traversal locality; one that scatters them across the heap (boundary
// tags + first-fit reuse) makes every sibling visit a fresh page — the
// pollution/locality channel the paper measures.
type Xalanc struct {
	// Ops is the number of node replacements in the transform phase.
	Ops int
	// NodeSlots is the live-set size (working set ≈ NodeSlots × mean
	// object size; sized to stress the LLC and STLB like the original).
	NodeSlots int
	// Burst is the sibling-cluster size (replaced and traversed together).
	Burst int
	// ComputePerOp is the ALU work per replacement (sets the paper's
	// "only 2% of time in malloc/free" share).
	ComputePerOp int
	// ChaseEvery runs a transformation pass every N bursts.
	ChaseEvery int
	// ChaseClusters is the number of clusters visited per pass.
	ChaseClusters int
	// TouchBytes caps how much of each new node is written.
	TouchBytes int
	// Seed fixes the run.
	Seed uint64

	table uint64 // sim array: NodeSlots × {addr, size}
	kinds []*SizeDist
}

// DefaultXalanc mirrors the allocation statistics the paper reports at a
// simulation-friendly scale (pair with sim.ScaledConfig so the live set
// stresses the LLC and STLB the way the original stresses full-size
// ones).
func DefaultXalanc(ops int) *Xalanc {
	slots := ops / 2
	if slots > 100000 {
		slots = 100000
	}
	if slots < 20000 {
		slots = 20000
	}
	return &Xalanc{
		Ops:           ops,
		NodeSlots:     slots,
		Burst:         16,
		ComputePerOp:  120,
		ChaseEvery:    4,
		ChaseClusters: 6,
		TouchBytes:    96,
		Seed:          1,
	}
}

// Name implements Workload.
func (x *Xalanc) Name() string { return "xalanc" }

// Threads implements Workload: xalancbmk is single-threaded.
func (x *Xalanc) Threads() int { return 1 }

// Setup implements Workload.
func (x *Xalanc) Setup(t *sim.Thread, a alloc.Allocator) {
	// Sibling clusters draw correlated sizes: element nodes, attribute
	// strings, token buffers, and occasional text segments.
	x.kinds = []*SizeDist{
		NewSizeDist([3]uint64{1, 24, 48}),    // element headers
		NewSizeDist([3]uint64{1, 16, 64}),    // attributes
		NewSizeDist([3]uint64{1, 48, 160}),   // strings
		NewSizeDist([3]uint64{1, 128, 512}),  // text runs
		NewSizeDist([3]uint64{1, 512, 2048}), // rare buffers
	}
	pages := (x.NodeSlots*16 + 4095) >> 12
	x.table = t.MmapHuge(pages) // large arrays are THP-backed
	t.MarkRegion(x.table, pages<<12, region.Global)
}

func (x *Xalanc) slotAddr(i int) uint64 { return x.table + uint64(i)*16 }

// kindFor picks the cluster's size distribution: mostly nodes and
// strings, occasionally heavier text.
func (x *Xalanc) kindFor(t *sim.Thread, rng *RNG) *SizeDist {
	k := rng.IntN(t, 16)
	switch {
	case k < 5:
		return x.kinds[0]
	case k < 9:
		return x.kinds[1]
	case k < 13:
		return x.kinds[2]
	case k < 15:
		return x.kinds[3]
	default:
		return x.kinds[4]
	}
}

// replaceCluster frees and reallocates the Burst slots starting at slot
// index base with sizes drawn from one kind (siblings are alike).
func (x *Xalanc) replaceCluster(t *sim.Thread, a alloc.Allocator, rng *RNG, base int) {
	// Tear down the whole subtree first (readers release a finished
	// result tree in one sweep), then rebuild it.
	for j := 0; j < x.Burst && base+j < x.NodeSlots; j++ {
		slot := x.slotAddr(base + j)
		if addr := t.Load64(slot); addr != 0 {
			size := t.Load64(slot + 8)
			// The transformer reads a node before discarding it.
			t.BlockRead(addr, min(int(size), 16))
			a.Free(t, addr)
		}
	}
	kind := x.kindFor(t, rng)
	for j := 0; j < x.Burst && base+j < x.NodeSlots; j++ {
		slot := x.slotAddr(base + j)
		size := kind.Draw(t, rng)
		p := a.Malloc(t, size)
		t.BlockWrite(p, min(int(size), x.TouchBytes), 0xA110C)
		t.Store64(slot, p)
		t.Store64(slot+8, size)
		t.Exec(x.ComputePerOp)
	}
}

// chase performs one transformation pass: visit ChaseClusters random
// clusters and read their nodes in sibling order.
func (x *Xalanc) chase(t *sim.Thread, rng *RNG) {
	for c := 0; c < x.ChaseClusters; c++ {
		base := rng.IntN(t, x.NodeSlots/x.Burst) * x.Burst
		for j := 0; j < x.Burst && base+j < x.NodeSlots; j++ {
			s := x.slotAddr(base + j)
			node := t.Load64(s)
			if node != 0 {
				sz := t.Load64(s + 8)
				t.BlockRead(node, min(int(sz), 48))
			}
			t.Exec(6) // per-node transform arithmetic
		}
	}
}

// Run implements Workload.
func (x *Xalanc) Run(t *sim.Thread, part int, a alloc.Allocator) {
	if part != 0 {
		return
	}
	rng := NewRNG(x.Seed)
	// Build phase: parse the document, populating the DOM cluster by
	// cluster (xalancbmk allocates its tree before transforming it).
	for base := 0; base < x.NodeSlots; base += x.Burst {
		kind := x.kindFor(t, &rng)
		for j := 0; j < x.Burst && base+j < x.NodeSlots; j++ {
			slot := x.slotAddr(base + j)
			size := kind.Draw(t, &rng)
			p := a.Malloc(t, size)
			t.BlockWrite(p, min(int(size), x.TouchBytes), 0xD0C)
			t.Store64(slot, p)
			t.Store64(slot+8, size)
			t.Exec(x.ComputePerOp / 4)
		}
	}
	// Transform phase: clustered replacement, traversal, and compute.
	bursts := x.Ops / x.Burst
	clusters := x.NodeSlots / x.Burst
	for i := 0; i < bursts; i++ {
		base := rng.IntN(t, clusters) * x.Burst
		x.replaceCluster(t, a, &rng, base)
		if x.ChaseEvery > 0 && i%x.ChaseEvery == 0 {
			x.chase(t, &rng)
		}
	}
}
