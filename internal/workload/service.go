package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/slo"
)

// Service models a multi-tenant request-serving process — the
// production shape ROADMAP item 5 asks for. Each worker thread serves a
// stream of requests with bursty open-loop arrivals (deterministic
// seeded inter-arrival draws: requests keep arriving whether or not the
// worker is keeping up, so allocator stalls surface as queue-wait).
// Each request belongs to a tenant with its own size profile and op
// class, allocates an arena-style object set, computes, and hands the
// whole arena to the *next* worker at the response boundary — frees are
// cross-thread, as they are when a response is serialized by another
// thread. Tenants churn: some join and leave mid-run, so a tenant can
// finish a run with zero completed requests.
//
// The workload implements slo.Observable; when the harness attaches a
// tracker, every completion/abandon is reported host-side. The
// simulated instruction stream never branches on the tracker, so an
// armed run is bit-identical to an unarmed one.
type Service struct {
	// NWorkers is the serving thread count.
	NWorkers int
	// RequestsPerWorker is each worker's arrival count.
	RequestsPerWorker int
	// Tenants is the tenant population (ids 0..Tenants-1; min 1).
	Tenants int
	// ChurnEvery makes every ChurnEvery-th tenant ephemeral: active only
	// in the middle half of the run (the last tenant instead leaves
	// after the first eighth). 0 disables churn; tenant 0 is always
	// active so the arrival stream never starves.
	ChurnEvery int
	// MeanGapCycles is the mean open-loop inter-arrival gap per worker
	// (defaulted when 0).
	MeanGapCycles uint64
	// BurstLen groups arrivals: within a burst requests arrive
	// back-to-back, then one long gap re-arms (defaulted when 0).
	BurstLen int
	// ComputePerAlloc is handler work per allocated object (defaulted
	// when 0).
	ComputePerAlloc int
	// AbandonAfter drops a request whose queue wait exceeds this many
	// cycles before service starts (0 = never abandon). Abandoning is
	// deterministic workload behaviour, independent of SLO arming.
	AbandonAfter uint64
	// Seed fixes the run.
	Seed uint64

	tracker  *slo.Tracker
	profiles []*SizeDist

	ringsBase   uint64
	doneBase    uint64
	scratchBase uint64
	rings       []*ring.SPSC
}

// Default service parameters.
const (
	serviceRingSlots       = 256
	serviceMaxAllocs       = 20 // bulk request arena size (the largest)
	serviceDefaultGap      = 2000
	serviceDefaultBurst    = 8
	serviceDefaultCompute  = 16
	serviceInteractiveObjs = 6
	serviceBulkObjs        = serviceMaxAllocs
)

// Name implements Workload.
func (s *Service) Name() string { return "service" }

// Threads implements Workload.
func (s *Service) Threads() int { return s.NWorkers }

// AttachSLO implements slo.Observable (nil detaches).
func (s *Service) AttachSLO(tr *slo.Tracker) { s.tracker = tr }

// tenantClass maps a tenant to its op class: every third tenant runs
// bulk requests, the rest interactive.
func tenantClass(id int) slo.Class {
	if id%3 == 2 {
		return slo.Bulk
	}
	return slo.Interactive
}

// tenantObjs is the arena size for one request of tenant id.
func tenantObjs(id int) int {
	if tenantClass(id) == slo.Bulk {
		return serviceBulkObjs
	}
	return serviceInteractiveObjs
}

// Setup implements Workload.
func (s *Service) Setup(t *sim.Thread, a alloc.Allocator) {
	if s.Tenants < 1 {
		s.Tenants = 1
	}
	// Three size archetypes, assigned by tenant id: point lookups,
	// mixed session state, bulk report buffers.
	s.profiles = []*SizeDist{
		NewSizeDist([3]uint64{80, 16, 96}, [3]uint64{20, 96, 256}),
		NewSizeDist([3]uint64{70, 32, 128}, [3]uint64{25, 128, 512}, [3]uint64{5, 512, 2048}),
		NewSizeDist([3]uint64{50, 256, 1024}, [3]uint64{40, 1024, 4096}, [3]uint64{10, 4096, 16384}),
	}
	// One response hand-off ring per worker (worker i pushes its
	// finished arenas into ring i; worker i+1 frees them).
	per := uint64(ring.BytesFor(serviceRingSlots)+sim.LineSize-1) &^ (sim.LineSize - 1)
	pages := int((per*uint64(s.NWorkers) + 4095) >> 12)
	s.ringsBase = t.Mmap(pages)
	t.MarkRegion(s.ringsBase, pages<<12, region.Ring)
	s.rings = make([]*ring.SPSC, s.NWorkers)
	for i := 0; i < s.NWorkers; i++ {
		s.rings[i] = ring.New(s.ringsBase+uint64(i)*per, serviceRingSlots)
	}
	// One done-flag cache line per worker, then per-worker arena slot
	// tables.
	donePages := int((uint64(s.NWorkers)*sim.LineSize + 4095) >> 12)
	s.doneBase = t.Mmap(donePages)
	t.MarkRegion(s.doneBase, donePages<<12, region.Global)
	scratchPages := (s.NWorkers*serviceMaxAllocs*8 + 4095) >> 12
	s.scratchBase = t.Mmap(scratchPages)
	t.MarkRegion(s.scratchBase, scratchPages<<12, region.Global)
}

func (s *Service) doneFlag(i int) uint64 { return s.doneBase + uint64(i)*sim.LineSize }

func (s *Service) scratch(part, slot int) uint64 {
	return s.scratchBase + uint64(part*serviceMaxAllocs+slot)*8
}

// tenantActive reports whether tenant id can receive request k of the
// per-worker stream (the churn schedule).
func (s *Service) tenantActive(id, k int) bool {
	if id == 0 || s.ChurnEvery <= 0 {
		return true
	}
	r := s.RequestsPerWorker
	if id == s.Tenants-1 && s.Tenants > 1 {
		return k < r/8 // leaves early; can end a short run with 0 requests
	}
	if id%s.ChurnEvery == s.ChurnEvery-1 {
		return k >= r/4 && k < (3*r)/4 // joins and leaves mid-run
	}
	return true
}

// Run implements Workload.
func (s *Service) Run(t *sim.Thread, part int, a alloc.Allocator) {
	gap := s.MeanGapCycles
	if gap == 0 {
		gap = serviceDefaultGap
	}
	burst := s.BurstLen
	if burst <= 0 {
		burst = serviceDefaultBurst
	}
	compute := s.ComputePerAlloc
	if compute == 0 {
		compute = serviceDefaultCompute
	}
	rng := NewRNG(s.Seed + uint64(part)*0x9e37)
	prod := s.rings[part]
	prev := (part + s.NWorkers - 1) % s.NWorkers
	cons := s.rings[prev]
	active := make([]int, 0, s.Tenants)

	// free drains one incoming arena block if available.
	free := func() bool {
		if addr, _, ok := cons.TryPop(t); ok {
			a.Free(t, addr)
			return true
		}
		return false
	}

	arrival := t.Clock()
	for k := 0; k < s.RequestsPerWorker; k++ {
		// Open-loop arrival: back-to-back within a burst, then one long
		// uniform gap (mean gap*burst) re-arms the burst.
		if k%burst == 0 {
			arrival += rng.Next(t) % (2 * gap * uint64(burst))
		}
		if now := t.Clock(); now < arrival {
			t.Pause(int(arrival - now))
		}
		start := t.Clock()

		// Tenant draw over the churn schedule's active set.
		active = active[:0]
		for id := 0; id < s.Tenants; id++ {
			if s.tenantActive(id, k) {
				active = append(active, id)
			}
		}
		tenant := active[rng.IntN(t, len(active))]
		class := tenantClass(tenant)

		if s.AbandonAfter > 0 && start-arrival > s.AbandonAfter {
			// Backlog too deep: drop the request before doing any work.
			if s.tracker != nil {
				s.tracker.Abandon(tenant, class)
			}
			continue
		}

		// Arena-style request body: allocate the tenant's object set,
		// touch and compute, then hand the whole arena to the next
		// worker at the response boundary.
		objs := tenantObjs(tenant)
		dist := s.profiles[tenant%len(s.profiles)]
		for i := 0; i < objs; i++ {
			size := dist.Draw(t, &rng)
			p := a.Malloc(t, size)
			t.BlockWrite(p, min(int(size), 64), uint64(tenant)+1)
			t.Store64(s.scratch(part, i), p)
			t.Exec(compute)
		}
		for i := 0; i < objs; i++ {
			p := t.Load64(s.scratch(part, i))
			for !prod.TryPush(t, p, 0) {
				// The downstream worker is behind; drain our own frees
				// while waiting so the hand-off cycle can't deadlock.
				if !free() {
					t.Pause(64)
				}
			}
		}
		complete := t.Clock()
		if s.tracker != nil {
			s.tracker.Observe(tenant, t.ID(), class, arrival, start, complete)
		}
		// Retire incoming arenas at the same rate we produce them so the
		// hand-off rings stay shallow in steady state.
		for i := 0; i < objs; i++ {
			if !free() {
				break
			}
		}
	}

	t.Store64(s.doneFlag(part), 1)
	// Drain until the upstream producer is done and its ring is empty.
	for {
		if free() {
			continue
		}
		if t.Load64(s.doneFlag(prev)) != 0 {
			// One final pop settles a push that landed between our pop
			// and the flag read.
			if free() {
				continue
			}
			break
		}
		t.Pause(64)
	}
}
