package workload

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// FaaS models a serverless function worker (paper §3.3.2): a stream of
// invocations, each of which allocates the function's runtime objects
// (a known, repeating profile — request buffer, JSON nodes, response),
// does its work, and frees everything at the end. The interesting
// metric is the *cold start*: the first invocation pays for slab
// carving, stash warmup, and cold metadata — unless the allocator was
// preheated with the profile (core.Allocator.Preheat).
type FaaS struct {
	// Invocations is the request count.
	Invocations int
	// Profile is the per-invocation allocation size sequence.
	Profile []uint64
	// ComputePerAlloc is handler work per allocated object.
	ComputePerAlloc int
	// Seed fixes the run.
	Seed uint64

	// InvocationCycles records each invocation's duration (host-side
	// measurement output, filled during Run).
	InvocationCycles []uint64

	scratch uint64 // sim array for the live objects of one invocation
}

// DefaultFaaSProfile is a JSON-ish handler: request buffer, a parse
// tree of small nodes, a few strings, a response buffer.
func DefaultFaaSProfile() []uint64 {
	p := []uint64{2048, 512}
	for i := 0; i < 24; i++ {
		p = append(p, uint64(32+(i%5)*16))
	}
	for i := 0; i < 6; i++ {
		p = append(p, uint64(96+(i%3)*64))
	}
	return append(p, 1024)
}

// Name implements Workload.
func (f *FaaS) Name() string { return "faas" }

// Threads implements Workload.
func (f *FaaS) Threads() int { return 1 }

// Setup implements Workload.
func (f *FaaS) Setup(t *sim.Thread, a alloc.Allocator) {
	scratchPages := (len(f.Profile)*8 + 4095) >> 12
	f.scratch = t.Mmap(scratchPages)
	t.MarkRegion(f.scratch, scratchPages<<12, region.Global)
	if cap(f.InvocationCycles) < f.Invocations {
		f.InvocationCycles = make([]uint64, 0, f.Invocations)
	}
}

// Run implements Workload.
func (f *FaaS) Run(t *sim.Thread, part int, a alloc.Allocator) {
	if part != 0 {
		return
	}
	// Measurements restart every run; the backing array is reused so
	// repeated Run calls don't grow the slice without bound.
	f.InvocationCycles = f.InvocationCycles[:0]
	for inv := 0; inv < f.Invocations; inv++ {
		start := t.Clock()
		// Handler: allocate the profile, initialize, work, respond.
		for i, size := range f.Profile {
			p := a.Malloc(t, size)
			t.BlockWrite(p, min(int(size), 64), uint64(inv))
			t.Store64(f.scratch+uint64(i)*8, p)
			t.Exec(f.ComputePerAlloc)
		}
		// Teardown: the invocation's objects all die.
		for i := range f.Profile {
			a.Free(t, t.Load64(f.scratch+uint64(i)*8))
		}
		f.InvocationCycles = append(f.InvocationCycles, t.Clock()-start)
	}
}

// ColdStart returns the first invocation's cycles.
func (f *FaaS) ColdStart() uint64 {
	if len(f.InvocationCycles) == 0 {
		return 0
	}
	return f.InvocationCycles[0]
}

// SteadyState returns the mean cycles of the second half of the run.
func (f *FaaS) SteadyState() uint64 {
	n := len(f.InvocationCycles)
	if n < 2 {
		return 0
	}
	var sum uint64
	for _, c := range f.InvocationCycles[n/2:] {
		sum += c
	}
	return sum / uint64(n-n/2)
}
