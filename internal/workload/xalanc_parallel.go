package workload

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/sim"
)

// ParallelXalanc runs one independent Xalanc transformer per thread —
// the fleet-saturation workload: N single-threaded xalancbmk processes
// sharing one machine (and, in offload mode, one allocator fleet), the
// way the paper's dedicated-core proposal would actually be deployed.
// Each part gets its own node table and a distinct seed, so the parts
// are homogeneous but not lock-stepped.
type ParallelXalanc struct {
	inner []*Xalanc
}

// NewParallelXalanc builds a threads-way copy of proto. Per-part state
// (table, seed) is derived: part i runs proto with Seed+i.
func NewParallelXalanc(threads int, proto Xalanc) *ParallelXalanc {
	if threads < 1 {
		panic(fmt.Sprintf("workload: ParallelXalanc needs at least one thread, got %d", threads))
	}
	p := &ParallelXalanc{}
	for i := 0; i < threads; i++ {
		x := proto // copy
		x.Seed = proto.Seed + uint64(i)
		p.inner = append(p.inner, &x)
	}
	return p
}

// Name implements Workload.
func (p *ParallelXalanc) Name() string { return fmt.Sprintf("xalanc-x%d", len(p.inner)) }

// Threads implements Workload.
func (p *ParallelXalanc) Threads() int { return len(p.inner) }

// Setup implements Workload: thread 0 maps every part's node table
// (setup runs before the measurement barrier, so construction cost is
// excluded as usual).
func (p *ParallelXalanc) Setup(t *sim.Thread, a alloc.Allocator) {
	for _, x := range p.inner {
		x.Setup(t, a)
	}
}

// Run implements Workload.
func (p *ParallelXalanc) Run(t *sim.Thread, part int, a alloc.Allocator) {
	p.inner[part].Run(t, 0, a)
}
