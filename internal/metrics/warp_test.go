package metrics

import (
	"fmt"
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/workload"
)

func TestWarpMetricsRoundTrip(t *testing.T) {
	// Offload runs under the default machine config (warp on) skip idle
	// server windows, so the additive warp block must appear and pass
	// validation.
	res := sampleResult(t)
	if res.Warp.Windows == 0 {
		t.Fatal("sample offload run engaged no warp; the block below would be vacuous")
	}
	data, err := NewFile(FromResults("x", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("emitted file fails own validation: %v", err)
	}
	s := string(data)
	for _, key := range []string{`"warp"`, `"windows"`, `"rounds"`, `"cycles_warped"`, `"largest_skip"`} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from output", key)
		}
	}
}

func TestWarpOffRunOmitsWarpBlock(t *testing.T) {
	cfg := sim.ScaledConfig()
	cfg.Warp = false
	res := harness.Run(harness.Options{
		Allocator: "nextgen",
		Workload:  workload.DefaultXalanc(1500),
		Machine:   &cfg,
	})
	out := FromResult(res)
	if out.Warp != nil {
		t.Fatalf("warp-off run emitted a warp block: %+v", out.Warp)
	}
}

func TestValidateRejectsBadWarp(t *testing.T) {
	doc := func(warp string) string {
		return fmt.Sprintf(`{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[
			{"allocator":"x","workload":"w","wall_cycles":100000,
			 "classes":{"user":{},"metadata":{},"ring":{},"global":{}},
			 "warp":%s}]}]}`, warp)
	}
	if err := Validate([]byte(doc(`{"windows":3,"rounds":30,"cycles_warped":300,"largest_skip":40}`))); err != nil {
		t.Fatalf("valid warp block rejected: %v", err)
	}
	for name, warp := range map[string]string{
		"zero windows":     `{"windows":0,"rounds":0,"cycles_warped":0,"largest_skip":0}`,
		"rounds < windows": `{"windows":5,"rounds":3,"cycles_warped":300,"largest_skip":40}`,
		"cycles < rounds":  `{"windows":3,"rounds":30,"cycles_warped":20,"largest_skip":4}`,
		"largest > warped": `{"windows":3,"rounds":30,"cycles_warped":300,"largest_skip":400}`,
	} {
		if err := Validate([]byte(doc(warp))); err == nil {
			t.Errorf("Validate accepted warp block with %s", name)
		}
	}
}
