package metrics

import (
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/workload"
)

func sampledResult(t *testing.T, kind string) harness.Result {
	t.Helper()
	return harness.Run(harness.Options{
		Allocator:      kind,
		Workload:       workload.DefaultXalanc(1500),
		SampleInterval: 5000,
	})
}

// TestTimelineRoundTrips: a sampled offload run must emit timeline and
// offload_latency blocks that survive the encoder's own validation and
// keep their snake_case schema keys.
func TestTimelineRoundTrips(t *testing.T) {
	res := sampledResult(t, "nextgen")
	data, err := NewFile(FromResults("tl", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("sampled run fails own validation: %v", err)
	}
	s := string(data)
	for _, key := range []string{
		`"timeline"`, `"interval_cycles"`, `"samples"`, `"cycle"`,
		`"malloc_ring_depth"`, `"free_ring_depth"`, `"server_empty_poll_cycles"`,
		`"offload_latency"`, `"queue_wait"`, `"end_to_end"`,
		`"p50"`, `"p90"`, `"p99"`, `"dropped_spans"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from sampled output", key)
		}
	}
	doc := FromResult(res)
	if doc.Timeline == nil || len(doc.Timeline.Samples) == 0 {
		t.Fatal("FromResult dropped the timeline")
	}
	ol := doc.OffloadLatency
	if ol == nil || ol.Malloc == nil {
		t.Fatal("FromResult dropped malloc latency")
	}
	d := ol.Malloc.EndToEnd
	if d.Count == 0 || d.P50 > d.P99 || d.P99 > d.Max {
		t.Errorf("malloc end-to-end digest malformed: %+v", d)
	}
	// The digest partition: mean queue-wait + mean service equals mean
	// end-to-end exactly (sums partition even though buckets quantise).
	qs := ol.Malloc.QueueWait.Mean + ol.Malloc.Service.Mean
	if diff := qs - ol.Malloc.EndToEnd.Mean; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("mean partition broken: %.3f + %.3f != %.3f",
			ol.Malloc.QueueWait.Mean, ol.Malloc.Service.Mean, ol.Malloc.EndToEnd.Mean)
	}
}

// TestNoLatencyBlockWithoutSpans: a sampled inline-allocator run carries
// a timeline but must omit offload_latency entirely.
func TestNoLatencyBlockWithoutSpans(t *testing.T) {
	res := sampledResult(t, "ptmalloc2")
	doc := FromResult(res)
	if doc.Timeline == nil {
		t.Fatal("timeline missing from sampled inline run")
	}
	if doc.OffloadLatency != nil {
		t.Errorf("offload_latency present without spans: %+v", doc.OffloadLatency)
	}
	data, err := NewFile(FromResults("tl", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"offload_latency"`) {
		t.Error("offload_latency key leaked into spanless output")
	}
	if err := Validate(data); err != nil {
		t.Fatal(err)
	}
}

// TestUnsampledRunOmitsTimeline: without sampling, neither block appears
// (the additions are strictly additive to schema v1).
func TestUnsampledRunOmitsTimeline(t *testing.T) {
	res := harness.Run(harness.Options{Allocator: "nextgen", Workload: workload.DefaultXalanc(1500)})
	data, err := NewFile(FromResults("tl", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, key := range []string{`"timeline"`, `"offload_latency"`} {
		if strings.Contains(s, key) {
			t.Errorf("key %s present in unsampled output", key)
		}
	}
}

func TestValidateRejectsMalformedTimeline(t *testing.T) {
	const prefix = `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"allocator":"x","workload":"w",`
	const suffix = `}]}]}`
	for name, body := range map[string]string{
		"zero interval": `"timeline":{"interval_cycles":0,"samples":[{"cycle":10}]}`,
		"no samples":    `"timeline":{"interval_cycles":100,"samples":[]}`,
		"cycles repeat": `"timeline":{"interval_cycles":100,"samples":[{"cycle":10},{"cycle":10}]}`,
		"cycles regress": `"timeline":{"interval_cycles":100,` +
			`"samples":[{"cycle":20},{"cycle":10}]}`,
		"latency empty": `"offload_latency":{"dropped_spans":0}`,
		"zero count": `"offload_latency":{"malloc":{` +
			`"queue_wait":{"count":0,"mean":0,"p50":0,"p90":0,"p99":0,"max":0},` +
			`"service":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1},` +
			`"end_to_end":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1}}}`,
		"non-monotone percentiles": `"offload_latency":{"malloc":{` +
			`"queue_wait":{"count":1,"mean":1,"p50":9,"p90":5,"p99":9,"max":9},` +
			`"service":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1},` +
			`"end_to_end":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1}}}`,
		"p99 above max": `"offload_latency":{"malloc":{` +
			`"queue_wait":{"count":1,"mean":1,"p50":1,"p90":1,"p99":10,"max":5},` +
			`"service":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1},` +
			`"end_to_end":{"count":1,"mean":1,"p50":1,"p90":1,"p99":1,"max":1}}}`,
	} {
		doc := prefix + classesJSON + "," + body + suffix
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("Validate accepted %s document", name)
		}
	}
	// Sanity: the same scaffold with a well-formed timeline passes, so the
	// rejections above come from the malformed blocks, not the scaffold.
	good := prefix + classesJSON + `,"timeline":{"interval_cycles":100,"samples":[{"cycle":10},{"cycle":20}]}` + suffix
	if err := Validate([]byte(good)); err != nil {
		t.Fatalf("scaffold with valid timeline rejected: %v", err)
	}
}

// classesJSON is the minimal classes block the scaffold needs to pass
// the pre-existing per-class validation.
const classesJSON = `"classes":{"user":{},"metadata":{},"ring":{},"global":{}}`
