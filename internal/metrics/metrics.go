// Package metrics defines the stable machine-readable result schema the
// CLIs emit behind their -metrics flags. One file holds one or more
// experiments; each experiment holds one result per (allocator,
// workload) run, including the per-class miss attribution and — for
// offload runs — the ring/server transport telemetry.
//
// The schema is versioned: consumers check the top-level "schema" field
// ("ngm-metrics/v1") and reject anything else. Field names are
// snake_case and never reused with a different meaning; additions are
// backward-compatible (new optional fields only).
package metrics

import (
	"encoding/json"
	"fmt"
	"os"

	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/timeline"
)

// Schema is the current schema identifier.
const Schema = "ngm-metrics/v1"

// File is the top-level object.
type File struct {
	Schema      string       `json:"schema"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment groups the results of one named table/figure run.
type Experiment struct {
	ID      string   `json:"id"`
	Results []Result `json:"results"`
}

// Result is one (allocator, workload) run.
type Result struct {
	Allocator    string `json:"allocator"`
	Workload     string `json:"workload"`
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	WallCycles   uint64 `json:"wall_cycles"`

	LLCLoadMisses   uint64 `json:"llc_load_misses"`
	LLCStoreMisses  uint64 `json:"llc_store_misses"`
	DTLBLoadMisses  uint64 `json:"dtlb_load_misses"`
	DTLBStoreMisses uint64 `json:"dtlb_store_misses"`

	// Layout names the NextGen metadata layout the run used
	// (segregated, aggregated, or compact); absent for non-NextGen
	// allocators (additive in schema v1).
	Layout string `json:"layout,omitempty"`
	// MetaRecordBytes is that layout's slab-record stride in the
	// metadata region; absent for non-NextGen allocators (additive in
	// schema v1).
	MetaRecordBytes int `json:"meta_record_bytes,omitempty"`

	// Classes maps address-class name (user, metadata, ring, global) to
	// that class's share of the worker cores' traffic and misses.
	Classes map[string]ClassCounters `json:"classes"`
	// ServerClasses is present for offload runs: the dedicated core's
	// attribution over the measured region.
	ServerClasses map[string]ClassCounters `json:"server_classes,omitempty"`
	// Offload is present for offload runs.
	Offload *Offload `json:"offload,omitempty"`
	// Timeline is present when the run sampled time-resolved telemetry
	// (additive in schema v1).
	Timeline *Timeline `json:"timeline,omitempty"`
	// OffloadLatency is present when the run recorded offload request
	// spans (additive in schema v1).
	OffloadLatency *OffloadLatency `json:"offload_latency,omitempty"`
	// Resilience is present when the run armed the graceful-degradation
	// policy or a fault plan (additive in schema v1).
	Resilience *Resilience `json:"resilience,omitempty"`
	// Failover is present when the run armed fleet failover (additive in
	// schema v1): per-client re-homing ledgers and fleet totals.
	Failover *Failover `json:"failover,omitempty"`
	// Warp is present when the scheduler's time warp skipped at least
	// one idle window (additive in schema v1). Host telemetry only:
	// every simulated counter above is bit-identical with warp off.
	Warp *Warp `json:"warp,omitempty"`
	// Servers is present for offload runs (additive in schema v1): one
	// entry per server daemon — the sharded-fleet view. A single-server
	// run carries one entry whose totals match the offload block.
	Servers []ServerMetrics `json:"servers,omitempty"`
	// SLO is present when the run armed the per-tenant SLO tracker and
	// the workload fed it at least one request (additive in schema v1).
	SLO *SLO `json:"slo,omitempty"`
}

// SLO is the per-tenant SLO telemetry of a request-serving run: the
// armed budgets, the tumbling violation windows, and one row per
// tenant. Per-tenant request counts partition completed_requests, as do
// the window request counts (both checked by Validate).
type SLO struct {
	WindowCycles      uint64  `json:"window_cycles"`
	TargetRate        float64 `json:"target_rate"`
	BudgetInteractive uint64  `json:"budget_interactive_cycles"`
	BudgetBulk        uint64  `json:"budget_bulk_cycles"`
	CompletedRequests uint64  `json:"completed_requests"`
	AbandonedRequests uint64  `json:"abandoned_requests"`
	Violations        uint64  `json:"violations"`
	// WorstWindow is the retained window with the most violations
	// (absent when no request completed); WorstBurnRate is that window's
	// violation rate over target_rate.
	WorstWindow   *SLOWindow  `json:"worst_window,omitempty"`
	WorstBurnRate float64     `json:"worst_burn_rate"`
	Windows       []SLOWindow `json:"windows"`
	Tenants       []TenantSLO `json:"tenants"`
	// DroppedSpans counts raw request spans beyond the retention cap
	// (the ledgers above still include them).
	DroppedSpans uint64 `json:"dropped_spans"`
}

// SLOWindow is one tumbling violation-accounting window.
type SLOWindow struct {
	StartCycle uint64 `json:"start_cycle"`
	Requests   uint64 `json:"requests"`
	Violations uint64 `json:"violations"`
}

// TenantSLO is one tenant's ledger. Percentiles are end-to-end cycles
// across the tenant's classes; a tenant that completed no request
// (churned out, or abandons only) carries zero digests.
type TenantSLO struct {
	Tenant                int                 `json:"tenant"`
	Requests              uint64              `json:"requests"`
	Abandons              uint64              `json:"abandons"`
	Violations            uint64              `json:"violations"`
	P50                   uint64              `json:"p50"`
	P99                   uint64              `json:"p99"`
	P999                  uint64              `json:"p999"`
	Max                   uint64              `json:"max"`
	MeanCycles            float64             `json:"mean_cycles"`
	WorstWindowViolations uint64              `json:"worst_window_violations"`
	WorstWindowStart      uint64              `json:"worst_window_start_cycle"`
	Classes               map[string]SLOClass `json:"classes,omitempty"`
}

// SLOClass is one (tenant, op class) slice with the class's budget.
type SLOClass struct {
	Requests     uint64 `json:"requests"`
	Violations   uint64 `json:"violations"`
	BudgetCycles uint64 `json:"budget_cycles"`
	P99          uint64 `json:"p99"`
	Max          uint64 `json:"max"`
}

// ServerMetrics is one server daemon's slice of a (possibly sharded)
// offload run.
type ServerMetrics struct {
	Core            int    `json:"core"`
	BusyCycles      uint64 `json:"busy_cycles"`
	IdleCycles      uint64 `json:"idle_cycles"`
	EmptyPolls      uint64 `json:"empty_polls"`
	EmptyPollCycles uint64 `json:"empty_poll_cycles"`
	ServedOps       uint64 `json:"served_ops"`
	Nacks           uint64 `json:"nacks"`
	MallocRing      Ring   `json:"malloc_ring"`
	FreeRing        Ring   `json:"free_ring"`
	// PerClient is the server's service-fairness ledger, one entry per
	// registered client thread.
	PerClient []ClientServiceMetrics `json:"per_client"`
	// Injected is this shard's own fault-injection ledger, present only
	// when an armed plan actually hit this shard (additive in schema
	// v1) — a targeted plan's telemetry shows which room was broken.
	Injected *InjectedFaults `json:"injected,omitempty"`
}

// InjectedFaults mirrors fault.Stats in snake_case: what the injector
// did to one shard.
type InjectedFaults struct {
	Stalls         uint64 `json:"stalls"`
	StallCycles    uint64 `json:"stall_cycles"`
	DoorbellDrops  uint64 `json:"doorbell_drops"`
	CorruptWords   uint64 `json:"corrupt_words"`
	SlowdownCycles uint64 `json:"slowdown_cycles"`
}

// Failover is the fleet failover ledger of a run: how many times
// clients re-homed their mallocs away from a marked-down shard (downs),
// re-homed back after a successful probe (rejoins), and how many
// mallocs a non-home shard served (forwarded_mallocs). Every event in
// the transition log pairs with a down or a rejoin; overflow past the
// log cap is counted in dropped_events (checked by Validate).
type Failover struct {
	Downs            uint64           `json:"downs"`
	Rejoins          uint64           `json:"rejoins"`
	ForwardedMallocs uint64           `json:"forwarded_mallocs"`
	DroppedEvents    uint64           `json:"dropped_events"`
	Clients          []FailoverClient `json:"clients"`
	Events           []FailoverEvent  `json:"events,omitempty"`
}

// FailoverClient is one application thread's failover routing ledger.
type FailoverClient struct {
	Thread           int    `json:"thread"`
	HomeShard        int    `json:"home_shard"`
	ActiveShard      int    `json:"active_shard"`
	Downs            uint64 `json:"downs"`
	Rejoins          uint64 `json:"rejoins"`
	ForwardedMallocs uint64 `json:"forwarded_mallocs"`
}

// FailoverEvent is one re-home transition.
type FailoverEvent struct {
	Cycle  uint64 `json:"cycle"`
	Thread int    `json:"thread"`
	From   int    `json:"from_shard"`
	To     int    `json:"to_shard"`
}

// ClientServiceMetrics is one client's share of a server's service:
// how many of its requests completed and the widest gap in cycles
// between consecutive completions (the starvation metric).
type ClientServiceMetrics struct {
	Thread              int    `json:"thread"`
	ServedOps           uint64 `json:"served_ops"`
	MaxServiceGapCycles uint64 `json:"max_service_gap_cycles"`
}

// Warp is the time-warp ledger: how much host work the cycle-skipping
// scheduler avoided. Windows counts bulk skips, Rounds the wait-loop
// iterations those skips replayed arithmetically, CyclesWarped the
// simulated cycles covered (summed across threads, so it can exceed
// the wall clock), LargestSkip the biggest single window in cycles.
type Warp struct {
	Windows      uint64 `json:"windows"`
	Rounds       uint64 `json:"rounds"`
	CyclesWarped uint64 `json:"cycles_warped"`
	LargestSkip  uint64 `json:"largest_skip"`
}

// ClassCounters mirrors sim.ClassCounters in snake_case.
type ClassCounters struct {
	Loads           uint64 `json:"loads"`
	Stores          uint64 `json:"stores"`
	L1Misses        uint64 `json:"l1_misses"`
	LLCLoadMisses   uint64 `json:"llc_load_misses"`
	LLCStoreMisses  uint64 `json:"llc_store_misses"`
	DTLBLoadMisses  uint64 `json:"dtlb_load_misses"`
	DTLBStoreMisses uint64 `json:"dtlb_store_misses"`
}

// Offload is the transport telemetry of an offload run.
type Offload struct {
	MallocRing       Ring   `json:"malloc_ring"`
	FreeRing         Ring   `json:"free_ring"`
	ServerBusyCycles uint64 `json:"server_busy_cycles"`
	ServerIdleCycles uint64 `json:"server_idle_cycles"`
	// ServerEmptyPolls / ServerEmptyPollCycles count poll passes that
	// found no ring work and the cycles those passes spent scanning
	// (additive in schema v1; absent means an older producer).
	ServerEmptyPolls      uint64 `json:"server_empty_polls"`
	ServerEmptyPollCycles uint64 `json:"server_empty_poll_cycles"`
	ServedOps             uint64 `json:"served_ops"`
}

// Ring is one direction's SPSC telemetry. Occupancy is the log2-bucket
// histogram of ring depth after each push (bucket b counts depths in
// [2^(b-1), 2^b); bucket 0 is unused). PushBatches/PopBatches count
// index publications, so pushes/push_batches is the average coalesced
// batch width (additive in schema v1).
type Ring struct {
	Pushes      uint64   `json:"pushes"`
	Pops        uint64   `json:"pops"`
	PushBatches uint64   `json:"push_batches"`
	PopBatches  uint64   `json:"pop_batches"`
	FullRetries uint64   `json:"full_retries"`
	StallCycles uint64   `json:"stall_cycles"`
	Occupancy   []uint64 `json:"occupancy_log2"`
}

// Timeline is the sampled counter series: cumulative machine-wide
// values (summed over cores) at each sample cycle, so a consumer
// differences neighbours to get per-interval rates.
type Timeline struct {
	IntervalCycles uint64           `json:"interval_cycles"`
	Samples        []TimelineSample `json:"samples"`
}

// TimelineSample is one cumulative snapshot.
type TimelineSample struct {
	Cycle           uint64 `json:"cycle"`
	Instructions    uint64 `json:"instructions"`
	LLCLoadMisses   uint64 `json:"llc_load_misses"`
	LLCStoreMisses  uint64 `json:"llc_store_misses"`
	DTLBLoadMisses  uint64 `json:"dtlb_load_misses"`
	DTLBStoreMisses uint64 `json:"dtlb_store_misses"`
	MallocRingDepth uint64 `json:"malloc_ring_depth"`
	FreeRingDepth   uint64 `json:"free_ring_depth"`
	ServerBusy      uint64 `json:"server_busy_cycles"`
	ServerEmptyPoll uint64 `json:"server_empty_poll_cycles"`
}

// Resilience is the graceful-degradation and fault-injection ledger of
// a run: client-side policy events plus what the injector actually did.
type Resilience struct {
	Timeouts          uint64 `json:"timeouts"`
	Retries           uint64 `json:"retries"`
	MallocNacks       uint64 `json:"malloc_nacks"`
	FreeNacks         uint64 `json:"free_nacks"`
	FallbackEntries   uint64 `json:"fallback_entries"`
	FallbackExits     uint64 `json:"fallback_exits"`
	DegradedCycles    uint64 `json:"degraded_cycles"`
	EmergencyMallocs  uint64 `json:"emergency_mallocs"`
	EmergencyFrees    uint64 `json:"emergency_frees"`
	DeferredFrees     uint64 `json:"deferred_frees"`
	AbandonedRequests uint64 `json:"abandoned_requests"`
	ReclaimedBlocks   uint64 `json:"reclaimed_blocks"`

	InjectedStalls         uint64 `json:"injected_stalls"`
	InjectedStallCycles    uint64 `json:"injected_stall_cycles"`
	InjectedDoorbellDrops  uint64 `json:"injected_doorbell_drops"`
	InjectedCorruptWords   uint64 `json:"injected_corrupt_words"`
	InjectedSlowdownCycles uint64 `json:"injected_slowdown_cycles"`
}

// OffloadLatency carries the per-op offload latency digests. An op's
// entry is present only when it recorded at least one span.
type OffloadLatency struct {
	Malloc *OpLatency `json:"malloc,omitempty"`
	Free   *OpLatency `json:"free,omitempty"`
	Batch  *OpLatency `json:"batch,omitempty"`
	// DroppedSpans counts raw spans beyond the retention cap (the
	// digests above still include them).
	DroppedSpans uint64 `json:"dropped_spans"`
}

// OpLatency is one op kind's three distributions. Per span, queue-wait
// + service = end-to-end exactly, so the Sums partition.
type OpLatency struct {
	QueueWait LatencyDigest `json:"queue_wait"`
	Service   LatencyDigest `json:"service"`
	EndToEnd  LatencyDigest `json:"end_to_end"`
}

// LatencyDigest summarizes one histogram in cycles. Percentiles are
// log2-linear bucket midpoints (≤6.25% relative error, exact for small
// values), clamped to the exact max.
type LatencyDigest struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

func ringMetrics(s ring.Stats) Ring {
	return Ring{
		Pushes:      s.Pushes,
		Pops:        s.Pops,
		PushBatches: s.PushBatches,
		PopBatches:  s.PopBatches,
		FullRetries: s.FullRetries,
		StallCycles: s.StallCycles,
		Occupancy:   append([]uint64(nil), s.Occupancy[:]...),
	}
}

func digest(h timeline.Hist) LatencyDigest {
	return LatencyDigest{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max,
	}
}

// opLatency converts one op's distributions; nil when the op never ran
// (the schema omits empty ops rather than emitting all-zero digests).
func opLatency(l timeline.OpLatency) *OpLatency {
	if l.Total.Count == 0 {
		return nil
	}
	return &OpLatency{
		QueueWait: digest(l.Queue),
		Service:   digest(l.Service),
		EndToEnd:  digest(l.Total),
	}
}

func latencyMetrics(rec *timeline.LatencyRecorder) *OffloadLatency {
	return &OffloadLatency{
		Malloc:       opLatency(rec.ByOp[timeline.OpMalloc]),
		Free:         opLatency(rec.ByOp[timeline.OpFree]),
		Batch:        opLatency(rec.ByOp[timeline.OpBatch]),
		DroppedSpans: rec.Dropped,
	}
}

// sloMetrics converts an armed tracker's ledgers (caller checks
// HasData).
func sloMetrics(tr *slo.Tracker) *SLO {
	opt := tr.Options()
	out := &SLO{
		WindowCycles:      tr.Width(),
		TargetRate:        opt.TargetRate,
		BudgetInteractive: opt.Budgets[slo.Interactive],
		BudgetBulk:        opt.Budgets[slo.Bulk],
		CompletedRequests: tr.Completed(),
		AbandonedRequests: tr.Abandoned(),
		Violations:        tr.Violations(),
		DroppedSpans:      tr.DroppedSpans(),
	}
	if w, ok := tr.WorstWindow(); ok {
		out.WorstWindow = &SLOWindow{StartCycle: w.Start, Requests: w.Requests, Violations: w.Violations}
		out.WorstBurnRate = tr.BurnRate(w)
	}
	for _, w := range tr.Windows() {
		out.Windows = append(out.Windows, SLOWindow{StartCycle: w.Start, Requests: w.Requests, Violations: w.Violations})
	}
	for _, id := range tr.TenantIDs() {
		ts := tr.Tenant(id)
		row := TenantSLO{
			Tenant:                id,
			Requests:              ts.Requests,
			Abandons:              ts.Abandons,
			Violations:            ts.Violations,
			P50:                   ts.Total.Total.Quantile(0.50),
			P99:                   ts.Total.Total.Quantile(0.99),
			P999:                  ts.Total.Total.Quantile(0.999),
			Max:                   ts.Total.Total.Max,
			MeanCycles:            ts.Total.Total.Mean(),
			WorstWindowViolations: ts.WorstWindowViolations,
			WorstWindowStart:      ts.WorstWindowStart,
		}
		for c := slo.Class(0); c < slo.NumClasses; c++ {
			cl := ts.ByClass[c]
			if cl.Total.Count == 0 {
				continue
			}
			if row.Classes == nil {
				row.Classes = map[string]SLOClass{}
			}
			row.Classes[c.String()] = SLOClass{
				Requests:     cl.Total.Count,
				Violations:   ts.ClassViolations[c],
				BudgetCycles: opt.Budgets[c],
				P99:          cl.Total.Quantile(0.99),
				Max:          cl.Total.Max,
			}
		}
		out.Tenants = append(out.Tenants, row)
	}
	return out
}

func timelineMetrics(s *timeline.Series) *Timeline {
	tl := &Timeline{IntervalCycles: s.Interval}
	for i := range s.Samples {
		cs := s.CoresAt(i, nil)
		smp := s.Samples[i]
		tl.Samples = append(tl.Samples, TimelineSample{
			Cycle:           smp.Cycle,
			Instructions:    cs.Counters.Instructions,
			LLCLoadMisses:   cs.Counters.LLCLoadMisses,
			LLCStoreMisses:  cs.Counters.LLCStoreMisses,
			DTLBLoadMisses:  cs.Counters.DTLBLoadMisses,
			DTLBStoreMisses: cs.Counters.DTLBStoreMisses,
			MallocRingDepth: smp.Rings.MallocDepth,
			FreeRingDepth:   smp.Rings.FreeDepth,
			ServerBusy:      smp.Server.BusyCycles,
			ServerEmptyPoll: smp.Server.EmptyPollCycles,
		})
	}
	return tl
}

func classMap(b sim.ClassBreakdown) map[string]ClassCounters {
	m := make(map[string]ClassCounters, region.NumClasses)
	for _, cls := range region.Classes() {
		c := b[cls]
		m[cls.String()] = ClassCounters{
			Loads:           c.Loads,
			Stores:          c.Stores,
			L1Misses:        c.L1Misses,
			LLCLoadMisses:   c.LLCLoadMisses,
			LLCStoreMisses:  c.LLCStoreMisses,
			DTLBLoadMisses:  c.DTLBLoadMisses,
			DTLBStoreMisses: c.DTLBStoreMisses,
		}
	}
	return m
}

// FromResult converts one harness result.
func FromResult(r harness.Result) Result {
	out := Result{
		Allocator:       r.Allocator,
		Workload:        r.Workload,
		Cycles:          r.Total.Cycles,
		Instructions:    r.Total.Instructions,
		WallCycles:      r.WallCycles,
		LLCLoadMisses:   r.Total.LLCLoadMisses,
		LLCStoreMisses:  r.Total.LLCStoreMisses,
		DTLBLoadMisses:  r.Total.DTLBLoadMisses,
		DTLBStoreMisses: r.Total.DTLBStoreMisses,
		Layout:          r.Layout,
		MetaRecordBytes: r.MetaRecordBytes,
		Classes:         classMap(r.Classes),
	}
	if r.Offload != nil {
		out.ServerClasses = classMap(r.ServerClasses)
		out.Offload = &Offload{
			MallocRing:            ringMetrics(r.Offload.MallocRing),
			FreeRing:              ringMetrics(r.Offload.FreeRing),
			ServerBusyCycles:      r.Offload.ServerBusyCycles,
			ServerIdleCycles:      r.Offload.ServerIdleCycles,
			ServerEmptyPolls:      r.Offload.ServerEmptyPolls,
			ServerEmptyPollCycles: r.Offload.ServerEmptyPollCycles,
			ServedOps:             r.Served,
		}
	}
	for _, s := range r.Servers {
		sm := ServerMetrics{
			Core:            s.Core,
			BusyCycles:      s.BusyCycles,
			IdleCycles:      s.IdleCycles,
			EmptyPolls:      s.EmptyPolls,
			EmptyPollCycles: s.EmptyPollCycles,
			ServedOps:       s.Served,
			Nacks:           s.Nacks,
			MallocRing:      ringMetrics(s.MallocRing),
			FreeRing:        ringMetrics(s.FreeRing),
		}
		for _, c := range s.Clients {
			sm.PerClient = append(sm.PerClient, ClientServiceMetrics{
				Thread:              c.ThreadID,
				ServedOps:           c.Served,
				MaxServiceGapCycles: c.MaxGapCycles,
			})
		}
		if inj := s.Injected; inj != (fault.Stats{}) {
			sm.Injected = &InjectedFaults{
				Stalls:         inj.Stalls,
				StallCycles:    inj.StallCycles,
				DoorbellDrops:  inj.DoorbellDrops,
				CorruptWords:   inj.CorruptWords,
				SlowdownCycles: inj.SlowdownCycles,
			}
		}
		out.Servers = append(out.Servers, sm)
	}
	if r.Timeline != nil {
		out.Timeline = timelineMetrics(r.Timeline)
	}
	if r.Latency != nil && r.Latency.HasSpans() {
		out.OffloadLatency = latencyMetrics(r.Latency)
	}
	if r.Resilience != nil {
		c, inj := r.Resilience.Client, r.Resilience.Injected
		out.Resilience = &Resilience{
			Timeouts:          c.Timeouts,
			Retries:           c.Retries,
			MallocNacks:       c.MallocNacks,
			FreeNacks:         c.FreeNacks,
			FallbackEntries:   c.FallbackEntries,
			FallbackExits:     c.FallbackExits,
			DegradedCycles:    c.DegradedCycles,
			EmergencyMallocs:  c.EmergencyMallocs,
			EmergencyFrees:    c.EmergencyFrees,
			DeferredFrees:     c.DeferredFrees,
			AbandonedRequests: c.AbandonedRequests,
			ReclaimedBlocks:   c.ReclaimedBlocks,

			InjectedStalls:         inj.Stalls,
			InjectedStallCycles:    inj.StallCycles,
			InjectedDoorbellDrops:  inj.DoorbellDrops,
			InjectedCorruptWords:   inj.CorruptWords,
			InjectedSlowdownCycles: inj.SlowdownCycles,
		}
	}
	if r.Failover != nil {
		fo := &Failover{
			Downs:            r.Failover.Totals.Downs,
			Rejoins:          r.Failover.Totals.Rejoins,
			ForwardedMallocs: r.Failover.Totals.ForwardedMallocs,
			DroppedEvents:    r.Failover.Totals.DroppedEvents,
		}
		for _, c := range r.Failover.Clients {
			fo.Clients = append(fo.Clients, FailoverClient{
				Thread:           c.Thread,
				HomeShard:        c.HomeShard,
				ActiveShard:      c.ActiveShard,
				Downs:            c.Downs,
				Rejoins:          c.Rejoins,
				ForwardedMallocs: c.ForwardedMallocs,
			})
		}
		for _, e := range r.Failover.Events {
			fo.Events = append(fo.Events, FailoverEvent{
				Cycle: e.Cycle, Thread: e.Thread, From: e.From, To: e.To,
			})
		}
		out.Failover = fo
	}
	if r.SLO.HasData() {
		out.SLO = sloMetrics(r.SLO)
	}
	if r.Warp.Windows > 0 {
		out.Warp = &Warp{
			Windows:      r.Warp.Windows,
			Rounds:       r.Warp.Rounds,
			CyclesWarped: r.Warp.CyclesWarped,
			LargestSkip:  r.Warp.LargestSkip,
		}
	}
	return out
}

// FromResults converts a result slice into one experiment.
func FromResults(id string, rs []harness.Result) Experiment {
	e := Experiment{ID: id}
	for _, r := range rs {
		e.Results = append(e.Results, FromResult(r))
	}
	return e
}

// NewFile wraps experiments in a versioned file object.
func NewFile(exps ...Experiment) File {
	return File{Schema: Schema, Experiments: exps}
}

// Encode renders the file as indented JSON.
func (f File) Encode() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// WriteFile writes the file to path, reporting close errors (the last
// chance to see ENOSPC).
func (f File) WriteFile(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := out.Write(append(data, '\n')); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Validate checks that data is a well-formed ngm-metrics/v1 document:
// right schema tag, at least one experiment, every result carrying an
// allocator, a workload, and a class map with all four classes.
func Validate(data []byte) error {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("metrics: not valid JSON: %w", err)
	}
	if f.Schema != Schema {
		return fmt.Errorf("metrics: schema %q, want %q", f.Schema, Schema)
	}
	if len(f.Experiments) == 0 {
		return fmt.Errorf("metrics: no experiments")
	}
	for _, e := range f.Experiments {
		if e.ID == "" {
			return fmt.Errorf("metrics: experiment with empty id")
		}
		if len(e.Results) == 0 {
			return fmt.Errorf("metrics: experiment %q has no results", e.ID)
		}
		for i, r := range e.Results {
			if r.Allocator == "" || r.Workload == "" {
				return fmt.Errorf("metrics: experiment %q result %d lacks allocator/workload", e.ID, i)
			}
			switch r.Layout {
			case "", "segregated", "aggregated", "compact":
			default:
				return fmt.Errorf("metrics: experiment %q result %d (%s/%s) has unknown layout %q",
					e.ID, i, r.Allocator, r.Workload, r.Layout)
			}
			for _, cls := range region.Classes() {
				if _, ok := r.Classes[cls.String()]; !ok {
					return fmt.Errorf("metrics: experiment %q result %d (%s/%s) missing class %q",
						e.ID, i, r.Allocator, r.Workload, cls)
				}
			}
			if err := validateTimeline(e.ID, i, r.Timeline); err != nil {
				return err
			}
			if err := validateLatency(e.ID, i, r.OffloadLatency); err != nil {
				return err
			}
			if err := validateResilience(e.ID, i, r.Resilience); err != nil {
				return err
			}
			if err := validateWarp(e.ID, i, r.Warp); err != nil {
				return err
			}
			if err := validateServers(e.ID, i, r.Servers, r.Offload); err != nil {
				return err
			}
			if err := validateFailover(e.ID, i, r.Failover, len(r.Servers)); err != nil {
				return err
			}
			if err := validateSLO(e.ID, i, r.SLO); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateServers checks the sharded-fleet accounting: each server's
// per-client service counts sum to its served total, and the per-server
// served totals sum to the fleet-wide offload count.
func validateServers(exp string, i int, srvs []ServerMetrics, off *Offload) error {
	if len(srvs) == 0 {
		return nil
	}
	var fleetServed uint64
	for j, s := range srvs {
		var clientSum uint64
		for _, c := range s.PerClient {
			clientSum += c.ServedOps
		}
		if clientSum != s.ServedOps {
			return fmt.Errorf("metrics: experiment %q result %d server %d per-client ops sum to %d but served_ops is %d",
				exp, i, j, clientSum, s.ServedOps)
		}
		fleetServed += s.ServedOps
	}
	if off != nil && fleetServed != off.ServedOps {
		return fmt.Errorf("metrics: experiment %q result %d servers sum to %d served ops but offload reports %d",
			exp, i, fleetServed, off.ServedOps)
	}
	return nil
}

// validateSLO checks the per-tenant SLO accounting: windows never count
// more violations than requests, window and tenant request counts each
// partition the completed total, per-tenant violations sum to the run
// total, and every tenant that completed a request carries monotone
// percentiles (p50 ≤ p99 ≤ p999 ≤ max).
func validateSLO(exp string, i int, s *SLO) error {
	if s == nil {
		return nil
	}
	if s.WindowCycles == 0 {
		return fmt.Errorf("metrics: experiment %q result %d slo has zero window width", exp, i)
	}
	var winRequests, winViolations uint64
	for j, w := range s.Windows {
		if w.Violations > w.Requests {
			return fmt.Errorf("metrics: experiment %q result %d slo window %d has %d violations for %d requests",
				exp, i, j, w.Violations, w.Requests)
		}
		if j > 0 && w.StartCycle <= s.Windows[j-1].StartCycle {
			return fmt.Errorf("metrics: experiment %q result %d slo window starts not increasing at %d", exp, i, j)
		}
		winRequests += w.Requests
		winViolations += w.Violations
	}
	if winRequests != s.CompletedRequests {
		return fmt.Errorf("metrics: experiment %q result %d slo windows hold %d requests but completed_requests is %d",
			exp, i, winRequests, s.CompletedRequests)
	}
	if winViolations != s.Violations {
		return fmt.Errorf("metrics: experiment %q result %d slo windows hold %d violations but total is %d",
			exp, i, winViolations, s.Violations)
	}
	if s.WorstWindow != nil && s.WorstWindow.Violations > s.WorstWindow.Requests {
		return fmt.Errorf("metrics: experiment %q result %d slo worst window has %d violations for %d requests",
			exp, i, s.WorstWindow.Violations, s.WorstWindow.Requests)
	}
	var tenRequests, tenAbandons, tenViolations uint64
	for j, t := range s.Tenants {
		if j > 0 && t.Tenant <= s.Tenants[j-1].Tenant {
			return fmt.Errorf("metrics: experiment %q result %d slo tenants not sorted at %d", exp, i, j)
		}
		if t.Violations > t.Requests {
			return fmt.Errorf("metrics: experiment %q result %d slo tenant %d has %d violations for %d requests",
				exp, i, t.Tenant, t.Violations, t.Requests)
		}
		if t.WorstWindowViolations > t.Violations {
			return fmt.Errorf("metrics: experiment %q result %d slo tenant %d worst window exceeds its violations",
				exp, i, t.Tenant)
		}
		if t.Requests > 0 {
			if t.P50 > t.P99 || t.P99 > t.P999 || t.P999 > t.Max {
				return fmt.Errorf("metrics: experiment %q result %d slo tenant %d percentiles not monotone",
					exp, i, t.Tenant)
			}
		}
		var clsRequests, clsViolations uint64
		for name, c := range t.Classes {
			if c.Violations > c.Requests {
				return fmt.Errorf("metrics: experiment %q result %d slo tenant %d class %s has %d violations for %d requests",
					exp, i, t.Tenant, name, c.Violations, c.Requests)
			}
			clsRequests += c.Requests
			clsViolations += c.Violations
		}
		if len(t.Classes) > 0 && clsRequests != t.Requests {
			return fmt.Errorf("metrics: experiment %q result %d slo tenant %d classes hold %d requests of %d",
				exp, i, t.Tenant, clsRequests, t.Requests)
		}
		if len(t.Classes) > 0 && clsViolations != t.Violations {
			return fmt.Errorf("metrics: experiment %q result %d slo tenant %d classes hold %d violations of %d",
				exp, i, t.Tenant, clsViolations, t.Violations)
		}
		tenRequests += t.Requests
		tenAbandons += t.Abandons
		tenViolations += t.Violations
	}
	if tenRequests != s.CompletedRequests {
		return fmt.Errorf("metrics: experiment %q result %d slo tenants hold %d requests but completed_requests is %d",
			exp, i, tenRequests, s.CompletedRequests)
	}
	if tenAbandons != s.AbandonedRequests {
		return fmt.Errorf("metrics: experiment %q result %d slo tenants hold %d abandons but abandoned_requests is %d",
			exp, i, tenAbandons, s.AbandonedRequests)
	}
	if tenViolations != s.Violations {
		return fmt.Errorf("metrics: experiment %q result %d slo tenants hold %d violations but total is %d",
			exp, i, tenViolations, s.Violations)
	}
	if s.WorstBurnRate < 0 {
		return fmt.Errorf("metrics: experiment %q result %d slo has negative burn rate", exp, i)
	}
	return nil
}

// validateFailover checks the fleet failover accounting: per client,
// every rejoin pairs with an earlier down and every down was a
// forwarded malloc (rejoins ≤ downs ≤ forwarded_mallocs); the totals
// sum the clients; shard indices stay inside the fleet; and the event
// log plus its overflow count exactly covers the transitions.
func validateFailover(exp string, i int, fo *Failover, servers int) error {
	if fo == nil {
		return nil
	}
	var downs, rejoins, forwarded uint64
	for _, c := range fo.Clients {
		if c.Rejoins > c.Downs {
			return fmt.Errorf("metrics: experiment %q result %d failover client %d has %d rejoins for %d downs",
				exp, i, c.Thread, c.Rejoins, c.Downs)
		}
		if c.Downs > c.ForwardedMallocs {
			return fmt.Errorf("metrics: experiment %q result %d failover client %d has %d downs but only %d forwarded mallocs",
				exp, i, c.Thread, c.Downs, c.ForwardedMallocs)
		}
		if servers > 0 && (c.HomeShard < 0 || c.HomeShard >= servers || c.ActiveShard < 0 || c.ActiveShard >= servers) {
			return fmt.Errorf("metrics: experiment %q result %d failover client %d homed %d/active %d outside %d shards",
				exp, i, c.Thread, c.HomeShard, c.ActiveShard, servers)
		}
		downs += c.Downs
		rejoins += c.Rejoins
		forwarded += c.ForwardedMallocs
	}
	if downs != fo.Downs || rejoins != fo.Rejoins || forwarded != fo.ForwardedMallocs {
		return fmt.Errorf("metrics: experiment %q result %d failover clients sum to %d/%d/%d but totals are %d/%d/%d",
			exp, i, downs, rejoins, forwarded, fo.Downs, fo.Rejoins, fo.ForwardedMallocs)
	}
	if uint64(len(fo.Events))+fo.DroppedEvents != fo.Downs+fo.Rejoins {
		return fmt.Errorf("metrics: experiment %q result %d failover logs %d events + %d dropped for %d transitions",
			exp, i, len(fo.Events), fo.DroppedEvents, fo.Downs+fo.Rejoins)
	}
	for j, e := range fo.Events {
		if e.From == e.To {
			return fmt.Errorf("metrics: experiment %q result %d failover event %d moves shard %d to itself",
				exp, i, j, e.From)
		}
		if j > 0 && e.Cycle < fo.Events[j-1].Cycle {
			return fmt.Errorf("metrics: experiment %q result %d failover event cycles not monotone at %d", exp, i, j)
		}
		if servers > 0 && (e.From < 0 || e.From >= servers || e.To < 0 || e.To >= servers) {
			return fmt.Errorf("metrics: experiment %q result %d failover event %d outside %d shards", exp, i, j, servers)
		}
	}
	return nil
}

func validateResilience(exp string, i int, rz *Resilience) error {
	if rz == nil {
		return nil
	}
	if rz.FallbackExits > rz.FallbackEntries {
		return fmt.Errorf("metrics: experiment %q result %d resilience has %d fallback exits but %d entries",
			exp, i, rz.FallbackExits, rz.FallbackEntries)
	}
	if rz.DegradedCycles > 0 && rz.FallbackEntries == 0 {
		return fmt.Errorf("metrics: experiment %q result %d resilience has degraded cycles without a fallback entry",
			exp, i)
	}
	if rz.ReclaimedBlocks > rz.AbandonedRequests {
		return fmt.Errorf("metrics: experiment %q result %d resilience reclaimed %d blocks of %d abandoned",
			exp, i, rz.ReclaimedBlocks, rz.AbandonedRequests)
	}
	if rz.Retries > rz.Timeouts+rz.MallocNacks+rz.FreeNacks {
		return fmt.Errorf("metrics: experiment %q result %d resilience has %d retries for %d timeouts+nacks",
			exp, i, rz.Retries, rz.Timeouts+rz.MallocNacks+rz.FreeNacks)
	}
	return nil
}

// validateWarp checks the time-warp ledger's internal arithmetic:
// every window skips at least one round, every skipped round advances
// a thread clock by at least one cycle (so rounds ≤ cycles), and no
// single skip exceeds the total skipped. The ledger is deliberately
// not compared against the PMU cycle totals: those cover the measured
// region of the worker cores, while warp also fires on the server core
// and outside the measured region (startup barriers, teardown drains).
func validateWarp(exp string, i int, w *Warp) error {
	if w == nil {
		return nil
	}
	if w.Windows == 0 {
		return fmt.Errorf("metrics: experiment %q result %d warp block present with zero windows", exp, i)
	}
	if w.Rounds < w.Windows {
		return fmt.Errorf("metrics: experiment %q result %d warp has %d windows but only %d rounds",
			exp, i, w.Windows, w.Rounds)
	}
	if w.CyclesWarped < w.Rounds {
		return fmt.Errorf("metrics: experiment %q result %d warp skipped %d rounds but only %d cycles",
			exp, i, w.Rounds, w.CyclesWarped)
	}
	if w.LargestSkip > w.CyclesWarped {
		return fmt.Errorf("metrics: experiment %q result %d warp largest skip %d exceeds total %d warped",
			exp, i, w.LargestSkip, w.CyclesWarped)
	}
	return nil
}

func validateTimeline(exp string, i int, tl *Timeline) error {
	if tl == nil {
		return nil
	}
	if tl.IntervalCycles == 0 {
		return fmt.Errorf("metrics: experiment %q result %d timeline has zero interval", exp, i)
	}
	if len(tl.Samples) == 0 {
		return fmt.Errorf("metrics: experiment %q result %d timeline has no samples", exp, i)
	}
	for j := 1; j < len(tl.Samples); j++ {
		if tl.Samples[j].Cycle <= tl.Samples[j-1].Cycle {
			return fmt.Errorf("metrics: experiment %q result %d timeline cycles not increasing at sample %d",
				exp, i, j)
		}
	}
	return nil
}

func validateLatency(exp string, i int, ol *OffloadLatency) error {
	if ol == nil {
		return nil
	}
	ops := []struct {
		name string
		op   *OpLatency
	}{{"malloc", ol.Malloc}, {"free", ol.Free}, {"batch", ol.Batch}}
	present := false
	for _, o := range ops {
		if o.op == nil {
			continue
		}
		present = true
		for _, d := range []struct {
			name string
			dig  LatencyDigest
		}{{"queue_wait", o.op.QueueWait}, {"service", o.op.Service}, {"end_to_end", o.op.EndToEnd}} {
			if d.dig.Count == 0 {
				return fmt.Errorf("metrics: experiment %q result %d offload_latency %s.%s has zero count",
					exp, i, o.name, d.name)
			}
			if d.dig.P50 > d.dig.P90 || d.dig.P90 > d.dig.P99 || d.dig.P99 > d.dig.Max {
				return fmt.Errorf("metrics: experiment %q result %d offload_latency %s.%s percentiles not monotone",
					exp, i, o.name, d.name)
			}
		}
	}
	if !present {
		return fmt.Errorf("metrics: experiment %q result %d offload_latency present but empty", exp, i)
	}
	return nil
}
