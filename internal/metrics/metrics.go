// Package metrics defines the stable machine-readable result schema the
// CLIs emit behind their -metrics flags. One file holds one or more
// experiments; each experiment holds one result per (allocator,
// workload) run, including the per-class miss attribution and — for
// offload runs — the ring/server transport telemetry.
//
// The schema is versioned: consumers check the top-level "schema" field
// ("ngm-metrics/v1") and reject anything else. Field names are
// snake_case and never reused with a different meaning; additions are
// backward-compatible (new optional fields only).
package metrics

import (
	"encoding/json"
	"fmt"
	"os"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
)

// Schema is the current schema identifier.
const Schema = "ngm-metrics/v1"

// File is the top-level object.
type File struct {
	Schema      string       `json:"schema"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment groups the results of one named table/figure run.
type Experiment struct {
	ID      string   `json:"id"`
	Results []Result `json:"results"`
}

// Result is one (allocator, workload) run.
type Result struct {
	Allocator    string `json:"allocator"`
	Workload     string `json:"workload"`
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	WallCycles   uint64 `json:"wall_cycles"`

	LLCLoadMisses   uint64 `json:"llc_load_misses"`
	LLCStoreMisses  uint64 `json:"llc_store_misses"`
	DTLBLoadMisses  uint64 `json:"dtlb_load_misses"`
	DTLBStoreMisses uint64 `json:"dtlb_store_misses"`

	// Classes maps address-class name (user, metadata, ring, global) to
	// that class's share of the worker cores' traffic and misses.
	Classes map[string]ClassCounters `json:"classes"`
	// ServerClasses is present for offload runs: the dedicated core's
	// attribution over the measured region.
	ServerClasses map[string]ClassCounters `json:"server_classes,omitempty"`
	// Offload is present for offload runs.
	Offload *Offload `json:"offload,omitempty"`
}

// ClassCounters mirrors sim.ClassCounters in snake_case.
type ClassCounters struct {
	Loads           uint64 `json:"loads"`
	Stores          uint64 `json:"stores"`
	L1Misses        uint64 `json:"l1_misses"`
	LLCLoadMisses   uint64 `json:"llc_load_misses"`
	LLCStoreMisses  uint64 `json:"llc_store_misses"`
	DTLBLoadMisses  uint64 `json:"dtlb_load_misses"`
	DTLBStoreMisses uint64 `json:"dtlb_store_misses"`
}

// Offload is the transport telemetry of an offload run.
type Offload struct {
	MallocRing       Ring   `json:"malloc_ring"`
	FreeRing         Ring   `json:"free_ring"`
	ServerBusyCycles uint64 `json:"server_busy_cycles"`
	ServerIdleCycles uint64 `json:"server_idle_cycles"`
	// ServerEmptyPolls / ServerEmptyPollCycles count poll passes that
	// found no ring work and the cycles those passes spent scanning
	// (additive in schema v1; absent means an older producer).
	ServerEmptyPolls      uint64 `json:"server_empty_polls"`
	ServerEmptyPollCycles uint64 `json:"server_empty_poll_cycles"`
	ServedOps             uint64 `json:"served_ops"`
}

// Ring is one direction's SPSC telemetry. Occupancy is the log2-bucket
// histogram of ring depth after each push (bucket b counts depths in
// [2^(b-1), 2^b); bucket 0 is unused). PushBatches/PopBatches count
// index publications, so pushes/push_batches is the average coalesced
// batch width (additive in schema v1).
type Ring struct {
	Pushes      uint64   `json:"pushes"`
	Pops        uint64   `json:"pops"`
	PushBatches uint64   `json:"push_batches"`
	PopBatches  uint64   `json:"pop_batches"`
	FullRetries uint64   `json:"full_retries"`
	StallCycles uint64   `json:"stall_cycles"`
	Occupancy   []uint64 `json:"occupancy_log2"`
}

func ringMetrics(s ring.Stats) Ring {
	return Ring{
		Pushes:      s.Pushes,
		Pops:        s.Pops,
		PushBatches: s.PushBatches,
		PopBatches:  s.PopBatches,
		FullRetries: s.FullRetries,
		StallCycles: s.StallCycles,
		Occupancy:   append([]uint64(nil), s.Occupancy[:]...),
	}
}

func classMap(b sim.ClassBreakdown) map[string]ClassCounters {
	m := make(map[string]ClassCounters, region.NumClasses)
	for _, cls := range region.Classes() {
		c := b[cls]
		m[cls.String()] = ClassCounters{
			Loads:           c.Loads,
			Stores:          c.Stores,
			L1Misses:        c.L1Misses,
			LLCLoadMisses:   c.LLCLoadMisses,
			LLCStoreMisses:  c.LLCStoreMisses,
			DTLBLoadMisses:  c.DTLBLoadMisses,
			DTLBStoreMisses: c.DTLBStoreMisses,
		}
	}
	return m
}

// FromResult converts one harness result.
func FromResult(r harness.Result) Result {
	out := Result{
		Allocator:       r.Allocator,
		Workload:        r.Workload,
		Cycles:          r.Total.Cycles,
		Instructions:    r.Total.Instructions,
		WallCycles:      r.WallCycles,
		LLCLoadMisses:   r.Total.LLCLoadMisses,
		LLCStoreMisses:  r.Total.LLCStoreMisses,
		DTLBLoadMisses:  r.Total.DTLBLoadMisses,
		DTLBStoreMisses: r.Total.DTLBStoreMisses,
		Classes:         classMap(r.Classes),
	}
	if r.Offload != nil {
		out.ServerClasses = classMap(r.ServerClasses)
		out.Offload = &Offload{
			MallocRing:            ringMetrics(r.Offload.MallocRing),
			FreeRing:              ringMetrics(r.Offload.FreeRing),
			ServerBusyCycles:      r.Offload.ServerBusyCycles,
			ServerIdleCycles:      r.Offload.ServerIdleCycles,
			ServerEmptyPolls:      r.Offload.ServerEmptyPolls,
			ServerEmptyPollCycles: r.Offload.ServerEmptyPollCycles,
			ServedOps:             r.Served,
		}
	}
	return out
}

// FromResults converts a result slice into one experiment.
func FromResults(id string, rs []harness.Result) Experiment {
	e := Experiment{ID: id}
	for _, r := range rs {
		e.Results = append(e.Results, FromResult(r))
	}
	return e
}

// NewFile wraps experiments in a versioned file object.
func NewFile(exps ...Experiment) File {
	return File{Schema: Schema, Experiments: exps}
}

// Encode renders the file as indented JSON.
func (f File) Encode() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// WriteFile writes the file to path, reporting close errors (the last
// chance to see ENOSPC).
func (f File) WriteFile(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := out.Write(append(data, '\n')); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Validate checks that data is a well-formed ngm-metrics/v1 document:
// right schema tag, at least one experiment, every result carrying an
// allocator, a workload, and a class map with all four classes.
func Validate(data []byte) error {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("metrics: not valid JSON: %w", err)
	}
	if f.Schema != Schema {
		return fmt.Errorf("metrics: schema %q, want %q", f.Schema, Schema)
	}
	if len(f.Experiments) == 0 {
		return fmt.Errorf("metrics: no experiments")
	}
	for _, e := range f.Experiments {
		if e.ID == "" {
			return fmt.Errorf("metrics: experiment with empty id")
		}
		if len(e.Results) == 0 {
			return fmt.Errorf("metrics: experiment %q has no results", e.ID)
		}
		for i, r := range e.Results {
			if r.Allocator == "" || r.Workload == "" {
				return fmt.Errorf("metrics: experiment %q result %d lacks allocator/workload", e.ID, i)
			}
			for _, cls := range region.Classes() {
				if _, ok := r.Classes[cls.String()]; !ok {
					return fmt.Errorf("metrics: experiment %q result %d (%s/%s) missing class %q",
						e.ID, i, r.Allocator, r.Workload, cls)
				}
			}
		}
	}
	return nil
}
