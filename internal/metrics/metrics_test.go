package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/workload"
)

func sampleResult(t *testing.T) harness.Result {
	t.Helper()
	return harness.Run(harness.Options{
		Allocator: "nextgen",
		Workload:  workload.DefaultXalanc(1500),
	})
}

func TestRoundTripAndValidate(t *testing.T) {
	res := sampleResult(t)
	f := NewFile(FromResults("table1", []harness.Result{res}))
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("emitted file fails own validation: %v", err)
	}

	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q, want %q", back.Schema, Schema)
	}
	r := back.Experiments[0].Results[0]
	if r.Allocator != "nextgen" || r.Workload == "" {
		t.Errorf("result identity lost: %+v", r)
	}
	if r.Cycles != res.Total.Cycles || r.LLCLoadMisses != res.Total.LLCLoadMisses {
		t.Error("counters did not round-trip")
	}
	for _, cls := range region.Classes() {
		if _, ok := r.Classes[cls.String()]; !ok {
			t.Errorf("class %q missing from JSON", cls)
		}
	}
	if r.Offload == nil {
		t.Fatal("offload telemetry missing for nextgen run")
	}
	if r.Offload.MallocRing.Pushes == 0 || r.Offload.ServedOps == 0 {
		t.Errorf("offload telemetry empty: %+v", r.Offload)
	}
	if len(r.Offload.MallocRing.Occupancy) == 0 {
		t.Error("occupancy histogram missing")
	}
}

func TestSchemaFieldNamesAreStable(t *testing.T) {
	// The schema is a contract: spot-check the snake_case keys consumers
	// depend on. Renaming any of these is a breaking change that needs a
	// version bump to ngm-metrics/v2.
	res := sampleResult(t)
	data, err := NewFile(FromResults("x", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, key := range []string{
		`"schema": "ngm-metrics/v1"`, `"experiments"`, `"results"`,
		`"allocator"`, `"workload"`, `"wall_cycles"`,
		`"llc_load_misses"`, `"dtlb_store_misses"`,
		`"classes"`, `"user"`, `"metadata"`, `"ring"`, `"global"`,
		`"server_classes"`, `"offload"`, `"malloc_ring"`, `"free_ring"`,
		`"full_retries"`, `"stall_cycles"`, `"occupancy_log2"`,
		`"server_busy_cycles"`, `"server_idle_cycles"`, `"served_ops"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from output", key)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":      `{"schema":`,
		"wrong schema":  `{"schema":"ngm-metrics/v0","experiments":[{"id":"a","results":[]}]}`,
		"no exps":       `{"schema":"ngm-metrics/v1","experiments":[]}`,
		"empty id":      `{"schema":"ngm-metrics/v1","experiments":[{"id":"","results":[]}]}`,
		"no results":    `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[]}]}`,
		"no alloc":      `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"workload":"w"}]}]}`,
		"missing class": `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"allocator":"x","workload":"w","classes":{"user":{}}}]}]}`,
	} {
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("Validate accepted %s document", name)
		}
	}
}

func TestWriteFile(t *testing.T) {
	res := sampleResult(t)
	path := filepath.Join(t.TempDir(), "out.json")
	if err := NewFile(FromResults("t", []harness.Result{res})).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Written file must validate when read back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatal(err)
	}
}

func TestResilienceMetricsRoundTrip(t *testing.T) {
	res := harness.Run(harness.Options{
		Allocator: "nextgen",
		Workload:  workload.DefaultXalanc(1500),
		FaultPlan: &fault.Plan{Seed: 4, StallCycles: 80000, StallStart: 30000},
		Resilience: &core.Resilience{
			Enabled: true, TimeoutCycles: 4000, MaxRetries: 1,
			BackoffCycles: 512, FallbackAfter: 1, ProbeCycles: 10000,
		},
	})
	if res.Resilience == nil {
		t.Fatal("fault run produced no resilience telemetry")
	}
	data, err := NewFile(FromResults("fault-sweep", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("fault-run metrics fail validation: %v", err)
	}
	s := string(data)
	for _, key := range []string{
		`"resilience"`, `"timeouts"`, `"retries"`, `"malloc_nacks"`, `"free_nacks"`,
		`"fallback_entries"`, `"fallback_exits"`, `"degraded_cycles"`,
		`"emergency_mallocs"`, `"emergency_frees"`, `"deferred_frees"`,
		`"abandoned_requests"`, `"reclaimed_blocks"`,
		`"injected_stalls"`, `"injected_stall_cycles"`, `"injected_doorbell_drops"`,
		`"injected_corrupt_words"`, `"injected_slowdown_cycles"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from output", key)
		}
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	rz := back.Experiments[0].Results[0].Resilience
	if rz == nil {
		t.Fatal("resilience block lost in round trip")
	}
	if rz.InjectedStalls != res.Resilience.Injected.Stalls ||
		rz.FallbackEntries != res.Resilience.Client.FallbackEntries {
		t.Errorf("resilience counters did not round-trip: %+v vs %+v", rz, res.Resilience)
	}
	// A clean run must not grow the block.
	clean := sampleResult(t)
	cleanData, err := NewFile(FromResults("clean", []harness.Result{clean})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cleanData), `"resilience"`) {
		t.Error("clean run emitted a resilience block")
	}
}

func TestValidateRejectsBadResilience(t *testing.T) {
	base := `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"allocator":"x","workload":"w",` +
		`"classes":{"user":{},"metadata":{},"ring":{},"global":{}},"resilience":%s}]}]}`
	for name, rz := range map[string]string{
		"exits > entries":          `{"fallback_entries":1,"fallback_exits":2}`,
		"degraded without entry":   `{"degraded_cycles":5}`,
		"reclaimed > abandoned":    `{"abandoned_requests":1,"reclaimed_blocks":2}`,
		"retries without timeouts": `{"retries":3}`,
	} {
		doc := fmt.Sprintf(base, rz)
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("Validate accepted resilience document with %s", name)
		}
	}
}

func TestSLOMetricsRoundTrip(t *testing.T) {
	o := slo.DefaultOptions()
	res := harness.Run(harness.Options{
		Allocator: "nextgen",
		Workload: &workload.Service{NWorkers: 2, RequestsPerWorker: 80, Tenants: 5,
			ChurnEvery: 4, MeanGapCycles: 3000, BurstLen: 4, Seed: 7},
		SLO: &o,
	})
	if res.SLO == nil || !res.SLO.HasData() {
		t.Fatal("armed run recorded no SLO data")
	}
	data, err := NewFile(FromResults("slo-sweep", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("slo-run metrics fail validation: %v", err)
	}
	s := string(data)
	for _, key := range []string{
		`"slo"`, `"window_cycles"`, `"target_rate"`,
		`"budget_interactive_cycles"`, `"budget_bulk_cycles"`,
		`"completed_requests"`, `"worst_window"`, `"worst_burn_rate"`,
		`"windows"`, `"tenants"`, `"worst_window_violations"`,
		`"dropped_spans"`, `"p999"`, `"mean_cycles"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from output", key)
		}
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	sl := back.Experiments[0].Results[0].SLO
	if sl == nil {
		t.Fatal("slo block lost in round trip")
	}
	if sl.CompletedRequests != res.SLO.Completed() || sl.Violations != res.SLO.Violations() {
		t.Errorf("slo totals did not round-trip: %d/%d vs %d/%d",
			sl.CompletedRequests, sl.Violations, res.SLO.Completed(), res.SLO.Violations())
	}
	if len(sl.Tenants) != len(res.SLO.TenantIDs()) {
		t.Errorf("tenant count %d, want %d", len(sl.Tenants), len(res.SLO.TenantIDs()))
	}
	// An unarmed run must not grow the block.
	clean := sampleResult(t)
	cleanData, err := NewFile(FromResults("clean", []harness.Result{clean})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cleanData), `"slo"`) {
		t.Error("unarmed run emitted an slo block")
	}
}

func TestValidateRejectsBadSLO(t *testing.T) {
	base := `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"allocator":"x","workload":"w",` +
		`"classes":{"user":{},"metadata":{},"ring":{},"global":{}},"slo":%s}]}]}`
	for name, sl := range map[string]string{
		"zero window width": `{"window_cycles":0}`,
		"window violations > requests": `{"window_cycles":100,` +
			`"windows":[{"start_cycle":0,"requests":1,"violations":2}],"completed_requests":1,"violations":2}`,
		"window starts not increasing": `{"window_cycles":100,"completed_requests":2,` +
			`"windows":[{"start_cycle":100,"requests":1},{"start_cycle":100,"requests":1}],` +
			`"tenants":[{"tenant":0,"requests":2,"p50":1,"p99":1,"p999":1,"max":1}]}`,
		"windows do not partition completed": `{"window_cycles":100,"completed_requests":5,` +
			`"windows":[{"start_cycle":0,"requests":1}]}`,
		"tenants do not partition completed": `{"window_cycles":100,"completed_requests":2,` +
			`"windows":[{"start_cycle":0,"requests":2}],` +
			`"tenants":[{"tenant":0,"requests":1,"p50":1,"p99":1,"p999":1,"max":1}]}`,
		"tenants unsorted": `{"window_cycles":100,"completed_requests":2,` +
			`"windows":[{"start_cycle":0,"requests":2}],` +
			`"tenants":[{"tenant":1,"requests":1,"p50":1,"p99":1,"p999":1,"max":1},` +
			`{"tenant":0,"requests":1,"p50":1,"p99":1,"p999":1,"max":1}]}`,
		"tenant percentiles not monotone": `{"window_cycles":100,"completed_requests":1,` +
			`"windows":[{"start_cycle":0,"requests":1}],` +
			`"tenants":[{"tenant":0,"requests":1,"p50":9,"p99":1,"p999":1,"max":1}]}`,
		"tenant worst window exceeds violations": `{"window_cycles":100,"completed_requests":1,"violations":1,` +
			`"windows":[{"start_cycle":0,"requests":1,"violations":1}],` +
			`"tenants":[{"tenant":0,"requests":1,"violations":1,"worst_window_violations":2,"p50":1,"p99":1,"p999":1,"max":1}]}`,
		"class sums mismatch": `{"window_cycles":100,"completed_requests":2,` +
			`"windows":[{"start_cycle":0,"requests":2}],` +
			`"tenants":[{"tenant":0,"requests":2,"p50":1,"p99":1,"p999":1,"max":1,` +
			`"classes":{"interactive":{"requests":1}}}]}`,
		"negative burn rate": `{"window_cycles":100,"worst_burn_rate":-1}`,
	} {
		doc := fmt.Sprintf(base, sl)
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("Validate accepted slo document with %s", name)
		}
	}
	// Baseline sanity: an empty-but-armed block is valid.
	if err := Validate([]byte(fmt.Sprintf(base, `{"window_cycles":100}`))); err != nil {
		t.Errorf("minimal valid slo block rejected: %v", err)
	}
}
