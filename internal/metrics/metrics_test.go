package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nextgenmalloc/internal/harness"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/workload"
)

func sampleResult(t *testing.T) harness.Result {
	t.Helper()
	return harness.Run(harness.Options{
		Allocator: "nextgen",
		Workload:  workload.DefaultXalanc(1500),
	})
}

func TestRoundTripAndValidate(t *testing.T) {
	res := sampleResult(t)
	f := NewFile(FromResults("table1", []harness.Result{res}))
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("emitted file fails own validation: %v", err)
	}

	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q, want %q", back.Schema, Schema)
	}
	r := back.Experiments[0].Results[0]
	if r.Allocator != "nextgen" || r.Workload == "" {
		t.Errorf("result identity lost: %+v", r)
	}
	if r.Cycles != res.Total.Cycles || r.LLCLoadMisses != res.Total.LLCLoadMisses {
		t.Error("counters did not round-trip")
	}
	for _, cls := range region.Classes() {
		if _, ok := r.Classes[cls.String()]; !ok {
			t.Errorf("class %q missing from JSON", cls)
		}
	}
	if r.Offload == nil {
		t.Fatal("offload telemetry missing for nextgen run")
	}
	if r.Offload.MallocRing.Pushes == 0 || r.Offload.ServedOps == 0 {
		t.Errorf("offload telemetry empty: %+v", r.Offload)
	}
	if len(r.Offload.MallocRing.Occupancy) == 0 {
		t.Error("occupancy histogram missing")
	}
}

func TestSchemaFieldNamesAreStable(t *testing.T) {
	// The schema is a contract: spot-check the snake_case keys consumers
	// depend on. Renaming any of these is a breaking change that needs a
	// version bump to ngm-metrics/v2.
	res := sampleResult(t)
	data, err := NewFile(FromResults("x", []harness.Result{res})).Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, key := range []string{
		`"schema": "ngm-metrics/v1"`, `"experiments"`, `"results"`,
		`"allocator"`, `"workload"`, `"wall_cycles"`,
		`"llc_load_misses"`, `"dtlb_store_misses"`,
		`"classes"`, `"user"`, `"metadata"`, `"ring"`, `"global"`,
		`"server_classes"`, `"offload"`, `"malloc_ring"`, `"free_ring"`,
		`"full_retries"`, `"stall_cycles"`, `"occupancy_log2"`,
		`"server_busy_cycles"`, `"server_idle_cycles"`, `"served_ops"`,
	} {
		if !strings.Contains(s, key) {
			t.Errorf("schema key %s missing from output", key)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":      `{"schema":`,
		"wrong schema":  `{"schema":"ngm-metrics/v0","experiments":[{"id":"a","results":[]}]}`,
		"no exps":       `{"schema":"ngm-metrics/v1","experiments":[]}`,
		"empty id":      `{"schema":"ngm-metrics/v1","experiments":[{"id":"","results":[]}]}`,
		"no results":    `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[]}]}`,
		"no alloc":      `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"workload":"w"}]}]}`,
		"missing class": `{"schema":"ngm-metrics/v1","experiments":[{"id":"a","results":[{"allocator":"x","workload":"w","classes":{"user":{}}}]}]}`,
	} {
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("Validate accepted %s document", name)
		}
	}
}

func TestWriteFile(t *testing.T) {
	res := sampleResult(t)
	path := filepath.Join(t.TempDir(), "out.json")
	if err := NewFile(FromResults("t", []harness.Result{res})).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Written file must validate when read back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatal(err)
	}
}
