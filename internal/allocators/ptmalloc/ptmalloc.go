// Package ptmalloc models PTMalloc2, the default glibc allocator, which
// the paper uses as its baseline (Figure 1, Table 1).
//
// The structural features that matter to the paper are all present:
//
//   - Boundary-tag chunks: every block carries an inline 16-byte header
//     and free blocks carry footers and list pointers — the *aggregated*
//     metadata layout of Figure 2, interleaved with user data.
//   - Fast bins (LIFO single-linked), small bins (FIFO double-linked),
//     an unsorted bin scanned first-fit, and a large list.
//   - Immediate coalescing with both neighbours via the boundary tags,
//     which touches adjacent chunks' headers (pollution).
//   - A per-arena spin lock taken around every non-mmap malloc and free,
//     with lazily created per-thread arenas on the glibc model.
//   - Direct mmap for large requests.
//
// All metadata lives in simulated memory and every header/list/footer
// access is a simulated load or store.
package ptmalloc

import (
	"sort"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/simsync"
)

// Miss-attribution marking (host-side, no simulated cost): arena state
// pages, inline chunk headers, fences, and the full extent of free
// chunks (fd/bk links and footers live in them) are metadata; the
// payload of a live chunk is user data. The 16-byte granule containing
// the next chunk's prev_size word stays metadata even though glibc lets
// a live chunk's last 8 usable bytes overlap it — that shared granule
// is precisely the boundary-tag interleaving the paper's Figure 2
// blames for pollution.

const (
	headerSize = 16 // prev_size + size words
	minChunk   = 32
	// prevInuse / isMmapped / isFence are the size-word flag bits.
	prevInuse = 1
	isMmapped = 2
	isFence   = 4
	flagMask  = uint64(15)

	fastbinMax  = 176  // largest chunk served from fast bins
	smallbinMax = 1008 // largest chunk with an exact small bin
	numFastbins = 10
	numBins     = 64 // 0 unsorted, 1..62 small, 63 large

	mmapThreshold     = 128 << 10
	heapPages         = 256 // pages per arena growth step
	unsortedScanLimit = 128
)

// Arena state offsets within the per-arena state page.
const (
	offLock     = 0
	offTop      = 8
	offHeapEnd  = 16
	offHaveFast = 24
	offFastbins = 32                   // 10 * 8 bytes
	offBins     = 128                  // sentinel trick needs bins here
	stateBytes  = offBins + numBins*16 // 1152
)

type segment struct {
	base, end uint64
	ar        *arena
}

type arena struct {
	state uint64 // sim address of the state page
	lock  simsync.SpinLock
	main  bool
}

// Allocator is the PTMalloc2 model.
type Allocator struct {
	stats    alloc.Stats
	arenas   []*arena
	byThread map[int]*arena
	segs     []segment // sorted by base, for free()'s arena lookup
}

// New builds the allocator. t performs the initial arena setup.
func New(t *sim.Thread) *Allocator {
	a := &Allocator{byThread: make(map[int]*arena)}
	a.newArena(t, true)
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "ptmalloc2" }

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }

// binSentinel returns the pseudo-chunk address of bin i such that the
// bin's fd/bk words land inside the state page (glibc's bin_at trick).
func (ar *arena) binSentinel(i int) uint64 {
	return ar.state + offBins + uint64(i)*16 - headerSize
}

func (a *Allocator) newArena(t *sim.Thread, main bool) *arena {
	state := t.Mmap(1)
	t.MarkRegion(state, 1<<12, region.Meta)
	ar := &arena{state: state, lock: simsync.NewSpinLock(state + offLock), main: main}
	// Empty bins: each sentinel points at itself.
	for i := 0; i < numBins; i++ {
		b := ar.binSentinel(i)
		t.Store64(b+16, b)
		t.Store64(b+24, b)
	}
	// Initial heap segment.
	var base uint64
	if main {
		base = t.Sbrk(heapPages)
	} else {
		base = t.Mmap(heapPages)
	}
	a.stats.HeapBytes += heapPages << 12
	end := base + heapPages<<12
	t.Store64(base+8, (end-base)|prevInuse) // top chunk header
	t.MarkRegion(base, headerSize, region.Meta)
	t.Store64(state+offTop, base)
	t.Store64(state+offHeapEnd, end)
	a.arenas = append(a.arenas, ar)
	a.addSegment(base, end, ar)
	return ar
}

func (a *Allocator) addSegment(base, end uint64, ar *arena) {
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].base > base })
	a.segs = append(a.segs, segment{})
	copy(a.segs[i+1:], a.segs[i:])
	a.segs[i] = segment{base: base, end: end, ar: ar}
}

// arenaFor locates the arena owning addr (free() path). The lookup is a
// handful of compares in a real allocator; charge similarly.
func (a *Allocator) arenaFor(t *sim.Thread, addr uint64) *arena {
	t.Exec(4)
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].end > addr })
	if i < len(a.segs) && a.segs[i].base <= addr {
		return a.segs[i].ar
	}
	panic("ptmalloc: free of address outside any arena")
}

// arenaOf picks (or creates) the calling thread's arena, glibc-style:
// the first thread uses the main arena, later threads get their own.
func (a *Allocator) arenaOf(t *sim.Thread) *arena {
	if ar, ok := a.byThread[t.ID()]; ok {
		return ar
	}
	var ar *arena
	if len(a.byThread) == 0 {
		ar = a.arenas[0]
	} else {
		ar = a.newArena(t, false)
	}
	a.byThread[t.ID()] = ar
	return ar
}

// request2size converts a request to a chunk size (glibc overlap trick:
// the next chunk's prev_size word is usable while this chunk is live).
func request2size(size uint64) uint64 {
	csz := (size + 8 + 15) &^ 15
	if csz < minChunk {
		csz = minChunk
	}
	return csz
}

func fastbinIndex(csz uint64) int  { return int((csz - minChunk) / 16) }
func smallbinIndex(csz uint64) int { return 1 + int((csz-minChunk)/16) }

// --- doubly-linked bin list operations (all in simulated memory) ------

func listInsertHead(t *sim.Thread, sentinel, c uint64) {
	fd := t.Load64(sentinel + 16)
	t.Store64(c+16, fd)
	t.Store64(c+24, sentinel)
	t.Store64(sentinel+16, c)
	t.Store64(fd+24, c)
}

func listRemove(t *sim.Thread, c uint64) {
	fd := t.Load64(c + 16)
	bk := t.Load64(c + 24)
	t.Store64(bk+16, fd)
	t.Store64(fd+24, bk)
}

// binFor returns the sentinel a free chunk of size csz belongs in.
func (ar *arena) binFor(csz uint64) uint64 {
	if csz <= smallbinMax {
		return ar.binSentinel(smallbinIndex(csz))
	}
	return ar.binSentinel(numBins - 1)
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.stats.MallocCalls++
	t.Exec(4) // entry, request2size arithmetic

	if size >= mmapThreshold {
		return a.mmapChunk(t, size)
	}
	csz := request2size(size)
	ar := a.arenaOf(t)
	ar.lock.Lock(t)
	p := a.mallocLocked(t, ar, csz)
	ar.lock.Unlock(t)
	a.stats.LiveBytes += csz - 8
	t.MarkRegion(p, headerSize, region.Meta)
	t.MarkRegion(p+headerSize, int(csz-headerSize), region.User)
	return p + headerSize
}

func (a *Allocator) mallocLocked(t *sim.Thread, ar *arena, csz uint64) uint64 {
	// Large requests consolidate the fast bins first (glibc's
	// malloc_consolidate call in _int_malloc for !in_smallbin_range) —
	// periodically demolishing the fast bins' LIFO reuse locality.
	if csz > smallbinMax && t.Load64(ar.state+offHaveFast) != 0 {
		a.consolidate(t, ar)
	}
	// 1. Fast bins: exact-size LIFO, no coalescing.
	if csz <= fastbinMax {
		fb := ar.state + offFastbins + uint64(fastbinIndex(csz))*8
		if head := t.Load64(fb); head != 0 {
			t.Store64(fb, t.Load64(head+16))
			return head
		}
	}
	// 2. Small bins: exact fit, FIFO.
	if csz <= smallbinMax {
		b := ar.binSentinel(smallbinIndex(csz))
		victim := t.Load64(b + 24) // take from tail
		if victim != b {
			listRemove(t, victim)
			a.setInuse(t, victim, csz)
			return victim
		}
	}
	for attempt := 0; ; attempt++ {
		// 3. Unsorted bin: first fit with splitting; losers get binned.
		if p := a.scanUnsorted(t, ar, csz); p != 0 {
			return p
		}
		// 4. Large list: best fit.
		if csz > smallbinMax {
			if p := a.scanLarge(t, ar, csz); p != 0 {
				return p
			}
		}
		// 4b. Any small bin above: take the next non-empty bin and split.
		if csz <= smallbinMax {
			if p := a.scanLargerSmallBins(t, ar, csz); p != 0 {
				return p
			}
			if p := a.scanLarge(t, ar, csz); p != 0 {
				return p
			}
		}
		// 5. Split the top chunk.
		if p := a.splitTop(t, ar, csz); p != 0 {
			return p
		}
		// 6. Consolidate fast bins and retry once.
		if attempt == 0 && t.Load64(ar.state+offHaveFast) != 0 {
			a.consolidate(t, ar)
			continue
		}
		// 7. Grow the heap.
		a.grow(t, ar, csz)
	}
}

// setInuse marks the chunk live by setting the next chunk's prev-inuse
// bit (a store into the neighbour's header — boundary-tag pollution).
func (a *Allocator) setInuse(t *sim.Thread, c, csz uint64) {
	next := c + csz
	t.Store64(next+8, t.Load64(next+8)|prevInuse)
}

func (a *Allocator) scanUnsorted(t *sim.Thread, ar *arena, csz uint64) uint64 {
	b := ar.binSentinel(0)
	for iter := 0; iter < unsortedScanLimit; iter++ {
		victim := t.Load64(b + 24)
		if victim == b {
			return 0
		}
		t.Exec(3)
		vsz := t.Load64(victim+8) &^ flagMask
		if vsz >= csz {
			listRemove(t, victim)
			return a.takeFit(t, ar, victim, vsz, csz)
		}
		// Too small: file it in its proper bin and keep scanning.
		listRemove(t, victim)
		listInsertHead(t, ar.binFor(vsz), victim)
	}
	return 0
}

// takeFit allocates csz from a free chunk of size vsz, splitting off the
// remainder into the unsorted bin.
func (a *Allocator) takeFit(t *sim.Thread, ar *arena, victim, vsz, csz uint64) uint64 {
	rem := vsz - csz
	flags := t.Load64(victim+8) & prevInuse
	if rem < minChunk {
		a.setInuse(t, victim, vsz)
		return victim
	}
	t.Store64(victim+8, csz|flags)
	r := victim + csz
	t.Store64(r+8, rem|prevInuse)
	t.Store64(r+rem, rem) // next chunk's prev_size word
	listInsertHead(t, ar.binSentinel(0), r)
	return victim
}

func (a *Allocator) scanLarge(t *sim.Thread, ar *arena, csz uint64) uint64 {
	b := ar.binSentinel(numBins - 1)
	best, bestSz := uint64(0), ^uint64(0)
	for c := t.Load64(b + 16); c != b; c = t.Load64(c + 16) {
		t.Exec(2)
		cs := t.Load64(c+8) &^ flagMask
		if cs >= csz && cs < bestSz {
			best, bestSz = c, cs
			if cs == csz {
				break
			}
		}
	}
	if best == 0 {
		return 0
	}
	listRemove(t, best)
	return a.takeFit(t, ar, best, bestSz, csz)
}

// scanLargerSmallBins walks upward from the requested bin looking for
// any non-empty small bin (glibc's bin-scan via the binmap; the map is
// modelled as a couple of ALU ops per bin probe).
func (a *Allocator) scanLargerSmallBins(t *sim.Thread, ar *arena, csz uint64) uint64 {
	for i := smallbinIndex(csz) + 1; i <= numBins-2; i++ {
		t.Exec(1)
		b := ar.binSentinel(i)
		victim := t.Load64(b + 24)
		if victim == b {
			continue
		}
		vsz := t.Load64(victim+8) &^ flagMask
		listRemove(t, victim)
		return a.takeFit(t, ar, victim, vsz, csz)
	}
	return 0
}

func (a *Allocator) splitTop(t *sim.Thread, ar *arena, csz uint64) uint64 {
	top := t.Load64(ar.state + offTop)
	topSz := t.Load64(top+8) &^ flagMask
	if topSz < csz+minChunk {
		return 0
	}
	flags := t.Load64(top+8) & prevInuse
	t.Store64(top+8, csz|flags)
	newTop := top + csz
	t.Store64(newTop+8, (topSz-csz)|prevInuse)
	t.MarkRegion(newTop, headerSize, region.Meta)
	t.Store64(ar.state+offTop, newTop)
	return top
}

// grow extends the arena's heap, extending top in place when the new
// region is contiguous and fencing off the old top otherwise.
func (a *Allocator) grow(t *sim.Thread, ar *arena, csz uint64) {
	pages := heapPages
	if need := int((csz + minChunk + 4095) >> 12); need > pages {
		pages = need
	}
	var base uint64
	if ar.main {
		base = t.Sbrk(pages)
	} else {
		base = t.Mmap(pages)
	}
	a.stats.HeapBytes += uint64(pages) << 12
	end := base + uint64(pages)<<12
	heapEnd := t.Load64(ar.state + offHeapEnd)
	top := t.Load64(ar.state + offTop)
	if base == heapEnd {
		// Contiguous: extend top.
		topSz := t.Load64(top+8) &^ flagMask
		flags := t.Load64(top+8) & prevInuse
		t.Store64(top+8, (topSz+uint64(pages)<<12)|flags)
		t.Store64(ar.state+offHeapEnd, end)
		// The segment containing the old top grew.
		for i := range a.segs {
			if a.segs[i].end == heapEnd && a.segs[i].ar == ar {
				a.segs[i].end = end
				break
			}
		}
		return
	}
	// Non-contiguous: fence the old top and start a new segment.
	a.abandonTop(t, ar, top)
	t.Store64(base+8, (end-base)|prevInuse)
	t.MarkRegion(base, headerSize, region.Meta)
	t.Store64(ar.state+offTop, base)
	t.Store64(ar.state+offHeapEnd, end)
	a.addSegment(base, end, ar)
}

// abandonTop converts the old top chunk into a free chunk plus a fence
// so boundary-tag scans never run off the segment.
func (a *Allocator) abandonTop(t *sim.Thread, ar *arena, top uint64) {
	topSz := t.Load64(top+8) &^ flagMask
	flags := t.Load64(top+8) & prevInuse
	// The whole abandoned tail — free chunk plus fence — is allocator
	// bookkeeping from here on.
	t.MarkRegion(top, int(topSz), region.Meta)
	if topSz < minChunk+32 {
		// Too small to be useful: the whole tail becomes fence (leaked).
		t.Store64(top+8, topSz|flags|isFence|prevInuse)
		return
	}
	freeSz := topSz - 32
	t.Store64(top+8, freeSz|flags)
	// The free chunk's footer is the fence's prev_size word, stored below.
	f := top + freeSz
	t.Store64(f, freeSz)       // fence prev_size
	t.Store64(f+8, 32|isFence) // fence marked, prev free
	listInsertHead(t, ar.binSentinel(0), top)
}

// consolidate drains every fast bin, coalescing each chunk with its
// neighbours and parking the results in the unsorted bin.
func (a *Allocator) consolidate(t *sim.Thread, ar *arena) {
	for i := 0; i < numFastbins; i++ {
		fb := ar.state + offFastbins + uint64(i)*8
		c := t.Load64(fb)
		if c == 0 {
			continue
		}
		t.Store64(fb, 0)
		for c != 0 {
			next := t.Load64(c + 16)
			a.coalesceAndBin(t, ar, c)
			c = next
		}
	}
	t.Store64(ar.state+offHaveFast, 0)
}

// coalesceAndBin merges chunk c with free neighbours and files the
// result (into top or the unsorted bin). c's size word must be current.
func (a *Allocator) coalesceAndBin(t *sim.Thread, ar *arena, c uint64) {
	szfl := t.Load64(c + 8)
	csz := szfl &^ flagMask
	// Merge backward.
	if szfl&prevInuse == 0 {
		psz := t.Load64(c)
		prev := c - psz
		listRemove(t, prev)
		csz += psz
		c = prev
		szfl = t.Load64(c + 8) // pick up prev's own prev-inuse bit
	}
	top := t.Load64(ar.state + offTop)
	next := c + csz
	if next == top {
		topSz := t.Load64(top+8) &^ flagMask
		t.Store64(c+8, (csz+topSz)|(szfl&prevInuse))
		t.Store64(ar.state+offTop, c)
		return
	}
	nszfl := t.Load64(next + 8)
	if nszfl&isFence == 0 {
		nsz := nszfl &^ flagMask
		// The next chunk is free iff the chunk after it says so.
		after := next + nsz
		if t.Load64(after+8)&prevInuse == 0 {
			listRemove(t, next)
			csz += nsz
		}
	}
	// Write the merged chunk's tags and clear the neighbour's bit.
	t.Store64(c+8, csz|(szfl&prevInuse))
	t.Store64(c+csz-8, csz)
	nn := c + csz
	t.Store64(nn, csz)
	t.Store64(nn+8, t.Load64(nn+8)&^prevInuse)
	listInsertHead(t, ar.binSentinel(0), c)
}

// mmapChunk services a large request directly from the kernel.
func (a *Allocator) mmapChunk(t *sim.Thread, size uint64) uint64 {
	pages := int((size + headerSize + 4095) >> 12)
	base := t.Mmap(pages)
	a.stats.HeapBytes += uint64(pages) << 12
	a.stats.LiveBytes += uint64(pages)<<12 - 8
	t.Store64(base+8, uint64(pages)<<12|isMmapped)
	t.MarkRegion(base, headerSize, region.Meta)
	t.MarkRegion(base+headerSize, int(uint64(pages)<<12-headerSize), region.User)
	return base + headerSize
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(3)
	c := addr - headerSize
	szfl := t.Load64(c + 8)
	if szfl&isMmapped != 0 {
		bytes := szfl &^ flagMask
		a.stats.HeapBytes -= bytes
		a.stats.LiveBytes -= bytes - 8
		t.Munmap(c, int(bytes>>12))
		return
	}
	csz := szfl &^ flagMask
	a.stats.LiveBytes -= csz - 8
	// A dead chunk belongs to the allocator again: its fd/bk links and
	// footer overwrite what was user payload.
	t.MarkRegion(c, int(csz), region.Meta)
	ar := a.arenaFor(t, c)
	ar.lock.Lock(t)
	if csz <= fastbinMax {
		// Fast path: LIFO push, no coalescing, no neighbour writes.
		fb := ar.state + offFastbins + uint64(fastbinIndex(csz))*8
		t.Store64(c+16, t.Load64(fb))
		t.Store64(fb, c)
		t.Store64(ar.state+offHaveFast, 1)
	} else {
		a.coalesceAndBin(t, ar, c)
	}
	ar.lock.Unlock(t)
}
