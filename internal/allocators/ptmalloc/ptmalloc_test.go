package ptmalloc

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}

// TestFastbinExactReuse: a freed fastbin-sized chunk is returned by the
// next same-size malloc (LIFO), glibc's signature behaviour.
func TestFastbinExactReuse(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		p := a.Malloc(th, 40)
		a.Free(th, p)
		q := a.Malloc(th, 40)
		if p != q {
			t.Errorf("fastbin reuse failed: freed %#x, got %#x", p, q)
		}
		a.Free(th, q)
	})
	m.Run()
}

// TestCoalescing: freeing two adjacent non-fastbin chunks yields a
// merged chunk that can satisfy a larger request from the same space.
func TestCoalescing(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		// Three adjacent chunks well above fastbin range.
		p1 := a.Malloc(th, 400)
		p2 := a.Malloc(th, 400)
		p3 := a.Malloc(th, 400) // guard so p2 does not merge into top
		if p2 != p1+416 {
			t.Skipf("chunks not adjacent (%#x, %#x); layout changed", p1, p2)
		}
		a.Free(th, p1)
		a.Free(th, p2)
		// A request fitting in the merged ~832-byte chunk must reuse it.
		q := a.Malloc(th, 700)
		if q != p1 {
			t.Errorf("coalesced reuse failed: want %#x, got %#x", p1, q)
		}
		a.Free(th, q)
		a.Free(th, p3)
	})
	m.Run()
}

// TestMmapThreshold: very large requests bypass the arena entirely and
// unmap on free.
func TestMmapThreshold(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		before := m.Kernel().Stats().Munmap
		p := a.Malloc(th, 256<<10)
		th.Store64(p, 7)
		a.Free(th, p)
		if got := m.Kernel().Stats().Munmap; got != before+1 {
			t.Errorf("expected one munmap for a large free, got %d", got-before)
		}
	})
	m.Run()
}

// TestPerThreadArenas: a second thread gets its own arena, so its heap
// segments are disjoint from the main thread's.
func TestPerThreadArenas(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	ready, _ := m.Kernel().Mmap(1)
	var a *Allocator
	var p0, p1 uint64
	m.Spawn("t0", 0, func(th *sim.Thread) {
		a = New(th)
		p0 = a.Malloc(th, 64)
		th.AtomicStore64(ready, 1)
	})
	m.Spawn("t1", 1, func(th *sim.Thread) {
		for th.Load64(ready) == 0 {
			th.Pause(100)
		}
		p1 = a.Malloc(th, 64)
	})
	m.Run()
	if len(a.arenas) != 2 {
		t.Fatalf("expected 2 arenas, got %d", len(a.arenas))
	}
	arenaOf := func(addr uint64) *arena {
		for _, seg := range a.segs {
			if seg.base <= addr && addr < seg.end {
				return seg.ar
			}
		}
		t.Fatalf("address %#x not in any segment", addr)
		return nil
	}
	if arenaOf(p0) == arenaOf(p1) {
		t.Errorf("both threads allocated from the same arena")
	}
}

func TestBadFreeFaults(t *testing.T) {
	alloctest.RunBadFree(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}
