package bump

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
		SkipBounded: true, // bump never reuses memory by design
	})
}

func TestBumpNeverOverlaps(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		prevEnd := uint64(0)
		for i := 0; i < 1000; i++ {
			size := uint64(8 + i%200)
			p := a.Malloc(th, size)
			if p < prevEnd {
				t.Errorf("allocation %d at %#x precedes previous end %#x", i, p, prevEnd)
			}
			if p+size > prevEnd {
				prevEnd = p + size
			}
		}
		if got := a.Stats().MallocCalls; got != 1000 {
			t.Errorf("MallocCalls = %d, want 1000", got)
		}
	})
	m.Run()
}
