// Package bump is a trivial arena (bump-pointer) allocator. It exists as
// the degenerate baseline — near-zero metadata traffic, unbounded
// fragmentation — and as a fixture for the simulator's own tests.
package bump

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
)

// chunkPages is how many pages each refill grabs from the kernel.
const chunkPages = 256

// Allocator is a bump allocator; Free is a no-op (the paper's §2.1
// fragmentation/speed trade-off taken to its speed extreme).
type Allocator struct {
	state uint64 // sim address of {cursor, limit}
	stats alloc.Stats
	sizes map[uint64]uint64 // live block sizes (host-side shadow for stats)
}

// New builds the allocator; t performs the initial state mmap.
func New(t *sim.Thread) *Allocator {
	state := t.Mmap(1)
	t.MarkRegion(state, 1<<12, region.Meta)
	a := &Allocator{state: state, sizes: make(map[uint64]uint64)}
	t.Store64(state, 0)   // cursor
	t.Store64(state+8, 0) // limit
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "bump" }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.stats.MallocCalls++
	need := (size + 15) &^ 15
	if need == 0 {
		need = 16
	}
	t.Exec(2) // align arithmetic
	cursor := t.Load64(a.state)
	limit := t.Load64(a.state + 8)
	if cursor+need > limit || cursor == 0 {
		pages := chunkPages
		if n := int((need + 4095) >> 12); n > pages {
			pages = n
		}
		cursor = t.Mmap(pages)
		limit = cursor + uint64(pages)<<12
		t.Store64(a.state+8, limit)
		a.stats.HeapBytes += uint64(pages) << 12
	}
	t.Store64(a.state, cursor+need)
	a.stats.LiveBytes += size
	a.sizes[cursor] = size
	return cursor
}

// Free implements alloc.Allocator; it only updates statistics.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(1)
	if sz, ok := a.sizes[addr]; ok {
		a.stats.LiveBytes -= sz
		delete(a.sizes, addr)
	}
}

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }
