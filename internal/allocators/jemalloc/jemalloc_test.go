package jemalloc

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th, 0)
		},
	})
}

// TestTcacheArrayNoTouch: jemalloc's array-based tcache must not write
// into freed user blocks (bitmap bookkeeping is segregated).
func TestTcacheArrayNoTouch(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th, 0)
		p := a.Malloc(th, 64)
		th.Store64(p, 0x1122334455667788)
		a.Free(th, p)
		// The freed block's first word must be intact: jemalloc keeps no
		// intrusive pointer there (unlike tcmalloc/mimalloc).
		if got := th.Load64(p); got != 0x1122334455667788 {
			t.Errorf("freed block was written by the allocator: %#x", got)
		}
	})
	m.Run()
}

// TestRunBitmapRoundTrip exercises runPop/runPush over a whole run.
func TestRunBitmapRoundTrip(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th, 1)
		class, _ := a.sc.ClassFor(48)
		seen := map[uint64]bool{}
		var addrs []uint64
		// Pop far more than one run holds to force multiple runs.
		for i := 0; i < 600; i++ {
			p := a.Malloc(th, 48)
			if seen[p] {
				t.Errorf("duplicate region %#x", p)
			}
			seen[p] = true
			addrs = append(addrs, p)
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
		// Reuse must come from the same runs.
		reused := 0
		for i := 0; i < 600; i++ {
			if p := a.Malloc(th, 48); seen[p] {
				reused++
			}
		}
		if reused < 500 {
			t.Errorf("only %d/600 regions reused after free", reused)
		}
		_ = class
	})
	m.Run()
}

// TestArenaRoundRobin: threads spread across the configured arenas.
func TestArenaRoundRobin(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	ready, _ := m.Kernel().Mmap(1)
	var a *Allocator
	for i := 0; i < 3; i++ {
		part := i
		m.Spawn("t", part, func(th *sim.Thread) {
			if part == 0 {
				a = New(th, 2)
				th.AtomicStore64(ready, 1)
			} else {
				for th.Load64(ready) == 0 {
					th.Pause(100)
				}
			}
			p := a.Malloc(th, 64)
			a.Free(th, p)
		})
	}
	m.Run()
	if got := len(a.byThread); got != 3 {
		t.Fatalf("expected 3 thread registrations, got %d", got)
	}
	counts := map[int]int{}
	for _, ar := range a.byThread {
		counts[ar.id]++
	}
	if len(counts) != 2 {
		t.Errorf("3 threads over 2 arenas should use both; got %v", counts)
	}
}

func TestBadFreeFaults(t *testing.T) {
	alloctest.RunBadFree(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th, 0)
		},
	})
}
