// Package jemalloc models Jemalloc (FreeBSD/Facebook), the second of
// the paper's industry allocators (Table 1).
//
// Distinguishing structure captured by the model:
//
//   - Multiple arenas with threads assigned round-robin, so unrelated
//     threads rarely contend on the same locks.
//   - Slab runs with *bitmap* region bookkeeping: freeing a region sets
//     a bit in the run's metadata record instead of writing a link
//     pointer into the user block (metadata segregated from data, unlike
//     TCMalloc's intrusive lists).
//   - Per-thread tcaches holding region pointers in small arrays,
//     filled/flushed in batches under the owning bin's lock.
//   - A radix page map (jemalloc's rtree) from page to run record.
package jemalloc

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/simsync"
)

// Miss-attribution marking (host-side, no simulated traffic): jemalloc's
// layout is fully segregated — run bitmaps, bin state, the rtree, and
// tcaches all live on dedicated metadata pages, and user blocks never
// carry intrusive links. Marking therefore touches only structure pages;
// heap spans keep the default user-data class for their whole life.

// Run record field offsets (128-byte records; the bitmap tail supports
// up to 512 regions per run — one page of 8-byte regions).
const (
	runNext   = 0
	runPrev   = 8
	runBase   = 16
	runPages  = 24
	runClass  = 32 // 255 = large allocation, 254 = free span
	runNFree  = 40
	runTotal  = 48
	runArena  = 56
	runBitmap = 64 // 8 words = 512 bits
	runBytes  = 128

	classLarge    = 255
	classFreeSpan = 254
)

// Per-class tcache slot: count word then capacity pointer slots.
const (
	tcacheCap      = 16
	tcacheSlotSize = 8 * (1 + tcacheCap)
)

const chunkPages = 512 // 2 MiB chunks (THP-backed, as jemalloc aligns them)

// bin layout inside an arena's state region (64-byte stride):
// lock(0), runcur(8), nonfull sentinel next/prev (16,24).
const binStride = 64

type arena struct {
	id    int
	state uint64 // bins region
	// free page spans: a single first-fit list sentinel in state region.
	freeSent uint64
	pageLock simsync.SpinLock
}

// Allocator is the Jemalloc model.
type Allocator struct {
	sc     *alloc.SizeClasses
	stats  alloc.Stats
	narena int
	arenas []*arena

	pagemapRoot uint64
	rtreeLock   simsync.SpinLock // guards leaf creation in the rtree
	metaBase    uint64
	metaOff     uint64
	metaLimit   uint64
	freeRecs    []uint64

	tcaches  map[int]uint64 // thread id -> tcache base
	byThread map[int]*arena
}

// New builds the allocator with narenas arenas (0 selects the default 4).
func New(t *sim.Thread, narenas int) *Allocator {
	if narenas <= 0 {
		narenas = 4
	}
	sc := alloc.NewSizeClasses()
	a := &Allocator{
		sc:       sc,
		narena:   narenas,
		tcaches:  make(map[int]uint64),
		byThread: make(map[int]*arena),
	}
	a.pagemapRoot = t.Mmap(16)
	t.MarkRegion(a.pagemapRoot, 16<<mem.PageShift, region.Meta)
	lockPage := t.Mmap(1)
	t.MarkRegion(lockPage, 1<<mem.PageShift, region.Meta)
	a.rtreeLock = simsync.NewSpinLock(lockPage)
	a.growMeta(t)
	for i := 0; i < narenas; i++ {
		binBytes := uint64(sc.NumClasses())*binStride + 128
		statePages := int((binBytes + mem.PageSize - 1) >> mem.PageShift)
		state := t.Mmap(statePages)
		t.MarkRegion(state, statePages<<mem.PageShift, region.Meta)
		ar := &arena{id: i, state: state}
		for c := 0; c < sc.NumClasses(); c++ {
			s := a.binSentinel(ar, c)
			t.Store64(s, s)
			t.Store64(s+8, s)
		}
		// Free-span list sentinel and page lock at the region tail.
		ar.freeSent = state + uint64(sc.NumClasses())*binStride
		t.Store64(ar.freeSent, ar.freeSent)
		t.Store64(ar.freeSent+8, ar.freeSent)
		ar.pageLock = simsync.NewSpinLock(ar.freeSent + 16)
		a.arenas = append(a.arenas, ar)
	}
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "jemalloc" }

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }

func (a *Allocator) binBase(ar *arena, class int) uint64 {
	return ar.state + uint64(class)*binStride
}

// binSentinel returns the nonfull-run list sentinel (next at +0).
func (a *Allocator) binSentinel(ar *arena, class int) uint64 {
	return a.binBase(ar, class) + 16
}

func (a *Allocator) growMeta(t *sim.Thread) {
	a.metaBase = t.Mmap(16)
	t.MarkRegion(a.metaBase, 16<<mem.PageShift, region.Meta)
	a.metaOff = 0
	a.metaLimit = 16 << mem.PageShift
}

func (a *Allocator) newRec(t *sim.Thread) uint64 {
	if n := len(a.freeRecs); n > 0 {
		r := a.freeRecs[n-1]
		a.freeRecs = a.freeRecs[:n-1]
		return r
	}
	if a.metaOff+runBytes > a.metaLimit {
		a.growMeta(t)
	}
	r := a.metaBase + a.metaOff
	a.metaOff += runBytes
	return r
}

// --- rtree (radix page map) ----------------------------------------------

func (a *Allocator) pagemapSet(t *sim.Thread, vaddr, rec uint64) {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leafSlot := a.pagemapRoot + (rel>>9)*8
	leaf := t.Load64(leafSlot)
	if leaf == 0 {
		leaf = t.Mmap(1)
		t.MarkRegion(leaf, 1<<mem.PageShift, region.Meta)
		t.Store64(leafSlot, leaf)
	}
	t.Store64(leaf+(rel&511)*8, rec)
}

func (a *Allocator) pagemapGet(t *sim.Thread, vaddr uint64) uint64 {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leaf := t.Load64(a.pagemapRoot + (rel>>9)*8)
	if leaf == 0 {
		return 0
	}
	return t.Load64(leaf + (rel&511)*8)
}

func (a *Allocator) registerRun(t *sim.Thread, rec uint64) {
	base := t.Load64(rec + runBase)
	pages := t.Load64(rec + runPages)
	// Writers from different arenas share the rtree; leaf creation must
	// not race (jemalloc guards its rtree the same way).
	a.rtreeLock.Lock(t)
	for i := uint64(0); i < pages; i++ {
		a.pagemapSet(t, base+i<<mem.PageShift, rec)
	}
	a.rtreeLock.Unlock(t)
}

// --- list helpers (next/prev at offsets 0/8) ------------------------------

func listInsert(t *sim.Thread, sentinel, rec uint64) {
	next := t.Load64(sentinel)
	t.Store64(rec+runNext, next)
	t.Store64(rec+runPrev, sentinel)
	t.Store64(sentinel, rec)
	t.Store64(next+runPrev, rec)
}

func listRemove(t *sim.Thread, rec uint64) {
	next := t.Load64(rec + runNext)
	prev := t.Load64(rec + runPrev)
	t.Store64(prev+runNext, next)
	t.Store64(next+runPrev, prev)
}

// --- arena page allocation (first-fit free-span list) ----------------------

// pageAlloc returns a run record with npages pages. Caller holds pageLock.
func (a *Allocator) pageAlloc(t *sim.Thread, ar *arena, npages int) uint64 {
	for rec := t.Load64(ar.freeSent); rec != ar.freeSent; rec = t.Load64(rec + runNext) {
		t.Exec(2)
		have := int(t.Load64(rec + runPages))
		if have < npages {
			continue
		}
		listRemove(t, rec)
		if have > npages {
			rem := a.newRec(t)
			base := t.Load64(rec + runBase)
			t.Store64(rem+runBase, base+uint64(npages)<<mem.PageShift)
			t.Store64(rem+runPages, uint64(have-npages))
			t.Store64(rem+runClass, classFreeSpan)
			t.Store64(rem+runArena, uint64(ar.id))
			listInsert(t, ar.freeSent, rem)
			t.Store64(rec+runPages, uint64(npages))
		}
		a.registerRun(t, rec)
		return rec
	}
	// Grow the arena by a chunk.
	g := chunkPages
	if npages > g {
		g = (npages + chunkPages - 1) &^ (chunkPages - 1)
	}
	base := t.MmapHuge(g)
	a.stats.HeapBytes += uint64(g) << mem.PageShift
	rec := a.newRec(t)
	t.Store64(rec+runBase, base)
	t.Store64(rec+runPages, uint64(g))
	t.Store64(rec+runClass, classFreeSpan)
	t.Store64(rec+runArena, uint64(ar.id))
	listInsert(t, ar.freeSent, rec)
	return a.pageAlloc(t, ar, npages)
}

// pageFree returns a run's pages to the arena. Caller holds pageLock.
func (a *Allocator) pageFree(t *sim.Thread, ar *arena, rec uint64) {
	t.Store64(rec+runClass, classFreeSpan)
	listInsert(t, ar.freeSent, rec)
}

// --- runs ------------------------------------------------------------------

// newRun carves a fresh slab run for class. Caller holds the bin lock.
func (a *Allocator) newRun(t *sim.Thread, ar *arena, class int) uint64 {
	pages := a.sc.SpanPages(class)
	ar.pageLock.Lock(t)
	rec := a.pageAlloc(t, ar, pages)
	ar.pageLock.Unlock(t)
	total := a.sc.ObjectsPerSpan(class, pages)
	if total > 512 {
		total = 512
	}
	t.Store64(rec+runClass, uint64(class))
	t.Store64(rec+runNFree, uint64(total))
	t.Store64(rec+runTotal, uint64(total))
	t.Store64(rec+runArena, uint64(ar.id))
	// All-free bitmap.
	for w := 0; w < 8; w++ {
		var bits uint64
		lo := w * 64
		switch {
		case total >= lo+64:
			bits = ^uint64(0)
		case total > lo:
			bits = (uint64(1) << uint(total-lo)) - 1
		}
		t.Store64(rec+runBitmap+uint64(w)*8, bits)
	}
	return rec
}

// runPop claims one region from a run's bitmap; returns its address.
func (a *Allocator) runPop(t *sim.Thread, rec uint64, class int) uint64 {
	for w := uint64(0); w < 8; w++ {
		bits := t.Load64(rec + runBitmap + w*8)
		if bits == 0 {
			continue
		}
		t.Exec(2) // bsf + mask arithmetic
		bit := bits & -bits
		idx := w * 64
		for m := bit; m > 1; m >>= 1 {
			idx++
		}
		t.Store64(rec+runBitmap+w*8, bits&^bit)
		t.Store64(rec+runNFree, t.Load64(rec+runNFree)-1)
		return t.Load64(rec+runBase) + idx*a.sc.Size(class)
	}
	panic("jemalloc: runPop on a full run")
}

// runPush returns a region to its run's bitmap; reports the run's new
// free count and total.
func (a *Allocator) runPush(t *sim.Thread, rec uint64, class int, addr uint64) (nfree, total uint64) {
	t.Exec(3) // region index arithmetic (magic-multiply division)
	idx := (addr - t.Load64(rec+runBase)) / a.sc.Size(class)
	w := idx / 64
	bits := t.Load64(rec + runBitmap + w*8)
	t.Store64(rec+runBitmap+w*8, bits|uint64(1)<<(idx%64))
	nfree = t.Load64(rec+runNFree) + 1
	t.Store64(rec+runNFree, nfree)
	return nfree, t.Load64(rec + runTotal)
}

// --- tcache ------------------------------------------------------------------

func (a *Allocator) tcache(t *sim.Thread) uint64 {
	if tc, ok := a.tcaches[t.ID()]; ok {
		return tc
	}
	pages := int((uint64(a.sc.NumClasses())*tcacheSlotSize + mem.PageSize - 1) >> mem.PageShift)
	tc := t.Mmap(pages)
	t.MarkRegion(tc, pages<<mem.PageShift, region.Meta)
	a.tcaches[t.ID()] = tc
	return tc
}

func (a *Allocator) arenaOf(t *sim.Thread) *arena {
	if ar, ok := a.byThread[t.ID()]; ok {
		return ar
	}
	ar := a.arenas[len(a.byThread)%a.narena]
	a.byThread[t.ID()] = ar
	return ar
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.stats.MallocCalls++
	t.Exec(4)
	class, ok := a.sc.ClassFor(size)
	if !ok {
		return a.largeAlloc(t, size)
	}
	a.stats.LiveBytes += a.sc.Size(class)
	tc := a.tcache(t)
	slot := tc + uint64(class)*tcacheSlotSize
	count := t.Load64(slot)
	if count > 0 {
		ptr := t.Load64(slot + 8 + (count-1)*8)
		t.Store64(slot, count-1)
		return ptr
	}
	// Fill from the arena bin.
	a.fill(t, a.arenaOf(t), class, slot)
	count = t.Load64(slot)
	ptr := t.Load64(slot + 8 + (count-1)*8)
	t.Store64(slot, count-1)
	return ptr
}

// fill grabs up to half the tcache capacity from the bin.
func (a *Allocator) fill(t *sim.Thread, ar *arena, class int, slot uint64) {
	want := tcacheCap / 2
	bin := a.binBase(ar, class)
	lock := simsync.NewSpinLock(bin)
	lock.Lock(t)
	got := uint64(0)
	for int(got) < want {
		rec := t.Load64(bin + 8) // runcur
		if rec == 0 || t.Load64(rec+runNFree) == 0 {
			// Promote a nonfull run or carve a new one.
			s := a.binSentinel(ar, class)
			rec = t.Load64(s)
			if rec != s {
				listRemove(t, rec)
			} else {
				rec = a.newRun(t, ar, class)
			}
			t.Store64(bin+8, rec)
		}
		for int(got) < want && t.Load64(rec+runNFree) > 0 {
			ptr := a.runPop(t, rec, class)
			t.Store64(slot+8+got*8, ptr)
			got++
		}
	}
	t.Store64(slot, got)
	lock.Unlock(t)
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(3)
	rec := a.pagemapGet(t, addr)
	classWord := t.Load64(rec + runClass)
	if classWord == classLarge {
		a.largeFree(t, rec)
		return
	}
	class := int(classWord)
	a.stats.LiveBytes -= a.sc.Size(class)
	tc := a.tcache(t)
	slot := tc + uint64(class)*tcacheSlotSize
	count := t.Load64(slot)
	if count == tcacheCap {
		a.flush(t, class, slot, tcacheCap/2)
		count = t.Load64(slot)
	}
	t.Store64(slot+8+count*8, addr)
	t.Store64(slot, count+1)
}

// flush returns n cached regions to their runs (possibly in remote
// arenas — the cross-thread contention path).
func (a *Allocator) flush(t *sim.Thread, class int, slot uint64, n int) {
	count := t.Load64(slot)
	for i := 0; i < n; i++ {
		addr := t.Load64(slot + 8 + (count-uint64(i+1))*8)
		rec := a.pagemapGet(t, addr)
		ar := a.arenas[t.Load64(rec+runArena)]
		bin := a.binBase(ar, class)
		lock := simsync.NewSpinLock(bin)
		lock.Lock(t)
		nfree, total := a.runPush(t, rec, class, addr)
		// Invariant: a run with 0 < nfree < total that is not runcur sits
		// on the bin's nonfull list; full runs sit nowhere.
		if t.Load64(bin+8) != rec {
			switch {
			case nfree == total:
				if nfree > 1 {
					listRemove(t, rec) // was on the nonfull list
				}
				ar.pageLock.Lock(t)
				a.pageFree(t, ar, rec)
				ar.pageLock.Unlock(t)
			case nfree == 1:
				// Was full and unlisted; now nonfull.
				listInsert(t, a.binSentinel(ar, class), rec)
			}
		}
		lock.Unlock(t)
	}
	t.Store64(slot, count-uint64(n))
}

// --- large objects -----------------------------------------------------------

func (a *Allocator) largeAlloc(t *sim.Thread, size uint64) uint64 {
	pages := int((size + mem.PageSize - 1) >> mem.PageShift)
	ar := a.arenaOf(t)
	ar.pageLock.Lock(t)
	rec := a.pageAlloc(t, ar, pages)
	ar.pageLock.Unlock(t)
	t.Store64(rec+runClass, classLarge)
	a.stats.LiveBytes += uint64(pages) << mem.PageShift
	return t.Load64(rec + runBase)
}

func (a *Allocator) largeFree(t *sim.Thread, rec uint64) {
	a.stats.LiveBytes -= t.Load64(rec+runPages) << mem.PageShift
	ar := a.arenas[t.Load64(rec+runArena)]
	ar.pageLock.Lock(t)
	a.pageFree(t, ar, rec)
	ar.pageLock.Unlock(t)
}
