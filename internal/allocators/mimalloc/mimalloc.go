// Package mimalloc models Microsoft's Mimalloc, the best performer in
// the paper's Figure 1 and the baseline NextGen-Malloc is compared
// against in Table 3.
//
// Structure captured by the model (free-list sharding, MSR-TR-2019-18):
//
//   - Per-thread heaps; no locks anywhere on the fast path.
//   - Per-page sharded lists: `free` (allocation pops here), `local_free`
//     (owner frees push here), `thread_free` (cross-thread frees push
//     here with an atomic CAS).
//   - *Aggregated* metadata layout (paper Figure 2): the link in a free
//     block is stored in the block's own first word, so allocation and
//     free touch the user-data cache line — great locality when the app
//     uses the block immediately, but metadata and data share lines.
//   - The generic path swaps local_free into free and drains thread_free,
//     amortizing bookkeeping over many allocations.
//   - Full pages move to a full queue and return when frees arrive.
package mimalloc

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/simsync"
)

// Miss-attribution marking (host-side, free of simulated traffic): the
// pagemap, page-record arena, segment state, and per-thread heap tables
// are metadata pages. The aggregated layout means a free block's first
// word holds the intrusive list link, so that 16-byte granule flips to
// metadata on free and back to user data when the block is handed out —
// the line sharing Figure 2 attributes to mimalloc.

// Page metadata record offsets (128-byte records). Lists next/prev keep
// offsets 0/8 so the shared list helpers apply.
const (
	pgNext       = 0
	pgPrev       = 8
	pgBase       = 16
	pgPages      = 24
	pgClass      = 32 // 255 = large allocation, 254 = free span
	pgFree       = 40 // intrusive list: allocation pops here
	pgLocalFree  = 48 // intrusive list: owner frees push here
	pgThreadFree = 56 // intrusive MPSC list: cross-thread frees CAS here
	pgTFCount    = 64 // atomic count of thread_free entries
	pgUsed       = 72 // live blocks on this page
	pgCapacity   = 80 // reserved blocks (page bytes / block size)
	pgOwner      = 88 // owning thread id + 1 (0 = none)
	pgInFull     = 96
	pgCarved     = 104 // blocks linked into the free list so far (lazy extend)
	pgRecBytes   = 128

	classLarge    = 255
	classFreeSpan = 254
)

// Per-class heap slot: cur(0), avail sentinel(8,16), full sentinel(24,32).
const heapSlotBytes = 64

const segmentPages = 512 // 2 MiB segments (hugepage-aligned, as mimalloc reserves them)

// Allocator is the Mimalloc model.
type Allocator struct {
	sc    *alloc.SizeClasses
	stats alloc.Stats

	pagemapRoot uint64
	metaBase    uint64
	metaOff     uint64
	metaLimit   uint64
	freeRecs    []uint64

	segState uint64 // segment allocator: lock + free-span sentinel
	segLock  simsync.SpinLock

	heaps map[int]uint64 // thread id -> heap base
}

// New builds the allocator; t performs the initial mmaps.
func New(t *sim.Thread) *Allocator {
	a := &Allocator{
		sc:    alloc.NewSizeClasses(),
		heaps: make(map[int]uint64),
	}
	a.pagemapRoot = t.Mmap(16)
	t.MarkRegion(a.pagemapRoot, 16<<mem.PageShift, region.Meta)
	a.segState = t.Mmap(1)
	t.MarkRegion(a.segState, 1<<mem.PageShift, region.Meta)
	a.segLock = simsync.NewSpinLock(a.segState)
	sent := a.segSentinel()
	t.Store64(sent, sent)
	t.Store64(sent+8, sent)
	a.growMeta(t)
	return a
}

func (a *Allocator) segSentinel() uint64 { return a.segState + 16 }

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "mimalloc" }

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }

func (a *Allocator) growMeta(t *sim.Thread) {
	a.metaBase = t.Mmap(16)
	t.MarkRegion(a.metaBase, 16<<mem.PageShift, region.Meta)
	a.metaOff = 0
	a.metaLimit = 16 << mem.PageShift
}

func (a *Allocator) newRec(t *sim.Thread) uint64 {
	if n := len(a.freeRecs); n > 0 {
		r := a.freeRecs[n-1]
		a.freeRecs = a.freeRecs[:n-1]
		return r
	}
	if a.metaOff+pgRecBytes > a.metaLimit {
		a.growMeta(t)
	}
	r := a.metaBase + a.metaOff
	a.metaOff += pgRecBytes
	return r
}

// --- pagemap (stands in for mimalloc's aligned-segment pointer trick;
// same two dependent loads a segment-header lookup performs) -----------

func (a *Allocator) pagemapSet(t *sim.Thread, vaddr, rec uint64) {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leafSlot := a.pagemapRoot + (rel>>9)*8
	leaf := t.Load64(leafSlot)
	if leaf == 0 {
		leaf = t.Mmap(1)
		t.MarkRegion(leaf, 1<<mem.PageShift, region.Meta)
		t.Store64(leafSlot, leaf)
	}
	t.Store64(leaf+(rel&511)*8, rec)
}

func (a *Allocator) pagemapGet(t *sim.Thread, vaddr uint64) uint64 {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leaf := t.Load64(a.pagemapRoot + (rel>>9)*8)
	if leaf == 0 {
		return 0
	}
	return t.Load64(leaf + (rel&511)*8)
}

func (a *Allocator) registerRec(t *sim.Thread, rec uint64) {
	base := t.Load64(rec + pgBase)
	pages := t.Load64(rec + pgPages)
	for i := uint64(0); i < pages; i++ {
		a.pagemapSet(t, base+i<<mem.PageShift, rec)
	}
}

// --- list helpers (next/prev at 0/8) --------------------------------------

func listInsert(t *sim.Thread, sentinel, rec uint64) {
	next := t.Load64(sentinel)
	t.Store64(rec+pgNext, next)
	t.Store64(rec+pgPrev, sentinel)
	t.Store64(sentinel, rec)
	t.Store64(next+pgPrev, rec)
}

func listRemove(t *sim.Thread, rec uint64) {
	next := t.Load64(rec + pgNext)
	prev := t.Load64(rec + pgPrev)
	t.Store64(prev+pgNext, next)
	t.Store64(next+pgPrev, prev)
}

// --- segment (page span) allocator ----------------------------------------

// segAlloc returns a rec with npages pages, locked internally.
func (a *Allocator) segAlloc(t *sim.Thread, npages int) uint64 {
	a.segLock.Lock(t)
	defer a.segLock.Unlock(t)
	sent := a.segSentinel()
	for {
		for rec := t.Load64(sent); rec != sent; rec = t.Load64(rec + pgNext) {
			t.Exec(2)
			have := int(t.Load64(rec + pgPages))
			if have < npages {
				continue
			}
			listRemove(t, rec)
			if have > npages {
				rem := a.newRec(t)
				base := t.Load64(rec + pgBase)
				t.Store64(rem+pgBase, base+uint64(npages)<<mem.PageShift)
				t.Store64(rem+pgPages, uint64(have-npages))
				t.Store64(rem+pgClass, classFreeSpan)
				listInsert(t, sent, rem)
				t.Store64(rec+pgPages, uint64(npages))
			}
			a.registerRec(t, rec)
			return rec
		}
		g := segmentPages
		if npages > g {
			g = (npages + segmentPages - 1) &^ (segmentPages - 1)
		}
		base := t.MmapHuge(g)
		a.stats.HeapBytes += uint64(g) << mem.PageShift
		rec := a.newRec(t)
		t.Store64(rec+pgBase, base)
		t.Store64(rec+pgPages, uint64(g))
		t.Store64(rec+pgClass, classFreeSpan)
		listInsert(t, sent, rec)
	}
}

func (a *Allocator) segFree(t *sim.Thread, rec uint64) {
	a.segLock.Lock(t)
	t.Store64(rec+pgClass, classFreeSpan)
	t.Store64(rec+pgOwner, 0)
	listInsert(t, a.segSentinel(), rec)
	a.segLock.Unlock(t)
}

// --- heap ------------------------------------------------------------------

func (a *Allocator) heap(t *sim.Thread) uint64 {
	if h, ok := a.heaps[t.ID()]; ok {
		return h
	}
	pages := int((uint64(a.sc.NumClasses())*heapSlotBytes + mem.PageSize - 1) >> mem.PageShift)
	h := t.Mmap(pages)
	t.MarkRegion(h, pages<<mem.PageShift, region.Meta)
	for c := 0; c < a.sc.NumClasses(); c++ {
		slot := h + uint64(c)*heapSlotBytes
		t.Store64(slot+8, slot+8) // avail sentinel
		t.Store64(slot+16, slot+8)
		t.Store64(slot+24, slot+24) // full sentinel
		t.Store64(slot+32, slot+24)
	}
	a.heaps[t.ID()] = h
	return h
}

func heapSlot(h uint64, class int) uint64 { return h + uint64(class)*heapSlotBytes }

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.stats.MallocCalls++
	t.Exec(4)
	class, ok := a.sc.ClassFor(size)
	if !ok {
		return a.largeAlloc(t, size)
	}
	a.stats.LiveBytes += a.sc.Size(class)
	h := a.heap(t)
	slot := heapSlot(h, class)
	rec := t.Load64(slot) // current page
	if rec != 0 {
		// Fast path: pop the page's free list (intrusive: the next link
		// lives in the block itself — the aggregated layout).
		block := t.Load64(rec + pgFree)
		if block != 0 {
			t.Store64(rec+pgFree, t.Load64(block))
			t.Store64(rec+pgUsed, t.Load64(rec+pgUsed)+1)
			t.MarkRegion(block, int(a.sc.Size(class)), region.User)
			return block
		}
	}
	return a.mallocGeneric(t, slot, class)
}

// collect swaps local_free into free and drains thread_free (mimalloc's
// _mi_page_free_collect). Returns the new free head.
func (a *Allocator) collect(t *sim.Thread, rec uint64) uint64 {
	free := t.Load64(rec + pgFree)
	lf := t.Load64(rec + pgLocalFree)
	if lf != 0 && free == 0 {
		t.Store64(rec+pgFree, lf)
		t.Store64(rec+pgLocalFree, 0)
		free = lf
	}
	if t.AtomicLoad64(rec+pgThreadFree) != 0 {
		tf := t.Swap64(rec+pgThreadFree, 0)
		n := t.Swap64(rec+pgTFCount, 0)
		t.Store64(rec+pgUsed, t.Load64(rec+pgUsed)-n)
		if free == 0 {
			t.Store64(rec+pgFree, tf)
			free = tf
		} else {
			// Append: walk the (short) drained chain to its tail.
			tail := tf
			for next := t.Load64(tail); next != 0; next = t.Load64(tail) {
				tail = next
			}
			t.Store64(tail, t.Load64(rec+pgFree))
			t.Store64(rec+pgFree, tf)
			free = tf
		}
	}
	return free
}

// mallocGeneric is the slow path: rotate pages, drain shards, or carve a
// fresh page.
func (a *Allocator) mallocGeneric(t *sim.Thread, slot uint64, class int) uint64 {
	cur := t.Load64(slot)
	if cur != 0 {
		if free := a.collect(t, cur); free != 0 {
			return a.popBlock(t, cur, free, class)
		}
		if a.extendPage(t, cur, class) {
			return a.popBlock(t, cur, t.Load64(cur+pgFree), class)
		}
		// Current page is genuinely full: park it on the full queue.
		t.Store64(cur+pgInFull, 1)
		listInsert(t, slot+24, cur)
		t.Store64(slot, 0)
	}
	// Try the avail queue.
	availSent := slot + 8
	for rec := t.Load64(availSent); rec != availSent; {
		next := t.Load64(rec + pgNext)
		if free := a.collect(t, rec); free != 0 {
			listRemove(t, rec)
			t.Store64(slot, rec)
			return a.popBlock(t, rec, free, class)
		}
		if a.extendPage(t, rec, class) {
			listRemove(t, rec)
			t.Store64(slot, rec)
			return a.popBlock(t, rec, t.Load64(rec+pgFree), class)
		}
		listRemove(t, rec)
		t.Store64(rec+pgInFull, 1)
		listInsert(t, slot+24, rec)
		rec = next
	}
	// Probe the head of the full queue for pages revived by remote frees.
	fullSent := slot + 24
	probe := t.Load64(fullSent)
	for i := 0; i < 2 && probe != fullSent; i++ {
		next := t.Load64(probe + pgNext)
		if free := a.collect(t, probe); free != 0 {
			listRemove(t, probe)
			t.Store64(probe+pgInFull, 0)
			t.Store64(slot, probe)
			return a.popBlock(t, probe, free, class)
		}
		probe = next
	}
	// Fresh page from the segment allocator.
	rec := a.freshPage(t, class)
	t.Store64(rec+pgOwner, uint64(t.ID())+1)
	t.Store64(slot, rec)
	return a.popBlock(t, rec, t.Load64(rec+pgFree), class)
}

func (a *Allocator) popBlock(t *sim.Thread, rec, block uint64, class int) uint64 {
	t.Store64(rec+pgFree, t.Load64(block))
	t.Store64(rec+pgUsed, t.Load64(rec+pgUsed)+1)
	t.MarkRegion(block, int(a.sc.Size(class)), region.User)
	return block
}

// miPagePages is the OS-page count of one mimalloc page: 64 KiB, as in
// the real allocator's small pages — thousands of blocks per page, so a
// page revived by remote/owner frees has accumulated many blocks before
// the owner rotates back to it.
const miPagePages = 16

// freshPage carves a new page for class, building its intrusive free
// list through the blocks themselves.
func (a *Allocator) freshPage(t *sim.Thread, class int) uint64 {
	pages := miPagePages
	if large := a.sc.SpanPages(class); large > pages {
		pages = large
	}
	rec := a.segAlloc(t, pages)
	n := a.sc.ObjectsPerSpan(class, pages)
	t.Store64(rec+pgClass, uint64(class))
	t.Store64(rec+pgFree, 0)
	t.Store64(rec+pgLocalFree, 0)
	t.Store64(rec+pgThreadFree, 0)
	t.Store64(rec+pgTFCount, 0)
	t.Store64(rec+pgUsed, 0)
	t.Store64(rec+pgCapacity, uint64(n))
	t.Store64(rec+pgInFull, 0)
	t.Store64(rec+pgCarved, 0)
	a.extendPage(t, rec, class)
	return rec
}

// extendChunk bounds how many fresh blocks one extension links (real
// mimalloc's MI_MAX_EXTEND-style lazy carving).
const extendChunk = 64

// extendPage links up to extendChunk more reserved blocks into the free
// list; it reports whether anything was added.
func (a *Allocator) extendPage(t *sim.Thread, rec uint64, class int) bool {
	carved := t.Load64(rec + pgCarved)
	capacity := t.Load64(rec + pgCapacity)
	if carved >= capacity {
		return false
	}
	n := capacity - carved
	if n > extendChunk {
		n = extendChunk
	}
	size := a.sc.Size(class)
	base := t.Load64(rec + pgBase)
	head := t.Load64(rec + pgFree)
	for i := int64(carved+n) - 1; i >= int64(carved); i-- {
		blk := base + uint64(i)*size
		t.Store64(blk, head)
		t.MarkRegion(blk, 16, region.Meta) // free-list link granule
		head = blk
	}
	t.Store64(rec+pgFree, head)
	t.Store64(rec+pgCarved, carved+n)
	return true
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(3)
	rec := a.pagemapGet(t, addr)
	classWord := t.Load64(rec + pgClass)
	if classWord == classLarge {
		a.largeFree(t, rec)
		return
	}
	class := int(classWord)
	a.stats.LiveBytes -= a.sc.Size(class)
	owner := t.Load64(rec + pgOwner)
	t.MarkRegion(addr, 16, region.Meta) // link word overwrites user data
	if owner == uint64(t.ID())+1 {
		// Local free: push onto local_free (intrusive store into the
		// block — its line is typically still warm in this core).
		t.Store64(addr, t.Load64(rec+pgLocalFree))
		t.Store64(rec+pgLocalFree, addr)
		used := t.Load64(rec+pgUsed) - 1
		t.Store64(rec+pgUsed, used)
		if t.Load64(rec+pgInFull) != 0 {
			// Revive a full page immediately (owner-side unfull).
			h := a.heap(t)
			slot := heapSlot(h, class)
			listRemove(t, rec)
			t.Store64(rec+pgInFull, 0)
			listInsert(t, slot+8, rec)
		} else if used == 0 {
			a.maybeRetire(t, rec, class)
		}
		return
	}
	// Cross-thread free: atomic push onto thread_free.
	for {
		tf := t.AtomicLoad64(rec + pgThreadFree)
		t.Store64(addr, tf)
		if t.CAS64(rec+pgThreadFree, tf, addr) {
			break
		}
	}
	t.FetchAdd64(rec+pgTFCount, 1)
}

// maybeRetire releases a completely free page back to the segment unless
// it is the thread's current page for the class (mimalloc retains that
// one as an optimization).
func (a *Allocator) maybeRetire(t *sim.Thread, rec uint64, class int) {
	h := a.heap(t)
	slot := heapSlot(h, class)
	if t.Load64(slot) == rec {
		return
	}
	// The page sits on the avail queue; pull it out and release it.
	listRemove(t, rec)
	t.Store64(rec+pgFree, 0)
	t.Store64(rec+pgLocalFree, 0)
	a.segFree(t, rec)
}

// --- large objects -----------------------------------------------------------

func (a *Allocator) largeAlloc(t *sim.Thread, size uint64) uint64 {
	pages := int((size + mem.PageSize - 1) >> mem.PageShift)
	rec := a.segAlloc(t, pages)
	t.Store64(rec+pgClass, classLarge)
	a.stats.LiveBytes += uint64(pages) << mem.PageShift
	base := t.Load64(rec + pgBase)
	t.MarkRegion(base, pages<<mem.PageShift, region.User)
	return base
}

func (a *Allocator) largeFree(t *sim.Thread, rec uint64) {
	a.stats.LiveBytes -= t.Load64(rec+pgPages) << mem.PageShift
	a.segFree(t, rec)
}
