package mimalloc

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}

// TestLocalFreeSharding: owner frees go to local_free and are only
// consumed after the page's free list drains (the sharded design).
func TestLocalFreeSharding(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		p := a.Malloc(th, 32)
		rec := a.pagemapGet(th, p)
		a.Free(th, p)
		if got := th.Load64(rec + pgLocalFree); got != p {
			t.Errorf("local free did not land on local_free: %#x", got)
		}
		if used := th.Load64(rec + pgUsed); used != 0 {
			t.Errorf("used = %d after free", used)
		}
	})
	m.Run()
}

// TestThreadFreeMPSC: a cross-thread free lands on the owner page's
// thread_free list via CAS and is drained by the owner's generic path.
func TestThreadFreeMPSC(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	ready, _ := m.Kernel().Mmap(1)
	shared, _ := m.Kernel().Mmap(1)
	var a *Allocator
	m.Spawn("owner", 0, func(th *sim.Thread) {
		a = New(th)
		p := a.Malloc(th, 32)
		th.Store64(shared, p)
		th.AtomicStore64(ready, 1)
		// Wait until the remote free arrives, then drain it.
		rec := a.pagemapGet(th, p)
		for th.AtomicLoad64(rec+pgThreadFree) == 0 {
			th.Pause(100)
		}
		if got := a.collect(th, rec); got != p {
			t.Errorf("collect returned %#x, want %#x", got, p)
		}
		if used := th.Load64(rec + pgUsed); used != 0 {
			t.Errorf("used = %d after drain", used)
		}
	})
	m.Spawn("remote", 1, func(th *sim.Thread) {
		for th.Load64(ready) == 0 {
			th.Pause(100)
		}
		a.Free(th, th.Load64(shared))
	})
	m.Run()
}

// TestLazyExtend: a fresh page links only a bounded chunk of its
// capacity up front.
func TestLazyExtend(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		p := a.Malloc(th, 16)
		rec := a.pagemapGet(th, p)
		carved := th.Load64(rec + pgCarved)
		capacity := th.Load64(rec + pgCapacity)
		if carved > extendChunk {
			t.Errorf("carved %d blocks up front; want <= %d", carved, extendChunk)
		}
		if capacity <= carved {
			t.Errorf("capacity %d should exceed the first extension %d", capacity, carved)
		}
	})
	m.Run()
}

func TestBadFreeFaults(t *testing.T) {
	alloctest.RunBadFree(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}
