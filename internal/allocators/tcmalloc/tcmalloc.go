// Package tcmalloc models Google's TCMalloc, one of the paper's three
// "state-of-the-art industry-level allocators" (Table 1) and the subject
// of its thread-scaling study (Table 2).
//
// The structural features the paper leans on are all present:
//
//   - Size classes with per-thread caches: the fast path touches only the
//     calling thread's cache lines (no locks, no atomics).
//   - Intrusive free lists: the link pointer lives in the first word of
//     each free object, so freelist traffic touches user-data lines.
//   - Central free lists per class, guarded by locks, exchanged with
//     thread caches in batches (num_objects_to_move).
//   - A span-based page heap with a radix page map; span metadata is
//     *segregated* from user pages (the paper's Figure 2 contrast with
//     Mimalloc's aggregated layout).
//   - Cross-thread frees land in the freeing thread's cache and migrate
//     through the central lists — the mechanism behind Table 2's LLC
//     miss explosion.
package tcmalloc

import (
	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/simsync"
)

// Miss-attribution marking (host-side, no simulated traffic): the radix
// pagemap, central blocks, page-heap state, span-record region, and
// thread caches are metadata pages — the *segregated* part of the
// layout. The intrusive free lists are the aggregated part: a free
// object's first word carries the link, so that granule is metadata
// until the object is handed back to the application.

// Span record field offsets (64-byte records in the metadata region).
const (
	spanNext      = 0
	spanPrev      = 8
	spanStart     = 16 // base virtual address of the span
	spanPages     = 24
	spanClass     = 32 // 0 = free span, 255 = large alloc, else class+1
	spanFreeHead  = 40 // intrusive list of returned objects
	spanFreeCount = 48
	spanCapacity  = 56
	spanRecBytes  = 64

	classFreeSpan = 0
	classLarge    = 255
)

// Thread-cache per-class slot offsets (16-byte slots).
const (
	tcHead  = 0
	tcCount = 8
	tcSlot  = 16
)

const (
	// maxFreePages is the largest page-heap free-list length with its own
	// list; longer spans go on the large list.
	maxFreePages = 128
	// growPages is the minimum page-heap growth unit (2 MiB: the page
	// heap is hugepage-backed, per hugepage-aware TCMalloc [OSDI'21]).
	growPages = 512
)

// Allocator is the TCMalloc model.
type Allocator struct {
	sc    *alloc.SizeClasses
	stats alloc.Stats

	pagemapRoot uint64 // sim address of the radix root
	metaBase    uint64 // span-record bump region
	metaOff     uint64
	metaLimit   uint64
	spanFreeRec []uint64 // recycled span record addresses (host-side)

	central  uint64 // per-class central blocks (64B stride)
	ph       uint64 // page-heap state base
	phLock   simsync.SpinLock
	caches   map[int]uint64 // thread id -> thread-cache base
	maxCount map[int]int    // class -> thread-cache trim threshold
}

// Page-heap layout: lock at ph+0, large sentinel at ph+16, then
// per-length sentinels (16 bytes each) from ph+64.
func (a *Allocator) phListSentinel(pages int) uint64 {
	if pages > maxFreePages {
		return a.ph + 16
	}
	return a.ph + 64 + uint64(pages-1)*16
}

func (a *Allocator) centralBlock(class int) uint64 { return a.central + uint64(class)*64 }

// New builds the allocator; t performs the initial mmaps.
func New(t *sim.Thread) *Allocator {
	sc := alloc.NewSizeClasses()
	a := &Allocator{
		sc:       sc,
		caches:   make(map[int]uint64),
		maxCount: make(map[int]int),
	}
	// Radix root: 16 pages = 8192 leaf slots covering 32 GiB of heap.
	a.pagemapRoot = t.Mmap(16)
	t.MarkRegion(a.pagemapRoot, 16<<mem.PageShift, region.Meta)
	// Central blocks.
	centralPages := int((uint64(sc.NumClasses())*64 + mem.PageSize - 1) >> mem.PageShift)
	a.central = t.Mmap(centralPages)
	t.MarkRegion(a.central, centralPages<<mem.PageShift, region.Meta)
	for c := 0; c < sc.NumClasses(); c++ {
		s := a.centralBlock(c) + 8
		t.Store64(s, s)
		t.Store64(s+8, s)
		a.maxCount[c] = 2 * sc.BatchSize(c)
	}
	// Page heap: lock + large sentinel + 128 length sentinels.
	a.ph = t.Mmap(1)
	t.MarkRegion(a.ph, 1<<mem.PageShift, region.Meta)
	a.phLock = simsync.NewSpinLock(a.ph)
	for i := 0; i <= maxFreePages; i++ {
		var s uint64
		if i == 0 {
			s = a.ph + 16
		} else {
			s = a.phListSentinel(i)
		}
		t.Store64(s, s)
		t.Store64(s+8, s)
	}
	a.growMeta(t)
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "tcmalloc" }

// Stats implements alloc.Allocator.
func (a *Allocator) Stats() alloc.Stats { return a.stats }

func (a *Allocator) growMeta(t *sim.Thread) {
	a.metaBase = t.Mmap(16)
	t.MarkRegion(a.metaBase, 16<<mem.PageShift, region.Meta)
	a.metaOff = 0
	a.metaLimit = 16 << mem.PageShift
}

// newSpanRec carves a fresh span record (or reuses a retired one).
func (a *Allocator) newSpanRec(t *sim.Thread) uint64 {
	if n := len(a.spanFreeRec); n > 0 {
		rec := a.spanFreeRec[n-1]
		a.spanFreeRec = a.spanFreeRec[:n-1]
		return rec
	}
	if a.metaOff+spanRecBytes > a.metaLimit {
		a.growMeta(t)
	}
	rec := a.metaBase + a.metaOff
	a.metaOff += spanRecBytes
	return rec
}

// --- radix page map ----------------------------------------------------

// pagemapSet records that the page containing vaddr belongs to span rec.
func (a *Allocator) pagemapSet(t *sim.Thread, vaddr, rec uint64) {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leafSlot := a.pagemapRoot + (rel>>9)*8
	leaf := t.Load64(leafSlot)
	if leaf == 0 {
		leaf = t.Mmap(1)
		t.MarkRegion(leaf, 1<<mem.PageShift, region.Meta)
		t.Store64(leafSlot, leaf)
	}
	t.Store64(leaf+(rel&511)*8, rec)
}

// pagemapGet returns the span record for the page containing vaddr
// (two dependent loads, as in TCMalloc's 2-level radix on 48-bit VA).
func (a *Allocator) pagemapGet(t *sim.Thread, vaddr uint64) uint64 {
	rel := (vaddr - mem.MmapBase) >> mem.PageShift
	leaf := t.Load64(a.pagemapRoot + (rel>>9)*8)
	if leaf == 0 {
		return 0
	}
	return t.Load64(leaf + (rel&511)*8)
}

// registerSpan points every page of the span at its record.
func (a *Allocator) registerSpan(t *sim.Thread, rec uint64) {
	start := t.Load64(rec + spanStart)
	pages := t.Load64(rec + spanPages)
	for i := uint64(0); i < pages; i++ {
		a.pagemapSet(t, start+i<<mem.PageShift, rec)
	}
}

// --- span list helpers (next/prev at offsets 0/8) -----------------------

func listInsert(t *sim.Thread, sentinel, rec uint64) {
	next := t.Load64(sentinel)
	t.Store64(rec+spanNext, next)
	t.Store64(rec+spanPrev, sentinel)
	t.Store64(sentinel, rec)
	t.Store64(next+spanPrev, rec)
}

func listRemove(t *sim.Thread, rec uint64) {
	next := t.Load64(rec + spanNext)
	prev := t.Load64(rec + spanPrev)
	t.Store64(prev+spanNext, next)
	t.Store64(next+spanPrev, prev)
}

// --- page heap -----------------------------------------------------------

// phAlloc returns a span record of exactly npages, splitting or growing
// as needed. Caller holds the page-heap lock.
func (a *Allocator) phAlloc(t *sim.Thread, npages int) uint64 {
	for {
		// Search the exact list then longer ones.
		for ln := npages; ln <= maxFreePages; ln++ {
			t.Exec(1)
			s := a.phListSentinel(ln)
			rec := t.Load64(s)
			if rec == s {
				continue
			}
			listRemove(t, rec)
			return a.phCarve(t, rec, npages)
		}
		// Large list: first fit.
		s := a.phListSentinel(maxFreePages + 1)
		for rec := t.Load64(s); rec != s; rec = t.Load64(rec + spanNext) {
			t.Exec(2)
			if int(t.Load64(rec+spanPages)) >= npages {
				listRemove(t, rec)
				return a.phCarve(t, rec, npages)
			}
		}
		// Grow from the kernel.
		g := growPages
		if npages > g {
			g = (npages + growPages - 1) &^ (growPages - 1)
		}
		base := t.MmapHuge(g)
		a.stats.HeapBytes += uint64(g) << mem.PageShift
		rec := a.newSpanRec(t)
		t.Store64(rec+spanStart, base)
		t.Store64(rec+spanPages, uint64(g))
		t.Store64(rec+spanClass, classFreeSpan)
		a.phInsertFree(t, rec) // registers the boundary pages

	}
}

// phCarve trims rec to npages, returning the remainder to the free lists.
func (a *Allocator) phCarve(t *sim.Thread, rec uint64, npages int) uint64 {
	have := int(t.Load64(rec + spanPages))
	// Mark the span allocated *before* filing any remainder: the
	// remainder's insertion runs the boundary-merge check against its
	// previous neighbour — which is this very span — and must not
	// swallow it back.
	t.Store64(rec+spanClass, classLarge)
	if have > npages {
		remRec := a.newSpanRec(t)
		start := t.Load64(rec + spanStart)
		t.Store64(rec+spanPages, uint64(npages))
		t.Store64(remRec+spanStart, start+uint64(npages)<<mem.PageShift)
		t.Store64(remRec+spanPages, uint64(have-npages))
		t.Store64(remRec+spanClass, classFreeSpan)
		a.phInsertFree(t, remRec) // registers the remainder's boundaries
	}
	// Every page of the allocated span must resolve to its record for
	// Free's pagemap lookup.
	a.registerSpan(t, rec)
	return rec
}

// phInsertFree files a free span, coalescing with free neighbours.
func (a *Allocator) phInsertFree(t *sim.Thread, rec uint64) {
	start := t.Load64(rec + spanStart)
	pages := t.Load64(rec + spanPages)
	// Merge with the span ending at start. Absorbed records have their
	// class invalidated before recycling so stale page-map entries that
	// still point at them can never satisfy this check again.
	if start > mem.MmapBase {
		if prev := a.pagemapGet(t, start-1); prev != 0 &&
			t.Load64(prev+spanClass) == classFreeSpan &&
			t.Load64(prev+spanStart)+t.Load64(prev+spanPages)<<mem.PageShift == start {
			listRemove(t, prev)
			start = t.Load64(prev + spanStart)
			pages += t.Load64(prev + spanPages)
			t.Store64(prev+spanClass, classLarge) // invalidate
			a.spanFreeRec = append(a.spanFreeRec, prev)
		}
	}
	// Merge with the span starting just after.
	if next := a.pagemapGet(t, start+pages<<mem.PageShift); next != 0 &&
		t.Load64(next+spanClass) == classFreeSpan &&
		t.Load64(next+spanStart) == start+pages<<mem.PageShift {
		listRemove(t, next)
		pages += t.Load64(next + spanPages)
		t.Store64(next+spanClass, classLarge) // invalidate
		a.spanFreeRec = append(a.spanFreeRec, next)
	}
	t.Store64(rec+spanStart, start)
	t.Store64(rec+spanPages, pages)
	t.Store64(rec+spanClass, classFreeSpan)
	// Only the boundary pages need to stay registered for merging.
	a.pagemapSet(t, start, rec)
	a.pagemapSet(t, start+(pages-1)<<mem.PageShift, rec)
	ln := int(pages)
	if ln > maxFreePages {
		ln = maxFreePages + 1
	}
	listInsert(t, a.phListSentinel(ln), rec)
}

// --- central free lists ---------------------------------------------------

// centralFetch moves up to want objects of class into the caller's
// intrusive list, returning the head and count.
func (a *Allocator) centralFetch(t *sim.Thread, class, want int) (uint64, int) {
	cb := a.centralBlock(class)
	lock := simsync.NewSpinLock(cb)
	lock.Lock(t)
	sentinel := cb + 8
	var head uint64
	got := 0
	for got < want {
		rec := t.Load64(sentinel)
		if rec == sentinel {
			// No spans with free objects: carve a fresh span.
			a.phLock.Lock(t)
			rec = a.phAlloc(t, a.sc.SpanPages(class))
			a.phLock.Unlock(t)
			a.carveSpan(t, rec, class)
			listInsert(t, sentinel, rec)
		}
		// Pop from the span's intrusive free list.
		objHead := t.Load64(rec + spanFreeHead)
		cnt := t.Load64(rec + spanFreeCount)
		for got < want && objHead != 0 {
			next := t.Load64(objHead) // intrusive pointer in the object
			t.Store64(objHead, head)
			head = objHead
			objHead = next
			got++
			cnt--
		}
		t.Store64(rec+spanFreeHead, objHead)
		t.Store64(rec+spanFreeCount, cnt)
		if objHead == 0 {
			listRemove(t, rec) // exhausted span leaves the nonempty list
		}
	}
	lock.Unlock(t)
	return head, got
}

// carveSpan links every object of a fresh span into its free list.
func (a *Allocator) carveSpan(t *sim.Thread, rec uint64, class int) {
	start := t.Load64(rec + spanStart)
	pages := int(t.Load64(rec + spanPages))
	size := a.sc.Size(class)
	n := a.sc.ObjectsPerSpan(class, pages)
	var head uint64
	for i := n - 1; i >= 0; i-- {
		obj := start + uint64(i)*size
		t.Store64(obj, head)
		t.MarkRegion(obj, 16, region.Meta) // free-list link granule
		head = obj
	}
	t.Store64(rec+spanClass, uint64(class)+1)
	t.Store64(rec+spanFreeHead, head)
	t.Store64(rec+spanFreeCount, uint64(n))
	t.Store64(rec+spanCapacity, uint64(n))
}

// centralRelease returns an intrusive list of objects to their spans.
func (a *Allocator) centralRelease(t *sim.Thread, class int, head uint64, n int) {
	cb := a.centralBlock(class)
	lock := simsync.NewSpinLock(cb)
	lock.Lock(t)
	sentinel := cb + 8
	for i := 0; i < n && head != 0; i++ {
		obj := head
		head = t.Load64(obj)
		rec := a.pagemapGet(t, obj)
		oldHead := t.Load64(rec + spanFreeHead)
		t.Store64(obj, oldHead)
		t.Store64(rec+spanFreeHead, obj)
		cnt := t.Load64(rec+spanFreeCount) + 1
		t.Store64(rec+spanFreeCount, cnt)
		if oldHead == 0 {
			listInsert(t, sentinel, rec) // back on the nonempty list
		}
		if cnt == t.Load64(rec+spanCapacity) {
			// Fully free span returns to the page heap.
			listRemove(t, rec)
			a.phLock.Lock(t)
			a.phInsertFree(t, rec)
			a.phLock.Unlock(t)
		}
	}
	lock.Unlock(t)
}

// --- thread cache -----------------------------------------------------------

func (a *Allocator) threadCache(t *sim.Thread) uint64 {
	if tc, ok := a.caches[t.ID()]; ok {
		return tc
	}
	tc := t.Mmap(1)
	t.MarkRegion(tc, 1<<mem.PageShift, region.Meta)
	a.caches[t.ID()] = tc
	return tc
}

// Malloc implements alloc.Allocator.
func (a *Allocator) Malloc(t *sim.Thread, size uint64) uint64 {
	a.stats.MallocCalls++
	t.Exec(4) // size-class lookup
	class, ok := a.sc.ClassFor(size)
	if !ok {
		return a.largeAlloc(t, size)
	}
	a.stats.LiveBytes += a.sc.Size(class)
	tc := a.threadCache(t)
	slot := tc + uint64(class)*tcSlot
	head := t.Load64(slot + tcHead)
	if head != 0 {
		// Fast path: pop the thread-local intrusive list.
		t.Store64(slot+tcHead, t.Load64(head))
		t.Store64(slot+tcCount, t.Load64(slot+tcCount)-1)
		t.MarkRegion(head, int(a.sc.Size(class)), region.User)
		return head
	}
	// Refill from the central list.
	batch := a.sc.BatchSize(class)
	objs, got := a.centralFetch(t, class, batch)
	next := t.Load64(objs)
	t.Store64(slot+tcHead, next)
	t.Store64(slot+tcCount, uint64(got-1))
	t.MarkRegion(objs, int(a.sc.Size(class)), region.User)
	return objs
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(t *sim.Thread, addr uint64) {
	a.stats.FreeCalls++
	t.Exec(3)
	rec := a.pagemapGet(t, addr)
	classWord := t.Load64(rec + spanClass)
	if classWord == classLarge {
		a.largeFree(t, rec)
		return
	}
	class := int(classWord - 1)
	a.stats.LiveBytes -= a.sc.Size(class)
	tc := a.threadCache(t)
	slot := tc + uint64(class)*tcSlot
	head := t.Load64(slot + tcHead)
	t.Store64(addr, head)
	t.MarkRegion(addr, 16, region.Meta) // link word overwrites user data
	t.Store64(slot+tcHead, addr)
	count := t.Load64(slot+tcCount) + 1
	t.Store64(slot+tcCount, count)
	if int(count) > a.maxCount[class] {
		a.trim(t, slot, class)
	}
}

// trim returns a batch from an overfull thread-cache list to the central
// free list.
func (a *Allocator) trim(t *sim.Thread, slot uint64, class int) {
	batch := a.sc.BatchSize(class)
	head := t.Load64(slot + tcHead)
	// Detach `batch` objects.
	tail := head
	for i := 1; i < batch; i++ {
		tail = t.Load64(tail)
	}
	rest := t.Load64(tail)
	t.Store64(tail, 0)
	t.Store64(slot+tcHead, rest)
	t.Store64(slot+tcCount, t.Load64(slot+tcCount)-uint64(batch))
	a.centralRelease(t, class, head, batch)
}

// --- large objects ------------------------------------------------------

func (a *Allocator) largeAlloc(t *sim.Thread, size uint64) uint64 {
	pages := int((size + mem.PageSize - 1) >> mem.PageShift)
	a.phLock.Lock(t)
	rec := a.phAlloc(t, pages)
	a.phLock.Unlock(t)
	t.Store64(rec+spanClass, classLarge)
	a.stats.LiveBytes += uint64(pages) << mem.PageShift
	start := t.Load64(rec + spanStart)
	t.MarkRegion(start, pages<<mem.PageShift, region.User)
	return start
}

func (a *Allocator) largeFree(t *sim.Thread, rec uint64) {
	a.stats.LiveBytes -= t.Load64(rec+spanPages) << mem.PageShift
	a.phLock.Lock(t)
	a.phInsertFree(t, rec)
	a.phLock.Unlock(t)
}
