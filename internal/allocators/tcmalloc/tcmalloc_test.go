package tcmalloc

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/alloctest"
	"nextgenmalloc/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}

// TestThreadCacheLIFO: a freed object is returned by the next same-class
// malloc from the same thread — the lock-free fast path.
func TestThreadCacheLIFO(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		p := a.Malloc(th, 64)
		a.Free(th, p)
		if q := a.Malloc(th, 64); q != p {
			t.Errorf("thread cache LIFO reuse failed: freed %#x got %#x", p, q)
		}
	})
	m.Run()
}

// TestBatchRefill: the first allocation of a class pulls a whole batch
// into the thread cache, so subsequent allocations take no lock.
func TestBatchRefill(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		a.Malloc(th, 128) // cold: batch refill, includes locks
		atomicsAfterFirst := th.Counters().AtomicOps
		for i := 0; i < 10; i++ {
			p := a.Malloc(th, 128)
			a.Free(th, p)
		}
		if got := th.Counters().AtomicOps; got != atomicsAfterFirst {
			t.Errorf("fast path took %d atomics; want none", got-atomicsAfterFirst)
		}
	})
	m.Run()
}

// TestSpanReturnToPageHeap: freeing every object of a span eventually
// returns its pages, keeping the heap bounded.
func TestSpanReturnToPageHeap(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		a := New(th)
		const n = 4000
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = a.Malloc(th, 1024)
		}
		grown := a.Stats().HeapBytes
		for _, p := range addrs {
			a.Free(th, p)
		}
		// Allocate the same volume again: the heap must not double.
		for i := range addrs {
			addrs[i] = a.Malloc(th, 1024)
		}
		if got := a.Stats().HeapBytes; got > grown+(1<<21) {
			t.Errorf("heap grew from %d to %d; spans not recycled", grown, got)
		}
		for _, p := range addrs {
			a.Free(th, p)
		}
	})
	m.Run()
}

func TestBadFreeFaults(t *testing.T) {
	alloctest.RunBadFree(t, alloctest.Options{
		Factory: func(th *sim.Thread, m *sim.Machine) alloc.Allocator {
			return New(th)
		},
	})
}
