// Package gpu models the paper's §3.3.1 heterogeneous extension: a
// GPU-style device whose memory management runs on a dedicated engine
// core, with *asynchronous allocation folded into the asynchronous copy
// stream* ("Asynchronous allocation can be used, which can also be part
// of the asynchronous CUDA memory copy").
//
// The model is a coherent unified-memory system (UVM with host-resident
// pages, as on integrated or coherently-attached GPUs): device buffers
// live in hugepage-backed shared memory, the engine core performs
// allocation, DMA copies, and kernel execution in stream order, and the
// CPU overlaps its own work with the stream exactly as a CUDA program
// overlaps host code with an async stream.
//
// The engine's allocator is a single-threaded segregated slab engine in
// the NextGen-Malloc mould: no locks, no atomics, metadata in its own
// region — the paper's point that "both CPU and GPU memory allocators
// can be decoupled from user programs".
package gpu

import (
	"fmt"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
)

// Stream operation codes. The T variants address the buffer indirectly
// as "the result of ticket a", so a whole
// alloc -> copy -> kernel -> copy-back -> free chain can be queued
// without the CPU ever waiting for the allocation — the paper's
// "asynchronous allocation ... part of the asynchronous CUDA memory
// copy".
const (
	OpAlloc    = 1 // a = size           -> result = buffer address
	OpFree     = 2 // a = address
	OpCopy     = 3 // a = dst, b = src, n bytes (DMA through the engine core)
	OpKernel   = 4 // a = buffer, n bytes, b = flops per 8-byte element
	OpCopyInT  = 5 // a = alloc ticket (dst), b = src, n bytes
	OpCopyOutT = 6 // a = dst, b = alloc ticket (src), n bytes
	OpKernelT  = 7 // a = alloc ticket, n bytes, b = flops
	OpFreeT    = 8 // a = alloc ticket
)

// Command descriptor layout (64-byte slots in shared memory).
const (
	cmdOp     = 0
	cmdA      = 8
	cmdB      = 16
	cmdN      = 24
	cmdResult = 32
	cmdBytes  = 64
	cmdDepth  = 64 // in-flight window
)

// Shared-page layout: completion counter line, command array, ring.
const (
	completedOff = 0
	cmdOff       = 64
	ringOff      = cmdOff + cmdDepth*cmdBytes
)

// Ticket identifies a queued stream operation.
type Ticket uint64

// Engine is the device-side service: create it on the application
// thread, spawn Serve on the engine core.
type Engine struct {
	page uint64
	req  *ring.SPSC
	seq  uint64 // next ticket (host mirror, app side)

	// Device heap state (engine-core private; plain loads/stores).
	sc         *alloc.SizeClasses
	classCur   []uint64
	classSlabs [][]uint64 // every slab of a class (engine-side index)
	freeSpans  []span
	meta       uint64
	metaOff    uint64
	metaLimit  uint64
	pagemap    map[uint64]uint64 // device page -> slab rec (host map; the
	// engine charges the same two loads a radix walk costs via rtCharge)

	stats Stats
}

type span struct{ base, pages uint64 }

// Stats counts engine activity.
type Stats struct {
	Allocs, Frees, Copies, Kernels uint64
	BytesCopied                    uint64
}

// New builds the engine's shared state; t is the application thread.
func New(t *sim.Thread) *Engine {
	pages := (ringOff + ring.BytesFor(cmdDepth) + mem.PageSize - 1) >> mem.PageShift
	page := t.Mmap(pages)
	e := &Engine{
		page:    page,
		req:     ring.New(page+ringOff, cmdDepth),
		sc:      alloc.NewSizeClasses(),
		pagemap: make(map[uint64]uint64),
	}
	e.classCur = make([]uint64, e.sc.NumClasses())
	e.classSlabs = make([][]uint64, e.sc.NumClasses())
	return e
}

// Stats returns engine counters.
func (e *Engine) Stats() Stats { return e.stats }

func (e *Engine) cmdSlot(ticket Ticket) uint64 {
	return e.page + cmdOff + uint64(ticket%cmdDepth)*cmdBytes
}

// enqueue writes a descriptor and publishes it; blocks while the
// in-flight window is full (cmdDepth outstanding ops), so a descriptor
// slot is never rewritten before the engine has consumed it.
func (e *Engine) enqueue(t *sim.Thread, op, a, b, n uint64) Ticket {
	for e.seq >= cmdDepth && t.AtomicLoad64(e.page+completedOff)+cmdDepth <= e.seq {
		t.Pause(16)
	}
	ticket := Ticket(e.seq)
	e.seq++
	slot := e.cmdSlot(ticket)
	t.Store64(slot+cmdOp, op)
	t.Store64(slot+cmdA, a)
	t.Store64(slot+cmdB, b)
	t.Store64(slot+cmdN, n)
	e.req.Push(t, op, uint64(ticket))
	return ticket
}

// AllocAsync queues a device allocation.
func (e *Engine) AllocAsync(t *sim.Thread, size uint64) Ticket {
	return e.enqueue(t, OpAlloc, size, 0, 0)
}

// FreeAsync queues a device free.
func (e *Engine) FreeAsync(t *sim.Thread, addr uint64) Ticket {
	return e.enqueue(t, OpFree, addr, 0, 0)
}

// CopyAsync queues a DMA copy of n bytes.
func (e *Engine) CopyAsync(t *sim.Thread, dst, src, n uint64) Ticket {
	return e.enqueue(t, OpCopy, dst, src, n)
}

// CopyInAsync queues a copy into the buffer a pending AllocAsync will
// return (stream-ordered, so the allocation has completed by then).
func (e *Engine) CopyInAsync(t *sim.Thread, dst Ticket, src, n uint64) Ticket {
	return e.enqueue(t, OpCopyInT, uint64(dst), src, n)
}

// CopyOutAsync queues a copy out of a ticket-addressed buffer.
func (e *Engine) CopyOutAsync(t *sim.Thread, dst uint64, src Ticket, n uint64) Ticket {
	return e.enqueue(t, OpCopyOutT, dst, uint64(src), n)
}

// KernelTAsync queues a kernel over a ticket-addressed buffer.
func (e *Engine) KernelTAsync(t *sim.Thread, buf Ticket, n, flops uint64) Ticket {
	return e.enqueue(t, OpKernelT, uint64(buf), flops, n)
}

// FreeTAsync queues a free of a ticket-addressed buffer.
func (e *Engine) FreeTAsync(t *sim.Thread, buf Ticket) Ticket {
	return e.enqueue(t, OpFreeT, uint64(buf), 0, 0)
}

// resolve turns an alloc ticket into its buffer address (engine side;
// stream order guarantees the alloc already executed).
func (e *Engine) resolve(t *sim.Thread, ticket uint64) uint64 {
	return t.Load64(e.cmdSlot(Ticket(ticket)) + cmdResult)
}

// KernelAsync queues a kernel over a buffer: each 8-byte element is
// loaded, flops ALU ops run, and the result is stored back.
func (e *Engine) KernelAsync(t *sim.Thread, buf, n, flops uint64) Ticket {
	return e.enqueue(t, OpKernel, buf, flops, n)
}

// Wait blocks the application thread until ticket has completed.
func (e *Engine) Wait(t *sim.Thread, ticket Ticket) {
	for t.AtomicLoad64(e.page+completedOff) <= uint64(ticket) {
		t.Pause(16)
	}
}

// Result reads a completed operation's result word (e.g. OpAlloc's
// buffer address). Only valid until cmdDepth further ops are queued.
func (e *Engine) Result(t *sim.Thread, ticket Ticket) uint64 {
	return t.Load64(e.cmdSlot(ticket) + cmdResult)
}

// Sync waits for everything queued so far.
func (e *Engine) Sync(t *sim.Thread) {
	if e.seq > 0 {
		e.Wait(t, Ticket(e.seq-1))
	}
}

// --- engine-core side -------------------------------------------------------

// Serve is the engine core's daemon body.
func (e *Engine) Serve(t *sim.Thread) {
	var completed uint64
	for {
		_, w1, ok := e.req.TryPop(t)
		if !ok {
			if t.Stopping() {
				return
			}
			t.Pause(32)
			continue
		}
		e.execute(t, Ticket(w1))
		completed++
		t.AtomicStore64(e.page+completedOff, completed)
	}
}

func (e *Engine) execute(t *sim.Thread, ticket Ticket) {
	slot := e.cmdSlot(ticket)
	op := t.Load64(slot + cmdOp)
	a := t.Load64(slot + cmdA)
	b := t.Load64(slot + cmdB)
	n := t.Load64(slot + cmdN)
	switch op {
	case OpAlloc:
		e.stats.Allocs++
		t.Store64(slot+cmdResult, e.deviceMalloc(t, a))
	case OpFree:
		e.stats.Frees++
		e.deviceFree(t, a)
	case OpFreeT:
		e.stats.Frees++
		e.deviceFree(t, e.resolve(t, a))
	case OpCopyInT:
		e.stats.Copies++
		e.stats.BytesCopied += n
		dst := e.resolve(t, a)
		for off := uint64(0); off < n; off += 8 {
			t.Store64(dst+off, t.Load64(b+off))
		}
	case OpCopyOutT:
		e.stats.Copies++
		e.stats.BytesCopied += n
		src := e.resolve(t, b)
		for off := uint64(0); off < n; off += 8 {
			t.Store64(a+off, t.Load64(src+off))
		}
	case OpKernelT:
		e.stats.Kernels++
		buf := e.resolve(t, a)
		for off := uint64(0); off < n; off += 8 {
			v := t.Load64(buf + off)
			t.Exec(int(b))
			t.Store64(buf+off, v*3+1)
		}
	case OpCopy:
		e.stats.Copies++
		e.stats.BytesCopied += n
		// The copy engine streams line-sized chunks through the engine
		// core (a coherent DMA).
		for off := uint64(0); off < n; off += 8 {
			t.Store64(a+off, t.Load64(b+off))
		}
	case OpKernel:
		e.stats.Kernels++
		for off := uint64(0); off < n; off += 8 {
			v := t.Load64(a + off)
			t.Exec(int(b))
			t.Store64(a+off, v*3+1)
		}
	default:
		panic(fmt.Sprintf("gpu: bad op %d", op))
	}
}

// --- device heap (single-threaded slab engine, NextGen style) --------------

const devSpanPages = 512

// rtCharge models the engine's radix page-table walk (two dependent
// loads on metadata it owns).
func (e *Engine) rtCharge(t *sim.Thread) {
	if e.meta != 0 {
		t.Load64(e.meta)
		t.Load64(e.meta + 8)
	}
}

func (e *Engine) newRec(t *sim.Thread) uint64 {
	const recBytes = 64 + 2*512
	if e.meta == 0 || e.metaOff+recBytes > e.metaLimit {
		e.meta = t.MmapMeta(32)
		e.metaOff = 64 // first line reserved for rtCharge
		e.metaLimit = 32 << mem.PageShift
	}
	r := e.meta + e.metaOff
	e.metaOff += recBytes
	return r
}

// Slab record offsets (index-stack layout, as in internal/core).
const (
	dBase  = 0
	dClass = 8
	dTop   = 16
	dCap   = 24
	dStack = 64
)

func (e *Engine) deviceMalloc(t *sim.Thread, size uint64) uint64 {
	class, ok := e.sc.ClassFor(size)
	if !ok {
		pages := int((size + mem.PageSize - 1) >> mem.PageShift)
		return t.MmapHuge(pages) // large buffers map directly
	}
	rec := e.classCur[class]
	if rec == 0 || t.Load64(rec+dTop) == 0 {
		rec = 0
		// Rotate to another slab of the class with free blocks.
		for _, r := range e.classSlabs[class] {
			t.Exec(1)
			if t.Load64(r+dTop) > 0 {
				rec = r
				break
			}
		}
		if rec == 0 {
			rec = e.freshSlab(t, class)
		}
		e.classCur[class] = rec
	}
	top := t.Load64(rec + dTop)
	t.Store64(rec+dTop, top-1)
	idx := t.Load16(rec + dStack + (top-1)*2)
	return t.Load64(rec+dBase) + idx*e.sc.Size(class)
}

func (e *Engine) freshSlab(t *sim.Thread, class int) uint64 {
	pages := e.sc.SpanPages(class)
	var base uint64
	for i, sp := range e.freeSpans {
		if sp.pages >= uint64(pages) {
			base = sp.base
			e.freeSpans[i].base += uint64(pages) << mem.PageShift
			e.freeSpans[i].pages -= uint64(pages)
			break
		}
	}
	if base == 0 {
		base = t.MmapHuge(devSpanPages)
		e.freeSpans = append(e.freeSpans, span{
			base:  base + uint64(pages)<<mem.PageShift,
			pages: devSpanPages - uint64(pages),
		})
	}
	rec := e.newRec(t)
	n := e.sc.ObjectsPerSpan(class, pages)
	if n > 512 {
		n = 512
	}
	t.Store64(rec+dBase, base)
	t.Store64(rec+dClass, uint64(class))
	t.Store64(rec+dCap, uint64(n))
	for i := 0; i < n; i += 4 {
		var w uint64
		for j := 0; j < 4 && i+j < n; j++ {
			w |= uint64(i+j) << (16 * j)
		}
		t.Store64(rec+dStack+uint64(i)*2, w)
	}
	t.Store64(rec+dTop, uint64(n))
	for p := uint64(0); p < uint64(pages); p++ {
		e.pagemap[base>>mem.PageShift+p] = rec
	}
	e.classSlabs[class] = append(e.classSlabs[class], rec)
	return rec
}

func (e *Engine) deviceFree(t *sim.Thread, addr uint64) {
	e.rtCharge(t)
	rec, ok := e.pagemap[addr>>mem.PageShift]
	if !ok {
		// Directly mapped large buffer: leave it mapped (the stream test
		// workloads recycle via the slab classes).
		return
	}
	class := int(t.Load64(rec + dClass))
	t.Exec(3)
	idx := (addr - t.Load64(rec+dBase)) / e.sc.Size(class)
	top := t.Load64(rec + dTop)
	t.Store16(rec+dStack+top*2, idx)
	t.Store64(rec+dTop, top+1)
}
