package gpu

import (
	"testing"

	"nextgenmalloc/internal/sim"
)

// withEngine runs app with a live engine daemon.
func withEngine(t *testing.T, app func(th *sim.Thread, e *Engine)) {
	m := sim.New(sim.ScaledConfig())
	var e *Engine
	m.SpawnDaemon("gpu-engine", m.Cores()-1, func(th *sim.Thread) {
		for e == nil {
			if th.Stopping() {
				return
			}
			th.Pause(100)
		}
		e.Serve(th)
	})
	m.Spawn("app", 0, func(th *sim.Thread) {
		e = New(th)
		app(th, e)
	})
	m.Run()
}

func TestAllocCopyKernelRoundTrip(t *testing.T) {
	withEngine(t, func(th *sim.Thread, e *Engine) {
		// Host staging buffer with known contents.
		src := th.Mmap(1)
		for i := uint64(0); i < 16; i++ {
			th.Store64(src+i*8, i)
		}
		ta := e.AllocAsync(th, 128)
		e.Wait(th, ta)
		buf := e.Result(th, ta)
		if buf == 0 {
			t.Fatal("device alloc returned 0")
		}
		e.CopyAsync(th, buf, src, 128)
		tk := e.KernelAsync(th, buf, 128, 4)
		e.Wait(th, tk)
		// Kernel computed v*3+1 on every element.
		for i := uint64(0); i < 16; i++ {
			if got := th.Load64(buf + i*8); got != i*3+1 {
				t.Fatalf("element %d = %d, want %d", i, got, i*3+1)
			}
		}
		e.FreeAsync(th, buf)
		e.Sync(th)
		st := e.Stats()
		if st.Allocs != 1 || st.Copies != 1 || st.Kernels != 1 || st.Frees != 1 {
			t.Errorf("stats %+v", st)
		}
	})
}

// TestStreamOrdering: operations complete in queue order, so a copy
// into a buffer allocated by an earlier async alloc is safe without an
// intermediate wait (the CUDA stream contract).
func TestStreamOrdering(t *testing.T) {
	withEngine(t, func(th *sim.Thread, e *Engine) {
		src := th.Mmap(1)
		th.Store64(src, 0xfeed)
		// Queue alloc+copy back-to-back; only wait at the end.
		ta := e.AllocAsync(th, 64)
		// The copy's destination isn't known yet on the app side; wait
		// for the alloc ticket only (still async relative to the rest).
		e.Wait(th, ta)
		buf := e.Result(th, ta)
		e.CopyAsync(th, buf, src, 64)
		e.Sync(th)
		if th.Load64(buf) != 0xfeed {
			t.Error("stream-ordered copy lost data")
		}
	})
}

// TestDeviceHeapReuse: freed device blocks are reused by later allocs.
func TestDeviceHeapReuse(t *testing.T) {
	withEngine(t, func(th *sim.Thread, e *Engine) {
		// 128 allocations of 256 bytes fill exactly four 32-object slabs,
		// so a fresh allocation after the frees can only be a reuse.
		const n = 128
		seen := map[uint64]bool{}
		for i := 0; i < n; i++ {
			ta := e.AllocAsync(th, 256)
			e.Wait(th, ta)
			seen[e.Result(th, ta)] = true
		}
		if len(seen) != n {
			t.Fatalf("duplicate live addresses: %d unique of %d", len(seen), n)
		}
		// Free them all, allocate again: addresses recycle.
		for addr := range seen {
			e.FreeAsync(th, addr)
		}
		e.Sync(th)
		reused := 0
		for i := 0; i < n; i++ {
			ta := e.AllocAsync(th, 256)
			e.Wait(th, ta)
			if seen[e.Result(th, ta)] {
				reused++
			}
		}
		if reused != n {
			t.Errorf("only %d/%d device blocks reused", reused, n)
		}
	})
}

// TestWindowBackpressure: queuing far more ops than the window holds
// must not corrupt descriptors.
func TestWindowBackpressure(t *testing.T) {
	withEngine(t, func(th *sim.Thread, e *Engine) {
		var tickets []Ticket
		for i := 0; i < 50; i++ {
			tickets = append(tickets, e.AllocAsync(th, 64))
		}
		// Free them as results arrive (reading within the window).
		for _, ta := range tickets {
			e.Wait(th, ta)
			e.FreeAsync(th, e.Result(th, ta))
		}
		// Now a long burst exceeding the window.
		for i := 0; i < 300; i++ {
			ta := e.AllocAsync(th, 64)
			e.Wait(th, ta)
			e.FreeAsync(th, e.Result(th, ta))
		}
		e.Sync(th)
		if st := e.Stats(); st.Allocs != 350 || st.Frees != 350 {
			t.Errorf("stats %+v", st)
		}
	})
}
