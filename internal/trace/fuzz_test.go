package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode: Decode must survive arbitrary bytes — no panic, no
// runaway allocation — and any op stream it accepts must survive an
// Encode/Decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	valid := func(ops []Op) []byte {
		var buf bytes.Buffer
		if err := (&Trace{Ops: ops}).Encode(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(nil))
	f.Add(valid([]Op{{Kind: OpMalloc, Arg: 64}, {Kind: OpFree, Arg: 0}}))
	f.Add(valid([]Op{{Kind: OpMalloc, Arg: 1 << 40}}))
	f.Add([]byte{})                               // short header
	f.Add([]byte{'N', 'G', 'T', 2})               // wrong version
	f.Add([]byte{'N', 'G', 'T', 1})               // missing count
	f.Add([]byte{'N', 'G', 'T', 1, 0xff, 0xff})   // truncated varint count
	f.Add([]byte{'N', 'G', 'T', 1, 3, 1, 64})     // count 3, one op, truncated
	f.Add([]byte{'N', 'G', 'T', 1, 1, 9, 0})      // bad op kind
	f.Add(valid([]Op{{Kind: OpMalloc, Arg: 8}})[:6]) // truncated mid-op
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if len(again.Ops) != len(tr.Ops) {
			t.Fatalf("round trip changed op count: %d vs %d", len(again.Ops), len(tr.Ops))
		}
		for i := range tr.Ops {
			if tr.Ops[i] != again.Ops[i] {
				t.Fatalf("round trip changed op %d: %+v vs %+v", i, tr.Ops[i], again.Ops[i])
			}
		}
	})
}
