// Package trace records and replays allocation traces: the sequence of
// malloc sizes and the matching of frees to prior mallocs, independent
// of the addresses any particular allocator returned. Replaying one
// workload's trace against every allocator gives an apples-to-apples
// comparison of placement and metadata behaviour for identical request
// streams.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/sim"
)

// Op kinds.
const (
	OpMalloc = byte(1)
	OpFree   = byte(2)
)

// Op is one allocation event. Malloc ops carry the request size; free
// ops carry the index (malloc ordinal) of the allocation they release.
type Op struct {
	Kind byte
	Arg  uint64
}

// Trace is an ordered allocation event stream.
type Trace struct {
	Ops []Op
}

// Mallocs counts malloc events.
func (tr *Trace) Mallocs() int {
	n := 0
	for _, op := range tr.Ops {
		if op.Kind == OpMalloc {
			n++
		}
	}
	return n
}

// Recorder wraps an allocator and captures the request stream flowing
// through it.
type Recorder struct {
	inner alloc.Allocator
	trace Trace
	index map[uint64]uint64 // live addr -> malloc ordinal
	next  uint64
}

// NewRecorder wraps inner.
func NewRecorder(inner alloc.Allocator) *Recorder {
	return &Recorder{inner: inner, index: make(map[uint64]uint64)}
}

// Name implements alloc.Allocator.
func (r *Recorder) Name() string { return r.inner.Name() + "+trace" }

// Malloc implements alloc.Allocator.
func (r *Recorder) Malloc(t *sim.Thread, size uint64) uint64 {
	addr := r.inner.Malloc(t, size)
	r.trace.Ops = append(r.trace.Ops, Op{Kind: OpMalloc, Arg: size})
	r.index[addr] = r.next
	r.next++
	return addr
}

// Free implements alloc.Allocator.
func (r *Recorder) Free(t *sim.Thread, addr uint64) {
	ord, ok := r.index[addr]
	if !ok {
		panic(fmt.Sprintf("trace: free of unrecorded address %#x", addr))
	}
	delete(r.index, addr)
	r.trace.Ops = append(r.trace.Ops, Op{Kind: OpFree, Arg: ord})
	r.inner.Free(t, addr)
}

// Stats implements alloc.Allocator.
func (r *Recorder) Stats() alloc.Stats { return r.inner.Stats() }

// Flush implements alloc.Flusher when the inner allocator does.
func (r *Recorder) Flush(t *sim.Thread) {
	if f, ok := r.inner.(alloc.Flusher); ok {
		f.Flush(t)
	}
}

// Trace returns the recorded stream.
func (r *Recorder) Trace() *Trace { return &r.trace }

// Replay drives allocator a with the recorded stream on thread t and
// frees any allocations that remain live at the end.
func Replay(t *sim.Thread, a alloc.Allocator, tr *Trace) {
	addrs := make(map[uint64]uint64, 1024) // ordinal -> addr
	var ord uint64
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpMalloc:
			addrs[ord] = a.Malloc(t, op.Arg)
			ord++
		case OpFree:
			addr, ok := addrs[op.Arg]
			if !ok {
				panic(fmt.Sprintf("trace: replay frees unknown ordinal %d", op.Arg))
			}
			delete(addrs, op.Arg)
			a.Free(t, addr)
		default:
			panic(fmt.Sprintf("trace: bad op kind %d", op.Kind))
		}
	}
	// Free the leftovers in ordinal order so replays stay deterministic.
	leftover := make([]uint64, 0, len(addrs))
	for o := range addrs {
		leftover = append(leftover, o)
	}
	sort.Slice(leftover, func(i, j int) bool { return leftover[i] < leftover[j] })
	for _, o := range leftover {
		a.Free(t, addrs[o])
	}
}

// magic identifies the binary encoding (version 1).
var magic = [4]byte{'N', 'G', 'T', 1}

// Encode writes the trace in the compact binary format.
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(buf[:], uint64(len(tr.Ops)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, op := range tr.Ops {
		buf[0] = op.Kind
		n := binary.PutUvarint(buf[1:], op.Arg)
		if _, err := bw.Write(buf[:n+1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %v", m)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: bad count: %w", err)
	}
	// The count is attacker-controlled input: cap the preallocation hint
	// so a corrupt header can't drive a multi-gigabyte make. The slice
	// still grows to the real op count as ops decode.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	tr := &Trace{Ops: make([]Op, 0, capHint)}
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		if kind != OpMalloc && kind != OpFree {
			return nil, fmt.Errorf("trace: op %d: bad kind %d", i, kind)
		}
		arg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d arg: %w", i, err)
		}
		tr.Ops = append(tr.Ops, Op{Kind: kind, Arg: arg})
	}
	return tr, nil
}
