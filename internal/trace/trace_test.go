package trace

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
	"testing/quick"

	"nextgenmalloc/internal/allocators/bump"
	"nextgenmalloc/internal/allocators/mimalloc"
	"nextgenmalloc/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{OpMalloc, 64}, {OpMalloc, 128}, {OpFree, 0}, {OpMalloc, 1 << 20}, {OpFree, 2}, {OpFree, 1},
	}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("op count %d != %d", len(got.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: %v != %v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(kinds []bool, args []uint64) bool {
		tr := &Trace{}
		for i, k := range kinds {
			op := Op{Kind: OpMalloc}
			if !k {
				op.Kind = OpFree
			}
			if i < len(args) {
				op.Arg = args[i]
			}
			tr.Ops = append(tr.Ops, op)
		}
		var buf bytes.Buffer
		if tr.Encode(&buf) != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Bad op kind.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(1) // count 1
	buf.WriteByte(9) // bad kind
	buf.WriteByte(0)
	if _, err := Decode(&buf); err == nil {
		t.Error("bad op kind accepted")
	}
}

// TestRecordReplay: recording a request stream through one allocator and
// replaying it against another preserves the call sequence and frees
// everything live at the end.
func TestRecordReplay(t *testing.T) {
	var tr *Trace
	m := sim.New(sim.ScaledConfig())
	m.Spawn("rec", 0, func(th *sim.Thread) {
		rec := NewRecorder(bump.New(th))
		rng := uint64(5)
		live := make([]uint64, 50)
		for i := 0; i < 800; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			s := rng >> 33 % 50
			if live[s] != 0 {
				rec.Free(th, live[s])
			}
			live[s] = rec.Malloc(th, 16+rng>>40%200)
		}
		tr = rec.Trace()
	})
	m.Run()

	if tr.Mallocs() != 800 {
		t.Fatalf("recorded %d mallocs, want 800", tr.Mallocs())
	}

	m2 := sim.New(sim.ScaledConfig())
	m2.Spawn("rep", 0, func(th *sim.Thread) {
		a := mimalloc.New(th)
		Replay(th, a, tr)
		st := a.Stats()
		if st.MallocCalls != 800 {
			t.Errorf("replay made %d mallocs, want 800", st.MallocCalls)
		}
		if st.FreeCalls != st.MallocCalls {
			t.Errorf("replay leaked: %d mallocs vs %d frees", st.MallocCalls, st.FreeCalls)
		}
	})
	m2.Run()
}

func TestRecorderPanicsOnForeignFree(t *testing.T) {
	m := sim.New(sim.ScaledConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		rec := NewRecorder(bump.New(th))
		rec.Malloc(th, 32)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on unrecorded free")
			}
		}()
		rec.Free(th, 0x1234)
	})
	m.Run()
}

// TestDecodeTruncatedInputs: every truncation of a valid encoding must
// produce an error — never a panic and never a silently short trace.
func TestDecodeTruncatedInputs(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{OpMalloc, 64}, {OpMalloc, 300}, {OpFree, 0}, {OpMalloc, 1 << 40}, {OpFree, 1},
	}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		got, err := Decode(bytes.NewReader(full[:n]))
		if err == nil {
			t.Errorf("truncation to %d/%d bytes decoded silently (%d ops)", n, len(full), len(got.Ops))
		}
	}
}

// TestDecodeHugeCountDoesNotPreallocate: a corrupt header claiming
// billions of ops must fail cleanly once the data runs out, without
// first allocating a slice sized to the lie.
func TestDecodeHugeCountDoesNotPreallocate(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 1<<40) // a trillion ops, zero present
	buf.Write(tmp[:n])
	before := heapAllocBytes()
	_, err := Decode(&buf)
	grew := heapAllocBytes() - before
	if err == nil {
		t.Fatal("huge-count empty trace accepted")
	}
	// The 1<<16 cap bounds the hint to ~1 MiB of Ops; anything beyond a
	// few MiB means the count drove the allocation.
	if grew > 8<<20 {
		t.Errorf("decode of empty payload grew the heap by %d bytes", grew)
	}
}

func heapAllocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
