package simsync

import (
	"testing"

	"nextgenmalloc/internal/sim"
)

// TestSpinLockMutualExclusion: N threads increment a shared counter with
// plain (non-atomic) load/store under the lock; the total is only
// correct if the lock really excludes.
func TestSpinLockMutualExclusion(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.Quantum = 16 // interleave aggressively
	m := sim.New(cfg)
	page, _ := m.Kernel().Mmap(1)
	lock := NewSpinLock(page)
	counter := page + 64
	const n, per = 4, 400
	for i := 0; i < n; i++ {
		m.Spawn("t", i, func(th *sim.Thread) {
			for k := 0; k < per; k++ {
				lock.Lock(th)
				v := th.Load64(counter)
				th.Exec(3) // widen the race window
				th.Store64(counter, v+1)
				lock.Unlock(th)
			}
		})
	}
	m.Run()
	paddr, _ := m.AddressSpace().Translate(counter)
	if got := m.AddressSpace().Phys().Load(paddr, 8); got != n*per {
		t.Errorf("counter = %d, want %d (lock failed to exclude)", got, n*per)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	m.Spawn("t", 0, func(th *sim.Thread) {
		page := th.Mmap(1)
		l := NewSpinLock(page)
		if !l.TryLock(th) {
			t.Error("TryLock on free lock failed")
		}
		if l.TryLock(th) {
			t.Error("TryLock on held lock succeeded")
		}
		l.Unlock(th)
		if !l.TryLock(th) {
			t.Error("TryLock after unlock failed")
		}
	})
	m.Run()
}

// TestTicketLockFIFOAndExclusion: same counter check for the ticket lock.
func TestTicketLockExclusion(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	cfg.Quantum = 16
	m := sim.New(cfg)
	page, _ := m.Kernel().Mmap(1)
	lock := NewTicketLock(page)
	counter := page + 128
	const n, per = 3, 300
	for i := 0; i < n; i++ {
		m.Spawn("t", i, func(th *sim.Thread) {
			for k := 0; k < per; k++ {
				lock.Lock(th)
				v := th.Load64(counter)
				th.Exec(2)
				th.Store64(counter, v+1)
				lock.Unlock(th)
			}
		})
	}
	m.Run()
	paddr, _ := m.AddressSpace().Translate(counter)
	if got := m.AddressSpace().Phys().Load(paddr, 8); got != n*per {
		t.Errorf("counter = %d, want %d", got, n*per)
	}
}
