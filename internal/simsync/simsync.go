// Package simsync provides synchronization primitives built from the
// simulator's atomic operations, with their lock words living in
// simulated memory.
//
// These are the "software mutex locks ... controlling access to
// metadata" whose cost the paper calls a critical bottleneck (§2.3):
// every acquisition is a real simulated RMW, every contended acquisition
// ping-pongs a real simulated cache line.
package simsync

import "nextgenmalloc/internal/sim"

// SpinLock is a test-and-test-and-set spinlock with exponential backoff.
// The zero value is unusable; place the lock word with New or At.
type SpinLock struct {
	addr uint64
}

// NewSpinLock places a spinlock at addr (an 8-byte word the caller has
// mapped and zeroed).
func NewSpinLock(addr uint64) SpinLock { return SpinLock{addr: addr} }

// Addr returns the lock word's address.
func (l SpinLock) Addr() uint64 { return l.addr }

// Lock acquires the lock, spinning with backoff under contention. The
// contended wait is declared to the scheduler's time warp: once the
// backoff caps, a held lock makes every round an identical lock-word
// load plus pause, which the engine skips in bulk (the simulated spin
// cost is charged exactly; only host stepping is saved).
func (l SpinLock) Lock(t *sim.Thread) {
	backoff := 4
	addrs := [1]uint64{l.addr}
	t.WarpLoop(sim.WaitSpec{
		Round: func() bool {
			// Test-and-test-and-set: spin on a plain load first so the line
			// stays Shared until it looks free.
			if t.Load64(l.addr) == 0 && t.CAS64(l.addr, 0, 1) {
				return true
			}
			t.Pause(backoff)
			if backoff < 256 {
				backoff *= 2
			}
			return false
		},
		Addrs: func() []uint64 { return addrs[:] },
	})
}

// TryLock attempts a single acquisition.
func (l SpinLock) TryLock(t *sim.Thread) bool {
	return t.Load64(l.addr) == 0 && t.CAS64(l.addr, 0, 1)
}

// Unlock releases the lock.
func (l SpinLock) Unlock(t *sim.Thread) {
	t.AtomicStore64(l.addr, 0)
}

// TicketLock is a fair FIFO lock: two adjacent 8-byte words
// (next-ticket, now-serving).
type TicketLock struct {
	addr uint64
}

// NewTicketLock places a ticket lock at addr (16 mapped, zeroed bytes).
func NewTicketLock(addr uint64) TicketLock { return TicketLock{addr: addr} }

// Lock takes a ticket and waits for service. The wait is declared to
// the time warp (one now-serving load per round).
func (l TicketLock) Lock(t *sim.Thread) {
	ticket := t.FetchAdd64(l.addr, 1)
	addrs := [1]uint64{l.addr + 8}
	t.WarpLoop(sim.WaitSpec{
		Round: func() bool {
			if t.Load64(l.addr+8) == ticket {
				return true
			}
			t.Pause(16)
			return false
		},
		Addrs: func() []uint64 { return addrs[:] },
	})
}

// Unlock advances the serving counter.
func (l TicketLock) Unlock(t *sim.Thread) {
	serving := t.Load64(l.addr + 8)
	t.AtomicStore64(l.addr+8, serving+1)
}
