package harness

import (
	"testing"

	"nextgenmalloc/internal/workload"
)

// TestSmokeAllAllocators runs a small xalanc trace on every allocator
// kind; it catches gross allocator bugs (page faults panic the sim).
func TestSmokeAllAllocators(t *testing.T) {
	for _, kind := range Kinds {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			w := workload.DefaultXalanc(2000)
			w.NodeSlots = 1500
			res := Run(Options{Allocator: kind, Workload: w})
			if res.Total.Instructions == 0 {
				t.Fatal("no instructions retired")
			}
			if res.AllocStats.MallocCalls == 0 {
				t.Fatal("no mallocs recorded")
			}
			t.Logf("%-18s cycles=%d instr=%d llcL=%d llcS=%d tlbL=%d frag=%.2f",
				kind, res.Total.Cycles, res.Total.Instructions,
				res.Total.LLCLoadMisses, res.Total.LLCStoreMisses,
				res.Total.DTLBLoadMisses, res.AllocStats.Fragmentation())
		})
	}
}

// TestSmokeMultithread exercises the cross-thread free paths.
func TestSmokeMultithread(t *testing.T) {
	for _, kind := range []string{"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc", "nextgen"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			w := &workload.Xmalloc{NThreads: 4, OpsPerThread: 800, TouchBytes: 64, Seed: 3}
			res := Run(Options{Allocator: kind, Workload: w})
			if res.AllocStats.MallocCalls < 4*800 {
				t.Fatalf("expected >= 3200 mallocs, got %d", res.AllocStats.MallocCalls)
			}
			if res.AllocStats.FreeCalls != res.AllocStats.MallocCalls {
				t.Fatalf("mallocs %d != frees %d", res.AllocStats.MallocCalls, res.AllocStats.FreeCalls)
			}
		})
	}
}

// TestDeterminism: identical options must give identical counters.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		w := workload.DefaultXalanc(1500)
		w.NodeSlots = 1000
		return Run(Options{Allocator: "nextgen", Workload: w})
	}
	a, b := run(), run()
	if a.Total != b.Total {
		t.Fatalf("nondeterministic totals:\n%+v\n%+v", a.Total, b.Total)
	}
}
