package harness

import (
	"fmt"
	"reflect"
	"testing"
)

// The Add-coverage walkers mirror internal/ring's: fill every uint64
// leaf with a distinct value, Add, and verify leaf-by-leaf that the sum
// landed. A telemetry field added to OffloadTelemetry (or to a nested
// ring.Stats) without a matching line in Add fails here by construction.

func walkFill(v reflect.Value, next *uint64, mul uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next * mul)
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			walkFill(v.Index(i), next, mul)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			walkFill(v.Field(i), next, mul)
		}
	default:
		panic("walkFill: unhandled kind " + v.Kind().String())
	}
}

func walkCheck(t *testing.T, path string, a, b, sum reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Uint64:
		if sum.Uint() != a.Uint()+b.Uint() {
			t.Errorf("%s: Add dropped the field (%d + %d gave %d)", path, a.Uint(), b.Uint(), sum.Uint())
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < a.Len(); i++ {
			walkCheck(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), sum.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			walkCheck(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i), sum.Field(i))
		}
	default:
		t.Fatalf("%s: unhandled kind %s", path, a.Kind())
	}
}

func TestOffloadTelemetryAddCoversEveryField(t *testing.T) {
	var a, b OffloadTelemetry
	n := uint64(0)
	walkFill(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	walkFill(reflect.ValueOf(&b).Elem(), &n, 1000)
	sum := a
	sum.Add(b)
	walkCheck(t, "OffloadTelemetry",
		reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum))
}

func TestResilienceTelemetryAddCoversEveryField(t *testing.T) {
	var a, b ResilienceTelemetry
	n := uint64(0)
	walkFill(reflect.ValueOf(&a).Elem(), &n, 1)
	n = 0
	walkFill(reflect.ValueOf(&b).Elem(), &n, 1000)
	sum := a
	sum.Add(b)
	walkCheck(t, "ResilienceTelemetry",
		reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum))
}
