package harness

import (
	"reflect"
	"testing"

	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/workload"
)

// warpCases are the configurations the warp-equivalence gate covers:
// plain offload, synchronous offload (client response spins), adaptive
// prealloc (idle top-up gauges in the steady round), an armed fault
// plan with resilience (stall horizons and deadline waits), and an
// armed timeline sampler (probe cadence must survive warp).
func warpCases() map[string]Options {
	return map[string]Options{
		"offload": {
			Allocator: "nextgen",
			Workload:  &workload.Xmalloc{NThreads: 4, OpsPerThread: 600, TouchBytes: 64, Seed: 3},
		},
		"offload-sync": {
			Allocator: "nextgen-sync",
			Workload:  &workload.Xmalloc{NThreads: 3, OpsPerThread: 400, TouchBytes: 64, Seed: 5},
		},
		"offload-adaptive": {
			Allocator: "nextgen-adaptive",
			Workload:  workload.DefaultXalanc(1500),
		},
		"fault-stall": {
			Allocator: "nextgen",
			Workload:  &workload.Xmalloc{NThreads: 3, OpsPerThread: 500, TouchBytes: 64, Seed: 7},
			FaultPlan: &fault.Plan{Seed: 7, StallCycles: 60000, StallStart: 40000, StallPeriod: 200000},
		},
		"fault-drops": {
			Allocator: "nextgen",
			Workload:  &workload.Xmalloc{NThreads: 3, OpsPerThread: 400, TouchBytes: 64, Seed: 9},
			FaultPlan: &fault.Plan{Seed: 11, DropEveryN: 64, CorruptEveryN: 128},
		},
		"timeline-armed": {
			Allocator:      "nextgen",
			Workload:       &workload.Xmalloc{NThreads: 4, OpsPerThread: 600, TouchBytes: 64, Seed: 3},
			SampleInterval: 5000,
		},
	}
}

func runWithWarp(opt Options, warp bool) Result {
	cfg := sim.ScaledConfig()
	cfg.Warp = warp
	opt.Machine = &cfg
	return Run(opt)
}

// TestWarpEquivalence is the second gate behind the golden suite: an
// entire Result — every PMU counter, class attribution, ring/server
// telemetry word, timeline sample, latency digest, and resilience
// ledger — must be deeply equal with warp on and off. Only the Warp
// ledger itself may differ (it reports what the fast path skipped).
func TestWarpEquivalence(t *testing.T) {
	for name, opt := range warpCases() {
		opt := opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			off := runWithWarp(opt, false)
			on := runWithWarp(opt, true)
			if off.Warp != (sim.WarpStats{}) {
				t.Fatalf("warp-off run reported warp activity: %+v", off.Warp)
			}
			warp := on.Warp
			off.Warp, on.Warp = sim.WarpStats{}, sim.WarpStats{}
			if !reflect.DeepEqual(off, on) {
				t.Fatalf("warp changed the simulation:\noff: %+v\non:  %+v", off, on)
			}
			t.Logf("windows=%d rounds=%d cyclesWarped=%d largest=%d",
				warp.Windows, warp.Rounds, warp.CyclesWarped, warp.LargestSkip)
		})
	}
}

// TestWarpEngages pins that the fast path actually fires on an
// idle-heavy offload run — the empty-poll windows the tentpole exists
// to skip — and that the ledger is consistent with the run.
func TestWarpEngages(t *testing.T) {
	res := runWithWarp(Options{
		Allocator: "nextgen",
		Workload:  &workload.Xmalloc{NThreads: 2, OpsPerThread: 800, TouchBytes: 256, Seed: 3},
	}, true)
	w := res.Warp
	if w.Windows == 0 || w.Rounds == 0 || w.CyclesWarped == 0 {
		t.Fatalf("warp never engaged on an idle-heavy run: %+v", w)
	}
	if w.LargestSkip > w.CyclesWarped {
		t.Fatalf("largest skip %d exceeds total warped cycles %d", w.LargestSkip, w.CyclesWarped)
	}
	if w.Rounds < w.Windows {
		t.Fatalf("%d windows but only %d rounds", w.Windows, w.Rounds)
	}
	t.Logf("windows=%d rounds=%d cyclesWarped=%d largest=%d (wall=%d)",
		w.Windows, w.Rounds, w.CyclesWarped, w.LargestSkip, res.WallCycles)
}
