package harness

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/timeline"
	"nextgenmalloc/internal/workload"
)

// fleetXalanc builds a small N-worker xalanc for the topology tests.
func fleetXalanc(workers, ops int) workload.Workload {
	proto := *workload.DefaultXalanc(ops)
	proto.NodeSlots = 256
	return workload.NewParallelXalanc(workers, proto)
}

// maxGap returns the widest per-client service gap across every shard.
func maxGap(r Result) uint64 {
	var worst uint64
	for _, sv := range r.Servers {
		for _, cl := range sv.Clients {
			if cl.MaxGapCycles > worst {
				worst = cl.MaxGapCycles
			}
		}
	}
	return worst
}

// TestFleetConformance: N clients × S servers, cross-thread frees
// (xmalloc's producer/consumer pattern exercises the owner routing).
// Every shard must balance its ledger: pushes == pops, served + NACKs
// == pops, per-client service counts sum to the shard's served count,
// and the shards sum to the aggregate.
func TestFleetConformance(t *testing.T) {
	for _, servers := range []int{2, 4} {
		t.Run(fmt.Sprintf("s%d", servers), func(t *testing.T) {
			cfg := sim.ScaledConfig()
			cfg.Cores = 4 + servers
			w := &workload.Xmalloc{NThreads: 4, OpsPerThread: 2000, TouchBytes: 128, Seed: 3}
			res := Run(Options{
				Allocator: "nextgen",
				Workload:  w,
				Machine:   &cfg,
				Servers:   servers,
				Sched:     core.RoundRobin,
			})
			if err := res.CheckLiveness(); err != nil {
				t.Fatal(err)
			}
			if len(res.Servers) != servers {
				t.Fatalf("%d server telemetry blocks, want %d", len(res.Servers), servers)
			}
			var total uint64
			for i, sv := range res.Servers {
				if sv.Served == 0 {
					t.Errorf("server %d served nothing (partition routed no clients to it)", i)
				}
				pushes := sv.MallocRing.Pushes + sv.FreeRing.Pushes
				pops := sv.MallocRing.Pops + sv.FreeRing.Pops
				if pushes != pops {
					t.Errorf("server %d: %d pushes vs %d pops", i, pushes, pops)
				}
				if sv.Served+sv.Nacks != pops {
					t.Errorf("server %d: served %d + nacks %d != pops %d", i, sv.Served, sv.Nacks, pops)
				}
				var perClient uint64
				for _, cl := range sv.Clients {
					perClient += cl.Served
				}
				if perClient != sv.Served {
					t.Errorf("server %d: per-client counts sum to %d, served %d", i, perClient, sv.Served)
				}
				total += sv.Served
			}
			if total != res.Served {
				t.Errorf("shards served %d, aggregate says %d", total, res.Served)
			}
		})
	}
}

// TestFleetByClassPartition: the size-class partition routes by class,
// not by client, so a size-mixing workload must light up both shards
// and the ledger must still balance.
func TestFleetByClassPartition(t *testing.T) {
	cfg := sim.ScaledConfig()
	cfg.Cores = 4
	w := &workload.Churn{NThreads: 2, Slots: 2000, Rounds: 6000, MinSize: 16, MaxSize: 256, TouchBytes: 32, Seed: 7}
	res := Run(Options{
		Allocator: "nextgen",
		Workload:  w,
		Machine:   &cfg,
		Servers:   2,
		Sched:     core.RoundRobin,
		Partition: core.ByClass,
	})
	if err := res.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 2 {
		t.Fatalf("%d server telemetry blocks, want 2", len(res.Servers))
	}
	for i, sv := range res.Servers {
		if sv.Served == 0 {
			t.Errorf("server %d served nothing under the class partition", i)
		}
	}
}

// TestRoundRobinServiceShare: on a symmetric workload, round-robin
// service order must not starve any client — every client's service
// count stays within 2x of every other's.
func TestRoundRobinServiceShare(t *testing.T) {
	cfg := sim.ScaledConfig()
	cfg.Cores = 5
	res := Run(Options{
		Allocator: "nextgen",
		Workload:  fleetXalanc(4, 3000),
		Machine:   &cfg,
		Sched:     core.RoundRobin,
	})
	if err := res.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 1 {
		t.Fatalf("%d server telemetry blocks, want 1", len(res.Servers))
	}
	clients := res.Servers[0].Clients
	if len(clients) != 4 {
		t.Fatalf("%d clients registered, want 4", len(clients))
	}
	min, max := clients[0].Served, clients[0].Served
	for _, cl := range clients[1:] {
		if cl.Served < min {
			min = cl.Served
		}
		if cl.Served > max {
			max = cl.Served
		}
	}
	if min == 0 || max > 2*min {
		t.Errorf("service share skewed under round-robin: min %d, max %d", min, max)
	}
}

// TestStarvationGapUnderStall: an injected server stall must surface in
// the starvation metric — the widest per-client service gap covers the
// stall window — while a clean run stays well below it. The explicit
// zero-valued resilience keeps the seed blocking protocol (no fallback
// hides the stall).
func TestStarvationGapUnderStall(t *testing.T) {
	const stall = 60000
	opts := func() Options {
		return Options{
			Allocator:  "nextgen",
			Workload:   fleetXalanc(2, 2500),
			Sched:      core.RoundRobin,
			Resilience: &core.Resilience{},
		}
	}
	clean := Run(opts())
	stalled := opts()
	// Periodic windows: a one-shot window can elapse inside one long
	// serve or a warp-skipped idle stretch, injecting nothing.
	stalled.FaultPlan = &fault.Plan{StallCycles: stall, StallStart: 30000, StallPeriod: 240000}
	res := Run(stalled)
	if err := res.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
	if res.Resilience == nil || res.Resilience.Injected.Stalls == 0 {
		t.Fatal("stall plan injected nothing")
	}
	if g := maxGap(res); g < stall {
		t.Errorf("stalled run's widest service gap %d does not cover the %d-cycle stall", g, stall)
	}
	if g := maxGap(clean); g >= stall {
		t.Errorf("clean run's widest service gap %d already exceeds the stall length", g)
	}
	if maxGap(clean) >= maxGap(res) {
		t.Errorf("stall did not widen the service gap: clean %d vs stalled %d", maxGap(clean), maxGap(res))
	}
}

// TestCrossClientWaitBound pins the Server.Poll fairness fix: under
// fixed-scan, the background free pass re-checks only the current
// client's malloc ring between lines, so client A's synchronous malloc
// can wait behind client B's whole coalesced free batch.
// doorbell-priority and round-robin re-check every malloc ring between
// free lines and must cut the p99 malloc queue wait at least in half.
// (The single worst span is a warm-up artifact shared by every policy
// — the first mallocs wait out another client's initial slab carve,
// which no policy preempts — so the bound is pinned at p99.)
func TestCrossClientWaitBound(t *testing.T) {
	p99Wait := func(sched core.SchedPolicy) uint64 {
		cfg := sim.ScaledConfig()
		cfg.Cores = 9
		res := Run(Options{
			Allocator:      "nextgen",
			Workload:       fleetXalanc(8, 1500),
			Machine:        &cfg,
			Sched:          sched,
			Tune:           func(c *core.Config) { c.Batch = 4 },
			SampleInterval: 1 << 16,
		})
		if err := res.CheckLiveness(); err != nil {
			t.Fatal(err)
		}
		var waits []uint64
		for _, sp := range res.Latency.Spans {
			if sp.Op == timeline.OpMalloc {
				waits = append(waits, sp.QueueWait())
			}
		}
		if len(waits) == 0 {
			t.Fatal("no malloc spans recorded")
		}
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		return waits[int(float64(len(waits)-1)*0.99)]
	}
	fixed := p99Wait(core.FixedScan)
	for _, fair := range []core.SchedPolicy{core.DoorbellPriority, core.RoundRobin} {
		if got := p99Wait(fair); 2*got > fixed {
			t.Errorf("%s p99 malloc queue wait %d is not at most half of fixed-scan's %d", fair, got, fixed)
		}
	}
}

// TestRunEErrors: every invalid topology comes back as an error from
// RunE (the CLIs print it and exit 2) and as the matching panic from
// the Run shim.
func TestRunEErrors(t *testing.T) {
	tiny := sim.ScaledConfig()
	tiny.Cores = 3
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"unknown allocator", Options{Allocator: "nosuch", Workload: smallChurn()}, "unknown allocator"},
		{"negative servers", Options{Allocator: "nextgen", Workload: smallChurn(), Servers: -1}, "negative server count"},
		{"shard inline", Options{Allocator: "mimalloc", Workload: smallChurn(), Servers: 2}, "no offload server"},
		{"pin with fleet", Options{Allocator: "nextgen", Workload: smallChurn(), Servers: 2, PinServerCore: true}, "cannot pin"},
		{"worker collision", Options{
			Allocator: "nextgen",
			Workload:  &workload.Xmalloc{NThreads: 2, OpsPerThread: 10, Seed: 1},
			Machine:   &tiny,
			Servers:   2,
		}, "collide"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := RunE(c.opt)
			if err == nil {
				t.Fatal("RunE accepted an invalid topology")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Error("Run did not panic on the same topology")
				} else if msg, ok := r.(string); !ok || msg != err.Error() {
					t.Errorf("Run panic %v differs from RunE error %q", r, err)
				}
			}()
			Run(c.opt)
		})
	}
}

// TestFleetDefaultTopologyUnchanged: Servers 0/1 with the default
// policy is the seed topology — one daemon, a single telemetry block,
// counters identical between the implicit and explicit spellings.
func TestFleetDefaultTopologyUnchanged(t *testing.T) {
	opts := func() Options {
		return Options{Allocator: "nextgen", Workload: smallChurn()}
	}
	implicit := Run(opts())
	explicit := opts()
	explicit.Servers = 1
	explicit.Sched = core.FixedScan
	res := Run(explicit)
	if implicit.Total != res.Total || implicit.Server != res.Server ||
		implicit.WallCycles != res.WallCycles || implicit.Served != res.Served {
		t.Error("explicit -servers 1 -sched fixed-scan diverged from the default topology")
	}
	if len(res.Servers) != 1 {
		t.Fatalf("%d server telemetry blocks, want 1", len(res.Servers))
	}
	if res.Servers[0].Served != res.Served {
		t.Errorf("single shard served %d, aggregate %d", res.Servers[0].Served, res.Served)
	}
}
