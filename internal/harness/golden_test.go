package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/workload"
)

// The golden-counter equivalence test pins the simulated PMU counters of
// every allocator on two quick workloads to the values produced by the
// seed engine. Host-side performance work (page-directory lookup, micro
// TLBs, MRU ways, parallel fan-out) must never change what the model
// computes, only how fast the host computes it; any drift here is a
// model change and fails the test.
//
// The non-default offload transports are pinned too: nextgen-batch
// (Batch=4 free coalescing + idle backoff) and nextgen-adaptive
// (batching + noteHot-driven prealloc) each get entries per workload,
// so later PRs can't silently drift the batched/adaptive paths either.
//
// Regenerate (only when the *model* intentionally changes) with:
//
//	go test ./internal/harness -run TestGoldenCounters -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_counters.json from the current engine")

const goldenPath = "testdata/golden_counters.json"

type goldenEntry struct {
	Allocator  string
	Workload   string
	Total      sim.Counters
	PerThread  []sim.Counters
	Server     sim.Counters
	WallCycles uint64
	Served     uint64
}

// goldenWorkloads returns the two quick drivers, freshly constructed per
// run so no state leaks between allocators.
func goldenWorkloads() []func() workload.Workload {
	return []func() workload.Workload{
		func() workload.Workload { return workload.DefaultXalanc(6000) },
		func() workload.Workload {
			return &workload.Xmalloc{NThreads: 2, OpsPerThread: 2000, TouchBytes: 128, Seed: 3}
		},
	}
}

func collectGolden() []goldenEntry {
	var entries []goldenEntry
	for _, mk := range goldenWorkloads() {
		for _, kind := range Kinds {
			res := Run(Options{Allocator: kind, Workload: mk()})
			entries = append(entries, goldenEntry{
				Allocator:  res.Allocator,
				Workload:   res.Workload,
				Total:      res.Total,
				PerThread:  res.PerThread,
				Server:     res.Server,
				WallCycles: res.WallCycles,
				Served:     res.Served,
			})
		}
	}
	return entries
}

func TestGoldenCounters(t *testing.T) {
	got := collectGolden()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden file: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, golden file has %d (regenerate with -update?)", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Allocator != w.Allocator || g.Workload != w.Workload {
			t.Fatalf("entry %d: got %s/%s, want %s/%s", i, g.Allocator, g.Workload, w.Allocator, w.Workload)
		}
		if g.Total != w.Total {
			t.Errorf("%s/%s: Total counters drifted\n got: %+v\nwant: %+v", w.Allocator, w.Workload, g.Total, w.Total)
		}
		if g.Server != w.Server {
			t.Errorf("%s/%s: Server counters drifted\n got: %+v\nwant: %+v", w.Allocator, w.Workload, g.Server, w.Server)
		}
		if g.WallCycles != w.WallCycles {
			t.Errorf("%s/%s: WallCycles drifted: got %d want %d", w.Allocator, w.Workload, g.WallCycles, w.WallCycles)
		}
		if g.Served != w.Served {
			t.Errorf("%s/%s: Served drifted: got %d want %d", w.Allocator, w.Workload, g.Served, w.Served)
		}
		if len(g.PerThread) != len(w.PerThread) {
			t.Errorf("%s/%s: PerThread length %d want %d", w.Allocator, w.Workload, len(g.PerThread), len(w.PerThread))
			continue
		}
		for j := range w.PerThread {
			if g.PerThread[j] != w.PerThread[j] {
				t.Errorf("%s/%s: thread %d counters drifted\n got: %+v\nwant: %+v",
					w.Allocator, w.Workload, j, g.PerThread[j], w.PerThread[j])
			}
		}
	}
}
