package harness

import (
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/workload"
)

// quickResilience is an impatient policy so short test workloads hit
// the degradation path inside an injected fault window.
func quickResilience() *core.Resilience {
	return &core.Resilience{
		Enabled:       true,
		TimeoutCycles: 4000,
		MaxRetries:    1,
		BackoffCycles: 512,
		FallbackAfter: 1,
		ProbeCycles:   10000,
	}
}

// TestFaultRunLiveness is the PR's headline invariant: across every
// fault shape, no request is ever lost — each one completes, is NACKed,
// or is served by the local fallback.
func TestFaultRunLiveness(t *testing.T) {
	plans := map[string]fault.Plan{
		"stall":    {StallCycles: 150000, StallStart: 50000},
		"periodic": {StallCycles: 40000, StallStart: 30000, StallPeriod: 120000},
		"drop":     {Seed: 5, DropEveryN: 32},
		"corrupt":  {Seed: 5, CorruptEveryN: 64},
		"slow":     {SlowFactor: 4},
		"combined": {Seed: 9, StallCycles: 80000, StallStart: 40000, DropEveryN: 64, CorruptEveryN: 128},
	}
	for name, plan := range plans {
		plan := plan
		t.Run(name, func(t *testing.T) {
			w := workload.DefaultXalanc(3000)
			w.NodeSlots = 2000
			res := Run(Options{
				Allocator:  "nextgen",
				Workload:   w,
				FaultPlan:  &plan,
				Resilience: quickResilience(),
			})
			if err := res.CheckLiveness(); err != nil {
				t.Fatal(err)
			}
			if res.Resilience == nil {
				t.Fatal("fault run produced no resilience telemetry")
			}
			rt := res.Resilience
			if rt.Client.ReclaimedBlocks > rt.Client.AbandonedRequests {
				t.Errorf("reclaimed %d > abandoned %d",
					rt.Client.ReclaimedBlocks, rt.Client.AbandonedRequests)
			}
			if rt.Client.FallbackExits > rt.Client.FallbackEntries {
				t.Errorf("fallback exits %d > entries %d",
					rt.Client.FallbackExits, rt.Client.FallbackEntries)
			}
			t.Logf("%s: client %+v injected %+v", name, rt.Client, rt.Injected)
		})
	}
}

// TestStallPlanDegrades pins the expected arc of a long mid-run stall:
// the injector actually stalled the server and the client actually fell
// back (the sweep's headline numbers are not vacuously zero).
func TestStallPlanDegrades(t *testing.T) {
	w := workload.DefaultXalanc(3000)
	w.NodeSlots = 2000
	res := Run(Options{
		Allocator:  "nextgen",
		Workload:   w,
		FaultPlan:  &fault.Plan{StallCycles: 150000, StallStart: 50000},
		Resilience: quickResilience(),
	})
	rt := res.Resilience
	if rt.Injected.Stalls == 0 || rt.Injected.StallCycles == 0 {
		t.Fatalf("stall plan injected nothing: %+v", rt.Injected)
	}
	if rt.Client.FallbackEntries == 0 || rt.Client.EmergencyMallocs == 0 {
		t.Fatalf("client never degraded across a 150k-cycle stall: %+v", rt.Client)
	}
}

// TestFaultRunDeterminism: fault injection is seeded, so a faulty run
// is as reproducible as a clean one.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() Result {
		w := workload.DefaultXalanc(2000)
		w.NodeSlots = 1500
		return Run(Options{
			Allocator:  "nextgen",
			Workload:   w,
			FaultPlan:  &fault.Plan{Seed: 7, StallCycles: 60000, StallStart: 40000, CorruptEveryN: 128},
			Resilience: quickResilience(),
		})
	}
	a, b := run(), run()
	if a.Total != b.Total {
		t.Fatalf("nondeterministic totals under faults:\n%+v\n%+v", a.Total, b.Total)
	}
	if a.Resilience.Client != b.Resilience.Client || a.Resilience.Injected != b.Resilience.Injected {
		t.Fatalf("nondeterministic resilience telemetry:\n%+v\n%+v", a.Resilience, b.Resilience)
	}
}

// TestFaultPlanAutoDefaultsResilience: an armed plan with no explicit
// policy must arm core.DefaultResilience rather than run the seed
// blocking protocol into an injected fault.
func TestFaultPlanAutoDefaultsResilience(t *testing.T) {
	w := workload.DefaultXalanc(1500)
	w.NodeSlots = 1000
	res := Run(Options{
		Allocator: "nextgen",
		Workload:  w,
		FaultPlan: &fault.Plan{SlowFactor: 2},
	})
	if res.Resilience == nil {
		t.Fatal("auto-defaulted resilience produced no telemetry")
	}
	if res.Resilience.Injected.SlowdownCycles == 0 {
		t.Error("slow-down plan injected nothing")
	}
	if err := res.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanIgnoredOffRing: fault plans target the offload
// transport; a non-offload allocator runs clean and reports no
// resilience telemetry.
func TestFaultPlanIgnoredOffRing(t *testing.T) {
	w := workload.DefaultXalanc(1500)
	w.NodeSlots = 1000
	res := Run(Options{
		Allocator: "mimalloc",
		Workload:  w,
		FaultPlan: &fault.Plan{StallCycles: 50000},
	})
	if res.Resilience != nil {
		t.Fatalf("non-offload run grew resilience telemetry: %+v", res.Resilience)
	}
	if !OffloadKind("nextgen") || OffloadKind("mimalloc") {
		t.Error("OffloadKind misclassifies")
	}
}

// TestResilienceDisabledMatchesSeed: an explicitly disabled policy (and
// no plan) must leave every counter exactly where the seed protocol
// puts it — the golden suite's guarantee, restated at the options
// boundary.
func TestResilienceDisabledMatchesSeed(t *testing.T) {
	run := func(r *core.Resilience) Result {
		w := workload.DefaultXalanc(2000)
		w.NodeSlots = 1500
		return Run(Options{Allocator: "nextgen", Workload: w, Resilience: r})
	}
	seed, off := run(nil), run(&core.Resilience{})
	if seed.Total != off.Total {
		t.Fatalf("explicitly disabled resilience perturbed the run:\n%+v\n%+v", seed.Total, off.Total)
	}
	if off.Resilience != nil {
		t.Fatalf("disabled policy produced telemetry: %+v", off.Resilience)
	}
}
