package harness

import (
	"testing"

	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/workload"
)

// runXalanc runs the Table 1 workload at a reduced op count.
func runXalanc(kind string, ops int) Result {
	return Run(Options{Allocator: kind, Workload: workload.DefaultXalanc(ops)})
}

// TestAttributionPartitionsMisses checks the breakdown is exact: class
// counters must sum to the classless totals for every allocator.
func TestAttributionPartitionsMisses(t *testing.T) {
	for _, kind := range []string{"ptmalloc2", "mimalloc", "nextgen"} {
		res := runXalanc(kind, 3000)
		var llc, dtlb, loads, stores uint64
		for _, c := range res.Classes {
			llc += c.LLCLoadMisses + c.LLCStoreMisses
			dtlb += c.DTLBLoadMisses + c.DTLBStoreMisses
			loads += c.Loads
			stores += c.Stores
		}
		wantLLC := res.Total.LLCLoadMisses + res.Total.LLCStoreMisses
		wantTLB := res.Total.DTLBLoadMisses + res.Total.DTLBStoreMisses
		if llc != wantLLC {
			t.Errorf("%s: class LLC misses %d != total %d", kind, llc, wantLLC)
		}
		if dtlb != wantTLB {
			t.Errorf("%s: class dTLB misses %d != total %d", kind, dtlb, wantTLB)
		}
		if loads != res.Total.Loads || stores != res.Total.Stores {
			t.Errorf("%s: class loads/stores (%d,%d) != totals (%d,%d)",
				kind, loads, stores, res.Total.Loads, res.Total.Stores)
		}
	}
}

// TestMetadataShareOrdering reproduces the paper's Table 1 story with
// attribution instead of inference: PTMalloc2's boundary tags and free
// chunks put a larger share of its worker-core misses on metadata lines
// than Mimalloc's mostly-segregated records do, and the offloaded
// NextGen keeps application cores out of metadata almost entirely.
func TestMetadataShareOrdering(t *testing.T) {
	const ops = 6000
	pt := runXalanc("ptmalloc2", ops)
	mi := runXalanc("mimalloc", ops)
	ng := runXalanc("nextgen", ops)

	// Metadata share of the combined LLC+dTLB miss pool.
	metaShare := func(r Result) float64 {
		var meta, tot uint64
		for cls, c := range r.Classes {
			m := c.LLCLoadMisses + c.LLCStoreMisses + c.DTLBLoadMisses + c.DTLBStoreMisses
			tot += m
			if region.Class(cls) == region.Meta {
				meta = m
			}
		}
		if tot == 0 {
			return 0
		}
		return float64(meta) / float64(tot)
	}
	ptShare, miShare := metaShare(pt), metaShare(mi)
	if ptShare <= miShare {
		t.Errorf("ptmalloc2 metadata miss share %.4f not above mimalloc's %.4f", ptShare, miShare)
	}
	if ptLLC, _ := pt.MetaShare(); ptLLC == 0 {
		t.Error("ptmalloc2 shows no metadata LLC misses at all; marking hooks look dead")
	}

	// Offload mode: the app cores' metadata traffic should be ~0 (the
	// whole point of giving the allocator its own room). Allow a sliver
	// for the allocator handle itself.
	ngMeta := ng.Classes[region.Meta]
	ngMisses := ngMeta.LLCLoadMisses + ngMeta.LLCStoreMisses + ngMeta.DTLBLoadMisses + ngMeta.DTLBStoreMisses
	var ngTotal uint64
	for _, c := range ng.Classes {
		ngTotal += c.LLCLoadMisses + c.LLCStoreMisses + c.DTLBLoadMisses + c.DTLBStoreMisses
	}
	if ngTotal == 0 {
		t.Fatal("nextgen run recorded no misses")
	}
	if share := float64(ngMisses) / float64(ngTotal); share > 0.02 {
		t.Errorf("nextgen app-core metadata miss share = %.4f, want ~0 (<= 0.02)", share)
	}

	// The dedicated core is where NextGen's metadata traffic must live.
	srvMeta := ng.ServerClasses[region.Meta]
	if srvMeta.Loads+srvMeta.Stores == 0 {
		t.Error("nextgen server core saw no metadata traffic; attribution or offload is broken")
	}
	// And the workers' ring traffic must be visible as its own class.
	ringC := ng.Classes[region.Ring]
	if ringC.Loads+ringC.Stores == 0 {
		t.Error("nextgen workers show no ring-class traffic")
	}
}

// TestOffloadTelemetry checks the transport counters line up with the
// served operation count.
func TestOffloadTelemetry(t *testing.T) {
	res := runXalanc("nextgen", 3000)
	if res.Offload == nil {
		t.Fatal("offload run has nil telemetry")
	}
	tel := res.Offload
	pushes := tel.MallocRing.Pushes + tel.FreeRing.Pushes
	if pushes == 0 {
		t.Fatal("no ring pushes recorded")
	}
	if pops := tel.MallocRing.Pops + tel.FreeRing.Pops; pops != pushes {
		t.Errorf("pops %d != pushes %d (rings must drain)", pops, pushes)
	}
	if res.Served == 0 {
		t.Error("server served no ops")
	}
	var occ uint64
	for _, b := range tel.MallocRing.Occupancy {
		occ += b
	}
	if occ != tel.MallocRing.Pushes {
		t.Errorf("malloc ring occupancy histogram sums to %d, want %d pushes", occ, tel.MallocRing.Pushes)
	}
	if tel.ServerBusyCycles == 0 {
		t.Error("server reports zero busy cycles despite serving ops")
	}
	if tel.ServerBusyCycles+tel.ServerIdleCycles == 0 {
		t.Error("server busy+idle is zero")
	}
	// Inline runs must carry no telemetry.
	inline := runXalanc("nextgen-inline", 1000)
	if inline.Offload != nil {
		t.Error("inline run unexpectedly carries offload telemetry")
	}
}
