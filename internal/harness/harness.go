// Package harness runs one (machine, allocator, workload) experiment and
// returns the PMU counters the paper's tables report.
//
// Protocol: worker thread 0 constructs the allocator and the workload's
// shared state, publishes a ready flag, and all workers meet at a
// barrier; each worker then snapshots its core's counters, runs its part,
// flushes any buffered allocator work, and snapshots again. Reported
// counters are the deltas, so allocator/workload construction cost is
// excluded, as `perf` region-of-interest measurement would do.
package harness

import (
	"fmt"
	"strings"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/allocators/bump"
	"nextgenmalloc/internal/allocators/jemalloc"
	"nextgenmalloc/internal/allocators/mimalloc"
	"nextgenmalloc/internal/allocators/ptmalloc"
	"nextgenmalloc/internal/allocators/tcmalloc"
	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/ring"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/timeline"
	"nextgenmalloc/internal/workload"
)

// Kinds lists every allocator the harness can instantiate.
var Kinds = []string{
	"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc", "bump",
	"nextgen", "nextgen-prealloc", "nextgen-sync",
	"nextgen-inline", "nextgen-inline-agg", "nextgen-nearmem",
	"nextgen-batch", "nextgen-adaptive",
	"nextgen-compact", "nextgen-inline-compact",
}

// ClassicKinds are the four allocators of Figure 1 / Table 1, in the
// paper's column order.
var ClassicKinds = []string{"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc"}

// KnownKind reports whether kind is an allocator Run can instantiate
// (CLI flag validation shares the harness's own check).
func KnownKind(kind string) bool {
	for _, k := range Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Options configures one experiment.
type Options struct {
	// Allocator is one of Kinds.
	Allocator string
	// Workload drives the run.
	Workload workload.Workload
	// Machine overrides the default 16-core configuration when non-nil.
	Machine *sim.Config
	// ServerCore pins NextGen's dedicated core. It is only honoured when
	// PinServerCore is set; otherwise the last core is used. (A bare int
	// can't express "pin to core 0" — the zero value must keep meaning
	// "default".)
	ServerCore int
	// PinServerCore makes ServerCore authoritative, including core 0.
	// Incompatible with Servers > 1 (the fleet always occupies the last
	// Servers cores).
	PinServerCore bool
	// Servers shards the offload allocator across this many server
	// daemons (core.Fleet), each on its own core, partitioning clients
	// per Partition. 0 or 1 is the seed single-server topology. Only
	// offload kinds can shard.
	Servers int
	// Partition selects how a multi-server fleet routes requests
	// (by client thread — the default — or by size class). Ignored when
	// Servers <= 1.
	Partition core.Partition
	// Sched selects the server's ring-service order (core.SchedPolicy).
	// The zero value (fixed-scan) is the seed behaviour. Ignored for
	// non-NextGen allocators.
	Sched core.SchedPolicy
	// Tune, when non-nil, adjusts the NextGen config derived from the
	// kind before construction (e.g. a transport sweep overriding Batch
	// or the prealloc policy). Ignored for non-NextGen allocators.
	Tune func(*core.Config)
	// Wrap, when non-nil, decorates the allocator before use (e.g. a
	// trace recorder).
	Wrap func(alloc.Allocator) alloc.Allocator
	// Prepare, when non-nil, runs on worker 0 after workload setup and
	// before the measurement barrier (e.g. core.Allocator.Preheat).
	Prepare func(t *sim.Thread, a alloc.Allocator)
	// SampleInterval, when > 0, arms a timeline.Sampler snapshotting all
	// cores every SampleInterval cycles and (for NextGen kinds) a
	// latency recorder capturing per-request offload spans. Both are
	// host-side observation only: counters stay bit-identical to an
	// unsampled run (pinned by TestSamplerZeroTraffic).
	SampleInterval uint64
	// SampleCapacity bounds the sample series (timeline.DefaultCapacity
	// when 0); the interval doubles when the buffer fills.
	SampleCapacity int
	// SpanCapacity bounds the latency recorder's raw span buffer
	// (timeline.DefaultSpanCap when 0). Sweeps over big topologies
	// raise it so per-client percentiles keep their tails.
	SpanCapacity int
	// FaultPlan arms deterministic fault injection on offload runs (see
	// internal/fault); nil or unarmed means a clean run. When a plan is
	// armed and Resilience is nil, core.DefaultResilience is applied
	// automatically — doorbell drops and corruption are unsurvivable for
	// the seed blocking protocol, and even a bare stall plan is only
	// worth measuring with the degradation machinery on. Pass an explicit
	// Resilience (possibly zero-valued) to override.
	FaultPlan *fault.Plan
	// FaultPlans arms several plans at once (fault.ParsePlans), each
	// targeting the shard its shard= selector names (or every shard for
	// a broadcast plan). Takes precedence over FaultPlan when non-empty.
	// On a sharded run every targeted shard gets its own injector seeded
	// from the plan seed and the shard index (fault.NewShardInjector), so
	// a plan hits the same shard with the same fault sequence regardless
	// of topology or interleaving; a single-server run keeps the seed
	// injector stream bit for bit.
	FaultPlans []fault.Plan
	// Resilience overrides NextGen's graceful-degradation policy (applied
	// after Tune). nil keeps the kind's default: disabled, unless
	// FaultPlan forces the default policy on (see above). Ignored for
	// non-NextGen allocators.
	Resilience *core.Resilience
	// SLO, when non-nil, arms a per-tenant SLO tracker handed to the
	// workload (via slo.Observable) before Setup. Host-side observation
	// only: an armed run's counters stay bit-identical to an unarmed one
	// (pinned by TestSLOZeroTraffic). Workloads that don't implement
	// slo.Observable leave the tracker empty.
	SLO *slo.Options
}

// Result carries everything a table needs.
type Result struct {
	Allocator string
	Workload  string
	// PerThread holds each worker core's counter delta over the measured
	// region.
	PerThread []sim.Counters
	// Total is the sum of the worker deltas (how the paper's per-process
	// perf totals aggregate across cores).
	Total sim.Counters
	// Server is the dedicated allocator core's delta (offload modes).
	Server sim.Counters
	// WallCycles is the longest worker delta.
	WallCycles uint64
	// AllocStats is the allocator's own view after the run.
	AllocStats alloc.Stats
	// Kernel is the simulated kernel's syscall accounting.
	Kernel mem.KernelStats
	// Served counts offload-server ring operations (0 otherwise).
	Served uint64
	// Classes attributes the worker cores' traffic and misses to address
	// classes (user data, allocator metadata, ring transport, workload
	// globals), summed over the measured region of every worker.
	Classes sim.ClassBreakdown
	// ServerClasses is the dedicated allocator core's attribution delta
	// (offload modes only).
	ServerClasses sim.ClassBreakdown
	// Offload carries ring/server telemetry; nil for non-offload runs.
	// With Servers > 1 it is the fleet-wide aggregate.
	Offload *OffloadTelemetry
	// Servers carries one entry per server daemon (len 1 for the seed
	// single-server topology, empty for non-offload runs): the shard's
	// core, busy/idle split, ring stats, served/NACK counts, and the
	// per-client service-fairness ledger.
	Servers []ServerTelemetry
	// ClientShards maps each application thread to its home shard (the
	// fleet's first-touch assignment, where its allocations were
	// served); nil unless the run was sharded (Servers > 1).
	ClientShards map[int]int
	// Timeline is the sampled counter series; nil unless
	// Options.SampleInterval armed the sampler.
	Timeline *timeline.Series
	// Latency holds per-request offload spans and latency histograms;
	// nil unless sampling was armed. It records zero spans for
	// non-offload allocators (check Latency.HasSpans()).
	Latency *timeline.LatencyRecorder
	// ServerCore is the dedicated allocator core's index, or -1 when the
	// run had no server daemon.
	ServerCore int
	// Layout names the NextGen metadata layout the run used
	// (segregated/aggregated/compact); empty for non-NextGen allocators.
	Layout string
	// MetaRecordBytes is the slab-record stride of that layout (0 for
	// non-NextGen allocators).
	MetaRecordBytes int
	// Resilience carries the degradation/fault telemetry; nil unless the
	// run armed Options.FaultPlan(s) or a resilience policy.
	Resilience *ResilienceTelemetry
	// Failover carries the fleet failover telemetry: per-client routing
	// ledgers, the re-home transition log, and fleet totals. nil unless
	// failover was armed (Servers > 1, resilience on, FailoverAfter > 0).
	Failover *FailoverTelemetry
	// Warp is the scheduler's time-warp ledger: how many steady wait
	// windows were skipped instead of stepped. Host-side observation
	// only — every other field of Result is bit-identical whether warp
	// was on or off (pinned by TestWarpEquivalence).
	Warp sim.WarpStats
	// SLO is the per-tenant SLO tracker; nil unless Options.SLO armed
	// it. Empty (SLO.HasData() == false) when the workload doesn't feed
	// one.
	SLO *slo.Tracker
}

// ResilienceTelemetry pairs the client-side degradation counters with
// what the fault injector actually did to the run.
type ResilienceTelemetry struct {
	// Client merges every offload client's degradation counters
	// (timeouts, retries, NACKs, fallback transitions, emergency ops).
	Client core.ResilienceStats
	// Injected is the fault injector's own ledger (zero-valued when a
	// resilience policy ran without a fault plan).
	Injected fault.Stats
}

// Add accumulates o into tel, covering every field (kept exhaustive by
// the reflection test in telemetry_test.go).
func (tel *ResilienceTelemetry) Add(o ResilienceTelemetry) {
	tel.Client.Add(o.Client)
	tel.Injected.Add(o.Injected)
}

// FailoverTelemetry is the fleet failover machinery's view of a run:
// who re-homed where, when, and how much traffic travelled away from
// home. Present (possibly all-zero) on every failover-armed run.
type FailoverTelemetry struct {
	// Clients holds one routing ledger per application thread, in
	// first-touch order.
	Clients []core.ClientFailover
	// Events is the re-home transition log (bounded; overflow is counted
	// in Totals.DroppedEvents), feeding the Chrome trace.
	Events []core.FailoverEvent
	// Totals aggregates the per-client ledgers.
	Totals core.FailoverStats
}

// TraceEvents converts the transition log to the timeline's trace form
// (nil-safe: a run without failover telemetry yields no events).
func (fo *FailoverTelemetry) TraceEvents() []timeline.FailoverEvent {
	if fo == nil {
		return nil
	}
	out := make([]timeline.FailoverEvent, len(fo.Events))
	for i, ev := range fo.Events {
		out[i] = timeline.FailoverEvent{Cycle: ev.Cycle, Thread: ev.Thread, From: ev.From, To: ev.To}
	}
	return out
}

// ServerTelemetry is one server daemon's slice of a (possibly sharded)
// offload run: which core it occupied, how its loop time split, what
// its clients' rings carried, and how fairly it served each client.
type ServerTelemetry struct {
	// Core is the simulated core the daemon was pinned to.
	Core int
	// BusyCycles / IdleCycles partition the daemon's loop time.
	BusyCycles uint64
	IdleCycles uint64
	// EmptyPolls / EmptyPollCycles count poll passes that found no work
	// and what they cost.
	EmptyPolls      uint64
	EmptyPollCycles uint64
	// Served counts ring operations this shard completed; Nacks counts
	// requests it rejected (resilience validation).
	Served uint64
	Nacks  uint64
	// MallocRing / FreeRing merge this shard's per-client ring stats.
	MallocRing ring.Stats
	FreeRing   ring.Stats
	// Clients is the shard's per-client service ledger (served ops and
	// the widest completion gap — the starvation metric).
	Clients []core.ClientService
	// Injected is this shard's own fault-injection ledger (zero-valued
	// for a clean shard), so a targeted plan's telemetry shows which
	// shard got hit instead of one fleet-wide aggregate.
	Injected fault.Stats
}

// OffloadTelemetry is the transport-level view of an offload run: what
// the rings and the dedicated core were doing while the workers ran.
type OffloadTelemetry struct {
	// MallocRing / FreeRing merge the per-client SPSC ring stats.
	MallocRing ring.Stats
	FreeRing   ring.Stats
	// ServerBusyCycles / ServerIdleCycles partition the server daemon's
	// loop time into servicing work vs empty polls and stash top-ups.
	ServerBusyCycles uint64
	ServerIdleCycles uint64
	// ServerEmptyPolls counts poll passes that found no ring work;
	// ServerEmptyPollCycles is what those passes cost in ring scanning
	// (a subset of ServerIdleCycles — the overhead idle backoff shrinks).
	ServerEmptyPolls      uint64
	ServerEmptyPollCycles uint64
}

// Add accumulates o into tel, covering every telemetry field (used when
// merging the offload view of multiple runs; kept exhaustive by the
// reflection test in telemetry_test.go).
func (tel *OffloadTelemetry) Add(o OffloadTelemetry) {
	tel.MallocRing.Add(o.MallocRing)
	tel.FreeRing.Add(o.FreeRing)
	tel.ServerBusyCycles += o.ServerBusyCycles
	tel.ServerIdleCycles += o.ServerIdleCycles
	tel.ServerEmptyPolls += o.ServerEmptyPolls
	tel.ServerEmptyPollCycles += o.ServerEmptyPollCycles
}

// MetaShare returns the metadata class's share of LLC misses and of
// dTLB misses across the worker cores (the paper's Table 1 ratio).
func (r Result) MetaShare() (llc, dtlb float64) {
	var llcTot, llcMeta, tlbTot, tlbMeta uint64
	for cls, c := range r.Classes {
		llcTot += c.LLCLoadMisses + c.LLCStoreMisses
		tlbTot += c.DTLBLoadMisses + c.DTLBStoreMisses
		if region.Class(cls) == region.Meta {
			llcMeta = c.LLCLoadMisses + c.LLCStoreMisses
			tlbMeta = c.DTLBLoadMisses + c.DTLBStoreMisses
		}
	}
	if llcTot > 0 {
		llc = float64(llcMeta) / float64(llcTot)
	}
	if tlbTot > 0 {
		dtlb = float64(tlbMeta) / float64(tlbTot)
	}
	return llc, dtlb
}

// MPKI returns (llcLoad, llcStore, dtlbLoad, dtlbStore) misses per
// kilo-instruction for the total counters.
func (r Result) MPKI() (llcLoad, llcStore, dtlbLoad, dtlbStore float64) {
	ins := r.Total.Instructions
	return sim.MPKI(r.Total.LLCLoadMisses, ins),
		sim.MPKI(r.Total.LLCStoreMisses, ins),
		sim.MPKI(r.Total.DTLBLoadMisses, ins),
		sim.MPKI(r.Total.DTLBStoreMisses, ins)
}

// needsServer reports whether kind runs the offload daemon.
func needsServer(kind string) bool {
	switch kind {
	case "nextgen", "nextgen-prealloc", "nextgen-sync", "nextgen-nearmem",
		"nextgen-batch", "nextgen-adaptive", "nextgen-compact":
		return true
	}
	return false
}

// OffloadKind reports whether kind runs the offload transport — the
// kinds a fault plan can target (CLI validation shares this check).
func OffloadKind(kind string) bool { return needsServer(kind) }

// CheckLiveness verifies the offload accounting invariant on a finished
// run: every pushed request was popped (nothing stranded in a ring at
// shutdown), and every popped request was either served or NACKed.
// nil Offload (non-offload run) trivially passes.
func (r Result) CheckLiveness() error {
	if r.Offload == nil {
		return nil
	}
	pushes := r.Offload.MallocRing.Pushes + r.Offload.FreeRing.Pushes
	pops := r.Offload.MallocRing.Pops + r.Offload.FreeRing.Pops
	if pushes != pops {
		return fmt.Errorf("liveness: %d requests pushed but %d popped (%d lost in the rings)",
			pushes, pops, pushes-pops)
	}
	var nacks uint64
	if r.Resilience != nil {
		nacks = r.Resilience.Client.MallocNacks + r.Resilience.Client.FreeNacks
	}
	if r.Served+nacks != pops {
		return fmt.Errorf("liveness: %d popped but only %d served + %d nacked",
			pops, r.Served, nacks)
	}
	// Per-server invariants: the fleet aggregate can mask a shard that
	// lost requests against another that double-counted, so each daemon
	// must balance on its own.
	for i, s := range r.Servers {
		pushes := s.MallocRing.Pushes + s.FreeRing.Pushes
		pops := s.MallocRing.Pops + s.FreeRing.Pops
		if pushes != pops {
			return fmt.Errorf("liveness: server %d (core %d): %d requests pushed but %d popped",
				i, s.Core, pushes, pops)
		}
		if s.Served+s.Nacks != pops {
			return fmt.Errorf("liveness: server %d (core %d): %d popped but only %d served + %d nacked",
				i, s.Core, pops, s.Served, s.Nacks)
		}
	}
	return nil
}

// nextgenConfig maps a kind to the core.Config variant.
func nextgenConfig(kind string) core.Config {
	cfg := core.DefaultConfig()
	switch kind {
	case "nextgen-prealloc":
		cfg.Prealloc = 12
	case "nextgen-sync":
		cfg.AsyncFree = false
	case "nextgen-inline":
		cfg.Offload = false
	case "nextgen-inline-agg":
		cfg.Offload = false
		cfg.Layout = core.Aggregated
	case "nextgen-batch":
		cfg.Batch = 4
		cfg.IdleBackoff = true
	case "nextgen-adaptive":
		cfg.Batch = 4
		cfg.AdaptivePrealloc = true
		cfg.IdleBackoff = true
	case "nextgen-compact":
		cfg.Layout = core.Compact
	case "nextgen-inline-compact":
		cfg.Offload = false
		cfg.Layout = core.Compact
	}
	return cfg
}

// nextgenOptions resolves the core.Config a NextGen run will use — kind
// defaults, the topology's scheduling policy, then Options.Tune — or
// ok=false for a non-NextGen allocator. RunE validates the result
// before any simulated thread runs; makeAllocator builds from it.
func nextgenOptions(opt Options) (cfg core.Config, ok bool) {
	if !strings.HasPrefix(opt.Allocator, "nextgen") {
		return core.Config{}, false
	}
	cfg = nextgenConfig(opt.Allocator)
	cfg.Sched = opt.Sched
	if opt.Tune != nil {
		opt.Tune(&cfg)
	}
	return cfg, true
}

// Run executes the experiment, panicking on an invalid topology (the
// seed behaviour; RunE reports the same conditions as errors).
func Run(opt Options) Result {
	res, err := RunE(opt)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunE executes the experiment, returning an error for an invalid
// topology (unknown allocator, zero-thread workload, server core out
// of range, worker/server collision, bad shard count) instead of
// panicking — CLIs print the message and exit instead of dumping a
// goroutine trace.
func RunE(opt Options) (Result, error) {
	known := false
	for _, k := range Kinds {
		if k == opt.Allocator {
			known = true
			break
		}
	}
	if !known {
		return Result{}, fmt.Errorf("harness: unknown allocator %q", opt.Allocator)
	}
	ngCfg, isNG := nextgenOptions(opt)
	if isNG && !ngCfg.Layout.Valid() {
		return Result{}, fmt.Errorf("harness: allocator %q tuned to invalid metadata layout %s", opt.Allocator, ngCfg.Layout)
	}
	w := opt.Workload
	n := w.Threads()
	if n <= 0 {
		return Result{}, fmt.Errorf("harness: workload declares no threads")
	}
	servers := opt.Servers
	if servers == 0 {
		servers = 1
	}
	if servers < 0 {
		return Result{}, fmt.Errorf("harness: negative server count %d", opt.Servers)
	}
	if servers > 1 && !needsServer(opt.Allocator) {
		return Result{}, fmt.Errorf("harness: allocator %q has no offload server to shard across %d cores", opt.Allocator, servers)
	}
	if servers > 1 && opt.PinServerCore {
		return Result{}, fmt.Errorf("harness: cannot pin the server core with %d servers (the fleet occupies the last %d cores)", servers, servers)
	}

	mcfg := sim.ScaledConfig()
	if opt.Machine != nil {
		mcfg = *opt.Machine
	}
	serverCore := opt.ServerCore
	if !opt.PinServerCore {
		serverCore = mcfg.Cores - servers
	}
	if serverCore < 0 || serverCore >= mcfg.Cores {
		return Result{}, fmt.Errorf("harness: server core %d out of range [0,%d)", serverCore, mcfg.Cores)
	}
	// nsrv is how many cores the fleet reserves; workers are placed
	// around them.
	nsrv := 0
	if needsServer(opt.Allocator) {
		nsrv = servers
	}
	avail := mcfg.Cores - nsrv
	if n > avail {
		return Result{}, fmt.Errorf("harness: %d workers collide with server core %d (%d cores)", n, serverCore, mcfg.Cores)
	}
	if opt.Allocator == "nextgen-nearmem" {
		if mcfg.CoreOverrides == nil {
			mcfg.CoreOverrides = map[int]sim.CoreProfile{}
		}
		for i := 0; i < nsrv; i++ {
			mcfg.CoreOverrides[serverCore+i] = sim.NearMemoryProfile()
		}
	}

	m := sim.New(mcfg)
	// The "loader" maps the control page before the program starts. Its
	// barrier/flag traffic is harness overhead, not allocator or user
	// data, so it is attributed to the workload-global class.
	ctrl, _ := m.Kernel().Mmap(1)
	m.Regions().Mark(ctrl, int(mem.PageSize), region.Global)

	var srvs []*core.Server
	for i := 0; i < nsrv; i++ {
		srv := core.NewServer()
		name := "ngm-server"
		if i > 0 {
			name = fmt.Sprintf("ngm-server-%d", i)
		}
		m.SpawnDaemon(name, serverCore+i, srv.Run)
		srvs = append(srvs, srv)
	}

	// Deterministic fault injection (offload runs only; a plan against an
	// inline allocator has no transport to break). Each targeted shard
	// gets its own injector: independently seeded on a fleet so shard
	// i's fault sequence never depends on what the other shards are
	// doing, the seed injector stream on a single server so pre-fleet
	// fault runs stay byte-identical.
	plans := opt.FaultPlans
	if len(plans) == 0 && opt.FaultPlan != nil {
		plans = []fault.Plan{*opt.FaultPlan}
	}
	var injs []*fault.Injector // per server daemon; nil entry = clean shard
	if len(srvs) > 0 {
		for _, p := range plans {
			if !p.Armed() {
				continue
			}
			if p.Shard > 0 && p.Shard-1 >= len(srvs) {
				return Result{}, fmt.Errorf("harness: fault plan targets shard %d but the run has %d server(s)", p.Shard-1, len(srvs))
			}
			if injs == nil {
				injs = make([]*fault.Injector, len(srvs))
			}
			for i := range srvs {
				if !p.TargetsShard(i) {
					continue
				}
				if injs[i] != nil {
					return Result{}, fmt.Errorf("harness: two fault plans target shard %d", i)
				}
				if len(srvs) == 1 {
					injs[i] = fault.NewInjector(p)
				} else {
					injs[i] = fault.NewShardInjector(p, i)
				}
			}
		}
		for _, in := range injs {
			if in != nil {
				in.Attach(m)
			}
		}
	}
	faultsArmed := injs != nil

	// Per-tenant SLO observation (host-side only). The tracker — or nil,
	// detaching any tracker left by a previous run of the same workload
	// instance — is handed over before Setup.
	var sloTracker *slo.Tracker
	if opt.SLO != nil {
		sloTracker = slo.NewTracker(*opt.SLO)
	}
	if obs, ok := w.(slo.Observable); ok {
		obs.AttachSLO(sloTracker)
	}

	res := Result{
		Allocator:  opt.Allocator,
		Workload:   w.Name(),
		PerThread:  make([]sim.Counters, n),
		ServerCore: -1,
	}
	if isNG {
		res.Layout = ngCfg.Layout.String()
		res.MetaRecordBytes = ngCfg.Layout.RecordBytes()
	}
	if len(srvs) > 0 {
		res.ServerCore = serverCore
	}
	var a alloc.Allocator
	serverStarts := make([]sim.Counters, len(srvs))
	serverStartCs := make([]sim.ClassBreakdown, len(srvs))
	perThreadC := make([]sim.ClassBreakdown, n)

	// Time-resolved telemetry (observation-only; see Options).
	var sampler *timeline.Sampler
	var latRec *timeline.LatencyRecorder
	if opt.SampleInterval > 0 {
		sampler = timeline.NewSampler(opt.SampleInterval, opt.SampleCapacity)
		sampler.Attach(m)
		latRec = timeline.NewLatencyRecorder(opt.SpanCapacity)
		sampler.ProbeRings(func() timeline.RingState {
			if ng, ok := a.(interface{ RingDepths() (uint64, uint64) }); ok {
				md, fd := ng.RingDepths()
				return timeline.RingState{MallocDepth: md, FreeDepth: fd}
			}
			return timeline.RingState{}
		})
		if len(srvs) > 0 {
			sampler.ProbeServer(func() timeline.ServerState {
				var st timeline.ServerState
				for _, srv := range srvs {
					busy, idle := srv.Telemetry()
					polls, pollCy := srv.PollStats()
					st.BusyCycles += busy
					st.IdleCycles += idle
					st.EmptyPolls += polls
					st.EmptyPollCycles += pollCy
				}
				return st
			})
		}
	}

	// Workers occupy cores in order, stepping over the server's core when
	// one is reserved (with the default last-core server this is the
	// identity mapping the original assignment used).
	workerCore := func(part int) int {
		if nsrv > 0 && part >= serverCore {
			return part + nsrv
		}
		return part
	}

	for i := 0; i < n; i++ {
		part := i
		m.Spawn(fmt.Sprintf("%s-worker-%d", w.Name(), part), workerCore(part), func(t *sim.Thread) {
			readyAddrs := [1]uint64{ctrl}
			barrierAddrs := [1]uint64{ctrl + 64}
			if part == 0 {
				a = makeAllocator(t, opt, servers, srvs, latRec, injs)
				if opt.Wrap != nil {
					a = opt.Wrap(a)
				}
				w.Setup(t, a)
				if opt.Prepare != nil {
					opt.Prepare(t, a)
				}
				t.AtomicStore64(ctrl, 1)
			} else {
				// Wait for worker 0 to construct the allocator; declared
				// to the time warp (one flag load per round).
				t.WarpLoop(sim.WaitSpec{
					Round: func() bool {
						if t.Load64(ctrl) != 0 {
							return true
						}
						t.Pause(100)
						return false
					},
					Addrs: func() []uint64 { return readyAddrs[:] },
				})
			}
			// Barrier: everyone measures from a common point.
			t.FetchAdd64(ctrl+64, 1)
			t.WarpLoop(sim.WaitSpec{
				Round: func() bool {
					if t.Load64(ctrl+64) == uint64(n) {
						return true
					}
					t.Pause(50)
					return false
				},
				Addrs: func() []uint64 { return barrierAddrs[:] },
			})
			if part == 0 {
				for i := range srvs {
					serverStarts[i] = t.Machine().CoreCounters(serverCore + i)
					serverStartCs[i] = t.Machine().CoreClassCounters(serverCore + i)
				}
			}
			start := t.Counters()
			startC := t.ClassCounters()
			w.Run(t, part, a)
			if f, ok := a.(alloc.Flusher); ok {
				f.Flush(t)
			}
			res.PerThread[part] = t.Counters().Sub(start)
			perThreadC[part] = t.ClassCounters().Sub(startC)
		})
	}
	m.Run()

	for _, d := range res.PerThread {
		res.Total.Add(d)
		if d.Cycles > res.WallCycles {
			res.WallCycles = d.Cycles
		}
	}
	for _, d := range perThreadC {
		res.Classes.Add(d)
	}
	for i := range srvs {
		res.Server.Add(m.CoreCounters(serverCore + i).Sub(serverStarts[i]))
		res.ServerClasses.Add(m.CoreClassCounters(serverCore + i).Sub(serverStartCs[i]))
	}
	res.AllocStats = a.Stats()
	res.Kernel = m.Kernel().Stats()
	if f, ok := a.(*core.Fleet); ok {
		res.ClientShards = f.ClientShards()
		if cl, ev, tot, armed := f.FailoverTelemetry(); armed {
			res.Failover = &FailoverTelemetry{Clients: cl, Events: ev, Totals: tot}
		}
	}
	if shards := offloadShards(a); len(shards) > 0 {
		for _, ng := range shards {
			res.Served += ng.Served()
		}
		resilient := shards[0].ResilienceEnabled()
		if len(srvs) > 0 {
			tel := &OffloadTelemetry{}
			for i, srv := range srvs {
				ng := shards[i]
				st := ServerTelemetry{Core: serverCore + i, Served: ng.Served()}
				st.BusyCycles, st.IdleCycles = srv.Telemetry()
				st.EmptyPolls, st.EmptyPollCycles = srv.PollStats()
				st.MallocRing, st.FreeRing = ng.RingTelemetry()
				st.Clients = ng.ClientServices()
				if resilient || faultsArmed {
					cs := ng.ResilienceTelemetry()
					st.Nacks = cs.MallocNacks + cs.FreeNacks
				}
				if injs != nil && injs[i] != nil {
					st.Injected = injs[i].Stats()
				}
				res.Servers = append(res.Servers, st)

				tel.MallocRing.Add(st.MallocRing)
				tel.FreeRing.Add(st.FreeRing)
				tel.ServerBusyCycles += st.BusyCycles
				tel.ServerIdleCycles += st.IdleCycles
				tel.ServerEmptyPolls += st.EmptyPolls
				tel.ServerEmptyPollCycles += st.EmptyPollCycles
			}
			res.Offload = tel
		}
		if resilient || faultsArmed {
			rt := &ResilienceTelemetry{}
			for _, ng := range shards {
				rt.Client.Add(ng.ResilienceTelemetry())
			}
			for _, in := range injs {
				if in != nil {
					rt.Injected.Add(in.Stats())
				}
			}
			res.Resilience = rt
		}
	}
	if sampler != nil {
		sampler.Finish()
		res.Timeline = sampler.Series()
		res.Latency = latRec
	}
	res.SLO = sloTracker
	res.Warp = m.WarpStats()
	return res, nil
}

// TenantShardRollup joins the SLO tracker's per-thread tenant ledger
// with each server shard's client list (the per-client service ledger),
// returning per-shard tenant->completed-request maps. Empty when the
// run had no tracker or no server telemetry.
func (r Result) TenantShardRollup() []map[int]uint64 {
	if r.SLO == nil || len(r.Servers) == 0 {
		return nil
	}
	shards := make([][]int, len(r.Servers))
	if r.ClientShards != nil {
		// Sharded fleet: each thread's home shard served its
		// allocations, so the rollup partitions the completed requests.
		for th, i := range r.ClientShards {
			if i >= 0 && i < len(shards) {
				shards[i] = append(shards[i], th)
			}
		}
		return r.SLO.Rollup(shards)
	}
	// Single server: every client belongs to shard 0.
	for _, c := range r.Servers[0].Clients {
		shards[0] = append(shards[0], c.ThreadID)
	}
	return r.SLO.Rollup(shards)
}

// offloadShards exposes the NextGen allocator(s) behind a (possibly
// sharded) run for telemetry extraction: the fleet's shards, a single
// allocator as a one-shard fleet, nil for non-NextGen or wrapped
// allocators. Shard i is attached to server daemon i.
func offloadShards(a alloc.Allocator) []*core.Allocator {
	switch ng := a.(type) {
	case *core.Fleet:
		return ng.Shards()
	case *core.Allocator:
		return []*core.Allocator{ng}
	}
	return nil
}

// makeAllocator instantiates the requested allocator on thread t,
// attaching offload shards to the already-spawned server daemons.
// injs holds one fault injector per daemon (nil entries = clean shard),
// or nil when no plan is armed.
func makeAllocator(t *sim.Thread, opt Options, servers int, srvs []*core.Server, latRec *timeline.LatencyRecorder, injs []*fault.Injector) alloc.Allocator {
	switch kind := opt.Allocator; kind {
	case "ptmalloc2":
		return ptmalloc.New(t)
	case "jemalloc":
		return jemalloc.New(t, 0)
	case "tcmalloc":
		return tcmalloc.New(t)
	case "mimalloc":
		return mimalloc.New(t)
	case "bump":
		return bump.New(t)
	case "nextgen", "nextgen-prealloc", "nextgen-sync", "nextgen-nearmem",
		"nextgen-inline", "nextgen-inline-agg", "nextgen-batch", "nextgen-adaptive",
		"nextgen-compact", "nextgen-inline-compact":
		cfg, _ := nextgenOptions(opt)
		cfg.Latency = latRec
		if opt.Resilience != nil {
			cfg.Resilience = *opt.Resilience
		} else if injs != nil {
			cfg.Resilience = core.DefaultResilience()
		}
		if servers > 1 {
			// Each shard gets its own injector after construction; the
			// shared cfg stays clean so untargeted shards run the seed
			// server loop.
			f := core.NewFleet(t, cfg, servers, opt.Partition)
			f.SetShardFaults(injs)
			for i, sh := range f.Shards() {
				srvs[i].Attach(sh)
			}
			return f
		}
		if len(injs) > 0 {
			cfg.Faults = injs[0]
		}
		a := core.New(t, cfg)
		if len(srvs) > 0 {
			srvs[0].Attach(a)
		}
		return a
	}
	panic(fmt.Sprintf("harness: unknown allocator %q", opt.Allocator))
}
