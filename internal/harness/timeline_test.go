package harness

import (
	"testing"

	"nextgenmalloc/internal/timeline"
	"nextgenmalloc/internal/workload"
)

// TestSamplerZeroTraffic pins the observability contract: arming the
// sampler must add zero simulated traffic. Every counter the golden
// tests pin — worker deltas, server delta, wall cycles, ring ops —
// must be bit-identical between a sampled and an unsampled run.
func TestSamplerZeroTraffic(t *testing.T) {
	for _, kind := range []string{"nextgen", "ptmalloc2"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			opts := func() Options {
				w := workload.DefaultXalanc(2000)
				w.NodeSlots = 1500
				return Options{Allocator: kind, Workload: w}
			}
			plain := Run(opts())
			armed := opts()
			armed.SampleInterval = 5000
			sampled := Run(armed)

			if plain.Total != sampled.Total {
				t.Errorf("Total diverged:\n%+v\n%+v", plain.Total, sampled.Total)
			}
			if len(plain.PerThread) != len(sampled.PerThread) {
				t.Fatalf("PerThread length diverged: %d vs %d", len(plain.PerThread), len(sampled.PerThread))
			}
			for i := range plain.PerThread {
				if plain.PerThread[i] != sampled.PerThread[i] {
					t.Errorf("PerThread[%d] diverged", i)
				}
			}
			if plain.Server != sampled.Server {
				t.Errorf("Server diverged:\n%+v\n%+v", plain.Server, sampled.Server)
			}
			if plain.WallCycles != sampled.WallCycles {
				t.Errorf("WallCycles diverged: %d vs %d", plain.WallCycles, sampled.WallCycles)
			}
			if plain.Served != sampled.Served {
				t.Errorf("Served diverged: %d vs %d", plain.Served, sampled.Served)
			}
			if plain.AllocStats != sampled.AllocStats {
				t.Errorf("AllocStats diverged")
			}

			// And the sampled run must actually carry a timeline.
			if sampled.Timeline == nil || len(sampled.Timeline.Samples) == 0 {
				t.Fatal("sampled run produced no timeline")
			}
			if plain.Timeline != nil || plain.Latency != nil {
				t.Error("unsampled run should carry no timeline or latency recorder")
			}
		})
	}
}

// TestOffloadSpansRecorded checks the latency pipeline end to end on a
// real offload run: spans appear, each histogram partitions (queue-wait
// + service = end-to-end), and histogram mass matches across phases.
func TestOffloadSpansRecorded(t *testing.T) {
	w := workload.DefaultXalanc(2000)
	w.NodeSlots = 1500
	res := Run(Options{Allocator: "nextgen", Workload: w, SampleInterval: 5000})

	if res.ServerCore < 0 {
		t.Fatal("nextgen run reported no server core")
	}
	rec := res.Latency
	if !rec.HasSpans() {
		t.Fatal("offload run recorded no latency spans")
	}
	if rec.ByOp[timeline.OpMalloc].Total.Count == 0 {
		t.Error("no malloc spans recorded")
	}
	for op := timeline.Op(0); op < timeline.NumOps; op++ {
		l := rec.ByOp[op]
		if l.Queue.Count != l.Service.Count || l.Service.Count != l.Total.Count {
			t.Errorf("%s: histogram counts diverge: queue=%d service=%d total=%d",
				op, l.Queue.Count, l.Service.Count, l.Total.Count)
		}
		// The partition identity holds exactly on sums even though
		// buckets quantise: Sum(queue) + Sum(service) = Sum(end-to-end).
		if l.Queue.Sum+l.Service.Sum != l.Total.Sum {
			t.Errorf("%s: sum partition broken: %d + %d != %d",
				op, l.Queue.Sum, l.Service.Sum, l.Total.Sum)
		}
	}
	// Retained raw spans must each satisfy the partition too.
	for i, s := range rec.Spans {
		if s.QueueWait()+s.Service() != s.EndToEnd() {
			t.Fatalf("span %d violates partition", i)
		}
		if s.Complete < s.Dequeue {
			t.Fatalf("span %d completed before dequeue", i)
		}
	}
}

// TestNonOffloadRunHasNoSpans: sampling an inline allocator yields a
// counter timeline but an empty recorder (the CLI warns on this).
func TestNonOffloadRunHasNoSpans(t *testing.T) {
	w := workload.DefaultXalanc(1500)
	w.NodeSlots = 1000
	res := Run(Options{Allocator: "ptmalloc2", Workload: w, SampleInterval: 5000})
	if res.Timeline == nil || len(res.Timeline.Samples) == 0 {
		t.Fatal("sampled non-offload run produced no timeline")
	}
	if res.Latency.HasSpans() {
		t.Error("inline allocator should record no offload spans")
	}
	if res.ServerCore != -1 {
		t.Errorf("inline run reports server core %d, want -1", res.ServerCore)
	}
}

// TestTimelineCoversRun: the sampled series must span the measured
// region and end at the machine's final counter state.
func TestTimelineCoversRun(t *testing.T) {
	w := workload.DefaultXalanc(2000)
	w.NodeSlots = 1500
	res := Run(Options{Allocator: "nextgen", Workload: w, SampleInterval: 5000})
	s := res.Timeline
	if len(s.Samples) < 2 {
		t.Fatalf("only %d samples", len(s.Samples))
	}
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i].Cycle <= s.Samples[i-1].Cycle {
			t.Fatalf("cycles not strictly increasing at %d", i)
		}
	}
	// Worker-core instructions in the final sample should be at least the
	// measured-region total (samples cover the whole run including
	// warm-up, so >=).
	keep := func(c int) bool { return c != res.ServerCore }
	last := s.CoresAt(len(s.Samples)-1, keep).Counters
	if last.Instructions < res.Total.Instructions {
		t.Errorf("final sample instructions %d < measured total %d",
			last.Instructions, res.Total.Instructions)
	}
}
