package harness

import (
	"testing"

	"nextgenmalloc/internal/slo"
	"nextgenmalloc/internal/workload"
)

func sloService() *workload.Service {
	return &workload.Service{
		NWorkers:          2,
		RequestsPerWorker: 60,
		Tenants:           5,
		ChurnEvery:        4,
		MeanGapCycles:     3000,
		BurstLen:          4,
		Seed:              7,
	}
}

// TestSLOZeroTraffic pins the SLO observability contract: arming the
// per-tenant tracker must add zero simulated traffic. Every counter the
// golden tests pin — worker deltas, server delta, wall cycles, ring
// ops — must be bit-identical between an armed and an unarmed run.
func TestSLOZeroTraffic(t *testing.T) {
	for _, kind := range []string{"nextgen", "mimalloc"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			opts := func() Options {
				return Options{Allocator: kind, Workload: sloService()}
			}
			plain := Run(opts())
			armedOpt := opts()
			o := slo.DefaultOptions()
			armedOpt.SLO = &o
			armed := Run(armedOpt)

			if plain.Total != armed.Total {
				t.Errorf("Total diverged:\n%+v\n%+v", plain.Total, armed.Total)
			}
			if len(plain.PerThread) != len(armed.PerThread) {
				t.Fatalf("PerThread length diverged: %d vs %d", len(plain.PerThread), len(armed.PerThread))
			}
			for i := range plain.PerThread {
				if plain.PerThread[i] != armed.PerThread[i] {
					t.Errorf("PerThread[%d] diverged", i)
				}
			}
			if plain.Server != armed.Server {
				t.Errorf("Server diverged:\n%+v\n%+v", plain.Server, armed.Server)
			}
			if plain.WallCycles != armed.WallCycles {
				t.Errorf("WallCycles diverged: %d vs %d", plain.WallCycles, armed.WallCycles)
			}
			if plain.Served != armed.Served {
				t.Errorf("Served diverged: %d vs %d", plain.Served, armed.Served)
			}
			if plain.AllocStats != armed.AllocStats {
				t.Errorf("AllocStats diverged")
			}

			// The unarmed run must carry no tracker; the armed run must
			// carry a populated one.
			if plain.SLO != nil {
				t.Fatalf("unarmed run carries an SLO tracker")
			}
			if armed.SLO == nil || !armed.SLO.HasData() {
				t.Fatal("armed run recorded no SLO data")
			}
			if got := armed.SLO.Completed(); got == 0 {
				t.Fatalf("armed run completed %d requests", got)
			}
			// Per-thread counts partition the completed total.
			var byThread uint64
			for _, id := range armed.SLO.ThreadIDs() {
				for _, n := range armed.SLO.ThreadRequests(id) {
					byThread += n
				}
			}
			if byThread != armed.SLO.Completed() {
				t.Errorf("per-thread requests sum %d != completed %d", byThread, armed.SLO.Completed())
			}
		})
	}
}

// TestSLODetachOnReuse: re-running a workload instance without SLO
// options must detach the stale tracker (the harness attaches nil), so
// the second run neither panics nor mutates the first run's ledger.
func TestSLODetachOnReuse(t *testing.T) {
	w := sloService()
	o := slo.DefaultOptions()
	armed := Run(Options{Allocator: "nextgen", Workload: w, SLO: &o})
	if armed.SLO == nil || armed.SLO.Completed() == 0 {
		t.Fatal("armed run recorded nothing")
	}
	before := armed.SLO.Completed()
	plain := Run(Options{Allocator: "nextgen", Workload: w})
	if plain.SLO != nil {
		t.Fatalf("unarmed reuse run carries a tracker")
	}
	if got := armed.SLO.Completed(); got != before {
		t.Errorf("stale tracker mutated on reuse: %d -> %d", before, got)
	}
}

// TestSLOAbandon: with a tight abandon threshold and a hot arrival
// stream the open-loop backlog must trip the abandon path, and
// abandoned requests must never appear in the completed ledger.
func TestSLOAbandon(t *testing.T) {
	w := sloService()
	w.MeanGapCycles = 200 // overload: arrivals far outpace service
	w.AbandonAfter = 5000
	o := slo.DefaultOptions()
	res := Run(Options{Allocator: "mimalloc", Workload: w, SLO: &o})
	if res.SLO == nil {
		t.Fatal("no tracker")
	}
	if res.SLO.Abandoned() == 0 {
		t.Fatal("overloaded run abandoned nothing")
	}
	total := res.SLO.Completed() + res.SLO.Abandoned()
	if want := uint64(w.NWorkers * w.RequestsPerWorker); total != want {
		t.Errorf("completed %d + abandoned %d != arrivals %d",
			res.SLO.Completed(), res.SLO.Abandoned(), want)
	}
}

// TestTenantShardRollup: on a sharded fleet the per-shard tenant rollup
// must partition the completed requests using the fleet's home-shard
// assignment.
func TestTenantShardRollup(t *testing.T) {
	w := sloService()
	w.NWorkers = 4
	o := slo.DefaultOptions()
	res := Run(Options{Allocator: "nextgen", Workload: w, SLO: &o, Servers: 2})
	if res.ClientShards == nil {
		t.Fatal("sharded run recorded no client-shard assignment")
	}
	roll := res.TenantShardRollup()
	if len(roll) != 2 {
		t.Fatalf("rollup has %d shards, want 2", len(roll))
	}
	var sum uint64
	perShard := make([]uint64, len(roll))
	for i, m := range roll {
		for _, n := range m {
			sum += n
			perShard[i] += n
		}
	}
	if sum != res.SLO.Completed() {
		t.Errorf("rollup sum %d != completed %d (per shard: %v)", sum, res.SLO.Completed(), perShard)
	}
	for i, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d's clients completed no requests", i)
		}
	}

	// Single-server runs roll everything into shard 0.
	single := Run(Options{Allocator: "nextgen", Workload: sloService(), SLO: &o})
	sroll := single.TenantShardRollup()
	if len(sroll) != 1 {
		t.Fatalf("single-server rollup has %d shards", len(sroll))
	}
	var ssum uint64
	for _, n := range sroll[0] {
		ssum += n
	}
	if ssum != single.SLO.Completed() {
		t.Errorf("single-server rollup sum %d != completed %d", ssum, single.SLO.Completed())
	}
}
