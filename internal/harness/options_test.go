package harness

import (
	"testing"

	"nextgenmalloc/internal/alloc"
	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/sim"
	"nextgenmalloc/internal/trace"
	"nextgenmalloc/internal/workload"
)

func smallChurn() workload.Workload {
	return &workload.Churn{NThreads: 1, Slots: 500, Rounds: 3000, MinSize: 16, MaxSize: 128, TouchBytes: 16, Seed: 4}
}

func TestUnknownAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown allocator")
		}
	}()
	Run(Options{Allocator: "nosuch", Workload: smallChurn()})
}

func TestMachineOverride(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	res := Run(Options{Allocator: "mimalloc", Workload: smallChurn(), Machine: &cfg})
	if res.Total.Instructions == 0 {
		t.Fatal("override machine ran nothing")
	}
}

func TestServerCoreCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when workers collide with the server core")
		}
	}()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	w := &workload.Xmalloc{NThreads: 2, OpsPerThread: 10, Seed: 1}
	Run(Options{Allocator: "nextgen", Workload: w, Machine: &cfg})
}

// TestPinServerCoreZero: PinServerCore makes core 0 a valid server core
// (the bare-int default used to make 0 mean "last core"); the worker is
// placed on the next free core.
func TestPinServerCoreZero(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	res := Run(Options{
		Allocator:     "nextgen",
		Workload:      smallChurn(),
		Machine:       &cfg,
		ServerCore:    0,
		PinServerCore: true,
	})
	if res.Server.Instructions == 0 {
		t.Error("server pinned to core 0 shows no work")
	}
	if res.Total.Instructions == 0 {
		t.Error("worker ran nothing with server on core 0")
	}
}

// TestPinServerCoreMiddle: workers step over a server pinned between
// them, and every worker still runs.
func TestPinServerCoreMiddle(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	w := &workload.Xmalloc{NThreads: 3, OpsPerThread: 200, Seed: 1}
	res := Run(Options{
		Allocator:     "nextgen",
		Workload:      w,
		Machine:       &cfg,
		ServerCore:    1,
		PinServerCore: true,
	})
	if res.Server.Instructions == 0 {
		t.Error("server pinned to core 1 shows no work")
	}
	if len(res.PerThread) != 3 {
		t.Fatalf("PerThread = %d entries, want 3", len(res.PerThread))
	}
	for i, d := range res.PerThread {
		if d.Instructions == 0 {
			t.Errorf("worker %d ran nothing", i)
		}
	}
}

func TestPinServerCoreOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range pinned server core")
		}
	}()
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	Run(Options{
		Allocator:     "nextgen",
		Workload:      smallChurn(),
		Machine:       &cfg,
		ServerCore:    4,
		PinServerCore: true,
	})
}

func TestWrapRecordsTrace(t *testing.T) {
	var rec *trace.Recorder
	res := Run(Options{
		Allocator: "mimalloc",
		Workload:  smallChurn(),
		Wrap: func(a alloc.Allocator) alloc.Allocator {
			rec = trace.NewRecorder(a)
			return rec
		},
	})
	if rec == nil || rec.Trace().Mallocs() == 0 {
		t.Fatal("wrap did not observe the request stream")
	}
	if uint64(rec.Trace().Mallocs()) != res.AllocStats.MallocCalls {
		t.Errorf("recorder saw %d mallocs, stats say %d",
			rec.Trace().Mallocs(), res.AllocStats.MallocCalls)
	}
}

func TestPrepareRuns(t *testing.T) {
	ran := false
	Run(Options{
		Allocator: "nextgen-prealloc",
		Workload:  smallChurn(),
		Prepare: func(th *sim.Thread, a alloc.Allocator) {
			ran = true
			if ng, ok := a.(*core.Allocator); ok {
				ng.Preheat(th, []uint64{32, 64, 96})
			}
		},
	})
	if !ran {
		t.Error("Prepare hook did not run")
	}
}

// TestServerCountersSeparated: the offload server's work must not leak
// into the application cores' totals.
func TestServerCountersSeparated(t *testing.T) {
	res := Run(Options{Allocator: "nextgen", Workload: smallChurn()})
	if res.Server.Instructions == 0 {
		t.Error("server core shows no work")
	}
	if res.Served == 0 {
		t.Error("no ring ops recorded")
	}
	// The workload is single-threaded: exactly one app-core delta.
	if len(res.PerThread) != 1 {
		t.Fatalf("PerThread = %d entries", len(res.PerThread))
	}
	if res.Total != res.PerThread[0] {
		t.Error("total != single worker delta")
	}
}

// TestTraceReplayAcrossAllocators: one recorded stream replays cleanly
// against every allocator family, with identical call counts.
func TestTraceReplayAcrossAllocators(t *testing.T) {
	var rec *trace.Recorder
	Run(Options{
		Allocator: "bump",
		Workload:  smallChurn(),
		Wrap: func(a alloc.Allocator) alloc.Allocator {
			rec = trace.NewRecorder(a)
			return rec
		},
	})
	tr := rec.Trace()
	for _, kind := range []string{"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc", "nextgen"} {
		res := Run(Options{Allocator: kind, Workload: &replayWL{tr: tr}})
		if int(res.AllocStats.MallocCalls) != tr.Mallocs() {
			t.Errorf("%s: replay made %d mallocs, want %d", kind, res.AllocStats.MallocCalls, tr.Mallocs())
		}
		if res.AllocStats.FreeCalls != res.AllocStats.MallocCalls {
			t.Errorf("%s: replay leaked (%d vs %d)", kind, res.AllocStats.MallocCalls, res.AllocStats.FreeCalls)
		}
	}
}

type replayWL struct{ tr *trace.Trace }

func (r *replayWL) Name() string                           { return "replay" }
func (r *replayWL) Threads() int                           { return 1 }
func (r *replayWL) Setup(t *sim.Thread, a alloc.Allocator) {}
func (r *replayWL) Run(t *sim.Thread, part int, a alloc.Allocator) {
	trace.Replay(t, a, r.tr)
}
