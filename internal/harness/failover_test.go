package harness

import (
	"testing"

	"nextgenmalloc/internal/core"
	"nextgenmalloc/internal/fault"
	"nextgenmalloc/internal/workload"
)

// patientFailover is the fleet fault tests' degradation policy: the
// timeout outlives a first-touch malloc (the server carving a class's
// initial slab runs ~90k busy cycles at the scaled geometry), so only
// an injected stall — never a cold shard — exhausts the ladder, and
// FailoverAfter 1 re-homes a client on its first abandoned request.
func patientFailover() *core.Resilience {
	return &core.Resilience{
		Enabled:         true,
		TimeoutCycles:   100000,
		MaxRetries:      2,
		BackoffCycles:   8000,
		FallbackAfter:   1,
		ProbeCycles:     100000,
		FailoverAfter:   1,
		MaxRequestBytes: 1 << 24,
	}
}

// TestFleetFailoverPermanentKill is the PR's acceptance invariant: with
// one of four shards permanently killed, failover keeps every malloc
// off the emergency tier (the healthy shards absorb the traffic), the
// ledger still balances at shutdown, and only the killed shard's
// clients re-home. The same kill without failover demonstrates the
// counterfactual — the killed shard's clients live on the emergency
// allocator for the rest of the run.
func TestFleetFailoverPermanentKill(t *testing.T) {
	run := func(failover bool) Result {
		r := patientFailover()
		if !failover {
			r.FailoverAfter = 0
		}
		return Run(Options{
			Allocator:  "nextgen",
			Workload:   fleetXalanc(4, 4000),
			Servers:    4,
			FaultPlans: []fault.Plan{{Seed: 1, StallStart: 200000, StallCycles: 1 << 26, Shard: 1}},
			Resilience: r,
		})
	}

	res := run(true)
	if err := res.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
	if res.Failover == nil {
		t.Fatal("armed failover produced no telemetry")
	}
	fo := res.Failover
	if fo.Totals.Downs == 0 || fo.Totals.ForwardedMallocs == 0 {
		t.Fatalf("permanent kill never re-homed a client: %+v", fo.Totals)
	}
	if fo.Totals.Rejoins != 0 {
		t.Errorf("%d clients rejoined a permanently dead shard", fo.Totals.Rejoins)
	}
	for _, c := range fo.Clients {
		if c.HomeShard == 0 {
			if c.Downs == 0 || c.ActiveShard == 0 {
				t.Errorf("killed shard's client %d never left: %+v", c.Thread, c)
			}
		} else if c.Downs != 0 || c.ActiveShard != c.HomeShard {
			t.Errorf("healthy shard's client %d re-homed: %+v", c.Thread, c)
		}
	}
	if em := res.Resilience.Client.EmergencyMallocs; em != 0 {
		t.Errorf("failover left %d mallocs on the emergency tier with healthy shards available", em)
	}
	for i, sv := range res.Servers {
		if sv.Served == 0 {
			t.Errorf("shard %d served nothing (shard 0 should serve pre-kill, the rest absorb the failover)", i)
		}
	}

	em := run(false)
	if err := em.CheckLiveness(); err != nil {
		t.Fatal(err)
	}
	if em.Failover != nil {
		t.Errorf("disarmed run recorded failover telemetry: %+v", em.Failover.Totals)
	}
	if em.Resilience.Client.EmergencyMallocs == 0 {
		t.Error("emergency-only run never touched the emergency tier under a permanent kill")
	}
}

// TestFleetMidBatchShardDeathLiveness (mid-batch death): a shard stalls
// while its clients hold half-flushed coalesced free batches (Batch 4
// stages frees unpublished in the ring). Under every service policy the
// run must complete with the ledger balanced — the degraded client's
// staged slots are republished and drained, later frees ride the
// deferred queue — and the finite stall must end in a probe-driven
// rejoin.
func TestFleetMidBatchShardDeathLiveness(t *testing.T) {
	for _, sched := range []core.SchedPolicy{core.FixedScan, core.RoundRobin, core.DoorbellPriority, core.BatchDrain} {
		t.Run(sched.String(), func(t *testing.T) {
			// Churn frees a slot on every round (xalanc's phases can spend
			// a whole degraded window in an allocation burst), so the
			// outage is guaranteed to catch in-flight frees.
			res := Run(Options{
				Allocator:  "nextgen",
				Workload:   &workload.Churn{NThreads: 2, Slots: 1000, Rounds: 10000, MinSize: 16, MaxSize: 256, TouchBytes: 32, Seed: 7},
				Servers:    2,
				Sched:      sched,
				Tune:       func(c *core.Config) { c.Batch = 4 },
				FaultPlans: []fault.Plan{{Seed: 3, StallStart: 100000, StallCycles: 400000, Shard: 1}},
				Resilience: patientFailover(),
			})
			if err := res.CheckLiveness(); err != nil {
				t.Fatal(err)
			}
			if res.Resilience == nil || res.Resilience.Injected.Stalls == 0 {
				t.Fatal("stall plan injected nothing")
			}
			if res.Failover == nil || res.Failover.Totals.Downs == 0 {
				t.Fatal("mid-batch shard death never re-homed the client")
			}
			if res.Failover.Totals.Rejoins == 0 {
				t.Error("client never rejoined after the finite stall")
			}
			if res.Resilience.Client.DeferredFrees == 0 {
				t.Error("no free was deferred across the shard death")
			}
		})
	}
}
