package harness

import (
	"testing"

	"nextgenmalloc/internal/workload"
)

// The shape tests assert the paper's qualitative results hold on the
// simulated reproduction (DESIGN.md §5); they run the full-scale
// experiments and are skipped under -short.

// TestPaperShapeTable1 checks Figure 1 / Table 1: PTMalloc2 is clearly
// worst, the three modern allocators are tightly grouped, and the
// dTLB-load-miss gap is an order of magnitude.
func TestPaperShapeTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test")
	}
	kinds := []string{"ptmalloc2", "jemalloc", "tcmalloc", "mimalloc"}
	cycles := map[string]float64{}
	tlb := map[string]float64{}
	for _, kind := range kinds {
		res := Run(Options{Allocator: kind, Workload: workload.DefaultXalanc(200000)})
		cycles[kind] = float64(res.Total.Cycles)
		tlb[kind] = float64(res.Total.DTLBLoadMisses)
		t.Logf("%-10s cycles=%.4e dTLB-load=%.3e LLC-load=%.3e", kind,
			cycles[kind], tlb[kind], float64(res.Total.LLCLoadMisses))
	}
	bestCyc, bestTLB := cycles["jemalloc"], tlb["jemalloc"]
	for _, k := range kinds[1:] {
		if cycles[k] < bestCyc {
			bestCyc = cycles[k]
		}
		if tlb[k] < bestTLB {
			bestTLB = tlb[k]
		}
	}
	if cycles["ptmalloc2"] <= cycles["jemalloc"] ||
		cycles["ptmalloc2"] <= cycles["tcmalloc"] ||
		cycles["ptmalloc2"] <= cycles["mimalloc"] {
		t.Error("PTMalloc2 is not the slowest allocator (paper Figure 1)")
	}
	if spread := cycles["ptmalloc2"] / bestCyc; spread < 1.35 {
		t.Errorf("cycle spread %.2fx, want >= 1.35x (paper: up to 1.72x)", spread)
	}
	for _, k := range []string{"jemalloc", "tcmalloc", "mimalloc"} {
		if cycles[k]/bestCyc > 1.10 {
			t.Errorf("%s is %.2fx the best modern allocator; paper groups them within ~3%%",
				k, cycles[k]/bestCyc)
		}
	}
	if ratio := tlb["ptmalloc2"] / bestTLB; ratio < 8 {
		t.Errorf("dTLB-load-miss ratio %.1fx, want >= 8x (paper: more than 10x)", ratio)
	}
}

// TestPaperShapeTable2 checks the xmalloc thread-scaling study: LLC
// misses on TCMalloc grow superlinearly from 1 to 8 threads.
func TestPaperShapeTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test")
	}
	miss := map[int]float64{}
	for _, n := range []int{1, 8} {
		w := &workload.Xmalloc{NThreads: n, OpsPerThread: 40000, TouchBytes: 128, Seed: 3}
		res := Run(Options{Allocator: "tcmalloc", Workload: w})
		miss[n] = float64(res.Total.LLCLoadMisses + res.Total.LLCStoreMisses)
		t.Logf("threads=%d LLC misses=%.3e", n, miss[n])
	}
	if growth := miss[8] / miss[1]; growth < 5 {
		t.Errorf("LLC miss growth 1->8 threads = %.1fx, want >= 5x (paper: more than 10x)", growth)
	}
}

// TestPaperShapeTable3 checks the NextGen-Malloc comparison: with
// predictive preallocation the offloaded allocator beats Mimalloc on
// cycles while cutting the application core's miss counters; the plain
// synchronous prototype shows the same miss reductions.
func TestPaperShapeTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test")
	}
	results := map[string]Result{}
	for _, kind := range []string{"mimalloc", "nextgen", "nextgen-prealloc"} {
		w := workload.DefaultXalanc(200000)
		w.ComputePerOp = 360
		w.ChaseClusters = 16
		w.ChaseEvery = 3
		results[kind] = Run(Options{Allocator: kind, Workload: w})
		r := results[kind]
		t.Logf("%-18s cycles=%.4e LLC-load=%.3e dTLB-load=%.3e",
			kind, float64(r.Total.Cycles), float64(r.Total.LLCLoadMisses),
			float64(r.Total.DTLBLoadMisses))
	}
	mi, ng, pre := results["mimalloc"], results["nextgen"], results["nextgen-prealloc"]
	if pre.Total.Cycles >= mi.Total.Cycles {
		t.Errorf("nextgen-prealloc (%d) does not beat mimalloc (%d) (paper: 4.51%% win)",
			pre.Total.Cycles, mi.Total.Cycles)
	}
	if ng.Total.LLCLoadMisses >= mi.Total.LLCLoadMisses {
		t.Error("plain nextgen does not reduce app-core LLC-load misses")
	}
	if ng.Total.DTLBLoadMisses >= mi.Total.DTLBLoadMisses {
		t.Error("plain nextgen does not reduce app-core dTLB-load misses")
	}
}

// TestProfileAllocatorCost logs per-pair allocator costs (informational).
func TestProfileAllocatorCost(t *testing.T) {
	if testing.Short() {
		t.Skip("informational profile")
	}
	for _, kind := range Kinds {
		w := &workload.Churn{NThreads: 1, Slots: 20000, Rounds: 100000, MinSize: 16, MaxSize: 256, TouchBytes: 0, Seed: 9}
		res := Run(Options{Allocator: kind, Workload: w})
		pairs := float64(res.AllocStats.FreeCalls)
		t.Logf("%-18s instr/pair=%6.1f cyc/pair=%7.1f atomics/pair=%4.2f",
			kind, float64(res.Total.Instructions)/pairs,
			float64(res.Total.Cycles)/pairs, float64(res.Total.AtomicOps)/pairs)
	}
}
