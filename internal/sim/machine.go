package sim

import (
	"fmt"

	"nextgenmalloc/internal/cache"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/tlb"
)

// Machine is one simulated multicore computer: a set of cores over a
// shared cache system and one address space, plus a kernel.
//
// Exactly one simulated thread executes at a time (leases are handed out
// by a deterministic scheduler), so the simulation is single-writer and
// bit-reproducible for a given seed while still modelling fine-grained
// interleaving of the threads' memory operations.
type Machine struct {
	cfg     Config
	phys    *mem.Physical
	as      *mem.AddressSpace
	kernel  *mem.Kernel
	caches  *cache.System
	tlbs    []*tlb.TLB
	threads []*Thread
	regions *RegionTable

	coreBusy     []bool   // a live thread is pinned here
	coreInstr    []uint64 // retired instructions per core (incl. finished threads)
	coreClock    []uint64 // committed clock per core (finished threads)
	coreAtomics  []uint64
	coreKernelCy []uint64

	running  bool
	stopping bool

	// probe, when non-nil, is invoked from the scheduler loop after every
	// lease with the current wall clock. It runs host-side between thread
	// resumptions: it may read counters and host state but must not issue
	// simulated operations, so an armed probe cannot perturb the clock,
	// the scheduling order, or any PMU counter.
	//
	// Time warp (Config.Warp) never changes the probe cadence: warped
	// wait rounds are always interior to one lease, so probes fire at
	// every lease end — every warp landing — and never inside a skipped
	// window. An armed probe observes the exact same wall-clock sequence
	// with warp on and off.
	probe func(wall uint64)

	// heap is the run queue: an indexed min-heap of live threads ordered
	// by (clock, id), so the scheduler picks the next thread and its
	// lease base in O(log n) instead of scanning every thread per lease.
	heap []*Thread

	warp WarpStats
}

// WarpStats is the machine-wide time-warp ledger: how much host stepping
// the warp fast path avoided. Purely host-side observation — warped
// cycles are simulated cycles that were accounted without being stepped.
type WarpStats struct {
	// Windows counts bulk skips applied.
	Windows uint64
	// Rounds counts wait-loop rounds skipped across all windows.
	Rounds uint64
	// CyclesWarped is the total simulated cycles covered by skipped
	// rounds (each also appears in the owning core's Cycles, exactly as
	// if stepped).
	CyclesWarped uint64
	// LargestSkip is the largest single window, in cycles.
	LargestSkip uint64
}

// WarpStats returns the time-warp ledger (zero when Config.Warp is off
// or no wait loop reached a steady state).
func (m *Machine) WarpStats() WarpStats { return m.warp }

func (m *Machine) noteWarp(rounds, cycles uint64) {
	m.warp.Windows++
	m.warp.Rounds += rounds
	m.warp.CyclesWarped += cycles
	if cycles > m.warp.LargestSkip {
		m.warp.LargestSkip = cycles
	}
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	phys := mem.NewPhysical()
	as := mem.NewAddressSpace(phys)

	base := cfg.Profile.Cache
	perCore := make([]cache.Config, cfg.Cores)
	tlbs := make([]*tlb.TLB, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		p := cfg.Profile
		if ov, ok := cfg.CoreOverrides[i]; ok {
			p = ov
		}
		perCore[i] = p.Cache
		tc := p.TLB
		if tc.L2Entries == 0 {
			// A single-level TLB still needs a (degenerate) second level;
			// give it one entry group that never hits by using the walk
			// cost for everything past L1.
			tc.L2Entries = tc.L1Ways // minimal, effectively useless
			tc.L2Ways = tc.L1Ways
		}
		tlbs[i] = tlb.New(tc)
	}

	m := &Machine{
		cfg:          cfg,
		phys:         phys,
		as:           as,
		kernel:       mem.NewKernel(as, cfg.Syscall),
		caches:       cache.NewSystemHetero(base, perCore),
		tlbs:         tlbs,
		regions:      newRegionTable(),
		coreBusy:     make([]bool, cfg.Cores),
		coreInstr:    make([]uint64, cfg.Cores),
		coreClock:    make([]uint64, cfg.Cores),
		coreAtomics:  make([]uint64, cfg.Cores),
		coreKernelCy: make([]uint64, cfg.Cores),
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Kernel returns the simulated kernel.
func (m *Machine) Kernel() *mem.Kernel { return m.kernel }

// AddressSpace returns the process address space.
func (m *Machine) AddressSpace() *mem.AddressSpace { return m.as }

// Cores returns the number of cores.
func (m *Machine) Cores() int { return m.cfg.Cores }

// Spawn registers a simulated thread pinned to core. All threads must be
// spawned before Run. A daemon thread (see SpawnDaemon) does not keep
// the machine alive.
func (m *Machine) Spawn(name string, core int, fn func(*Thread)) *Thread {
	return m.spawn(name, core, fn, false)
}

// SpawnDaemon registers a service thread (e.g. the NextGen allocator
// core). When every non-daemon thread has finished, the machine flips
// Stopping; daemons must poll Thread.Stopping and return.
func (m *Machine) SpawnDaemon(name string, core int, fn func(*Thread)) *Thread {
	return m.spawn(name, core, fn, true)
}

func (m *Machine) spawn(name string, core int, fn func(*Thread), daemon bool) *Thread {
	if m.running {
		panic("sim: Spawn after Run")
	}
	if core < 0 || core >= m.cfg.Cores {
		panic(fmt.Sprintf("sim: core %d out of range", core))
	}
	if m.coreBusy[core] {
		panic(fmt.Sprintf("sim: core %d already has a thread", core))
	}
	m.coreBusy[core] = true
	t := &Thread{
		m:      m,
		id:     len(m.threads),
		name:   name,
		core:   core,
		fn:     fn,
		daemon: daemon,
		tlb:    m.tlbs[core],
		caches: m.caches,
	}
	m.threads = append(m.threads, t)
	return t
}

// SetProbe installs the scheduler-loop observation hook (see the probe
// field). Install before Run; pass nil to disarm.
func (m *Machine) SetProbe(fn func(wall uint64)) {
	if m.running {
		panic("sim: SetProbe after Run")
	}
	m.probe = fn
}

// AddProbe chains fn onto any probe already installed, so independent
// observers (the timeline sampler, the fault injector) can share the
// scheduler hook. Probes run in installation order under the same
// contract as SetProbe: host-side observation only.
func (m *Machine) AddProbe(fn func(wall uint64)) {
	if m.running {
		panic("sim: AddProbe after Run")
	}
	if prev := m.probe; prev != nil {
		m.probe = func(wall uint64) {
			prev(wall)
			fn(wall)
		}
		return
	}
	m.probe = fn
}

// Run executes every spawned thread to completion, interleaving them
// deterministically: the thread with the lowest core clock always runs
// next, holding a lease until just past the next-lowest clock plus the
// configured quantum. Run returns the final wall-clock (the maximum core
// clock reached).
//
// Threads run as coroutines (iter.Pull), so a lease handoff is a direct
// stack switch that never enters the Go runtime scheduler — an order of
// magnitude cheaper on the host than the channel park/unpark a
// goroutine-per-thread design pays, with the exact same deterministic
// decision sequence. A side effect is that a panic in simulated code
// now unwinds through Run on the caller's goroutine instead of killing
// a detached goroutine.
func (m *Machine) Run() uint64 {
	if m.running {
		panic("sim: Run called twice")
	}
	m.running = true
	for _, t := range m.threads {
		t.start()
	}

	// Build the run heap: live threads ordered by (clock, id). The root
	// is always the unique scheduling minimum — the same thread the old
	// one-pass scan picked — and the lease base (lowest clock among the
	// others) is the smaller of the root's children: the heap property
	// orders parent clocks below descendant clocks, so every non-root
	// thread's clock is bounded below by a child of the root.
	m.heap = make([]*Thread, len(m.threads))
	copy(m.heap, m.threads)
	for i, t := range m.heap {
		t.heapIdx = i
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	userCount := 0
	for _, t := range m.threads {
		if !t.daemon {
			userCount++
		}
	}

	var wall uint64
	for len(m.heap) > 0 {
		if userCount == 0 {
			m.stopping = true
		}
		t := m.heap[0]
		lease := ^uint64(0)
		if len(m.heap) > 1 {
			lease = m.heap[1].clock
			if len(m.heap) > 2 && m.heap[2].clock < lease {
				lease = m.heap[2].clock
			}
		}
		// Lease until just past the next-lowest clock.
		if lease != ^uint64(0) {
			lease += m.cfg.Quantum
		}
		t.lease = lease
		if _, more := t.next(); !more {
			t.done = true
			m.retire(t)
			last := len(m.heap) - 1
			m.heapSwap(0, last)
			m.heap[last] = nil
			m.heap = m.heap[:last]
			if last > 0 {
				m.siftDown(0)
			}
			if !t.daemon {
				userCount--
			}
		} else {
			// The lease only ever moves the root's clock forward, so a
			// single sift-down restores the heap.
			m.siftDown(0)
		}
		if t.clock > wall {
			wall = t.clock
		}
		if m.probe != nil {
			m.probe(wall)
		}
	}
	return wall
}

// heapLess orders the run heap by (clock, id) — the scheduler's total
// order (ids are unique, so there are no equal keys).
func (m *Machine) heapLess(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (m *Machine) heapSwap(i, j int) {
	h := m.heap
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (m *Machine) siftDown(i int) {
	n := len(m.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && m.heapLess(r, c) {
			c = r
		}
		if !m.heapLess(c, i) {
			return
		}
		m.heapSwap(i, c)
		i = c
	}
}

// retire folds a finished thread's private counters into the per-core
// totals and frees its core.
func (m *Machine) retire(t *Thread) {
	m.coreInstr[t.core] += t.instr
	if t.clock > m.coreClock[t.core] {
		m.coreClock[t.core] = t.clock
	}
	m.coreAtomics[t.core] += t.atomics
	m.coreKernelCy[t.core] += t.kernelCycles
	m.coreBusy[t.core] = false
}

// Stopping reports whether all non-daemon threads have finished.
func (m *Machine) Stopping() bool { return m.stopping }

// CoreCounters returns the PMU snapshot for one core. It may be called
// after Run, or mid-run by the owning thread (live threads' in-flight
// counts are included).
func (m *Machine) CoreCounters(core int) Counters {
	cs := m.caches.Stats(core)
	ts := m.tlbs[core].Stats()
	c := Counters{
		Cycles:          m.coreClock[core],
		Instructions:    m.coreInstr[core],
		Loads:           cs.Loads,
		Stores:          cs.Stores,
		L1Misses:        cs.L1Misses,
		L2Misses:        cs.L2Misses,
		LLCLoadMisses:   cs.LLCLoadMisses,
		LLCStoreMisses:  cs.LLCStoreMisses,
		DTLBLoadMisses:  ts.LoadMisses,
		DTLBStoreMisses: ts.StoreMisses,
		STLBHits:        ts.STLBHits,
		AtomicOps:       m.coreAtomics[core],
		KernelCycles:    m.coreKernelCy[core],
		Invalidations:   cs.Invalidations,
		DirtyTransfers:  cs.DirtyTransfers,
	}
	// Include live threads still pinned to this core.
	for _, t := range m.threads {
		if t.core == core && !t.done {
			c.Cycles = max(c.Cycles, t.clock)
			c.Instructions += t.instr
			c.AtomicOps += t.atomics
			c.KernelCycles += t.kernelCycles
		}
	}
	return c
}

// TotalCounters sums the counters of every core that executed anything;
// Cycles is the sum of active-core cycles (how perf's task-clock-based
// totals behave in the paper's tables).
func (m *Machine) TotalCounters() Counters {
	var sum Counters
	for core := 0; core < m.cfg.Cores; core++ {
		c := m.CoreCounters(core)
		if c.Instructions == 0 {
			continue
		}
		sum.Add(c)
	}
	return sum
}
