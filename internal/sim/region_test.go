package sim

import (
	"testing"

	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
)

// TestMemoHitAttributionFree pins the cost model for region attribution:
// on the micro-TLB memo hit path a load must cost the same simulated
// cycles whether or not its page carries a non-default region mark, and
// the host-side fast path must stay allocation-free. A regression here
// would tax every hot-loop access to pay for telemetry.
func TestMemoHitAttributionFree(t *testing.T) {
	const loads = 1000
	cost := func(mark bool) (cycles uint64, allocs float64) {
		cfg := DefaultConfig()
		cfg.Cores = 1
		m := New(cfg)
		base, _ := m.Kernel().Mmap(1)
		m.Spawn("probe", 0, func(th *Thread) {
			if mark {
				th.MarkRegion(base, 1<<12, region.Ring)
			}
			th.Load64(base) // prime translation memo and cache line
			start := th.Clock()
			for i := 0; i < loads; i++ {
				th.Load64(base)
			}
			cycles = th.Clock() - start
			// A sole thread never yields mid-access, so the closure stays
			// on this goroutine and AllocsPerRun measures only the load.
			allocs = testing.AllocsPerRun(100, func() { th.Load64(base) })
		})
		m.Run()
		return
	}
	plainCycles, plainAllocs := cost(false)
	markedCycles, markedAllocs := cost(true)
	if markedCycles != plainCycles {
		t.Errorf("memo-hit loads on a marked page cost %d cycles vs %d unmarked; attribution must be free on the fast path",
			markedCycles, plainCycles)
	}
	if plainAllocs != 0 || markedAllocs != 0 {
		t.Errorf("memo-hit Load64 allocates on the host (plain %.1f, marked %.1f allocs/op)",
			plainAllocs, markedAllocs)
	}
}

func TestRegionStaticDefaults(t *testing.T) {
	rt := newRegionTable()
	for _, tc := range []struct {
		addr uint64
		want region.Class
	}{
		{mem.BrkBase, region.User},
		{mem.BrkBase + 12345, region.User},
		{mem.MetaBase, region.Meta},
		{mem.MetaBase + 64<<20, region.Meta},
		{mem.MmapBase, region.User},
		{mem.MmapBase + 5<<30, region.User},
	} {
		if got := rt.Classify(tc.addr); got != tc.want {
			t.Errorf("Classify(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}

func TestRegionMarkGranularity(t *testing.T) {
	rt := newRegionTable()
	base := uint64(mem.MmapBase) + 4<<mem.PageShift
	// Mark a 16-byte granule: exactly that granule changes class.
	rt.Mark(base+32, 16, region.Meta)
	if got := rt.Classify(base + 32); got != region.Meta {
		t.Errorf("marked granule = %v, want Meta", got)
	}
	if got := rt.Classify(base + 47); got != region.Meta {
		t.Errorf("last byte of marked granule = %v, want Meta", got)
	}
	if got := rt.Classify(base + 16); got != region.User {
		t.Errorf("granule before mark = %v, want User", got)
	}
	if got := rt.Classify(base + 48); got != region.User {
		t.Errorf("granule after mark = %v, want User", got)
	}
	// A sub-granule mark rounds outward to cover the touched granules.
	rt.Mark(base+100, 8, region.Global)
	if got := rt.Classify(base + 96); got != region.Global {
		t.Errorf("rounded-down granule = %v, want Global", got)
	}
}

func TestRegionMarkCrossesPages(t *testing.T) {
	rt := newRegionTable()
	base := uint64(mem.MmapBase) + 8<<mem.PageShift
	n := int(3 * mem.PageSize)
	rt.Mark(base, n, region.Ring)
	for _, off := range []uint64{0, mem.PageSize - 16, mem.PageSize, 2*mem.PageSize + 512, uint64(n) - 16} {
		if got := rt.Classify(base + off); got != region.Ring {
			t.Errorf("Classify(base+%#x) = %v, want Ring", off, got)
		}
	}
	if got := rt.Classify(base + uint64(n)); got != region.User {
		t.Errorf("first byte past mark = %v, want User", got)
	}
}

func TestRegionRemarkOverrides(t *testing.T) {
	rt := newRegionTable()
	base := uint64(mem.MmapBase)
	rt.Mark(base, 64, region.Meta)
	rt.Mark(base, 64, region.User)
	if got := rt.Classify(base); got != region.User {
		t.Errorf("remarked granule = %v, want User", got)
	}
	// Metadata-range pages can be remarked too, overriding the static
	// default.
	rt.Mark(mem.MetaBase, 16, region.Ring)
	if got := rt.Classify(mem.MetaBase); got != region.Ring {
		t.Errorf("remarked meta granule = %v, want Ring", got)
	}
	if got := rt.Classify(mem.MetaBase + 16); got != region.Meta {
		t.Errorf("untouched meta granule = %v, want Meta", got)
	}
}

// TestClassCountersMatchTotals runs real traffic and checks that the
// per-class breakdown partitions the PMU counters exactly: summing the
// classes must reproduce the classless totals for every event.
func TestClassCountersMatchTotals(t *testing.T) {
	m := New(DefaultConfig())
	m.Spawn("t", 0, func(th *Thread) {
		user := th.Mmap(4)
		meta := th.MmapMeta(4)
		th.MarkRegion(user+mem.PageSize, int(mem.PageSize), region.Ring)
		for i := uint64(0); i < 4096; i += 64 {
			th.Store64(user+i, i)
			th.Store64(meta+i, i)
			th.Store64(user+mem.PageSize+i, i)
			_ = th.Load64(user + i)
		}
	})
	m.Run()
	total := m.CoreCounters(0)
	var sum ClassCounters
	bd := m.CoreClassCounters(0)
	for _, c := range bd {
		sum.Add(c)
	}
	if sum.LLCLoadMisses != total.LLCLoadMisses || sum.LLCStoreMisses != total.LLCStoreMisses {
		t.Errorf("class LLC misses (%d,%d) != totals (%d,%d)",
			sum.LLCLoadMisses, sum.LLCStoreMisses, total.LLCLoadMisses, total.LLCStoreMisses)
	}
	if sum.DTLBLoadMisses != total.DTLBLoadMisses || sum.DTLBStoreMisses != total.DTLBStoreMisses {
		t.Errorf("class dTLB misses (%d,%d) != totals (%d,%d)",
			sum.DTLBLoadMisses, sum.DTLBStoreMisses, total.DTLBLoadMisses, total.DTLBStoreMisses)
	}
	// The traffic above deliberately hits three classes.
	for _, cls := range []region.Class{region.User, region.Meta, region.Ring} {
		if bd[cls].Stores == 0 {
			t.Errorf("class %v saw no stores", cls)
		}
	}
}
