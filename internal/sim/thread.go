package sim

import (
	"fmt"
	"iter"

	"nextgenmalloc/internal/cache"
	"nextgenmalloc/internal/mem"
	"nextgenmalloc/internal/region"
	"nextgenmalloc/internal/tlb"
)

// The micro-TLB is a host-side memoization of the software page walk
// (mem.AddressSpace.PageShiftAt + MustTranslate, two hash-map lookups in
// the seed engine) plus the frame pointer of the backing page. It is
// invisible to the simulated machine: the hardware TLB model is still
// consulted on every access and all PMU counters are unchanged. Entries
// are validated against the address-space epoch, which advances on every
// munmap, so a cached frame can never outlive its mapping.
const (
	mtlbBits = 7
	mtlbSize = 1 << mtlbBits
	mtlbMask = mtlbSize - 1
)

// mtlbEntry caches one page translation. vpn is stored +1 so the zero
// value never matches a real page.
type mtlbEntry struct {
	vpn   uint64
	frame *mem.Frame
	base  uint64       // physical page base
	cls   *pageClasses // the page's granule class array (region table)
	shift uint8        // translation granularity for the hardware TLB model
}

// class returns the address class of vaddr's granule (the entry must
// cover vaddr's page).
func (e *mtlbEntry) class(vaddr uint64) region.Class {
	return e.cls[(vaddr&mem.PageMask)>>granuleShift]
}

// Thread is one simulated hardware thread, pinned 1:1 to a core. All
// simulated work — compute, loads, stores, atomics, system calls — is
// issued through its methods, each of which advances the core clock and
// the PMU counters.
//
// Thread methods must only be called from the function passed to
// Machine.Spawn, on the goroutine the machine created for it.
type Thread struct {
	m      *Machine
	id     int
	name   string
	core   int
	fn     func(*Thread)
	daemon bool
	tlb    *tlb.TLB      // this core's TLB (== m.tlbs[core])
	caches *cache.System // the shared hierarchy (== m.caches)

	clock        uint64
	instr        uint64
	atomics      uint64
	kernelCycles uint64

	// Coroutine plumbing: yield suspends the thread back to the
	// scheduler loop in Machine.Run; next resumes it with a fresh lease
	// already stored in t.lease. See Thread.start.
	yield func(struct{}) bool
	next  func() (struct{}, bool)
	lease uint64
	done  bool
	// yields counts lease expirations (scheduler suspensions). WarpLoop
	// compares it across wait rounds: a round during which the thread
	// yielded may have observed memory written by another thread, so it
	// can never serve as a bulk-replay template.
	yields uint64
	// heapIdx is this thread's position in the scheduler's run heap.
	heapIdx int
	// Scratch buffers for warpApply's probe results, reused across bulk
	// skips so a steady wait allocates nothing per window.
	warpIdxs []int
	warpWays []int
	warpCls  []region.Class

	mtlb      [mtlbSize]mtlbEntry
	mtlbEpoch uint64

	// lastLine is the line tag of this thread's previous memory access,
	// +1 so the zero value never matches. Only when the next access lands
	// on the same line is the O(1) SameLineFast probe worth attempting;
	// everything else goes straight to the full hierarchy walk.
	lastLine uint64
	// lastE memoizes the micro-TLB slot the previous scalar access
	// resolved through. The slot's vpn field self-validates: it changes
	// if the slot is reused for another page and zeroes when an epoch
	// flush clears the array, so a stale pointer can never mistranslate.
	lastE *mtlbEntry
}

// ID returns the thread's id (its spawn order).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() int { return t.core }

// Clock returns the thread's current cycle count.
func (t *Thread) Clock() uint64 { return t.clock }

// Instructions returns the thread's retired instruction count.
func (t *Thread) Instructions() uint64 { return t.instr }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Stopping reports whether the machine is shutting down (all non-daemon
// threads finished); daemon loops must poll this and return.
func (t *Thread) Stopping() bool { return t.m.stopping }

// start arms the thread's coroutine. The body does not run until the
// scheduler's first next() call, and every suspension point is an
// explicit yield in step — control transfer is a direct coroutine
// switch, not a channel rendezvous through the runtime scheduler.
func (t *Thread) start() {
	t.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		t.yield = yield
		t.fn(t)
	})
}

// step is called before every simulated operation; it suspends the
// thread back to the scheduler once the clock has passed the lease end.
func (t *Thread) step() {
	if t.clock <= t.lease {
		return
	}
	t.yields++
	t.yield(struct{}{})
}

// Exec retires n ALU instructions (1 cycle each — the in-order,
// IPC-1 model the paper's arithmetic uses).
func (t *Thread) Exec(n int) {
	if n <= 0 {
		return
	}
	t.step()
	t.instr += uint64(n)
	t.clock += uint64(n)
}

// translate resolves vaddr through the per-thread micro-TLB, falling
// back to the software page walk on a miss. The returned entry is owned
// by the micro-TLB and valid until the next munmap.
func (t *Thread) translate(vaddr uint64) *mtlbEntry {
	if ep := t.m.as.Epoch(); ep != t.mtlbEpoch {
		t.mtlb = [mtlbSize]mtlbEntry{}
		t.mtlbEpoch = ep
	}
	vpn := vaddr >> mem.PageShift
	e := &t.mtlb[vpn&mtlbMask]
	if e.vpn != vpn+1 {
		shift := t.m.as.PageShiftAt(vaddr)
		paddr := t.m.as.MustTranslate(vaddr)
		*e = mtlbEntry{
			vpn:   vpn + 1,
			frame: t.m.phys.FrameFor(paddr),
			base:  paddr &^ uint64(mem.PageMask),
			cls:   t.m.regions.page(vaddr),
			shift: uint8(shift),
		}
	}
	return e
}

// access performs the TLB walk and cache access for one scalar memory
// operation and returns the translation entry (physical base + frame).
func (t *Thread) access(vaddr uint64, size int, isStore bool) *mtlbEntry {
	if size != 1 && size != 2 && size != 4 && size != 8 {
		panic(fmt.Sprintf("sim: unsupported access size %d", size))
	}
	if vaddr&uint64(size-1) != 0 {
		panic(fmt.Sprintf("sim: unaligned %d-byte access at %#x by %s", size, vaddr, t.name))
	}
	t.step()
	t.instr++
	e := t.lastE
	if e == nil || vaddr>>mem.PageShift != e.vpn-1 || t.mtlbEpoch != t.m.as.Epoch() {
		e = t.translate(vaddr)
		t.lastE = e
	}
	paddr := e.base | vaddr&mem.PageMask
	tag := paddr >> cache.LineShift
	cls := e.class(vaddr)
	// Repeat hits on the thread's most recent line (the dominant access
	// pattern) resolve without walking either the TLB model or the cache
	// hierarchy; the model updates are identical to the full paths' hit
	// cases. Same line implies same page, so a TLB MRU hit is the
	// expected outcome; each helper backs off without side effects when
	// its precondition fails and the full path runs instead.
	var cyc uint64
	if tag+1 == t.lastLine {
		if !t.tlb.HitMRU(vaddr, isStore, uint(e.shift)) {
			cyc = t.tlb.AccessClass(vaddr, isStore, uint(e.shift), cls)
		}
		if hit, ok := t.caches.SameLineFastClass(t.core, tag, isStore, cls); ok {
			t.clock += cyc + hit
			return e
		}
	} else {
		t.lastLine = tag + 1
		cyc = t.tlb.AccessClass(vaddr, isStore, uint(e.shift), cls)
	}
	cyc += t.caches.AccessClass(t.core, paddr, isStore, cls)
	t.clock += cyc
	return e
}

// Load reads size bytes (1/2/4/8) at vaddr, little-endian.
func (t *Thread) Load(vaddr uint64, size int) uint64 {
	e := t.access(vaddr, size, false)
	return e.frame.Load(vaddr&mem.PageMask, size)
}

// Store writes size bytes (1/2/4/8) at vaddr, little-endian.
func (t *Thread) Store(vaddr uint64, size int, val uint64) {
	e := t.access(vaddr, size, true)
	e.frame.Store(vaddr&mem.PageMask, size, val)
}

// Load8/16/32/64 and Store8/16/32/64 are sized conveniences.
func (t *Thread) Load8(a uint64) uint64  { return t.Load(a, 1) }
func (t *Thread) Load16(a uint64) uint64 { return t.Load(a, 2) }
func (t *Thread) Load32(a uint64) uint64 { return t.Load(a, 4) }
func (t *Thread) Load64(a uint64) uint64 { return t.Load(a, 8) }

func (t *Thread) Store8(a, v uint64)  { t.Store(a, 1, v) }
func (t *Thread) Store16(a, v uint64) { t.Store(a, 2, v) }
func (t *Thread) Store32(a, v uint64) { t.Store(a, 4, v) }
func (t *Thread) Store64(a, v uint64) { t.Store(a, 8, v) }

// atomic performs the locked-RMW access pattern: an exclusive (write)
// access plus the serialization cost the paper cites as 67 cycles [3].
func (t *Thread) atomic(vaddr uint64) *mtlbEntry {
	e := t.access(vaddr, 8, true)
	t.clock += t.m.cfg.AtomicExtraCycles
	t.atomics++
	return e
}

// CAS64 is an atomic compare-and-swap on a 64-bit word, returning whether
// the swap happened.
func (t *Thread) CAS64(vaddr, old, new uint64) bool {
	e := t.atomic(vaddr)
	off := vaddr & mem.PageMask
	if e.frame.Load(off, 8) != old {
		return false
	}
	e.frame.Store(off, 8, new)
	return true
}

// FetchAdd64 atomically adds delta to the 64-bit word at vaddr and
// returns the previous value.
func (t *Thread) FetchAdd64(vaddr, delta uint64) uint64 {
	e := t.atomic(vaddr)
	off := vaddr & mem.PageMask
	cur := e.frame.Load(off, 8)
	e.frame.Store(off, 8, cur+delta)
	return cur
}

// Swap64 atomically exchanges the word at vaddr with v.
func (t *Thread) Swap64(vaddr, v uint64) uint64 {
	e := t.atomic(vaddr)
	off := vaddr & mem.PageMask
	cur := e.frame.Load(off, 8)
	e.frame.Store(off, 8, v)
	return cur
}

// AtomicLoad64 is an acquire load (plain load plus a light fence on this
// memory model).
func (t *Thread) AtomicLoad64(vaddr uint64) uint64 {
	return t.Load64(vaddr)
}

// AtomicStore64 is a release store.
func (t *Thread) AtomicStore64(vaddr, v uint64) {
	t.Store64(vaddr, v)
}

// Fence retires a full memory barrier.
func (t *Thread) Fence() {
	t.step()
	t.instr++
	t.clock += t.m.cfg.FenceCycles
}

// Pause models a spin-wait hint (cheap stall without an instruction
// fetch storm).
func (t *Thread) Pause(cycles int) {
	t.step()
	t.clock += uint64(cycles)
}

// blockStep performs the model updates for one word of a block access:
// scheduler step, instruction retire, TLB charge, cache charge. When the
// word lands on the line the core touched last and that line is still
// L1-resident in an owned state, the cache update takes the O(1)
// same-line path; the simulated state transitions and counters are
// identical either way.
func (t *Thread) blockStep(vaddr uint64, e *mtlbEntry, isStore bool) {
	t.step()
	t.instr++
	paddr := e.base | vaddr&mem.PageMask
	tag := paddr >> cache.LineShift
	cls := e.class(vaddr)
	var cyc uint64
	if tag+1 == t.lastLine {
		if !t.tlb.HitMRU(vaddr, isStore, uint(e.shift)) {
			cyc = t.tlb.AccessClass(vaddr, isStore, uint(e.shift), cls)
		}
		if hit, ok := t.caches.SameLineFastClass(t.core, tag, isStore, cls); ok {
			t.clock += cyc + hit
			return
		}
	} else {
		t.lastLine = tag + 1
		cyc = t.tlb.AccessClass(vaddr, isStore, uint(e.shift), cls)
	}
	cyc += t.caches.AccessClass(t.core, paddr, isStore, cls)
	t.clock += cyc
}

// blockBatch tries to retire several consecutive 8-byte words of a block
// access in one step. It succeeds only when every word would take the
// same-line fast path AND none of them would yield to the scheduler:
// the batch stops at the line boundary, the end of the block, and the
// lease boundary, so the thread suspends at exactly the same points a
// word-at-a-time walk would. Returns the number of words retired (0 =
// caller must take the per-word path).
func (t *Thread) blockBatch(a uint64, e *mtlbEntry, rem int, isStore bool) int {
	if t.clock > t.lease {
		return 0 // the next step() must yield
	}
	paddr := e.base | a&mem.PageMask
	tag := paddr >> cache.LineShift
	if tag+1 != t.lastLine {
		return 0
	}
	k := int(cache.LineSize-paddr&(cache.LineSize-1)) / 8
	if w := rem / 8; w < k {
		k = w
	}
	// Word j (0-based) yields iff clock + j*hit > lease; cap k so no
	// batched word crosses that boundary.
	hit := t.caches.L1HitCycles()
	if avail := t.lease - t.clock; hit > 0 && avail/hit < uint64(k-1) {
		k = int(avail/hit) + 1
	}
	if k <= 1 {
		return 0
	}
	if !t.tlb.PageResidentMRU(a, uint(e.shift)) {
		return 0
	}
	// The whole batch is attributed to the first word's class; a batch
	// never crosses a line, so at 16-byte granularity at most the line's
	// tail granule could differ — workload block touches are in practice
	// class-uniform.
	hitCyc, ok := t.caches.SameLineBatchClass(t.core, tag, isStore, uint64(k), e.class(a))
	if !ok {
		return 0
	}
	t.tlb.AccessBatchMRU(isStore, uint64(k))
	t.instr += uint64(k)
	t.clock += uint64(k) * hitCyc
	return k
}

// blockTail rounds a sub-word remainder down to a power-of-two access
// size (matching the natural alignment of the word walk).
func blockTail(rem int) int {
	sz := rem
	for sz&(sz-1) != 0 {
		sz--
	}
	return sz
}

// BlockWrite touches n bytes starting at vaddr with stores, one per
// 8-byte word (vectorized: one instruction per word, cache access per
// word). Used for user-data writes and memset-like work.
func (t *Thread) BlockWrite(vaddr uint64, n int, pattern uint64) {
	var e *mtlbEntry
	for off := 0; off < n; {
		sz := 8
		if n-off < 8 {
			sz = blockTail(n - off)
		}
		a := vaddr + uint64(off)
		if a&uint64(sz-1) != 0 {
			panic(fmt.Sprintf("sim: unaligned %d-byte access at %#x by %s", sz, a, t.name))
		}
		if e == nil || a>>mem.PageShift != e.vpn-1 || t.mtlbEpoch != t.m.as.Epoch() {
			e = t.translate(a)
		}
		if sz == 8 {
			if k := t.blockBatch(a, e, n-off, true); k > 0 {
				for j := 0; j < k; j++ {
					e.frame.Store((a+uint64(j)*8)&mem.PageMask, 8, pattern)
				}
				off += k * 8
				continue
			}
		}
		t.blockStep(a, e, true)
		e.frame.Store(a&mem.PageMask, sz, pattern)
		off += 8 // word stride even for the rounded-down tail access
	}
}

// BlockRead touches n bytes starting at vaddr with loads and returns a
// checksum (so the compiler-level fiction of "the program uses the
// data" holds in the simulation too).
func (t *Thread) BlockRead(vaddr uint64, n int) uint64 {
	var sum uint64
	var e *mtlbEntry
	for off := 0; off < n; {
		sz := 8
		if n-off < 8 {
			sz = blockTail(n - off)
		}
		a := vaddr + uint64(off)
		if a&uint64(sz-1) != 0 {
			panic(fmt.Sprintf("sim: unaligned %d-byte access at %#x by %s", sz, a, t.name))
		}
		if e == nil || a>>mem.PageShift != e.vpn-1 || t.mtlbEpoch != t.m.as.Epoch() {
			e = t.translate(a)
		}
		if sz == 8 {
			if k := t.blockBatch(a, e, n-off, false); k > 0 {
				for j := 0; j < k; j++ {
					sum += e.frame.Load((a+uint64(j)*8)&mem.PageMask, 8)
				}
				off += k * 8
				continue
			}
		}
		t.blockStep(a, e, false)
		sum += e.frame.Load(a&mem.PageMask, sz)
		off += 8 // word stride even for the rounded-down tail access
	}
	return sum
}

// --- System calls -------------------------------------------------------

// Mmap maps npages anonymous pages, charging the kernel-crossing cost.
func (t *Thread) Mmap(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.Mmap(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// MmapHuge maps npages anonymous pages on 2 MiB hugepages (rounded up),
// the mapping hugepage-aware allocators use for their chunk pools.
func (t *Thread) MmapHuge(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.MmapHuge(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// MmapMeta maps npages pages in the dedicated metadata region.
func (t *Thread) MmapMeta(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.MmapMeta(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// Munmap unmaps npages pages at base.
func (t *Thread) Munmap(base uint64, npages int) {
	t.step()
	cyc := t.m.kernel.Munmap(base, npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	t.m.tlbs[t.core].Invalidate()
}

// Sbrk grows the program break by npages pages and returns the old break.
func (t *Thread) Sbrk(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.SbrkGrow(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// Counters returns this thread's core counters as of now (usable
// mid-run by the owning thread).
func (t *Thread) Counters() Counters {
	return t.m.CoreCounters(t.core)
}

// LineSize re-exports the cache line size for layout computations.
const LineSize = cache.LineSize
