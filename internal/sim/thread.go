package sim

import (
	"fmt"

	"nextgenmalloc/internal/cache"
)

// Thread is one simulated hardware thread, pinned 1:1 to a core. All
// simulated work — compute, loads, stores, atomics, system calls — is
// issued through its methods, each of which advances the core clock and
// the PMU counters.
//
// Thread methods must only be called from the function passed to
// Machine.Spawn, on the goroutine the machine created for it.
type Thread struct {
	m      *Machine
	id     int
	name   string
	core   int
	fn     func(*Thread)
	daemon bool

	clock        uint64
	instr        uint64
	atomics      uint64
	kernelCycles uint64

	grant chan uint64 // lease grants from the scheduler
	ret   chan *Thread
	lease uint64
	done  bool
}

// ID returns the thread's id (its spawn order).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Core returns the core the thread is pinned to.
func (t *Thread) Core() int { return t.core }

// Clock returns the thread's current cycle count.
func (t *Thread) Clock() uint64 { return t.clock }

// Instructions returns the thread's retired instruction count.
func (t *Thread) Instructions() uint64 { return t.instr }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Stopping reports whether the machine is shutting down (all non-daemon
// threads finished); daemon loops must poll this and return.
func (t *Thread) Stopping() bool { return t.m.stopping }

// main is the goroutine body: wait for the first lease, run, hand back.
// The handback is deferred so the scheduler is released even if the body
// exits via runtime.Goexit (e.g. a test helper's FailNow).
func (t *Thread) main() {
	t.lease = <-t.grant
	defer func() {
		t.done = true
		t.ret <- t
	}()
	t.fn(t)
}

// step is called before every simulated operation; it yields the lease
// back to the scheduler once the clock has passed the lease end.
func (t *Thread) step() {
	if t.clock <= t.lease {
		return
	}
	t.ret <- t
	t.lease = <-t.grant
}

// Exec retires n ALU instructions (1 cycle each — the in-order,
// IPC-1 model the paper's arithmetic uses).
func (t *Thread) Exec(n int) {
	if n <= 0 {
		return
	}
	t.step()
	t.instr += uint64(n)
	t.clock += uint64(n)
}

// access performs the TLB walk and cache access for one scalar memory
// operation and returns the physical address.
func (t *Thread) access(vaddr uint64, size int, isStore bool) uint64 {
	if size != 1 && size != 2 && size != 4 && size != 8 {
		panic(fmt.Sprintf("sim: unsupported access size %d", size))
	}
	if vaddr%uint64(size) != 0 {
		panic(fmt.Sprintf("sim: unaligned %d-byte access at %#x by %s", size, vaddr, t.name))
	}
	t.step()
	t.instr++
	cyc := t.m.tlbs[t.core].Access(vaddr, isStore, t.m.as.PageShiftAt(vaddr))
	paddr := t.m.as.MustTranslate(vaddr)
	cyc += t.m.caches.Access(t.core, paddr, isStore)
	t.clock += cyc
	return paddr
}

// Load reads size bytes (1/2/4/8) at vaddr, little-endian.
func (t *Thread) Load(vaddr uint64, size int) uint64 {
	paddr := t.access(vaddr, size, false)
	return t.m.phys.Load(paddr, size)
}

// Store writes size bytes (1/2/4/8) at vaddr, little-endian.
func (t *Thread) Store(vaddr uint64, size int, val uint64) {
	paddr := t.access(vaddr, size, true)
	t.m.phys.Store(paddr, size, val)
}

// Load8/16/32/64 and Store8/16/32/64 are sized conveniences.
func (t *Thread) Load8(a uint64) uint64  { return t.Load(a, 1) }
func (t *Thread) Load16(a uint64) uint64 { return t.Load(a, 2) }
func (t *Thread) Load32(a uint64) uint64 { return t.Load(a, 4) }
func (t *Thread) Load64(a uint64) uint64 { return t.Load(a, 8) }

func (t *Thread) Store8(a, v uint64)  { t.Store(a, 1, v) }
func (t *Thread) Store16(a, v uint64) { t.Store(a, 2, v) }
func (t *Thread) Store32(a, v uint64) { t.Store(a, 4, v) }
func (t *Thread) Store64(a, v uint64) { t.Store(a, 8, v) }

// atomic performs the locked-RMW access pattern: an exclusive (write)
// access plus the serialization cost the paper cites as 67 cycles [3].
func (t *Thread) atomic(vaddr uint64) uint64 {
	paddr := t.access(vaddr, 8, true)
	t.clock += t.m.cfg.AtomicExtraCycles
	t.atomics++
	return paddr
}

// CAS64 is an atomic compare-and-swap on a 64-bit word, returning whether
// the swap happened.
func (t *Thread) CAS64(vaddr, old, new uint64) bool {
	paddr := t.atomic(vaddr)
	cur := t.m.phys.Load(paddr, 8)
	if cur != old {
		return false
	}
	t.m.phys.Store(paddr, 8, new)
	return true
}

// FetchAdd64 atomically adds delta to the 64-bit word at vaddr and
// returns the previous value.
func (t *Thread) FetchAdd64(vaddr, delta uint64) uint64 {
	paddr := t.atomic(vaddr)
	cur := t.m.phys.Load(paddr, 8)
	t.m.phys.Store(paddr, 8, cur+delta)
	return cur
}

// Swap64 atomically exchanges the word at vaddr with v.
func (t *Thread) Swap64(vaddr, v uint64) uint64 {
	paddr := t.atomic(vaddr)
	cur := t.m.phys.Load(paddr, 8)
	t.m.phys.Store(paddr, 8, v)
	return cur
}

// AtomicLoad64 is an acquire load (plain load plus a light fence on this
// memory model).
func (t *Thread) AtomicLoad64(vaddr uint64) uint64 {
	return t.Load64(vaddr)
}

// AtomicStore64 is a release store.
func (t *Thread) AtomicStore64(vaddr, v uint64) {
	t.Store64(vaddr, v)
}

// Fence retires a full memory barrier.
func (t *Thread) Fence() {
	t.step()
	t.instr++
	t.clock += t.m.cfg.FenceCycles
}

// Pause models a spin-wait hint (cheap stall without an instruction
// fetch storm).
func (t *Thread) Pause(cycles int) {
	t.step()
	t.clock += uint64(cycles)
}

// BlockWrite touches n bytes starting at vaddr with stores, one per
// 8-byte word (vectorized: one instruction per word, cache access per
// word). Used for user-data writes and memset-like work.
func (t *Thread) BlockWrite(vaddr uint64, n int, pattern uint64) {
	for off := 0; off < n; off += 8 {
		sz := 8
		if n-off < 8 {
			sz = n - off
			for sz&(sz-1) != 0 {
				sz-- // round down to a power of two
			}
		}
		t.Store(vaddr+uint64(off), sz, pattern)
	}
}

// BlockRead touches n bytes starting at vaddr with loads and returns a
// checksum (so the compiler-level fiction of "the program uses the
// data" holds in the simulation too).
func (t *Thread) BlockRead(vaddr uint64, n int) uint64 {
	var sum uint64
	for off := 0; off < n; off += 8 {
		sz := 8
		if n-off < 8 {
			sz = n - off
			for sz&(sz-1) != 0 {
				sz--
			}
		}
		sum += t.Load(vaddr+uint64(off), sz)
	}
	return sum
}

// --- System calls -------------------------------------------------------

// Mmap maps npages anonymous pages, charging the kernel-crossing cost.
func (t *Thread) Mmap(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.Mmap(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// MmapHuge maps npages anonymous pages on 2 MiB hugepages (rounded up),
// the mapping hugepage-aware allocators use for their chunk pools.
func (t *Thread) MmapHuge(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.MmapHuge(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// MmapMeta maps npages pages in the dedicated metadata region.
func (t *Thread) MmapMeta(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.MmapMeta(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// Munmap unmaps npages pages at base.
func (t *Thread) Munmap(base uint64, npages int) {
	t.step()
	cyc := t.m.kernel.Munmap(base, npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	t.m.tlbs[t.core].Invalidate()
}

// Sbrk grows the program break by npages pages and returns the old break.
func (t *Thread) Sbrk(npages int) uint64 {
	t.step()
	base, cyc := t.m.kernel.SbrkGrow(npages)
	t.instr++
	t.clock += cyc
	t.kernelCycles += cyc
	return base
}

// Counters returns this thread's core counters as of now (usable
// mid-run by the owning thread).
func (t *Thread) Counters() Counters {
	return t.m.CoreCounters(t.core)
}

// LineSize re-exports the cache line size for layout computations.
const LineSize = cache.LineSize
